package repro

// Benchmark harness: one bench per evaluation figure (Figs. 4–9), plus
// substrate micro-benchmarks and the ablations called out in DESIGN.md.
// Each figure bench regenerates the corresponding result end to end, so
// `go test -bench=.` re-derives the whole evaluation.

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/experiment"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/lp"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// --- Figure benches -----------------------------------------------------

func BenchmarkFig4ChosenVictim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig4(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkFig5MaxDamage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig5(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkFig6Obfuscation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig6(int64(i + 1))
		if err != nil {
			b.Fatal(err)
		}
		if !r.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkFig7SuccessVsPresence(b *testing.B) {
	for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Fig7(experiment.Fig7Config{
					Kind: kind, Seed: int64(i + 1), Trials: 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig8SingleAttacker(b *testing.B) {
	for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := experiment.Fig8(experiment.Fig8Config{
					Kind: kind, Seed: int64(i + 1), Trials: 5,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkFig9Detection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.Fig9(experiment.Fig9Config{Seed: int64(i + 1), Trials: 5})
		if err != nil {
			b.Fatal(err)
		}
		if r.FalseAlarms != 0 {
			b.Fatal("false alarms")
		}
	}
}

// --- Shared fixtures ----------------------------------------------------

var (
	benchFig1Once sync.Once
	benchFig1Sys  *tomo.System
	benchFig1Topo *topo.Fig1Topology
	benchFig1X    la.Vector
)

func fig1Fixture(b *testing.B) (*topo.Fig1Topology, *tomo.System, la.Vector) {
	b.Helper()
	benchFig1Once.Do(func() {
		f := topo.Fig1()
		paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
		if err != nil || rank != 10 {
			panic("fig1 fixture")
		}
		sys, err := tomo.NewSystem(f.G, paths)
		if err != nil {
			panic(err)
		}
		benchFig1Topo, benchFig1Sys = f, sys
		benchFig1X = netsim.RoutineDelays(f.G, rand.New(rand.NewSource(1)))
	})
	return benchFig1Topo, benchFig1Sys, benchFig1X
}

// --- Substrate micro-benches ---------------------------------------------

func BenchmarkTomographyEstimate(b *testing.B) {
	_, sys, x := fig1Fixture(b)
	y, err := sys.Measure(x)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Estimate(y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateColdVsWarm isolates the win of the memoized
// normal-equation factorization: "cold" rebuilds the system and refactors
// R for every estimate (the pre-cache behaviour of a one-shot CLI),
// "warm" reuses one system the way tomographyd's solver cache does, so
// steady-state estimates are a single matvec against the cached operator.
func BenchmarkEstimateColdVsWarm(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	y, err := sys.Measure(x)
	if err != nil {
		b.Fatal(err)
	}
	paths := sys.Paths()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh, err := tomo.NewSystem(f.G, paths)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fresh.Estimate(y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		warm, err := tomo.NewSystem(f.G, paths)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Estimate(y); err != nil { // pay factorization up front
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := warm.Estimate(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkEstimateColdVsWarmISP is the same comparison at ISP scale
// (~104 nodes), where refactorization dominates even more.
func BenchmarkEstimateColdVsWarmISP(b *testing.B) {
	env, err := experiment.NewEnv(experiment.Wireline, 1)
	if err != nil {
		b.Fatal(err)
	}
	x := netsim.RoutineDelays(env.G, rand.New(rand.NewSource(1)))
	y, err := env.Sys.Measure(x)
	if err != nil {
		b.Fatal(err)
	}
	paths := env.Sys.Paths()
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fresh, err := tomo.NewSystem(env.G, paths)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := fresh.Estimate(y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		warm, err := tomo.NewSystem(env.G, paths)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := warm.Estimate(y); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := warm.Estimate(y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkRoutingOperatorISP(b *testing.B) {
	env, err := experiment.NewEnv(experiment.Wireline, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := env.Sys.R()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.NormalEquationOperator(r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimplexAttackLP(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  f.Attackers,
			TrueX:      x,
		}
		res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkSimplexRaw(b *testing.B) {
	// A mid-size dense LP resembling one attack solve.
	rng := rand.New(rand.NewSource(2))
	const n, m = 40, 60
	build := func() *lp.Problem {
		p := lp.NewProblem(n)
		c := make([]float64, n)
		for j := range c {
			c[j] = 1
		}
		if err := p.SetObjective(c); err != nil {
			b.Fatal(err)
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = rng.NormFloat64()
			}
			if err := p.AddConstraint(row, lp.LE, 10+rng.Float64()*10); err != nil {
				b.Fatal(err)
			}
		}
		for j := 0; j < n; j++ {
			if err := p.SetUpperBound(j, 100); err != nil {
				b.Fatal(err)
			}
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := lp.Solve(build()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPathSelectionFig1(b *testing.B) {
	f := topo.Fig1()
	for i := 0; i < b.N; i++ {
		_, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
		if err != nil || rank != 10 {
			b.Fatal("selection failed")
		}
	}
}

func BenchmarkMonitorPlacementISP(b *testing.B) {
	g, err := topo.ISP(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1)))
		_, _, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
			Initial: 8,
			Select:  tomo.SelectOptions{PerPair: 6},
		})
		if err != nil {
			b.Fatal(err)
		}
		if rank != g.NumLinks() {
			b.Fatalf("rank %d", rank)
		}
	}
}

func BenchmarkNetsimMeasurementRound(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	_ = f
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := netsim.RunDelay(netsim.Config{
			Graph: sys.Graph(), Paths: sys.Paths(), LinkDelays: x,
			Jitter: 1, ProbesPerPath: 3, RNG: rng,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectionInspect(b *testing.B) {
	_, sys, x := fig1Fixture(b)
	y, err := sys.Measure(x)
	if err != nil {
		b.Fatal(err)
	}
	det, err := detect.New(sys, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Inspect(y); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §7) --------------------------------------------

// BenchmarkAblationSecurePlacement compares plain vs security-aware path
// selection; the reported metric of interest is the custom
// "max-presence" value alongside the time cost of the secure variant.
func BenchmarkAblationSecurePlacement(b *testing.B) {
	f := topo.Fig1()
	opts := tomo.SelectOptions{Exhaustive: true, TargetPaths: 23}
	b.Run("plain", func(b *testing.B) {
		var maxPresence float64
		for i := 0; i < b.N; i++ {
			paths, _, err := tomo.SelectPaths(f.G, f.Monitors, opts)
			if err != nil {
				b.Fatal(err)
			}
			maxPresence = maxNonMonitorPresence(f, paths)
		}
		b.ReportMetric(maxPresence, "max-presence")
	})
	b.Run("secure", func(b *testing.B) {
		var maxPresence float64
		for i := 0; i < b.N; i++ {
			paths, _, err := tomo.SelectPathsSecure(f.G, f.Monitors, opts)
			if err != nil {
				b.Fatal(err)
			}
			maxPresence = maxNonMonitorPresence(f, paths)
		}
		b.ReportMetric(maxPresence, "max-presence")
	})
}

func maxNonMonitorPresence(f *topo.Fig1Topology, paths []graph.Path) float64 {
	isMon := map[graph.NodeID]bool{f.M1: true, f.M2: true, f.M3: true}
	var m float64
	for v, r := range tomo.NodePresenceRatios(f.G, paths) {
		if !isMon[graph.NodeID(v)] && r > m {
			m = r
		}
	}
	return m
}

// BenchmarkAblationStealthyVsPlain compares the plain damage-maximizing
// LP with the consistent (stealthy) construction on the same perfect-cut
// victim; the damage metric shows the stealth tax.
func BenchmarkAblationStealthyVsPlain(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	for _, stealthy := range []bool{false, true} {
		name := "plain"
		if stealthy {
			name = "stealthy"
		}
		b.Run(name, func(b *testing.B) {
			var damage float64
			for i := 0; i < b.N; i++ {
				sc := &core.Scenario{
					Sys:        sys,
					Thresholds: tomo.DefaultThresholds(),
					Attackers:  f.Attackers,
					TrueX:      x,
					Stealthy:   stealthy,
				}
				res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Feasible {
					b.Fatal("infeasible")
				}
				damage = res.Damage
			}
			b.ReportMetric(damage, "damage-ms")
		})
	}
}

// BenchmarkAblationConfineOthers measures the damage cost of keeping
// third links inconspicuous (ConfineOthers) in the Fig. 4 attack.
func BenchmarkAblationConfineOthers(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	for _, confine := range []bool{false, true} {
		name := "free"
		if confine {
			name = "confined"
		}
		b.Run(name, func(b *testing.B) {
			var damage float64
			for i := 0; i < b.N; i++ {
				sc := &core.Scenario{
					Sys:           sys,
					Thresholds:    tomo.DefaultThresholds(),
					Attackers:     f.Attackers,
					TrueX:         x,
					ConfineOthers: confine,
				}
				res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Feasible {
					b.Fatal("infeasible")
				}
				damage = res.Damage
			}
			b.ReportMetric(damage, "damage-ms")
		})
	}
}

// --- Extras benches (beyond-paper studies) --------------------------------

func BenchmarkExtraLossStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiment.LossStudy(experiment.LossStudyConfig{Seed: int64(i + 1), ProbesPerPath: 5000})
		if err != nil {
			b.Fatal(err)
		}
		if !r.AttackFeasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkExtraEvasionStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.EvasionStudy(experiment.EvasionStudyConfig{Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtraCentralityStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.CentralityStudy(experiment.CentralityStudyConfig{
			Kind: experiment.Wireless, Seed: 1, Trials: 8,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDetectLocalizeISP(b *testing.B) {
	env, err := experiment.NewEnv(experiment.Wireline, 1)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	var res *core.Result
	for k := 0; k < 60 && res == nil; k++ {
		attacker := graph.NodeID(rng.Intn(env.G.NumNodes()))
		sc := &core.Scenario{
			Sys:        env.Sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  []graph.NodeID{attacker},
			TrueX:      netsim.RoutineDelays(env.G, rng),
		}
		r, err := core.MaxDamage(sc, core.MaxDamageOptions{MaxVictims: 1, FirstFeasible: true})
		if err != nil {
			b.Fatal(err)
		}
		if r.Feasible {
			res = r
		}
	}
	if res == nil {
		b.Fatal("no feasible attack")
	}
	det, err := detect.New(env.Sys, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Localize(res.YObserved, detect.LocalizeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGraphBetweennessISP(b *testing.B) {
	g, err := topo.ISP(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BetweennessCentrality(g)
	}
}

func BenchmarkLAConditionISP(b *testing.B) {
	env, err := experiment.NewEnv(experiment.Wireline, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := env.Sys.R()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := la.ConditionEst(r, 50); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignTwentyRounds(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	_ = f
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := campaign.Run(campaign.Config{
			Sys: sys, TrueX: x, Rounds: 20,
			Jitter: 1, ProbesPerPath: 3, RNG: rand.New(rand.NewSource(int64(i + 1))),
			Drift: 150, Ceiling: 1000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Records) != 20 {
			b.Fatal("short campaign")
		}
	}
}

func BenchmarkExtraLatencyStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.LatencyStudy(experiment.LatencyStudyConfig{Seed: int64(i + 1), Trials: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtraDetectorMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.DetectorMatrix(experiment.DetectorMatrixConfig{Seed: int64(i + 1), Trials: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtraPlacementStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.PlacementStudy(experiment.PlacementStudyConfig{Seed: 1, Trials: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStealthyAttackLP(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  f.Attackers,
			TrueX:      x,
			Stealthy:   true,
		}
		res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkEvasiveAttackLP(b *testing.B) {
	f, sys, x := fig1Fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  f.Attackers,
			TrueX:      x,
			EvadeAlpha: 2850,
		}
		res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Feasible {
			b.Fatal("infeasible")
		}
	}
}

func BenchmarkExtraRocStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiment.RocStudy(experiment.RocStudyConfig{Seed: int64(i + 1), Rounds: 20}); err != nil {
			b.Fatal(err)
		}
	}
}
