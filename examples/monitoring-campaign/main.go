// monitoring-campaign shows continuous tomography monitoring with an
// attack starting mid-campaign. The attacker is α-evasive: it tunes its
// manipulation to keep every round's residual just under the operator's
// one-shot detection threshold, so the Eq. 23 test never fires. The
// sequential (CUSUM) detector still catches it a few rounds after
// onset, because the evader's bias is persistent while measurement
// noise averages out.
//
// Run with: go run ./examples/monitoring-campaign
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("monitoring-campaign: ")

	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != 10 {
		log.Fatalf("selection: rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	x := netsim.RoutineDelays(f.G, rand.New(rand.NewSource(5)))

	// The attacker plans an α-evasive chosen-victim attack on link 10.
	const alpha = 3000.0
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
		EvadeAlpha: 0.95 * alpha,
	}
	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		log.Fatalf("attack: %v", err)
	}
	if !res.Feasible {
		log.Fatal("evasive attack infeasible")
	}
	fmt.Printf("α-evasive attack planned: damage %.0f ms/round, residual budget %.0f ms (α = %.0f ms)\n\n",
		res.Damage, 0.95*alpha, alpha)

	const onset = 5
	out, err := campaign.Run(campaign.Config{
		Sys: sys, TrueX: x, Rounds: 20,
		Jitter: 1, ProbesPerPath: 3, RNG: rand.New(rand.NewSource(6)),
		Plan: &netsim.AttackPlan{
			Attackers:  map[graph.NodeID]bool{f.B: true, f.C: true},
			ExtraDelay: res.M,
		},
		AttackFrom: onset,
		Alpha:      alpha,
		Drift:      0.2 * alpha,
		Ceiling:    2 * alpha,
	})
	if err != nil {
		log.Fatalf("campaign: %v", err)
	}

	fmt.Printf("%-6s %-9s %12s %10s %12s %7s\n", "round", "attacked", "residual", "one-shot", "CUSUM stat", "CUSUM")
	for _, rec := range out.Records {
		fmt.Printf("%-6d %-9v %9.1f ms %10v %9.1f ms %7v\n",
			rec.Round, rec.Attacked, rec.Residual, rec.OneShotAlarm, rec.CusumStatistic, rec.CusumAlarm)
	}
	fmt.Println()
	if out.FirstOneShotAlarm < 0 {
		fmt.Println("the one-shot detector never fired — the evasion worked against Eq. 23.")
	}
	if out.FirstCusumAlarm >= 0 {
		fmt.Printf("the CUSUM detector alarmed at round %d, %d rounds after onset.\n",
			out.FirstCusumAlarm, out.FirstCusumAlarm-onset)
	}
}
