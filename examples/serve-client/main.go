// Serve-client demo: runs tomographyd's service core in-process, registers
// the paper's Fig. 1 measurement configuration over the HTTP API, then
// streams 100 measurement rounds at it — half clean, half carrying the
// chosen-victim scapegoating attack on link 10 (Fig. 4) — and prints the
// detector verdict stream. The detection threshold is calibrated from
// clean simulated rounds exactly like the paper's Remark 4 setup, so the
// expected outcome is zero false alarms on clean rounds and alarms on
// every attacked round (the {B,C} → link-10 cut is imperfect, Theorem 3).
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/tomo"
	"repro/internal/topo"
)

const (
	rounds        = 100
	jitter        = 1.0 // per-hop noise stddev (ms)
	probesPerPath = 3
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "serve-client: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// --- Build the Fig. 1 measurement configuration -----------------
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		return err
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		return err
	}
	fmt.Printf("Fig. 1: %d paths over %d links, rank %d\n", sys.NumPaths(), sys.NumLinks(), rank)

	// --- Calibrate the detector from clean rounds (Remark 4) --------
	rng := rand.New(rand.NewSource(1))
	trueX := netsim.RoutineDelays(f.G, rng)
	simRound := func() (la.Vector, error) {
		return netsim.RunDelay(netsim.Config{
			Graph: f.G, Paths: sys.Paths(), LinkDelays: trueX,
			Jitter: jitter, ProbesPerPath: probesPerPath, RNG: rng,
		})
	}
	var calib []la.Vector
	for k := 0; k < 50; k++ {
		y, err := simRound()
		if err != nil {
			return err
		}
		calib = append(calib, y)
	}
	alpha, err := detect.Calibrate(sys, calib, 1.0, 1.5)
	if err != nil {
		return err
	}
	fmt.Printf("calibrated α = %.1f ms from %d clean rounds\n", alpha, len(calib))

	// --- Start the daemon in-process --------------------------------
	srv := serve.New(serve.Config{Workers: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("tomographyd core listening on %s\n", ln.Addr())

	// --- Register the configuration over the wire --------------------
	name := func(v graph.NodeID) string {
		n, err := f.G.NodeName(v)
		if err != nil {
			panic(err)
		}
		return n
	}
	var edges [][]string
	for _, l := range f.G.Links() {
		edges = append(edges, []string{name(l.A), name(l.B)})
	}
	var walks [][]string
	for _, p := range sys.Paths() {
		var w []string
		for _, v := range p.Nodes {
			w = append(w, name(v))
		}
		walks = append(walks, w)
	}
	var reg serve.TopologyResponse
	if err := post(base+"/v1/topologies", serve.TopologyRequest{
		Name: "fig1", Edges: edges, Paths: walks, Alpha: alpha,
	}, &reg); err != nil {
		return err
	}
	fmt.Printf("registered %q: digest %.12s…, solver cached: %v\n\n", reg.Name, reg.Digest, reg.SolverCached)

	// --- Plan the attack: chosen victim link 10, attackers {B, C} ----
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      trueX,
	}
	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		return err
	}
	if !res.Feasible {
		return fmt.Errorf("chosen-victim attack infeasible")
	}
	manipulated := 0
	for _, m := range res.M {
		if m > 1e-9 {
			manipulated++
		}
	}
	fmt.Printf("attack: victims=link10, damage %.0f ms over %d manipulated paths\n\n", res.Damage, manipulated)

	// --- Stream 100 rounds through POST /v1/inspect -------------------
	var falseAlarms, detections, missed int
	const batch = 10
	for start := 0; start < rounds; start += batch {
		var ys [][]float64
		var attacked []bool
		for i := start; i < start+batch; i++ {
			y, err := simRound()
			if err != nil {
				return err
			}
			atk := i%2 == 1 // odd rounds carry the attack
			if atk {
				y, err = y.Add(res.M)
				if err != nil {
					return err
				}
			}
			ys = append(ys, y)
			attacked = append(attacked, atk)
		}
		var insp serve.InspectResponse
		if err := post(base+"/v1/inspect", serve.RoundsRequest{Topology: "fig1", Rounds: ys}, &insp); err != nil {
			return err
		}
		for i, rep := range insp.Reports {
			verdict := "clean   "
			switch {
			case rep.Detected && attacked[i]:
				verdict = "DETECTED"
				detections++
			case rep.Detected:
				verdict = "FALSE+  "
				falseAlarms++
			case attacked[i]:
				verdict = "MISSED  "
				missed++
			}
			fmt.Printf("round %3d  attacked=%-5v residual=%8.1f ms  %s\n",
				start+i, attacked[i], rep.ResidualNorm, verdict)
		}
	}

	fmt.Printf("\n%d rounds: %d detections, %d missed attacks, %d false alarms (α = %.1f ms)\n",
		rounds, detections, missed, falseAlarms, alpha)
	var health serve.HealthResponse
	if err := get(base+"/healthz", &health); err != nil {
		return err
	}
	fmt.Printf("daemon: %s, topologies %v, up %.2fs\n", health.Status, health.Topologies, health.UptimeSeconds)
	if missed > 0 || falseAlarms > 0 {
		return fmt.Errorf("detector underperformed: %d missed, %d false alarms", missed, falseAlarms)
	}
	return nil
}

func post(url string, body, into any) error {
	raw, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		return fmt.Errorf("POST %s: %s: %s", url, resp.Status, buf.String())
	}
	return json.NewDecoder(resp.Body).Decode(into)
}

func get(url string, into any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(into)
}
