// isp-maxdamage demonstrates the maximum-damage strategy (Eq. 8) on the
// synthetic Rocketfuel-AS1221-like ISP backbone: a single compromised
// router searches all links for the victim it can scapegoat with the
// largest total damage, exactly the single-attacker scenario of the
// paper's Fig. 8 (wireline bar).
//
// Run with: go run ./examples/isp-maxdamage
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("isp-maxdamage: ")

	const seed = 3
	g, err := topo.ISP(seed)
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	rng := rand.New(rand.NewSource(seed))
	monitors, paths, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 8,
		Select:  tomo.SelectOptions{PerPair: 6},
	})
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	if rank != g.NumLinks() {
		log.Fatalf("not identifiable: rank %d of %d", rank, g.NumLinks())
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	fmt.Printf("ISP backbone: %d routers, %d links, %d monitors, %d measurement paths\n",
		g.NumNodes(), g.NumLinks(), len(monitors), sys.NumPaths())

	// Try random single attackers until one finds a feasible victim —
	// the paper's point is that even one attacker usually can.
	for attempt := 0; attempt < 20; attempt++ {
		attacker := graph.NodeID(rng.Intn(g.NumNodes()))
		name, _ := g.NodeName(attacker)
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  []graph.NodeID{attacker},
			TrueX:      netsim.RoutineDelays(g, rng),
		}
		res, err := core.MaxDamage(sc, core.MaxDamageOptions{MaxVictims: 1})
		if err != nil {
			log.Fatalf("max-damage: %v", err)
		}
		if !res.Feasible {
			fmt.Printf("attacker %s: no feasible victim, trying another node\n", name)
			continue
		}
		fmt.Printf("\nattacker %s found victims %v\n", name, displayLinks(res.Victims))
		fmt.Printf("damage ‖m‖₁ = %.0f ms, avg end-to-end delay = %.0f ms\n", res.Damage, res.AvgPathMetric)

		th := sc.Thresholds
		abnormal := 0
		for l := 0; l < g.NumLinks(); l++ {
			if th.Classify(res.XHat[l]) == tomo.Abnormal {
				abnormal++
			}
		}
		fmt.Printf("links classified abnormal by the misled operator: %d\n", abnormal)

		links, err := sc.AttackerLinks()
		if err != nil {
			log.Fatal(err)
		}
		clean := true
		for l := range links {
			if th.Classify(res.XHat[l]) != tomo.Normal {
				clean = false
			}
		}
		fmt.Printf("attacker's own %d links all classified normal: %v\n", len(links), clean)

		det, err := detect.New(sys, detect.DefaultAlpha)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := det.Inspect(res.YObserved)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("consistency detector: residual %.1f ms → detected=%v\n", rep.ResidualNorm, rep.Detected)
		return
	}
	log.Fatal("no attacker found a feasible victim in 20 attempts")
}

func displayLinks(ids []graph.LinkID) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = int(id) + 1
	}
	return out
}
