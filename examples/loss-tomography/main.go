// loss-tomography runs the whole scapegoating pipeline with the packet
// LOSS metric instead of delay, exercising the paper's Section II-A
// claim that delivery ratios are additive in the −log domain:
//
//   - links drop probes independently with per-link delivery ratios,
//   - monitors measure per-path delivery over tens of thousands of
//     probes and take −log to get additive measurements,
//   - grey-hole attackers (B, C) selectively drop extra probes on the
//     paths they control so that tomography blames link 10,
//   - the consistency detector, calibrated on clean sampled rounds,
//     catches the (imperfectly cut) attack.
//
// Run with: go run ./examples/loss-tomography
package main

import (
	"fmt"
	"log"

	"repro/internal/experiment"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loss-tomography: ")

	res, err := experiment.LossStudy(experiment.LossStudyConfig{Seed: 1})
	if err != nil {
		log.Fatalf("study: %v", err)
	}
	fmt.Print(res)
	if !res.AttackFeasible {
		log.Fatal("attack infeasible (unexpected on Fig. 1)")
	}
	fmt.Println()
	fmt.Printf("The victim link really delivers %.1f%% of packets; the misled operator\n", 100*res.VictimTrueRatio)
	fmt.Printf("sees %.1f%% and would dispatch an engineer to the wrong line card.\n", 100*res.VictimEstimatedRatio)
	if res.Detected {
		fmt.Println("The consistency check saves the day: the manipulated measurements do")
		fmt.Println("not add up, because the attackers cannot cover the attacker-free path.")
	}
}
