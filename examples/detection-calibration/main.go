// detection-calibration shows Remark 4 in practice: real measurements
// are noisy, so the consistency check ‖Rx̂ − y'‖₁ needs an empirical
// threshold α. The example calibrates α from clean noisy rounds produced
// by the packet-level simulator, then sweeps attack strengths to show
// the detector's operating range: zero false alarms at the calibrated α
// while every meaningful (imperfectly cut) attack is still caught.
//
// Run with: go run ./examples/detection-calibration
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("detection-calibration: ")

	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != 10 {
		log.Fatalf("selection: rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	rng := rand.New(rand.NewSource(11))
	x := netsim.RoutineDelays(f.G, rng)

	// 1. Calibrate α from clean noisy rounds (jitter σ = 2 ms).
	const jitter = 2.0
	var cleanRuns []la.Vector
	for k := 0; k < 200; k++ {
		y, err := netsim.RunDelay(netsim.Config{
			Graph: f.G, Paths: paths, LinkDelays: x,
			Jitter: jitter, ProbesPerPath: 3, RNG: rng,
		})
		if err != nil {
			log.Fatalf("simulate: %v", err)
		}
		cleanRuns = append(cleanRuns, y)
	}
	alpha, err := detect.Calibrate(sys, cleanRuns, 1.0, 1.25)
	if err != nil {
		log.Fatalf("calibrate: %v", err)
	}
	fmt.Printf("calibrated α = %.1f ms from %d clean rounds at jitter σ = %.0f ms (paper uses a fixed 200 ms)\n\n",
		alpha, len(cleanRuns), jitter)

	det, err := detect.New(sys, alpha)
	if err != nil {
		log.Fatal(err)
	}

	// 2. False-alarm check on fresh clean rounds.
	falseAlarms := 0
	for k := 0; k < 200; k++ {
		y, err := netsim.RunDelay(netsim.Config{
			Graph: f.G, Paths: paths, LinkDelays: x,
			Jitter: jitter, ProbesPerPath: 3, RNG: rng,
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := det.Inspect(y)
		if err != nil {
			log.Fatal(err)
		}
		if rep.Detected {
			falseAlarms++
		}
	}
	fmt.Printf("false alarms on 200 fresh clean rounds: %d\n\n", falseAlarms)

	// 3. Attack sweep: scale the chosen-victim manipulation from 10% to
	// 100% and watch the residual cross α.
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
	}
	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		log.Fatalf("attack: %v", err)
	}
	if !res.Feasible {
		log.Fatal("attack infeasible")
	}
	attackers := map[graph.NodeID]bool{f.B: true, f.C: true}
	fmt.Println("attack-strength sweep (imperfect cut of link 10):")
	fmt.Printf("%-10s %14s %10s\n", "scale", "residual (ms)", "detected")
	for _, scale := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		m := res.M.Scale(scale)
		y, err := netsim.RunDelay(netsim.Config{
			Graph: f.G, Paths: paths, LinkDelays: x,
			Jitter: jitter, ProbesPerPath: 3, RNG: rng,
			Plan: &netsim.AttackPlan{Attackers: attackers, ExtraDelay: m},
		})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := det.Inspect(y)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.2f %14.1f %10v\n", scale, rep.ResidualNorm, rep.Detected)
	}
}
