// attacker-localization closes the loop the paper opens: after the
// consistency detector of Section IV-B fires, WHO did it? The example
// runs a single-attacker maximum-damage attack on the synthetic ISP
// backbone, detects it, and then ranks suspects by leave-node-out
// consistency — for each node, refit tomography on only the paths that
// avoid it; by Constraint 1 the true attacker's complement is perfectly
// consistent, so its score collapses to zero.
//
// Run with: go run ./examples/attacker-localization
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("attacker-localization: ")

	g, err := topo.ISP(1)
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	monitors, paths, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 8,
		Select:  tomo.SelectOptions{PerPair: 6},
	})
	if err != nil || rank != g.NumLinks() {
		log.Fatalf("placement: rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	fmt.Printf("ISP backbone: %d routers, %d links, %d monitors, %d paths\n",
		g.NumNodes(), g.NumLinks(), len(monitors), sys.NumPaths())

	// A random compromised router launches max-damage scapegoating.
	var (
		attacker graph.NodeID
		res      *core.Result
	)
	for k := 0; k < 60; k++ {
		attacker = graph.NodeID(rng.Intn(g.NumNodes()))
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  []graph.NodeID{attacker},
			TrueX:      netsim.RoutineDelays(g, rng),
		}
		r, err := core.MaxDamage(sc, core.MaxDamageOptions{MaxVictims: 1, FirstFeasible: true})
		if err != nil {
			log.Fatalf("attack: %v", err)
		}
		if r.Feasible {
			res = r
			break
		}
	}
	if res == nil {
		log.Fatal("no compromised router found a feasible attack in 60 draws")
	}
	name, _ := g.NodeName(attacker)
	fmt.Printf("\ncompromised router %s scapegoats link %d: damage %.0f ms\n",
		name, res.Victims[0]+1, res.Damage)

	// Detection.
	det, err := detect.New(sys, detect.DefaultAlpha)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := det.Inspect(res.YObserved)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detector: residual %.1f ms → detected=%v\n", rep.ResidualNorm, rep.Detected)
	if !rep.Detected {
		log.Fatal("attack went undetected; localization needs a trigger")
	}

	// Localization: leave-node-out consistency ranking.
	suspects, err := det.Localize(res.YObserved, detect.LocalizeOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop suspects (lower score = more suspicious):")
	fmt.Printf("%-6s %-8s %12s %8s\n", "rank", "router", "score", "excess")
	for i := 0; i < 5 && i < len(suspects); i++ {
		n, _ := g.NodeName(suspects[i].Node)
		mark := ""
		if suspects[i].Node == attacker {
			mark = "   ← the actual attacker"
		}
		fmt.Printf("%-6d %-8s %12.4f %8d%s\n", i+1, n, suspects[i].Score, suspects[i].ExcessPaths, mark)
	}
	if len(suspects) > 0 && suspects[0].Node == attacker {
		fmt.Println("\nthe leave-node-out ranking identified the compromised router.")
	}
}
