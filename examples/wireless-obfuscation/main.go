// wireless-obfuscation runs the obfuscation strategy (Eq. 9) on the
// paper's wireless scenario: a 100-node random geometric graph with
// density λ = 5. A single compromised sensor pushes its own links and
// at least five victim links into the uncertain band so the operator
// cannot tell which link is actually at fault — the paper's Fig. 6
// effect at Fig. 8's wireless scale.
//
// Run with: go run ./examples/wireless-obfuscation
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("wireless-obfuscation: ")

	const seed = 5
	g, pts, err := topo.Wireless(seed)
	if err != nil {
		log.Fatalf("topology: %v", err)
	}
	_ = pts // node positions, available for plotting
	rng := rand.New(rand.NewSource(seed))
	monitors, paths, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 8,
		Select:  tomo.SelectOptions{PerPair: 6},
	})
	if err != nil {
		log.Fatalf("placement: %v", err)
	}
	if rank != g.NumLinks() {
		log.Fatalf("not identifiable: rank %d of %d", rank, g.NumLinks())
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	fmt.Printf("wireless mesh: %d nodes, %d links, %d monitors, %d paths\n",
		g.NumNodes(), g.NumLinks(), len(monitors), sys.NumPaths())

	th := tomo.DefaultThresholds()
	for attempt := 0; attempt < 20; attempt++ {
		attacker := graph.NodeID(rng.Intn(g.NumNodes()))
		name, _ := g.NodeName(attacker)
		sc := &core.Scenario{
			Sys:           sys,
			Thresholds:    th,
			Attackers:     []graph.NodeID{attacker},
			TrueX:         netsim.RoutineDelays(g, rng),
			ConfineOthers: true, // obfuscation: no evident outliers anywhere
		}
		res, err := core.Obfuscate(sc, core.ObfuscationOptions{MinVictims: 5})
		if err != nil {
			log.Fatalf("obfuscate: %v", err)
		}
		if !res.Feasible {
			fmt.Printf("attacker %s: obfuscation infeasible, trying another node\n", name)
			continue
		}
		uncertain := 0
		for l := 0; l < g.NumLinks(); l++ {
			if th.Classify(res.XHat[l]) == tomo.Uncertain {
				uncertain++
			}
		}
		fmt.Printf("\nattacker %s (degree %d) obfuscated the network:\n", name, g.Degree(attacker))
		fmt.Printf("  victim links driven uncertain: %d (success bar: 5)\n", len(res.Victims))
		fmt.Printf("  links in the uncertain band overall: %d of %d\n", uncertain, g.NumLinks())
		fmt.Printf("  damage ‖m‖₁ = %.0f ms, avg end-to-end delay = %.0f ms\n", res.Damage, res.AvgPathMetric)

		det, err := detect.New(sys, detect.DefaultAlpha)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := det.Inspect(res.YObserved)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  consistency detector: residual %.1f ms → detected=%v\n", rep.ResidualNorm, rep.Detected)
		return
	}
	log.Fatal("no attacker achieved obfuscation in 20 attempts")
}
