// Quickstart walks through the paper's whole pipeline on the running
// example of Fig. 1:
//
//  1. build the topology and an identifiable 23-path tomography system,
//  2. verify that clean tomography recovers the true link delays,
//  3. launch the chosen-victim scapegoating attack on link 10,
//  4. show what the misled operator sees,
//  5. run the consistency detector from Section IV-B.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("quickstart: ")

	// 1. Topology and measurement system.
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{
		Exhaustive:  true,
		TargetPaths: 23, // the paper's path count
	})
	if err != nil {
		log.Fatalf("path selection: %v", err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	fmt.Printf("Fig. 1 network: %d nodes, %d links, %d measurement paths, rank %d (identifiable=%v)\n\n",
		f.G.NumNodes(), f.G.NumLinks(), sys.NumPaths(), rank, sys.Identifiable())

	// 2. Clean tomography: estimates track the true delays.
	rng := rand.New(rand.NewSource(7))
	x := netsim.RoutineDelays(f.G, rng) // routine 1–20 ms per link
	y, err := netsim.RunDelay(netsim.Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if err != nil {
		log.Fatalf("simulate: %v", err)
	}
	xhat, err := sys.Estimate(y)
	if err != nil {
		log.Fatalf("estimate: %v", err)
	}
	fmt.Println("clean tomography (no attack):")
	fmt.Printf("  max |x̂ − x| = %.2e ms — seeing is believing, for now\n\n", maxAbsDiff(x, xhat))

	// 3. Attack: B and C scapegoat link 10 (D–M2), which they do NOT
	// perfectly cut.
	sc := &core.Scenario{
		Sys:           sys,
		Thresholds:    tomo.DefaultThresholds(), // normal < 100 ms, abnormal > 800 ms
		Attackers:     f.Attackers,              // nodes B and C
		TrueX:         x,
		ConfineOthers: true, // keep innocent links inconspicuous
	}
	victim := f.PaperLink[10]
	res, err := core.ChosenVictim(sc, []graph.LinkID{victim})
	if err != nil {
		log.Fatalf("attack: %v", err)
	}
	if !res.Feasible {
		log.Fatal("attack infeasible (unexpected on Fig. 1)")
	}
	fmt.Printf("chosen-victim attack on link 10: damage ‖m‖₁ = %.0f ms, avg end-to-end delay %.0f ms\n",
		res.Damage, res.AvgPathMetric)

	// 4. What the operator sees.
	fmt.Println("  link   true(ms)   estimated(ms)  state")
	for num := 1; num <= 10; num++ {
		id := f.PaperLink[num]
		fmt.Printf("  %4d   %8.2f   %13.2f  %v\n", num, x[id], res.XHat[id], res.States[id])
	}
	fmt.Printf("link 10 is blamed while the attackers' links 2–8 look healthy.\n\n")

	// 5. Detection: link 10 is not perfectly cut, so the inconsistency
	// check exposes the manipulation (Theorem 3).
	det, err := detect.New(sys, detect.DefaultAlpha)
	if err != nil {
		log.Fatalf("detector: %v", err)
	}
	rep, err := det.Inspect(res.YObserved)
	if err != nil {
		log.Fatalf("inspect: %v", err)
	}
	fmt.Printf("detection: ‖Rx̂ − y'‖₁ = %.1f ms > α = %.0f ms → detected=%v\n",
		rep.ResidualNorm, det.Alpha(), rep.Detected)
	fmt.Println("(re-run the attack with Scenario.Stealthy on a perfectly cut victim — link 1 — and the residual drops to zero)")
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		d := a[i] - b[i]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
