package main

import "testing"

func TestRunChosenFig1(t *testing.T) {
	if err := run("fig1", 1, "chosen", "", 10, false, false, 200); err != nil {
		t.Fatalf("chosen: %v", err)
	}
}

func TestRunChosenStealthy(t *testing.T) {
	if err := run("fig1", 1, "chosen", "", 1, true, false, 200); err != nil {
		t.Fatalf("stealthy chosen: %v", err)
	}
}

func TestRunMaxDamage(t *testing.T) {
	if err := run("fig1", 1, "maxdamage", "", 0, false, false, 200); err != nil {
		t.Fatalf("maxdamage: %v", err)
	}
}

func TestRunObfuscate(t *testing.T) {
	if err := run("fig1", 1, "obfuscate", "", 0, false, true, 200); err != nil {
		t.Fatalf("obfuscate: %v", err)
	}
}

func TestRunExplicitAttackers(t *testing.T) {
	if err := run("fig1", 1, "chosen", "B,C", 10, false, false, 200); err != nil {
		t.Fatalf("explicit attackers: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("nope", 1, "chosen", "", 10, false, false, 200); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run("fig1", 1, "nope", "", 10, false, false, 200); err == nil {
		t.Error("unknown strategy accepted")
	}
	if err := run("fig1", 1, "chosen", "ZZZ", 10, false, false, 200); err == nil {
		t.Error("unknown attacker accepted")
	}
	if err := run("fig1", 1, "chosen", "", 99, false, false, 200); err == nil {
		t.Error("victim out of range accepted")
	}
}

func TestRunWirelessMaxDamage(t *testing.T) {
	if testing.Short() {
		t.Skip("wireless placement in short mode")
	}
	if err := run("wireless", 1, "maxdamage", "", 0, false, false, 200); err != nil {
		t.Fatalf("wireless maxdamage: %v", err)
	}
}
