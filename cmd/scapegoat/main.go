// Command scapegoat launches a scapegoating attack against a tomography
// system and reports what the misled network operator would see,
// together with the consistency detector's verdict.
//
// Usage:
//
//	scapegoat -strategy chosen|maxdamage|obfuscate [flags]
//
// Flags:
//
//	-kind fig1|abilene|isp|wireless   built-in topology (default fig1)
//	-seed S                   RNG seed
//	-attackers A,B            attacker node names (default: B,C on fig1,
//	                          one random node otherwise)
//	-victim N                 victim link number (chosen strategy; 1-based)
//	-stealthy                 use the consistent (undetectable) construction
//	-confine                  keep third links below the abnormal threshold
//	-alpha X                  detection threshold in ms (default 200)
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func main() {
	kind := flag.String("kind", "fig1", "topology: fig1, abilene, isp, wireless")
	seed := flag.Int64("seed", 1, "RNG seed")
	strategy := flag.String("strategy", "chosen", "attack strategy: chosen, maxdamage, obfuscate")
	attackersFlag := flag.String("attackers", "", "comma-separated attacker node names")
	victim := flag.Int("victim", 10, "victim link number for the chosen strategy (1-based)")
	stealthy := flag.Bool("stealthy", false, "use the consistent construction of Theorem 1")
	confine := flag.Bool("confine", false, "confine third links below the abnormal threshold")
	alpha := flag.Float64("alpha", detect.DefaultAlpha, "detection threshold (ms)")
	flag.Parse()

	if err := run(*kind, *seed, *strategy, *attackersFlag, *victim, *stealthy, *confine, *alpha); err != nil {
		fmt.Fprintf(os.Stderr, "scapegoat: %v\n", err)
		os.Exit(1)
	}
}

func run(kind string, seed int64, strategy, attackersFlag string, victim int, stealthy, confine bool, alpha float64) error {
	rng := rand.New(rand.NewSource(seed))
	env, err := cli.BuildSystem("", kind, seed, rng)
	if err != nil {
		return err
	}
	g, sys, paperLinks := env.G, env.Sys, env.Fig1
	attackers, err := resolveAttackers(g, attackersFlag, kind, rng)
	if err != nil {
		return err
	}
	sc := &core.Scenario{
		Sys:           sys,
		Thresholds:    tomo.DefaultThresholds(),
		Attackers:     attackers,
		TrueX:         netsim.RoutineDelays(g, rng),
		Stealthy:      stealthy,
		ConfineOthers: confine,
	}

	var res *core.Result
	switch strategy {
	case "chosen":
		lid, err := resolveVictim(g, paperLinks, victim)
		if err != nil {
			return err
		}
		res, err = core.ChosenVictim(sc, []graph.LinkID{lid})
		if err != nil {
			return err
		}
	case "maxdamage":
		res, err = core.MaxDamage(sc, core.MaxDamageOptions{})
		if err != nil {
			return err
		}
	case "obfuscate":
		res, err = core.Obfuscate(sc, core.ObfuscationOptions{MinVictims: 1})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}

	names := make([]string, len(attackers))
	for i, a := range attackers {
		names[i], _ = g.NodeName(a)
	}
	fmt.Printf("topology %s: %d nodes, %d links, %d paths; attackers: %s; strategy: %s (stealthy=%v)\n",
		kind, g.NumNodes(), g.NumLinks(), sys.NumPaths(), strings.Join(names, ","), strategy, stealthy)
	if !res.Feasible {
		fmt.Printf("attack INFEASIBLE (%v)\n", res.LPStatus)
		return nil
	}
	victimNums := make([]int, len(res.Victims))
	for i, v := range res.Victims {
		victimNums[i] = int(v) + 1 // display links 1-based like the paper
	}
	fmt.Printf("attack feasible: damage=%.1f ms over %d paths, avg end-to-end=%.2f ms, victim links=%v\n",
		res.Damage, sys.NumPaths(), res.AvgPathMetric, victimNums)
	th := sc.Thresholds
	fmt.Printf("%-8s %10s  %s\n", "link", "est (ms)", "state")
	for l := 0; l < g.NumLinks(); l++ {
		state := th.Classify(res.XHat[l])
		if state != tomo.Normal || g.NumLinks() <= 20 {
			fmt.Printf("%-8d %10.2f  %s\n", l+1, res.XHat[l], state)
		}
	}

	det, err := detect.New(sys, alpha)
	if err != nil {
		return err
	}
	rep, err := det.Inspect(res.YObserved)
	if err != nil {
		return err
	}
	fmt.Printf("detection: residual ‖Rx̂−y'‖₁ = %.2f ms vs α = %.0f ms → detected=%v\n",
		rep.ResidualNorm, alpha, rep.Detected)
	return nil
}

func resolveAttackers(g *graph.Graph, flagVal, kind string, rng *rand.Rand) ([]graph.NodeID, error) {
	if flagVal == "" {
		if kind == "fig1" {
			b, _ := g.NodeByName("B")
			c, _ := g.NodeByName("C")
			return []graph.NodeID{b, c}, nil
		}
		return []graph.NodeID{graph.NodeID(rng.Intn(g.NumNodes()))}, nil
	}
	var out []graph.NodeID
	for _, name := range strings.Split(flagVal, ",") {
		id, ok := g.NodeByName(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown node %q", name)
		}
		out = append(out, id)
	}
	return out, nil
}

func resolveVictim(g *graph.Graph, f *topo.Fig1Topology, num int) (graph.LinkID, error) {
	if f != nil {
		if num < 1 || num > 10 {
			return 0, fmt.Errorf("fig1 victim link %d out of range 1–10", num)
		}
		return f.PaperLink[num], nil
	}
	if num < 1 || num > g.NumLinks() {
		return 0, fmt.Errorf("victim link %d out of range 1–%d", num, g.NumLinks())
	}
	return graph.LinkID(num - 1), nil
}
