// Command tomoload is the deterministic, fault-injecting load generator
// for tomographyd. It synthesizes measurement traffic under the paper's
// scapegoating campaigns (clean, chosen-victim, stealthy, maxdamage,
// obfuscate), optionally wraps the connection in a chaos transport
// (latency, drops, truncation, resets), and replays a plan that is a
// pure function of the seed: two runs with the same flags print the same
// transcript digest.
//
// Usage:
//
//	tomoload [-addr URL] [-n 10000] [-duration 0] [-workers 8] [-rps 0]
//	         [-seed 1] [-chaos latency=2ms,drop=0.01,...] [-scenarios all]
//	         [-fault 0.05] [-verify] [-report]
//	tomoload -stream [-sessions 8] [-rounds 1000] [-batch 64] [-churn 1] ...
//	tomoload -churn-script five-epoch [-seed 1] [-workers 8] ...
//
// With -stream, tomoload opens long-lived round sessions and drives
// batched NDJSON measurement streams through them (with optional
// mid-stream path churn) instead of issuing one-shot requests; the
// transcript digest covers every verdict stream and is equally a pure
// function of the seed.
//
// With -churn-script, tomoload replays a time-scripted dynamic-network
// campaign: the scenario DSL schedules link failures, path flaps,
// monitor churn, and attacker windows on a virtual clock, and each
// routing epoch takes the cheapest correct route against the daemon
// (evict + re-register on structural churn, session rank-1 path
// mutations on flap-only churn, no-op on attack boundaries). The value
// is the builtin script name "five-epoch" or a path to a JSON script
// file. Every server verdict is checked against a local precomputation
// and the transcript digest is invariant under -workers.
//
// With no -addr, tomoload boots an in-process tomographyd (the e2e
// harness) and tears it down after the run — a self-contained soak.
// Against a remote daemon, scenario topologies are registered first
// (an existing identical registration is tolerated). -verify scrapes
// /metrics before and after the run and checks that the server's counter
// deltas reconcile exactly with the client-side transcript; any mismatch
// exits non-zero.
//
// Against a tomorouter fleet, front-door scrapes land on one shard per
// request, so single-scrape verification cannot reconcile. Pass
// -scrape-nodes with every shard's URL instead: tomoload scrapes each
// node directly, sums the deltas fleet-wide (requests land on exactly
// one node each, so the sums are exact), and reconciles those.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/e2e"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "daemon base URL (empty: boot an in-process harness)")
	n := flag.Int("n", 10000, "total requests to issue")
	duration := flag.Duration("duration", 0, "optional wall-clock cap (0 = run all -n requests)")
	workers := flag.Int("workers", 8, "client concurrency")
	rps := flag.Float64("rps", 0, "request rate limit (0 = unthrottled)")
	seed := flag.Int64("seed", 1, "base seed; fixes the full request and fault plan")
	chaosSpec := flag.String("chaos", "off", "fault spec: latency=2ms,jitter=1ms,drop=0.01,truncate=0.02,reset=0.005")
	scenarioSpec := flag.String("scenarios", "all", "comma-separated campaign kinds: clean,chosen-victim,stealthy,maxdamage,obfuscate")
	fault := flag.Float64("fault", 0.05, "fraction of deliberate client-fault ops (bad JSON, ghost topology, short y)")
	verify := flag.Bool("verify", false, "reconcile server /metrics deltas against the transcript; exit 1 on mismatch")
	report := flag.Bool("report", false, "print p50/p95/p99 client-side latency per op from the transcript")
	stream := flag.Bool("stream", false, "drive NDJSON round-stream sessions instead of one-shot requests")
	sessions := flag.Int("sessions", 8, "round sessions to open (with -stream)")
	roundsPer := flag.Int("rounds", 1000, "measurement rounds per session (with -stream)")
	batch := flag.Int("batch", 64, "max rounds per NDJSON request line (with -stream)")
	churn := flag.Int("churn", 1, "mid-stream path mutations per session (with -stream)")
	churnScript := flag.String("churn-script", "", `dynamic-network campaign: builtin script name ("five-epoch") or JSON script file`)
	scrapeNodes := flag.String("scrape-nodes", "", "comma-separated fleet node URLs to scrape directly for -verify (use when -addr targets a tomorouter, whose /metrics fans out)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, options{
		addr: *addr, n: *n, duration: *duration, workers: *workers,
		rps: *rps, seed: *seed, chaos: *chaosSpec, scenarios: *scenarioSpec,
		fault: *fault, verify: *verify, report: *report,
		stream: *stream, sessions: *sessions, rounds: *roundsPer,
		batch: *batch, churn: *churn, churnScript: *churnScript,
		scrapeNodes: splitNodes(*scrapeNodes),
	}, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tomoload: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	addr      string
	n         int
	duration  time.Duration
	workers   int
	rps       float64
	seed      int64
	chaos     string
	scenarios string
	fault     float64
	verify    bool
	report    bool
	stream    bool
	sessions  int
	rounds    int
	batch     int
	churn     int
	// churnScript, when non-empty, switches to dynamic-campaign replay:
	// the builtin script name ("five-epoch") or a JSON script file path.
	churnScript string
	// scrapeNodes, when non-empty, verifies against per-node /metrics
	// scrapes summed fleet-wide instead of a single front-door scrape.
	scrapeNodes []string
}

// splitNodes parses the -scrape-nodes list, dropping empty entries.
// Bare host:port entries get an http:// scheme, matching tomorouter's
// -groups syntax so the two flags accept the same node lists.
func splitNodes(spec string) []string {
	var out []string
	for _, u := range strings.Split(spec, ",") {
		if u = strings.TrimSpace(u); u != "" {
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			out = append(out, strings.TrimRight(u, "/"))
		}
	}
	return out
}

// scrapeFleet snapshots every node's /metrics directly, in order.
func scrapeFleet(ctx context.Context, nodes []string) ([]map[string]float64, error) {
	var out []map[string]float64
	for _, u := range nodes {
		m, err := e2e.NewClient(u, nil).MetricsSnapshot(ctx)
		if err != nil {
			return nil, fmt.Errorf("scrape %s: %w", u, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// run executes one load campaign. Factored out of main so tests can
// drive the full flag-to-summary path.
func run(ctx context.Context, opt options, out io.Writer) error {
	if opt.churnScript != "" {
		return runChurn(ctx, opt, out)
	}
	chaos, err := e2e.ParseChaosSpec(opt.chaos)
	if err != nil {
		return err
	}
	kinds, err := e2e.ParseKinds(opt.scenarios)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "tomoload: building %d scenario(s) (seed %d)\n", len(kinds), opt.seed)
	scenarios, err := e2e.BuildScenarios(kinds, opt.seed)
	if err != nil {
		return err
	}

	base := opt.addr
	var h *e2e.Harness
	if base == "" {
		// Self-contained mode: a real tomographyd core over loopback,
		// with the request deadline disabled so the transcript digest is
		// deterministic (the pool queues instead of shedding). Streaming
		// additionally widens the pool past the client concurrency so no
		// session stream is ever 429-shed by our own load.
		cfg := serve.Config{RequestTimeout: -1}
		if opt.stream {
			cfg.Workers = max(16, 2*opt.workers)
		}
		h = e2e.NewHarness(cfg)
		defer h.Close()
		base = h.URL()
		fmt.Fprintf(out, "tomoload: in-process daemon at %s\n", base)
	}

	// Registration and metrics scrapes use a plain client: setup and
	// verification must not be disturbed by chaos.
	plain := e2e.NewClient(base, nil)
	for _, sc := range scenarios {
		tr, err := plain.Register(ctx, sc.Name, sc.Sys, 0)
		if err != nil {
			return err
		}
		switch {
		case tr == nil:
			fmt.Fprintf(out, "tomoload: %s already registered\n", sc.Name)
		default:
			fmt.Fprintf(out, "tomoload: registered %s (digest %.12s…, cached=%v)\n",
				sc.Name, tr.Digest, tr.SolverCached)
		}
	}

	if opt.stream {
		return runStream(ctx, opt, chaos, scenarios, base, h, out)
	}

	var pre map[string]float64
	var preFleet []map[string]float64
	if opt.verify {
		if len(opt.scrapeNodes) > 0 {
			if preFleet, err = scrapeFleet(ctx, opt.scrapeNodes); err != nil {
				return fmt.Errorf("pre-run fleet scrape: %w", err)
			}
		} else if pre, err = plain.MetricsSnapshot(ctx); err != nil {
			return fmt.Errorf("pre-run metrics scrape: %w", err)
		}
	}

	fmt.Fprintf(out, "tomoload: issuing %d requests (workers %d, rps %g, chaos %s, fault %.2f)\n",
		opt.n, opt.workers, opt.rps, chaos, opt.fault)
	tr, err := e2e.RunLoad(ctx, e2e.LoadConfig{
		BaseURL:   base,
		Scenarios: scenarios,
		Requests:  opt.n,
		Duration:  opt.duration,
		Workers:   opt.workers,
		RPS:       opt.rps,
		Seed:      opt.seed,
		Chaos:     chaos,
		FaultFrac: opt.fault,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, tr.Summary())
	if opt.report {
		// Per-op latency quantiles from the same histogram code that
		// backs the server's /metrics histograms (obs.Histogram).
		fmt.Fprint(out, tr.Report())
		byTopo := make(map[string][]float64)
		for i := range tr.Records {
			r := &tr.Records[i]
			if r.Scenario != "" && len(r.Residuals) > 0 {
				byTopo[r.Scenario] = append(byTopo[r.Scenario], r.Residuals...)
			}
		}
		if err := forensicsReport(ctx, plain, byTopo, chaos.String() == "off", out); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "transcript digest: %s\n", tr.Digest())

	if opt.verify {
		var msgs []string
		if len(opt.scrapeNodes) > 0 {
			postFleet, err := scrapeFleet(ctx, opt.scrapeNodes)
			if err != nil {
				return fmt.Errorf("post-run fleet scrape: %w", err)
			}
			msgs = e2e.ReconcileFleetScrape(tr.Expected(), preFleet, postFleet)
		} else {
			post, err := plain.MetricsSnapshot(ctx)
			if err != nil {
				return fmt.Errorf("post-run metrics scrape: %w", err)
			}
			msgs = tr.Expected().ReconcileScrape(pre, post)
		}
		if len(msgs) != 0 {
			for _, m := range msgs {
				fmt.Fprintf(out, "verify: MISMATCH %s\n", m)
			}
			return fmt.Errorf("verification failed: %d counter mismatch(es)", len(msgs))
		}
		fmt.Fprintln(out, "verify: server metrics reconcile with the transcript")
	}
	return nil
}

// runChurn replays a time-scripted dynamic-network campaign against a
// live daemon. The script compiles into per-epoch systems and attack
// plans before any traffic flows; the run then walks the epochs,
// evicting and re-registering on structural churn, mutating the open
// session's paths on flap-only churn, and holding on attack-window
// boundaries. Every verdict is checked against the local
// precomputation, and the printed digest is invariant under -workers.
func runChurn(ctx context.Context, opt options, out io.Writer) error {
	var script *e2e.ChurnScript
	if opt.churnScript == "five-epoch" {
		script = e2e.FiveEpochScript()
	} else {
		fh, err := os.Open(opt.churnScript)
		if err != nil {
			return fmt.Errorf("open churn script (not a builtin name): %w", err)
		}
		script, err = e2e.ParseChurnScript(fh)
		fh.Close()
		if err != nil {
			return fmt.Errorf("parse %s: %w", opt.churnScript, err)
		}
	}
	fmt.Fprintf(out, "tomoload: compiling churn script %q (seed %d, %d event(s))\n",
		script.Name, opt.seed, len(script.Events))
	plan, err := e2e.CompileChurn(script, opt.seed)
	if err != nil {
		return err
	}

	base := opt.addr
	if base == "" {
		h := e2e.NewHarness(serve.Config{RequestTimeout: -1})
		defer h.Close()
		base = h.URL()
		fmt.Fprintf(out, "tomoload: in-process daemon at %s\n", base)
	}
	tr, err := e2e.RunChurn(ctx, e2e.NewClient(base, nil), plan, opt.workers)
	if err != nil {
		return err
	}
	fmt.Fprint(out, tr.Summary())
	var mismatches int
	for _, ep := range tr.Epochs {
		mismatches += ep.VerdictMismatch
	}
	if mismatches != 0 {
		return fmt.Errorf("%d verdict(s) disagreed with the client-side precomputation", mismatches)
	}
	fmt.Fprintln(out, "verify: every verdict matches the client-side precomputation")
	return nil
}

// runStream drives the -stream campaign: batched NDJSON round streams
// through long-lived sessions, with the same seed-determinism contract
// as the one-shot path. Client-side verdict verification (every verdict
// checked against a local precomputation) always runs; -verify adds the
// server-side counter reconcile, which needs the in-process harness —
// a shared remote daemon's absolute counters are not ours to assert on.
func runStream(ctx context.Context, opt options, chaos e2e.ChaosConfig,
	scenarios []*e2e.Scenario, base string, h *e2e.Harness, out io.Writer) error {
	fmt.Fprintf(out, "tomoload: streaming %d session(s) x %d rounds (batch %d, churn %d, workers %d, chaos %s)\n",
		opt.sessions, opt.rounds, opt.batch, opt.churn, opt.workers, chaos)
	tr, err := e2e.RunStream(ctx, e2e.StreamConfig{
		BaseURL:          base,
		Scenarios:        scenarios,
		Sessions:         opt.sessions,
		RoundsPerSession: opt.rounds,
		BatchMax:         opt.batch,
		Workers:          opt.workers,
		Seed:             opt.seed,
		Chaos:            chaos,
		PathChurn:        opt.churn,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, tr.Summary())
	if opt.report {
		byTopo := make(map[string][]float64)
		for i := range tr.Sessions {
			r := &tr.Sessions[i]
			byTopo[r.Scenario] = append(byTopo[r.Scenario], r.Residuals...)
		}
		plain := e2e.NewClient(base, nil)
		if err := forensicsReport(ctx, plain, byTopo, chaos.String() == "off", out); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "transcript digest: %s\n", tr.Digest())
	e := tr.Expected()
	if e.Mismatches != 0 {
		return fmt.Errorf("%d verdict(s) disagreed with the client-side precomputation", e.Mismatches)
	}
	if opt.verify {
		if h == nil {
			fmt.Fprintln(out, "verify: remote daemon; verdict precomputation check passed, counter reconcile skipped")
			return nil
		}
		if msgs := e.Reconcile(h.Metrics()); len(msgs) != 0 {
			for _, m := range msgs {
				fmt.Fprintf(out, "verify: MISMATCH %s\n", m)
			}
			return fmt.Errorf("verification failed: %d counter mismatch(es)", len(msgs))
		}
		fmt.Fprintln(out, "verify: server metrics reconcile with the stream transcript")
	}
	return nil
}

// forensicsReport is the -report forensics section: for every topology
// the run touched, it rebuilds the residual quantile sketch from the
// client-side verdict transcript (the same obs.QuantileSketch the
// server feeds) and reconciles it against GET /v1/topologies/{name}/
// forensics. Quantiles are pure functions of the observed multiset, so
// with chaos off and an in-process daemon the two must match exactly;
// a topology whose observatory was epoch-reset mid-run (session path
// churn) reports the reset instead, since the server sketch only holds
// rounds from the current attribution regime by design.
func forensicsReport(ctx context.Context, c *e2e.Client, byTopo map[string][]float64, exact bool, out io.Writer) error {
	names := make([]string, 0, len(byTopo))
	for name := range byTopo {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintln(out, "forensics (server residual quantiles vs client verdicts):")
	fmt.Fprintf(out, "  %-20s %8s %12s %12s %12s  %s\n", "topology", "rounds", "p50", "p95", "p99", "reconcile")
	var mismatches int
	for _, name := range names {
		status, snap, err := c.Forensics(ctx, name)
		if err != nil || status != http.StatusOK {
			fmt.Fprintf(out, "  %-20s snapshot unavailable (status %d, err %v)\n", name, status, err)
			mismatches++
			continue
		}
		sk := obs.NewQuantileSketch()
		for _, v := range byTopo[name] {
			sk.Observe(v)
		}
		verdict := "exact"
		switch {
		case snap.Residual.Count == sk.Count() &&
			snap.Residual.P50 == sk.Quantile(0.50) &&
			snap.Residual.P95 == sk.Quantile(0.95) &&
			snap.Residual.P99 == sk.Quantile(0.99):
		case snap.Epoch > 0:
			verdict = fmt.Sprintf("reset@epoch%d (server holds %d rounds)", snap.Epoch, snap.Residual.Count)
		default:
			verdict = fmt.Sprintf("MISMATCH (server %d rounds, p50 %g)", snap.Residual.Count, snap.Residual.P50)
			mismatches++
		}
		fmt.Fprintf(out, "  %-20s %8d %12.6f %12.6f %12.6f  %s\n",
			name, sk.Count(), sk.Quantile(0.50), sk.Quantile(0.95), sk.Quantile(0.99), verdict)
	}
	if exact && mismatches != 0 {
		return fmt.Errorf("forensics reconcile failed on %d topology(ies)", mismatches)
	}
	return nil
}
