// Command tomoload is the deterministic, fault-injecting load generator
// for tomographyd. It synthesizes measurement traffic under the paper's
// scapegoating campaigns (clean, chosen-victim, stealthy, maxdamage,
// obfuscate), optionally wraps the connection in a chaos transport
// (latency, drops, truncation, resets), and replays a plan that is a
// pure function of the seed: two runs with the same flags print the same
// transcript digest.
//
// Usage:
//
//	tomoload [-addr URL] [-n 10000] [-duration 0] [-workers 8] [-rps 0]
//	         [-seed 1] [-chaos latency=2ms,drop=0.01,...] [-scenarios all]
//	         [-fault 0.05] [-verify] [-report]
//
// With no -addr, tomoload boots an in-process tomographyd (the e2e
// harness) and tears it down after the run — a self-contained soak.
// Against a remote daemon, scenario topologies are registered first
// (an existing identical registration is tolerated). -verify scrapes
// /metrics before and after the run and checks that the server's counter
// deltas reconcile exactly with the client-side transcript; any mismatch
// exits non-zero.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/e2e"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", "", "daemon base URL (empty: boot an in-process harness)")
	n := flag.Int("n", 10000, "total requests to issue")
	duration := flag.Duration("duration", 0, "optional wall-clock cap (0 = run all -n requests)")
	workers := flag.Int("workers", 8, "client concurrency")
	rps := flag.Float64("rps", 0, "request rate limit (0 = unthrottled)")
	seed := flag.Int64("seed", 1, "base seed; fixes the full request and fault plan")
	chaosSpec := flag.String("chaos", "off", "fault spec: latency=2ms,jitter=1ms,drop=0.01,truncate=0.02,reset=0.005")
	scenarioSpec := flag.String("scenarios", "all", "comma-separated campaign kinds: clean,chosen-victim,stealthy,maxdamage,obfuscate")
	fault := flag.Float64("fault", 0.05, "fraction of deliberate client-fault ops (bad JSON, ghost topology, short y)")
	verify := flag.Bool("verify", false, "reconcile server /metrics deltas against the transcript; exit 1 on mismatch")
	report := flag.Bool("report", false, "print p50/p95/p99 client-side latency per op from the transcript")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, options{
		addr: *addr, n: *n, duration: *duration, workers: *workers,
		rps: *rps, seed: *seed, chaos: *chaosSpec, scenarios: *scenarioSpec,
		fault: *fault, verify: *verify, report: *report,
	}, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tomoload: %v\n", err)
		os.Exit(1)
	}
}

type options struct {
	addr      string
	n         int
	duration  time.Duration
	workers   int
	rps       float64
	seed      int64
	chaos     string
	scenarios string
	fault     float64
	verify    bool
	report    bool
}

// run executes one load campaign. Factored out of main so tests can
// drive the full flag-to-summary path.
func run(ctx context.Context, opt options, out io.Writer) error {
	chaos, err := e2e.ParseChaosSpec(opt.chaos)
	if err != nil {
		return err
	}
	kinds, err := e2e.ParseKinds(opt.scenarios)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "tomoload: building %d scenario(s) (seed %d)\n", len(kinds), opt.seed)
	scenarios, err := e2e.BuildScenarios(kinds, opt.seed)
	if err != nil {
		return err
	}

	base := opt.addr
	if base == "" {
		// Self-contained mode: a real tomographyd core over loopback,
		// with the request deadline disabled so the transcript digest is
		// deterministic (the pool queues instead of shedding).
		h := e2e.NewHarness(serve.Config{RequestTimeout: -1})
		defer h.Close()
		base = h.URL()
		fmt.Fprintf(out, "tomoload: in-process daemon at %s\n", base)
	}

	// Registration and metrics scrapes use a plain client: setup and
	// verification must not be disturbed by chaos.
	plain := e2e.NewClient(base, nil)
	for _, sc := range scenarios {
		tr, err := plain.Register(ctx, sc.Name, sc.Sys, 0)
		if err != nil {
			return err
		}
		switch {
		case tr == nil:
			fmt.Fprintf(out, "tomoload: %s already registered\n", sc.Name)
		default:
			fmt.Fprintf(out, "tomoload: registered %s (digest %.12s…, cached=%v)\n",
				sc.Name, tr.Digest, tr.SolverCached)
		}
	}

	var pre map[string]float64
	if opt.verify {
		if pre, err = plain.MetricsSnapshot(ctx); err != nil {
			return fmt.Errorf("pre-run metrics scrape: %w", err)
		}
	}

	fmt.Fprintf(out, "tomoload: issuing %d requests (workers %d, rps %g, chaos %s, fault %.2f)\n",
		opt.n, opt.workers, opt.rps, chaos, opt.fault)
	tr, err := e2e.RunLoad(ctx, e2e.LoadConfig{
		BaseURL:   base,
		Scenarios: scenarios,
		Requests:  opt.n,
		Duration:  opt.duration,
		Workers:   opt.workers,
		RPS:       opt.rps,
		Seed:      opt.seed,
		Chaos:     chaos,
		FaultFrac: opt.fault,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(out, tr.Summary())
	if opt.report {
		// Per-op latency quantiles from the same histogram code that
		// backs the server's /metrics histograms (obs.Histogram).
		fmt.Fprint(out, tr.Report())
	}
	fmt.Fprintf(out, "transcript digest: %s\n", tr.Digest())

	if opt.verify {
		post, err := plain.MetricsSnapshot(ctx)
		if err != nil {
			return fmt.Errorf("post-run metrics scrape: %w", err)
		}
		if msgs := tr.Expected().ReconcileScrape(pre, post); len(msgs) != 0 {
			for _, m := range msgs {
				fmt.Fprintf(out, "verify: MISMATCH %s\n", m)
			}
			return fmt.Errorf("verification failed: %d counter mismatch(es)", len(msgs))
		}
		fmt.Fprintln(out, "verify: server metrics reconcile with the transcript")
	}
	return nil
}
