package main

import (
	"context"
	"regexp"
	"strings"
	"testing"
)

// TestRunSelfContainedVerifies drives the full CLI path: in-process
// daemon, chaos enabled, verification on. The digest line must appear
// and verification must pass.
func TestRunSelfContainedVerifies(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), options{
		n: 400, workers: 6, seed: 11,
		chaos:     "drop=0.05,truncate=0.05,reset=0.02",
		scenarios: "clean,chosen-victim,stealthy",
		fault:     0.1, verify: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	if !regexp.MustCompile(`transcript digest: [0-9a-f]{64}`).MatchString(text) {
		t.Errorf("no digest line in output:\n%s", text)
	}
	if !strings.Contains(text, "verify: server metrics reconcile") {
		t.Errorf("verification did not pass:\n%s", text)
	}
}

// TestRunIsDeterministic runs the same flags twice against fresh
// in-process daemons and compares the digest lines.
func TestRunIsDeterministic(t *testing.T) {
	digest := func() string {
		var out strings.Builder
		err := run(context.Background(), options{
			n: 300, workers: 4, seed: 23,
			chaos: "drop=0.03,truncate=0.04", scenarios: "clean,chosen-victim",
			fault: 0.08,
		}, &out)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		m := regexp.MustCompile(`transcript digest: ([0-9a-f]{64})`).FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("no digest in output:\n%s", out.String())
		}
		return m[1]
	}
	if d1, d2 := digest(), digest(); d1 != d2 {
		t.Errorf("same-flag runs diverge: %s vs %s", d1, d2)
	}
}

// TestRunStreamSelfContainedVerifies drives the -stream CLI path end to
// end: in-process daemon, chaotic NDJSON round streams with mid-stream
// path churn, full server-side reconcile. Two runs must print the same
// digest line.
func TestRunStreamSelfContainedVerifies(t *testing.T) {
	stream := func() string {
		var out strings.Builder
		err := run(context.Background(), options{
			workers: 4, seed: 31,
			chaos:     "drop=0.05,truncate=0.1,reset=0.05",
			scenarios: "clean,chosen-victim,stealthy",
			verify:    true,
			stream:    true, sessions: 6, rounds: 80, batch: 16, churn: 1,
		}, &out)
		if err != nil {
			t.Fatalf("run -stream: %v\noutput:\n%s", err, out.String())
		}
		text := out.String()
		if !strings.Contains(text, "verify: server metrics reconcile with the stream transcript") {
			t.Errorf("stream verification did not pass:\n%s", text)
		}
		m := regexp.MustCompile(`transcript digest: ([0-9a-f]{64})`).FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("no digest in output:\n%s", text)
		}
		return m[1]
	}
	if d1, d2 := stream(), stream(); d1 != d2 {
		t.Errorf("same-flag stream runs diverge: %s vs %s", d1, d2)
	}
}

// TestRunChurnScriptSelfContained drives the -churn-script CLI path:
// builtin five-epoch script, in-process daemon, verdict verification.
// Two runs with different worker counts must print the same digest.
func TestRunChurnScriptSelfContained(t *testing.T) {
	campaign := func(workers int) string {
		var out strings.Builder
		err := run(context.Background(), options{
			churnScript: "five-epoch", seed: 7, workers: workers,
		}, &out)
		if err != nil {
			t.Fatalf("run -churn-script: %v\noutput:\n%s", err, out.String())
		}
		text := out.String()
		if !strings.Contains(text, "verify: every verdict matches") {
			t.Errorf("churn verification did not pass:\n%s", text)
		}
		m := regexp.MustCompile(`digest ([0-9a-f]{64})`).FindStringSubmatch(text)
		if m == nil {
			t.Fatalf("no digest in output:\n%s", text)
		}
		return m[1]
	}
	if d1, d2 := campaign(1), campaign(6); d1 != d2 {
		t.Errorf("churn digests diverge across worker counts: %s vs %s", d1, d2)
	}
}

// TestRunRejectsBadFlags pins the error paths for malformed specs.
func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run(context.Background(), options{n: 10, chaos: "drop=7"}, &out); err == nil {
		t.Error("bad chaos spec accepted")
	}
	if err := run(context.Background(), options{n: 10, scenarios: "bogus"}, &out); err == nil {
		t.Error("bad scenario list accepted")
	}
	if err := run(context.Background(), options{
		stream: true, sessions: 0, rounds: 10, scenarios: "clean",
	}, &out); err == nil {
		t.Error("zero-session stream accepted")
	}
	if err := run(context.Background(), options{
		churnScript: "no-such-script.json",
	}, &out); err == nil {
		t.Error("missing churn script file accepted")
	}
}

// TestRunReportForensicsExact drives -report with chaos off: the
// forensics section must reconcile every touched topology exactly
// against the server-side sketch (same observation multiset, same
// sketch code, so identical quantiles).
func TestRunReportForensicsExact(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), options{
		n: 200, workers: 4, seed: 7,
		scenarios: "clean,chosen-victim", report: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "forensics (server residual quantiles vs client verdicts):") {
		t.Fatalf("no forensics section:\n%s", text)
	}
	for _, topo := range []string{"fig1-clean", "fig1-chosen-victim"} {
		re := regexp.MustCompile(topo + `\s+\d+(\s+\d+\.\d+){3}\s+exact`)
		if !re.MatchString(text) {
			t.Errorf("topology %s did not reconcile exactly:\n%s", topo, text)
		}
	}
	if strings.Contains(text, "MISMATCH") {
		t.Errorf("forensics mismatch under chaos off:\n%s", text)
	}
}

// TestRunStreamReportForensics exercises the forensics section on the
// streaming path with mid-stream churn. The churn is an add+remove
// round trip, so the routing digest at every batch boundary is back to
// the original — one continuous attribution regime, and the reconcile
// must still be exact (a permanent mutation would instead surface as
// reset@epoch, covered in the serve tests).
func TestRunStreamReportForensics(t *testing.T) {
	var out strings.Builder
	err := run(context.Background(), options{
		workers: 4, seed: 7, scenarios: "clean,chosen-victim",
		stream: true, sessions: 2, rounds: 40, batch: 16, churn: 1,
		report: true,
	}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "forensics (server residual quantiles vs client verdicts):") {
		t.Fatalf("no forensics section:\n%s", text)
	}
	if strings.Contains(text, "MISMATCH") || strings.Contains(text, "reset@epoch") {
		t.Errorf("churn round trip should reconcile exactly:\n%s", text)
	}
	for _, topo := range []string{"fig1-clean", "fig1-chosen-victim"} {
		if !regexp.MustCompile(topo + `\s+40\b.*exact`).MatchString(text) {
			t.Errorf("topology %s did not reconcile exactly over 40 rounds:\n%s", topo, text)
		}
	}
}

func TestSplitNodesNormalizesScheme(t *testing.T) {
	got := splitNodes(" 127.0.0.1:8811 , http://h:2/ ,, https://h:3 ")
	want := []string{"http://127.0.0.1:8811", "http://h:2", "https://h:3"}
	if len(got) != len(want) {
		t.Fatalf("splitNodes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitNodes[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if splitNodes("  ") != nil {
		t.Fatal("blank spec should yield nil")
	}
}
