// Command topogen generates network topologies as edge lists.
//
// Usage:
//
//	topogen -kind fig1|isp|backbone|wireless|er|waxman [-seed S] [-n N] [-p P] [-links L] [-out FILE] [-stats]
//
// The output is a parseable edge list ("nameA nameB" per line) usable by
// tomograph and scapegoat via -topo FILE.
//
// The backbone kind synthesizes an ISP-scale router map at a target
// link count (-links, default 100000): preferential attachment with
// m = 3, giving the Rocketfuel-style power-law degree mix P(k) ∝ k⁻³
// with minimum degree 3 (see internal/topo.Backbone). Deterministic for
// a given seed, so a 100k-link evaluation topology is a two-integer
// recipe rather than a 2 MB artifact.
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/graph"
	"repro/internal/topo"
)

func main() {
	kind := flag.String("kind", "fig1", "topology kind: fig1, isp, backbone, wireless, er, waxman")
	seed := flag.Int64("seed", 1, "RNG seed")
	n := flag.Int("n", 50, "node count (er, waxman)")
	p := flag.Float64("p", 0.1, "edge probability (er)")
	links := flag.Int("links", 100000, "target link count (backbone)")
	out := flag.String("out", "", "output file (default stdout)")
	stats := flag.Bool("stats", false, "print topology metrics to stderr")
	flag.Parse()

	if err := run(*kind, *seed, *n, *p, *links, *out, *stats); err != nil {
		fmt.Fprintf(os.Stderr, "topogen: %v\n", err)
		os.Exit(1)
	}
}

func run(kind string, seed int64, n int, p float64, links int, out string, stats bool) error {
	var (
		g   *graph.Graph
		err error
	)
	rng := rand.New(rand.NewSource(seed))
	switch kind {
	case "fig1":
		g = topo.Fig1().G
	case "isp":
		g, err = topo.ISP(seed)
	case "backbone":
		g, err = topo.Backbone(seed, links)
	case "wireless":
		g, _, err = topo.Wireless(seed)
	case "er":
		g, err = graph.ErdosRenyi(n, p, rng)
	case "waxman":
		g, _, err = graph.Waxman(n, 0.9, 0.3, rng)
	default:
		return fmt.Errorf("unknown kind %q", kind)
	}
	if err != nil {
		return err
	}
	if stats {
		m := graph.ComputeMetrics(g)
		fmt.Fprintf(os.Stderr,
			"# %d nodes, %d links, degree %d–%d (mean %.2f), diameter %d, mean distance %.2f, clustering %.3f, components %d\n",
			m.Nodes, m.Links, m.MinDegree, m.MaxDegree, m.MeanDegree,
			m.Diameter, m.MeanDistance, m.ClusteringCoeff, m.Components)
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "topogen: close: %v\n", cerr)
			}
		}()
		w = f
	}
	return graph.WriteEdgeList(w, g)
}
