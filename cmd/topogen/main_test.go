package main

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"fig1", "isp", "wireless", "er", "waxman", "backbone"} {
		t.Run(kind, func(t *testing.T) {
			out := filepath.Join(dir, kind+".txt")
			if err := run(kind, 1, 30, 0.2, 1000, out, true); err != nil {
				t.Fatalf("run(%s): %v", kind, err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(data), "#") {
				t.Errorf("%s output missing header", kind)
			}
			if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
				t.Errorf("%s output has no edges", kind)
			}
		})
	}
}

// TestBackboneGoldenDigest pins the backbone generator's output
// byte-for-byte: a (seed, links) pair must regenerate the identical
// edge list forever, because scale topologies are distributed as
// recipes, not artifacts — a drifted generator would silently change
// every downstream benchmark and registered digest.
func TestBackboneGoldenDigest(t *testing.T) {
	out := filepath.Join(t.TempDir(), "backbone.txt")
	if err := run("backbone", 7, 0, 0, 1000, out, false); err != nil {
		t.Fatalf("run(backbone): %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(data)
	const want = "7819b88c0dccb738d63aa63523347e4626e763f034503ff2e4decf5f16a4a8f7"
	if got := hex.EncodeToString(sum[:]); got != want {
		t.Fatalf("backbone(seed=7, links=1000) edge-list digest drifted:\n got %s\nwant %s", got, want)
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("nope", 1, 10, 0.1, 1000, "", false); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunBadPath(t *testing.T) {
	if err := run("fig1", 1, 10, 0.1, 1000, "/nonexistent-dir/x.txt", false); err == nil {
		t.Fatal("bad output path accepted")
	}
}
