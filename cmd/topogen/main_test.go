package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"fig1", "isp", "wireless", "er", "waxman"} {
		t.Run(kind, func(t *testing.T) {
			out := filepath.Join(dir, kind+".txt")
			if err := run(kind, 1, 30, 0.2, out, true); err != nil {
				t.Fatalf("run(%s): %v", kind, err)
			}
			data, err := os.ReadFile(out)
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(data), "#") {
				t.Errorf("%s output missing header", kind)
			}
			if len(strings.Split(strings.TrimSpace(string(data)), "\n")) < 2 {
				t.Errorf("%s output has no edges", kind)
			}
		})
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("nope", 1, 10, 0.1, "", false); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunBadPath(t *testing.T) {
	if err := run("fig1", 1, 10, 0.1, "/nonexistent-dir/x.txt", false); err == nil {
		t.Fatal("bad output path accepted")
	}
}
