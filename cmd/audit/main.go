// Command audit produces an operator-facing scapegoating risk report
// for a monitored topology:
//
//   - per link: the smallest attacker set that perfectly cuts it (the
//     minimum compromise that can frame it undetectably, Theorem 1 +
//     Theorem 3), if one exists within the search budget;
//   - per node: its interior presence ratio (how much of the
//     measurement fabric a compromise of it would control) and its
//     betweenness rank;
//   - topology-level warnings: articulation points and bridges, the
//     single points whose compromise or failure splits monitoring.
//
// Usage:
//
//	audit [-topo FILE | -kind fig1|abilene|isp|wireless] [-seed S] [-maxcut K] [-top N]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/tomo"
)

func main() {
	topoFile := flag.String("topo", "", "edge-list topology file (overrides -kind)")
	kind := flag.String("kind", "fig1", "built-in topology: fig1, abilene, isp, wireless")
	seed := flag.Int64("seed", 1, "RNG seed")
	maxCut := flag.Int("maxcut", 3, "maximum perfect-cut attacker set size to search")
	top := flag.Int("top", 10, "how many highest-risk nodes to list")
	flag.Parse()

	if err := run(*topoFile, *kind, *seed, *maxCut, *top); err != nil {
		fmt.Fprintf(os.Stderr, "audit: %v\n", err)
		os.Exit(1)
	}
}

func run(topoFile, kind string, seed int64, maxCut, top int) error {
	rng := rand.New(rand.NewSource(seed))
	env, err := cli.BuildSystem(topoFile, kind, seed, rng)
	if err != nil {
		return err
	}
	g, sys := env.G, env.Sys
	fmt.Printf("audit of %d nodes, %d links, %d monitors, %d measurement paths\n\n",
		g.NumNodes(), g.NumLinks(), len(env.Monitors), sys.NumPaths())

	// 1. Per-link frame-ability.
	fmt.Println("frame-ability: smallest perfect-cut attacker set per link")
	fmt.Printf("%-8s %-24s %s\n", "link", "endpoints", "minimal undetectable framers")
	vulnerable := 0
	for l := 0; l < g.NumLinks(); l++ {
		lid := graph.LinkID(l)
		link, err := g.Link(lid)
		if err != nil {
			return err
		}
		set, err := core.FindPerfectCutAttackers(sys, []graph.LinkID{lid}, maxCut)
		if err != nil {
			return err
		}
		an, _ := g.NodeName(link.A)
		bn, _ := g.NodeName(link.B)
		desc := fmt.Sprintf("none within %d nodes", maxCut)
		if set != nil {
			vulnerable++
			names := make([]string, len(set))
			for i, v := range set {
				names[i], _ = g.NodeName(v)
			}
			desc = strings.Join(names, ",")
		}
		if g.NumLinks() <= 30 || set != nil {
			fmt.Printf("%-8d %-24s %s\n", l+1, an+"–"+bn, desc)
		}
	}
	fmt.Printf("→ %d of %d links can be framed undetectably by ≤ %d compromised nodes\n\n",
		vulnerable, g.NumLinks(), maxCut)

	// 2. Node risk ranking: interior presence × betweenness.
	presence := tomo.InteriorPresenceRatios(g, sys.Paths())
	cb := graph.BetweennessCentrality(g)
	type nodeRisk struct {
		v        graph.NodeID
		presence float64
		cb       float64
	}
	risks := make([]nodeRisk, 0, g.NumNodes())
	for _, v := range g.Nodes() {
		risks = append(risks, nodeRisk{v, presence[v], cb[v]})
	}
	sort.Slice(risks, func(a, b int) bool {
		if risks[a].presence != risks[b].presence {
			return risks[a].presence > risks[b].presence
		}
		return risks[a].cb > risks[b].cb
	})
	fmt.Printf("highest-risk nodes (interior presence on measurement paths)\n")
	fmt.Printf("%-12s %16s %14s\n", "node", "presence ratio", "betweenness")
	for i := 0; i < top && i < len(risks); i++ {
		name, _ := g.NodeName(risks[i].v)
		fmt.Printf("%-12s %15.1f%% %14.1f\n", name, 100*risks[i].presence, risks[i].cb)
	}
	fmt.Println()

	// 3. Structural single points of failure.
	aps := graph.ArticulationPoints(g)
	if len(aps) > 0 {
		names := make([]string, len(aps))
		for i, v := range aps {
			names[i], _ = g.NodeName(v)
		}
		fmt.Printf("articulation points (single-node compromise splits the network): %s\n",
			strings.Join(names, ", "))
	} else {
		fmt.Println("articulation points: none (2-connected)")
	}
	bridges := graph.Bridges(g)
	if len(bridges) > 0 {
		parts := make([]string, len(bridges))
		for i, l := range bridges {
			link, _ := g.Link(l)
			an, _ := g.NodeName(link.A)
			bn, _ := g.NodeName(link.B)
			parts[i] = fmt.Sprintf("%d (%s–%s)", l+1, an, bn)
		}
		fmt.Printf("bridge links: %s\n", strings.Join(parts, ", "))
	} else {
		fmt.Println("bridge links: none (2-edge-connected)")
	}
	return nil
}
