package main

import "testing"

func TestRunFig1(t *testing.T) {
	if err := run("", "fig1", 1, 3, 5); err != nil {
		t.Fatalf("audit fig1: %v", err)
	}
}

func TestRunAbilene(t *testing.T) {
	if err := run("", "abilene", 1, 2, 5); err != nil {
		t.Fatalf("audit abilene: %v", err)
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run("", "nope", 1, 3, 5); err == nil {
		t.Fatal("unknown kind accepted")
	}
}
