// Command experiments regenerates the paper's evaluation figures
// (Figs. 4–9) and prints their data as text tables; -extras adds the
// beyond-paper studies and -json also writes machine-readable results.
//
// Usage:
//
//	experiments [-fig N] [-seed S] [-trials T] [-parallel W] [-progress] [-extras] [-json DIR]
//
// Without -fig, every figure runs in order. Monte Carlo trials fan out
// over -parallel workers (default GOMAXPROCS); the worker count only
// changes wall-clock time, never the numbers — every trial derives its
// own PRNG from (seed, trial index), so output is bit-identical to a
// sequential run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiment"
	"repro/internal/mc"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (4–9); 0 runs all")
	seed := flag.Int64("seed", 1, "base RNG seed")
	trials := flag.Int("trials", 0, "trial count for Figs. 7–9 (0 = per-figure default)")
	parallel := flag.Int("parallel", 0, "trial worker count (0 = GOMAXPROCS); never changes results")
	progress := flag.Bool("progress", false, "report per-runner trial progress on stderr")
	extras := flag.Bool("extras", false, "also run the beyond-paper studies (loss-domain grey-hole, α-evasion sweep, placement and centrality studies)")
	jsonDir := flag.String("json", "", "also write results as JSON files into this directory")
	flag.Parse()

	opts := runOpts{
		fig:      *fig,
		seed:     *seed,
		trials:   *trials,
		parallel: *parallel,
		progress: *progress,
		extras:   *extras,
		jsonDir:  *jsonDir,
	}
	if err := run(opts); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// runOpts carries the command-line configuration.
type runOpts struct {
	fig      int
	seed     int64
	trials   int
	parallel int
	progress bool
	extras   bool
	jsonDir  string
}

// progressFn returns a per-runner progress reporter (every ~10% of the
// trials), or nil when -progress is off.
func (o runOpts) progressFn(name string) mc.Progress {
	if !o.progress {
		return nil
	}
	return func(done, total int) {
		step := total / 10
		if step == 0 {
			step = 1
		}
		if done%step == 0 || done == total {
			fmt.Fprintf(os.Stderr, "experiments: %s %d/%d trials\n", name, done, total)
		}
	}
}

// emit prints the result and optionally writes it as JSON.
func emit(jsonDir, name string, v fmt.Stringer) error {
	fmt.Println(v)
	if jsonDir == "" {
		return nil
	}
	if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", jsonDir, err)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", name, err)
	}
	path := filepath.Join(jsonDir, name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

func run(o runOpts) error {
	figs := []int{4, 5, 6, 7, 8, 9}
	if o.fig != 0 {
		figs = []int{o.fig}
	}
	for _, f := range figs {
		switch f {
		case 4:
			r, err := experiment.Fig4(o.seed)
			if err != nil {
				return err
			}
			if err := emit(o.jsonDir, "fig4", r); err != nil {
				return err
			}
		case 5:
			r, err := experiment.Fig5(o.seed)
			if err != nil {
				return err
			}
			if err := emit(o.jsonDir, "fig5", r); err != nil {
				return err
			}
		case 6:
			r, err := experiment.Fig6(o.seed)
			if err != nil {
				return err
			}
			if err := emit(o.jsonDir, "fig6", r); err != nil {
				return err
			}
		case 7:
			for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
				name := fmt.Sprintf("fig7-%v", kind)
				r, err := experiment.Fig7(experiment.Fig7Config{
					Kind: kind, Seed: o.seed, Trials: o.trials,
					Parallel: o.parallel, Progress: o.progressFn(name),
				})
				if err != nil {
					return err
				}
				if err := emit(o.jsonDir, name, r); err != nil {
					return err
				}
			}
		case 8:
			for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
				name := fmt.Sprintf("fig8-%v", kind)
				r, err := experiment.Fig8(experiment.Fig8Config{
					Kind: kind, Seed: o.seed, Trials: o.trials,
					Parallel: o.parallel, Progress: o.progressFn(name),
				})
				if err != nil {
					return err
				}
				if err := emit(o.jsonDir, name, r); err != nil {
					return err
				}
			}
		case 9:
			r, err := experiment.Fig9(experiment.Fig9Config{
				Seed: o.seed, Trials: o.trials,
				Parallel: o.parallel, Progress: o.progressFn("fig9"),
			})
			if err != nil {
				return err
			}
			if err := emit(o.jsonDir, "fig9", r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown figure %d (want 4–9)", f)
		}
	}
	if o.extras {
		loss, err := experiment.LossStudy(experiment.LossStudyConfig{
			Seed: o.seed, Parallel: o.parallel, Progress: o.progressFn("loss-study"),
		})
		if err != nil {
			return err
		}
		if err := emit(o.jsonDir, "loss-study", loss); err != nil {
			return err
		}
		ev, err := experiment.EvasionStudy(experiment.EvasionStudyConfig{
			Seed: o.seed, Parallel: o.parallel, Progress: o.progressFn("evasion-study"),
		})
		if err != nil {
			return err
		}
		if err := emit(o.jsonDir, "evasion-study", ev); err != nil {
			return err
		}
		ps, err := experiment.PlacementStudy(experiment.PlacementStudyConfig{
			Seed: o.seed, Trials: o.trials,
			Parallel: o.parallel, Progress: o.progressFn("placement-study"),
		})
		if err != nil {
			return err
		}
		if err := emit(o.jsonDir, "placement-study", ps); err != nil {
			return err
		}
		for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
			name := fmt.Sprintf("centrality-study-%v", kind)
			cs, err := experiment.CentralityStudy(experiment.CentralityStudyConfig{
				Kind: kind, Seed: o.seed, Trials: o.trials,
				Parallel: o.parallel, Progress: o.progressFn(name),
			})
			if err != nil {
				return err
			}
			if err := emit(o.jsonDir, name, cs); err != nil {
				return err
			}
		}
		ls, err := experiment.LatencyStudy(experiment.LatencyStudyConfig{
			Seed: o.seed, Trials: o.trials,
			Parallel: o.parallel, Progress: o.progressFn("latency-study"),
		})
		if err != nil {
			return err
		}
		if err := emit(o.jsonDir, "latency-study", ls); err != nil {
			return err
		}
		dm, err := experiment.DetectorMatrix(experiment.DetectorMatrixConfig{
			Seed: o.seed, Trials: o.trials,
			Parallel: o.parallel, Progress: o.progressFn("detector-matrix"),
		})
		if err != nil {
			return err
		}
		if err := emit(o.jsonDir, "detector-matrix", dm); err != nil {
			return err
		}
		roc, err := experiment.RocStudy(experiment.RocStudyConfig{
			Seed: o.seed, Rounds: o.trials * 10,
			Parallel: o.parallel, Progress: o.progressFn("roc-study"),
		})
		if err != nil {
			return err
		}
		if err := emit(o.jsonDir, "roc-study", roc); err != nil {
			return err
		}
		stale, err := experiment.StaleStudy(experiment.StaleStudyConfig{
			Seed: o.seed, Trials: o.trials,
			Parallel: o.parallel, Progress: o.progressFn("stale-study"),
		})
		if err != nil {
			return err
		}
		if err := emit(o.jsonDir, "stale-study", stale); err != nil {
			return err
		}
	}
	return nil
}
