// Command experiments regenerates the paper's evaluation figures
// (Figs. 4–9) and prints their data as text tables; -extras adds the
// beyond-paper studies and -json also writes machine-readable results.
//
// Usage:
//
//	experiments [-fig N] [-seed S] [-trials T] [-extras] [-json DIR]
//
// Without -fig, every figure runs in order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiment"
)

func main() {
	fig := flag.Int("fig", 0, "figure to run (4–9); 0 runs all")
	seed := flag.Int64("seed", 1, "base RNG seed")
	trials := flag.Int("trials", 0, "trial count for Figs. 7–9 (0 = per-figure default)")
	extras := flag.Bool("extras", false, "also run the beyond-paper studies (loss-domain grey-hole, α-evasion sweep, placement and centrality studies)")
	jsonDir := flag.String("json", "", "also write results as JSON files into this directory")
	flag.Parse()

	if err := run(*fig, *seed, *trials, *extras, *jsonDir); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

// emit prints the result and optionally writes it as JSON.
func emit(jsonDir, name string, v fmt.Stringer) error {
	fmt.Println(v)
	if jsonDir == "" {
		return nil
	}
	if err := os.MkdirAll(jsonDir, 0o755); err != nil {
		return fmt.Errorf("create %s: %w", jsonDir, err)
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal %s: %w", name, err)
	}
	path := filepath.Join(jsonDir, name+".json")
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	return nil
}

func run(fig int, seed int64, trials int, extras bool, jsonDir string) error {
	figs := []int{4, 5, 6, 7, 8, 9}
	if fig != 0 {
		figs = []int{fig}
	}
	for _, f := range figs {
		switch f {
		case 4:
			r, err := experiment.Fig4(seed)
			if err != nil {
				return err
			}
			if err := emit(jsonDir, "fig4", r); err != nil {
				return err
			}
		case 5:
			r, err := experiment.Fig5(seed)
			if err != nil {
				return err
			}
			if err := emit(jsonDir, "fig5", r); err != nil {
				return err
			}
		case 6:
			r, err := experiment.Fig6(seed)
			if err != nil {
				return err
			}
			if err := emit(jsonDir, "fig6", r); err != nil {
				return err
			}
		case 7:
			for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
				r, err := experiment.Fig7(experiment.Fig7Config{Kind: kind, Seed: seed, Trials: trials})
				if err != nil {
					return err
				}
				if err := emit(jsonDir, fmt.Sprintf("fig7-%v", kind), r); err != nil {
					return err
				}
			}
		case 8:
			for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
				r, err := experiment.Fig8(experiment.Fig8Config{Kind: kind, Seed: seed, Trials: trials})
				if err != nil {
					return err
				}
				if err := emit(jsonDir, fmt.Sprintf("fig8-%v", kind), r); err != nil {
					return err
				}
			}
		case 9:
			r, err := experiment.Fig9(experiment.Fig9Config{Seed: seed, Trials: trials})
			if err != nil {
				return err
			}
			if err := emit(jsonDir, "fig9", r); err != nil {
				return err
			}
		default:
			return fmt.Errorf("unknown figure %d (want 4–9)", f)
		}
	}
	if extras {
		loss, err := experiment.LossStudy(experiment.LossStudyConfig{Seed: seed})
		if err != nil {
			return err
		}
		if err := emit(jsonDir, "loss-study", loss); err != nil {
			return err
		}
		ev, err := experiment.EvasionStudy(seed, nil)
		if err != nil {
			return err
		}
		if err := emit(jsonDir, "evasion-study", ev); err != nil {
			return err
		}
		ps, err := experiment.PlacementStudy(experiment.PlacementStudyConfig{Seed: seed, Trials: trials})
		if err != nil {
			return err
		}
		if err := emit(jsonDir, "placement-study", ps); err != nil {
			return err
		}
		for _, kind := range []experiment.NetworkKind{experiment.Wireline, experiment.Wireless} {
			cs, err := experiment.CentralityStudy(experiment.CentralityStudyConfig{Kind: kind, Seed: seed, Trials: trials})
			if err != nil {
				return err
			}
			if err := emit(jsonDir, fmt.Sprintf("centrality-study-%v", kind), cs); err != nil {
				return err
			}
		}
		ls, err := experiment.LatencyStudy(experiment.LatencyStudyConfig{Seed: seed, Trials: trials})
		if err != nil {
			return err
		}
		if err := emit(jsonDir, "latency-study", ls); err != nil {
			return err
		}
		dm, err := experiment.DetectorMatrix(experiment.DetectorMatrixConfig{Seed: seed, Trials: trials})
		if err != nil {
			return err
		}
		if err := emit(jsonDir, "detector-matrix", dm); err != nil {
			return err
		}
		roc, err := experiment.RocStudy(experiment.RocStudyConfig{Seed: seed, Rounds: trials * 10})
		if err != nil {
			return err
		}
		if err := emit(jsonDir, "roc-study", roc); err != nil {
			return err
		}
	}
	return nil
}
