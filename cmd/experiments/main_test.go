package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestRunFig4(t *testing.T) {
	if err := run(runOpts{fig: 4, seed: 1}); err != nil {
		t.Fatalf("fig 4: %v", err)
	}
}

func TestRunFig5(t *testing.T) {
	if err := run(runOpts{fig: 5, seed: 1}); err != nil {
		t.Fatalf("fig 5: %v", err)
	}
}

func TestRunFig6(t *testing.T) {
	if err := run(runOpts{fig: 6, seed: 1}); err != nil {
		t.Fatalf("fig 6: %v", err)
	}
}

func TestRunFig9(t *testing.T) {
	if err := run(runOpts{fig: 9, seed: 1, trials: 4}); err != nil {
		t.Fatalf("fig 9: %v", err)
	}
}

func TestRunJSONOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run(runOpts{fig: 4, seed: 1, jsonDir: dir}); err != nil {
		t.Fatalf("json run: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "fig4.json"))
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var v map[string]any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if v["feasible"] != true {
		t.Errorf("feasible = %v", v["feasible"])
	}
	if _, ok := v["links"]; !ok {
		t.Error("links missing from JSON")
	}
}

func TestRunUnknownFig(t *testing.T) {
	if err := run(runOpts{fig: 3, seed: 1}); err == nil {
		t.Fatal("figure 3 accepted")
	}
}

func TestRunFig8SmallTrials(t *testing.T) {
	if testing.Short() {
		t.Skip("fig 8 in short mode")
	}
	if err := run(runOpts{fig: 8, seed: 1, trials: 3}); err != nil {
		t.Fatalf("fig 8: %v", err)
	}
}
