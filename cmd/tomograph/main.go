// Command tomograph runs plain network tomography on a topology: it
// places monitors, selects identifiable measurement paths, simulates a
// clean measurement round through the packet-level simulator, and prints
// the estimated per-link metrics next to the true ones.
//
// Usage:
//
//	tomograph [-topo FILE | -kind fig1|abilene|isp|wireless] [-seed S] [-jitter J] [-probes K] [-save CFG] [-load CFG]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/cli"
	"repro/internal/netsim"
	"repro/internal/tomo"
)

func main() {
	topoFile := flag.String("topo", "", "edge-list topology file (overrides -kind)")
	kind := flag.String("kind", "fig1", "built-in topology: fig1, abilene, isp, wireless")
	seed := flag.Int64("seed", 1, "RNG seed")
	jitter := flag.Float64("jitter", 0, "per-hop delay noise stddev (ms)")
	probes := flag.Int("probes", 1, "probes per path (mean is reported)")
	savePath := flag.String("save", "", "save the measurement configuration (paths) as JSON")
	loadPath := flag.String("load", "", "load a measurement configuration instead of selecting paths")
	flag.Parse()

	if err := run(*topoFile, *kind, *seed, *jitter, *probes, *savePath, *loadPath); err != nil {
		fmt.Fprintf(os.Stderr, "tomograph: %v\n", err)
		os.Exit(1)
	}
}

func run(topoFile, kind string, seed int64, jitter float64, probes int, savePath, loadPath string) error {
	rng := rand.New(rand.NewSource(seed))
	env, err := cli.BuildSystem(topoFile, kind, seed, rng)
	if err != nil {
		return err
	}
	g, monitors, sys := env.G, env.Monitors, env.Sys
	if loadPath != "" {
		f, err := os.Open(loadPath)
		if err != nil {
			return err
		}
		loaded, err := tomo.LoadSystem(g, f)
		cerr := f.Close()
		if err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
		if !loaded.Identifiable() {
			return fmt.Errorf("loaded configuration is not identifiable")
		}
		sys = loaded
	}
	if savePath != "" {
		f, err := os.Create(savePath)
		if err != nil {
			return err
		}
		if err := sys.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	paths := sys.Paths()
	x := netsim.RoutineDelays(g, rng)
	y, err := netsim.RunDelay(netsim.Config{
		Graph: g, Paths: paths, LinkDelays: x,
		Jitter: jitter, ProbesPerPath: probes, RNG: rng,
	})
	if err != nil {
		return err
	}
	xhat, err := sys.Estimate(y)
	if err != nil {
		return err
	}
	th := tomo.DefaultThresholds()
	fmt.Printf("topology: %d nodes, %d links, %d monitors, %d measurement paths (rank %d)\n",
		g.NumNodes(), g.NumLinks(), len(monitors), sys.NumPaths(), sys.Rank())
	fmt.Printf("%-8s %10s %10s %9s  %s\n", "link", "true (ms)", "est (ms)", "err", "state")
	for l := 0; l < g.NumLinks(); l++ {
		fmt.Printf("%-8d %10.2f %10.2f %8.2f%%  %s\n",
			l+1, x[l], xhat[l], 100*absErr(x[l], xhat[l]), th.Classify(xhat[l]))
	}
	return nil
}

func absErr(truth, est float64) float64 {
	if truth == 0 {
		return 0
	}
	d := est - truth
	if d < 0 {
		d = -d
	}
	return d / truth
}
