package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFig1(t *testing.T) {
	if err := run("", "fig1", 1, 0, 1, "", ""); err != nil {
		t.Fatalf("run fig1: %v", err)
	}
}

func TestRunFig1Noisy(t *testing.T) {
	if err := run("", "fig1", 2, 1.5, 5, "", ""); err != nil {
		t.Fatalf("run fig1 noisy: %v", err)
	}
}

func TestRunWireless(t *testing.T) {
	if err := run("", "wireless", 1, 0, 1, "", ""); err != nil {
		t.Fatalf("run wireless: %v", err)
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("", "nope", 1, 0, 1, "", ""); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestRunTopoFile(t *testing.T) {
	// A K4 graph: every node degree 3, identifiable with enough
	// monitors (PlaceMonitors handles it).
	dir := t.TempDir()
	path := filepath.Join(dir, "k4.txt")
	edges := "a b\na c\na d\nb c\nb d\nc d\n"
	if err := os.WriteFile(path, []byte(edges), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, "", 1, 0, 1, "", ""); err != nil {
		t.Fatalf("run topo file: %v", err)
	}
	if err := run(filepath.Join(dir, "missing.txt"), "", 1, 0, 1, "", ""); err == nil {
		t.Fatal("missing topo file accepted")
	}
}

func TestRunSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	cfg := filepath.Join(dir, "cfg.json")
	if err := run("", "fig1", 1, 0, 1, cfg, ""); err != nil {
		t.Fatalf("save: %v", err)
	}
	if _, err := os.Stat(cfg); err != nil {
		t.Fatalf("config not written: %v", err)
	}
	if err := run("", "fig1", 1, 0, 1, "", cfg); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := run("", "fig1", 1, 0, 1, "", filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing config accepted")
	}
}

func TestAbsErr(t *testing.T) {
	if got := absErr(10, 12); got != 0.2 {
		t.Errorf("absErr = %g", got)
	}
	if got := absErr(0, 5); got != 0 {
		t.Errorf("absErr zero-truth = %g", got)
	}
}
