package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/serve"
	"repro/internal/store"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a cancel func; the returned done channel yields run's error.
func startDaemon(t *testing.T, preload string) (base string, cancel context.CancelFunc, done chan error, logs *lockedBuffer) {
	t.Helper()
	return startDaemonOpts(t, options{preload: preload})
}

// startDaemonOpts is startDaemon with full control over the daemon
// options (the persistence tests set dataDir and fsync).
func startDaemonOpts(t *testing.T, opts options) (base string, cancel context.CancelFunc, done chan error, logs *lockedBuffer) {
	t.Helper()
	ctx, cancelCtx := context.WithCancel(context.Background())
	logs = &lockedBuffer{}
	done = make(chan error, 1)
	opts.addr = "127.0.0.1:0"
	opts.cfg = serve.Config{Workers: 2, RequestTimeout: 2 * time.Second}
	if opts.seed == 0 {
		opts.seed = 1
	}
	opts.logw = logs
	go func() {
		done <- run(ctx, opts)
	}()
	addrRe := regexp.MustCompile(`msg=listening addr=([0-9.]+:\d+)`)
	deadline := time.Now().Add(5 * time.Second)
	for {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			return "http://" + m[1], cancelCtx, done, logs
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited early: %v (logs: %s)", err, logs.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never started listening (logs: %s)", logs.String())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// lockedBuffer makes the run() log writer safe to read while the daemon
// goroutine writes to it.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestDaemonLifecycle(t *testing.T) {
	base, cancel, done, logs := startDaemon(t, "fig1")
	defer cancel()

	// The preloaded topology is live and serves estimates end to end.
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.Status != "ok" || len(hr.Topologies) != 1 || hr.Topologies[0] != "fig1" {
		t.Fatalf("healthz = %+v", hr)
	}

	body, _ := json.Marshal(serve.RoundsRequest{Topology: "fig1", Y: make([]float64, 23)})
	resp, err = http.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: %d %s", resp.StatusCode, buf.String())
	}

	// Graceful shutdown: cancellation (the SIGTERM path) drains and exits
	// cleanly.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(logs.String(), "shutting down") {
		t.Errorf("missing shutdown log line in %q", logs.String())
	}
	// The listener is actually closed.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Errorf("daemon still serving after shutdown")
	}
}

func TestDaemonServesConcurrentClients(t *testing.T) {
	base, cancel, done, _ := startDaemon(t, "fig1")
	defer func() {
		cancel()
		<-done
	}()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for k := 0; k < 8; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rounds := make([][]float64, 4)
			for i := range rounds {
				rounds[i] = make([]float64, 23)
			}
			body, _ := json.Marshal(serve.RoundsRequest{Topology: "fig1", Rounds: rounds})
			resp, err := http.Post(base+"/v1/inspect", "application/json", bytes.NewReader(body))
			if err != nil {
				errs <- err
				return
			}
			var buf bytes.Buffer
			_, _ = buf.ReadFrom(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("inspect: %d %s", resp.StatusCode, buf.String())
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestDaemonBadPreload(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	err := run(ctx, options{addr: "127.0.0.1:0", preload: "no-such-kind", seed: 1, logw: &lockedBuffer{}})
	if err == nil {
		t.Fatal("run accepted an unknown preload kind")
	}
}

// TestDaemonDataDirRestart is the daemon-level warm-start contract:
// register a topology over HTTP, shut the daemon down (the SIGTERM
// path), start a fresh daemon on the same -data-dir, and demand the
// topology is already live with byte-identical estimate responses —
// no client-side re-registration.
func TestDaemonDataDirRestart(t *testing.T) {
	dir := t.TempDir()
	opts := options{dataDir: dir, fsync: store.FsyncAlways}

	base, cancel, done, _ := startDaemonOpts(t, opts)
	// Register a topology over the wire (a 3-node chain: two paths that
	// overlap on one link keeps the response non-trivial).
	regBody, _ := json.Marshal(serve.TopologyRequest{
		Name:  "chain",
		Edges: [][]string{{"a", "b"}, {"b", "c"}},
		Paths: [][]string{{"a", "b"}, {"a", "b", "c"}},
	})
	resp, err := http.Post(base+"/v1/topologies", "application/json", bytes.NewReader(regBody))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, buf.String())
	}
	estimate := func(base string) []byte {
		t.Helper()
		body, _ := json.Marshal(serve.RoundsRequest{Topology: "chain", Y: []float64{1.5, 2.5}})
		resp, err := http.Post(base+"/v1/estimate", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("estimate: %d %s", resp.StatusCode, buf.String())
		}
		return buf.Bytes()
	}
	before := estimate(base)

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("first daemon shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first daemon did not shut down")
	}

	base2, cancel2, done2, logs2 := startDaemonOpts(t, opts)
	defer func() {
		cancel2()
		<-done2
	}()
	if !strings.Contains(logs2.String(), "msg=\"warm start\"") {
		t.Errorf("restarted daemon did not log a warm start: %q", logs2.String())
	}
	resp, err = http.Get(base2 + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hr.Topologies) != 1 || hr.Topologies[0] != "chain" {
		t.Fatalf("restarted healthz = %+v, want [chain]", hr)
	}
	after := estimate(base2)
	if !bytes.Equal(before, after) {
		t.Fatalf("estimate diverged across restart:\n before %s\n after  %s", before, after)
	}
}

// TestDaemonPreloadSkipsRecovered proves a -preload name already in the
// journal is not re-registered (which would be a fatal name conflict at
// boot).
func TestDaemonPreloadSkipsRecovered(t *testing.T) {
	dir := t.TempDir()
	opts := options{dataDir: dir, fsync: store.FsyncAlways, preload: "fig1"}

	_, cancel, done, _ := startDaemonOpts(t, opts)
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("first daemon: %v", err)
	}

	base, cancel2, done2, logs := startDaemonOpts(t, opts)
	defer func() {
		cancel2()
		<-done2
	}()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr serve.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(hr.Topologies) != 1 || hr.Topologies[0] != "fig1" {
		t.Fatalf("healthz after recovered preload = %+v", hr)
	}
	if !strings.Contains(logs.String(), "preload already recovered") {
		t.Errorf("missing recovered-preload log line in %q", logs.String())
	}
}

// TestDaemonFollowerLifecycle runs a two-daemon replication pair over
// real processes' worth of plumbing: a durable primary, a follower
// shipping its WAL, write rejection with 421 on the standby, and
// promotion to a serving primary.
func TestDaemonFollowerLifecycle(t *testing.T) {
	primary, cancelP, doneP, _ := startDaemonOpts(t, options{
		dataDir: t.TempDir(), fsync: store.FsyncAlways,
	})
	defer func() {
		cancelP()
		<-doneP
	}()
	follower, cancelF, doneF, _ := startDaemonOpts(t, options{
		dataDir: t.TempDir(), fsync: store.FsyncAlways,
		role: "follower", follow: primary, replPoll: 10 * time.Millisecond,
	})
	defer func() {
		cancelF()
		<-doneF
	}()

	regBody, _ := json.Marshal(serve.TopologyRequest{
		Name:  "chain",
		Edges: [][]string{{"a", "b"}, {"b", "c"}},
		Paths: [][]string{{"a", "b"}, {"a", "b", "c"}},
	})
	resp, err := http.Post(primary+"/v1/topologies", "application/json", bytes.NewReader(regBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register on primary: %d", resp.StatusCode)
	}

	// The follower ships the registration within a few poll intervals.
	healthz := func(base string) serve.HealthResponse {
		t.Helper()
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hr serve.HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
			t.Fatal(err)
		}
		return hr
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		hr := healthz(follower)
		if len(hr.Topologies) == 1 && hr.Topologies[0] == "chain" {
			if hr.Role != "follower" {
				t.Fatalf("follower healthz role = %q", hr.Role)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never shipped the registration: %+v", hr)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Reads are served from the shipped registry; writes are misdirected.
	estBody, _ := json.Marshal(serve.RoundsRequest{Topology: "chain", Y: []float64{1.5, 2.5}})
	resp, err = http.Post(follower+"/v1/estimate", "application/json", bytes.NewReader(estBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate on follower: %d", resp.StatusCode)
	}
	resp, err = http.Post(follower+"/v1/topologies", "application/json", bytes.NewReader(regBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("write on follower: %d, want 421", resp.StatusCode)
	}

	// Promotion flips the role; the ex-follower now accepts writes.
	resp, err = http.Post(follower+"/v1/replication/promote", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var pr serve.PromoteResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if pr.Role != "primary" {
		t.Fatalf("promote: role %q, want primary", pr.Role)
	}
	reg2, _ := json.Marshal(serve.TopologyRequest{
		Name:  "chain2",
		Edges: [][]string{{"a", "b"}},
		Paths: [][]string{{"a", "b"}},
	})
	resp, err = http.Post(follower+"/v1/topologies", "application/json", bytes.NewReader(reg2))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("write after promote: %d, want 201", resp.StatusCode)
	}
}

// TestDaemonFollowerFlagValidation pins the follower boot contract:
// no journal dir or no primary URL is a refusal, not a silent standalone.
func TestDaemonFollowerFlagValidation(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts options
	}{
		{"no data dir", options{role: "follower", follow: "http://127.0.0.1:1"}},
		{"no follow URL", options{role: "follower", dataDir: "x"}},
		{"preload on follower", options{role: "follower", follow: "http://127.0.0.1:1", dataDir: "x", preload: "fig1"}},
		{"unknown role", options{role: "standby"}},
	} {
		tc.opts.addr = "127.0.0.1:0"
		tc.opts.logw = &lockedBuffer{}
		if tc.opts.dataDir == "x" {
			tc.opts.dataDir = t.TempDir()
		}
		if err := run(context.Background(), tc.opts); err == nil {
			t.Errorf("%s: follower booted, want refusal", tc.name)
		}
	}
}
