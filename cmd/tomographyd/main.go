// Command tomographyd runs the tomography-inference service: it loads or
// accepts measurement configurations over HTTP/JSON, serves single and
// batched estimate requests from a digest-keyed solver cache, and runs
// the paper's scapegoat consistency check (Eq. 23) on inspected rounds.
//
// Usage:
//
//	tomographyd [-addr :8723] [-workers N] [-timeout 5s] [-preload fig1|abilene|isp|wireless] [-seed S] [-alpha A]
//	            [-log-level info] [-log-json] [-trace-cap N]
//
// Observability: structured logs (log/slog) go to stdout, one line per
// API request with a request ID; Prometheus metrics (request counters,
// per-stage latency histograms, runtime gauges) are served on /metrics;
// the last -trace-cap completed request traces are served as JSON on
// /debug/traces; pprof profiles live under /debug/pprof/.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// finish (bounded by -timeout), new connections are refused.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", serve.DefaultWorkers, "max concurrent solver requests")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request timeout")
	preload := flag.String("preload", "", "register a built-in topology at startup: fig1, abilene, isp, wireless")
	seed := flag.Int64("seed", 1, "RNG seed for -preload path selection")
	alpha := flag.Float64("alpha", 0, "detection threshold for the preloaded topology (0 = paper default)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	traceCap := flag.Int("trace-cap", obs.DefaultTraceCapacity, "completed request traces retained for /debug/traces")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tomographyd: %v\n", err)
		os.Exit(2)
	}
	cfg := serve.Config{
		Workers:        *workers,
		RequestTimeout: *timeout,
		Logger:         obs.NewLogger(os.Stdout, level, *logJSON),
		TraceCapacity:  *traceCap,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *addr, cfg, *preload, *seed, *alpha, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "tomographyd: %v\n", err)
		os.Exit(1)
	}
}

// run starts the daemon on addr and blocks until ctx is cancelled (or
// the listener fails), then shuts down gracefully. Factored out of main
// so tests can drive the full lifecycle. When cfg.Logger is unset a
// text logger writing to logw is installed, so tests can capture the
// daemon's log stream.
func run(ctx context.Context, addr string, cfg serve.Config, preload string, seed int64, alpha float64, logw io.Writer) error {
	if cfg.Logger == nil {
		cfg.Logger = obs.NewLogger(logw, slog.LevelInfo, false)
	}
	log := cfg.Logger
	srv := serve.New(cfg)
	if preload != "" {
		if err := preloadTopology(srv, preload, seed, alpha); err != nil {
			return err
		}
		log.Info("preloaded topology", "kind", preload)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", ln.Addr().String(), "workers", cfg.Workers, "timeout", cfg.RequestTimeout)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down")
	grace := cfg.RequestTimeout
	if grace <= 0 {
		grace = serve.DefaultRequestTimeout
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace+time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// preloadTopology registers one of the repo's built-in topologies (with
// automatically selected identifiable paths) so the daemon starts ready
// to serve estimates without a client-side registration step.
func preloadTopology(srv *serve.Server, kind string, seed int64, alpha float64) error {
	env, err := cli.BuildSystem("", kind, seed, rand.New(rand.NewSource(seed)))
	if err != nil {
		return fmt.Errorf("preload %q: %w", kind, err)
	}
	if _, err := srv.Registry().RegisterSystem(kind, env.Sys, alpha); err != nil {
		return fmt.Errorf("preload %q: %w", kind, err)
	}
	return nil
}
