// Command tomographyd runs the tomography-inference service: it loads or
// accepts measurement configurations over HTTP/JSON, serves single and
// batched estimate requests from a digest-keyed solver cache, and runs
// the paper's scapegoat consistency check (Eq. 23) on inspected rounds.
//
// Usage:
//
//	tomographyd [-addr :8723] [-workers N] [-timeout 5s] [-preload fig1|abilene|isp|wireless] [-seed S] [-alpha A]
//	            [-log-level info] [-log-json] [-trace-cap N] [-session-idle 5m]
//	            [-data-dir DIR] [-fsync interval] [-fsync-interval 100ms] [-compact-threshold BYTES]
//	            [-role primary|follower] [-follow URL] [-replication-poll 500ms]
//
// Streaming: POST /v1/sessions opens a long-lived round session bound
// to a registered topology; NDJSON batches on /v1/sessions/{id}/rounds
// return one verdict per measurement round. Sessions idle past
// -session-idle are removed by a background reaper (negative disables
// reaping; in-flight streams are never reaped).
//
// Observability: structured logs (log/slog) go to stdout, one line per
// API request with a request ID; Prometheus metrics (request counters,
// per-stage latency histograms, runtime gauges) are served on /metrics;
// the last -trace-cap completed request traces are served as JSON on
// /debug/traces; pprof profiles live under /debug/pprof/.
//
// Durability: with -data-dir set, every topology registration and
// eviction is journaled to a checksummed write-ahead log before the
// request is acknowledged, and folded into snapshots past
// -compact-threshold bytes. On boot the daemon recovers the journal and
// re-registers every surviving topology (re-factoring each distinct
// routing matrix once into the solver cache), so a restart comes back
// warm. -fsync selects the durability/latency trade-off: always (fsync
// per append), interval (background flush every -fsync-interval), or
// never (OS page cache only).
//
// Replication: with -data-dir set, a primary serves its checksummed WAL
// on /v1/replication/wal for followers to ship. -role follower turns the
// daemon into a warm standby: it polls the -follow primary every
// -replication-poll, appends the shipped frames to its own journal
// byte-for-byte (same sequence numbers, same checksums), applies them to
// its registry with digest verification, and answers writes with 421
// until POST /v1/replication/promote makes it the primary. Followers
// require -data-dir and refuse -preload (a follower's registry is
// exactly the shipped journal, nothing else). Command tomorouter places
// topologies across replication groups and drives failover.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM: in-flight requests
// finish (bounded by -timeout), new connections are refused, and the WAL
// is flushed and fsynced before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/forensics"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8723", "listen address")
	workers := flag.Int("workers", serve.DefaultWorkers, "max concurrent solver requests")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "per-request timeout")
	preload := flag.String("preload", "", "register a built-in topology at startup: fig1, abilene, isp, wireless")
	seed := flag.Int64("seed", 1, "RNG seed for -preload path selection")
	alpha := flag.Float64("alpha", 0, "detection threshold for the preloaded topology (0 = paper default)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	traceCap := flag.Int("trace-cap", obs.DefaultTraceCapacity, "completed request traces retained for /debug/traces")
	sessionIdle := flag.Duration("session-idle", serve.DefaultSessionIdleTimeout, "idle timeout before round sessions are reaped (negative disables)")
	forensicsExemplars := flag.Int("forensics-exemplars", forensics.DefaultExemplarK, "worst-residual exemplar rounds retained per topology for /v1/topologies/{name}/forensics")
	dataDir := flag.String("data-dir", "", "directory for the durable topology journal (empty = in-memory only)")
	fsyncMode := flag.String("fsync", "interval", "WAL fsync policy: always, interval, never")
	fsyncInterval := flag.Duration("fsync-interval", store.DefaultFsyncInterval, "flush cadence under -fsync=interval")
	compactThreshold := flag.Int64("compact-threshold", store.DefaultCompactThreshold, "WAL bytes before folding into a snapshot (negative disables compaction)")
	role := flag.String("role", "primary", "replication role: primary, follower (follower requires -data-dir and -follow)")
	follow := flag.String("follow", "", "primary base URL a follower ships the WAL from")
	replPoll := flag.Duration("replication-poll", cluster.DefaultPollInterval, "follower WAL poll interval")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tomographyd: %v\n", err)
		os.Exit(2)
	}
	fsync, err := store.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tomographyd: %v\n", err)
		os.Exit(2)
	}
	opts := options{
		addr: *addr,
		cfg: serve.Config{
			Workers:            *workers,
			RequestTimeout:     *timeout,
			Logger:             obs.NewLogger(os.Stdout, level, *logJSON),
			TraceCapacity:      *traceCap,
			SessionIdleTimeout: *sessionIdle,
			ForensicsExemplars: *forensicsExemplars,
		},
		preload:          *preload,
		seed:             *seed,
		alpha:            *alpha,
		dataDir:          *dataDir,
		fsync:            fsync,
		fsyncInterval:    *fsyncInterval,
		compactThreshold: *compactThreshold,
		role:             *role,
		follow:           *follow,
		replPoll:         *replPoll,
		logw:             os.Stdout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, opts); err != nil {
		fmt.Fprintf(os.Stderr, "tomographyd: %v\n", err)
		os.Exit(1)
	}
}

// options collects everything run needs to bring the daemon up, so
// tests can drive the full lifecycle — including the persistence
// path — without threading a growing parameter list.
type options struct {
	addr             string
	cfg              serve.Config
	preload          string
	seed             int64
	alpha            float64
	dataDir          string // "" = no persistence
	fsync            store.FsyncPolicy
	fsyncInterval    time.Duration
	compactThreshold int64
	role             string // "", "primary", or "follower"
	follow           string // follower: primary base URL to ship from
	replPoll         time.Duration
	logw             io.Writer
}

// follower reports whether the daemon boots as a warm standby.
func (o *options) follower() bool { return o.role == "follower" }

// run starts the daemon and blocks until ctx is cancelled (or the
// listener fails), then shuts down gracefully: HTTP drains first, then
// the WAL is flushed, fsynced, and closed. Factored out of main so
// tests can drive the full lifecycle. When cfg.Logger is unset a text
// logger writing to opts.logw is installed, so tests can capture the
// daemon's log stream.
func run(ctx context.Context, opts options) error {
	if opts.cfg.Logger == nil {
		opts.cfg.Logger = obs.NewLogger(opts.logw, slog.LevelInfo, false)
	}
	log := opts.cfg.Logger
	switch opts.role {
	case "", "primary", "follower":
	default:
		return fmt.Errorf("unknown role %q (want primary or follower)", opts.role)
	}
	if opts.follower() {
		if opts.dataDir == "" {
			return errors.New("-role=follower requires -data-dir (the shipped journal needs a home)")
		}
		if opts.follow == "" {
			return errors.New("-role=follower requires -follow (the primary to ship the WAL from)")
		}
		if opts.preload != "" {
			return errors.New("-preload is a write; a follower's registry is exactly the shipped journal")
		}
	}
	srv := serve.New(opts.cfg)

	// Background session reaper: sweep at a quarter of the idle timeout
	// (never faster than once a second) so an abandoned session outlives
	// its deadline by at most ~25%. A negative timeout disables reaping
	// entirely, matching the serve-layer contract.
	if idle := opts.cfg.SessionIdleTimeout; idle >= 0 {
		if idle == 0 {
			idle = serve.DefaultSessionIdleTimeout
		}
		tick := idle / 4
		if tick < time.Second {
			tick = time.Second
		}
		go func() {
			t := time.NewTicker(tick)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					if n := srv.ReapSessions(); n > 0 {
						log.Info("reaped idle sessions", "count", n, "idle", idle)
					}
				}
			}
		}()
	}

	var st *store.Store
	if opts.dataDir != "" {
		dir := opts.dataDir
		metrics := store.NewMetrics(srv.Metrics().Registry(), func() float64 {
			return float64(store.DirSize(dir))
		})
		var err error
		st, err = store.Open(ctx, dir, store.Options{
			Fsync:            opts.fsync,
			FsyncInterval:    opts.fsyncInterval,
			CompactThreshold: opts.compactThreshold,
			Metrics:          metrics,
			Logger:           log,
		})
		if err != nil {
			return fmt.Errorf("open data dir %s: %w", dir, err)
		}
		// Close is idempotent; this backstop covers every early-return
		// path, while the shutdown path below closes explicitly so a
		// final-fsync failure is surfaced rather than swallowed.
		defer st.Close()
		rec := st.Recovered()
		n, err := srv.Registry().Restore(ctx, rec.Topologies)
		if err != nil {
			return fmt.Errorf("warm start from %s: %w", dir, err)
		}
		if opts.follower() {
			// The tailer is the journal's only writer until promotion, so
			// the store stays detached from the registry.
			srv.EnableReplication(st, serve.RoleFollower)
		} else {
			srv.Registry().AttachStore(st)
			srv.EnableReplication(st, serve.RolePrimary)
		}
		log.Info("warm start", "data_dir", dir, "role", srv.Role().String(),
			"topologies", n, "replayed", rec.ReplayedRecords,
			"snapshot_seq", rec.SnapshotSeq, "torn_tail", rec.TornTail)
	}

	if opts.follower() {
		tailer := &cluster.Tailer{
			Server:   srv,
			Source:   func() string { return opts.follow },
			Interval: opts.replPoll,
			Logger:   log,
		}
		go tailer.Run(ctx)
		log.Info("shipping wal", "follow", opts.follow, "poll", opts.replPoll)
	}

	if opts.preload != "" {
		// A recovered journal may already hold the preload topology;
		// re-registering would be a name conflict, so skip it.
		if _, err := srv.Registry().Get(opts.preload); err == nil {
			log.Info("preload already recovered from journal", "kind", opts.preload)
		} else {
			if err := preloadTopology(srv, opts.preload, opts.seed, opts.alpha); err != nil {
				return err
			}
			log.Info("preloaded topology", "kind", opts.preload)
		}
	}
	ln, err := net.Listen("tcp", opts.addr)
	if err != nil {
		return err
	}
	log.Info("listening", "addr", ln.Addr().String(), "workers", opts.cfg.Workers, "timeout", opts.cfg.RequestTimeout)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down")
	// Flush the WAL before draining HTTP: every mutation acknowledged so
	// far becomes durable even if the drain itself times out or hangs.
	if st != nil {
		if err := st.Sync(); err != nil {
			log.Warn("wal flush at shutdown", "err", err)
		}
	}
	grace := opts.cfg.RequestTimeout
	if grace <= 0 {
		grace = serve.DefaultRequestTimeout
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), grace+time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if st != nil {
		// Final close fsyncs the tail written by requests that completed
		// during the drain.
		if err := st.Close(); err != nil {
			return fmt.Errorf("close data dir: %w", err)
		}
		log.Info("journal closed", "data_dir", opts.dataDir)
	}
	return nil
}

// preloadTopology registers one of the repo's built-in topologies (with
// automatically selected identifiable paths) so the daemon starts ready
// to serve estimates without a client-side registration step.
func preloadTopology(srv *serve.Server, kind string, seed int64, alpha float64) error {
	env, err := cli.BuildSystem("", kind, seed, rand.New(rand.NewSource(seed)))
	if err != nil {
		return fmt.Errorf("preload %q: %w", kind, err)
	}
	if _, err := srv.Registry().RegisterSystem(kind, env.Sys, alpha); err != nil {
		return fmt.Errorf("preload %q: %w", kind, err)
	}
	return nil
}
