package main

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/serve"
)

func TestParseGroups(t *testing.T) {
	got, err := parseGroups(" http://a:1,b:2 ; c:3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{{"http://a:1", "http://b:2"}, {"http://c:3"}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseGroups = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "a:1,,b:2", ";", "a:1;;b:2"} {
		if _, err := parseGroups(bad); err == nil {
			t.Errorf("parseGroups(%q) accepted, want error", bad)
		}
	}
}

// TestRouterLifecycle boots a real router process loop over two live
// single-node shards and drives a registration plus a sharded read
// through its listener.
func TestRouterLifecycle(t *testing.T) {
	var shards []string
	for i := 0; i < 2; i++ {
		srv := serve.New(serve.Config{Workers: 2, RequestTimeout: 2 * time.Second})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		shards = append(shards, ts.URL)
	}
	layout, err := parseGroups(shards[0] + ";" + shards[1])
	if err != nil {
		t.Fatal(err)
	}

	logs := &lockedBuffer{}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, options{
			listen: "127.0.0.1:0",
			groups: layout,
			logger: obs.NewLogger(logs, slog.LevelInfo, false),
		})
	}()
	defer func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("router exited: %v", err)
		}
	}()
	addrRe := regexp.MustCompile(`msg=routing addr=([0-9.]+:\d+)`)
	var base string
	deadline := time.Now().Add(5 * time.Second)
	for base == "" {
		if m := addrRe.FindStringSubmatch(logs.String()); m != nil {
			base = "http://" + m[1]
		} else if time.Now().After(deadline) {
			t.Fatalf("router never started (logs: %s)", logs.String())
		} else {
			time.Sleep(5 * time.Millisecond)
		}
	}

	regBody, _ := json.Marshal(serve.TopologyRequest{
		Name:  "chain",
		Edges: [][]string{{"a", "b"}, {"b", "c"}},
		Paths: [][]string{{"a", "b"}, {"a", "b", "c"}},
	})
	resp, err := http.Post(base+"/v1/topologies", "application/json", bytes.NewReader(regBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register through router: %d", resp.StatusCode)
	}
	estBody, _ := json.Marshal(serve.RoundsRequest{Topology: "chain", Y: []float64{1.5, 2.5}})
	resp, err = http.Post(base+"/v1/estimate", "application/json", bytes.NewReader(estBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate through router: %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/cluster/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var ch cluster.ClusterHealth
	if err := json.NewDecoder(resp.Body).Decode(&ch); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(ch.Groups) != 2 || ch.Placements != 1 {
		t.Fatalf("cluster healthz = %+v, want 2 groups, 1 placement", ch)
	}
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
