// Command tomorouter fronts a sharded tomographyd fleet: it places each
// registered topology on a replication group by consistent-hashing its
// routing-matrix digest, forwards writes to the owning group's primary
// (promoting a warm follower when the primary is unreachable), spreads
// reads across replicas with retry, and pins streaming sessions to the
// replica that opened them.
//
// Usage:
//
//	tomorouter -groups "http://a:8723,http://b:8723;http://c:8723,http://d:8723" \
//	           [-listen :8724] [-vnodes 64] [-probe-interval 2s] [-log-level info] [-log-json]
//
// -groups lists the fleet: groups are separated by ';', and the nodes
// of one replication group by ','. The first node of each group is its
// boot primary; the rest are warm followers (tomographyd -role=follower
// pointed at the primary).
//
// The router's own endpoints live under /cluster: GET /cluster/healthz
// is the fleet view (groups, primaries, down nodes, placements), and
// GET /cluster/metrics exposes tomographyd_cluster_* counters. Plain
// GET /healthz and /metrics fan out to fleet nodes round-robin, so
// existing probes and scrapes keep working unchanged.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

func main() {
	listen := flag.String("listen", ":8724", "router listen address")
	groups := flag.String("groups", "", "fleet layout: ';'-separated replication groups of ','-separated node URLs (first node = boot primary)")
	vnodes := flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per group on the placement ring")
	probe := flag.Duration("probe-interval", cluster.DefaultProbeInterval, "health-probe cadence for down nodes (0 = default)")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn, error")
	logJSON := flag.Bool("log-json", false, "emit logs as JSON instead of text")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tomorouter: %v\n", err)
		os.Exit(2)
	}
	layout, err := parseGroups(*groups)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tomorouter: %v\n", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := options{
		listen: *listen,
		groups: layout,
		vnodes: *vnodes,
		probe:  *probe,
		logger: obs.NewLogger(os.Stdout, level, *logJSON),
	}
	if err := run(ctx, opts); err != nil {
		fmt.Fprintf(os.Stderr, "tomorouter: %v\n", err)
		os.Exit(1)
	}
}

// options collects everything run needs, so tests can drive the full
// router lifecycle without flag plumbing.
type options struct {
	listen string
	groups [][]string
	vnodes int
	probe  time.Duration
	logger *slog.Logger
}

// parseGroups splits the -groups spec into the fleet layout:
// "a,b;c,d" → [[a b] [c d]]. Whitespace around separators is ignored;
// empty groups or node URLs are refused.
func parseGroups(spec string) ([][]string, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, errors.New("-groups is required (';'-separated groups of ','-separated node URLs)")
	}
	var out [][]string
	for gi, part := range strings.Split(spec, ";") {
		var nodes []string
		for _, u := range strings.Split(part, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				return nil, fmt.Errorf("group %d: empty node URL", gi)
			}
			if !strings.Contains(u, "://") {
				u = "http://" + u
			}
			nodes = append(nodes, strings.TrimRight(u, "/"))
		}
		if len(nodes) == 0 {
			return nil, fmt.Errorf("group %d is empty", gi)
		}
		out = append(out, nodes)
	}
	return out, nil
}

// run starts the router and blocks until ctx is cancelled (or the
// listener fails), then drains in-flight proxied requests.
func run(ctx context.Context, opts options) error {
	log := opts.logger
	if log == nil {
		log = obs.DiscardLogger()
	}
	rt, err := cluster.New(cluster.Config{
		Groups: opts.groups,
		Vnodes: opts.vnodes,
		Logger: log,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", opts.listen)
	if err != nil {
		return err
	}
	nodes := 0
	for _, g := range opts.groups {
		nodes += len(g)
	}

	// Recover placements for topologies registered before this router
	// started (a restart, or a second router over a live fleet). If the
	// fleet is not up yet, keep retrying in the background — until the
	// first success, named reads fall back to the name hash.
	if err := rt.SyncPlacements(ctx); err != nil {
		log.Warn("initial placement sync failed, retrying in background", "err", err)
		go func() {
			tick := time.NewTicker(cluster.DefaultProbeInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				if err := rt.SyncPlacements(ctx); err == nil {
					log.Info("placement sync recovered")
					return
				}
			}
		}()
	}
	// Heal the routing table: down nodes are re-probed and return to
	// routing once they answer /healthz again.
	go rt.RunProber(ctx, opts.probe)

	log.Info("routing", "addr", ln.Addr().String(),
		"groups", len(opts.groups), "nodes", nodes, "vnodes", rt.Ring().Vnodes())

	httpSrv := &http.Server{
		Handler:           rt,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
