// Package repro reproduces "When Seeing Isn't Believing: On Feasibility
// and Detectability of Scapegoating in Network Tomography" (Zhao, Lu,
// Wang — ICDCS 2017) as a Go library.
//
// The implementation lives under internal/: la (dense linear algebra),
// lp (two-phase simplex), graph (topologies and paths), metrics
// (additive link metrics), topo (the paper's networks), tomo (the
// tomography engine), core (the scapegoating strategies), detect (the
// consistency detector), netsim (packet-level probe simulation), and
// experiment (the Fig. 4–9 runners). Executables live under cmd/ and
// runnable walkthroughs under examples/. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package repro
