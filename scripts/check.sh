#!/usr/bin/env bash
# CI gate: formatting, build, vet, the full test suite under the race
# detector (the serve/tomographyd/mc concurrency guarantees depend on
# passing -race, not just the plain run), a short fuzz smoke on each
# fuzz target, and a one-iteration pass over every benchmark so the
# bench harness can never silently rot.
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...

# Fast full-stack smoke: Theorem 3 over live HTTP, chaos reconciliation,
# eviction churn, and cancellation — the short-mode e2e contract.
go test -short -race -run Smoke ./internal/e2e

# Observability smoke: live /metrics lints clean under load, the trace
# golden is byte-stable, and the serve instrumentation (request IDs,
# trace ring, stage histograms, structured logs) holds under -race.
go test -race -run 'TestObsSmoke|TestTraceGoldenDeterministic' ./internal/e2e
go test -race -run 'TestMetricsExpositionLint|TestDebugTraces|TestEstimateTraceStructure|TestRequestID|TestRequestLogging|TestPprofMounted' ./internal/serve

# Durability: the store's recovery paths (torn tails, corrupt records,
# the compaction crash windows) and the kill/restart contracts at every
# layer — store, daemon, e2e — under -race.
go test -race -run 'TestTorn|TestCorrupt|TestCompaction|TestRecovery|TestSequenceRegression|TestConcurrentAppends|TestEvictThenRestart' ./internal/store
go test -race -run 'TestRegistryPersists|TestStoreFailure|TestRestoreVerifies' ./internal/serve
go test -race -run 'TestDaemonDataDirRestart|TestDaemonPreloadSkipsRecovered' ./cmd/tomographyd
go test -race -run 'TestKillRestart' ./internal/e2e

# Sparse substrate: CSR kernels and the matrix-free CGLS/LSQR/CondEst
# stack under -race, the dense/sparse agreement and solver-selection
# contracts in tomo, solver-cache sharing plus the ISP-scale acceptance
# path in serve, the live-HTTP sparse round trip, and the backbone
# generator's determinism.
go test -race ./internal/sparse
go test -race -run 'TestSparse|TestWeightedEstimateSuppressedOnSparse' ./internal/tomo ./internal/e2e
go test -race -run 'TestRegisterSparseSystemFeedsSolverMetrics|TestSparseSolverCacheShared|TestRegisterISPScale' ./internal/serve
go test -race -run 'TestBackbone' ./internal/topo ./cmd/topogen

# Streaming: session lifecycle/reaping/shedding and the mutate-delete
# races under -race, the fast NDJSON codec's byte-equivalence with
# encoding/json (including the packed wire form), rank-1 vs cold
# refactorization agreement, and the e2e stream harness — worker-count
# digest invariance plus chaos cut mid-NDJSON-stream reconciliation.
# (-short skips only the wall-clock speedup comparison, which is a
# benchmark, not a race-safety gate.)
go test -race -run 'TestSession|TestStreamRound|TestAppendStream|TestParseStream|TestPacked|TestAppendJSONFloat' ./internal/serve
go test -race -run 'TestRank1|TestDowndate|TestUpdateShape|TestEstimateBatch|TestAddRemovePath' ./internal/la ./internal/tomo
go test -short -race -run 'TestStream|TestGoldenStream|TestRunStream' ./internal/e2e ./cmd/tomoload

# Dynamic-network churn: the scenario DSL compiler, mid-run topology
# swaps, the five-epoch campaign replay (golden digest, worker-count
# invariance) and the eviction/WAL-reconcile race under -race, plus the
# defender-stale-matrix study and the tomoload -churn-script CLI path.
go test -race ./internal/netsim
go test -race -run 'TestCompileAttack|TestFlapPath|TestRunEpochs' ./internal/campaign
go test -short -race -run 'TestChurn|TestGoldenChurn|TestSessionSurvivesEvictionChurn|TestEvictionRaceWALReconcile' ./internal/e2e
go test -race -run 'TestStaleStudy|TestGoldenStaleStudy' ./internal/experiment
go test -race -run 'TestRunChurnScript' ./cmd/tomoload

# Forensics observatory: the sketch/ledger/exemplar determinism
# contracts and the detect observer hook under -race, the extended
# exposition lint (histogram bucket ordering) against a live /metrics
# scrape with the residual/suspicion families present, the forensics
# endpoint lifecycle (epoch bumps on churn, exemplar↔trace linking,
# streaming ingestion), the worker-count-invariant e2e golden, and the
# tomoload -report reconcile (client-rebuilt quantiles must match the
# server sketch exactly under chaos off).
go test -race ./internal/forensics/... ./internal/obs/...
go test -race -run 'TestForensics|TestMetricsExpositionLint|TestLint' ./internal/serve ./internal/obs
go test -race -run 'TestGoldenForensicsSnapshot' ./internal/e2e
go test -race -run 'TestRunReportForensicsExact|TestRunStreamReportForensics' ./cmd/tomoload

# Sharded cluster: the consistent-hash placement ring and failover-order
# invariants, WAL shipping (frame-identical journals, snapshot resync,
# compaction racing a live tail reader) at the store layer, role wiring
# (421 on follower writes, digest-verified apply, promotion, healthz
# role fields) in serve, the router contracts (placement, read retry,
# durable write failover, sticky sessions, fan reads) under -race, the
# two-daemon follower lifecycle, the tomorouter CLI, and the fleet soak:
# transcript digest byte-identical across worker AND shard counts, with
# a mid-soak primary kill promoting a warm follower at zero write loss.
go test -race ./internal/cluster ./cmd/tomorouter
go test -race -run 'TestReplication|TestFollowerJournal|TestApplyRecord|TestInstallSnapshot|TestCompactionRaces|TestSinceSkips' ./internal/store
go test -race -run 'TestReplication|TestFollowerRejects|TestPromote|TestApplyReplicated|TestHealthz|TestForensicsEvictUnbinds' ./internal/serve
go test -race -run 'TestDaemonFollower' ./cmd/tomographyd
go test -race -run 'TestFleet' ./internal/e2e

go test -run='^$' -fuzz=FuzzSolve -fuzztime=10s ./internal/lp
go test -run='^$' -fuzz=FuzzParseEdgeList -fuzztime=10s ./internal/graph
go test -run='^$' -fuzz=FuzzDecodeRecord -fuzztime=10s ./internal/store
go test -run='^$' -fuzz=FuzzCSRFromTriplets -fuzztime=10s ./internal/sparse

go test -run='^$' -bench=. -benchtime=1x ./...

