#!/usr/bin/env bash
# CI gate: build everything, vet, and run the full test suite under the
# race detector (the serve/tomographyd concurrency guarantees depend on
# passing -race, not just the plain run).
set -euo pipefail
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
