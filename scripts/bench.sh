#!/usr/bin/env bash
# Runs the sparse-substrate benchmarks — CSR kernels plus the tomo-level
# factor/estimate scaling sweep at 1k/10k/100k links — and emits the
# results as BENCH_sparse.json at the repo root, so scaling regressions
# show up as a reviewable diff rather than a vibe. Also runs the
# streaming benchmarks (batched estimates, rank-1 QR up/downdates) into
# BENCH_stream.json the same way, and the churn benchmarks (epoch
# re-registration vs rank-1 session mutation at 1k/10k links, with
# per-iteration p50/p95) into BENCH_churn.json.
#
# Usage: scripts/bench.sh [benchtime]
#   benchtime: go test -benchtime value (default 1x — each benchmark runs
#   once; the 100k cases are expensive enough that a single iteration is
#   already stable to a few percent).
set -euo pipefail
cd "$(dirname "$0")/.."

benchtime="${1:-1x}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

# emit_json RAW OUT: fold `go test -bench` output into a flat JSON map.
emit_json() {
    awk '
    BEGIN { print "{"; first = 1 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)           # strip GOMAXPROCS suffix
        nsop = ""; bop = ""; allocs = ""; p50 = ""; p95 = ""; nsround = ""
        for (i = 2; i <= NF; i++) {
            if ($(i) == "ns/op")     nsop    = $(i-1)
            if ($(i) == "B/op")      bop     = $(i-1)
            if ($(i) == "allocs/op") allocs  = $(i-1)
            if ($(i) == "p50-ns")    p50     = $(i-1)
            if ($(i) == "p95-ns")    p95     = $(i-1)
            if ($(i) == "ns/round")  nsround = $(i-1)
        }
        if (nsop == "") next
        if (!first) printf ",\n"
        first = 0
        printf "  \"%s\": {\"ns_per_op\": %s", name, nsop
        if (bop != "")     printf ", \"bytes_per_op\": %s", bop
        if (allocs != "")  printf ", \"allocs_per_op\": %s", allocs
        if (p50 != "")     printf ", \"p50_ns\": %s", p50
        if (p95 != "")     printf ", \"p95_ns\": %s", p95
        if (nsround != "") printf ", \"ns_per_round\": %s", nsround
        printf "}"
    }
    END { print "\n}" }
    ' "$1" > "$2"
    echo "wrote $2 ($(grep -c ns_per_op "$2") benchmarks)"
}

go test -run='^$' -bench='Sparse|BenchmarkDenseFactor' -benchtime="$benchtime" \
    ./internal/sparse ./internal/tomo | tee "$tmp"
emit_json "$tmp" BENCH_sparse.json

go test -run='^$' -bench='BenchmarkEstimateBatch|BenchmarkQRUpdate' -benchtime="$benchtime" \
    ./internal/tomo ./internal/la | tee "$tmp"
emit_json "$tmp" BENCH_stream.json

# Churn epoch routes: warm re-registration (evict + register, solver
# cache kept) vs a session rank-1 paths round trip, at dense (1k) and
# sparse (10k) scales. p50/p95 come from per-iteration timing inside
# the benchmarks; at -benchtime=1x they equal the single iteration.
go test -run='^$' -bench='BenchmarkChurnReregister|BenchmarkChurnMutate' -benchtime="$benchtime" \
    ./internal/serve | tee "$tmp"
emit_json "$tmp" BENCH_churn.json

# Observability: quantile-sketch insert/query, the full /metrics render
# with the forensic gauge families live, and the streaming-round hot
# path with the forensic observatory on vs off — the acceptance budget
# is < 5% regression for the "on" arm (compare the two ns/round
# figures in the JSON). Sub-benchmark quantiles/arms need real
# iteration counts, so this block floors benchtime at 500x.
obsbench="$benchtime"
case "$obsbench" in
    *x) [ "${obsbench%x}" -lt 500 ] && obsbench=500x ;;
esac
go test -run='^$' -bench='BenchmarkSketchInsert|BenchmarkSketchQuantile|BenchmarkForensicsIngest|BenchmarkMetricsRender|BenchmarkStreamRoundForensics' \
    -benchtime="$obsbench" ./internal/obs ./internal/forensics ./internal/serve | tee "$tmp"
awk '/BenchmarkStreamRoundForensics/ {
    for (i = 2; i <= NF; i++) if ($(i) == "ns/round") v[$1] = $(i-1)
}
END {
    on = ""; off = ""
    for (k in v) { if (k ~ /forensics=on/) on = v[k]; if (k ~ /forensics=off/) off = v[k] }
    if (on != "" && off != "" && off > 0)
        printf "forensics stream-round overhead: %.2f%% (on %s ns/round, off %s ns/round)\n", (on-off)/off*100, on, off
}' "$tmp"
emit_json "$tmp" BENCH_obs.json

# Cluster: estimate throughput through the router over a single shard
# vs a 3-group × 2-replica fleet (the routing + proxy overhead and the
# sharding win live in the gap), and failover-to-warm — primary dead to
# first successful read off the promoted follower. The failover bench
# boots a fleet per iteration, so it gets a fixed iteration count
# rather than inheriting a time-based benchtime.
go test -run='^$' -bench='BenchmarkClusterSingleShardEstimate|BenchmarkClusterThreeShardEstimate' \
    -benchtime="$benchtime" ./internal/cluster | tee "$tmp"
go test -run='^$' -bench='BenchmarkClusterFailoverToWarm' -benchtime=10x \
    ./internal/cluster | tee -a "$tmp"
emit_json "$tmp" BENCH_cluster.json
