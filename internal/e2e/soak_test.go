package e2e

import (
	"context"
	"testing"

	"repro/internal/serve"
)

// soakChaos is the fault mix the determinism soak and the golden
// transcript share: aggressive enough that every fault class fires, with
// zero latency so a 10k-request run stays fast.
var soakChaos = ChaosConfig{Drop: 0.03, Truncate: 0.04, Reset: 0.015}

// runSoak boots a fresh harness, registers the scenarios, runs the load
// plan, and returns the transcript plus the harness for reconciliation.
func runSoak(t *testing.T, scenarios []*Scenario, requests int, seed int64) (*Transcript, *Harness) {
	t.Helper()
	h, _ := newTestHarness(t, scenarios)
	tr, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:   h.URL(),
		Scenarios: scenarios,
		Requests:  requests,
		Workers:   12,
		Seed:      seed,
		Chaos:     soakChaos,
		FaultFrac: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, h
}

// TestSoakDeterministicDigest is the tentpole invariant: two fresh
// server+generator stacks fed the same seed must produce byte-identical
// transcript digests — across 12 concurrent workers, fault injection,
// and thousands of requests — and each server's counters must reconcile
// exactly with the client-side expectation.
func TestSoakDeterministicDigest(t *testing.T) {
	requests := 12000
	if testing.Short() {
		requests = 2000
	}
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)

	tr1, h1 := runSoak(t, scenarios, requests, 1234)
	tr2, h2 := runSoak(t, scenarios, requests, 1234)

	d1, d2 := tr1.Digest(), tr2.Digest()
	if d1 != d2 {
		t.Errorf("same-seed digests diverge:\n  run1 %s\n  run2 %s\nrun1:\n%s\nrun2:\n%s",
			d1, d2, tr1.Summary(), tr2.Summary())
	}
	for i, pair := range []struct {
		tr *Transcript
		h  *Harness
	}{{tr1, h1}, {tr2, h2}} {
		e := pair.tr.Expected()
		if msgs := e.Reconcile(pair.h.Metrics()); len(msgs) != 0 {
			t.Errorf("run %d does not reconcile: %v", i+1, msgs)
		}
		if e.Dropped == 0 || e.Sent == 0 {
			t.Errorf("run %d: sent %d dropped %d — chaos mix not exercised", i+1, e.Sent, e.Dropped)
		}
		// Three registrations of one routing matrix: one factorization.
		m := pair.h.Metrics()
		if hits, misses := m.CacheHits.Load(), m.CacheMisses.Load(); hits != 2 || misses != 1 {
			t.Errorf("run %d: solver cache hits/misses = %d/%d, want 2/1", i+1, hits, misses)
		}
	}

	// A different seed must produce a different plan (digest includes the
	// seed, so compare a seed-free projection: the per-op counts).
	tr3, _ := runSoak(t, scenarios, requests/4, 99)
	if tr3.Digest() == d1 {
		t.Error("different seed reproduced the same digest")
	}
}

// TestSoakDigestIgnoresWorkerCount re-runs the same plan with a
// different worker count: the digest is aggregated in request-index
// order, so client concurrency must not leak into it.
func TestSoakDigestIgnoresWorkerCount(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindChosenVictim)
	digests := make([]string, 0, 2)
	for _, workers := range []int{1, 16} {
		h, _ := newTestHarness(t, scenarios)
		tr, err := RunLoad(context.Background(), LoadConfig{
			BaseURL:   h.URL(),
			Scenarios: scenarios,
			Requests:  400,
			Workers:   workers,
			Seed:      7,
			Chaos:     soakChaos,
			FaultFrac: 0.08,
		})
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, tr.Digest())
	}
	if digests[0] != digests[1] {
		t.Errorf("digest depends on worker count: %s vs %s", digests[0], digests[1])
	}
}

// TestSoakRPSPacing sanity-checks the rate limiter: a paced run cannot
// finish faster than its schedule allows.
func TestSoakRPSPacing(t *testing.T) {
	if testing.Short() {
		t.Skip("pacing timing in short mode")
	}
	scenarios := buildKinds(t, 1, KindClean)
	h, _ := newTestHarness(t, scenarios)
	tr, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:   h.URL(),
		Scenarios: scenarios,
		Requests:  100,
		Workers:   8,
		RPS:       500,
		Seed:      3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 100 requests at 500 rps: the last is scheduled at ~198 ms.
	if tr.Elapsed.Milliseconds() < 150 {
		t.Errorf("paced run finished in %v; pacing is not applied", tr.Elapsed)
	}
	if msgs := tr.Expected().Reconcile(h.Metrics()); len(msgs) != 0 {
		t.Errorf("paced run does not reconcile: %v", msgs)
	}
}

// TestLoadConfigValidation exercises the config error paths.
func TestLoadConfigValidation(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean)
	bad := []LoadConfig{
		{Scenarios: scenarios, Requests: 10},                                                   // no BaseURL
		{BaseURL: "http://x", Scenarios: scenarios},                                            // no requests
		{BaseURL: "http://x", Requests: 10},                                                    // no scenarios
		{BaseURL: "http://x", Scenarios: scenarios, Requests: chaosSeedBase},                   // seed-space overflow
		{BaseURL: "http://x", Scenarios: scenarios, Requests: 10, FaultFrac: 1.5},              // bad fraction
		{BaseURL: "http://x", Scenarios: scenarios, Requests: 10, Chaos: ChaosConfig{Drop: 2}}, // bad chaos
	}
	for i, cfg := range bad {
		if _, err := RunLoad(context.Background(), cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

// TestHarnessDefaultsServeConfig pins that the harness really runs the
// production server wiring (registry shared between server and harness
// accessors).
func TestHarnessDefaultsServeConfig(t *testing.T) {
	h := NewHarness(serve.Config{RequestTimeout: -1})
	defer h.Close()
	if h.Server.Registry().Len() != 0 {
		t.Fatal("fresh harness registry not empty")
	}
	c := NewClient(h.URL(), nil)
	if status, hr, err := c.Healthz(context.Background()); err != nil || status != 200 || hr.Status != "ok" {
		t.Fatalf("healthz: %d %+v %v", status, hr, err)
	}
}
