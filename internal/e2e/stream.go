package e2e

import (
	"bufio"
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Seed-space layout for streaming runs, disjoint from the one-shot load
// generator's bases: session si pregenerates traffic with mc.Split(seed,
// streamRoundsSeedBase + si); its stream request b draws chaos faults
// from mc.Split(seed, streamChaosSeedBase + si·maxStreamRequests + b).
const (
	streamRoundsSeedBase = 1 << 22
	streamChaosSeedBase  = 1 << 23
	maxStreamRequests    = 4096
)

// ErrClassBusy marks a stream request the server shed with 429.
const ErrClassBusy = "busy"

// --- Streaming client ---------------------------------------------------

// SessionHandle is an open round session on the daemon.
type SessionHandle struct {
	ID     string
	Info   serve.SessionResponse
	client *Client
}

// OpenSession creates a round session bound to a registered topology
// (alpha 0 keeps the registered threshold).
func (c *Client) OpenSession(ctx context.Context, topology string, alpha float64) (*SessionHandle, error) {
	status, raw, err := c.do(ctx, http.MethodPost, "/v1/sessions",
		serve.SessionRequest{Topology: topology, Alpha: alpha})
	if err != nil {
		return nil, fmt.Errorf("e2e: open session on %s: %w", topology, err)
	}
	if status != http.StatusCreated {
		return nil, fmt.Errorf("e2e: open session on %s: status %d: %s", topology, status, raw)
	}
	var sr serve.SessionResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		return nil, fmt.Errorf("e2e: open session on %s: %w", topology, err)
	}
	return &SessionHandle{ID: sr.Session, Info: sr, client: c}, nil
}

// CloseSession deletes a session and returns its final accounting.
func (c *Client) CloseSession(ctx context.Context, id string) (int, *serve.SessionCloseResponse, error) {
	status, raw, err := c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil)
	if err != nil || status != http.StatusOK {
		return status, nil, err
	}
	var cr serve.SessionCloseResponse
	if jerr := json.Unmarshal(raw, &cr); jerr != nil {
		return status, nil, jerr
	}
	return status, &cr, nil
}

// SessionInfo fetches a session's live status.
func (c *Client) SessionInfo(ctx context.Context, id string) (int, *serve.SessionStatusResponse, error) {
	status, raw, err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil)
	if err != nil || status != http.StatusOK {
		return status, nil, err
	}
	var st serve.SessionStatusResponse
	if jerr := json.Unmarshal(raw, &st); jerr != nil {
		return status, nil, jerr
	}
	return status, &st, nil
}

// MutateSessionPaths posts one path add/remove against a session.
func (c *Client) MutateSessionPaths(ctx context.Context, id string, req serve.SessionPathsRequest) (int, *serve.SessionPathsResponse, error) {
	status, raw, err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/paths", req)
	if err != nil || status != http.StatusOK {
		return status, nil, err
	}
	var pr serve.SessionPathsResponse
	if jerr := json.Unmarshal(raw, &pr); jerr != nil {
		return status, nil, jerr
	}
	return status, &pr, nil
}

// StreamResult is the client-observed outcome of one NDJSON stream
// request: everything parsed before the response ended (or was cut).
type StreamResult struct {
	Status   int
	Verdicts []serve.StreamVerdict
	ErrLine  *serve.StreamError
	Summary  *serve.StreamSummary
	// ErrClass classifies how the stream ended abnormally ("" = clean):
	// dropped/reset/shortbody from chaos, busy for a 429 shed,
	// transport for anything else.
	ErrClass string
}

// StreamRounds posts the NDJSON lines as one rounds request and reads
// the verdict stream back, stopping cleanly at whatever point a chaotic
// transport cuts the response. Chaos faults never surface as errors
// here — they are classified into the result, because a cut stream is
// an outcome the transcript must record, not a test failure.
func (c *Client) StreamRounds(ctx context.Context, id string, lines []serve.StreamRound) (*StreamResult, error) {
	var raw []byte
	for i := range lines {
		b, ok := serve.AppendStreamRound(raw, &lines[i])
		if !ok {
			return nil, fmt.Errorf("e2e: stream line %d has non-finite values", i)
		}
		raw = b
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.Base+"/v1/sessions/"+id+"/rounds", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if rid := obs.RequestID(ctx); rid != "" {
		req.Header.Set("X-Request-Id", rid)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return &StreamResult{ErrClass: classify(err)}, nil
	}
	defer resp.Body.Close()
	res := &StreamResult{Status: resp.StatusCode}
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests {
			res.ErrClass = ErrClassBusy
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		return res, nil
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 4<<20)
	for sc.Scan() {
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		// Hot path: almost every line is a verdict in the server's exact
		// wire shape. Summary/error lines (and anything else) fall back
		// to the reflective probe below.
		var fv serve.StreamVerdict
		if serve.ParseStreamVerdict(raw, &fv) {
			res.Verdicts = append(res.Verdicts, fv)
			continue
		}
		var probe map[string]json.RawMessage
		if err := json.Unmarshal(raw, &probe); err != nil {
			// A torn final line: the body was cut mid-record.
			res.ErrClass = ErrClassShortBody
			return res, nil
		}
		switch {
		case probe["done"] != nil:
			var s serve.StreamSummary
			if err := json.Unmarshal(raw, &s); err == nil {
				res.Summary = &s
			}
		case probe["error"] != nil:
			var e serve.StreamError
			if err := json.Unmarshal(raw, &e); err == nil {
				res.ErrLine = &e
			}
		default:
			var v serve.StreamVerdict
			if err := json.Unmarshal(raw, &v); err == nil {
				res.Verdicts = append(res.Verdicts, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		res.ErrClass = classify(err)
	}
	return res, nil
}

// --- Deterministic stream runner ----------------------------------------

// StreamConfig parameterizes a streaming soak: N sessions, each fed a
// deterministic round sequence over one or more NDJSON stream requests.
type StreamConfig struct {
	// BaseURL targets the daemon.
	BaseURL string
	// Transport is the base transport chaos wraps for stream requests;
	// nil uses http.DefaultTransport. Session create/close/mutate always
	// go through a plain client — setup must not be disturbed by chaos.
	Transport http.RoundTripper
	// Scenarios is the campaign mix; session i binds scenario i mod N.
	// Their topologies must already be registered.
	Scenarios []*Scenario
	// Sessions is how many sessions to open (sequentially, so server
	// session IDs are deterministic).
	Sessions int
	// RoundsPerSession is the rounds streamed through each session.
	RoundsPerSession int
	// BatchMax caps rounds per NDJSON line; 0 means 64.
	BatchMax int
	// Workers is how many sessions stream concurrently; 0 means 4. The
	// server needs at least this many pool slots or streams shed with
	// 429 nondeterministically.
	Workers int
	// Seed roots every deterministic stream of the run.
	Seed int64
	// Chaos injects faults into stream requests only.
	Chaos ChaosConfig
	// PathChurn, when positive, splits each session's stream into
	// PathChurn+1 requests and performs an add+remove path round trip
	// between consecutive requests, exercising the rank-1 update path
	// mid-stream.
	PathChurn int
}

func (cfg *StreamConfig) validate() error {
	if cfg.BaseURL == "" {
		return errors.New("e2e: stream config needs a BaseURL")
	}
	if cfg.Sessions <= 0 || cfg.RoundsPerSession <= 0 {
		return fmt.Errorf("e2e: %d sessions x %d rounds", cfg.Sessions, cfg.RoundsPerSession)
	}
	if len(cfg.Scenarios) == 0 {
		return errors.New("e2e: stream config needs at least one scenario")
	}
	if cfg.PathChurn < 0 || cfg.PathChurn+1 > maxStreamRequests {
		return fmt.Errorf("e2e: path churn %d out of range", cfg.PathChurn)
	}
	if cfg.Sessions >= 1<<12 {
		return fmt.Errorf("e2e: %d sessions overflows the chaos seed space", cfg.Sessions)
	}
	return cfg.Chaos.Validate()
}

func (cfg *StreamConfig) workers() int {
	if cfg.Workers <= 0 {
		return 4
	}
	return cfg.Workers
}

func (cfg *StreamConfig) batchMax() int {
	if cfg.BatchMax <= 0 {
		return 64
	}
	return cfg.BatchMax
}

// SessionRecord is one session's deterministic transcript: what was
// sent, what came back, and how each stream request ended.
type SessionRecord struct {
	// Index is the session's position in the plan (the digest key; the
	// server-minted ID is creation-order dependent and excluded).
	Index int
	// Scenario names the bound campaign.
	Scenario string
	// Statuses, ErrClasses, and ReqVerdicts record each stream request's
	// HTTP status (0 = never sent), error class ("" = clean), and
	// verdict lines received before the response ended, in request order.
	Statuses    []int
	ErrClasses  []string
	ReqVerdicts []int
	// RoundsSent counts rounds in requests that reached the server.
	RoundsSent int
	// ExpAlarms is the client-side precomputed alarm count over sent rounds.
	ExpAlarms int
	// Verdicts/Alarms count verdict lines actually received and how many
	// of them were detections.
	Verdicts int
	Alarms   int
	// Residuals and XNorms are the received per-round residual norms and
	// ‖x̂‖₁, in arrival order (quantized in the digest).
	Residuals []float64
	XNorms    []float64
	// Mutations records each successful path mutation's method.
	Mutations []string
	// SummaryRounds is the server's final summary count (-1 when the
	// stream ended without one, e.g. cut by chaos).
	SummaryRounds int
	// VerdictMismatch flags any server verdict that disagreed with the
	// client-side precomputation — an invariant violation.
	VerdictMismatch bool
	// CloseStatus is the DELETE status at teardown.
	CloseStatus int
}

// StreamTranscript is the full outcome of a streaming run.
type StreamTranscript struct {
	Seed     int64
	Chaos    string
	Workers  int
	Sessions []SessionRecord
	Elapsed  time.Duration
}

// Digest hashes the transcript's deterministic content in session-index
// order. Residuals and estimate norms are quantized to 1e-3 so the
// digest survives last-ulp float drift (including the ≤1e-10 factor
// drift a rank-1 add+remove round trip leaves behind).
func (t *StreamTranscript) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "stream seed=%d chaos=%s sessions=%d\n", t.Seed, t.Chaos, len(t.Sessions))
	for i := range t.Sessions {
		r := &t.Sessions[i]
		mm := 0
		if r.VerdictMismatch {
			mm = 1
		}
		fmt.Fprintf(h, "%d|%s|%v|%v|%v|%d|%d|%d|%d|%v|%d|%d|%d",
			r.Index, r.Scenario, r.Statuses, r.ErrClasses, r.ReqVerdicts,
			r.RoundsSent, r.ExpAlarms, r.Verdicts, r.Alarms,
			r.Mutations, r.SummaryRounds, mm, r.CloseStatus)
		for j := range r.Residuals {
			fmt.Fprintf(h, "|%.3f/%.3f", r.Residuals[j], r.XNorms[j])
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// StreamExpected reconciles a streaming transcript against the server's
// counters. Without chaos every figure is exact. With chaos, response
// cuts leave the server free to process rounds the client never saw, so
// the round/alarm counters reconcile as bounds: the server must have
// processed at least every verdict a client received and at most every
// round that was sent.
type StreamExpected struct {
	Exact            bool
	ReqSessions      int64
	ReqRounds        int64
	ReqSessionDelete int64
	SessionsOpened   int64
	SessionsClosed   int64
	RoundsSent       int64
	VerdictsSeen     int64
	Alarms           int64
	MutUpdates       int64
	MutDowndates     int64
	Mismatches       int64
}

// Expected folds the transcript into counter expectations.
func (t *StreamTranscript) Expected() StreamExpected {
	e := StreamExpected{Exact: t.Chaos == "off"}
	for i := range t.Sessions {
		r := &t.Sessions[i]
		e.ReqSessions++
		e.SessionsOpened++
		if r.CloseStatus != 0 {
			e.ReqSessionDelete++
		}
		if r.CloseStatus == http.StatusOK {
			e.SessionsClosed++
		}
		for _, st := range r.Statuses {
			if st != 0 {
				e.ReqRounds++
			}
		}
		e.RoundsSent += int64(r.RoundsSent)
		e.VerdictsSeen += int64(r.Verdicts)
		e.Alarms += int64(r.ExpAlarms)
		for _, m := range r.Mutations {
			switch m {
			case "rank1-update", "sparse-append":
				e.MutUpdates++
			case "rank1-downdate", "coverage-screen":
				e.MutDowndates++
			}
		}
		if r.VerdictMismatch {
			e.Mismatches++
		}
	}
	return e
}

// Reconcile compares the expectation against live server metrics
// (assumed to belong to this run alone) and returns one message per
// mismatch.
func (e StreamExpected) Reconcile(m *serve.Metrics) []string {
	var out []string
	check := func(name string, got, want int64) {
		if got != want {
			out = append(out, fmt.Sprintf("%s = %d, want %d", name, got, want))
		}
	}
	check("ReqSessions", m.ReqSessions.Load(), e.ReqSessions)
	check("ReqRounds", m.ReqRounds.Load(), e.ReqRounds)
	check("ReqSessionDelete", m.ReqSessionDelete.Load(), e.ReqSessionDelete)
	check("SessionsOpened", m.SessionsOpened.Load(), e.SessionsOpened)
	check("SessionsClosed", m.SessionsClosed.Load(), e.SessionsClosed)
	check("PathMutations[update]", m.PathMutations.With("rank1-update").Load(), e.MutUpdates)
	check("PathMutations[downdate]", m.PathMutations.With("rank1-downdate").Load(), e.MutDowndates)
	if e.Exact {
		check("SessionRounds", m.SessionRounds.Load(), e.RoundsSent)
		check("SessionAlarms", m.SessionAlarms.Load(), e.Alarms)
	} else {
		if got := m.SessionRounds.Load(); got < e.VerdictsSeen || got > e.RoundsSent {
			out = append(out, fmt.Sprintf("SessionRounds = %d outside [%d, %d]",
				got, e.VerdictsSeen, e.RoundsSent))
		}
	}
	if e.Mismatches != 0 {
		out = append(out, fmt.Sprintf("%d server/client verdict mismatches", e.Mismatches))
	}
	return out
}

// Summary renders a human-readable run report.
func (t *StreamTranscript) Summary() string {
	e := t.Expected()
	errs := make(map[string]int)
	for i := range t.Sessions {
		for _, c := range t.Sessions[i].ErrClasses {
			if c != "" {
				errs[c]++
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sessions %d  workers %d  elapsed %v  seed %d  chaos %s\n",
		len(t.Sessions), t.Workers, t.Elapsed.Round(time.Millisecond), t.Seed, t.Chaos)
	fmt.Fprintf(&b, "  rounds sent %d  verdicts %d  alarms expected %d\n",
		e.RoundsSent, e.VerdictsSeen, e.Alarms)
	fmt.Fprintf(&b, "  mutations +%d/-%d  mismatches %d\n", e.MutUpdates, e.MutDowndates, e.Mismatches)
	for _, k := range sortedKeys(errs) {
		fmt.Fprintf(&b, "  err %-9s %5d\n", k, errs[k])
	}
	return b.String()
}

// sessionPlan is the precomputed deterministic work for one session.
type sessionPlan struct {
	index    int
	scenario *Scenario
	id       string
	rounds   []Round
	// segments partitions the NDJSON lines into stream requests; segBase
	// holds each segment's first round's global index.
	segments [][]serve.StreamRound
	segBase  []int
	// churnWalk is the node-name walk added+removed between segments.
	churnWalk []string
}

// RunStream opens cfg.Sessions sessions and streams each one's
// deterministic round sequence, concurrently across sessions but
// sequentially within one, then closes them all. Every per-session
// decision — traffic, batching, chaos faults, churn points — is a pure
// function of (seed, session index), and the transcript aggregates in
// session-index order, so a fixed-seed run yields an identical Digest
// for any worker count.
func RunStream(ctx context.Context, cfg StreamConfig) (*StreamTranscript, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	setup := NewClient(cfg.BaseURL, nil)
	base := cfg.Transport
	if cfg.Chaos.Enabled() {
		ch, err := NewChaos(cfg.Chaos, base)
		if err != nil {
			return nil, err
		}
		base = ch
	}
	streamc := setup
	if base != nil {
		streamc = NewClient(cfg.BaseURL, &http.Client{Transport: base})
	}

	// Sequential setup: pregenerate traffic and open every session in
	// index order, so server-side session IDs don't depend on scheduling.
	plans := make([]*sessionPlan, cfg.Sessions)
	for i := 0; i < cfg.Sessions; i++ {
		sc := cfg.Scenarios[i%len(cfg.Scenarios)]
		rounds, err := sc.GenRounds(mc.Split(cfg.Seed, streamRoundsSeedBase+i), cfg.RoundsPerSession)
		if err != nil {
			return nil, err
		}
		h, err := setup.OpenSession(ctx, sc.Name, 0)
		if err != nil {
			return nil, err
		}
		p := &sessionPlan{index: i, scenario: sc, id: h.ID, rounds: rounds}
		if cfg.PathChurn > 0 {
			doc, err := serve.DocFromSystem(sc.Name, sc.Sys, 0)
			if err != nil {
				return nil, err
			}
			p.churnWalk = doc.Paths[i%len(doc.Paths)]
		}
		p.plan(cfg.batchMax(), cfg.PathChurn)
		plans[i] = p
	}

	records := make([]SessionRecord, cfg.Sessions)
	var next atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= cfg.Sessions {
					return
				}
				records[i] = runSession(ctx, cfg, setup, streamc, plans[i])
			}
		}()
	}
	wg.Wait()
	return &StreamTranscript{
		Seed:     cfg.Seed,
		Chaos:    cfg.Chaos.String(),
		Workers:  cfg.workers(),
		Sessions: records,
		Elapsed:  time.Since(start),
	}, nil
}

// plan chunks the session's rounds into NDJSON lines of at most
// batchMax and partitions the lines into churn+1 stream requests.
func (p *sessionPlan) plan(batchMax, churn int) {
	var lines []serve.StreamRound
	lineBase := []int{}
	for at := 0; at < len(p.rounds); at += batchMax {
		end := min(at+batchMax, len(p.rounds))
		batch := make([][]float64, 0, end-at)
		for _, r := range p.rounds[at:end] {
			batch = append(batch, r.Y)
		}
		lines = append(lines, serve.StreamRound{Rounds: batch})
		lineBase = append(lineBase, at)
	}
	nseg := churn + 1
	if nseg > len(lines) {
		nseg = len(lines)
	}
	per := (len(lines) + nseg - 1) / nseg
	for at := 0; at < len(lines); at += per {
		end := min(at+per, len(lines))
		p.segments = append(p.segments, lines[at:end])
		p.segBase = append(p.segBase, lineBase[at])
	}
}

func runSession(ctx context.Context, cfg StreamConfig, setup, streamc *Client, p *sessionPlan) SessionRecord {
	rec := SessionRecord{Index: p.index, Scenario: p.scenario.Name, SummaryRounds: -1}
	for si, seg := range p.segments {
		if si > 0 && p.churnWalk != nil {
			// Churn point: append a duplicate path and remove it again,
			// so the round shape is unchanged but the solver has been
			// through a rank-1 update+downdate round trip.
			for _, req := range []serve.SessionPathsRequest{
				{Add: p.churnWalk},
				{Remove: intPtr(p.scenario.Sys.NumPaths())},
			} {
				status, pr, err := setup.MutateSessionPaths(ctx, p.id, req)
				if err != nil || status != http.StatusOK {
					// Mutations run on the plain client, so a failure is a
					// real server-side invariant break, not chaos.
					rec.Mutations = append(rec.Mutations, "error")
					rec.VerdictMismatch = true
					continue
				}
				rec.Mutations = append(rec.Mutations, pr.Method)
			}
		}
		segRounds := 0
		for _, line := range seg {
			segRounds += len(line.Rounds)
		}
		sctx := WithRequestSeed(ctx, mc.Split(cfg.Seed, streamChaosSeedBase+p.index*maxStreamRequests+si))
		sctx = obs.WithRequestID(sctx, fmt.Sprintf("stream-%04d-%02d", p.index, si))
		res, err := streamc.StreamRounds(sctx, p.id, seg)
		if err != nil {
			rec.Statuses = append(rec.Statuses, 0)
			rec.ErrClasses = append(rec.ErrClasses, ErrClassTransport)
			rec.ReqVerdicts = append(rec.ReqVerdicts, 0)
			continue
		}
		rec.Statuses = append(rec.Statuses, res.Status)
		rec.ErrClasses = append(rec.ErrClasses, res.ErrClass)
		rec.ReqVerdicts = append(rec.ReqVerdicts, len(res.Verdicts))
		if res.ErrClass == ErrClassDropped {
			continue
		}
		if res.Status != http.StatusOK {
			continue
		}
		rec.RoundsSent += segRounds
		for _, r := range p.rounds[p.segBase[si] : p.segBase[si]+segRounds] {
			if r.Detected {
				rec.ExpAlarms++
			}
		}
		for _, v := range res.Verdicts {
			rec.Verdicts++
			if v.Detected {
				rec.Alarms++
			}
			rec.Residuals = append(rec.Residuals, v.ResidualNorm)
			rec.XNorms = append(rec.XNorms, norm1(v.XHat))
			gi := p.segBase[si] + v.Round
			if gi >= len(p.rounds) {
				rec.VerdictMismatch = true
				continue
			}
			want := p.rounds[gi]
			if v.Detected != want.Detected {
				rec.VerdictMismatch = true
			}
			if diff := v.ResidualNorm - want.ResidualNorm; diff > 1e-6 || diff < -1e-6 {
				rec.VerdictMismatch = true
			}
		}
		if res.ErrLine != nil {
			rec.VerdictMismatch = true
		}
		if res.Summary != nil {
			rec.SummaryRounds = res.Summary.Rounds
			if res.Summary.Rounds != segRounds {
				rec.VerdictMismatch = true
			}
		}
	}
	status, _, _ := setup.CloseSession(ctx, p.id)
	rec.CloseStatus = status
	return rec
}

func intPtr(v int) *int { return &v }

func norm1(v []float64) float64 {
	var s float64
	for _, x := range v {
		if x < 0 {
			s -= x
		} else {
			s += x
		}
	}
	return s
}
