package e2e

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden soak transcript digest")

// TestGoldenSoakTranscript pins the full end-to-end pipeline — scenario
// synthesis, attack LPs, packet simulation, chaos fault plan, server
// solves, verdicts — under a single digest. Any behavioural drift in any
// layer shows up as a digest change here. Regenerate with:
//
//	go test ./internal/e2e -run TestGoldenSoakTranscript -update
func TestGoldenSoakTranscript(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)
	h, _ := newTestHarness(t, scenarios)
	tr, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:   h.URL(),
		Scenarios: scenarios,
		Requests:  300,
		Workers:   6,
		Seed:      7,
		Chaos:     soakChaos,
		FaultFrac: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs := tr.Expected().Reconcile(h.Metrics()); len(msgs) != 0 {
		t.Fatalf("golden run does not reconcile: %v", msgs)
	}

	e := tr.Expected()
	got := fmt.Sprintf(
		"digest %s\nsent %d dropped %d\nestimate-reqs %d inspect-reqs %d errors %d\nestimate-rounds %d inspect-rounds %d alarms %d\n",
		tr.Digest(), e.Sent, e.Dropped,
		e.ReqEstimate, e.ReqInspect, e.ReqErrors,
		e.EstimateRounds, e.InspectRounds, e.Alarms)

	path := filepath.Join("testdata", "soak.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("soak transcript drifted from golden.\ngot:\n%s\nwant:\n%s\nSummary:\n%s\nRun with -update if the change is intended.",
			got, want, tr.Summary())
	}
	if !strings.Contains(got, "alarms") {
		t.Fatal("golden content malformed")
	}
}
