package e2e

import (
	"context"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/la"
	"repro/internal/serve"
)

// newTestHarness boots a deterministic harness (no request deadline, so
// no status ever depends on scheduling) and registers the given
// scenarios through the wire format with a plain client.
func newTestHarness(t *testing.T, scenarios []*Scenario) (*Harness, *Client) {
	t.Helper()
	h := NewHarness(serve.Config{RequestTimeout: -1})
	t.Cleanup(h.Close)
	c := NewClient(h.URL(), nil)
	for _, sc := range scenarios {
		tr, err := c.Register(context.Background(), sc.Name, sc.Sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		if tr == nil {
			t.Fatalf("register %s: unexpected conflict on a fresh server", sc.Name)
		}
		if tr.Alpha != detect.DefaultAlpha {
			t.Fatalf("register %s: alpha %g, want default %g", sc.Name, tr.Alpha, detect.DefaultAlpha)
		}
	}
	return h, c
}

func buildKinds(t *testing.T, seed int64, kinds ...ScenarioKind) []*Scenario {
	t.Helper()
	out, err := BuildScenarios(kinds, seed)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSmokeTheorem3OverHTTP is the paper's central detectability claim
// driven through the live HTTP stack: the consistent perfect-cut attack
// (Theorem 1's construction on link 1) stays under the α = 200 detector
// on every round, while the plain chosen-victim attack on link 10 —
// whose path M3–D–M2 carries no attacker, an imperfect cut — trips it on
// every round, and clean traffic never false-alarms.
func TestSmokeTheorem3OverHTTP(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)
	h, c := newTestHarness(t, scenarios)

	// All three scenarios share the Fig. 1 routing matrix, so the solver
	// cache must factor exactly once.
	if hits, misses := h.Metrics().CacheHits.Load(), h.Metrics().CacheMisses.Load(); hits != 2 || misses != 1 {
		t.Errorf("solver cache hits/misses = %d/%d, want 2/1", hits, misses)
	}

	const rounds = 24
	wantAlarms := map[ScenarioKind]int{
		KindClean:        0,
		KindStealthy:     0,
		KindChosenVictim: rounds,
	}
	for _, sc := range scenarios {
		rs, err := sc.GenRounds(99, rounds)
		if err != nil {
			t.Fatal(err)
		}
		status, resp, err := c.Inspect(context.Background(), sc.Name, ysOf(rs), 0)
		if err != nil || status != http.StatusOK {
			t.Fatalf("%s inspect: status %d err %v", sc.Name, status, err)
		}
		if resp.Alarms != wantAlarms[sc.Kind] {
			t.Errorf("%s: %d alarms over %d rounds, want %d",
				sc.Name, resp.Alarms, rounds, wantAlarms[sc.Kind])
		}
		for j, rep := range resp.Reports {
			if rep.Detected != rs[j].Detected {
				t.Errorf("%s round %d: server verdict %v, client %v",
					sc.Name, j, rep.Detected, rs[j].Detected)
			}
			if sc.Kind == KindChosenVictim && rep.ResidualNorm <= detect.DefaultAlpha {
				t.Errorf("%s round %d: residual %.1f not above α", sc.Name, j, rep.ResidualNorm)
			}
			if sc.PerfectCut() && rep.ResidualNorm > detect.DefaultAlpha {
				t.Errorf("stealthy round %d: residual %.1f above α", j, rep.ResidualNorm)
			}
		}
	}
	// The stealthy attack is not a no-op: it does real damage while
	// staying invisible.
	for _, sc := range scenarios {
		if sc.Kind == KindStealthy && sc.Damage <= 0 {
			t.Errorf("stealthy attack solved with zero damage")
		}
	}
}

// TestSmokeChaosLoadReconciles runs a short fault-injected load burst
// and requires the server's counters to match the client-side
// expectation exactly: drops were never sent, cut bodies were fully
// processed, and every deliberate fault op cost exactly one ReqErrors.
func TestSmokeChaosLoadReconciles(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindChosenVictim)
	h, _ := newTestHarness(t, scenarios)

	tr, err := RunLoad(context.Background(), LoadConfig{
		BaseURL:   h.URL(),
		Scenarios: scenarios,
		Requests:  600,
		Workers:   8,
		Seed:      42,
		Chaos:     ChaosConfig{Drop: 0.05, Truncate: 0.05, Reset: 0.02},
		FaultFrac: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := tr.Expected()
	if msgs := e.Reconcile(h.Metrics()); len(msgs) != 0 {
		t.Fatalf("metrics do not reconcile:\n%s\n%s", msgs, tr.Summary())
	}
	if e.Dropped == 0 {
		t.Error("chaos drop never fired in 600 requests")
	}
	if e.Skipped != 0 {
		t.Errorf("%d requests skipped without a deadline", e.Skipped)
	}
	classes := make(map[string]int)
	for i := range tr.Records {
		classes[tr.Records[i].ErrClass]++
		if tr.Records[i].VerdictMismatch {
			t.Errorf("request %d: server verdicts diverged from client precomputation", i)
		}
	}
	if classes[ErrClassTransport] != 0 {
		t.Errorf("%d unclassified transport errors", classes[ErrClassTransport])
	}
	if classes[ErrClassShortBody]+classes[ErrClassReset] == 0 {
		t.Error("body-cutting chaos never surfaced in 600 requests")
	}
}

// TestSmokeEvictionChurn races live estimate traffic against an
// evict/re-register loop on the same topology. Requests may land on a
// 404 window — that is the contract — but nothing may 5xx, wedge, or
// corrupt the registry.
func TestSmokeEvictionChurn(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean)
	_, c := newTestHarness(t, scenarios)
	sc := scenarios[0]
	rs, err := sc.GenRounds(5, 4)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if status, err := c.Evict(context.Background(), sc.Name); err != nil || (status != http.StatusOK && status != http.StatusNotFound) {
				t.Errorf("evict: status %d err %v", status, err)
				return
			}
			if _, err := c.Register(context.Background(), sc.Name, sc.Sys, 0); err != nil {
				t.Errorf("re-register: %v", err)
				return
			}
		}
	}()

	got200, got404 := 0, 0
	for i := 0; i < 200; i++ {
		status, _, err := c.Estimate(context.Background(), sc.Name, ysOf(rs))
		if err != nil {
			t.Fatalf("estimate %d: %v", i, err)
		}
		switch status {
		case http.StatusOK:
			got200++
		case http.StatusNotFound:
			got404++
		default:
			t.Fatalf("estimate %d: status %d", i, status)
		}
	}
	close(stop)
	churn.Wait()
	if got200 == 0 {
		t.Error("no estimate ever succeeded under churn")
	}
	t.Logf("under churn: %d ok, %d not-found", got200, got404)

	if status, hr, err := c.Healthz(context.Background()); err != nil || status != http.StatusOK || hr.Status != "ok" {
		t.Fatalf("healthz after churn: status %d resp %+v err %v", status, hr, err)
	}
}

// TestSmokeCancellationMidSolve cancels client contexts in the middle of
// large batched solves and requires graceful degradation: the server
// neither wedges nor corrupts later requests.
func TestSmokeCancellationMidSolve(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean)
	_, c := newTestHarness(t, scenarios)
	sc := scenarios[0]
	rs, err := sc.GenRounds(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	// A big batch (many repeated rounds) gives cancellation a window.
	big := make([]la.Vector, 0, 2048)
	for len(big) < 2048 {
		big = append(big, ysOf(rs)...)
	}
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*300*time.Microsecond)
		_, _, err := c.Inspect(ctx, sc.Name, big, 0)
		cancel()
		// Either the cancellation won (transport error / 503) or the
		// solve was fast enough; both are acceptable. What is not
		// acceptable is damage visible to the next request.
		_ = err
		status, _, err := c.Estimate(context.Background(), sc.Name, ysOf(rs[:2]))
		if err != nil || status != http.StatusOK {
			t.Fatalf("estimate after cancellation %d: status %d err %v", i, status, err)
		}
	}
	if status, _, err := c.Healthz(context.Background()); err != nil || status != http.StatusOK {
		t.Fatalf("healthz after cancellations: status %d err %v", status, err)
	}
}

func ysOf(rounds []Round) []la.Vector { return ys(rounds) }
