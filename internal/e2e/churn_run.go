package e2e

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/la"
	"repro/internal/serve"
)

// Epoch transition routes a churn run takes through the live API.
const (
	// RouteRegister is epoch 0's initial POST /v1/topologies + session.
	RouteRegister = "register"
	// RouteReregister is a structural boundary: DELETE + re-register +
	// a fresh session (the old one is closed and drains cleanly).
	RouteReregister = "reregister"
	// RouteMutate is a paths-only boundary: the open session absorbs
	// the delta through POST .../paths rank-1 mutations.
	RouteMutate = "mutate"
	// RouteHold is an attack-window-only boundary: routing untouched,
	// no API call at all.
	RouteHold = "hold"
)

// EpochRecord is one epoch of a churn-campaign transcript.
type EpochRecord struct {
	Index int
	Tag   string
	Route string
	// Mutations lists the solver-derivation methods the session
	// reported for each paths mutation (mutate route only) — e.g.
	// "rank1-update", "rank1-downdate".
	Mutations []string
	// RegStatus / EvictStatus are the HTTP statuses of the epoch's
	// registration and eviction (0 when the route performs none).
	RegStatus, EvictStatus int
	// Rounds is the number of measurement rounds served.
	Rounds int
	// ExpAlarms / Alarms are precomputed vs server-reported alarm
	// counts; Residuals are the server-reported ‖R·x̂ − y‖₁ per round.
	ExpAlarms, Alarms int
	Residuals         []float64
	// Damage is the epoch attack's compiled ‖m‖₁ (0 on clean epochs).
	Damage float64
	// VerdictMismatch counts rounds whose server verdict disagreed
	// with the precomputed one.
	VerdictMismatch int
}

// ChurnTranscript is the full record of one churn campaign run.
type ChurnTranscript struct {
	Script  string
	Seed    int64
	Draw    int
	Workers int
	Epochs  []EpochRecord
	Elapsed time.Duration
}

// Digest hashes everything the campaign pins down — epoch tags, routes,
// HTTP statuses, mutation methods, alarm counts, quantized residuals —
// and nothing scheduling-dependent. Workers and Elapsed stay out, so
// the digest is invariant under worker count: the determinism contract
// for dynamic campaigns.
func (t *ChurnTranscript) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "churn script=%s seed=%d draw=%d epochs=%d\n",
		t.Script, t.Seed, t.Draw, len(t.Epochs))
	for _, ep := range t.Epochs {
		fmt.Fprintf(h, "%d|%s|%s|reg=%d|evict=%d|muts=%s|rounds=%d|exp=%d|alarms=%d|mm=%d|damage=%.3f|res=",
			ep.Index, ep.Tag, ep.Route, ep.RegStatus, ep.EvictStatus,
			strings.Join(ep.Mutations, ","), ep.Rounds, ep.ExpAlarms, ep.Alarms,
			ep.VerdictMismatch, ep.Damage)
		for _, r := range ep.Residuals {
			fmt.Fprintf(h, "%.3f,", r)
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Summary renders the per-epoch campaign table.
func (t *ChurnTranscript) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "churn campaign %q: seed=%d draw=%d workers=%d elapsed=%s\n",
		t.Script, t.Seed, t.Draw, t.Workers, t.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-3s %-42s %-10s %6s %6s %8s %10s %4s\n",
		"ep", "tag", "route", "rounds", "alarms", "expected", "damage", "mm")
	for _, ep := range t.Epochs {
		fmt.Fprintf(&b, "%-3d %-42s %-10s %6d %6d %8d %10.1f %4d\n",
			ep.Index, ep.Tag, ep.Route, ep.Rounds, ep.Alarms, ep.ExpAlarms,
			ep.Damage, ep.VerdictMismatch)
	}
	fmt.Fprintf(&b, "digest %s\n", t.Digest())
	return b.String()
}

// RunChurn executes a compiled churn plan against a live daemon. Each
// epoch transition takes the cheapest correct route: structural churn
// (links or monitors changed) evicts and re-registers the topology and
// reopens the session; paths-only churn mutates the open session in
// place; an attack-window boundary touches nothing. One-shot epochs
// (register/reregister, where the registry matrix matches the epoch)
// fan their rounds out over workers through POST /v1/inspect; mutated
// epochs stream through the session, the only surface serving the
// flapped matrix. Records land by round index, so the transcript — and
// its digest — is identical for any worker count.
func RunChurn(ctx context.Context, client *Client, plan *ChurnPlan, workers int) (*ChurnTranscript, error) {
	if workers < 1 {
		workers = 1
	}
	traffic, err := plan.GenTraffic()
	if err != nil {
		return nil, err
	}
	start := time.Now()
	t := &ChurnTranscript{Script: plan.Script.Name, Seed: plan.Seed, Draw: plan.Draw, Workers: workers}
	var session *SessionHandle
	defer func() {
		if session != nil {
			client.CloseSession(context.WithoutCancel(ctx), session.ID)
		}
	}()
	for ei := range plan.Epochs {
		ep := &plan.Epochs[ei]
		rec := EpochRecord{Index: ep.Index, Tag: ep.Tag, Damage: ep.Damage, Rounds: ep.Rounds}
		switch {
		case ei == 0:
			rec.Route = RouteRegister
			if err := registerEpoch(ctx, client, plan, ep, &rec, &session); err != nil {
				return nil, err
			}
		case ep.Delta == nil:
			rec.Route = RouteReregister
			if session != nil {
				status, _, err := client.CloseSession(ctx, session.ID)
				if err != nil || status != 200 {
					return nil, fmt.Errorf("e2e: churn epoch %d: close session: status %d err %v", ei, status, err)
				}
				session = nil
			}
			status, err := client.Evict(ctx, plan.Topology)
			if err != nil || status != 200 {
				return nil, fmt.Errorf("e2e: churn epoch %d: evict: status %d err %v", ei, status, err)
			}
			rec.EvictStatus = status
			if err := registerEpoch(ctx, client, plan, ep, &rec, &session); err != nil {
				return nil, err
			}
		case len(ep.Delta) > 0:
			rec.Route = RouteMutate
			for oi, op := range ep.Delta {
				// Add before remove, exactly as compiled: the alternate
				// appends at the end, so the remove index stays valid.
				status, pr, err := client.MutateSessionPaths(ctx, session.ID,
					serve.SessionPathsRequest{Add: op.AddWalk})
				if err != nil || status != 200 {
					return nil, fmt.Errorf("e2e: churn epoch %d op %d add: status %d err %v", ei, oi, status, err)
				}
				rec.Mutations = append(rec.Mutations, pr.Method)
				status, pr, err = client.MutateSessionPaths(ctx, session.ID,
					serve.SessionPathsRequest{Remove: intPtr(op.Remove)})
				if err != nil || status != 200 {
					return nil, fmt.Errorf("e2e: churn epoch %d op %d remove: status %d err %v", ei, oi, status, err)
				}
				rec.Mutations = append(rec.Mutations, pr.Method)
			}
		default:
			rec.Route = RouteHold
		}

		rounds := traffic[ei]
		for _, r := range rounds {
			if r.Detected {
				rec.ExpAlarms++
			}
		}
		switch rec.Route {
		case RouteRegister, RouteReregister:
			if err := runOneShotRounds(ctx, client, plan.Topology, rounds, workers, &rec); err != nil {
				return nil, fmt.Errorf("e2e: churn epoch %d: %w", ei, err)
			}
		default:
			if err := runSessionRounds(ctx, client, session, rounds, &rec); err != nil {
				return nil, fmt.Errorf("e2e: churn epoch %d: %w", ei, err)
			}
		}
		t.Epochs = append(t.Epochs, rec)
	}
	if session != nil {
		status, _, err := client.CloseSession(ctx, session.ID)
		if err != nil || status != 200 {
			return nil, fmt.Errorf("e2e: churn final close: status %d err %v", status, err)
		}
		session = nil
	}
	t.Elapsed = time.Since(start)
	return t, nil
}

func registerEpoch(ctx context.Context, client *Client, plan *ChurnPlan, ep *CompiledEpoch,
	rec *EpochRecord, session **SessionHandle) error {
	if _, err := client.Register(ctx, plan.Topology, ep.Sys, 0); err != nil {
		return fmt.Errorf("e2e: churn epoch %d: %w", ep.Index, err)
	}
	rec.RegStatus = 201
	s, err := client.OpenSession(ctx, plan.Topology, 0)
	if err != nil {
		return fmt.Errorf("e2e: churn epoch %d: %w", ep.Index, err)
	}
	*session = s
	return nil
}

// runOneShotRounds fans single-round POST /v1/inspect requests over
// workers, recording each verdict by round index.
func runOneShotRounds(ctx context.Context, client *Client, topology string,
	rounds []Round, workers int, rec *EpochRecord) error {
	rec.Residuals = make([]float64, len(rounds))
	verdicts := make([]bool, len(rounds))
	var next atomic.Int64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	if workers > len(rounds) {
		workers = len(rounds)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(rounds) {
					return
				}
				status, ir, err := client.Inspect(ctx, topology, []la.Vector{rounds[i].Y}, 0)
				if err != nil || status != 200 || len(ir.Reports) != 1 {
					errs[w] = fmt.Errorf("inspect round %d: status %d err %v", i, status, err)
					return
				}
				rec.Residuals[i] = ir.Reports[0].ResidualNorm
				verdicts[i] = ir.Reports[0].Detected
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	tally(rounds, verdicts, rec)
	return nil
}

// runSessionRounds streams the epoch's rounds through the open session
// as one NDJSON request (slim verdicts — the estimate is not needed).
func runSessionRounds(ctx context.Context, client *Client, session *SessionHandle,
	rounds []Round, rec *EpochRecord) error {
	if session == nil {
		return fmt.Errorf("no open session for a %s epoch", rec.Route)
	}
	noX := false
	lines := make([]serve.StreamRound, len(rounds))
	for i, r := range rounds {
		lines[i] = serve.StreamRound{Y: r.Y, XHat: &noX}
	}
	res, err := client.StreamRounds(ctx, session.ID, lines)
	if err != nil {
		return err
	}
	if res.ErrClass != "" || res.ErrLine != nil {
		return fmt.Errorf("stream ended abnormally: class=%q err=%v", res.ErrClass, res.ErrLine)
	}
	if len(res.Verdicts) != len(rounds) {
		return fmt.Errorf("stream returned %d verdicts for %d rounds", len(res.Verdicts), len(rounds))
	}
	rec.Residuals = make([]float64, len(rounds))
	verdicts := make([]bool, len(rounds))
	for _, v := range res.Verdicts {
		if v.Round < 0 || v.Round >= len(rounds) {
			return fmt.Errorf("stream verdict for round %d out of range", v.Round)
		}
		rec.Residuals[v.Round] = v.ResidualNorm
		verdicts[v.Round] = v.Detected
	}
	tally(rounds, verdicts, rec)
	return nil
}

// tally folds server verdicts into the epoch record, counting alarms
// and disagreements with the precomputed expectation. Residual
// comparison is quantized like the digest (1e-3): the server may reach
// its solution through a rank-1-updated factorization rather than a
// fresh solve.
func tally(rounds []Round, verdicts []bool, rec *EpochRecord) {
	for i, v := range verdicts {
		if v {
			rec.Alarms++
		}
		if v != rounds[i].Detected || math.Abs(rec.Residuals[i]-rounds[i].ResidualNorm) > 1e-3 {
			rec.VerdictMismatch++
		}
	}
}
