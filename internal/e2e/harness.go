package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"

	"repro/internal/forensics"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/tomo"
)

// Harness is a real tomographyd service core mounted on a loopback
// httptest server — the same handler, registry, worker pool, and metrics
// the production daemon runs, minus only the TCP listener flags. A
// persistent harness (NewPersistentHarness) additionally carries the
// durable store, exactly as the daemon wires it under -data-dir.
type Harness struct {
	Server *serve.Server
	HTTP   *httptest.Server
	Store  *store.Store // nil unless built by NewPersistentHarness
}

// NewHarness boots a server with cfg over loopback. Soak tests that
// need deterministic transcripts should disable the request timeout
// (RequestTimeout: -1): with no deadline the pool queues instead of
// shedding, so no request's status depends on scheduling.
func NewHarness(cfg serve.Config) *Harness {
	srv := serve.New(cfg)
	return &Harness{Server: srv, HTTP: httptest.NewServer(srv.Handler())}
}

// NewPersistentHarness boots a server whose registry journals to dir,
// recovering whatever a previous harness (or crash) left there first —
// the same open → restore → attach sequence cmd/tomographyd runs at
// boot, including the store_* instrument family on the harness metrics
// registry. Callers that simulate a crash simply drop the harness
// without calling Close; callers that simulate a graceful restart call
// Close and reopen on the same dir.
func NewPersistentHarness(ctx context.Context, cfg serve.Config, dir string, sopts store.Options) (*Harness, error) {
	srv := serve.New(cfg)
	if sopts.Metrics == nil {
		sopts.Metrics = store.NewMetrics(srv.Metrics().Registry(), func() float64 {
			return float64(store.DirSize(dir))
		})
	}
	st, err := store.Open(ctx, dir, sopts)
	if err != nil {
		return nil, fmt.Errorf("e2e: open store: %w", err)
	}
	if _, err := srv.Registry().Restore(ctx, st.Recovered().Topologies); err != nil {
		st.Close()
		return nil, fmt.Errorf("e2e: warm start: %w", err)
	}
	srv.Registry().AttachStore(st)
	return &Harness{Server: srv, HTTP: httptest.NewServer(srv.Handler()), Store: st}, nil
}

// URL is the harness's loopback base URL.
func (h *Harness) URL() string { return h.HTTP.URL }

// Metrics exposes the live server metrics for reconciliation.
func (h *Harness) Metrics() *serve.Metrics { return h.Server.Metrics() }

// Close shuts the loopback server down, then the store (when
// persistent) so the journal's tail is fsynced — the graceful-restart
// path. Crash tests skip Close entirely.
func (h *Harness) Close() {
	h.HTTP.Close()
	if h.Store != nil {
		h.Store.Close()
	}
}

// WireTopology converts a built tomography system into the
// POST /v1/topologies wire format (named edges and node-name walks) —
// the same serialization the persistence journal uses, so a registered
// and a recovered topology are digest-identical by construction.
func WireTopology(name string, sys *tomo.System, alpha float64) (serve.TopologyRequest, error) {
	doc, err := serve.DocFromSystem(name, sys, alpha)
	if err != nil {
		return serve.TopologyRequest{}, fmt.Errorf("e2e: wire topology: %w", err)
	}
	return serve.TopologyRequest{Name: doc.Name, Edges: doc.Edges, Paths: doc.Paths, Alpha: doc.Alpha}, nil
}

// Client is a thin JSON client for the daemon API, usable against the
// harness or a remote tomographyd. Its HTTP client may carry a Chaos
// transport; helper methods that must not be disturbed by chaos (setup,
// metrics scraping) should use a plain client.
type Client struct {
	Base string
	HTTP *http.Client
}

// NewClient targets base with httpc (nil = http.DefaultClient).
func NewClient(base string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{Base: strings.TrimRight(base, "/"), HTTP: httpc}
}

// do posts body as JSON (or issues a bodyless method call) and returns
// the status plus the raw response body.
func (c *Client) do(ctx context.Context, method, path string, body any) (int, []byte, error) {
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		// Status arrived but the body was cut (chaos truncate/reset).
		return resp.StatusCode, raw, err
	}
	return resp.StatusCode, raw, nil
}

// PostRaw posts an arbitrary byte body (the load generator's malformed-
// JSON fault op) and returns status, body, and transport/body error.
func (c *Client) PostRaw(ctx context.Context, path string, body []byte) (int, []byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	return resp.StatusCode, raw, err
}

// Register registers sys under name, tolerating an already-registered
// identical configuration (409) so scenario setup is idempotent against
// a long-lived daemon.
func (c *Client) Register(ctx context.Context, name string, sys *tomo.System, alpha float64) (*serve.TopologyResponse, error) {
	wire, err := WireTopology(name, sys, alpha)
	if err != nil {
		return nil, err
	}
	status, raw, err := c.do(ctx, http.MethodPost, "/v1/topologies", wire)
	if err != nil {
		return nil, fmt.Errorf("e2e: register %s: %w", name, err)
	}
	if status == http.StatusConflict {
		return nil, nil
	}
	if status != http.StatusCreated {
		return nil, fmt.Errorf("e2e: register %s: status %d: %s", name, status, raw)
	}
	var tr serve.TopologyResponse
	if err := json.Unmarshal(raw, &tr); err != nil {
		return nil, fmt.Errorf("e2e: register %s: %w", name, err)
	}
	return &tr, nil
}

// Estimate posts one estimate request (len(rounds) == 1 uses the single
// form) and returns status, parsed response (nil if unparsable), and the
// transport/body error if any.
func (c *Client) Estimate(ctx context.Context, topology string, rounds []la.Vector) (int, *serve.EstimateResponse, error) {
	status, raw, err := c.do(ctx, http.MethodPost, "/v1/estimate", roundsBody(topology, rounds, 0))
	if err != nil || status != http.StatusOK {
		return status, nil, err
	}
	var er serve.EstimateResponse
	if jerr := json.Unmarshal(raw, &er); jerr != nil {
		return status, nil, jerr
	}
	return status, &er, nil
}

// Inspect posts one inspect request and returns status, parsed response
// (nil if unparsable), and the transport/body error if any.
func (c *Client) Inspect(ctx context.Context, topology string, rounds []la.Vector, alpha float64) (int, *serve.InspectResponse, error) {
	status, raw, err := c.do(ctx, http.MethodPost, "/v1/inspect", roundsBody(topology, rounds, alpha))
	if err != nil || status != http.StatusOK {
		return status, nil, err
	}
	var ir serve.InspectResponse
	if jerr := json.Unmarshal(raw, &ir); jerr != nil {
		return status, nil, jerr
	}
	return status, &ir, nil
}

// Evict deletes a topology by name.
func (c *Client) Evict(ctx context.Context, name string) (int, error) {
	status, _, err := c.do(ctx, http.MethodDelete, "/v1/topologies/"+name, nil)
	return status, err
}

// Healthz fetches the liveness endpoint.
func (c *Client) Healthz(ctx context.Context) (int, *serve.HealthResponse, error) {
	status, raw, err := c.do(ctx, http.MethodGet, "/healthz", nil)
	if err != nil || status != http.StatusOK {
		return status, nil, err
	}
	var hr serve.HealthResponse
	if jerr := json.Unmarshal(raw, &hr); jerr != nil {
		return status, nil, jerr
	}
	return status, &hr, nil
}

// Forensics fetches a topology's forensics snapshot (residual
// quantiles, suspicion ledger, alarm bursts, exemplars).
func (c *Client) Forensics(ctx context.Context, name string) (int, *forensics.Snapshot, error) {
	status, raw, err := c.do(ctx, http.MethodGet, "/v1/topologies/"+name+"/forensics", nil)
	if err != nil || status != http.StatusOK {
		return status, nil, err
	}
	var snap forensics.Snapshot
	if jerr := json.Unmarshal(raw, &snap); jerr != nil {
		return status, nil, jerr
	}
	return status, &snap, nil
}

// MetricsSnapshot scrapes /metrics and parses the exposition into a
// flat map keyed by "name" or `name{labels}`.
func (c *Client) MetricsSnapshot(ctx context.Context) (map[string]float64, error) {
	status, raw, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("e2e: /metrics status %d", status)
	}
	return ParsePrometheus(string(raw))
}

// ParsePrometheus parses text-exposition counters/gauges into a map.
// Histogram series parse like any other sample line.
func ParsePrometheus(text string) (map[string]float64, error) {
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		idx := strings.LastIndexByte(line, ' ')
		if idx < 0 {
			return nil, fmt.Errorf("e2e: bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[idx+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("e2e: bad metrics value in %q: %w", line, err)
		}
		out[line[:idx]] = v
	}
	return out, nil
}

func roundsBody(topology string, rounds []la.Vector, alpha float64) serve.RoundsRequest {
	rr := serve.RoundsRequest{Topology: topology, Alpha: alpha}
	if len(rounds) == 1 {
		rr.Y = rounds[0]
		return rr
	}
	rr.Rounds = make([][]float64, len(rounds))
	for i, y := range rounds {
		rr.Rounds[i] = y
	}
	return rr
}
