package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/la"
	"repro/internal/serve"
	"repro/internal/store"
)

// persistentHarness boots a journal-backed harness on dir, failing the
// test on any open/recovery error.
func persistentHarness(t *testing.T, dir string, sopts store.Options) (*Harness, *Client) {
	t.Helper()
	h, err := NewPersistentHarness(context.Background(), serve.Config{RequestTimeout: -1}, dir, sopts)
	if err != nil {
		t.Fatal(err)
	}
	return h, NewClient(h.URL(), nil)
}

// rawEstimate posts an estimate request and returns the response body
// bytes verbatim — the restart tests compare these byte-for-byte, a
// stronger claim than comparing parsed floats.
func rawEstimate(t *testing.T, c *Client, topology string, y la.Vector) []byte {
	t.Helper()
	body, err := json.Marshal(serve.RoundsRequest{Topology: topology, Y: y})
	if err != nil {
		t.Fatal(err)
	}
	status, raw, err := c.PostRaw(context.Background(), "/v1/estimate", body)
	if err != nil {
		t.Fatal(err)
	}
	if status != 200 {
		t.Fatalf("estimate %s: status %d: %s", topology, status, raw)
	}
	return raw
}

// TestKillRestartWarm is the subsystem's end-to-end acceptance test:
// register the full scenario campaign against a journal-backed harness,
// kill it without any graceful store close (-fsync=always makes every
// acknowledged mutation durable on its own), restart on the same data
// dir, and demand the registry digests and the raw /v1/estimate
// response bytes are identical — the restarted daemon is
// indistinguishable from the one that died.
func TestKillRestartWarm(t *testing.T) {
	dir := t.TempDir()
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)

	h1, c1 := persistentHarness(t, dir, store.Options{Fsync: store.FsyncAlways})
	digests := make(map[string]string)
	estimates := make(map[string][]byte)
	for _, sc := range scenarios {
		tr, err := c1.Register(context.Background(), sc.Name, sc.Sys, 0)
		if err != nil {
			t.Fatal(err)
		}
		digests[sc.Name] = tr.Digest
		y := make(la.Vector, sc.Sys.NumPaths())
		for i := range y {
			y[i] = float64(i + 1)
		}
		estimates[sc.Name] = rawEstimate(t, c1, sc.Name, y)
	}
	// One eviction in the journal: the restarted registry must not
	// resurrect it.
	if _, err := c1.Register(context.Background(), "doomed", scenarios[0].Sys, 0); err != nil {
		t.Fatal(err)
	}
	if status, err := c1.Evict(context.Background(), "doomed"); err != nil || status != 200 {
		t.Fatalf("evict: status %d err %v", status, err)
	}
	// Kill: close only the listener; the store is abandoned mid-flight,
	// exactly as a SIGKILL would leave it.
	h1.HTTP.Close()

	h2, c2 := persistentHarness(t, dir, store.Options{})
	defer h2.Close()
	for _, sc := range scenarios {
		e, err := h2.Server.Registry().Get(sc.Name)
		if err != nil {
			t.Fatalf("topology %s lost across kill/restart: %v", sc.Name, err)
		}
		if e.Digest != digests[sc.Name] {
			t.Errorf("%s digest %s after restart, want %s", sc.Name, e.Digest, digests[sc.Name])
		}
		y := make(la.Vector, sc.Sys.NumPaths())
		for i := range y {
			y[i] = float64(i + 1)
		}
		if got := rawEstimate(t, c2, sc.Name, y); !bytes.Equal(got, estimates[sc.Name]) {
			t.Errorf("%s estimate bytes diverged across restart:\n before %s\n after  %s",
				sc.Name, estimates[sc.Name], got)
		}
	}
	if _, err := h2.Server.Registry().Get("doomed"); err == nil {
		t.Error("evicted topology resurrected by recovery")
	}
	// The warm start re-factored each distinct routing matrix exactly
	// once: all three scenarios share Fig. 1's matrix, so the restarted
	// cache shows one miss and two hits.
	if hits, misses := h2.Metrics().CacheHits.Load(), h2.Metrics().CacheMisses.Load(); hits != 2 || misses != 1 {
		t.Errorf("restart cache hits/misses = %d/%d, want 2/1", hits, misses)
	}
}

// TestKillRestartTornRecord crashes the daemon mid-append: the WAL ends
// in a torn frame. Recovery must truncate the tail, count it in the
// store_* metrics, and leave every previously acknowledged topology
// serving estimates.
func TestKillRestartTornRecord(t *testing.T) {
	dir := t.TempDir()
	scenarios := buildKinds(t, 1, KindStealthy)
	sc := scenarios[0]

	h1, c1 := persistentHarness(t, dir, store.Options{Fsync: store.FsyncAlways})
	tr, err := c1.Register(context.Background(), sc.Name, sc.Sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	y := make(la.Vector, sc.Sys.NumPaths())
	for i := range y {
		y[i] = float64(i + 1)
	}
	before := rawEstimate(t, c1, sc.Name, y)
	h1.HTTP.Close()

	// Simulate the crash landing mid-append: a frame header promising 64
	// payload bytes, followed by only two — exactly what a power cut
	// during write(2) leaves behind.
	wal, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := wal.Write([]byte{0x40, 0x00, 0x00, 0x00, 0xDE, 0xAD}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	h2, c2 := persistentHarness(t, dir, store.Options{})
	defer h2.Close()
	rec := h2.Store.Recovered()
	if !rec.TornTail {
		t.Error("recovery did not flag the torn tail")
	}
	if rec.TruncatedBytes != 6 {
		t.Errorf("recovery truncated %d bytes, want 6", rec.TruncatedBytes)
	}
	snap, err := c2.MetricsSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap["store_wal_truncations_total"] < 1 {
		t.Errorf("store_wal_truncations_total = %g, want >= 1", snap["store_wal_truncations_total"])
	}
	if snap["store_wal_truncated_bytes_total"] != 6 {
		t.Errorf("store_wal_truncated_bytes_total = %g, want 6", snap["store_wal_truncated_bytes_total"])
	}
	// The acknowledged topology survived the torn tail bit-for-bit...
	e, err := h2.Server.Registry().Get(sc.Name)
	if err != nil {
		t.Fatal(err)
	}
	if e.Digest != tr.Digest {
		t.Errorf("digest %s after torn-tail recovery, want %s", e.Digest, tr.Digest)
	}
	if got := rawEstimate(t, c2, sc.Name, y); !bytes.Equal(got, before) {
		t.Errorf("estimate bytes diverged after torn-tail recovery")
	}
	// ...and the truncated journal accepts and persists new mutations.
	if _, err := c2.Register(context.Background(), "after-tear", sc.Sys, 0); err != nil {
		t.Fatal(err)
	}
	h2.Close()
	h3, _ := persistentHarness(t, dir, store.Options{})
	defer h3.Close()
	if _, err := h3.Server.Registry().Get("after-tear"); err != nil {
		t.Errorf("post-recovery registration lost on next restart: %v", err)
	}
}
