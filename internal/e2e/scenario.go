package e2e

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// ScenarioKind names a traffic campaign against the Fig. 1 testbed.
type ScenarioKind string

// The five campaign kinds. "clean" sends unmanipulated routine traffic;
// the others run one of the paper's attack strategies through the packet
// simulator. "stealthy" is Theorem 1's consistent construction against a
// perfectly cut victim (link 1), which Theorem 3 proves undetectable;
// "chosen-victim" frames link 10, whose path M3–D–M2 is attacker-free,
// so the plain attack leaves a residual the Eq. 23 detector sees.
const (
	KindClean        ScenarioKind = "clean"
	KindChosenVictim ScenarioKind = "chosen-victim"
	KindStealthy     ScenarioKind = "stealthy"
	KindMaxDamage    ScenarioKind = "maxdamage"
	KindObfuscate    ScenarioKind = "obfuscate"
)

// AllKinds lists every scenario kind in canonical order.
func AllKinds() []ScenarioKind {
	return []ScenarioKind{KindClean, KindChosenVictim, KindStealthy, KindMaxDamage, KindObfuscate}
}

// ParseKinds parses a comma-separated kind list ("" = all kinds).
func ParseKinds(spec string) ([]ScenarioKind, error) {
	if spec == "" || spec == "all" {
		return AllKinds(), nil
	}
	known := make(map[ScenarioKind]bool)
	for _, k := range AllKinds() {
		known[k] = true
	}
	var out []ScenarioKind
	for _, s := range splitCSV(spec) {
		k := ScenarioKind(s)
		if !known[k] {
			return nil, fmt.Errorf("e2e: unknown scenario kind %q", s)
		}
		out = append(out, k)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("e2e: empty scenario list %q", spec)
	}
	return out, nil
}

// Traffic-synthesis parameters, matching the campaign package's fixtures:
// ±1 ms Gaussian per-hop jitter, three probes per path per round. At
// these settings clean Fig. 1 traffic never trips the default α = 200
// detector, while a plain attack on an imperfect cut always does.
const (
	TrafficJitter = 1.0
	TrafficProbes = 3
)

// maxFeasibilityDraws bounds the search for a routine-traffic draw on
// which the requested attack strategy is feasible.
const maxFeasibilityDraws = 32

// Scenario is one runnable campaign: a Fig. 1 tomography system, a true
// link-metric draw, the (possibly nil) attack plan, and a client-side
// detector identical to the one the server builds at registration.
type Scenario struct {
	// Kind is the campaign kind this scenario was built for.
	Kind ScenarioKind
	// Name is the topology registration name ("fig1-" + kind).
	Name string
	// Sys is the Fig. 1 system with the 23 exhaustive paths (rank 10).
	Sys *tomo.System
	// TrueX is the routine per-link delay draw the campaign runs over.
	TrueX la.Vector
	// Plan is the attack (nil for the clean campaign).
	Plan *netsim.AttackPlan
	// Det mirrors the detector the server registers for this topology
	// (default α), so verdicts can be precomputed client-side.
	Det *detect.Detector
	// Draw is the index of the routine-traffic draw used (the first one
	// on which the strategy was feasible).
	Draw int
	// Damage is ‖m‖₁ of the solved attack (0 for clean).
	Damage float64
}

// PerfectCut reports whether this scenario's attack is the consistent
// perfect-cut construction, i.e. undetectable by Theorem 3.
func (s *Scenario) PerfectCut() bool { return s.Kind == KindStealthy }

// BuildScenario assembles the Fig. 1 campaign of the given kind. The
// true link metrics are drawn with mc.RNG(seed, draw) for draw = 0, 1,
// …: the first draw on which the strategy is feasible wins, so the
// result is a pure function of (kind, seed). Clean always uses draw 0.
func BuildScenario(kind ScenarioKind, seed int64) (*Scenario, error) {
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		return nil, fmt.Errorf("e2e: select paths: %w", err)
	}
	if rank != f.G.NumLinks() {
		return nil, fmt.Errorf("e2e: fig1 path set rank %d, want %d", rank, f.G.NumLinks())
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		return nil, fmt.Errorf("e2e: build system: %w", err)
	}
	det, err := detect.New(sys, 0)
	if err != nil {
		return nil, fmt.Errorf("e2e: build detector: %w", err)
	}
	base := &Scenario{
		Kind: kind,
		Name: "fig1-" + string(kind),
		Sys:  sys,
		Det:  det,
	}

	for draw := 0; draw < maxFeasibilityDraws; draw++ {
		x := netsim.RoutineDelays(f.G, mc.RNG(seed, draw))
		if kind == KindClean {
			base.TrueX = x
			base.Draw = draw
			return base, nil
		}
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  f.Attackers,
			TrueX:      x,
		}
		var res *core.Result
		switch kind {
		case KindChosenVictim:
			// Link 10 sits on the attacker-free path M3–D–M2: an
			// imperfect cut, so the plain attack is detectable.
			res, err = core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
		case KindStealthy:
			// Link 1 is perfectly cut by {B, C}; the consistent
			// construction (m = R·Δx̂) leaves a zero residual.
			sc.Stealthy = true
			res, err = core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[1]})
		case KindMaxDamage:
			res, err = core.MaxDamage(sc, core.MaxDamageOptions{FirstFeasible: true})
		case KindObfuscate:
			res, err = core.Obfuscate(sc, core.ObfuscationOptions{})
		default:
			return nil, fmt.Errorf("e2e: unknown scenario kind %q", kind)
		}
		if err != nil {
			return nil, fmt.Errorf("e2e: %s strategy: %w", kind, err)
		}
		if !res.Feasible {
			continue
		}
		base.TrueX = x
		base.Draw = draw
		base.Plan = attackPlan(f, sys, res.M)
		base.Damage = res.Damage
		return base, nil
	}
	return nil, fmt.Errorf("e2e: %s infeasible on %d routine-traffic draws (seed %d)",
		kind, maxFeasibilityDraws, seed)
}

// BuildScenarios builds one scenario per kind over a shared seed.
func BuildScenarios(kinds []ScenarioKind, seed int64) ([]*Scenario, error) {
	out := make([]*Scenario, 0, len(kinds))
	for _, k := range kinds {
		sc, err := BuildScenario(k, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, sc)
	}
	return out, nil
}

// attackPlan converts a strategy solution into a simulator plan. LP
// solutions carry ~1e-13 residue on paths the attackers do not sit on;
// netsim rejects any positive manipulation there (Constraint 1 is
// enforced operationally), so sub-nanosecond entries and attacker-free
// paths are clamped to exactly zero.
func attackPlan(f *topo.Fig1Topology, sys *tomo.System, m la.Vector) *netsim.AttackPlan {
	attackers := map[graph.NodeID]bool{f.B: true, f.C: true}
	clamped := make(la.Vector, len(m))
	for i, v := range m {
		if v < 1e-9 || !sys.Paths()[i].HasAnyNode(attackers) {
			continue
		}
		clamped[i] = v
	}
	return &netsim.AttackPlan{Attackers: attackers, ExtraDelay: clamped}
}

// Round is one synthesized measurement round plus the verdict an
// identically configured detector reaches on it. The server must agree:
// the same y roundtrips the wire exactly (JSON float64 encoding is
// lossless) and the server runs the same Inspect code.
type Round struct {
	// Y is the per-path measurement vector y' the monitors observe.
	Y la.Vector
	// Detected is the precomputed Eq. 23 verdict at the default α.
	Detected bool
	// ResidualNorm is the precomputed ‖R·x̂ − y'‖₁.
	ResidualNorm float64
}

// GenRounds synthesizes n measurement rounds through the packet
// simulator; round r draws its jitter from mc.RNG(seed, r), so the
// traffic is a pure function of (scenario, seed, r).
func (s *Scenario) GenRounds(seed int64, n int) ([]Round, error) {
	out := make([]Round, n)
	for r := 0; r < n; r++ {
		y, err := netsim.RunDelay(netsim.Config{
			Graph:         s.Sys.Graph(),
			Paths:         s.Sys.Paths(),
			LinkDelays:    s.TrueX,
			Jitter:        TrafficJitter,
			ProbesPerPath: TrafficProbes,
			RNG:           mc.RNG(seed, r),
			Plan:          s.Plan,
		})
		if err != nil {
			return nil, fmt.Errorf("e2e: %s round %d: %w", s.Name, r, err)
		}
		rep, err := s.Det.Inspect(y)
		if err != nil {
			return nil, fmt.Errorf("e2e: %s round %d inspect: %w", s.Name, r, err)
		}
		out[r] = Round{Y: y, Detected: rep.Detected, ResidualNorm: rep.ResidualNorm}
	}
	return out, nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
