package e2e

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"

	"repro/internal/cluster"
	"repro/internal/detect"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// FleetConfig shapes an in-process sharded cluster.
type FleetConfig struct {
	// Groups is the number of replication groups (shards).
	Groups int
	// Replicas is nodes per group: one primary plus Replicas-1 followers.
	Replicas int
	// Vnodes is the placement-ring density (0 = cluster.DefaultVnodes).
	Vnodes int
	// Serve configures every shard. A zero RequestTimeout is replaced by
	// -1 (no deadline): fleet soaks assert deterministic transcripts, and
	// with no deadline the worker pool queues instead of shedding.
	Serve serve.Config
	// Dir is the base directory for the per-node durable stores
	// (Dir/g<G>/n<N>).
	Dir string
}

// FleetNode is one shard process: a real server over loopback with its
// own journal, exactly what one tomographyd -role=... daemon runs.
type FleetNode struct {
	Name   string
	Server *serve.Server
	Store  *store.Store
	HTTP   *httptest.Server
	// Tailer is nil on each group's boot primary.
	Tailer *cluster.Tailer
}

// URL is the node's loopback base URL.
func (n *FleetNode) URL() string { return n.HTTP.URL }

// Fleet is a running sharded cluster behind a router, with synchronous
// WAL shipping: the router's AfterWrite hook steps every follower
// tailer before a write is acknowledged, so replication order is a pure
// function of the write order and the whole fleet is as deterministic
// as a single harness. Shard-facing traffic goes through a Chaos
// transport so tests can partition whole shards mid-soak.
type Fleet struct {
	Router *cluster.Router
	HTTP   *httptest.Server
	// Nodes is indexed [group][replica] in boot order, matching the
	// router's group node order.
	Nodes [][]*FleetNode

	chaos *Chaos

	mu      sync.Mutex
	syncErr error
	closed  bool
}

// NewFleet boots cfg.Groups × cfg.Replicas shards and a router over
// them. Callers own Close.
func NewFleet(ctx context.Context, cfg FleetConfig) (*Fleet, error) {
	if cfg.Groups <= 0 || cfg.Replicas <= 0 {
		return nil, fmt.Errorf("e2e: fleet needs positive groups and replicas, got %d×%d", cfg.Groups, cfg.Replicas)
	}
	if cfg.Dir == "" {
		return nil, fmt.Errorf("e2e: fleet needs a store directory")
	}
	if cfg.Serve.RequestTimeout == 0 {
		cfg.Serve.RequestTimeout = -1
	}
	chaos, err := NewChaos(ChaosConfig{}, nil)
	if err != nil {
		return nil, err
	}
	f := &Fleet{chaos: chaos}

	urls := make([][]string, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		var row []*FleetNode
		for i := 0; i < cfg.Replicas; i++ {
			node, err := newFleetNode(ctx, cfg, g, i)
			if err != nil {
				f.Close()
				return nil, err
			}
			row = append(row, node)
			urls[g] = append(urls[g], node.URL())
		}
		f.Nodes = append(f.Nodes, row)
	}

	rt, err := cluster.New(cluster.Config{
		Groups: urls,
		Vnodes: cfg.Vnodes,
		Client: chaos.Client(),
		Logger: cfg.Serve.Logger,
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	f.Router = rt
	for g, row := range f.Nodes {
		grp := rt.Groups()[g]
		for _, node := range row[1:] {
			node.Tailer = &cluster.Tailer{
				Server: node.Server,
				Source: func() string { return grp.Primary().URL },
				HTTP:   chaos.Client(),
				Logger: cfg.Serve.Logger,
			}
		}
	}
	rt.AfterWrite = func(g int) {
		if err := f.SyncGroup(context.Background(), g); err != nil {
			f.mu.Lock()
			if f.syncErr == nil {
				f.syncErr = err
			}
			f.mu.Unlock()
		}
	}
	f.HTTP = httptest.NewServer(rt)
	return f, nil
}

// newFleetNode opens one shard: store, warm restore, role wiring — the
// same boot sequence cmd/tomographyd runs under -data-dir plus -role.
func newFleetNode(ctx context.Context, cfg FleetConfig, g, i int) (*FleetNode, error) {
	name := fmt.Sprintf("g%d/n%d", g, i)
	dir := filepath.Join(cfg.Dir, fmt.Sprintf("g%d", g), fmt.Sprintf("n%d", i))
	srv := serve.New(cfg.Serve)
	st, err := store.Open(ctx, dir, store.Options{
		Metrics: store.NewMetrics(srv.Metrics().Registry(), func() float64 {
			return float64(store.DirSize(dir))
		}),
		Logger: cfg.Serve.Logger,
	})
	if err != nil {
		return nil, fmt.Errorf("e2e: fleet node %s: %w", name, err)
	}
	if _, err := srv.Registry().Restore(ctx, st.Recovered().Topologies); err != nil {
		st.Close()
		return nil, fmt.Errorf("e2e: fleet node %s warm start: %w", name, err)
	}
	if i == 0 {
		srv.Registry().AttachStore(st)
		srv.EnableReplication(st, serve.RolePrimary)
	} else {
		// Followers keep the store detached from the registry: the tailer
		// is the journal's only writer until promotion.
		srv.EnableReplication(st, serve.RoleFollower)
	}
	return &FleetNode{Name: name, Server: srv, Store: st, HTTP: httptest.NewServer(srv.Handler())}, nil
}

// URL is the router's base URL — the fleet's front door.
func (f *Fleet) URL() string { return f.HTTP.URL }

// ShardChaos is the chaos transport between the router and the shards;
// Partition/Heal on it cuts whole shards off mid-soak.
func (f *Fleet) ShardChaos() *Chaos { return f.chaos }

// SyncGroup steps every follower tailer of group g until quiescent.
func (f *Fleet) SyncGroup(ctx context.Context, g int) error {
	for _, node := range f.Nodes[g][1:] {
		if node.Tailer == nil {
			continue
		}
		for {
			n, err := node.Tailer.Step(ctx)
			if err != nil {
				return fmt.Errorf("e2e: sync %s: %w", node.Name, err)
			}
			if n == 0 {
				break
			}
		}
	}
	return nil
}

// SyncAll steps every follower tailer in the fleet until quiescent.
func (f *Fleet) SyncAll(ctx context.Context) error {
	for g := range f.Nodes {
		if err := f.SyncGroup(ctx, g); err != nil {
			return err
		}
	}
	return nil
}

// SyncErr returns the first replication error recorded by the
// AfterWrite hook (nil on a healthy run).
func (f *Fleet) SyncErr() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.syncErr
}

// KillPrimary crashes group g's current primary — connections torn,
// listener closed, no WAL flush beyond what each acknowledged write
// already forced — and returns the dead node. The caller decides
// whether failover is driven explicitly (Router.Failover) or left to
// the next write's transparent path.
func (f *Fleet) KillPrimary(g int) *FleetNode {
	grp := f.Router.Groups()[g]
	node := f.Nodes[g][grp.PrimaryIndex()]
	node.HTTP.CloseClientConnections()
	node.HTTP.Close()
	return node
}

// RegisterScenarios registers every scenario through the router with a
// plain (chaos-free) client, so fleet setup mirrors newTestHarness.
func (f *Fleet) RegisterScenarios(ctx context.Context, scenarios []*Scenario) error {
	c := NewClient(f.URL(), nil)
	for _, sc := range scenarios {
		if _, err := c.Register(ctx, sc.Name, sc.Sys, 0); err != nil {
			return err
		}
	}
	return f.SyncErr()
}

// ScrapeAll scrapes every node's /metrics directly (not through the
// router) and returns the per-node maps in flat boot order.
func (f *Fleet) ScrapeAll(ctx context.Context) ([]map[string]float64, error) {
	var out []map[string]float64
	for _, row := range f.Nodes {
		for _, node := range row {
			m, err := NewClient(node.URL(), nil).MetricsSnapshot(ctx)
			if err != nil {
				return nil, fmt.Errorf("e2e: scrape %s: %w", node.Name, err)
			}
			out = append(out, m)
		}
	}
	return out, nil
}

// Close shuts the router and every shard down (idempotent).
func (f *Fleet) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	f.mu.Unlock()
	if f.HTTP != nil {
		f.HTTP.Close()
	}
	for _, row := range f.Nodes {
		for _, node := range row {
			node.HTTP.Close()
			node.Store.Close()
		}
	}
}

// SumMetrics adds per-node scrape maps into one fleet-wide map.
func SumMetrics(maps ...map[string]float64) map[string]float64 {
	out := make(map[string]float64)
	for _, m := range maps {
		for k, v := range m {
			out[k] += v
		}
	}
	return out
}

// ReconcileFleetScrape checks a load expectation against per-node
// scrape pairs summed fleet-wide. Requests fan across shards
// nondeterministically under concurrency, but each request lands on
// exactly one node, so the sums are exact. Every node's post scrape
// counts itself once (the same self-hit ReconcileScrape documents), so
// the summed delta carries len(nodes) self-hits where the single-node
// contract expects one; the surplus is folded out before delegating.
func ReconcileFleetScrape(e ExpectedMetrics, pre, post []map[string]float64) []string {
	if len(pre) != len(post) {
		return []string{fmt.Sprintf("e2e: %d pre scrapes vs %d post scrapes", len(pre), len(post))}
	}
	sumPre, sumPost := SumMetrics(pre...), SumMetrics(post...)
	sumPost[`tomographyd_requests_total{route="metrics"}`] -= float64(len(post) - 1)
	return e.ReconcileScrape(sumPre, sumPost)
}

// BackboneScenario builds a clean (attack-free) campaign over a
// deterministic backbone topology of roughly `links` links. Every
// Fig. 1 scenario shares one routing matrix — and therefore one
// placement key — so fleet soaks use backbone scenarios to give each
// replication group its own digest and spread the campaign across
// shards.
func BackboneScenario(name string, links int, seed int64) (*Scenario, error) {
	g, err := topo.Backbone(seed, links)
	if err != nil {
		return nil, fmt.Errorf("e2e: backbone scenario %s: %w", name, err)
	}
	paths, err := topo.BackbonePaths(g, links/10, seed)
	if err != nil {
		return nil, fmt.Errorf("e2e: backbone scenario %s paths: %w", name, err)
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		return nil, fmt.Errorf("e2e: backbone scenario %s system: %w", name, err)
	}
	det, err := detect.New(sys, 0)
	if err != nil {
		return nil, fmt.Errorf("e2e: backbone scenario %s detector: %w", name, err)
	}
	return &Scenario{
		Kind:  KindClean,
		Name:  name,
		Sys:   sys,
		TrueX: netsim.RoutineDelays(g, mc.RNG(seed, 0)),
		Det:   det,
	}, nil
}
