package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fleetSeed/fleetRequests pin the fleet soak plan: every fleet shape in
// this file runs the same deterministic request stream, so their
// transcript digests are directly comparable (and pinned in
// testdata/fleet.golden).
const (
	fleetSeed     = 21
	fleetRequests = 400
)

// fleetScenarios is the fleet campaign mix: the Fig. 1 kinds all share
// one routing matrix — one placement key — so two backbone systems with
// digests of their own ride along to spread registrations over multiple
// replication groups.
func fleetScenarios(t *testing.T) []*Scenario {
	t.Helper()
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)
	for _, bb := range []struct {
		name  string
		links int
		seed  int64
	}{
		{"backbone-80", 80, 7},
		{"backbone-120", 120, 11},
	} {
		sc, err := BackboneScenario(bb.name, bb.links, bb.seed)
		if err != nil {
			t.Fatal(err)
		}
		scenarios = append(scenarios, sc)
	}
	return scenarios
}

// newTestFleet boots a fleet whose replication hook errors fail the
// test and whose shards close with it.
func newTestFleet(t *testing.T, groups, replicas int) *Fleet {
	t.Helper()
	f, err := NewFleet(context.Background(), FleetConfig{
		Groups:   groups,
		Replicas: replicas,
		Dir:      t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := f.SyncErr(); err != nil {
			t.Errorf("replication sync: %v", err)
		}
		f.Close()
	})
	return f
}

// runFleetSoak registers the scenarios, drives the standard fleet load
// plan with the given worker count, and reconciles the client-side
// expectation against fleet-wide scrape sums.
func runFleetSoak(t *testing.T, f *Fleet, scenarios []*Scenario, workers int) *Transcript {
	t.Helper()
	ctx := context.Background()
	if err := f.RegisterScenarios(ctx, scenarios); err != nil {
		t.Fatal(err)
	}
	pre, err := f.ScrapeAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := RunLoad(ctx, LoadConfig{
		BaseURL:   f.URL(),
		Scenarios: scenarios,
		Requests:  fleetRequests,
		Workers:   workers,
		Seed:      fleetSeed,
		Chaos:     soakChaos,
		FaultFrac: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	post, err := f.ScrapeAll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := ReconcileFleetScrape(tr.Expected(), pre, post); len(msgs) != 0 {
		t.Errorf("fleet scrape does not reconcile: %v", msgs)
	}
	return tr
}

// TestFleetSoakShardAndWorkerInvariant is the cluster tentpole
// invariant: the transcript digest of a fixed-seed soak is byte-
// identical across {1, 5} workers × {1, 3} shards. Sharding moves each
// request to a different process, replication serves reads from
// whichever replica the router picks, and the worker pool reorders
// execution — none of it may leak into the observable transcript. The
// digest is pinned in testdata/fleet.golden (refresh with -update).
func TestFleetSoakShardAndWorkerInvariant(t *testing.T) {
	scenarios := fleetScenarios(t)
	shapes := []struct {
		groups, replicas, workers int
	}{
		{1, 1, 1},
		{1, 1, 5},
		{3, 2, 1},
		{3, 2, 5},
	}
	digests := make([]string, len(shapes))
	for i, sh := range shapes {
		t.Logf("fleet %d×%d, %d workers", sh.groups, sh.replicas, sh.workers)
		f := newTestFleet(t, sh.groups, sh.replicas)
		tr := runFleetSoak(t, f, scenarios, sh.workers)
		digests[i] = tr.Digest()
		if sh.groups > 1 {
			used := make(map[int]bool)
			for _, sc := range scenarios {
				g, ok := f.Router.Lookup(sc.Name)
				if !ok {
					t.Fatalf("no placement learned for %s", sc.Name)
				}
				used[g] = true
			}
			if len(used) < 2 {
				t.Errorf("campaign landed on %d group(s), want >= 2 (no sharding exercised)", len(used))
			}
		}
	}
	for i, d := range digests[1:] {
		if d != digests[0] {
			t.Errorf("digest diverged: shape %v = %s, shape %v = %s",
				shapes[i+1], d, shapes[0], digests[0])
		}
	}

	got := fmt.Sprintf("digest %s\n", digests[0])
	path := filepath.Join("testdata", "fleet.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("fleet transcript drifted from golden:\n got: %s\nwant: %s", got, want)
	}
}

// goldenFleetDigest reads the digest pinned by
// TestFleetSoakShardAndWorkerInvariant.
func goldenFleetDigest(t *testing.T) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "fleet.golden"))
	if err != nil {
		t.Fatalf("read fleet golden (run the invariant test with -update first): %v", err)
	}
	line := strings.SplitN(strings.TrimSpace(string(raw)), "\n", 2)[0]
	return strings.TrimPrefix(line, "digest ")
}

// fleetEstimateRaw issues one deterministic estimate for sc through the
// fleet front door and returns the raw response bytes — the unit of the
// byte-identical replica contract.
func fleetEstimateRaw(t *testing.T, base string, sc *Scenario) []byte {
	t.Helper()
	rounds, err := sc.GenRounds(99, 1)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(roundsBody(sc.Name, ys(rounds), 0))
	if err != nil {
		t.Fatal(err)
	}
	status, raw, err := NewClient(base, nil).PostRaw(context.Background(), "/v1/estimate", buf)
	if err != nil {
		t.Fatalf("estimate %s: %v", sc.Name, err)
	}
	if status != http.StatusOK {
		t.Fatalf("estimate %s: status %d: %s", sc.Name, status, raw)
	}
	return raw
}

// TestFleetMidSoakPrimaryKill partitions a replication group's primary
// away mid-soak and then crashes it for real. The soak must finish with
// the exact golden digest (reads fall over to the warm follower, whose
// responses are byte-identical), the explicit failover must promote
// that follower, and the promoted journal must account for every
// acknowledged write — zero loss — before accepting new ones.
func TestFleetMidSoakPrimaryKill(t *testing.T) {
	scenarios := fleetScenarios(t)
	f := newTestFleet(t, 3, 2)
	ctx := context.Background()
	if err := f.RegisterScenarios(ctx, scenarios); err != nil {
		t.Fatal(err)
	}

	// The Fig. 1 trio shares one placement — its group carries the bulk
	// of the traffic, so that is the primary worth killing.
	gKill, ok := f.Router.Lookup(scenarios[0].Name)
	if !ok {
		t.Fatalf("no placement for %s", scenarios[0].Name)
	}
	preKill := make(map[string][]byte, len(scenarios))
	for _, sc := range scenarios {
		preKill[sc.Name] = fleetEstimateRaw(t, f.URL(), sc)
	}

	// Partition (rather than close) during the soak: new requests to the
	// primary fail at the transport and retry on the follower, while
	// requests already in flight complete cleanly — no torn responses,
	// so the transcript digest stays exactly the no-fault golden.
	primary := f.Nodes[gKill][0]
	go func() {
		time.Sleep(30 * time.Millisecond)
		f.ShardChaos().Partition(primary.URL())
	}()
	tr, err := RunLoad(ctx, LoadConfig{
		BaseURL:   f.URL(),
		Scenarios: scenarios,
		Requests:  fleetRequests,
		Workers:   5,
		Seed:      fleetSeed,
		Chaos:     soakChaos,
		FaultFrac: 0.08,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := tr.Digest(), goldenFleetDigest(t); got != want {
		t.Errorf("digest drifted under mid-soak primary loss:\n got %s\nwant %s", got, want)
	}

	// Now the crash is real: listener closed, connections torn.
	dead := f.KillPrimary(gKill)
	if dead != primary {
		t.Fatalf("killed %s, expected boot primary %s", dead.Name, primary.Name)
	}
	if err := f.Router.Failover(gKill); err != nil {
		t.Fatal(err)
	}
	grp := f.Router.Groups()[gKill]
	if grp.PrimaryIndex() == 0 {
		t.Fatal("failover left the dead boot primary in charge")
	}
	promoted := f.Nodes[gKill][grp.PrimaryIndex()]
	if role := promoted.Server.Role(); role.String() != "primary" {
		t.Fatalf("promoted node role = %s, want primary", role)
	}

	// Zero acknowledged-write loss: every registration acked for this
	// group is a frame in the promoted journal, and every topology in
	// the fleet — including the killed group's — still serves the exact
	// bytes it served before the crash.
	placed := 0
	for _, sc := range scenarios {
		if g, ok := f.Router.Lookup(sc.Name); ok && g == gKill {
			placed++
		}
	}
	if placed == 0 {
		t.Fatal("killed group held no placements; kill test is vacuous")
	}
	if got := promoted.Store.LastSeq(); got != uint64(placed) {
		t.Errorf("promoted WAL at seq %d, want %d acked writes", got, placed)
	}
	for _, sc := range scenarios {
		if got := fleetEstimateRaw(t, f.URL(), sc); !bytes.Equal(got, preKill[sc.Name]) {
			t.Errorf("%s: post-failover estimate differs from pre-kill bytes", sc.Name)
		}
	}

	// The group must take writes again: a fresh registration through the
	// router is acknowledged and immediately servable.
	post, err := BackboneScenario("backbone-post", 160, 13)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewClient(f.URL(), nil).Register(ctx, post.Name, post.Sys, 0); err != nil {
		t.Fatalf("post-failover register: %v", err)
	}
	fleetEstimateRaw(t, f.URL(), post)
}
