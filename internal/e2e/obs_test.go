package e2e

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/serve"
)

// getRaw fetches base+path and returns the body.
func getRaw(t *testing.T, base, path string) []byte {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestObsSmoke drives concurrent load through the full stack and then
// checks the whole observability surface at once: the live /metrics
// exposition lints clean and carries runtime gauges plus per-stage
// latency histograms, /debug/traces shows an estimate request wrapping
// its solve, pprof answers, and client/server counters still reconcile
// exactly. check.sh runs this under -race.
func TestObsSmoke(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindStealthy)
	h, c := newTestHarness(t, scenarios)
	ctx := context.Background()

	tr, err := RunLoad(ctx, LoadConfig{
		BaseURL:   h.URL(),
		Scenarios: scenarios,
		Requests:  120,
		Workers:   4,
		Seed:      3,
		FaultFrac: 0.05,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs := tr.Expected().Reconcile(h.Metrics()); len(msgs) != 0 {
		t.Fatalf("reconcile under instrumentation: %v", msgs)
	}

	// One explicit estimate so the trace ring surely holds one.
	sc := scenarios[0]
	y := make(la.Vector, sc.Sys.NumPaths())
	if status, _, err := c.Estimate(ctx, sc.Name, []la.Vector{y}); err != nil || status != http.StatusOK {
		t.Fatalf("estimate: status %d err %v", status, err)
	}

	text := string(getRaw(t, h.URL(), "/metrics"))
	for _, err := range obs.Lint(text) {
		t.Errorf("lint: %v", err)
	}
	for _, want := range []string{
		"go_goroutines",
		"go_heap_alloc_bytes",
		`tomographyd_stage_latency_seconds_bucket{stage="tomo.solve"`,
		`tomographyd_stage_latency_seconds_bucket{stage="http.estimate"`,
		"tomographyd_estimate_latency_seconds_sum",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var dump serve.TracesResponse
	if err := json.Unmarshal(getRaw(t, h.URL(), "/debug/traces"), &dump); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range dump.Traces {
		if d.Root.Name != "http.estimate" {
			continue
		}
		for _, ch := range d.Root.Children {
			if ch.Name == "tomo.solve" {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("no http.estimate trace wrapping a tomo.solve in %d traces", len(dump.Traces))
	}

	getRaw(t, h.URL(), "/debug/pprof/")
}

// traceGoldenRun boots a harness on a fake microsecond-step clock,
// plays a fixed sequential request script, and returns the raw
// /debug/traces body. Every timestamp in the dump comes from the
// injected clock, so the bytes are a pure function of the code path.
func traceGoldenRun(t *testing.T) []byte {
	t.Helper()
	scenarios := buildKinds(t, 1, KindClean)
	h := NewHarness(serve.Config{
		RequestTimeout: -1,
		Clock:          obs.NewFakeClock(time.Unix(1700000000, 0), time.Microsecond),
		TraceCapacity:  8,
	})
	t.Cleanup(h.Close)
	c := NewClient(h.URL(), nil)
	ctx := context.Background()

	sc := scenarios[0]
	if _, err := c.Register(ctx, sc.Name, sc.Sys, 0); err != nil {
		t.Fatal(err)
	}
	y := make(la.Vector, sc.Sys.NumPaths())
	if status, _, err := c.Estimate(ctx, sc.Name, []la.Vector{y}); err != nil || status != http.StatusOK {
		t.Fatalf("estimate: status %d err %v", status, err)
	}
	if status, _, err := c.Inspect(ctx, sc.Name, []la.Vector{y}, 0); err != nil || status != http.StatusOK {
		t.Fatalf("inspect: status %d err %v", status, err)
	}
	if status, _, err := c.Healthz(ctx); err != nil || status != http.StatusOK {
		t.Fatalf("healthz: status %d err %v", status, err)
	}
	return getRaw(t, h.URL(), "/debug/traces")
}

// TestTraceGoldenDeterministic runs the fixed-seed script twice against
// fresh daemons and demands byte-identical /debug/traces output, then
// compares against the checked-in golden dump — so the full request
// trace shape (handler → registry lookup → factorization → solve →
// detect, with span timings under the fake clock) is pinned. Regenerate
// with:
//
//	go test ./internal/e2e -run TestTraceGoldenDeterministic -update
func TestTraceGoldenDeterministic(t *testing.T) {
	first := traceGoldenRun(t)
	second := traceGoldenRun(t)
	if string(first) != string(second) {
		t.Fatalf("trace dump not deterministic:\nrun1: %s\nrun2: %s", first, second)
	}

	path := filepath.Join("testdata", "traces.golden")
	if *update {
		if err := os.WriteFile(path, first, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if string(first) != string(want) {
		t.Errorf("trace dump drifted from golden:\ngot:  %s\nwant: %s", first, want)
	}
}
