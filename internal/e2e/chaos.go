// Package e2e is the full-stack scenario harness for tomographyd: it
// boots a real server over loopback, synthesizes measurement traffic
// with internal/netsim under the attack campaigns of internal/core, and
// drives it through the live HTTP path with a deterministic,
// fault-injecting load generator.
//
// Determinism contract (mirrors internal/mc): every per-request decision
// — operation, scenario, measurement rounds, chaos faults — is a pure
// function of (base seed, request index) via mc.Split, and the
// transcript is aggregated in request-index order. A fixed-seed run
// therefore produces a byte-identical transcript digest no matter how
// many workers execute it or how the scheduler interleaves them.
package e2e

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Chaos fault sentinels, surfaced to callers reading through a chaotic
// transport.
var (
	// ErrDropped marks a request the chaos layer never transmitted.
	ErrDropped = errors.New("e2e: chaos dropped request")
	// ErrReset marks a response body cut by a simulated connection reset.
	ErrReset = errors.New("e2e: chaos reset connection")
	// ErrPartitioned marks a request to a host the chaos layer has
	// partitioned away (see Chaos.Partition) — the shard-kill fault a
	// fleet soak injects between a router and its shards.
	ErrPartitioned = errors.New("e2e: chaos partitioned host")
)

// ChaosConfig parameterizes the fault-injecting transport. Zero value =
// no faults. Probabilities are per request in [0, 1].
type ChaosConfig struct {
	// Latency is a fixed pre-send delay (a slow client).
	Latency time.Duration
	// Jitter adds a uniform [0, Jitter) delay on top of Latency.
	Jitter time.Duration
	// Drop is the probability the request is never sent (ErrDropped).
	Drop float64
	// Truncate is the probability the response body is cut short: reads
	// hit a clean EOF after a deterministic byte budget.
	Truncate float64
	// Reset is the probability the response body fails mid-read with
	// ErrReset (a torn connection rather than a clean EOF).
	Reset float64
	// Seed feeds the fallback PRNG used for requests that carry no
	// per-request seed (see WithRequestSeed).
	Seed int64
}

// Enabled reports whether any fault or delay is configured.
func (c ChaosConfig) Enabled() bool {
	return c.Latency > 0 || c.Jitter > 0 || c.Drop > 0 || c.Truncate > 0 || c.Reset > 0
}

// Validate rejects probabilities outside [0, 1] and negative delays.
func (c ChaosConfig) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"drop", c.Drop}, {"truncate", c.Truncate}, {"reset", c.Reset}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("e2e: chaos %s probability %g not in [0,1]", p.name, p.v)
		}
	}
	if c.Latency < 0 || c.Jitter < 0 {
		return fmt.Errorf("e2e: negative chaos latency")
	}
	return nil
}

// ParseChaosSpec parses the CLI form of a chaos configuration:
// comma-separated key=value pairs, e.g.
//
//	latency=2ms,jitter=1ms,drop=0.01,truncate=0.02,reset=0.005
//
// The empty string and "off" mean no chaos.
func ParseChaosSpec(spec string) (ChaosConfig, error) {
	var cfg ChaosConfig
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "off" {
		return cfg, nil
	}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return cfg, fmt.Errorf("e2e: chaos spec %q: want key=value", part)
		}
		key, val := kv[0], kv[1]
		switch key {
		case "latency", "jitter":
			d, err := time.ParseDuration(val)
			if err != nil {
				return cfg, fmt.Errorf("e2e: chaos %s: %w", key, err)
			}
			if key == "latency" {
				cfg.Latency = d
			} else {
				cfg.Jitter = d
			}
		case "drop", "truncate", "reset":
			p, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return cfg, fmt.Errorf("e2e: chaos %s: %w", key, err)
			}
			switch key {
			case "drop":
				cfg.Drop = p
			case "truncate":
				cfg.Truncate = p
			case "reset":
				cfg.Reset = p
			}
		default:
			return cfg, fmt.Errorf("e2e: unknown chaos knob %q", key)
		}
	}
	return cfg, cfg.Validate()
}

// String renders the config back into spec form (for logs and goldens).
func (c ChaosConfig) String() string {
	if !c.Enabled() {
		return "off"
	}
	var parts []string
	if c.Latency > 0 {
		parts = append(parts, "latency="+c.Latency.String())
	}
	if c.Jitter > 0 {
		parts = append(parts, "jitter="+c.Jitter.String())
	}
	if c.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%g", c.Drop))
	}
	if c.Truncate > 0 {
		parts = append(parts, fmt.Sprintf("truncate=%g", c.Truncate))
	}
	if c.Reset > 0 {
		parts = append(parts, fmt.Sprintf("reset=%g", c.Reset))
	}
	return strings.Join(parts, ",")
}

type chaosSeedKey struct{}

// WithRequestSeed pins the chaos decisions for one request to seed: a
// Chaos transport seeing this context derives all its draws from it, so
// the faults a request suffers are a pure function of the seed rather
// than of scheduling order. The load generator seeds every request from
// (base seed, request index); other clients may leave it unset and get
// the transport's internal (locked, nondeterministic-order) stream.
func WithRequestSeed(ctx context.Context, seed int64) context.Context {
	return context.WithValue(ctx, chaosSeedKey{}, seed)
}

// Chaos is a composable fault-injecting http.RoundTripper: it wraps any
// base transport with pre-send latency, request drops, and response-body
// truncation/reset. Safe for concurrent use.
type Chaos struct {
	cfg  ChaosConfig
	base http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand

	partMu sync.RWMutex
	parts  map[string]bool
}

// NewChaos wraps base (nil = http.DefaultTransport) with cfg.
func NewChaos(cfg ChaosConfig, base http.RoundTripper) (*Chaos, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &Chaos{cfg: cfg, base: base, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Client returns an http.Client using this transport.
func (c *Chaos) Client() *http.Client { return &http.Client{Transport: c} }

// decisions is the full fault plan for one request, drawn up-front so
// the draw sequence is fixed regardless of which faults are enabled.
type decisions struct {
	drop     bool
	extraLat time.Duration
	truncate bool
	reset    bool
	// cut is the response-body byte budget for truncate/reset: 1..256.
	cut int
}

func (c *Chaos) plan(req *http.Request) decisions {
	var draw func() float64
	if seed, ok := req.Context().Value(chaosSeedKey{}).(int64); ok {
		rng := rand.New(rand.NewSource(seed))
		draw = rng.Float64
	} else {
		draw = func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return c.rng.Float64()
		}
	}
	// Fixed draw order: drop, jitter, truncate, reset, cut.
	var d decisions
	d.drop = draw() < c.cfg.Drop
	if c.cfg.Jitter > 0 {
		d.extraLat = time.Duration(draw() * float64(c.cfg.Jitter))
	} else {
		_ = draw()
	}
	d.truncate = draw() < c.cfg.Truncate
	d.reset = draw() < c.cfg.Reset
	d.cut = 1 + int(draw()*255)
	if strings.HasSuffix(req.URL.Path, "/rounds") {
		// NDJSON round streams are far longer than one-shot JSON bodies,
		// so a 1..256-byte budget would sever them before the first
		// verdict. Rescale with an EXTRA draw appended after the fixed
		// five: one-shot requests never reach this branch, so their
		// five-draw sequence — and every committed golden digest built
		// on it — is unchanged.
		d.cut = 64 + int(draw()*float64(64<<10))
	}
	return d
}

// Partition cuts the chaos layer off from host: every request to it
// fails with ErrPartitioned until Heal. The argument may be a bare
// "host:port" or a full URL. Unlike the probabilistic faults this is a
// state switch, not a draw — it consumes no RNG, so partitioning one
// shard leaves every other request's fault plan (and therefore the
// transcript digest) untouched. This is how a fleet soak kills or
// partitions a whole shard mid-run: wrap the router's shard-facing
// client in a Chaos transport and flip hosts in and out.
func (c *Chaos) Partition(host string) {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	if c.parts == nil {
		c.parts = make(map[string]bool)
	}
	c.parts[normalizeHost(host)] = true
}

// Heal reconnects a partitioned host.
func (c *Chaos) Heal(host string) {
	c.partMu.Lock()
	defer c.partMu.Unlock()
	delete(c.parts, normalizeHost(host))
}

// Partitioned reports whether host is currently cut off.
func (c *Chaos) Partitioned(host string) bool {
	c.partMu.RLock()
	defer c.partMu.RUnlock()
	return c.parts[normalizeHost(host)]
}

// normalizeHost reduces a URL or host:port to the host:port the
// transport compares against req.URL.Host.
func normalizeHost(host string) string {
	if i := strings.Index(host, "://"); i >= 0 {
		host = host[i+3:]
	}
	if i := strings.IndexByte(host, '/'); i >= 0 {
		host = host[:i]
	}
	return host
}

// RoundTrip applies the request's fault plan around the base transport.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	if c.Partitioned(req.URL.Host) {
		return nil, ErrPartitioned
	}
	d := c.plan(req)
	if d.drop {
		return nil, ErrDropped
	}
	if delay := c.cfg.Latency + d.extraLat; delay > 0 {
		select {
		case <-time.After(delay):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := c.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	switch {
	case d.truncate:
		resp.Body = &cutBody{rc: resp.Body, remain: d.cut, errAfter: io.EOF}
	case d.reset:
		resp.Body = &cutBody{rc: resp.Body, remain: d.cut, errAfter: ErrReset}
	}
	return resp, nil
}

// cutBody delivers at most remain bytes of the wrapped body, then
// returns errAfter (io.EOF models truncation, ErrReset a torn
// connection). Close always closes the real body so the connection is
// torn down rather than reused in a half-read state.
type cutBody struct {
	rc       io.ReadCloser
	remain   int
	errAfter error
}

func (b *cutBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, b.errAfter
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.rc.Read(p)
	b.remain -= n
	if err != nil {
		return n, err
	}
	if b.remain <= 0 && b.errAfter != io.EOF {
		return n, b.errAfter
	}
	return n, nil
}

func (b *cutBody) Close() error { return b.rc.Close() }
