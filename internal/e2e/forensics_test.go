package e2e

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/forensics"
)

// forensicsRun streams one session per scenario topology (sequential
// per-topology ingestion keeps the order-dependent snapshot fields —
// EWMA, bursts — deterministic at any worker count) and returns the
// per-topology forensics snapshots in scenario order.
func forensicsRun(t *testing.T, workers int) ([]*forensics.Snapshot, []*Scenario) {
	t.Helper()
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)
	h := newStreamHarness(t, scenarios)
	tr, err := RunStream(context.Background(), StreamConfig{
		BaseURL:          h.URL(),
		Scenarios:        scenarios,
		Sessions:         len(scenarios),
		RoundsPerSession: 48,
		BatchMax:         16,
		Workers:          workers,
		Seed:             11,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := tr.Expected()
	if e.RoundsSent != int64(len(scenarios)*48) || e.Mismatches != 0 {
		t.Fatalf("workers=%d: stream run degraded: sent=%d mismatches=%d",
			workers, e.RoundsSent, e.Mismatches)
	}
	c := NewClient(h.URL(), nil)
	snaps := make([]*forensics.Snapshot, len(scenarios))
	for i, sc := range scenarios {
		status, snap, err := c.Forensics(context.Background(), sc.Name)
		if err != nil || status != http.StatusOK {
			t.Fatalf("forensics %s: status %d err %v", sc.Name, status, err)
		}
		snaps[i] = snap
	}
	return snaps, scenarios
}

// TestGoldenForensicsSnapshot pins the forensics observatory's full
// state — residual quantiles, suspicion ledger, alarm bursts, exemplar
// set — under per-topology digest hashes, and requires those hashes to
// be invariant to the stream runner's worker count. Regenerate with:
//
//	go test ./internal/e2e -run TestGoldenForensicsSnapshot -update
func TestGoldenForensicsSnapshot(t *testing.T) {
	snaps1, scenarios := forensicsRun(t, 1)
	snaps5, _ := forensicsRun(t, 5)

	var b strings.Builder
	for i, sc := range scenarios {
		s1, s5 := snaps1[i], snaps5[i]
		if h1, h5 := s1.DigestHash(), s5.DigestHash(); h1 != h5 {
			t.Errorf("%s: forensics digest depends on worker count:\n  w1 %s\n  w5 %s\nw1 state: %s\nw5 state: %s",
				sc.Name, h1, h5, s1.DigestString(), s5.DigestString())
		}
		if s1.Rounds != 48 {
			t.Errorf("%s: observatory saw %d rounds, want 48", sc.Name, s1.Rounds)
		}
		fmt.Fprintf(&b, "%s rounds=%d alarms=%d unattributed=%d exemplars=%d digest=%s\n",
			sc.Name, s1.Rounds, s1.Alarms, s1.Unattributed, len(s1.Exemplars), s1.DigestHash())
	}
	got := b.String()

	// Scenario sanity: chosen-victim must alarm, clean must not.
	if snaps1[0].Alarms != 0 {
		t.Errorf("clean topology alarmed %d times", snaps1[0].Alarms)
	}
	if snaps1[2].Alarms == 0 {
		t.Error("chosen-victim topology never alarmed")
	}

	path := filepath.Join("testdata", "forensics.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("forensics snapshot drifted from golden.\ngot:\n%s\nwant:\n%s\nRun with -update if the change is intended.",
			got, want)
	}
}
