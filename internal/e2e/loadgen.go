package e2e

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/obs"
	"repro/internal/serve"
)

// Seed-space layout: three non-overlapping deterministic streams are
// derived from the base seed. Request i plans its operation with
// mc.RNG(seed, i) and its chaos faults with mc.Split(seed, chaosSeedBase
// + i); scenario si pregenerates traffic with mc.Split(seed,
// roundsSeedBase + si).
const (
	chaosSeedBase  = 1 << 20
	roundsSeedBase = 1 << 21
)

// Operation kinds the generator issues. The first six are well-formed
// traffic; the last three are deliberate client faults that must be
// answered with a 4xx and an exact ReqErrors increment.
const (
	OpEstimate      = "est1"     // single-round estimate
	OpEstimateBatch = "estB"     // batched estimate
	OpInspect       = "ins1"     // single-round inspect
	OpInspectBatch  = "insB"     // batched inspect
	OpHealthz       = "healthz"  // liveness poll
	OpMetrics       = "metrics"  // exposition scrape
	OpBadJSON       = "badjson"  // malformed JSON body → 400
	OpNotFound      = "notfound" // estimate against a ghost topology → 404
	OpShortY        = "shorty"   // inspect with a wrong-length y → 400
	opSkipped       = "skipped"  // deadline hit before this index ran
)

// Error classes a Record can carry; everything else is status-coded.
const (
	ErrClassDropped   = "dropped"   // chaos swallowed the request pre-send
	ErrClassReset     = "reset"     // response body died with ErrReset
	ErrClassShortBody = "shortbody" // body truncated: JSON failed to parse
	ErrClassTransport = "transport" // any other transport failure
)

// LoadConfig parameterizes a load-generation run against a live daemon.
// The scenarios' topologies must already be registered (see
// Client.Register); RunLoad only issues traffic.
type LoadConfig struct {
	// BaseURL targets the daemon (harness or remote).
	BaseURL string
	// Transport is the base HTTP transport chaos wraps; nil uses
	// http.DefaultTransport.
	Transport http.RoundTripper
	// Scenarios is the campaign mix; every request picks one uniformly.
	Scenarios []*Scenario
	// Requests is the total operation count.
	Requests int
	// Duration, when positive, deadlines the run: indices not started
	// before it expires are recorded as skipped (and the transcript
	// digest is then only comparable against runs skipped identically).
	Duration time.Duration
	// Workers is the client concurrency; 0 means 8.
	Workers int
	// RPS throttles issue rate (requests/second); 0 means unthrottled.
	RPS float64
	// Seed roots every deterministic stream of the run.
	Seed int64
	// Chaos configures fault injection; zero value disables it.
	Chaos ChaosConfig
	// RoundsPerScenario sizes each scenario's pregenerated traffic pool;
	// 0 means 32.
	RoundsPerScenario int
	// BatchMax caps rounds per batched request; 0 means 8 (min 2).
	BatchMax int
	// FaultFrac is the fraction of operations that are deliberate client
	// faults (badjson/notfound/shorty, equally likely).
	FaultFrac float64
}

func (cfg *LoadConfig) validate() error {
	if cfg.BaseURL == "" {
		return errors.New("e2e: load config needs a BaseURL")
	}
	if cfg.Requests <= 0 {
		return fmt.Errorf("e2e: %d requests", cfg.Requests)
	}
	if cfg.Requests >= chaosSeedBase {
		return fmt.Errorf("e2e: %d requests overflows the per-request seed space (max %d)",
			cfg.Requests, chaosSeedBase-1)
	}
	if len(cfg.Scenarios) == 0 {
		return errors.New("e2e: load config needs at least one scenario")
	}
	if cfg.FaultFrac < 0 || cfg.FaultFrac > 1 {
		return fmt.Errorf("e2e: fault fraction %g not in [0,1]", cfg.FaultFrac)
	}
	return cfg.Chaos.Validate()
}

func (cfg *LoadConfig) workers() int {
	if cfg.Workers <= 0 {
		return 8
	}
	return cfg.Workers
}

func (cfg *LoadConfig) roundsPerScenario() int {
	if cfg.RoundsPerScenario <= 0 {
		return 32
	}
	return cfg.RoundsPerScenario
}

func (cfg *LoadConfig) batchMax() int {
	if cfg.BatchMax < 2 {
		return 8
	}
	return cfg.BatchMax
}

// Record is one request's transcript entry. All fields other than
// timing-free observables are excluded by design: a Record is exactly
// the deterministic view of request i.
type Record struct {
	// Index is the request's position in the deterministic plan.
	Index int
	// Op is the operation kind.
	Op string
	// Scenario names the targeted campaign ("" for healthz/metrics/badjson).
	Scenario string
	// Rounds is how many measurement rounds the request carried.
	Rounds int
	// ExpAlarms is the client-side precomputed alarm count (inspect ops).
	ExpAlarms int
	// Status is the HTTP status (0 when the request never completed).
	Status int
	// ErrClass classifies the failure mode ("" = clean).
	ErrClass string
	// Alarms is the server-reported alarm count (-1 when no parsed body).
	Alarms int
	// Residuals are the server-reported residual norms (inspect ops with
	// a parsed body).
	Residuals []float64
	// VerdictMismatch flags a server verdict that disagreed with the
	// client-side precomputation — an invariant violation.
	VerdictMismatch bool
	// LatencyNS is the client-observed wall time of the request in
	// nanoseconds. It is timing, not plan, so Digest excludes it; it
	// feeds Transcript.Report's per-op latency quantiles.
	LatencyNS int64
}

// Transcript is the full outcome of a load run.
type Transcript struct {
	Seed     int64
	Chaos    string
	Records  []Record
	Elapsed  time.Duration
	Workers  int
	Requests int
}

// Digest hashes the transcript's deterministic content in request-index
// order. Residual norms are quantized to 1 µs so the digest survives
// last-ulp float differences across platforms.
func (t *Transcript) Digest() string {
	h := sha256.New()
	fmt.Fprintf(h, "seed=%d chaos=%s n=%d\n", t.Seed, t.Chaos, len(t.Records))
	for i := range t.Records {
		r := &t.Records[i]
		mm := 0
		if r.VerdictMismatch {
			mm = 1
		}
		fmt.Fprintf(h, "%d|%s|%s|%d|%d|%d|%s|%d|%d",
			r.Index, r.Op, r.Scenario, r.Rounds, r.ExpAlarms, r.Status, r.ErrClass, r.Alarms, mm)
		for _, v := range r.Residuals {
			fmt.Fprintf(h, "|%.3f", v)
		}
		fmt.Fprintln(h)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ExpectedMetrics is the client-side reconciliation of what the server's
// counters must show after the run, assuming the server started from
// zero. Chaos cannot blur it: a dropped request was never sent (no
// counters), while truncate/reset only mangle the response body after
// the server fully processed the request (all counters).
type ExpectedMetrics struct {
	ReqEstimate    int64
	ReqInspect     int64
	ReqHealthz     int64
	ReqMetrics     int64
	ReqErrors      int64
	EstimateRounds int64
	InspectRounds  int64
	Alarms         int64
	Sent           int64
	Dropped        int64
	Skipped        int64
	Mismatches     int64
}

// Expected folds the transcript into the counter deltas the server must
// have recorded.
func (t *Transcript) Expected() ExpectedMetrics {
	var e ExpectedMetrics
	for i := range t.Records {
		r := &t.Records[i]
		switch r.ErrClass {
		case ErrClassDropped:
			e.Dropped++
			continue
		case opSkipped:
			e.Skipped++
			continue
		}
		e.Sent++
		if r.VerdictMismatch {
			e.Mismatches++
		}
		switch r.Op {
		case OpEstimate, OpEstimateBatch:
			e.ReqEstimate++
			e.EstimateRounds += int64(r.Rounds)
		case OpInspect, OpInspectBatch:
			e.ReqInspect++
			e.InspectRounds += int64(r.Rounds)
			e.Alarms += int64(r.ExpAlarms)
		case OpHealthz:
			e.ReqHealthz++
		case OpMetrics:
			e.ReqMetrics++
		case OpBadJSON, OpNotFound:
			e.ReqEstimate++
			e.ReqErrors++
		case OpShortY:
			e.ReqInspect++
			e.ReqErrors++
		}
	}
	return e
}

// Reconcile compares the expectation against live server metrics and
// returns one message per mismatch (empty = fully reconciled). It
// assumes the metrics belong to this run alone.
func (e ExpectedMetrics) Reconcile(m *serve.Metrics) []string {
	var out []string
	check := func(name string, got, want int64) {
		if got != want {
			out = append(out, fmt.Sprintf("%s = %d, want %d", name, got, want))
		}
	}
	check("ReqEstimate", m.ReqEstimate.Load(), e.ReqEstimate)
	check("ReqInspect", m.ReqInspect.Load(), e.ReqInspect)
	check("ReqHealthz", m.ReqHealthz.Load(), e.ReqHealthz)
	check("ReqMetrics", m.ReqMetrics.Load(), e.ReqMetrics)
	check("ReqErrors", m.ReqErrors.Load(), e.ReqErrors)
	check("EstimateRounds", m.EstimateRounds.Load(), e.EstimateRounds)
	check("InspectRounds", m.InspectRounds.Load(), e.InspectRounds)
	check("Alarms", m.Alarms.Load(), e.Alarms)
	if e.Mismatches != 0 {
		out = append(out, fmt.Sprintf("%d server/client verdict mismatches", e.Mismatches))
	}
	return out
}

// ReconcileScrape compares the expectation against the delta of two
// /metrics scrapes (ParsePrometheus maps), for runs against a remote
// daemon whose counters did not start at zero.
func (e ExpectedMetrics) ReconcileScrape(pre, post map[string]float64) []string {
	var out []string
	check := func(key string, want int64) {
		got := int64(post[key] - pre[key])
		if got != want {
			out = append(out, fmt.Sprintf("Δ%s = %d, want %d", key, got, want))
		}
	}
	check(`tomographyd_requests_total{route="estimate"}`, e.ReqEstimate)
	check(`tomographyd_requests_total{route="inspect"}`, e.ReqInspect)
	check(`tomographyd_requests_total{route="healthz"}`, e.ReqHealthz)
	// The metrics route counts its own scrapes: the counter increments
	// before the exposition renders, so the post scrape includes itself
	// while the pre scrape's own hit is present in both readings and
	// cancels in the delta — hence exactly one extra hit.
	check(`tomographyd_requests_total{route="metrics"}`, e.ReqMetrics+1)
	check("tomographyd_request_errors_total", e.ReqErrors)
	check("tomographyd_estimate_rounds_total", e.EstimateRounds)
	check("tomographyd_inspect_rounds_total", e.InspectRounds)
	check("tomographyd_detector_alarms_total", e.Alarms)
	if e.Mismatches != 0 {
		out = append(out, fmt.Sprintf("%d server/client verdict mismatches", e.Mismatches))
	}
	return out
}

// Summary renders a human-readable run report.
func (t *Transcript) Summary() string {
	ops := make(map[string]int)
	errs := make(map[string]int)
	var alarms int64
	for i := range t.Records {
		r := &t.Records[i]
		ops[r.Op]++
		if r.ErrClass != "" {
			errs[r.ErrClass]++
		}
		if r.Alarms > 0 {
			alarms += int64(r.Alarms)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "requests %d  workers %d  elapsed %v  seed %d  chaos %s\n",
		t.Requests, t.Workers, t.Elapsed.Round(time.Millisecond), t.Seed, t.Chaos)
	for _, k := range sortedKeys(ops) {
		fmt.Fprintf(&b, "  op %-8s %6d\n", k, ops[k])
	}
	for _, k := range sortedKeys(errs) {
		fmt.Fprintf(&b, "  err %-9s %5d\n", k, errs[k])
	}
	e := t.Expected()
	fmt.Fprintf(&b, "  sent %d dropped %d skipped %d\n", e.Sent, e.Dropped, e.Skipped)
	fmt.Fprintf(&b, "  estimate rounds %d  inspect rounds %d  alarms expected %d observed %d\n",
		e.EstimateRounds, e.InspectRounds, e.Alarms, alarms)
	return b.String()
}

// Report renders per-op client-side latency quantiles (p50/p95/p99)
// over the sent requests of the transcript. The quantiles come from
// obs.Histogram — the same bucketing and interpolation code behind the
// server's /metrics histograms — so client and server latency reports
// are directly comparable. Skipped and dropped requests carry no
// latency and are excluded.
func (t *Transcript) Report() string {
	hists := make(map[string]*obs.Histogram)
	for i := range t.Records {
		r := &t.Records[i]
		if r.Op == opSkipped || r.ErrClass == ErrClassDropped {
			continue
		}
		h := hists[r.Op]
		if h == nil {
			h = obs.NewHistogram(nil)
			hists[r.Op] = h
		}
		h.Observe(float64(r.LatencyNS) / 1e9)
	}
	ops := make([]string, 0, len(hists))
	for op := range hists {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	var b strings.Builder
	fmt.Fprintf(&b, "client latency (s), %d requests:\n", t.Requests)
	fmt.Fprintf(&b, "  %-8s %8s %10s %10s %10s\n", "op", "count", "p50", "p95", "p99")
	for _, op := range ops {
		h := hists[op]
		fmt.Fprintf(&b, "  %-8s %8d %10.6f %10.6f %10.6f\n",
			op, h.Count(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	return b.String()
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// gen is the per-run state shared by workers.
type gen struct {
	cfg    LoadConfig
	client *Client
	rounds [][]Round // per scenario, pregenerated traffic pool
}

// RunLoad executes the deterministic plan against the target daemon and
// returns the transcript. Request i's operation, payload, and chaos
// faults are pure functions of (cfg.Seed, i); with Duration unset, a
// fixed (seed, Requests, scenario set, chaos) tuple therefore yields an
// identical Digest on every run.
func RunLoad(ctx context.Context, cfg LoadConfig) (*Transcript, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base := cfg.Transport
	if cfg.Chaos.Enabled() {
		ch, err := NewChaos(cfg.Chaos, base)
		if err != nil {
			return nil, err
		}
		base = ch
	}
	httpc := http.DefaultClient
	if base != nil {
		httpc = &http.Client{Transport: base}
	}
	g := &gen{cfg: cfg, client: NewClient(cfg.BaseURL, httpc)}
	g.rounds = make([][]Round, len(cfg.Scenarios))
	for si, sc := range cfg.Scenarios {
		rs, err := sc.GenRounds(mc.Split(cfg.Seed, roundsSeedBase+si), cfg.roundsPerScenario())
		if err != nil {
			return nil, err
		}
		g.rounds[si] = rs
	}

	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	records := make([]Record, cfg.Requests)
	var next atomic.Int64
	var interval time.Duration
	if cfg.RPS > 0 {
		interval = time.Duration(float64(time.Second) / cfg.RPS)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= cfg.Requests {
					return
				}
				if interval > 0 {
					due := start.Add(time.Duration(i) * interval)
					if d := time.Until(due); d > 0 {
						select {
						case <-time.After(d):
						case <-ctx.Done():
						}
					}
				}
				if ctx.Err() != nil {
					records[i] = Record{Index: i, Op: opSkipped, ErrClass: opSkipped, Alarms: -1}
					continue
				}
				records[i] = g.execute(ctx, i)
			}
		}()
	}
	wg.Wait()
	return &Transcript{
		Seed:     cfg.Seed,
		Chaos:    cfg.Chaos.String(),
		Records:  records,
		Elapsed:  time.Since(start),
		Workers:  cfg.workers(),
		Requests: cfg.Requests,
	}, nil
}

// planOp draws request i's operation kind. Each index has a private RNG,
// so conditional draws cannot skew other requests' plans.
func (g *gen) planOp(rng *rand.Rand) string {
	if g.cfg.FaultFrac > 0 && rng.Float64() < g.cfg.FaultFrac {
		return []string{OpBadJSON, OpNotFound, OpShortY}[rng.Intn(3)]
	}
	u := rng.Float64()
	switch {
	case u < 0.30:
		return OpEstimate
	case u < 0.48:
		return OpEstimateBatch
	case u < 0.78:
		return OpInspect
	case u < 0.94:
		return OpInspectBatch
	case u < 0.97:
		return OpHealthz
	default:
		return OpMetrics
	}
}

// pickRounds draws a contiguous (wrapping) batch of k pregenerated
// rounds from scenario si's pool.
func (g *gen) pickRounds(rng *rand.Rand, si, k int) []Round {
	pool := g.rounds[si]
	start := rng.Intn(len(pool))
	out := make([]Round, k)
	for j := 0; j < k; j++ {
		out[j] = pool[(start+j)%len(pool)]
	}
	return out
}

func (g *gen) execute(ctx context.Context, i int) (rec Record) {
	rng := mc.RNG(g.cfg.Seed, i)
	op := g.planOp(rng)
	ctx = WithRequestSeed(ctx, mc.Split(g.cfg.Seed, chaosSeedBase+i))
	// The request ID rides the X-Request-Id header (Client.do), so one
	// generator index correlates with one daemon log line and trace.
	ctx = obs.WithRequestID(ctx, fmt.Sprintf("load-%06d", i))
	rec = Record{Index: i, Op: op, Alarms: -1}
	start := time.Now()
	defer func() { rec.LatencyNS = time.Since(start).Nanoseconds() }()

	switch op {
	case OpEstimate, OpEstimateBatch:
		si := rng.Intn(len(g.cfg.Scenarios))
		k := 1
		if op == OpEstimateBatch {
			k = 2 + rng.Intn(g.cfg.batchMax()-1)
		}
		rounds := g.pickRounds(rng, si, k)
		rec.Scenario = g.cfg.Scenarios[si].Name
		rec.Rounds = k
		status, resp, err := g.client.Estimate(ctx, rec.Scenario, ys(rounds))
		rec.Status = status
		rec.ErrClass = classify(err)
		if resp != nil && len(resp.Results) != k {
			rec.VerdictMismatch = true
		}
	case OpInspect, OpInspectBatch:
		si := rng.Intn(len(g.cfg.Scenarios))
		k := 1
		if op == OpInspectBatch {
			k = 2 + rng.Intn(g.cfg.batchMax()-1)
		}
		rounds := g.pickRounds(rng, si, k)
		rec.Scenario = g.cfg.Scenarios[si].Name
		rec.Rounds = k
		for _, r := range rounds {
			if r.Detected {
				rec.ExpAlarms++
			}
		}
		status, resp, err := g.client.Inspect(ctx, rec.Scenario, ys(rounds), 0)
		rec.Status = status
		rec.ErrClass = classify(err)
		if resp != nil {
			rec.Alarms = resp.Alarms
			rec.Residuals = make([]float64, len(resp.Reports))
			for j, rep := range resp.Reports {
				rec.Residuals[j] = rep.ResidualNorm
			}
			rec.VerdictMismatch = !inspectAgrees(resp, rounds)
		}
	case OpHealthz:
		status, _, err := g.client.Healthz(ctx)
		rec.Status = status
		rec.ErrClass = statusOnlyClass(status, err)
	case OpMetrics:
		// Digest keeps the status only; the body is uptime-dependent.
		status, _, err := g.client.do(ctx, http.MethodGet, "/metrics", nil)
		rec.Status = status
		rec.ErrClass = statusOnlyClass(status, err)
	case OpBadJSON:
		status, _, err := g.client.PostRaw(ctx, "/v1/estimate", []byte(`{"topology": "fig1`))
		rec.Status = status
		rec.ErrClass = classify(err)
	case OpNotFound:
		status, _, err := g.client.Estimate(ctx, "no-such-topology", []la.Vector{{1, 2, 3}})
		rec.Status = status
		rec.ErrClass = classify(err)
	case OpShortY:
		si := rng.Intn(len(g.cfg.Scenarios))
		rec.Scenario = g.cfg.Scenarios[si].Name
		short := make(la.Vector, g.cfg.Scenarios[si].Sys.NumPaths()-1)
		status, _, err := g.client.Inspect(ctx, rec.Scenario, []la.Vector{short}, 0)
		rec.Status = status
		rec.ErrClass = classify(err)
	}
	return rec
}

// inspectAgrees checks the server's verdicts against the client-side
// precomputation: same alarm pattern, residual norms equal to within
// float-noise. Any disagreement is an invariant violation, not noise —
// both sides run identical code on bit-identical measurements (JSON
// float64 round-trips losslessly).
func inspectAgrees(resp *serve.InspectResponse, rounds []Round) bool {
	if len(resp.Reports) != len(rounds) {
		return false
	}
	for j, rep := range resp.Reports {
		if rep.Detected != rounds[j].Detected {
			return false
		}
		if diff := rep.ResidualNorm - rounds[j].ResidualNorm; diff > 1e-6 || diff < -1e-6 {
			return false
		}
	}
	return true
}

func ys(rounds []Round) []la.Vector {
	out := make([]la.Vector, len(rounds))
	for i, r := range rounds {
		out[i] = r.Y
	}
	return out
}

// statusOnlyClass classifies errors for the status-only ops (healthz,
// metrics), whose bodies vary with server state — uptime, and in a
// fleet, which shard answered and what it holds. Whether a chaos byte
// budget bites such a body is a function of state, not of the plan, so
// once the status line has arrived the op's deterministic observable is
// complete and body-level faults are folded out. Faults that prevented
// a status (drop, pre-status transport failure) keep their class.
func statusOnlyClass(status int, err error) string {
	class := classify(err)
	if status != 0 && (class == ErrClassReset || class == ErrClassShortBody) {
		return ""
	}
	return class
}

// classify canonicalizes a request error for the transcript: chaos
// sentinels keep their identity, JSON decode failures on a truncated
// body become "shortbody", anything else is "transport".
func classify(err error) string {
	var syn *json.SyntaxError
	var typ *json.UnmarshalTypeError
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrDropped):
		return ErrClassDropped
	case errors.Is(err, ErrReset):
		return ErrClassReset
	case errors.As(err, &syn), errors.As(err, &typ), errors.Is(err, io.ErrUnexpectedEOF):
		return ErrClassShortBody
	default:
		return ErrClassTransport
	}
}
