package e2e

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParseChaosSpecRoundTrip(t *testing.T) {
	cases := []string{
		"off",
		"latency=2ms,jitter=1ms,drop=0.01,truncate=0.02,reset=0.005",
		"drop=0.5",
		"latency=100ms",
	}
	for _, spec := range cases {
		cfg, err := ParseChaosSpec(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		again, err := ParseChaosSpec(cfg.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", cfg.String(), err)
		}
		if again != cfg {
			t.Errorf("%q: round trip %+v != %+v", spec, again, cfg)
		}
	}
	if cfg, err := ParseChaosSpec(""); err != nil || cfg.Enabled() {
		t.Errorf("empty spec: cfg=%+v err=%v", cfg, err)
	}
	for _, bad := range []string{"drop=2", "drop=-0.1", "latency=fast", "nonsense=1", "drop"} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// flatTransport answers every request with a fixed 200 body, counting
// the requests that actually reach it.
type flatTransport struct {
	hits int
	body string
}

func (f *flatTransport) RoundTrip(*http.Request) (*http.Response, error) {
	f.hits++
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(strings.NewReader(f.body)),
		Header:     make(http.Header),
	}, nil
}

// TestChaosSeededDecisionsAreDeterministic replays the same per-request
// seeds through two independent Chaos transports and requires identical
// fault patterns — the property the transcript digest rests on.
func TestChaosSeededDecisionsAreDeterministic(t *testing.T) {
	cfg := ChaosConfig{Drop: 0.4, Truncate: 0.3, Reset: 0.2}
	run := func() []string {
		ft := &flatTransport{body: strings.Repeat("x", 1000)}
		ch, err := NewChaos(cfg, ft)
		if err != nil {
			t.Fatal(err)
		}
		var outcomes []string
		for i := 0; i < 200; i++ {
			req, err := http.NewRequestWithContext(
				WithRequestSeed(context.Background(), int64(i)), "GET", "http://x/", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := ch.RoundTrip(req)
			switch {
			case errors.Is(err, ErrDropped):
				outcomes = append(outcomes, "drop")
			case err != nil:
				t.Fatalf("request %d: %v", i, err)
			default:
				raw, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case errors.Is(rerr, ErrReset):
					outcomes = append(outcomes, "reset")
				case rerr != nil:
					t.Fatalf("request %d read: %v", i, rerr)
				case len(raw) < 1000:
					outcomes = append(outcomes, "truncate")
				default:
					outcomes = append(outcomes, "clean")
				}
			}
		}
		return outcomes
	}
	a, b := run(), run()
	counts := make(map[string]int)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: %s vs %s", i, a[i], b[i])
		}
		counts[a[i]]++
	}
	for _, kind := range []string{"drop", "truncate", "reset", "clean"} {
		if counts[kind] == 0 {
			t.Errorf("outcome %q never occurred in 200 draws", kind)
		}
	}
}

// TestChaosTruncateDeliversPartialBody pins the truncation semantics: at
// most 256 bytes arrive, then a clean EOF, so io.ReadAll succeeds with a
// short body and only the JSON parse downstream fails.
func TestChaosTruncateDeliversPartialBody(t *testing.T) {
	ft := &flatTransport{body: strings.Repeat("y", 4096)}
	ch, err := NewChaos(ChaosConfig{Truncate: 1}, ft)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequestWithContext(WithRequestSeed(context.Background(), 7), "GET", "http://x/", nil)
	resp, err := ch.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("truncation must end in a clean EOF, got %v", err)
	}
	if len(raw) == 0 || len(raw) > 256 {
		t.Errorf("truncated body is %d bytes, want 1..256", len(raw))
	}
}

// TestChaosResetSurfacesErrReset pins the reset semantics: the body read
// fails with ErrReset rather than a clean EOF.
func TestChaosResetSurfacesErrReset(t *testing.T) {
	ft := &flatTransport{body: strings.Repeat("z", 4096)}
	ch, err := NewChaos(ChaosConfig{Reset: 1}, ft)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequestWithContext(WithRequestSeed(context.Background(), 7), "GET", "http://x/", nil)
	resp, err := ch.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	_, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !errors.Is(err, ErrReset) {
		t.Fatalf("read error = %v, want ErrReset", err)
	}
}

// TestChaosOffIsTransparent routes through a real server with a zero
// config and expects no interference.
func TestChaosOffIsTransparent(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		_, _ = w.Write([]byte("hello"))
	}))
	defer ts.Close()
	ch, err := NewChaos(ChaosConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ch.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(raw) != "hello" {
		t.Fatalf("body=%q err=%v", raw, err)
	}
}
