package e2e

import (
	"context"
	"math"
	"net/http"
	"strings"
	"testing"

	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// TestSparseScaleOverHTTP registers a backbone big enough to cross
// DenseBudget through the real wire format and drives an estimate over
// live HTTP: the daemon must auto-select the matrix-free route, recover
// the injected link metrics, and expose the CGLS iteration/residual
// histograms on a lint-clean /metrics.
func TestSparseScaleOverHTTP(t *testing.T) {
	if testing.Short() {
		t.Skip("sparse-scale HTTP round trip skipped in -short mode")
	}
	const links, extra = 3000, 300
	g, err := topo.Backbone(31, links)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := topo.BackbonePaths(g, extra, 31)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	// paths×links ≈ 11M entries > DenseBudget: the default constructor
	// must have suppressed the dense mirror on its own.
	if sys.Dense() {
		t.Fatalf("%d paths × %d links unexpectedly within DenseBudget", sys.NumPaths(), sys.NumLinks())
	}

	h := NewHarness(serve.Config{RequestTimeout: -1})
	t.Cleanup(h.Close)
	c := NewClient(h.URL(), nil)
	ctx := context.Background()

	tr, err := c.Register(ctx, "backbone", sys, 0)
	if err != nil {
		t.Fatalf("register over HTTP: %v", err)
	}
	if tr == nil {
		t.Fatal("registration conflicted on a fresh daemon")
	}

	x := make(la.Vector, sys.NumLinks())
	for i := range x {
		x[i] = 1 + float64(i%13)/10
	}
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	status, er, err := c.Estimate(ctx, "backbone", []la.Vector{y})
	if err != nil || status != http.StatusOK {
		t.Fatalf("estimate: status %d err %v", status, err)
	}
	if len(er.Results) != 1 || len(er.Results[0].XHat) != sys.NumLinks() {
		t.Fatalf("estimate shape: %d results", len(er.Results))
	}
	for i, v := range er.Results[0].XHat {
		if math.Abs(v-x[i]) > 1e-5 {
			t.Fatalf("xhat[%d] = %g, want %g", i, v, x[i])
		}
	}

	text := string(getRaw(t, h.URL(), "/metrics"))
	for _, lerr := range obs.Lint(text) {
		t.Errorf("lint: %v", lerr)
	}
	for _, want := range []string{
		"tomographyd_solver_iterations_count",
		"tomographyd_solver_iterations_bucket",
		"tomographyd_solver_residual_norm_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	snap, err := c.MetricsSnapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap["tomographyd_solver_iterations_count"] < 1 {
		t.Errorf("solver iteration histogram empty after a sparse estimate: %g",
			snap["tomographyd_solver_iterations_count"])
	}
	if snap["tomographyd_solver_residual_norm_count"] < 1 {
		t.Errorf("solver residual histogram empty after a sparse estimate: %g",
			snap["tomographyd_solver_residual_norm_count"])
	}
}
