package e2e

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/campaign"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// Seed-space layout for churn campaigns, disjoint from the load and
// stream generators' bases: global round gi draws traffic from
// mc.RNG(seed, churnRoundsSeedBase + gi); the k-th flap event draws its
// reroute from mc.RNG(seed, churnFlapSeedBase + k).
const (
	churnRoundsSeedBase = 1 << 24
	churnFlapSeedBase   = 1 << 25
)

// Churn event kinds. Every event fires at a virtual-clock time and
// folds into the routing state from that instant on; events sharing a
// timestamp fold into one epoch boundary, applied in script order.
const (
	// ChurnFailLink removes a physical link (endpoints by node name).
	ChurnFailLink = "fail-link"
	// ChurnRecoverLink restores a previously failed link.
	ChurnRecoverLink = "recover-link"
	// ChurnFlap performs one ECMP-style reroute: a deterministic
	// alternate route replaces one measurement path, graph unchanged.
	ChurnFlap = "flap"
	// ChurnMonitorLeave removes a monitor from the measurement set.
	ChurnMonitorLeave = "monitor-leave"
	// ChurnMonitorJoin adds a node (any node, not just a base monitor)
	// to the measurement set.
	ChurnMonitorJoin = "monitor-join"
	// ChurnAttackStart opens an attacker window (chosen-victim LP
	// re-solved against each epoch inside the window; Stealthy selects
	// the consistent construction).
	ChurnAttackStart = "attack-start"
	// ChurnAttackStop closes the attacker window.
	ChurnAttackStop = "attack-stop"
)

// ChurnEvent is one scripted event on the virtual clock.
type ChurnEvent struct {
	// At is the virtual time (ms) the event fires.
	At float64 `json:"at"`
	// Kind is one of the Churn* constants.
	Kind string `json:"kind"`
	// Link names the two endpoints for fail-link/recover-link.
	Link []string `json:"link,omitempty"`
	// Monitor names the monitor for monitor-leave/monitor-join.
	Monitor string `json:"monitor,omitempty"`
	// Victim is the paper's 1-based link number to scapegoat
	// (attack-start).
	Victim int `json:"victim,omitempty"`
	// Stealthy selects Theorem 1's consistent construction
	// (attack-start).
	Stealthy bool `json:"stealthy,omitempty"`
}

// ChurnScript is a time-scripted churn scenario against the Fig. 1
// testbed: a virtual clock ticking one measurement round every
// RoundSpacing ms from 0 to Horizon, with routing/attack events
// partitioning the timeline into epochs.
type ChurnScript struct {
	// Name tags the campaign; the registered topology is "churn-"+Name.
	Name string `json:"name"`
	// RoundSpacing is the virtual ms between measurement rounds
	// (0 = 1000).
	RoundSpacing float64 `json:"round_spacing,omitempty"`
	// Horizon ends the campaign (virtual ms, exclusive).
	Horizon float64 `json:"horizon"`
	// Events is the script. Order within a timestamp is preserved.
	Events []ChurnEvent `json:"events"`
}

func (s *ChurnScript) roundSpacing() float64 {
	if s.RoundSpacing <= 0 {
		return 1000
	}
	return s.RoundSpacing
}

// Validate checks script shape (not epoch identifiability, which is
// empirical and checked during compilation).
func (s *ChurnScript) Validate() error {
	if s.Name == "" {
		return errors.New("e2e: churn script needs a name")
	}
	if s.Horizon <= 0 {
		return fmt.Errorf("e2e: churn horizon %g", s.Horizon)
	}
	for i, ev := range s.Events {
		if ev.At < 0 || ev.At >= s.Horizon {
			return fmt.Errorf("e2e: churn event %d at %g outside [0, %g)", i, ev.At, s.Horizon)
		}
		switch ev.Kind {
		case ChurnFailLink, ChurnRecoverLink:
			if len(ev.Link) != 2 {
				return fmt.Errorf("e2e: churn event %d (%s) needs two link endpoints", i, ev.Kind)
			}
		case ChurnMonitorLeave, ChurnMonitorJoin:
			if ev.Monitor == "" {
				return fmt.Errorf("e2e: churn event %d (%s) needs a monitor", i, ev.Kind)
			}
		case ChurnAttackStart:
			if ev.Victim < 1 || ev.Victim > 10 {
				return fmt.Errorf("e2e: churn event %d: victim %d not a paper link (1–10)", i, ev.Victim)
			}
		case ChurnFlap, ChurnAttackStop:
		default:
			return fmt.Errorf("e2e: churn event %d: unknown kind %q", i, ev.Kind)
		}
	}
	return nil
}

// ParseChurnScript decodes and validates a JSON script.
func ParseChurnScript(r io.Reader) (*ChurnScript, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s ChurnScript
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("e2e: parse churn script: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// FiveEpochScript is the canonical committed campaign: base traffic,
// then fail → flap → attacker window → monitor migration → recover,
// four rounds per epoch. The flap and the attack window share the
// failed-link regime, so those boundaries exercise the session
// rank-1 mutation route while the fail/migrate/recover boundaries
// exercise DELETE + re-register.
//
// The monitor churn is a migration (M1 leaves, A joins) rather than a
// bare leave: on Fig. 1, losing any single monitor breaks
// identifiability (M3's two stub links, for instance, are separable
// only by paths terminating at M3), and the registration API rejects
// rank-deficient regimes. {M2, M3, A} is the one single-node
// replacement that keeps full column rank on both the base graph and
// the C–D-failed graph — M1's three incident links remain separable
// through transit pair-sums.
func FiveEpochScript() *ChurnScript {
	return &ChurnScript{
		Name:         "five-epoch",
		RoundSpacing: 1000,
		Horizon:      24000,
		Events: []ChurnEvent{
			{At: 4000, Kind: ChurnFailLink, Link: []string{"C", "D"}},
			{At: 8000, Kind: ChurnFlap},
			{At: 12000, Kind: ChurnAttackStart, Victim: 10},
			{At: 16000, Kind: ChurnAttackStop},
			{At: 16000, Kind: ChurnMonitorLeave, Monitor: "M1"},
			{At: 16000, Kind: ChurnMonitorJoin, Monitor: "A"},
			{At: 20000, Kind: ChurnRecoverLink, Link: []string{"C", "D"}},
			{At: 20000, Kind: ChurnMonitorLeave, Monitor: "A"},
			{At: 20000, Kind: ChurnMonitorJoin, Monitor: "M1"},
		},
	}
}

// PathOp is one session-mutation step of a small routing delta: add the
// walk, then remove the (pre-add) path index. Applied in order, the ops
// transform the previous epoch's path list into this epoch's exactly —
// same paths, same order — so a session mutated through them serves the
// epoch's routing matrix verbatim.
type PathOp struct {
	AddWalk []string
	Remove  int
}

// CompiledEpoch is one routing regime of a compiled churn plan.
type CompiledEpoch struct {
	// Index orders the epoch; Start/End bound it on the virtual clock.
	Index      int
	Start, End float64
	// Rounds is the virtual-clock round count inside [Start, End).
	Rounds int
	// Tag folds the boundary's event kinds ("base" for epoch 0).
	Tag string
	// Sys is the epoch's tomography system (post-churn routing matrix).
	Sys *tomo.System
	// TrueX carries each physical link's base delay draw into the
	// epoch's link numbering: a link keeps its true metric across
	// epochs even as its dense LinkID shifts.
	TrueX la.Vector
	// Plan is the attack compiled against this epoch's routing (nil
	// outside attacker windows); Damage is its ‖m‖₁.
	Plan   *netsim.AttackPlan
	Damage float64
	// Det mirrors the detector the server builds for this epoch.
	Det *detect.Detector
	// Delta, when non-nil, lists the session-mutation ops that
	// transform the previous epoch's path set into this one (graph and
	// monitors unchanged). Nil means the epoch needs a full DELETE +
	// re-register. Epoch 0's Delta is nil by definition.
	Delta []PathOp
}

// ChurnPlan is a fully compiled churn campaign: every epoch's system,
// attack, and detector, a pure function of (script, seed).
type ChurnPlan struct {
	Script *ChurnScript
	Seed   int64
	// Draw is the routine-traffic draw index the compile settled on
	// (the first one on which every attack window was feasible).
	Draw int
	// Topology is the registration name every epoch re-uses.
	Topology string
	Epochs   []CompiledEpoch
}

// churnState is the routing/attack state the event fold maintains.
type churnState struct {
	failed   map[string]bool // edge key (sorted name pair) → failed
	monitors map[string]bool // present measurement monitors, by name
	victim   int             // 0 = no attack window open
	steal    bool
}

func (st *churnState) signature() string {
	keys := make([]string, 0, len(st.failed)+len(st.monitors))
	for k := range st.failed {
		keys = append(keys, "f:"+k)
	}
	for k := range st.monitors {
		keys = append(keys, "m:"+k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ",")
}

func edgeKey(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + "|" + b
}

// boundary is one epoch boundary: the events folding at a timestamp.
type boundary struct {
	at     float64
	events []ChurnEvent
}

// CompileChurn compiles a script into a runnable plan against the
// Fig. 1 testbed. Each epoch's graph is rebuilt from the base minus
// failed links (nodes inserted in base order, so NodeIDs are stable
// across epochs while LinkIDs stay dense), its path set is either the
// previous epoch's with flap substitutions (graph and monitors
// unchanged → a session-mutation Delta) or a fresh full-rank selection,
// and any open attacker window re-solves its LP against the epoch's
// own routing matrix. Identifiability is checked per epoch: a script
// whose churn breaks full column rank fails compilation loudly. The
// routine-traffic draw is searched like BuildScenario: the first draw
// on which every attack window is feasible wins, so the plan is a pure
// function of (script, seed).
func CompileChurn(script *ChurnScript, seed int64) (*ChurnPlan, error) {
	if err := script.Validate(); err != nil {
		return nil, err
	}
	f := topo.Fig1()
	boundaries, err := foldBoundaries(script)
	if err != nil {
		return nil, err
	}
	for draw := 0; draw < maxFeasibilityDraws; draw++ {
		baseX := netsim.RoutineDelays(f.G, mc.RNG(seed, draw))
		plan, err := compileOnDraw(script, seed, draw, f, baseX, boundaries)
		if errors.Is(err, campaign.ErrInfeasible) {
			continue
		}
		if err != nil {
			return nil, err
		}
		return plan, nil
	}
	return nil, fmt.Errorf("e2e: churn script %q: attack infeasible on %d routine-traffic draws (seed %d)",
		script.Name, maxFeasibilityDraws, seed)
}

// foldBoundaries sorts events by timestamp (stable, so script order
// breaks ties) and groups them into epoch boundaries. Events at t=0
// fold into epoch 0's initial state.
func foldBoundaries(script *ChurnScript) ([]boundary, error) {
	evs := make([]ChurnEvent, len(script.Events))
	copy(evs, script.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].At < evs[j].At })
	var out []boundary
	for _, ev := range evs {
		if n := len(out); n > 0 && out[n-1].at == ev.At {
			out[n-1].events = append(out[n-1].events, ev)
			continue
		}
		out = append(out, boundary{at: ev.At, events: []ChurnEvent{ev}})
	}
	return out, nil
}

func compileOnDraw(script *ChurnScript, seed int64, draw int, f *topo.Fig1Topology,
	baseX la.Vector, boundaries []boundary) (*ChurnPlan, error) {
	plan := &ChurnPlan{
		Script:   script,
		Seed:     seed,
		Draw:     draw,
		Topology: "churn-" + script.Name,
	}
	st := &churnState{failed: map[string]bool{}, monitors: map[string]bool{}}
	for _, m := range f.Monitors {
		name, _ := f.G.NodeName(m)
		st.monitors[name] = true
	}
	spacing := script.roundSpacing()
	flapCount := 0

	// Epoch 0 starts at t=0; boundaries at t=0 fold into its state.
	bi := 0
	for bi < len(boundaries) && boundaries[bi].at == 0 {
		if err := applyEvents(st, f, boundaries[bi].events); err != nil {
			return nil, err
		}
		bi++
	}
	start := 0.0
	prevSig := ""
	tag := "base"
	var prev *CompiledEpoch
	var pendingFlaps int
	for {
		end := script.Horizon
		if bi < len(boundaries) {
			end = boundaries[bi].at
		}
		ep, err := compileEpoch(epochInput{
			index: len(plan.Epochs), start: start, end: end, tag: tag,
			script: script, seed: seed, f: f, baseX: baseX, st: st,
			prev: prev, sameRegime: prev != nil && st.signature() == prevSig,
			flaps: pendingFlaps, flapBase: flapCount - pendingFlaps,
		})
		if err != nil {
			return nil, err
		}
		ep.Rounds = roundsIn(start, end, spacing)
		if ep.Rounds < 1 {
			return nil, fmt.Errorf("e2e: churn epoch %d [%g, %g) holds no round at spacing %g",
				ep.Index, start, end, spacing)
		}
		plan.Epochs = append(plan.Epochs, *ep)
		prev = &plan.Epochs[len(plan.Epochs)-1]
		prevSig = st.signature()
		if bi >= len(boundaries) {
			break
		}
		b := boundaries[bi]
		bi++
		kinds := make([]string, len(b.events))
		pendingFlaps = 0
		for i, ev := range b.events {
			kinds[i] = ev.Kind
			if ev.Kind == ChurnFlap {
				pendingFlaps++
				flapCount++
			}
		}
		tag = strings.Join(kinds, "+")
		if err := applyEvents(st, f, b.events); err != nil {
			return nil, err
		}
		start = b.at
	}
	return plan, nil
}

// applyEvents folds a boundary's events into the routing state.
func applyEvents(st *churnState, f *topo.Fig1Topology, events []ChurnEvent) error {
	for _, ev := range events {
		switch ev.Kind {
		case ChurnFailLink, ChurnRecoverLink:
			a, okA := f.G.NodeByName(ev.Link[0])
			b, okB := f.G.NodeByName(ev.Link[1])
			if !okA || !okB {
				return fmt.Errorf("e2e: churn %s: unknown node in %v", ev.Kind, ev.Link)
			}
			if _, ok := f.G.LinkBetween(a, b); !ok {
				return fmt.Errorf("e2e: churn %s: no base link %v", ev.Kind, ev.Link)
			}
			key := edgeKey(ev.Link[0], ev.Link[1])
			if ev.Kind == ChurnFailLink {
				if st.failed[key] {
					return fmt.Errorf("e2e: churn fail-link %v: already failed", ev.Link)
				}
				st.failed[key] = true
			} else {
				if !st.failed[key] {
					return fmt.Errorf("e2e: churn recover-link %v: not failed", ev.Link)
				}
				delete(st.failed, key)
			}
		case ChurnMonitorLeave:
			if !st.monitors[ev.Monitor] {
				return fmt.Errorf("e2e: churn monitor-leave: %q is not a current monitor", ev.Monitor)
			}
			delete(st.monitors, ev.Monitor)
		case ChurnMonitorJoin:
			if _, ok := f.G.NodeByName(ev.Monitor); !ok {
				return fmt.Errorf("e2e: churn monitor-join: %q is not a node", ev.Monitor)
			}
			if st.monitors[ev.Monitor] {
				return fmt.Errorf("e2e: churn monitor-join: %q is already a monitor", ev.Monitor)
			}
			st.monitors[ev.Monitor] = true
		case ChurnAttackStart:
			if st.victim != 0 {
				return fmt.Errorf("e2e: churn attack-start: a window is already open")
			}
			st.victim, st.steal = ev.Victim, ev.Stealthy
		case ChurnAttackStop:
			if st.victim == 0 {
				return fmt.Errorf("e2e: churn attack-stop: no window open")
			}
			st.victim, st.steal = 0, false
		case ChurnFlap:
			// Applied during epoch compilation (needs the path set).
		}
	}
	return nil
}

// epochInput bundles compileEpoch's arguments.
type epochInput struct {
	index      int
	start, end float64
	tag        string
	script     *ChurnScript
	seed       int64
	f          *topo.Fig1Topology
	baseX      la.Vector
	st         *churnState
	prev       *CompiledEpoch
	sameRegime bool
	flaps      int
	flapBase   int
}

func compileEpoch(in epochInput) (*CompiledEpoch, error) {
	f, st := in.f, in.st
	g, err := buildEpochGraph(f, st.failed)
	if err != nil {
		return nil, fmt.Errorf("e2e: churn epoch %d: %w", in.index, err)
	}
	ep := &CompiledEpoch{Index: in.index, Start: in.start, End: in.end, Tag: in.tag}

	var paths []graph.Path
	if in.sameRegime {
		// Paths-only boundary: start from the previous epoch's set and
		// apply each flap as the exact add-then-remove mutation a live
		// session performs, recording the Delta ops.
		paths = append(paths, in.prev.Sys.Paths()...)
		for k := 0; k < in.flaps; k++ {
			cur, err := tomo.NewSystem(g, paths)
			if err != nil {
				return nil, fmt.Errorf("e2e: churn epoch %d flap %d: %w", in.index, k, err)
			}
			rng := mc.RNG(in.seed, churnFlapSeedBase+in.flapBase+k)
			r, alt, err := campaign.FlapPath(cur, rng)
			if err != nil {
				return nil, fmt.Errorf("e2e: churn epoch %d flap %d: %w", in.index, k, err)
			}
			walk, err := walkOf(g, alt)
			if err != nil {
				return nil, fmt.Errorf("e2e: churn epoch %d flap %d: %w", in.index, k, err)
			}
			ep.Delta = append(ep.Delta, PathOp{AddWalk: walk, Remove: r})
			next := make([]graph.Path, 0, len(paths))
			next = append(next, paths[:r]...)
			next = append(next, paths[r+1:]...)
			next = append(next, alt)
			paths = next
		}
		if ep.Delta == nil {
			// Attack-window-only boundary: routing untouched.
			ep.Delta = []PathOp{}
		}
	} else {
		monitors, err := epochMonitors(g, st.monitors)
		if err != nil {
			return nil, fmt.Errorf("e2e: churn epoch %d: %w", in.index, err)
		}
		// NumLinks+3 target paths: enough redundancy for the chosen-
		// victim LP to have room to work (the bare identifiability
		// minimum leaves it infeasible on the failed-link regime), but
		// well below the exhaustive total so later flap events still
		// have unused simple paths to reroute onto.
		var rank int
		paths, rank, err = tomo.SelectPaths(g, monitors,
			tomo.SelectOptions{Exhaustive: true, TargetPaths: g.NumLinks() + 3})
		if err != nil {
			return nil, fmt.Errorf("e2e: churn epoch %d: select paths: %w", in.index, err)
		}
		if rank != g.NumLinks() {
			return nil, fmt.Errorf("e2e: churn epoch %d (%s): path-set rank %d < %d links — regime not identifiable",
				in.index, in.tag, rank, g.NumLinks())
		}
	}
	ep.Sys, err = tomo.NewSystem(g, paths)
	if err != nil {
		return nil, fmt.Errorf("e2e: churn epoch %d: %w", in.index, err)
	}
	if !ep.Sys.Identifiable() {
		return nil, fmt.Errorf("e2e: churn epoch %d (%s): system not identifiable", in.index, in.tag)
	}
	ep.TrueX, err = mapTrueX(f, in.baseX, g)
	if err != nil {
		return nil, fmt.Errorf("e2e: churn epoch %d: %w", in.index, err)
	}
	if st.victim != 0 {
		atk, err := epochAttack(f, g, st.victim, st.steal)
		if err != nil {
			return nil, fmt.Errorf("e2e: churn epoch %d: %w", in.index, err)
		}
		ep.Plan, ep.Damage, err = campaign.CompileAttack(ep.Sys, ep.TrueX, atk)
		if err != nil {
			return nil, fmt.Errorf("e2e: churn epoch %d (%s): %w", in.index, in.tag, err)
		}
	}
	ep.Det, err = detect.New(ep.Sys, 0)
	if err != nil {
		return nil, fmt.Errorf("e2e: churn epoch %d: %w", in.index, err)
	}
	return ep, nil
}

// buildEpochGraph rebuilds the Fig. 1 graph minus failed links. Nodes
// are inserted in base-ID order so NodeIDs match the base graph across
// every epoch; LinkIDs stay dense and therefore shift when links fail.
func buildEpochGraph(f *topo.Fig1Topology, failed map[string]bool) (*graph.Graph, error) {
	g := graph.New()
	for _, v := range f.G.Nodes() {
		name, err := f.G.NodeName(v)
		if err != nil {
			return nil, err
		}
		if got := g.AddNode(name); got != v {
			return nil, fmt.Errorf("node %s renumbered %d→%d", name, v, got)
		}
	}
	for _, l := range f.G.Links() {
		an, _ := f.G.NodeName(l.A)
		bn, _ := f.G.NodeName(l.B)
		if failed[edgeKey(an, bn)] {
			continue
		}
		if _, err := g.AddLink(l.A, l.B); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// epochMonitors resolves the present monitor set to NodeIDs in stable
// (base node) order, so path selection is deterministic.
func epochMonitors(g *graph.Graph, present map[string]bool) ([]graph.NodeID, error) {
	var out []graph.NodeID
	for _, v := range g.Nodes() {
		name, err := g.NodeName(v)
		if err != nil {
			return nil, err
		}
		if present[name] {
			out = append(out, v)
		}
	}
	if len(out) < 2 {
		return nil, fmt.Errorf("only %d monitors present — measurement needs at least 2", len(out))
	}
	return out, nil
}

// mapTrueX carries each physical link's base delay draw into the epoch
// graph's link numbering, keyed by endpoint names.
func mapTrueX(f *topo.Fig1Topology, baseX la.Vector, g *graph.Graph) (la.Vector, error) {
	out := make(la.Vector, g.NumLinks())
	for _, l := range g.Links() {
		base, ok := f.G.LinkBetween(l.A, l.B)
		if !ok {
			return nil, fmt.Errorf("epoch link %d has no base counterpart", l.ID)
		}
		out[l.ID] = baseX[base]
	}
	return out, nil
}

// epochAttack maps the scripted attacker intent into the epoch graph:
// attackers {B, C} by name, the victim by the paper's link number.
func epochAttack(f *topo.Fig1Topology, g *graph.Graph, victim int, stealthy bool) (*campaign.EpochAttack, error) {
	baseLink, err := f.G.Link(f.PaperLink[victim])
	if err != nil {
		return nil, err
	}
	vl, ok := g.LinkBetween(baseLink.A, baseLink.B)
	if !ok {
		return nil, fmt.Errorf("victim link %d is failed in this epoch — nothing to scapegoat", victim)
	}
	var attackers []graph.NodeID
	for _, a := range f.Attackers {
		name, _ := f.G.NodeName(a)
		id, ok := g.NodeByName(name)
		if !ok {
			return nil, fmt.Errorf("attacker %s missing from epoch graph", name)
		}
		attackers = append(attackers, id)
	}
	return &campaign.EpochAttack{Attackers: attackers, Victims: []graph.LinkID{vl}, Stealthy: stealthy}, nil
}

func walkOf(g *graph.Graph, p graph.Path) ([]string, error) {
	walk := make([]string, len(p.Nodes))
	for i, v := range p.Nodes {
		name, err := g.NodeName(v)
		if err != nil {
			return nil, err
		}
		walk[i] = name
	}
	return walk, nil
}

// roundsIn counts virtual-clock rounds r·spacing inside [start, end).
func roundsIn(start, end, spacing float64) int {
	n := 0
	for r := 0; ; r++ {
		t := float64(r) * spacing
		if t >= end {
			break
		}
		if t >= start {
			n++
		}
	}
	return n
}

// GenTraffic synthesizes every epoch's measurement rounds through a
// netsim.World — epoch 0 pins the regime, each later epoch is a mid-run
// Swap — and precomputes each round's verdict under the epoch's own
// detector. Round gi (global index) draws jitter from mc.RNG(seed,
// churnRoundsSeedBase+gi): traffic is a pure function of (plan, seed).
func (p *ChurnPlan) GenTraffic() ([][]Round, error) {
	out := make([][]Round, len(p.Epochs))
	var world *netsim.World
	gi := 0
	for ei := range p.Epochs {
		ep := &p.Epochs[ei]
		regime := netsim.Config{
			Graph:         ep.Sys.Graph(),
			Paths:         ep.Sys.Paths(),
			LinkDelays:    ep.TrueX,
			Jitter:        TrafficJitter,
			ProbesPerPath: TrafficProbes,
		}
		var err error
		if world == nil {
			world, err = netsim.NewWorld(regime)
		} else {
			err = world.Swap(regime)
		}
		if err != nil {
			return nil, fmt.Errorf("e2e: churn epoch %d: %w", ei, err)
		}
		rounds := make([]Round, ep.Rounds)
		for r := 0; r < ep.Rounds; r++ {
			y, err := world.Round(mc.RNG(p.Seed, churnRoundsSeedBase+gi), ep.Plan)
			if err != nil {
				return nil, fmt.Errorf("e2e: churn epoch %d round %d: %w", ei, r, err)
			}
			rep, err := ep.Det.Inspect(y)
			if err != nil {
				return nil, fmt.Errorf("e2e: churn epoch %d round %d inspect: %w", ei, r, err)
			}
			rounds[r] = Round{Y: y, Detected: rep.Detected, ResidualNorm: rep.ResidualNorm}
			gi++
		}
		out[ei] = rounds
	}
	return out, nil
}
