package e2e

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/serve"
	"repro/internal/store"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func TestChurnScriptParseValidate(t *testing.T) {
	// The canonical script round-trips through JSON.
	s := FiveEpochScript()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	blob := `{
	  "name": "mini",
	  "horizon": 4000,
	  "events": [
	    {"at": 2000, "kind": "fail-link", "link": ["C", "D"]}
	  ]
	}`
	parsed, err := ParseChurnScript(strings.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != "mini" || parsed.roundSpacing() != 1000 {
		t.Fatalf("parsed %+v", parsed)
	}

	bad := []ChurnScript{
		{Name: "", Horizon: 1000},
		{Name: "x", Horizon: 0},
		{Name: "x", Horizon: 1000, Events: []ChurnEvent{{At: 1000, Kind: ChurnFlap}}},
		{Name: "x", Horizon: 1000, Events: []ChurnEvent{{At: 10, Kind: "melt"}}},
		{Name: "x", Horizon: 1000, Events: []ChurnEvent{{At: 10, Kind: ChurnFailLink, Link: []string{"C"}}}},
		{Name: "x", Horizon: 1000, Events: []ChurnEvent{{At: 10, Kind: ChurnAttackStart, Victim: 11}}},
		{Name: "x", Horizon: 1000, Events: []ChurnEvent{{At: 10, Kind: ChurnMonitorLeave}}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad script %d validated", i)
		}
	}
}

// TestChurnCompileFiveEpoch pins the compiled shape of the canonical
// campaign: six epochs whose transition routes exercise every mechanism
// — full re-registration for structural churn, session path mutations
// for the flap, a no-op hold for the attack window — with every epoch
// identifiable and the attack compiled only inside its window.
func TestChurnCompileFiveEpoch(t *testing.T) {
	plan, err := CompileChurn(FiveEpochScript(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Epochs) != 6 {
		t.Fatalf("%d epochs, want 6", len(plan.Epochs))
	}
	wantTags := []string{
		"base", "fail-link", "flap", "attack-start",
		"attack-stop+monitor-leave+monitor-join",
		"recover-link+monitor-leave+monitor-join",
	}
	for i, ep := range plan.Epochs {
		if ep.Tag != wantTags[i] {
			t.Errorf("epoch %d tag %q, want %q", i, ep.Tag, wantTags[i])
		}
		if ep.Rounds != 4 {
			t.Errorf("epoch %d: %d rounds, want 4", i, ep.Rounds)
		}
		if !ep.Sys.Identifiable() {
			t.Errorf("epoch %d not identifiable", i)
		}
		if (ep.Plan != nil) != (i == 3) {
			t.Errorf("epoch %d plan presence %v", i, ep.Plan != nil)
		}
		if len(ep.TrueX) != ep.Sys.Graph().NumLinks() {
			t.Errorf("epoch %d TrueX dim %d vs %d links", i, len(ep.TrueX), ep.Sys.Graph().NumLinks())
		}
	}
	// Transition-route shapes: structural boundaries have no delta
	// (re-register), the flap has exactly one op, the attack window an
	// empty non-nil hold delta.
	for _, i := range []int{0, 1, 4, 5} {
		if plan.Epochs[i].Delta != nil {
			t.Errorf("epoch %d should re-register, has delta %v", i, plan.Epochs[i].Delta)
		}
	}
	if d := plan.Epochs[2].Delta; len(d) != 1 || d == nil {
		t.Errorf("flap epoch delta %v, want exactly one op", d)
	} else {
		if len(d[0].AddWalk) < 2 {
			t.Errorf("flap op walk %v", d[0].AddWalk)
		}
		if d[0].Remove < 0 || d[0].Remove >= plan.Epochs[1].Sys.NumPaths() {
			t.Errorf("flap op removes out-of-range path %d", d[0].Remove)
		}
	}
	if d := plan.Epochs[3].Delta; d == nil || len(d) != 0 {
		t.Errorf("attack-window epoch delta %v, want empty hold", d)
	}
	if plan.Epochs[3].Damage <= 0 {
		t.Error("attack window compiled with zero damage")
	}
	// The failed link is gone from the middle epochs and back at the end.
	if l0, l1, l5 := plan.Epochs[0].Sys.Graph().NumLinks(), plan.Epochs[1].Sys.Graph().NumLinks(),
		plan.Epochs[5].Sys.Graph().NumLinks(); l0 != 10 || l1 != 9 || l5 != 10 {
		t.Errorf("link counts %d/%d/%d across fail→recover, want 10/9/10", l0, l1, l5)
	}

	// Determinism: recompilation is structurally identical.
	plan2, err := CompileChurn(FiveEpochScript(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if plan2.Draw != plan.Draw {
		t.Fatalf("draw drifted %d vs %d", plan.Draw, plan2.Draw)
	}
	for i := range plan.Epochs {
		if plan.Epochs[i].Sys.Digest() != plan2.Epochs[i].Sys.Digest() {
			t.Errorf("epoch %d routing digest drifted between identical compiles", i)
		}
	}
}

// TestGoldenChurnTranscript runs the five-epoch campaign against a live
// harness at two different worker counts and pins (a) that the two
// transcripts digest identically — per-round work is a pure function of
// (seed, round index), aggregation is by index — and (b) the digest and
// per-epoch story against a committed golden. Regenerate with:
//
//	go test ./internal/e2e -run TestGoldenChurnTranscript -update
func TestGoldenChurnTranscript(t *testing.T) {
	plan, err := CompileChurn(FiveEpochScript(), 42)
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *ChurnTranscript {
		t.Helper()
		h := NewHarness(serve.Config{RequestTimeout: -1})
		defer h.Close()
		tr, err := RunChurn(context.Background(), NewClient(h.URL(), nil), plan, workers)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	tr1 := run(1)
	tr5 := run(5)
	if d1, d5 := tr1.Digest(), tr5.Digest(); d1 != d5 {
		t.Fatalf("digest depends on worker count:\n 1 worker  %s\n 5 workers %s\n%s\n%s",
			d1, d5, tr1.Summary(), tr5.Summary())
	}
	for _, ep := range tr1.Epochs {
		if ep.VerdictMismatch != 0 {
			t.Errorf("epoch %d: %d verdict mismatches\n%s", ep.Index, ep.VerdictMismatch, tr1.Summary())
		}
		if ep.Alarms != ep.ExpAlarms {
			t.Errorf("epoch %d: %d alarms, expected %d", ep.Index, ep.Alarms, ep.ExpAlarms)
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "digest %s\n", tr1.Digest())
	for _, ep := range tr1.Epochs {
		fmt.Fprintf(&b, "%s|%s|%s rounds=%d alarms=%d mm=%d\n",
			ep.Tag, ep.Route, strings.Join(ep.Mutations, ","),
			ep.Rounds, ep.Alarms, ep.VerdictMismatch)
	}
	got := b.String()

	path := filepath.Join("testdata", "churn.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("churn transcript drifted from golden:\n got:\n%s\n want:\n%s", got, want)
	}
}

// TestSessionSurvivesEvictionChurn pins the session/registry isolation
// contract (DESIGN.md §13): a streaming session holds its own system
// snapshot, so evicting — even replacing — the topology it was opened
// on neither disturbs its in-flight rounds nor changes its matrix. The
// session drains cleanly; only sessions opened after the swap see the
// new routing.
func TestSessionSurvivesEvictionChurn(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean)
	_, c := newTestHarness(t, scenarios)
	sc := scenarios[0]
	ctx := context.Background()

	rs, err := sc.GenRounds(77, 4)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([]serve.StreamRound, len(rs))
	noX := false
	for i, r := range rs {
		lines[i] = serve.StreamRound{Y: r.Y, XHat: &noX}
	}

	old, err := c.OpenSession(ctx, sc.Name, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.StreamRounds(ctx, old.ID, lines[:2])
	if err != nil || res.ErrClass != "" || len(res.Verdicts) != 2 {
		t.Fatalf("pre-evict stream: res %+v err %v", res, err)
	}

	// Evict and replace the topology with a *different* system (leaner
	// path selection → different matrix and path count) under the same
	// name.
	if status, err := c.Evict(ctx, sc.Name); err != nil || status != http.StatusOK {
		t.Fatalf("evict: status %d err %v", status, err)
	}
	g := sc.Sys.Graph()
	monitors := topo.Fig1().Monitors
	leanPaths, rank, err := tomo.SelectPaths(g, monitors, tomo.SelectOptions{Exhaustive: true})
	if err != nil || rank != g.NumLinks() {
		t.Fatalf("lean selection: rank %d err %v", rank, err)
	}
	lean, err := tomo.NewSystem(g, leanPaths)
	if err != nil {
		t.Fatal(err)
	}
	if lean.NumPaths() == sc.Sys.NumPaths() {
		t.Fatalf("replacement system must differ (both %d paths)", lean.NumPaths())
	}
	if _, err := c.Register(ctx, sc.Name, lean, 0); err != nil {
		t.Fatal(err)
	}

	// The old session still serves the OLD matrix: same width, verdicts
	// exactly matching the precomputed detector on the original system.
	res, err = c.StreamRounds(ctx, old.ID, lines[2:])
	if err != nil || res.ErrClass != "" || len(res.Verdicts) != 2 {
		t.Fatalf("post-evict stream on old session: res %+v err %v", res, err)
	}
	for i, v := range res.Verdicts {
		want := rs[2+i]
		if v.Detected != want.Detected || !within(v.ResidualNorm, want.ResidualNorm, 1e-6) {
			t.Errorf("old session round %d: verdict (%v, %g) vs precomputed (%v, %g)",
				i, v.Detected, v.ResidualNorm, want.Detected, want.ResidualNorm)
		}
	}
	// Its mutation surface is alive too.
	status, pr, err := c.MutateSessionPaths(ctx, old.ID,
		serve.SessionPathsRequest{Add: walkNames(t, sc.Sys, 0)})
	if err != nil || status != http.StatusOK {
		t.Fatalf("mutate on old session after evict: status %d err %v", status, err)
	}
	if pr.NumPaths != sc.Sys.NumPaths()+1 {
		t.Errorf("old session grew to %d paths, want %d", pr.NumPaths, sc.Sys.NumPaths()+1)
	}

	// A session opened now binds the NEW system.
	fresh, err := c.OpenSession(ctx, sc.Name, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st, info, err := c.SessionInfo(ctx, fresh.ID); err != nil || st != http.StatusOK {
		t.Fatalf("fresh session info: status %d err %v", st, err)
	} else if info.NumPaths != lean.NumPaths() {
		t.Errorf("fresh session has %d paths, want new system's %d", info.NumPaths, lean.NumPaths())
	}

	// Both drain cleanly with full accounting.
	if status, cr, err := c.CloseSession(ctx, old.ID); err != nil || status != http.StatusOK || cr.Rounds != 4 {
		t.Fatalf("old session close: status %d resp %+v err %v", status, cr, err)
	}
	if status, _, err := c.CloseSession(ctx, fresh.ID); err != nil || status != http.StatusOK {
		t.Fatalf("fresh session close: status %d err %v", status, err)
	}
}

func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// walkNames renders path pi of sys as a node-name walk.
func walkNames(t *testing.T, sys *tomo.System, pi int) []string {
	t.Helper()
	w, err := walkOf(sys.Graph(), sys.Paths()[pi])
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestEvictionRaceWALReconcile races concurrent estimate/inspect
// traffic against two evict/re-register churners on a journal-backed
// harness: no request may see anything but 200/404 (and no torn state —
// every 200 verdict must match the registered system's own detector),
// and afterwards the WAL must hold exactly one append per acknowledged
// mutation and replay to a working registry.
func TestEvictionRaceWALReconcile(t *testing.T) {
	dir := t.TempDir()
	scenarios := buildKinds(t, 1, KindClean)
	sc := scenarios[0]
	h, c := persistentHarness(t, dir, store.Options{})
	if _, err := c.Register(context.Background(), sc.Name, sc.Sys, 0); err != nil {
		t.Fatal(err)
	}
	rs, err := sc.GenRounds(13, 2)
	if err != nil {
		t.Fatal(err)
	}
	wantRes := make([]float64, len(rs))
	wantDet := make([]bool, len(rs))
	for i, r := range rs {
		wantRes[i], wantDet[i] = r.ResidualNorm, r.Detected
	}

	before, err := c.MetricsSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	var registers, evictions atomic.Int64
	stop := make(chan struct{})
	var churn sync.WaitGroup
	for k := 0; k < 2; k++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				status, err := c.Evict(context.Background(), sc.Name)
				if err != nil || (status != http.StatusOK && status != http.StatusNotFound) {
					t.Errorf("evict: status %d err %v", status, err)
					return
				}
				if status == http.StatusOK {
					evictions.Add(1)
				}
				tr, err := c.Register(context.Background(), sc.Name, sc.Sys, 0)
				if err != nil {
					t.Errorf("re-register: %v", err)
					return
				}
				if tr != nil {
					registers.Add(1)
				}
			}
		}()
	}

	var work sync.WaitGroup
	for w := 0; w < 4; w++ {
		work.Add(1)
		go func(w int) {
			defer work.Done()
			for i := 0; i < 50; i++ {
				if w%2 == 0 {
					status, er, err := c.Estimate(context.Background(), sc.Name, ysOf(rs))
					if err != nil || (status != http.StatusOK && status != http.StatusNotFound) {
						t.Errorf("estimate: status %d err %v", status, err)
						return
					}
					if status == http.StatusOK && len(er.Results) != len(rs) {
						t.Errorf("estimate 200 with %d results for %d rounds — torn read", len(er.Results), len(rs))
						return
					}
				} else {
					status, ir, err := c.Inspect(context.Background(), sc.Name, ysOf(rs), 0)
					if err != nil || (status != http.StatusOK && status != http.StatusNotFound) {
						t.Errorf("inspect: status %d err %v", status, err)
						return
					}
					if status == http.StatusOK {
						for j, rep := range ir.Reports {
							if rep.Detected != wantDet[j] || !within(rep.ResidualNorm, wantRes[j], 1e-6) {
								t.Errorf("inspect verdict %d torn under churn: (%v, %g) want (%v, %g)",
									j, rep.Detected, rep.ResidualNorm, wantDet[j], wantRes[j])
								return
							}
						}
					}
				}
			}
		}(w)
	}
	work.Wait()
	close(stop)
	churn.Wait()
	if t.Failed() {
		return
	}

	// WAL accounting: exactly one append per acknowledged mutation —
	// the racing reads contributed nothing.
	after, err := c.MetricsSnapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	delta := after["store_wal_records_total"] - before["store_wal_records_total"]
	wantDelta := float64(registers.Load() + evictions.Load())
	if delta != wantDelta {
		t.Errorf("WAL grew by %g records for %g acknowledged mutations (%d registers, %d evicts)",
			delta, wantDelta, registers.Load(), evictions.Load())
	}

	// Graceful close, then replay: the journal must reconstruct the
	// topology the churn left registered, serving correct verdicts.
	h.Close()
	h2, c2 := persistentHarness(t, dir, store.Options{})
	defer h2.Close()
	status, ir, err := c2.Inspect(context.Background(), sc.Name, ysOf(rs), 0)
	if err != nil || status != http.StatusOK {
		t.Fatalf("inspect after replay: status %d err %v", status, err)
	}
	for j, rep := range ir.Reports {
		if rep.Detected != wantDet[j] || !within(rep.ResidualNorm, wantRes[j], 1e-6) {
			t.Fatalf("replayed registry verdict %d: (%v, %g) want (%v, %g)",
				j, rep.Detected, rep.ResidualNorm, wantDet[j], wantRes[j])
		}
	}
}
