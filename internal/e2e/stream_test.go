package e2e

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/la"
	"repro/internal/serve"
)

// streamChaos is aggressive enough that drop, truncate, and reset all
// fire inside NDJSON round streams within a modest request count.
var streamChaos = ChaosConfig{Drop: 0.1, Truncate: 0.3, Reset: 0.15}

// newStreamHarness boots a harness sized for streaming runs: the
// request timeout is disabled (streams outlive any per-request deadline)
// and the pool is wide enough that client concurrency never trips the
// 429 shed path, which would make transcripts scheduling-dependent.
func newStreamHarness(t *testing.T, scenarios []*Scenario) *Harness {
	t.Helper()
	h := NewHarness(serve.Config{RequestTimeout: -1, Workers: 16})
	t.Cleanup(h.Close)
	c := NewClient(h.URL(), nil)
	for _, sc := range scenarios {
		if _, err := c.Register(context.Background(), sc.Name, sc.Sys, 0); err != nil {
			t.Fatal(err)
		}
	}
	return h
}

// TestStreamDigestWorkerInvariance runs the same streaming plan at
// three worker counts on three fresh daemons: every per-session verdict
// stream — batching, estimates, alarms, mid-stream path churn — must be
// identical, so the transcript digests must agree byte for byte and
// every run must reconcile exactly against its server's counters.
func TestStreamDigestWorkerInvariance(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)
	var digests []string
	for _, workers := range []int{1, 4, 8} {
		h := newStreamHarness(t, scenarios)
		tr, err := RunStream(context.Background(), StreamConfig{
			BaseURL:          h.URL(),
			Scenarios:        scenarios,
			Sessions:         6,
			RoundsPerSession: 48,
			BatchMax:         16,
			Workers:          workers,
			Seed:             11,
			PathChurn:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		e := tr.Expected()
		if e.RoundsSent != 6*48 || e.VerdictsSeen != 6*48 {
			t.Fatalf("workers=%d: sent %d rounds, saw %d verdicts, want %d of each",
				workers, e.RoundsSent, e.VerdictsSeen, 6*48)
		}
		if e.Alarms == 0 {
			t.Fatalf("workers=%d: chosen-victim sessions never tripped the detector", workers)
		}
		if e.MutUpdates != 6 || e.MutDowndates != 6 {
			t.Fatalf("workers=%d: churn did %d updates / %d downdates, want 6/6",
				workers, e.MutUpdates, e.MutDowndates)
		}
		if msgs := e.Reconcile(h.Metrics()); len(msgs) != 0 {
			t.Fatalf("workers=%d: transcript does not reconcile: %v", workers, msgs)
		}
		digests = append(digests, tr.Digest())
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Fatalf("digest depends on worker count:\n  w1 %s\n  w4 %s\n  w8 %s",
			digests[0], digests[1], digests[2])
	}
}

// TestStreamChaosMidStream injects drop/truncate/reset into the NDJSON
// round streams themselves. The assertions are the streaming analogue
// of the one-shot soak: the client transcript must be a pure function
// of the seed (two fresh daemons, same seed, same digest), every
// verdict that does arrive before a cut must agree with the client-side
// precomputation, and the server's counters must still reconcile — as
// exact figures where chaos cannot interfere and as bounds where a
// severed response leaves the server ahead of the client.
func TestStreamChaosMidStream(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)
	run := func() (*StreamTranscript, *Harness) {
		h := newStreamHarness(t, scenarios)
		tr, err := RunStream(context.Background(), StreamConfig{
			BaseURL:          h.URL(),
			Scenarios:        scenarios,
			Sessions:         9,
			RoundsPerSession: 240,
			BatchMax:         20,
			Workers:          4,
			Seed:             23,
			Chaos:            streamChaos,
			PathChurn:        2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr, h
	}
	tr1, h1 := run()
	tr2, _ := run()
	if d1, d2 := tr1.Digest(), tr2.Digest(); d1 != d2 {
		t.Fatalf("chaotic stream transcript is not seed-deterministic:\n  %s\n  %s", d1, d2)
	}

	e := tr1.Expected()
	if e.Mismatches != 0 {
		t.Fatalf("%d verdicts disagreed with the client-side precomputation", e.Mismatches)
	}
	if msgs := e.Reconcile(h1.Metrics()); len(msgs) != 0 {
		t.Fatalf("chaotic transcript does not reconcile: %v", msgs)
	}

	// The fault mix must actually have severed streams mid-flight: some
	// request ends in shortbody/reset after delivering at least one
	// verdict, and some rounds sent to the server never produced a
	// client-visible verdict.
	classes := make(map[string]int)
	cutAfterVerdicts := 0
	for i := range tr1.Sessions {
		r := &tr1.Sessions[i]
		for j, c := range r.ErrClasses {
			if c != "" {
				classes[c]++
			}
			if (c == ErrClassShortBody || c == ErrClassReset) && r.ReqVerdicts[j] > 0 {
				cutAfterVerdicts++
			}
		}
	}
	if classes[ErrClassDropped] == 0 {
		t.Error("drop chaos never fired on a stream request")
	}
	if classes[ErrClassShortBody]+classes[ErrClassReset] == 0 {
		t.Error("no stream was cut mid-body by truncate/reset chaos")
	}
	if cutAfterVerdicts == 0 {
		t.Error("every cut landed before the first verdict; mid-stream cuts not exercised")
	}
	if e.VerdictsSeen >= e.RoundsSent {
		t.Errorf("verdicts seen (%d) not behind rounds sent (%d) despite cut streams",
			e.VerdictsSeen, e.RoundsSent)
	}
	if e.VerdictsSeen == 0 {
		t.Fatal("chaos drowned every verdict; fault rates too high to test anything")
	}
}

// TestStreamBatchSpeedup is the PR's headline acceptance number: 1k
// rounds pushed through one session stream (batched estimates, one
// request) must beat 1k individual one-shot HTTP estimates by at least
// 10x wall-clock.
func TestStreamBatchSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short")
	}
	scenarios := buildKinds(t, 1, KindClean)
	sc := scenarios[0]
	h := newStreamHarness(t, scenarios)
	c := NewClient(h.URL(), nil)
	ctx := context.Background()

	const n = 1000
	rounds, err := sc.GenRounds(99, n)
	if err != nil {
		t.Fatal(err)
	}

	// One-shot path: n sequential POST /v1/estimate requests, one round
	// each — the pre-session way to score a round stream.
	oneStart := time.Now()
	for i := 0; i < n; i++ {
		status, _, err := c.Estimate(ctx, sc.Name, []la.Vector{rounds[i].Y})
		if err != nil || status != 200 {
			t.Fatalf("one-shot estimate %d: status %d err %v", i, status, err)
		}
	}
	oneShot := time.Since(oneStart)

	// Streamed path: one session, one NDJSON request, batches of 100 in
	// the packed wire form with slim verdicts — the configuration a
	// high-rate production feed would run.
	slim := false
	var lines []serve.StreamRound
	for at := 0; at < n; at += 100 {
		batch := make([][]float64, 0, 100)
		for _, r := range rounds[at : at+100] {
			batch = append(batch, r.Y)
		}
		packed, err := serve.PackRounds(batch)
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, serve.StreamRound{Packed: packed, XHat: &slim})
	}
	streamed := time.Duration(1<<62 - 1)
	for rep := 0; rep < 3; rep++ {
		hnd, err := c.OpenSession(ctx, sc.Name, 0)
		if err != nil {
			t.Fatal(err)
		}
		start := time.Now()
		res, err := c.StreamRounds(ctx, hnd.ID, lines)
		if d := time.Since(start); d < streamed {
			streamed = d
		}
		if err != nil || res.ErrClass != "" || len(res.Verdicts) != n {
			t.Fatalf("stream rep %d: err %v class %q verdicts %d", rep, err, res.ErrClass, len(res.Verdicts))
		}
		if _, _, err := c.CloseSession(ctx, hnd.ID); err != nil {
			t.Fatal(err)
		}
	}

	t.Logf("1k one-shot estimates: %v; 1k streamed rounds: %v (%.1fx)",
		oneShot, streamed, float64(oneShot)/float64(streamed))
	if streamed*10 > oneShot {
		t.Errorf("streamed 1k rounds in %v, one-shot in %v; want >= 10x speedup", streamed, oneShot)
	}
}

// TestGoldenStreamTranscript is the streaming counterpart of the soak
// golden: a 10k-round streaming soak (10 sessions x 1k rounds, with
// mid-stream path churn) whose verdict streams must be byte-identical
// across worker counts and match the committed digest. Regenerate with:
//
//	go test ./internal/e2e -run TestGoldenStreamTranscript -update
func TestGoldenStreamTranscript(t *testing.T) {
	scenarios := buildKinds(t, 1, KindClean, KindStealthy, KindChosenVictim)
	var last *StreamTranscript
	var digests []string
	for _, workers := range []int{1, 4, 8} {
		h := newStreamHarness(t, scenarios)
		tr, err := RunStream(context.Background(), StreamConfig{
			BaseURL:          h.URL(),
			Scenarios:        scenarios,
			Sessions:         10,
			RoundsPerSession: 1000,
			BatchMax:         100,
			Workers:          workers,
			Seed:             42,
			PathChurn:        1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if msgs := tr.Expected().Reconcile(h.Metrics()); len(msgs) != 0 {
			t.Fatalf("workers=%d: golden stream run does not reconcile: %v", workers, msgs)
		}
		digests = append(digests, tr.Digest())
		last = tr
	}
	if digests[0] != digests[1] || digests[1] != digests[2] {
		t.Fatalf("10k-round verdict stream depends on worker count:\n  w1 %s\n  w4 %s\n  w8 %s",
			digests[0], digests[1], digests[2])
	}

	e := last.Expected()
	got := fmt.Sprintf(
		"digest %s\nsessions %d rounds %d verdicts %d alarms %d\nmutations +%d/-%d mismatches %d\n",
		digests[0], len(last.Sessions), e.RoundsSent, e.VerdictsSeen, e.Alarms,
		e.MutUpdates, e.MutDowndates, e.Mismatches)

	path := filepath.Join("testdata", "stream.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("stream transcript drifted from golden.\ngot:\n%s\nwant:\n%s\nSummary:\n%s\nRun with -update if the change is intended.",
			got, want, last.Summary())
	}
}
