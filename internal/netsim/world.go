package netsim

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/la"
)

// World is the stateful face of the simulator for dynamic-network
// campaigns: it pins the current routing regime — graph, measurement
// paths, true link delays, noise model — and supports mid-run topology
// swaps at routing-epoch boundaries. Per-round inputs (the PRNG and the
// attack plan) stay per-call, so a World round is a pure function of
// (regime, round inputs), exactly like a bare RunDelay.
//
// World memoizes the per-path link index used to attribute a measured
// round back to physical links (RoundAttributed). The memo is rebuilt
// on every Swap: link IDs are dense per graph, so a stale path→link map
// carried across a swap would silently attribute delay to whichever
// link happens to reuse the old ID in the new regime. Swap therefore
// owns the invalidation, and the regression test in world_test.go pins
// that attribution always lands on the current topology's links.
type World struct {
	cfg   Config
	epoch int
	// pathLinks[pi][h] is the link crossed at hop h of path pi — the
	// memoized attribution index, valid only for the current regime.
	pathLinks [][]graph.LinkID
	onSwap    func(epoch int)
}

// NewWorld pins the initial regime. cfg.RNG and cfg.Plan are per-round
// inputs and must be nil here; pass them to Round/RoundAttributed.
func NewWorld(cfg Config) (*World, error) {
	if err := checkRegime(cfg); err != nil {
		return nil, err
	}
	return &World{cfg: cfg, pathLinks: buildPathIndex(cfg.Paths)}, nil
}

// Swap replaces the routing regime — a link failure, an ECMP reroute, a
// monitor set change — and invalidates every memoized per-topology
// structure. The epoch counter increments on success; a failed swap
// leaves the previous regime fully intact.
func (w *World) Swap(cfg Config) error {
	if err := checkRegime(cfg); err != nil {
		return err
	}
	w.cfg = cfg
	w.pathLinks = buildPathIndex(cfg.Paths)
	w.epoch++
	if w.onSwap != nil {
		w.onSwap(w.epoch)
	}
	return nil
}

// OnSwap registers a hook invoked after every successful Swap with the
// new epoch number. Downstream per-regime state — a forensics
// observatory's suspicion ledger, a defender's calibrated alpha — is
// only valid within one routing epoch; the hook is the signal to reset
// it at exactly the round boundary where attribution would go stale. A
// failed Swap never fires the hook. Passing nil clears it.
func (w *World) OnSwap(fn func(epoch int)) { w.onSwap = fn }

// checkRegime validates the regime half of a Config: RNG and Plan are
// per-round and must not be baked into the regime (a plan compiled for
// one routing epoch is not generally valid on the next — path indices
// shift and attacker-free paths change).
func checkRegime(cfg Config) error {
	if cfg.RNG != nil {
		return fmt.Errorf("netsim: world regime must not carry an RNG (pass it per round): %w", ErrBadConfig)
	}
	if cfg.Plan != nil {
		return fmt.Errorf("netsim: world regime must not carry an attack plan (pass it per round): %w", ErrBadConfig)
	}
	// The structural checks need an RNG stand-in when jitter is on.
	probe := cfg
	if probe.Jitter > 0 {
		probe.RNG = rand.New(rand.NewSource(0))
	}
	return probe.validate()
}

func buildPathIndex(paths []graph.Path) [][]graph.LinkID {
	idx := make([][]graph.LinkID, len(paths))
	for i, p := range paths {
		links := make([]graph.LinkID, len(p.Links))
		copy(links, p.Links)
		idx[i] = links
	}
	return idx
}

// Epoch is the number of swaps applied so far (0 = initial regime).
func (w *World) Epoch() int { return w.epoch }

// Graph is the current regime's topology.
func (w *World) Graph() *graph.Graph { return w.cfg.Graph }

// Paths is the current regime's measurement path set.
func (w *World) Paths() []graph.Path { return w.cfg.Paths }

// NumLinks is the current regime's link count.
func (w *World) NumLinks() int { return w.cfg.Graph.NumLinks() }

// PathLinks exposes the memoized link sequence of path pi — what
// attribution will use. Tests assert it tracks the current regime.
func (w *World) PathLinks(pi int) []graph.LinkID {
	if pi < 0 || pi >= len(w.pathLinks) {
		return nil
	}
	out := make([]graph.LinkID, len(w.pathLinks[pi]))
	copy(out, w.pathLinks[pi])
	return out
}

// Round simulates one measurement round under the current regime. The
// plan (nil = clean round) is validated against the current paths, so a
// plan compiled for a pre-swap epoch fails loudly instead of silently
// manipulating the wrong paths.
func (w *World) Round(rng *rand.Rand, plan *AttackPlan) (la.Vector, error) {
	cfg := w.cfg
	cfg.RNG = rng
	cfg.Plan = plan
	return RunDelay(cfg)
}

// RoundAttributed is Round plus per-link delay attribution: perLink[l]
// sums every traced hop's dwell time on link l across all probes of the
// round (adversarial holds included — the held hop's dwell covers the
// hold, which is what makes forensic attribution point at the attacker's
// neighborhood). Attribution resolves hops through the memoized
// path→link index, never through stale caller-side state.
func (w *World) RoundAttributed(rng *rand.Rand, plan *AttackPlan) (y, perLink la.Vector, err error) {
	cfg := w.cfg
	cfg.RNG = rng
	cfg.Plan = plan
	y, traces, err := RunDelayTraced(cfg)
	if err != nil {
		return nil, nil, err
	}
	perLink = make(la.Vector, w.cfg.Graph.NumLinks())
	for _, tr := range traces {
		links := w.pathLinks[tr.PathIndex]
		for h := range tr.Hops {
			if h >= len(links) {
				return nil, nil, fmt.Errorf("netsim: trace hop %d beyond path %d index (%d links): %w",
					h, tr.PathIndex, len(links), ErrBadConfig)
			}
			perLink[links[h]] += tr.Hops[h].Arrive - tr.Hops[h].Depart
		}
	}
	return y, perLink, nil
}
