package netsim

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mc"
)

// lineWorld builds a 3-node line a–b–c with one monitor path a→b→c.
func lineWorld(t *testing.T, delays la.Vector) (*World, *graph.Graph) {
	t.Helper()
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := g.AddLink(b, c)
	if err != nil {
		t.Fatal(err)
	}
	p := graph.Path{Nodes: []graph.NodeID{a, b, c}, Links: []graph.LinkID{ab, bc}}
	w, err := NewWorld(Config{Graph: g, Paths: []graph.Path{p}, LinkDelays: delays})
	if err != nil {
		t.Fatal(err)
	}
	return w, g
}

func TestWorldRoundMatchesRunDelay(t *testing.T) {
	w, g := lineWorld(t, la.Vector{3, 4})
	y, err := w.Round(mc.RNG(1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunDelay(Config{Graph: g, Paths: w.Paths(), LinkDelays: la.Vector{3, 4}, RNG: mc.RNG(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != 1 || y[0] != want[0] {
		t.Fatalf("world round %v, bare RunDelay %v", y, want)
	}
	if y[0] != 7 {
		t.Fatalf("noiseless line delay %g, want 7", y[0])
	}
}

func TestWorldRegimeRejectsPerRoundFields(t *testing.T) {
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	ab, _ := g.AddLink(a, b)
	p := graph.Path{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{ab}}
	base := Config{Graph: g, Paths: []graph.Path{p}, LinkDelays: la.Vector{1}}

	withRNG := base
	withRNG.RNG = mc.RNG(1, 0)
	if _, err := NewWorld(withRNG); err == nil {
		t.Error("regime with an RNG accepted")
	}
	withPlan := base
	withPlan.Plan = &AttackPlan{ExtraDelay: la.Vector{0}}
	if _, err := NewWorld(withPlan); err == nil {
		t.Error("regime with an attack plan accepted")
	}
	// Jittery regimes are fine without an RNG — it arrives per round.
	jittery := base
	jittery.Jitter = 1
	if _, err := NewWorld(jittery); err != nil {
		t.Errorf("jittery regime rejected: %v", err)
	}
}

// TestWorldSwapInvalidatesPathIndex is the regression test for the
// mid-run swap contract: the memoized path→link attribution index must
// be rebuilt on Swap. The pre-swap regime routes its path over link ID
// 1 (of 2); the post-swap regime is a different graph where the same
// path position crosses link IDs {0, 1} of 3 with very different
// delays. A stale index would attribute the post-swap round's delay
// mass to the old IDs — here that is detectable as mass missing from
// link 2's total and a wrong vector length.
func TestWorldSwapInvalidatesPathIndex(t *testing.T) {
	// Regime A: a–b–c line, path crosses links {0, 1}, delays {5, 9}.
	w, _ := lineWorld(t, la.Vector{5, 9})
	_, perLink, err := w.RoundAttributed(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(perLink) != 2 || perLink[0] != 5 || perLink[1] != 9 {
		t.Fatalf("pre-swap attribution %v, want [5 9]", perLink)
	}

	// Regime B: a different 4-node graph. The measurement path now
	// crosses link IDs 2 then 0 — deliberately permuted against regime
	// A's {0, 1} so stale-index attribution would land on wrong links.
	g := graph.New()
	a, b, c, d := g.AddNode("a"), g.AddNode("b"), g.AddNode("c"), g.AddNode("d")
	cd, _ := g.AddLink(c, d) // link 0
	bc, _ := g.AddLink(b, c) // link 1
	ab, _ := g.AddLink(a, b) // link 2
	_ = bc
	path := graph.Path{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{ab}}
	long := graph.Path{Nodes: []graph.NodeID{c, d}, Links: []graph.LinkID{cd}}
	if err := w.Swap(Config{
		Graph:      g,
		Paths:      []graph.Path{path, long},
		LinkDelays: la.Vector{100, 7, 11},
	}); err != nil {
		t.Fatal(err)
	}
	if w.Epoch() != 1 {
		t.Fatalf("epoch %d after one swap", w.Epoch())
	}
	if got := w.PathLinks(0); len(got) != 1 || got[0] != ab {
		t.Fatalf("memoized index for path 0 = %v, want [%d]: stale after swap", got, ab)
	}

	_, perLink, err = w.RoundAttributed(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(perLink) != 3 {
		t.Fatalf("post-swap attribution has %d links, want 3", len(perLink))
	}
	// Path 0 crossed only link ab (ID 2, delay 11); path 1 only cd (ID
	// 0, delay 100). A stale regime-A index (links {0, 1}) would have
	// dumped path 0's 11 ms onto link 0 instead.
	if perLink[ab] != 11 || perLink[cd] != 100 || perLink[bc] != 0 {
		t.Fatalf("post-swap attribution %v, want 11 on link %d, 100 on link %d, 0 on link %d",
			perLink, ab, cd, bc)
	}
}

// TestWorldRejectsStalePlan pins that an attack plan compiled against a
// pre-swap epoch cannot silently run against the new regime: the plan's
// length (and attacker-free-path structure) is validated per round.
func TestWorldRejectsStalePlan(t *testing.T) {
	w, g := lineWorld(t, la.Vector{2, 2})
	b, _ := g.NodeByName("b")
	plan := &AttackPlan{
		Attackers:  map[graph.NodeID]bool{b: true},
		ExtraDelay: la.Vector{50},
	}
	if _, err := w.Round(nil, plan); err != nil {
		t.Fatalf("plan valid for current regime rejected: %v", err)
	}

	// Swap to a regime with two paths; the 1-entry plan is now stale.
	p := w.Paths()[0]
	rev := graph.Path{
		Nodes: []graph.NodeID{p.Nodes[2], p.Nodes[1], p.Nodes[0]},
		Links: []graph.LinkID{p.Links[1], p.Links[0]},
	}
	if err := w.Swap(Config{Graph: g, Paths: []graph.Path{p, rev}, LinkDelays: la.Vector{2, 2}}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Round(nil, plan); err == nil {
		t.Fatal("stale 1-entry plan accepted against a 2-path regime")
	}
}

// TestWorldAttributionConserves checks that, with an adversarial hold
// in play, per-link attribution still accounts for exactly the measured
// end-to-end delay (the held hop's dwell absorbs the hold).
func TestWorldAttributionConserves(t *testing.T) {
	w, g := lineWorld(t, la.Vector{2, 3})
	b, _ := g.NodeByName("b")
	plan := &AttackPlan{
		Attackers:  map[graph.NodeID]bool{b: true},
		ExtraDelay: la.Vector{40},
	}
	y, perLink, err := w.RoundAttributed(nil, plan)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range perLink {
		total += v
	}
	if math.Abs(total-y[0]) > 1e-9 {
		t.Fatalf("attributed %g ms, measured %g ms", total, y[0])
	}
	if y[0] != 45 {
		t.Fatalf("held round measured %g, want 45", y[0])
	}
}

// TestWorldOnSwapHook pins the epoch-plumbing contract: the hook fires
// exactly once per successful swap with the post-increment epoch, never
// on a failed swap, and a nil re-registration clears it.
func TestWorldOnSwapHook(t *testing.T) {
	w, g := lineWorld(t, la.Vector{2, 3})
	var fired []int
	w.OnSwap(func(epoch int) { fired = append(fired, epoch) })

	good := Config{Graph: g, Paths: w.Paths(), LinkDelays: la.Vector{5, 6}}
	if err := w.Swap(good); err != nil {
		t.Fatal(err)
	}
	if err := w.Swap(good); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("hook fired with %v, want [1 2]", fired)
	}

	// A rejected regime must not fire the hook or advance the epoch.
	bad := good
	bad.RNG = mc.RNG(1, 0)
	if err := w.Swap(bad); err == nil {
		t.Fatal("regime carrying an RNG accepted")
	}
	if len(fired) != 2 || w.Epoch() != 2 {
		t.Fatalf("failed swap leaked: fired=%v epoch=%d", fired, w.Epoch())
	}

	w.OnSwap(nil)
	if err := w.Swap(good); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 {
		t.Fatalf("cleared hook still fired: %v", fired)
	}
}
