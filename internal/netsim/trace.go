package netsim

import (
	"fmt"
	"strings"

	"repro/internal/graph"
	"repro/internal/la"
)

// HopRecord is one hop of a traced probe: the probe left FromNode at
// Depart, crossed Link, and reached ToNode at Arrive (virtual ms). Held
// marks the hop where an adversary injected its extra delay.
type HopRecord struct {
	FromNode graph.NodeID
	ToNode   graph.NodeID
	Link     graph.LinkID
	Depart   float64
	Arrive   float64
	Held     bool
}

// ProbeTrace is the full record of one probe's journey.
type ProbeTrace struct {
	PathIndex int
	ProbeSeq  int
	Hops      []HopRecord
	// EndToEnd is the measured delay (last arrival − first departure).
	EndToEnd float64
}

// Format renders the trace with node names for debugging and forensic
// output ("which hop ate 2000 ms?").
func (tr ProbeTrace) Format(g *graph.Graph) string {
	var b strings.Builder
	fmt.Fprintf(&b, "path %d probe %d: %.2f ms\n", tr.PathIndex, tr.ProbeSeq, tr.EndToEnd)
	for _, h := range tr.Hops {
		from, _ := g.NodeName(h.FromNode)
		to, _ := g.NodeName(h.ToNode)
		mark := ""
		if h.Held {
			mark = "  [HELD]"
		}
		fmt.Fprintf(&b, "  %s→%s link %d: %.2f→%.2f (%.2f ms)%s\n",
			from, to, h.Link+1, h.Depart, h.Arrive, h.Arrive-h.Depart, mark)
	}
	return b.String()
}

// RunDelayTraced is RunDelay with per-probe hop traces: it returns the
// per-path mean measurements plus one ProbeTrace per probe, in launch
// order. Traces let tests and forensics attribute every millisecond of
// an end-to-end measurement to a specific hop — including exactly where
// an adversary held the probe.
func RunDelayTraced(cfg Config) (la.Vector, []ProbeTrace, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	eng := &engine{}
	probes := cfg.probes()
	sums := make(la.Vector, len(cfg.Paths))
	traces := make([]ProbeTrace, 0, len(cfg.Paths)*probes)

	for pi := range cfg.Paths {
		for k := 0; k < probes; k++ {
			tr := &ProbeTrace{PathIndex: pi, ProbeSeq: k}
			traces = append(traces, ProbeTrace{})
			slot := len(traces) - 1
			launchProbeTraced(eng, &cfg, pi, tr, func(rtt float64) {
				tr.EndToEnd = rtt
				traces[slot] = *tr
				sums[pi] += rtt
			})
		}
	}
	eng.run()
	for i := range sums {
		sums[i] /= float64(probes)
	}
	return sums, traces, nil
}

// launchProbeTraced mirrors launchProbe but records each hop.
func launchProbeTraced(eng *engine, cfg *Config, pi int, tr *ProbeTrace, done func(rtt float64)) {
	p := cfg.Paths[pi]
	start := eng.now
	extra := 0.0
	attackerHit := false
	if cfg.Plan != nil {
		extra = cfg.Plan.ExtraDelay[pi]
	}
	var hop func(h int)
	hop = func(h int) {
		if h == len(p.Links) {
			if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[p.Nodes[h]] && extra > 0 {
				attackerHit = true
				if n := len(tr.Hops); n > 0 {
					tr.Hops[n-1].Held = true
				}
				eng.schedule(extra, func() {
					if n := len(tr.Hops); n > 0 {
						tr.Hops[n-1].Arrive = eng.now
					}
					done(eng.now - start)
				})
				return
			}
			done(eng.now - start)
			return
		}
		delay := cfg.LinkDelays[p.Links[h]]
		if cfg.Jitter > 0 {
			delay += cfg.RNG.NormFloat64() * cfg.Jitter
			if delay < 0 {
				delay = 0
			}
		}
		held := false
		if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[p.Nodes[h]] && extra > 0 {
			attackerHit = true
			held = true
			delay += extra
		}
		depart := eng.now
		rec := HopRecord{
			FromNode: p.Nodes[h],
			ToNode:   p.Nodes[h+1],
			Link:     p.Links[h],
			Depart:   depart,
			Held:     held,
		}
		eng.schedule(delay, func() {
			rec.Arrive = eng.now
			tr.Hops = append(tr.Hops, rec)
			hop(h + 1)
		})
	}
	eng.schedule(0, func() { hop(0) })
}
