package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/metrics"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// fig1Setup builds the Fig. 1 system plus a routine delay draw.
func fig1Setup(t *testing.T, seed int64) (*topo.Fig1Topology, []graph.Path, la.Vector) {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != 10 {
		t.Fatalf("SelectPaths rank=%d err=%v", rank, err)
	}
	x := RoutineDelays(f.G, rand.New(rand.NewSource(seed)))
	return f, paths, x
}

func TestRunDelayMatchesModelExactly(t *testing.T) {
	// Zero jitter, no attack: simulated measurements equal R·x*.
	f, paths, x := fig1Setup(t, 1)
	got, err := RunDelay(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if err != nil {
		t.Fatalf("RunDelay: %v", err)
	}
	r := tomo.RoutingMatrix(f.G, paths)
	want, err := r.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-9) {
		t.Errorf("simulated y = %v, model y = %v", got, want)
	}
}

func TestRunDelayWithAttackMatchesModel(t *testing.T) {
	// Zero jitter, attack plan: simulated measurements equal R·x* + m.
	f, paths, x := fig1Setup(t, 2)
	m := make(la.Vector, len(paths))
	attackers := map[graph.NodeID]bool{f.B: true, f.C: true}
	for i, p := range paths {
		if p.HasAnyNode(attackers) {
			m[i] = 100 + float64(i)
		}
	}
	got, err := RunDelay(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		Plan: &AttackPlan{Attackers: attackers, ExtraDelay: m},
	})
	if err != nil {
		t.Fatalf("RunDelay: %v", err)
	}
	r := tomo.RoutingMatrix(f.G, paths)
	y, _ := r.MulVec(x)
	want, _ := y.Add(m)
	if !got.Equal(want, 1e-9) {
		t.Errorf("simulated y' diverges from y + m")
	}
}

func TestRunDelayAttackOnlyOncePerPath(t *testing.T) {
	// A path crossing BOTH attackers must still receive the extra delay
	// exactly once.
	f, paths, x := fig1Setup(t, 3)
	attackers := map[graph.NodeID]bool{f.B: true, f.C: true}
	both := -1
	for i, p := range paths {
		if p.HasNode(f.B) && p.HasNode(f.C) {
			both = i
			break
		}
	}
	if both < 0 {
		t.Fatal("no path visits both B and C")
	}
	m := make(la.Vector, len(paths))
	m[both] = 500
	got, err := RunDelay(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		Plan: &AttackPlan{Attackers: attackers, ExtraDelay: m},
	})
	if err != nil {
		t.Fatal(err)
	}
	var base float64
	for _, l := range paths[both].Links {
		base += x[l]
	}
	if math.Abs(got[both]-(base+500)) > 1e-9 {
		t.Errorf("path %d delay = %g, want %g (+500 exactly once)", both, got[both], base+500)
	}
}

func TestRunDelayDestinationAttacker(t *testing.T) {
	// Attack applied when the only attacker is the destination monitor.
	f, paths, x := fig1Setup(t, 4)
	// Find a path ending at M1 that avoids B and C internally…
	// M3→D→M2 ends at M2; make M2 the attacker.
	attackers := map[graph.NodeID]bool{f.M2: true}
	idx := -1
	for i, p := range paths {
		if p.HasNode(f.M2) && !p.HasNode(f.B) && !p.HasNode(f.C) && p.Nodes[len(p.Nodes)-1] == f.M2 {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Skip("no path terminating at M2 avoiding B,C in this selection")
	}
	m := make(la.Vector, len(paths))
	m[idx] = 321
	got, err := RunDelay(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		Plan: &AttackPlan{Attackers: attackers, ExtraDelay: m},
	})
	if err != nil {
		t.Fatal(err)
	}
	var base float64
	for _, l := range paths[idx].Links {
		base += x[l]
	}
	if math.Abs(got[idx]-(base+321)) > 1e-9 {
		t.Errorf("delay = %g, want %g", got[idx], base+321)
	}
}

func TestRunDelayJitterAveragesOut(t *testing.T) {
	// With many probes per path, the mean tracks the model closely.
	f, paths, x := fig1Setup(t, 5)
	got, err := RunDelay(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		Jitter: 2.0, ProbesPerPath: 400, RNG: rand.New(rand.NewSource(6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := tomo.RoutingMatrix(f.G, paths)
	want, _ := r.MulVec(x)
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1.5 {
			t.Errorf("path %d mean %g too far from %g", i, got[i], want[i])
		}
	}
}

func TestRunDelayDeterministic(t *testing.T) {
	f, paths, x := fig1Setup(t, 7)
	run := func() la.Vector {
		y, err := RunDelay(Config{
			Graph: f.G, Paths: paths, LinkDelays: x,
			Jitter: 3, ProbesPerPath: 5, RNG: rand.New(rand.NewSource(99)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	if !run().Equal(run(), 0) {
		t.Error("equal seeds produced different measurements")
	}
}

func TestConfigValidation(t *testing.T) {
	f, paths, x := fig1Setup(t, 1)
	base := Config{Graph: f.G, Paths: paths, LinkDelays: x}
	tests := []struct {
		name string
		mut  func(c *Config)
	}{
		{"nil graph", func(c *Config) { c.Graph = nil }},
		{"no paths", func(c *Config) { c.Paths = nil }},
		{"short delays", func(c *Config) { c.LinkDelays = la.Vector{1} }},
		{"negative delay", func(c *Config) { d := x.Clone(); d[0] = -1; c.LinkDelays = d }},
		{"negative jitter", func(c *Config) { c.Jitter = -1 }},
		{"jitter without RNG", func(c *Config) { c.Jitter = 1 }},
		{"plan length", func(c *Config) {
			c.Plan = &AttackPlan{Attackers: map[graph.NodeID]bool{f.B: true}, ExtraDelay: la.Vector{1}}
		}},
		{"plan negative", func(c *Config) {
			m := make(la.Vector, len(paths))
			m[0] = -1
			c.Plan = &AttackPlan{Attackers: map[graph.NodeID]bool{f.B: true}, ExtraDelay: m}
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			c := base
			tt.mut(&c)
			if _, err := RunDelay(c); !errors.Is(err, ErrBadConfig) {
				t.Errorf("err = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestPlanRejectsAttackerFreePath(t *testing.T) {
	// Constraint 1 is enforced operationally: manipulating a path with
	// no attacker on it must be rejected.
	f, paths, x := fig1Setup(t, 1)
	attackers := map[graph.NodeID]bool{f.B: true, f.C: true}
	free := -1
	for i, p := range paths {
		if !p.HasAnyNode(attackers) {
			free = i
			break
		}
	}
	if free < 0 {
		t.Fatal("no attacker-free path")
	}
	m := make(la.Vector, len(paths))
	m[free] = 10
	_, err := RunDelay(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		Plan: &AttackPlan{Attackers: attackers, ExtraDelay: m},
	})
	if !errors.Is(err, ErrBadConfig) {
		t.Errorf("err = %v, want ErrBadConfig", err)
	}
}

func TestRunLossMatchesExpectation(t *testing.T) {
	// High probe count: measured delivery ratio approaches the product
	// of link delivery probabilities.
	f, paths, x := fig1Setup(t, 8)
	probs := make(la.Vector, f.G.NumLinks())
	for i := range probs {
		probs[i] = 0.9 + 0.01*float64(i%10)
	}
	cfg := Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		ProbesPerPath: 4000, RNG: rand.New(rand.NewSource(9)),
	}
	got, err := RunLoss(cfg, probs)
	if err != nil {
		t.Fatalf("RunLoss: %v", err)
	}
	for i, p := range paths {
		want := 1.0
		for _, l := range p.Links {
			want *= probs[l]
		}
		if math.Abs(got[i]-want) > 0.04 {
			t.Errorf("path %d ratio %g, want ≈ %g", i, got[i], want)
		}
	}
}

func TestRunLossWithAttack(t *testing.T) {
	// The attacked path's delivery ratio drops by ≈ exp(−m).
	f, paths, x := fig1Setup(t, 10)
	attackers := map[graph.NodeID]bool{f.B: true}
	idx := -1
	for i, p := range paths {
		if p.HasNode(f.B) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no path through B")
	}
	mAdd, err := metrics.Loss.ToAdditive(0.5) // halve delivery
	if err != nil {
		t.Fatal(err)
	}
	m := make(la.Vector, len(paths))
	m[idx] = mAdd
	probs := make(la.Vector, f.G.NumLinks())
	for i := range probs {
		probs[i] = 1
	}
	cfg := Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		ProbesPerPath: 4000, RNG: rand.New(rand.NewSource(11)),
		Plan: &AttackPlan{Attackers: attackers, ExtraDelay: m},
	}
	got, err := RunLoss(cfg, probs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got[idx]-0.5) > 0.05 {
		t.Errorf("attacked path ratio = %g, want ≈ 0.5", got[idx])
	}
	for i := range paths {
		if i != idx && got[i] != 1 {
			t.Errorf("untouched path %d ratio = %g, want 1", i, got[i])
		}
	}
}

func TestRunLossValidation(t *testing.T) {
	f, paths, x := fig1Setup(t, 1)
	cfg := Config{Graph: f.G, Paths: paths, LinkDelays: x, RNG: rand.New(rand.NewSource(1))}
	if _, err := RunLoss(cfg, la.Vector{0.5}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short probs: err = %v", err)
	}
	bad := make(la.Vector, f.G.NumLinks())
	if _, err := RunLoss(cfg, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero prob: err = %v", err)
	}
	cfg.RNG = nil
	good := make(la.Vector, f.G.NumLinks())
	for i := range good {
		good[i] = 1
	}
	if _, err := RunLoss(cfg, good); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil RNG: err = %v", err)
	}
}

func TestRoutineDelaysRange(t *testing.T) {
	f := topo.Fig1()
	f2 := func(seed int64) bool {
		x := RoutineDelays(f.G, rand.New(rand.NewSource(seed)))
		if len(x) != f.G.NumLinks() {
			return false
		}
		for _, v := range x {
			if v < 1 || v > 20 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f2, nil); err != nil {
		t.Error(err)
	}
}

func TestEngineOrdering(t *testing.T) {
	// Events fire in time order with deterministic tie-breaking.
	eng := &engine{}
	var got []int
	eng.schedule(5, func() { got = append(got, 3) })
	eng.schedule(1, func() { got = append(got, 1) })
	eng.schedule(1, func() { got = append(got, 2) })
	eng.schedule(-4, func() { got = append(got, 0) }) // clamped to now
	eng.run()
	want := []int{0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	eng := &engine{}
	var times []float64
	eng.schedule(1, func() {
		times = append(times, eng.now)
		eng.schedule(2, func() { times = append(times, eng.now) })
	})
	eng.run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Errorf("times = %v, want [1 3]", times)
	}
}

// newSeededRNG is a tiny helper for trace tests.
func newSeededRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
