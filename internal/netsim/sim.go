package netsim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/la"
)

// ErrBadConfig is returned for malformed simulator configuration.
var ErrBadConfig = errors.New("netsim: bad config")

// AttackPlan describes adversarial behaviour during a measurement round.
// The first attacker node a probe meets on path i holds it for
// ExtraDelay[i] (delay mode) or drops it with probability
// 1 − exp(−ExtraDelay[i]) (loss mode, matching the additive −log
// domain). Paths without an attacker are untouched, which enforces
// Constraint 1 operationally rather than by assumption.
type AttackPlan struct {
	// Attackers is V_m.
	Attackers map[graph.NodeID]bool
	// ExtraDelay is the manipulation vector m, one entry per path.
	ExtraDelay la.Vector
}

// Config parameterizes a simulation round.
type Config struct {
	// Graph is the topology.
	Graph *graph.Graph
	// Paths are the measurement paths probes follow.
	Paths []graph.Path
	// LinkDelays is the true per-link delay x* in milliseconds.
	LinkDelays la.Vector
	// Jitter is the standard deviation of zero-mean Gaussian per-hop
	// delay noise (ms). Zero disables noise.
	Jitter float64
	// ProbesPerPath is how many probes each path sends; the measurement
	// is their mean. Zero means 1.
	ProbesPerPath int
	// RNG drives jitter and loss draws. Required when Jitter > 0 or
	// loss mode is used.
	RNG *rand.Rand
	// Plan is the optional attack. Nil means no attack.
	Plan *AttackPlan
}

func (c *Config) validate() error {
	if c.Graph == nil {
		return fmt.Errorf("netsim: nil graph: %w", ErrBadConfig)
	}
	if len(c.Paths) == 0 {
		return fmt.Errorf("netsim: no paths: %w", ErrBadConfig)
	}
	if len(c.LinkDelays) != c.Graph.NumLinks() {
		return fmt.Errorf("netsim: %d link delays for %d links: %w",
			len(c.LinkDelays), c.Graph.NumLinks(), ErrBadConfig)
	}
	for i, d := range c.LinkDelays {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return fmt.Errorf("netsim: link delay[%d] = %g: %w", i, d, ErrBadConfig)
		}
	}
	for i, p := range c.Paths {
		if err := p.Validate(c.Graph); err != nil {
			return fmt.Errorf("netsim: path %d: %v: %w", i, err, ErrBadConfig)
		}
	}
	if c.Jitter < 0 {
		return fmt.Errorf("netsim: negative jitter: %w", ErrBadConfig)
	}
	if c.Jitter > 0 && c.RNG == nil {
		return fmt.Errorf("netsim: jitter needs an RNG: %w", ErrBadConfig)
	}
	if c.Plan != nil {
		if len(c.Plan.ExtraDelay) != len(c.Paths) {
			return fmt.Errorf("netsim: plan has %d entries for %d paths: %w",
				len(c.Plan.ExtraDelay), len(c.Paths), ErrBadConfig)
		}
		for i, m := range c.Plan.ExtraDelay {
			if m < 0 || math.IsNaN(m) {
				return fmt.Errorf("netsim: plan delay[%d] = %g: %w", i, m, ErrBadConfig)
			}
			if m > 0 && !c.Paths[i].HasAnyNode(c.Plan.Attackers) {
				return fmt.Errorf("netsim: plan manipulates attacker-free path %d: %w", i, ErrBadConfig)
			}
		}
	}
	return nil
}

func (c *Config) probes() int {
	if c.ProbesPerPath <= 0 {
		return 1
	}
	return c.ProbesPerPath
}

// RunDelay simulates one measurement round in delay mode and returns the
// per-path measured delays (mean over ProbesPerPath probes).
func RunDelay(cfg Config) (la.Vector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	eng := &engine{}
	sums := make(la.Vector, len(cfg.Paths))
	probes := cfg.probes()

	for pi := range cfg.Paths {
		for k := 0; k < probes; k++ {
			launchProbe(eng, &cfg, pi, func(rtt float64) {
				sums[pi] += rtt
			})
		}
	}
	eng.run()
	for i := range sums {
		sums[i] /= float64(probes)
	}
	return sums, nil
}

// launchProbe schedules the hop-by-hop traversal of one probe along path
// pi, invoking done with the end-to-end delay on arrival.
func launchProbe(eng *engine, cfg *Config, pi int, done func(rtt float64)) {
	p := cfg.Paths[pi]
	start := eng.now
	extra := 0.0
	attackerHit := false
	if cfg.Plan != nil {
		extra = cfg.Plan.ExtraDelay[pi]
	}
	var hop func(h int)
	hop = func(h int) {
		if h == len(p.Links) {
			// The destination monitor can itself be the first (only)
			// attacker on the path; holding the probe before reporting
			// still delays the measurement.
			if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[p.Nodes[h]] && extra > 0 {
				attackerHit = true
				eng.schedule(extra, func() { done(eng.now - start) })
				return
			}
			done(eng.now - start)
			return
		}
		delay := cfg.LinkDelays[p.Links[h]]
		if cfg.Jitter > 0 {
			delay += cfg.RNG.NormFloat64() * cfg.Jitter
			if delay < 0 {
				delay = 0
			}
		}
		// The first attacker node on the path holds the probe once.
		// p.Nodes[h] is the node the probe is at before crossing link h.
		if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[p.Nodes[h]] && extra > 0 {
			attackerHit = true
			delay += extra
		}
		eng.schedule(delay, func() { hop(h + 1) })
	}
	eng.schedule(0, func() { hop(0) })
}

// RunLoss simulates a measurement round in loss mode: deliveryProbs[l]
// is the per-link delivery probability, probesPerPath probes are sent
// per path, and the returned vector holds measured per-path delivery
// ratios. An attack plan converts each m_i to an extra drop probability
// 1 − exp(−m_i), applied once at the first attacker node.
func RunLoss(cfg Config, deliveryProbs la.Vector) (la.Vector, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.RNG == nil {
		return nil, fmt.Errorf("netsim: loss mode needs an RNG: %w", ErrBadConfig)
	}
	if len(deliveryProbs) != cfg.Graph.NumLinks() {
		return nil, fmt.Errorf("netsim: %d delivery probs for %d links: %w",
			len(deliveryProbs), cfg.Graph.NumLinks(), ErrBadConfig)
	}
	for i, p := range deliveryProbs {
		if p <= 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("netsim: delivery prob[%d] = %g: %w", i, p, ErrBadConfig)
		}
	}
	probes := cfg.probes()
	out := make(la.Vector, len(cfg.Paths))
	for pi, path := range cfg.Paths {
		dropProb := 0.0
		if cfg.Plan != nil && cfg.Plan.ExtraDelay[pi] > 0 {
			dropProb = 1 - math.Exp(-cfg.Plan.ExtraDelay[pi])
		}
		delivered := 0
		for k := 0; k < probes; k++ {
			ok := true
			attackerHit := false
			for h := range path.Links {
				if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[path.Nodes[h]] && dropProb > 0 {
					attackerHit = true
					if cfg.RNG.Float64() < dropProb {
						ok = false
						break
					}
				}
				if cfg.RNG.Float64() >= deliveryProbs[path.Links[h]] {
					ok = false
					break
				}
			}
			// Destination-monitor attacker drops the report itself.
			if ok && !attackerHit && cfg.Plan != nil && dropProb > 0 &&
				cfg.Plan.Attackers[path.Nodes[len(path.Nodes)-1]] {
				if cfg.RNG.Float64() < dropProb {
					ok = false
				}
			}
			if ok {
				delivered++
			}
		}
		out[pi] = float64(delivered) / float64(probes)
	}
	return out, nil
}

// RoutineDelays draws the paper's routine traffic: per-link delays
// uniform on [1, 20] ms (Section V-A).
func RoutineDelays(g *graph.Graph, rng *rand.Rand) la.Vector {
	x := make(la.Vector, g.NumLinks())
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	return x
}
