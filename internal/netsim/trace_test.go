package netsim

import (
	"math"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
)

func TestRunDelayTracedMatchesRunDelay(t *testing.T) {
	f, paths, x := fig1Setup(t, 11)
	plain, err := RunDelay(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if err != nil {
		t.Fatal(err)
	}
	traced, traces, err := RunDelayTraced(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if err != nil {
		t.Fatal(err)
	}
	if !traced.Equal(plain, 1e-9) {
		t.Error("traced measurements diverge from plain")
	}
	if len(traces) != len(paths) {
		t.Fatalf("traces = %d, want %d", len(traces), len(paths))
	}
}

func TestTraceHopAccounting(t *testing.T) {
	// Each trace's hop delays must sum to the end-to-end measurement and
	// each hop delay must equal the link's true delay (no jitter).
	f, paths, x := fig1Setup(t, 12)
	_, traces, err := RunDelayTraced(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range traces {
		if len(tr.Hops) != paths[tr.PathIndex].Len() {
			t.Fatalf("trace %d: %d hops for %d links", tr.PathIndex, len(tr.Hops), paths[tr.PathIndex].Len())
		}
		var sum float64
		for _, h := range tr.Hops {
			d := h.Arrive - h.Depart
			sum += d
			if math.Abs(d-x[h.Link]) > 1e-9 {
				t.Errorf("trace %d link %d: hop delay %g ≠ true %g", tr.PathIndex, h.Link, d, x[h.Link])
			}
		}
		if math.Abs(sum-tr.EndToEnd) > 1e-9 {
			t.Errorf("trace %d: hops sum %g ≠ end-to-end %g", tr.PathIndex, sum, tr.EndToEnd)
		}
	}
}

func TestTraceMarksHeldHop(t *testing.T) {
	f, paths, x := fig1Setup(t, 13)
	attackers := map[graph.NodeID]bool{f.B: true}
	m := make(la.Vector, len(paths))
	victim := -1
	for i, p := range paths {
		if p.HasNode(f.B) {
			victim = i
			m[i] = 777
			break
		}
	}
	if victim < 0 {
		t.Fatal("no path through B")
	}
	_, traces, err := RunDelayTraced(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		Plan: &AttackPlan{Attackers: attackers, ExtraDelay: m},
	})
	if err != nil {
		t.Fatal(err)
	}
	var held int
	for _, tr := range traces {
		for _, h := range tr.Hops {
			if h.Held {
				held++
				if tr.PathIndex != victim {
					t.Errorf("held hop on unattacked path %d", tr.PathIndex)
				}
				// The held hop's delay includes the injected 777 ms.
				if h.Arrive-h.Depart < 777 {
					t.Errorf("held hop delay %g < injected 777", h.Arrive-h.Depart)
				}
			}
		}
		if tr.PathIndex == victim {
			var sum float64
			for _, h := range tr.Hops {
				sum += h.Arrive - h.Depart
			}
			if math.Abs(sum-tr.EndToEnd) > 1e-9 {
				t.Errorf("attacked trace: hops %g ≠ end-to-end %g", sum, tr.EndToEnd)
			}
		}
	}
	if held != 1 {
		t.Errorf("held hops = %d, want exactly 1", held)
	}
}

func TestTraceFormat(t *testing.T) {
	f, paths, x := fig1Setup(t, 14)
	_, traces, err := RunDelayTraced(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if err != nil {
		t.Fatal(err)
	}
	s := traces[0].Format(f.G)
	if !strings.Contains(s, "→") || !strings.Contains(s, "ms") {
		t.Errorf("Format output %q malformed", s)
	}
}

func TestTracedDeterministicWithJitter(t *testing.T) {
	f, paths, x := fig1Setup(t, 15)
	run := func() la.Vector {
		y, _, err := RunDelayTraced(Config{
			Graph: f.G, Paths: paths, LinkDelays: x,
			Jitter: 2, ProbesPerPath: 3, RNG: newSeededRNG(5),
		})
		if err != nil {
			t.Fatal(err)
		}
		return y
	}
	if !run().Equal(run(), 0) {
		t.Error("traced run not deterministic")
	}
}
