package netsim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
)

func TestRunDelayWithLossPerfectDelivery(t *testing.T) {
	// Delivery 1 everywhere, no jitter: identical to RunDelay, every
	// probe delivered.
	f, paths, x := fig1Setup(t, 31)
	probs := make(la.Vector, f.G.NumLinks())
	for i := range probs {
		probs[i] = 1
	}
	y, delivered, err := RunDelayWithLoss(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		ProbesPerPath: 3, RNG: rand.New(rand.NewSource(1)),
	}, probs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := RunDelay(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if !y.Equal(want, 1e-9) {
		t.Error("lossless run diverges from RunDelay")
	}
	for i, k := range delivered {
		if k != 3 {
			t.Errorf("path %d delivered %d of 3", i, k)
		}
	}
}

func TestRunDelayWithLossWeightedEstimation(t *testing.T) {
	// Lossy links starve some paths of probes; the weighted estimator
	// with delivered-count weights still recovers the link delays from
	// whatever arrived, as long as the weighted system stays
	// identifiable.
	f, paths, x := fig1Setup(t, 32)
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	probs := make(la.Vector, f.G.NumLinks())
	for i := range probs {
		probs[i] = 0.95
	}
	probs[0] = 0.5 // one flaky link
	y, delivered, err := RunDelayWithLoss(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		ProbesPerPath: 200, RNG: rand.New(rand.NewSource(2)),
	}, probs)
	if err != nil {
		t.Fatal(err)
	}
	xhat, err := sys.EstimateWeighted(y, DeliveredWeights(delivered))
	if err != nil {
		t.Fatal(err)
	}
	// No jitter: delivered probes carry exact delays, so the estimate is
	// exact regardless of loss.
	if !xhat.Equal(la.Vector(x), 1e-6) {
		t.Errorf("weighted estimate diverges: %v vs %v", xhat, x)
	}
}

func TestRunDelayWithLossStarvedPathExcluded(t *testing.T) {
	// With 1 probe per path and a terrible link, some paths deliver
	// nothing; their measurement must be 0 with count 0, and the caller
	// can still estimate when enough other paths survive.
	f, paths, x := fig1Setup(t, 33)
	probs := make(la.Vector, f.G.NumLinks())
	for i := range probs {
		probs[i] = 0.995
	}
	probs[f.PaperLink[10]] = 0.01 // nearly dead link
	y, delivered, err := RunDelayWithLoss(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		ProbesPerPath: 1, RNG: rand.New(rand.NewSource(3)),
	}, probs)
	if err != nil {
		t.Fatal(err)
	}
	starved := 0
	for i, k := range delivered {
		if k == 0 {
			starved++
			if y[i] != 0 {
				t.Errorf("starved path %d has y = %g", i, y[i])
			}
		}
	}
	if starved == 0 {
		t.Fatal("no path starved; test setup ineffective")
	}
}

func TestRunDelayWithLossAttackOnDeliveredProbes(t *testing.T) {
	// The attacker's hold shows up in the delays of delivered probes on
	// its paths.
	f, paths, x := fig1Setup(t, 34)
	probs := make(la.Vector, f.G.NumLinks())
	for i := range probs {
		probs[i] = 1
	}
	m := make(la.Vector, len(paths))
	idx := -1
	for i, p := range paths {
		if p.HasNode(f.B) {
			idx = i
			break
		}
	}
	m[idx] = 600
	y, _, err := RunDelayWithLoss(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
		ProbesPerPath: 2, RNG: rand.New(rand.NewSource(4)),
		Plan: &AttackPlan{Attackers: map[graph.NodeID]bool{f.B: true}, ExtraDelay: m},
	}, probs)
	if err != nil {
		t.Fatal(err)
	}
	var base float64
	for _, l := range paths[idx].Links {
		base += x[l]
	}
	if math.Abs(y[idx]-(base+600)) > 1e-9 {
		t.Errorf("attacked path delay %g, want %g", y[idx], base+600)
	}
}

func TestRunDelayWithLossValidation(t *testing.T) {
	f, paths, x := fig1Setup(t, 35)
	goodProbs := make(la.Vector, f.G.NumLinks())
	for i := range goodProbs {
		goodProbs[i] = 1
	}
	if _, _, err := RunDelayWithLoss(Config{
		Graph: f.G, Paths: paths, LinkDelays: x,
	}, goodProbs); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil RNG: err = %v", err)
	}
	if _, _, err := RunDelayWithLoss(Config{
		Graph: f.G, Paths: paths, LinkDelays: x, RNG: rand.New(rand.NewSource(1)),
	}, la.Vector{1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short probs: err = %v", err)
	}
	bad := goodProbs.Clone()
	bad[0] = 0
	if _, _, err := RunDelayWithLoss(Config{
		Graph: f.G, Paths: paths, LinkDelays: x, RNG: rand.New(rand.NewSource(1)),
	}, bad); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero prob: err = %v", err)
	}
}

func TestDeliveredWeights(t *testing.T) {
	w := DeliveredWeights([]int{3, 0, 7})
	if !w.Equal(la.Vector{3, 0, 7}, 0) {
		t.Errorf("weights = %v", w)
	}
}
