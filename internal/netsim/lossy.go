package netsim

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// RunDelayWithLoss simulates the realistic combination the pure modes
// abstract away: probes measure DELAY but can also be LOST. Each probe
// independently survives every hop with the link's delivery probability
// (and the attacker's extra drop, as in RunLoss); surviving probes carry
// the hop-summed delay (plus jitter and the attacker's hold, as in
// RunDelay). The per-path measurement is the mean delay over DELIVERED
// probes, and the delivered counts come back alongside so the caller can
// weight or exclude starved paths — tomo.EstimateWeighted with the
// delivered counts as weights is the intended consumer (a path with zero
// delivered probes has no measurement at all and must get weight 0).
//
// Probes are statistically independent, so this runs as a direct
// per-probe computation rather than through the event engine.
func RunDelayWithLoss(cfg Config, deliveryProbs la.Vector) (la.Vector, []int, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	if cfg.RNG == nil {
		return nil, nil, fmt.Errorf("netsim: lossy delay mode needs an RNG: %w", ErrBadConfig)
	}
	if len(deliveryProbs) != cfg.Graph.NumLinks() {
		return nil, nil, fmt.Errorf("netsim: %d delivery probs for %d links: %w",
			len(deliveryProbs), cfg.Graph.NumLinks(), ErrBadConfig)
	}
	for i, p := range deliveryProbs {
		if p <= 0 || p > 1 || math.IsNaN(p) {
			return nil, nil, fmt.Errorf("netsim: delivery prob[%d] = %g: %w", i, p, ErrBadConfig)
		}
	}
	probes := cfg.probes()
	y := make(la.Vector, len(cfg.Paths))
	delivered := make([]int, len(cfg.Paths))
	for pi, path := range cfg.Paths {
		extra := 0.0
		if cfg.Plan != nil {
			extra = cfg.Plan.ExtraDelay[pi]
		}
		for k := 0; k < probes; k++ {
			delay := 0.0
			attackerHit := false
			ok := true
			for h := range path.Links {
				if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[path.Nodes[h]] && extra > 0 {
					attackerHit = true
					delay += extra
				}
				hop := cfg.LinkDelays[path.Links[h]]
				if cfg.Jitter > 0 {
					hop += cfg.RNG.NormFloat64() * cfg.Jitter
					if hop < 0 {
						hop = 0
					}
				}
				delay += hop
				if cfg.RNG.Float64() >= deliveryProbs[path.Links[h]] {
					ok = false
					break
				}
			}
			if ok && !attackerHit && cfg.Plan != nil && extra > 0 &&
				cfg.Plan.Attackers[path.Nodes[len(path.Nodes)-1]] {
				attackerHit = true
				delay += extra
			}
			if ok {
				delivered[pi]++
				y[pi] += delay
			}
		}
		if delivered[pi] > 0 {
			y[pi] /= float64(delivered[pi])
		}
	}
	return y, delivered, nil
}

// DeliveredWeights converts per-path delivered counts into estimator
// weights: the variance of a mean over k probes scales as 1/k, so the
// weight is simply k (zero for starved paths, which excludes them).
func DeliveredWeights(delivered []int) la.Vector {
	w := make(la.Vector, len(delivered))
	for i, k := range delivered {
		w[i] = float64(k)
	}
	return w
}
