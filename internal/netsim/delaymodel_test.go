package netsim

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
)

func TestConstantDelaysMatchesRunDelay(t *testing.T) {
	f, paths, x := fig1Setup(t, 21)
	plain, err := RunDelay(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if err != nil {
		t.Fatal(err)
	}
	model, err := RunDelayModel(Config{Graph: f.G, Paths: paths, LinkDelays: x}, ConstantDelays(x))
	if err != nil {
		t.Fatal(err)
	}
	if !model.Equal(plain, 1e-9) {
		t.Error("constant model diverges from RunDelay")
	}
}

func TestNilModelFallsBack(t *testing.T) {
	f, paths, x := fig1Setup(t, 22)
	got, err := RunDelayModel(Config{Graph: f.G, Paths: paths, LinkDelays: x}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := RunDelay(Config{Graph: f.G, Paths: paths, LinkDelays: x})
	if !got.Equal(want, 0) {
		t.Error("nil model ≠ RunDelay")
	}
}

func TestDiurnalValidate(t *testing.T) {
	f, _, x := fig1Setup(t, 23)
	n := f.G.NumLinks()
	if err := (DiurnalDelays{Base: x, Amplitude: 0.5, Period: 100}).Validate(n); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := []DiurnalDelays{
		{Base: la.Vector{1}, Amplitude: 0.5, Period: 100},
		{Base: x, Amplitude: 1.0, Period: 100},
		{Base: x, Amplitude: -0.1, Period: 100},
		{Base: x, Amplitude: 0.5, Period: 0},
		{Base: x, Amplitude: 0.5, Period: 100, Phase: la.Vector{1}},
	}
	for i, m := range bad {
		if err := m.Validate(n); err == nil {
			t.Errorf("bad model %d accepted", i)
		}
	}
}

func TestDiurnalDelayAt(t *testing.T) {
	base := la.Vector{100}
	m := DiurnalDelays{Base: base, Amplitude: 0.5, Period: 4}
	// t=0 → sin 0 = 0 → 100; t=1 → sin(π/2) = 1 → 150; t=3 → −1 → 50.
	for _, tc := range []struct{ t, want float64 }{{0, 100}, {1, 150}, {3, 50}} {
		if got := m.DelayAt(0, tc.t); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("DelayAt(0, %g) = %g, want %g", tc.t, got, tc.want)
		}
	}
	withPhase := DiurnalDelays{Base: base, Amplitude: 0.5, Period: 4, Phase: la.Vector{math.Pi / 2}}
	if got := withPhase.DelayAt(0, 0); math.Abs(got-150) > 1e-9 {
		t.Errorf("phased DelayAt = %g, want 150", got)
	}
}

func TestDiurnalMeasurementsVaryAndAverageOut(t *testing.T) {
	// All probes launch at t=0, so the first hop sees the t=0 delay and
	// later hops slightly evolved values; the measurement differs from
	// the constant run but stays within the modulation envelope.
	f, paths, x := fig1Setup(t, 24)
	m := DiurnalDelays{Base: x, Amplitude: 0.3, Period: 50}
	got, err := RunDelayModel(Config{Graph: f.G, Paths: paths, LinkDelays: x}, m)
	if err != nil {
		t.Fatal(err)
	}
	r := tomo.RoutingMatrix(f.G, paths)
	base, _ := r.MulVec(x)
	different := false
	for i := range got {
		lo, hi := base[i]*0.7, base[i]*1.3
		if got[i] < lo-1e-9 || got[i] > hi+1e-9 {
			t.Errorf("path %d delay %g outside envelope [%g, %g]", i, got[i], lo, hi)
		}
		if math.Abs(got[i]-base[i]) > 1e-9 {
			different = true
		}
	}
	if !different {
		t.Error("diurnal run identical to constant run")
	}
}

func TestDiurnalWithAttackStillAddsM(t *testing.T) {
	// The adversarial hold is additive on top of whatever the model
	// yields: y'(attacked) − y(clean) = m exactly (no jitter).
	f, paths, x := fig1Setup(t, 25)
	m := DiurnalDelays{Base: x, Amplitude: 0.2, Period: 80}
	b, _ := f.G.NodeByName("B")
	plan := &AttackPlan{Attackers: map[graph.NodeID]bool{b: true}, ExtraDelay: make(la.Vector, len(paths))}
	idx := -1
	for i, p := range paths {
		if p.HasNode(b) {
			idx = i
			break
		}
	}
	if idx < 0 {
		t.Fatal("no path through B")
	}
	plan.ExtraDelay[idx] = 444
	clean, err := RunDelayModel(Config{Graph: f.G, Paths: paths, LinkDelays: x}, m)
	if err != nil {
		t.Fatal(err)
	}
	attacked, err := RunDelayModel(Config{Graph: f.G, Paths: paths, LinkDelays: x, Plan: plan}, m)
	if err != nil {
		t.Fatal(err)
	}
	diff := attacked[idx] - clean[idx]
	// The hold shifts later hops in time, so their diurnal delays move
	// a little too; the difference must be ≈ 444 within the modulation
	// the shift can cause.
	if math.Abs(diff-444) > 0.25*444 {
		t.Errorf("attacked−clean = %g, want ≈ 444", diff)
	}
	for i := range paths {
		if i != idx && math.Abs(attacked[i]-clean[i]) > 1e-9 {
			t.Errorf("untouched path %d moved by %g", i, attacked[i]-clean[i])
		}
	}
}
