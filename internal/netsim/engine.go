// Package netsim is a packet-level discrete-event simulator for probe
// measurements. It exists to validate the paper's algebraic model
// against an operational one: monitors inject probe packets that hop
// link by link through the topology, links add their true delay (plus
// optional jitter), adversarial nodes hold probes on the paths they
// control, and the resulting end-to-end measurements are compared with
// y' = R·x* + m. With zero jitter the two agree exactly; with jitter the
// simulator supplies the measurement noise that motivates the
// empirically calibrated detection threshold of Remark 4.
package netsim

import "container/heap"

// event is one scheduled action in virtual time. seq breaks ties so
// simulation order — and therefore RNG consumption — is deterministic.
type event struct {
	time float64
	seq  int
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// engine is a minimal discrete-event loop.
type engine struct {
	pq  eventHeap
	now float64
	seq int
}

// schedule enqueues fn to run `delay` time units from the engine's
// current time. Negative delays are clamped to zero (events cannot run
// in the past).
func (e *engine) schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.pq, &event{time: e.now + delay, seq: e.seq, fn: fn})
}

// run processes events in time order until the queue drains.
func (e *engine) run() {
	for e.pq.Len() > 0 {
		ev := heap.Pop(&e.pq).(*event)
		e.now = ev.time
		ev.fn()
	}
}
