package netsim

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/la"
)

// DelayModel yields a link's instantaneous base delay at virtual time t
// (ms). It lets simulations model traffic that varies over a measurement
// campaign — diurnal load swings, slow drifts — which is what makes
// fixed detection thresholds mis-calibrate in practice.
//
// Implementations must be deterministic functions of (link, t): the
// engine may evaluate them in any event order.
type DelayModel interface {
	DelayAt(link graph.LinkID, t float64) float64
}

// ConstantDelays is the trivial model: one fixed delay per link.
type ConstantDelays la.Vector

// DelayAt returns the fixed delay of the link.
func (c ConstantDelays) DelayAt(link graph.LinkID, _ float64) float64 {
	return c[link]
}

// DiurnalDelays modulates base delays sinusoidally:
//
//	delay(l, t) = Base[l] · (1 + Amplitude·sin(2πt/Period + Phase[l]))
//
// with Amplitude in [0, 1) so delays stay positive. A per-link phase
// (optional) desynchronizes links.
type DiurnalDelays struct {
	Base      la.Vector
	Amplitude float64
	Period    float64
	// Phase is an optional per-link offset (radians); nil means 0.
	Phase la.Vector
}

// Validate checks model parameters.
func (d DiurnalDelays) Validate(numLinks int) error {
	if len(d.Base) != numLinks {
		return fmt.Errorf("netsim: diurnal base has %d entries for %d links: %w", len(d.Base), numLinks, ErrBadConfig)
	}
	if d.Amplitude < 0 || d.Amplitude >= 1 {
		return fmt.Errorf("netsim: diurnal amplitude %g not in [0,1): %w", d.Amplitude, ErrBadConfig)
	}
	if d.Period <= 0 {
		return fmt.Errorf("netsim: diurnal period %g: %w", d.Period, ErrBadConfig)
	}
	if d.Phase != nil && len(d.Phase) != numLinks {
		return fmt.Errorf("netsim: diurnal phase has %d entries for %d links: %w", len(d.Phase), numLinks, ErrBadConfig)
	}
	return nil
}

// DelayAt evaluates the sinusoid.
func (d DiurnalDelays) DelayAt(link graph.LinkID, t float64) float64 {
	phase := 0.0
	if d.Phase != nil {
		phase = d.Phase[link]
	}
	return d.Base[link] * (1 + d.Amplitude*math.Sin(2*math.Pi*t/d.Period+phase))
}

// RunDelayModel simulates one measurement round with a time-varying
// delay model: each hop's delay is the model's value at the moment the
// probe leaves the node (plus jitter and any adversarial hold, exactly
// as in RunDelay). cfg.LinkDelays is ignored except for validation;
// pass the model's snapshot at t=0 when in doubt.
func RunDelayModel(cfg Config, model DelayModel) (la.Vector, error) {
	if model == nil {
		return RunDelay(cfg)
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if d, ok := model.(DiurnalDelays); ok {
		if err := d.Validate(cfg.Graph.NumLinks()); err != nil {
			return nil, err
		}
	}
	eng := &engine{}
	probes := cfg.probes()
	sums := make(la.Vector, len(cfg.Paths))
	for pi := range cfg.Paths {
		for k := 0; k < probes; k++ {
			launchProbeModel(eng, &cfg, model, pi, func(rtt float64) {
				sums[pi] += rtt
			})
		}
	}
	eng.run()
	for i := range sums {
		sums[i] /= float64(probes)
	}
	return sums, nil
}

// launchProbeModel mirrors launchProbe with model-driven hop delays.
func launchProbeModel(eng *engine, cfg *Config, model DelayModel, pi int, done func(rtt float64)) {
	p := cfg.Paths[pi]
	start := eng.now
	extra := 0.0
	attackerHit := false
	if cfg.Plan != nil {
		extra = cfg.Plan.ExtraDelay[pi]
	}
	var hop func(h int)
	hop = func(h int) {
		if h == len(p.Links) {
			if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[p.Nodes[h]] && extra > 0 {
				attackerHit = true
				eng.schedule(extra, func() { done(eng.now - start) })
				return
			}
			done(eng.now - start)
			return
		}
		delay := model.DelayAt(p.Links[h], eng.now)
		if delay < 0 {
			delay = 0
		}
		if cfg.Jitter > 0 {
			delay += cfg.RNG.NormFloat64() * cfg.Jitter
			if delay < 0 {
				delay = 0
			}
		}
		if !attackerHit && cfg.Plan != nil && cfg.Plan.Attackers[p.Nodes[h]] && extra > 0 {
			attackerHit = true
			delay += extra
		}
		eng.schedule(delay, func() { hop(h + 1) })
	}
	eng.schedule(0, func() { hop(0) })
}

// ShiftedModel offsets another model in time: DelayAt(l, t) =
// Model.DelayAt(l, t + Offset). Campaigns use it to place each
// measurement round at its wall-clock position on a diurnal curve.
type ShiftedModel struct {
	Model  DelayModel
	Offset float64
}

// DelayAt evaluates the underlying model at the shifted time.
func (s ShiftedModel) DelayAt(link graph.LinkID, t float64) float64 {
	return s.Model.DelayAt(link, t+s.Offset)
}
