package obs

import (
	"fmt"
	"math"
)

// Streaming residual analytics primitives: a deterministic, mergeable
// quantile sketch and an exponentially-weighted moving average. Both are
// clock-free — state advances only when Observe is called — so a replay
// of the same observation multiset reproduces the same quantiles
// bit-for-bit regardless of wall time, and the forensics layer can
// reconcile server-side sketches against client-side precomputed
// verdicts exactly.
//
// Neither type is safe for concurrent use; callers (the forensics
// observatory, tomoload's report builder) synchronize externally. This
// mirrors the stdlib container idiom and keeps the hot-path Observe a
// handful of arithmetic ops.

// Sketch geometry. Buckets are logarithmic with ratio sketchGamma:
// bucket i >= 1 covers (sketchMin·γ^(i-1), sketchMin·γ^i], giving a
// worst-case relative error of (γ−1)/2 ≈ 1% per quantile. Bucket 0
// absorbs everything at or below sketchMin (including zero and negative
// values — residual norms are non-negative, but the sketch does not
// assume it). The top bucket absorbs everything past the dynamic range.
const (
	sketchGamma = 1.02
	sketchMin   = 1e-9
	sketchSize  = 2560
)

var invLogSketchGamma = 1 / math.Log(sketchGamma)

// QuantileSketch is a fixed-memory streaming quantile estimator over
// log-spaced buckets (a deterministic cousin of DDSketch). Two sketches
// fed the same multiset of values — in any order, split across any
// number of sketches later merged — report identical quantiles: the
// state is pure bucket counts, so accumulation is commutative. That
// commutativity is what makes forensics snapshots worker-count
// invariant.
type QuantileSketch struct {
	counts   []int64
	count    int64
	sum      float64
	min, max float64
}

// NewQuantileSketch returns an empty sketch.
func NewQuantileSketch() *QuantileSketch {
	return &QuantileSketch{counts: make([]int64, sketchSize)}
}

// sketchBucket maps a value to its bucket index.
func sketchBucket(v float64) int {
	if !(v > sketchMin) { // catches NaN too: NaN lands in bucket 0
		return 0
	}
	i := 1 + int(math.Log(v/sketchMin)*invLogSketchGamma)
	if i < 1 {
		i = 1
	}
	if i >= sketchSize {
		i = sketchSize - 1
	}
	return i
}

// Observe records one value.
func (s *QuantileSketch) Observe(v float64) {
	s.counts[sketchBucket(v)]++
	if s.count == 0 || v < s.min {
		s.min = v
	}
	if s.count == 0 || v > s.max {
		s.max = v
	}
	s.count++
	s.sum += v
}

// Count returns the number of observations.
func (s *QuantileSketch) Count() int64 { return s.count }

// Sum returns the sum of observed values.
func (s *QuantileSketch) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean (0 when empty).
func (s *QuantileSketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Min returns the smallest observed value (0 when empty).
func (s *QuantileSketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observed value (0 when empty).
func (s *QuantileSketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Quantile estimates the q-quantile (q clamped to [0,1]) as the midpoint
// of the bucket holding the ceil(q·count)-th smallest observation,
// clamped into [Min, Max] — so a constant stream reports the constant
// exactly, and estimates never leave the observed range. Returns 0 when
// empty.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			return s.clamp(sketchEstimate(i))
		}
	}
	return s.clamp(s.max)
}

// sketchEstimate is bucket i's representative value: the arithmetic
// midpoint of its bounds (0 for the underflow bucket).
func sketchEstimate(i int) float64 {
	if i == 0 {
		return 0
	}
	lo := sketchMin * math.Pow(sketchGamma, float64(i-1))
	return lo * (1 + sketchGamma) / 2
}

func (s *QuantileSketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Merge folds o into s (o is unchanged; a nil or empty o is a no-op).
// Merging is commutative and associative: merging per-worker sketches
// yields exactly the sketch a single worker would have built.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	if s.count == 0 || o.min < s.min {
		s.min = o.min
	}
	if s.count == 0 || o.max > s.max {
		s.max = o.max
	}
	s.count += o.count
	s.sum += o.sum
}

// Reset clears the sketch to empty.
func (s *QuantileSketch) Reset() {
	for i := range s.counts {
		s.counts[i] = 0
	}
	s.count = 0
	s.sum = 0
	s.min = 0
	s.max = 0
}

// EWMA is an exponentially-weighted moving average: a rolling window
// whose "clock" is the observation sequence itself, not wall time, so
// replaying the same value sequence reproduces the same average. The
// first observation seeds the average; each later one moves it by
// weight·(x − avg).
type EWMA struct {
	weight float64
	v      float64
	n      int64
}

// NewEWMA builds an EWMA with the given weight in (0, 1]. weight = 1
// degenerates to "last value"; small weights average over roughly
// 1/weight recent observations. Panics on an out-of-range weight
// (a programming error, matching registry constructor idiom).
func NewEWMA(weight float64) *EWMA {
	if !(weight > 0 && weight <= 1) {
		panic(fmt.Sprintf("obs: EWMA weight %g not in (0,1]", weight))
	}
	return &EWMA{weight: weight}
}

// Observe folds one value into the average.
func (e *EWMA) Observe(x float64) {
	e.n++
	if e.n == 1 {
		e.v = x
		return
	}
	e.v += e.weight * (x - e.v)
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.v }

// Count returns the number of observations.
func (e *EWMA) Count() int64 { return e.n }

// Reset clears the average.
func (e *EWMA) Reset() {
	e.v = 0
	e.n = 0
}
