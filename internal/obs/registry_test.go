package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryRenderDeterministic(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("zz_total", "Last alphabetically.")
	c.Add(3)
	v := reg.CounterVec("aa_requests_total", "Requests by route.", "route")
	v.With("inspect").Inc()
	v.With("estimate").Add(2)
	g := reg.Gauge("mm_gauge", "A gauge.")
	g.Set(1.5)
	h := reg.Histogram("hh_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(5)

	var b1, b2 strings.Builder
	reg.WritePrometheus(&b1)
	reg.WritePrometheus(&b2)
	if b1.String() != b2.String() {
		t.Fatalf("two renders differ:\n%s\n---\n%s", b1.String(), b2.String())
	}
	out := b1.String()

	// Families sorted by name, series by label value.
	ia := strings.Index(out, "aa_requests_total")
	ih := strings.Index(out, "hh_latency_seconds")
	iz := strings.Index(out, "zz_total")
	if !(ia < ih && ih < iz) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	if strings.Index(out, `route="estimate"`) > strings.Index(out, `route="inspect"`) {
		t.Fatalf("series not sorted by label value:\n%s", out)
	}
	for _, want := range []string{
		"# HELP aa_requests_total Requests by route.\n# TYPE aa_requests_total counter\n",
		"aa_requests_total{route=\"estimate\"} 2\n",
		"aa_requests_total{route=\"inspect\"} 1\n",
		"zz_total 3\n",
		"mm_gauge 1.5\n",
		"hh_latency_seconds_bucket{le=\"0.1\"} 1\n",
		"hh_latency_seconds_bucket{le=\"1\"} 1\n",
		"hh_latency_seconds_bucket{le=\"+Inf\"} 2\n",
		"hh_latency_seconds_sum 5.05\n",
		"hh_latency_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if errs := Lint(out); errs != nil {
		t.Fatalf("render fails own lint: %v", errs)
	}
}

func TestRegistryPanicsOnBadRegistration(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("ok_total", "fine")
	mustPanic("duplicate", func() { reg.Counter("ok_total", "again") })
	mustPanic("bad name", func() { reg.Counter("1bad", "leading digit") })
	mustPanic("bad char", func() { reg.Counter("has-dash", "dash") })
	mustPanic("bad label", func() { reg.CounterVec("v_total", "v", "bad-label") })
	mustPanic("bad bounds", func() { NewHistogram([]float64{1, 1}) })
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{0.01, 0.1, 1})
	// 10 observations in (0.01, 0.1].
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	// Median rank 5 of 10 falls at the middle of the (0.01, 0.1] bucket.
	got := h.Quantile(0.5)
	want := 0.01 + 0.5*(0.1-0.01)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Quantile(0.5) = %g, want %g", got, want)
	}
	if q := h.Quantile(0.999); q < 0.01 || q > 0.1 {
		t.Fatalf("Quantile(0.999) = %g outside observed bucket", q)
	}
	// +Inf observations clamp to the top finite bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(100)
	if q := h2.Quantile(0.5); q != 1 {
		t.Fatalf("overflow quantile = %g, want clamp to 1", q)
	}
	if NewHistogram(nil).Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(DefaultLatencyBuckets)
	var wg sync.WaitGroup
	const goroutines, each = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.ObserveDuration(time.Duration(g*i) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*each {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*each)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("esc_total", "Escaping.", "path")
	v.With(`a"b\c`).Inc()
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	if !strings.Contains(out, `esc_total{path="a\"b\\c"} 1`) {
		t.Fatalf("escaped label not rendered correctly:\n%s", out)
	}
	if errs := Lint(out); errs != nil {
		t.Fatalf("escaped render fails lint: %v", errs)
	}
}

func TestOnCollectRunsPerRender(t *testing.T) {
	reg := NewRegistry()
	n := 0
	reg.OnCollect(func() { n++ })
	reg.GaugeFunc("fn_gauge", "From collect.", func() float64 { return float64(n) })
	var b strings.Builder
	reg.WritePrometheus(&b)
	reg.WritePrometheus(&b)
	if n != 2 {
		t.Fatalf("OnCollect ran %d times, want 2", n)
	}
}

func TestRegisterRuntimeLints(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntime(reg)
	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
	if errs := Lint(out); errs != nil {
		t.Fatalf("runtime metrics fail lint: %v", errs)
	}
}
