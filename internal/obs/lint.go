package obs

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Lint statically checks a Prometheus text exposition for the format
// invariants the registry promises: every sample preceded by matching
// HELP/TYPE lines, valid metric and label names, parseable quoted label
// values and sample values, no duplicate series, histogram suffix
// discipline (_bucket/_sum/_count only under a histogram TYPE, the le
// label reserved for histogram buckets), cumulative bucket counts
// monotone in le, bucket lines emitted in increasing-le order with
// le="+Inf" rendered last, present, and equal to _count. It returns
// every violation found (nil when clean).
func Lint(text string) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	type histSeries struct {
		buckets  map[float64]float64 // le → cumulative count
		hasInf   bool
		infCount float64
		sum      *float64
		count    *float64
		firstAt  int
		// lastLe tracks the le of the previous bucket line as emitted, so
		// textual bucket order is checked independently of the map (which
		// would hide a renderer emitting buckets shuffled).
		lastLe float64
	}
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{} // family → kind
	seenSeries := map[string]int{}  // full series key → first line
	hists := map[string]*histSeries{}

	// familyOf strips histogram suffixes when the base family is typed
	// histogram.
	familyOf := func(name string) string {
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			base := strings.TrimSuffix(name, suf)
			if base != name && typeSeen[base] == "histogram" {
				return base
			}
		}
		return name
	}

	lines := strings.Split(text, "\n")
	for i, raw := range lines {
		ln := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				fail(ln, "malformed comment %q (want # HELP/# TYPE)", line)
				continue
			}
			name := fields[2]
			if !validMetricName(name) {
				fail(ln, "invalid metric name %q in %s line", name, fields[1])
				continue
			}
			if fields[1] == "HELP" {
				if helpSeen[name] {
					fail(ln, "duplicate HELP for %q", name)
				}
				helpSeen[name] = true
			} else {
				if _, dup := typeSeen[name]; dup {
					fail(ln, "duplicate TYPE for %q", name)
				}
				kind := ""
				if len(fields) >= 4 {
					kind = fields[3]
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					fail(ln, "unknown TYPE %q for %q", kind, name)
				}
				typeSeen[name] = kind
				if !helpSeen[name] {
					fail(ln, "TYPE for %q not preceded by HELP", name)
				}
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			fail(ln, "%v", err)
			continue
		}
		fam := familyOf(name)
		if _, ok := typeSeen[fam]; !ok {
			fail(ln, "sample %q has no preceding TYPE for family %q", name, fam)
		}
		if !helpSeen[fam] {
			fail(ln, "sample %q has no preceding HELP for family %q", name, fam)
		}
		for _, l := range labels {
			if !validLabelName(l.Key) {
				fail(ln, "invalid label name %q", l.Key)
			}
		}
		key := seriesKey(name, labels)
		if first, dup := seenSeries[key]; dup {
			fail(ln, "duplicate series %s (first at line %d)", key, first)
		}
		seenSeries[key] = ln

		// The le label is histogram-bucket vocabulary; on any other family
		// it is almost certainly a rendering bug.
		if typeSeen[fam] != "histogram" {
			for _, l := range labels {
				if l.Key == "le" {
					fail(ln, "le label on non-histogram family %q", fam)
				}
			}
		}

		// Histogram bookkeeping: group by family + non-le labels.
		if typeSeen[fam] == "histogram" {
			var le string
			var rest []Attr
			for _, l := range labels {
				if l.Key == "le" {
					le = l.Value
				} else {
					rest = append(rest, l)
				}
			}
			hkey := seriesKey(fam, rest)
			h := hists[hkey]
			if h == nil {
				h = &histSeries{buckets: map[float64]float64{}, firstAt: ln, lastLe: math.Inf(-1)}
				hists[hkey] = h
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					fail(ln, "histogram bucket %s missing le label", key)
				} else if le == "+Inf" {
					h.hasInf = true
					h.infCount = value
					h.lastLe = math.Inf(1)
				} else {
					ub, err := strconv.ParseFloat(le, 64)
					if err != nil {
						fail(ln, "unparseable le=%q", le)
					} else {
						if math.IsInf(h.lastLe, 1) {
							fail(ln, "histogram %s: bucket le=%g after le=\"+Inf\"", hkey, ub)
						} else if ub <= h.lastLe {
							fail(ln, "histogram %s: bucket le=%g out of order (previous le=%g)", hkey, ub, h.lastLe)
						}
						h.lastLe = ub
						h.buckets[ub] = value
					}
				}
			case strings.HasSuffix(name, "_sum"):
				v := value
				h.sum = &v
			case strings.HasSuffix(name, "_count"):
				v := value
				h.count = &v
			default:
				fail(ln, "bare sample %q under histogram family %q", name, fam)
			}
		}
	}

	// Whole-histogram invariants.
	hkeys := make([]string, 0, len(hists))
	for k := range hists {
		hkeys = append(hkeys, k)
	}
	sort.Strings(hkeys)
	for _, k := range hkeys {
		h := hists[k]
		if !h.hasInf {
			errs = append(errs, fmt.Errorf("histogram %s: missing le=\"+Inf\" bucket", k))
		}
		if h.sum == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _sum", k))
		}
		if h.count == nil {
			errs = append(errs, fmt.Errorf("histogram %s: missing _count", k))
		} else if h.hasInf && h.infCount != *h.count {
			errs = append(errs, fmt.Errorf("histogram %s: le=\"+Inf\" bucket %g != _count %g", k, h.infCount, *h.count))
		}
		ubs := make([]float64, 0, len(h.buckets))
		for ub := range h.buckets {
			ubs = append(ubs, ub)
		}
		sort.Float64s(ubs)
		prev := 0.0
		for _, ub := range ubs {
			if h.buckets[ub] < prev {
				errs = append(errs, fmt.Errorf("histogram %s: bucket le=%g count %g below previous %g (not cumulative)", k, ub, h.buckets[ub], prev))
			}
			prev = h.buckets[ub]
		}
		if h.hasInf && len(ubs) > 0 && h.infCount < prev {
			errs = append(errs, fmt.Errorf("histogram %s: le=\"+Inf\" %g below le=%g %g", k, h.infCount, ubs[len(ubs)-1], prev))
		}
	}
	return errs
}

// parseSample splits `name{k="v",...} value` into parts, validating
// quoting with an escape-aware scan.
func parseSample(line string) (name string, labels []Attr, value float64, err error) {
	rest := line
	i := 0
	for i < len(rest) && rest[i] != '{' && rest[i] != ' ' {
		i++
	}
	name = rest[:i]
	if !validMetricName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	rest = rest[i:]
	if strings.HasPrefix(rest, "{") {
		end, labs, perr := parseLabels(rest)
		if perr != nil {
			return "", nil, 0, perr
		}
		labels = labs
		rest = rest[end:]
	}
	rest = strings.TrimPrefix(rest, " ")
	if rest == "" {
		return "", nil, 0, fmt.Errorf("sample %q has no value", name)
	}
	v, perr := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if perr != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q for %q", rest, name)
	}
	return name, labels, v, nil
}

// parseLabels scans a `{k="v",...}` block starting at s[0] == '{' and
// returns the index just past the closing brace.
func parseLabels(s string) (end int, labels []Attr, err error) {
	i := 1
	for {
		if i >= len(s) {
			return 0, nil, fmt.Errorf("unterminated label block in %q", s)
		}
		if s[i] == '}' {
			return i + 1, labels, nil
		}
		j := i
		for j < len(s) && s[j] != '=' {
			j++
		}
		if j >= len(s) {
			return 0, nil, fmt.Errorf("label without '=' in %q", s)
		}
		key := s[i:j]
		j++ // past '='
		if j >= len(s) || s[j] != '"' {
			return 0, nil, fmt.Errorf("label %q value not quoted", key)
		}
		j++ // past opening quote
		var val strings.Builder
		for {
			if j >= len(s) {
				return 0, nil, fmt.Errorf("unterminated quoted value for label %q", key)
			}
			c := s[j]
			if c == '\\' {
				if j+1 >= len(s) {
					return 0, nil, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[j+1] {
				case '\\', '"':
					val.WriteByte(s[j+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return 0, nil, fmt.Errorf("bad escape \\%c in label %q", s[j+1], key)
				}
				j += 2
				continue
			}
			if c == '"' {
				j++
				break
			}
			val.WriteByte(c)
			j++
		}
		labels = append(labels, Attr{Key: key, Value: val.String()})
		if j < len(s) && s[j] == ',' {
			j++
		}
		i = j
	}
}

func seriesKey(name string, labels []Attr) string {
	if len(labels) == 0 {
		return name
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	sort.Strings(parts)
	return name + "{" + strings.Join(parts, ",") + "}"
}
