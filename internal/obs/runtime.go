package obs

import (
	"runtime"
	"sync"
)

// RegisterRuntime adds Go runtime gauges (goroutines, heap, GC) to reg.
// The MemStats snapshot is refreshed once per scrape via an OnCollect
// hook rather than once per gauge, so a single /metrics render is
// internally consistent.
func RegisterRuntime(reg *Registry) {
	var (
		mu         sync.Mutex
		ms         runtime.MemStats
		goroutines int
	)
	reg.OnCollect(func() {
		mu.Lock()
		defer mu.Unlock()
		runtime.ReadMemStats(&ms)
		goroutines = runtime.NumGoroutine()
	})
	read := func(f func() float64) func() float64 {
		return func() float64 {
			mu.Lock()
			defer mu.Unlock()
			return f()
		}
	}
	reg.GaugeFunc("go_goroutines", "Number of goroutines.",
		read(func() float64 { return float64(goroutines) }))
	reg.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.",
		read(func() float64 { return float64(ms.HeapAlloc) }))
	reg.GaugeFunc("go_heap_objects", "Number of allocated heap objects.",
		read(func() float64 { return float64(ms.HeapObjects) }))
	reg.GaugeFunc("go_next_gc_bytes", "Heap size target of the next GC cycle.",
		read(func() float64 { return float64(ms.NextGC) }))
	reg.CounterFunc("go_gc_cycles_total", "Completed GC cycles.",
		read(func() float64 { return float64(ms.NumGC) }))
	reg.CounterFunc("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause time.",
		read(func() float64 { return float64(ms.PauseTotalNs) / 1e9 }))
}
