package obs

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestSketchEmptyAndSingle(t *testing.T) {
	s := NewQuantileSketch()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Min() != 0 || s.Max() != 0 || s.Mean() != 0 {
		t.Fatalf("empty sketch not all-zero: count=%d q50=%g", s.Count(), s.Quantile(0.5))
	}
	s.Observe(42)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 42 {
			t.Errorf("single-value Quantile(%g) = %g, want exactly 42 (min/max clamp)", q, got)
		}
	}
	if s.Mean() != 42 || s.Sum() != 42 {
		t.Errorf("mean=%g sum=%g, want 42", s.Mean(), s.Sum())
	}
}

func TestSketchConstantStreamExact(t *testing.T) {
	s := NewQuantileSketch()
	for i := 0; i < 1000; i++ {
		s.Observe(3.7)
	}
	if got := s.Quantile(0.5); got != 3.7 {
		t.Errorf("constant stream p50 = %g, want exactly 3.7", got)
	}
	if got := s.Quantile(0.99); got != 3.7 {
		t.Errorf("constant stream p99 = %g, want exactly 3.7", got)
	}
}

func TestSketchRelativeAccuracy(t *testing.T) {
	// gamma = 1.02 bounds relative error at (gamma-1)/(gamma+1) ≈ 1%;
	// allow 2% slack for rank interpolation at distribution edges.
	s := NewQuantileSketch()
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = math.Exp(rng.NormFloat64()) * 100 // log-normal, wide range
		s.Observe(vals[i])
	}
	sorted := append([]float64(nil), vals...)
	for i := range sorted {
		for j := i + 1; j < len(sorted); j++ {
			if sorted[j] < sorted[i] {
				sorted[i], sorted[j] = sorted[j], sorted[i]
			}
		}
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		rank := int(math.Ceil(q*float64(len(sorted)))) - 1
		exact := sorted[rank]
		got := s.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.02 {
			t.Errorf("Quantile(%g) = %g, exact %g, rel err %.4f > 2%%", q, got, exact, rel)
		}
	}
}

func TestSketchNonPositiveAndNaN(t *testing.T) {
	s := NewQuantileSketch()
	s.Observe(0)
	s.Observe(-5)
	s.Observe(math.NaN())
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3 (all observations counted)", s.Count())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("all-underflow p50 = %g, want 0 (bucket 0 estimate, clamped)", got)
	}
}

func TestSketchMergeCommutative(t *testing.T) {
	mk := func(seed int64, n int) *QuantileSketch {
		s := NewQuantileSketch()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			s.Observe(rng.Float64() * 1000)
		}
		return s
	}
	digest := func(s *QuantileSketch) string {
		return fmt.Sprintf("%d %g %g %g %g %g %g", s.Count(), s.Sum(), s.Min(), s.Max(),
			s.Quantile(0.5), s.Quantile(0.95), s.Quantile(0.99))
	}

	a1, b1 := mk(1, 300), mk(2, 500)
	a1.Merge(b1)
	a2, b2 := mk(2, 500), mk(1, 300)
	a2.Merge(b2)
	if digest(a1) != digest(a2) {
		t.Errorf("merge not commutative:\n%s\n%s", digest(a1), digest(a2))
	}

	// Merge must equal single-stream ingestion of the union.
	u := mk(1, 300)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 500; i++ {
		u.Observe(rng.Float64() * 1000)
	}
	if digest(a1) != digest(u) {
		t.Errorf("merge != union ingest:\n%s\n%s", digest(a1), digest(u))
	}
}

func TestSketchReset(t *testing.T) {
	s := NewQuantileSketch()
	for i := 0; i < 100; i++ {
		s.Observe(float64(i + 1))
	}
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 || s.Sum() != 0 {
		t.Errorf("reset left state: count=%d", s.Count())
	}
	s.Observe(7)
	if got := s.Quantile(0.5); got != 7 {
		t.Errorf("post-reset sketch broken: p50 = %g, want 7", got)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("fresh EWMA not zero")
	}
	e.Observe(10) // seeds
	if e.Value() != 10 {
		t.Fatalf("seed = %g, want 10", e.Value())
	}
	e.Observe(20) // 10 + 0.5*(20-10) = 15
	if e.Value() != 15 {
		t.Fatalf("value = %g, want 15", e.Value())
	}
	e.Reset()
	if e.Value() != 0 || e.Count() != 0 {
		t.Fatal("reset left state")
	}
	e.Observe(4)
	if e.Value() != 4 {
		t.Fatal("post-reset EWMA did not re-seed")
	}

	for _, w := range []float64{0, -1, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%g) did not panic", w)
				}
			}()
			NewEWMA(w)
		}()
	}
}

func TestGaugeVecRender(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("repro_residual_p99", "Residual p99 by topology.", "topology")
	v.With("fig1").Set(12.5)
	v.With("isp").Set(3)
	v.With("fig1").Set(13) // same series, overwrite
	var buf strings.Builder
	r.WritePrometheus(&buf)
	text := buf.String()
	want := "# HELP repro_residual_p99 Residual p99 by topology.\n" +
		"# TYPE repro_residual_p99 gauge\n" +
		"repro_residual_p99{topology=\"fig1\"} 13\n" +
		"repro_residual_p99{topology=\"isp\"} 3\n"
	if text != want {
		t.Errorf("GaugeVec render:\n%s\nwant:\n%s", text, want)
	}
	if errs := Lint(text); errs != nil {
		t.Errorf("GaugeVec output fails lint: %v", errs)
	}
}

func BenchmarkSketchInsert(b *testing.B) {
	s := NewQuantileSketch()
	rng := rand.New(rand.NewSource(9))
	vals := make([]float64, 1024)
	for i := range vals {
		vals[i] = rng.Float64() * 1e4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Observe(vals[i&1023])
	}
}

func BenchmarkSketchQuantile(b *testing.B) {
	s := NewQuantileSketch()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100000; i++ {
		s.Observe(rng.Float64() * 1e4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Quantile(0.99)
	}
}
