package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

// NewLogger builds a slog.Logger writing to w at the given level, in
// JSON when jsonFormat is set and logfmt-style text otherwise.
func NewLogger(w io.Writer, level slog.Level, jsonFormat bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if jsonFormat {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// discardHandler drops everything (slog.DiscardHandler is Go 1.24+; the
// module targets 1.22).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// DiscardLogger returns a logger that drops every record — the default
// for tests and library callers that pass no logger.
func DiscardLogger() *slog.Logger { return slog.New(discardHandler{}) }

type requestIDKey struct{}

// WithRequestID returns ctx annotated with a request ID, which the
// daemon threads through logs, trace attributes, and the X-Request-Id
// response header.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
