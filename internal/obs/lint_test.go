package obs

import (
	"strings"
	"testing"
)

func TestLintAcceptsWellFormedExposition(t *testing.T) {
	text := `# HELP reqs_total Requests.
# TYPE reqs_total counter
reqs_total{route="estimate"} 3
reqs_total{route="inspect"} 1
# HELP lat_seconds Latency.
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 2
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="+Inf"} 4
lat_seconds_sum 2.5
lat_seconds_count 4
# HELP up_gauge Uptime.
# TYPE up_gauge gauge
up_gauge 12.5
`
	if errs := Lint(text); errs != nil {
		t.Fatalf("clean exposition rejected: %v", errs)
	}
}

func TestLintViolations(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"missing help",
			"# TYPE a_total counter\na_total 1\n",
			"not preceded by HELP"},
		{"missing type",
			"# HELP a_total A.\na_total 1\n",
			"no preceding TYPE"},
		{"bad metric name",
			"# HELP a-b A.\n",
			"invalid metric name"},
		{"unquoted label",
			"# HELP a_total A.\n# TYPE a_total counter\na_total{route=est} 1\n",
			"not quoted"},
		{"bad value",
			"# HELP a_total A.\n# TYPE a_total counter\na_total one\n",
			"unparseable value"},
		{"duplicate series",
			"# HELP a_total A.\n# TYPE a_total counter\na_total 1\na_total 2\n",
			"duplicate series"},
		{"non-monotone buckets",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n",
			"not cumulative"},
		{"inf != count",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n",
			"!= _count"},
		{"missing inf",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 4\nh_sum 1\nh_count 4\n",
			"missing le=\"+Inf\""},
		{"missing sum",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 4\n",
			"missing _sum"},
		{"unknown type",
			"# HELP a A.\n# TYPE a widget\n",
			"unknown TYPE"},
		{"unterminated quote",
			"# HELP a_total A.\n# TYPE a_total counter\na_total{route=\"es} 1\n",
			"unterminated"},
		{"buckets out of order",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"out of order"},
		{"bucket after inf",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_bucket{le=\"5\"} 2\nh_sum 1\nh_count 2\n",
			"after le=\"+Inf\""},
		{"duplicate le",
			"# HELP h H.\n# TYPE h histogram\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n",
			"out of order"},
		{"le on counter family",
			"# HELP a_total A.\n# TYPE a_total counter\na_total{le=\"0.5\"} 1\n",
			"le label on non-histogram"},
		{"le on gauge family",
			"# HELP g G.\n# TYPE g gauge\ng{le=\"+Inf\"} 1\n",
			"le label on non-histogram"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := Lint(c.text)
			if errs == nil {
				t.Fatalf("lint accepted bad exposition:\n%s", c.text)
			}
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.wantSub) {
					found = true
				}
			}
			if !found {
				t.Fatalf("no error mentions %q; got %v", c.wantSub, errs)
			}
		})
	}
}
