package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func fakeTracer(capacity int) *Tracer {
	return NewTracer(NewFakeClock(time.Unix(1700000000, 0), time.Microsecond), capacity)
}

func TestTraceSpanTreeAndDump(t *testing.T) {
	tr := fakeTracer(8)
	ctx, root := tr.StartRoot(context.Background(), "http.estimate")
	root.SetAttr("req_id", "req-00000001")
	ctx2, child := StartSpan(ctx, "tomo.solve")
	child.SetInt("paths", 4)
	_, grand := StartSpan(ctx2, "la.factor_normal")
	grand.End()
	child.End()
	root.End()

	dumps := tr.Dump(0)
	if len(dumps) != 1 {
		t.Fatalf("got %d traces, want 1", len(dumps))
	}
	d := dumps[0]
	if d.Root.Name != "http.estimate" || d.Root.Attrs["req_id"] != "req-00000001" {
		t.Fatalf("bad root: %+v", d.Root)
	}
	if len(d.Root.Children) != 1 || d.Root.Children[0].Name != "tomo.solve" {
		t.Fatalf("bad children: %+v", d.Root.Children)
	}
	solve := d.Root.Children[0]
	if solve.Attrs["paths"] != "4" {
		t.Fatalf("missing attr: %+v", solve.Attrs)
	}
	if len(solve.Children) != 1 || solve.Children[0].Name != "la.factor_normal" {
		t.Fatalf("bad grandchildren: %+v", solve.Children)
	}
	// FakeClock steps 1µs per Now() call: root@0, child@1, grand@2,
	// grand ends@3, child ends@4, root ends@5.
	if solve.StartUS != 1 || solve.DurUS != 3 {
		t.Fatalf("solve timing start=%d dur=%d, want 1/3", solve.StartUS, solve.DurUS)
	}
	if d.DurUS != 5 {
		t.Fatalf("trace duration %d, want 5", d.DurUS)
	}
	// JSON dumps are deterministic (map attrs sorted by encoding/json).
	j1, _ := json.Marshal(dumps)
	j2, _ := json.Marshal(tr.Dump(0))
	if string(j1) != string(j2) {
		t.Fatal("trace JSON not deterministic")
	}
}

func TestTraceRingEviction(t *testing.T) {
	tr := fakeTracer(2)
	for i := 0; i < 5; i++ {
		_, root := tr.StartRoot(context.Background(), "op")
		root.End()
	}
	dumps := tr.Dump(0)
	if len(dumps) != 2 {
		t.Fatalf("ring holds %d traces, want 2", len(dumps))
	}
	if dumps[0].ID != 4 || dumps[1].ID != 5 {
		t.Fatalf("ring kept IDs %d,%d, want 4,5 (oldest first)", dumps[0].ID, dumps[1].ID)
	}
	if tr.Dropped() != 3 {
		t.Fatalf("Dropped = %d, want 3", tr.Dropped())
	}
	if got := tr.Dump(1); len(got) != 1 || got[0].ID != 5 {
		t.Fatalf("Dump(1) = %+v, want just ID 5", got)
	}
}

func TestTraceRingWraparoundBoundary(t *testing.T) {
	// Fill to exactly capacity: nothing evicted.
	tr := fakeTracer(4)
	for i := 0; i < 4; i++ {
		_, root := tr.StartRoot(context.Background(), "op")
		root.End()
	}
	if got := tr.Dump(0); len(got) != 4 || tr.Dropped() != 0 {
		t.Fatalf("at capacity: %d traces, %d dropped, want 4/0", len(got), tr.Dropped())
	}
	// One past capacity: exactly the oldest goes.
	_, root := tr.StartRoot(context.Background(), "op")
	root.End()
	dumps := tr.Dump(0)
	if len(dumps) != 4 || tr.Dropped() != 1 {
		t.Fatalf("past capacity: %d traces, %d dropped, want 4/1", len(dumps), tr.Dropped())
	}
	for i, d := range dumps {
		if want := int64(i + 2); d.ID != want {
			t.Fatalf("slot %d holds ID %d, want %d (IDs 2..5 oldest first)", i, d.ID, want)
		}
	}
	// Wrap several more times; order stays oldest-first and contiguous.
	for i := 0; i < 10; i++ {
		_, r := tr.StartRoot(context.Background(), "op")
		r.End()
	}
	dumps = tr.Dump(0)
	if len(dumps) != 4 || tr.Dropped() != 11 {
		t.Fatalf("after wrap: %d traces, %d dropped, want 4/11", len(dumps), tr.Dropped())
	}
	for i, d := range dumps {
		if want := int64(i + 12); d.ID != want {
			t.Fatalf("after wrap slot %d holds ID %d, want %d", i, d.ID, want)
		}
	}
	// Dump(n) slicing at the boundary: n == len, n > len, n == 1.
	if got := tr.Dump(4); len(got) != 4 {
		t.Fatalf("Dump(4) = %d traces", len(got))
	}
	if got := tr.Dump(100); len(got) != 4 {
		t.Fatalf("Dump(100) = %d traces", len(got))
	}
	if got := tr.Dump(1); len(got) != 1 || got[0].ID != 15 {
		t.Fatalf("Dump(1) = %+v, want newest ID 15", got)
	}
}

// TestTraceRingConcurrentDumpNoTornSpans drives completions past the
// ring capacity from many goroutines while another drains /debug/traces
// style dumps, asserting every served trace is whole: IDs strictly
// increasing oldest-first, never more than capacity, and every root span
// ended (a torn span would dump with DurUS 0 — only completed traces may
// be committed). Run with -race.
func TestTraceRingConcurrentDumpNoTornSpans(t *testing.T) {
	tr := fakeTracer(8)
	const writers, perWriter = 4, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var tornErr atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, d := range tr.Dump(0) {
				if d.DurUS < 1 {
					tornErr.Store(fmt.Sprintf("trace %d served torn: DurUS=%d", d.ID, d.DurUS))
				}
				if len(d.Root.Children) != 1 || d.Root.Children[0].DurUS < 1 {
					tornErr.Store(fmt.Sprintf("trace %d served with torn child: %+v", d.ID, d.Root.Children))
				}
			}
			dumps := tr.Dump(0)
			if len(dumps) > 8 {
				tornErr.Store(fmt.Sprintf("dump exceeded capacity: %d", len(dumps)))
			}
			for i := 1; i < len(dumps); i++ {
				if dumps[i].ID <= dumps[i-1].ID {
					tornErr.Store(fmt.Sprintf("dump IDs not increasing: %d then %d", dumps[i-1].ID, dumps[i].ID))
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ctx, root := tr.StartRoot(context.Background(), "op")
				_, child := StartSpan(ctx, "child")
				child.SetAttr("k", "v")
				child.End()
				root.End()
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	// Writers finish quickly; give the dumper its stop signal once all
	// traces are committed.
	for tr.Dropped() < int64(writers*perWriter-8) {
		runtime.Gosched()
	}
	close(stop)
	<-done
	if msg := tornErr.Load(); msg != nil {
		t.Fatal(msg)
	}
	dumps := tr.Dump(0)
	if len(dumps) != 8 || tr.Dropped() != int64(writers*perWriter-8) {
		t.Fatalf("final ring: %d traces, %d dropped, want 8/%d",
			len(dumps), tr.Dropped(), writers*perWriter-8)
	}
}

func TestNilSpanSafety(t *testing.T) {
	// Instrumented library code must run unchanged with no active trace.
	ctx, span := StartSpan(context.Background(), "anything")
	if span != nil {
		t.Fatal("StartSpan without a root should return nil span")
	}
	span.SetAttr("k", "v")
	span.SetInt("n", 1)
	span.SetBool("b", true)
	span.SetFloat("f", 1.5)
	if span.NewChild("child") != nil {
		t.Fatal("nil span NewChild should be nil")
	}
	span.End()
	if span.Duration() != 0 {
		t.Fatal("nil span duration should be 0")
	}
	if span.Context(ctx) != ctx {
		t.Fatal("nil span Context should return ctx unchanged")
	}
}

func TestSpanEndIdempotentAndHook(t *testing.T) {
	tr := fakeTracer(4)
	var names []string
	var durs []time.Duration
	tr.OnSpanEnd(func(name string, d time.Duration) {
		names = append(names, name)
		durs = append(durs, d)
	})
	ctx, root := tr.StartRoot(context.Background(), "root")
	_, child := StartSpan(ctx, "child")
	child.End()
	child.End() // idempotent: no second hook call, no duration change
	d := child.Duration()
	root.End()
	if child.Duration() != d {
		t.Fatal("End not idempotent on duration")
	}
	if len(names) != 2 || names[0] != "child" || names[1] != "root" {
		t.Fatalf("hook calls = %v, want [child root]", names)
	}
	if durs[0] != time.Microsecond {
		t.Fatalf("child duration %v, want 1µs", durs[0])
	}
	if len(tr.Dump(0)) != 1 {
		t.Fatal("double End must not commit the trace twice")
	}
}

func TestRequestIDRoundTrip(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Fatal("empty context should have no request ID")
	}
	ctx = WithRequestID(ctx, "req-42")
	if RequestID(ctx) != "req-42" {
		t.Fatalf("RequestID = %q", RequestID(ctx))
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "info": "INFO", "WARN": "WARN", "error": "ERROR", "": "INFO",
	} {
		lvl, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if lvl.String() != want {
			t.Fatalf("ParseLevel(%q) = %v, want %s", in, lvl, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
}

func TestDiscardLogger(t *testing.T) {
	log := DiscardLogger()
	log.Info("dropped", "k", "v") // must not panic
	if log.Enabled(context.Background(), 0) {
		t.Fatal("discard logger should report disabled")
	}
}
