package obs

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// Clock abstracts time for the tracer so tests can inject a
// deterministic clock and golden-compare whole traces byte-for-byte.
type Clock interface {
	Now() time.Time
}

type wallClock struct{}

func (wallClock) Now() time.Time { return time.Now() }

// WallClock returns the real-time clock.
func WallClock() Clock { return wallClock{} }

// FakeClock is a deterministic clock: every Now() call returns the
// current instant and then advances by a fixed step. With a fixed call
// pattern (sequential requests, one span tree per request) the span
// timestamps — and therefore the /debug/traces JSON — are a pure
// function of the request sequence.
type FakeClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

// NewFakeClock starts at start and advances by step per Now() call.
func NewFakeClock(start time.Time, step time.Duration) *FakeClock {
	return &FakeClock{now: start, step: step}
}

// Now returns the current fake instant and advances the clock.
func (c *FakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := c.now
	c.now = c.now.Add(c.step)
	return t
}

// DefaultTraceCapacity bounds the completed-trace ring buffer.
const DefaultTraceCapacity = 64

// Tracer collects completed traces into a bounded ring buffer and
// optionally reports span durations to a hook (the daemon feeds its
// per-stage latency histograms this way). Safe for concurrent use.
type Tracer struct {
	clock Clock

	mu      sync.Mutex
	ring    []*trace
	cap     int
	seq     int64
	dropped int64
	hook    func(name string, d time.Duration)
}

// NewTracer builds a tracer over clock (nil selects WallClock) keeping
// the last capacity completed traces (<=0 selects
// DefaultTraceCapacity).
func NewTracer(clock Clock, capacity int) *Tracer {
	if clock == nil {
		clock = WallClock()
	}
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{clock: clock, cap: capacity}
}

// Clock returns the tracer's clock, so callers timing work outside
// spans (uptime, handler latency) stay on the same timeline.
func (t *Tracer) Clock() Clock { return t.clock }

// OnSpanEnd installs a hook called with every finished span's name and
// duration. Install before serving; the hook must be fast and
// concurrency-safe.
func (t *Tracer) OnSpanEnd(fn func(name string, d time.Duration)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hook = fn
}

// Capacity returns the ring-buffer size.
func (t *Tracer) Capacity() int { return t.cap }

// Dropped returns how many completed traces the ring has evicted.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// trace is one request's span tree, completed when its root span ends.
type trace struct {
	id   int64
	root *Span
}

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string
	Value string
}

// Span is one timed operation inside a trace. All methods are safe on a
// nil receiver, so instrumented code never has to check whether tracing
// is active: StartSpan on a context with no active trace returns a nil
// span and the instrumentation costs two pointer checks.
type Span struct {
	tracer *Tracer
	trace  *trace
	name   string

	mu       sync.Mutex
	start    time.Time
	end      time.Time
	ended    bool
	attrs    []Attr
	children []*Span
}

type spanKey struct{}

// StartRoot begins a new trace rooted at a span called name and returns
// a context carrying it. Ending the root span completes the trace and
// commits it to the ring buffer.
func (t *Tracer) StartRoot(ctx context.Context, name string) (context.Context, *Span) {
	t.mu.Lock()
	t.seq++
	id := t.seq
	t.mu.Unlock()
	s := &Span{tracer: t, name: name, start: t.clock.Now()}
	s.trace = &trace{id: id, root: s}
	return context.WithValue(ctx, spanKey{}, s), s
}

// StartSpan begins a child of the span carried by ctx. When ctx has no
// active span the returned span is nil (and safe to use); the context
// is returned unchanged.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	child := parent.NewChild(name)
	return context.WithValue(ctx, spanKey{}, child), child
}

// TraceID returns the ID of the trace the active span on ctx belongs
// to, or 0 when no trace is active. The ID is what /debug/traces dumps,
// so forensic exemplars can link an alarm back to its replayable
// request trace.
func TraceID(ctx context.Context) int64 {
	s, _ := ctx.Value(spanKey{}).(*Span)
	if s == nil {
		return 0
	}
	return s.trace.id
}

// NewChild starts a child span without touching a context — for code
// that fans out to goroutines and wants to attach children in a
// deterministic order (the mc trial pool creates per-trial spans in the
// dispatch goroutine).
func (s *Span) NewChild(name string) *Span {
	if s == nil {
		return nil
	}
	child := &Span{tracer: s.tracer, trace: s.trace, name: name, start: s.tracer.clock.Now()}
	s.mu.Lock()
	s.children = append(s.children, child)
	s.mu.Unlock()
	return child
}

// Context returns ctx with s as the active span (pairs with NewChild).
func (s *Span) Context(ctx context.Context) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, spanKey{}, s)
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int) { s.SetAttr(key, fmt.Sprintf("%d", v)) }

// SetBool annotates the span with a boolean value.
func (s *Span) SetBool(key string, v bool) { s.SetAttr(key, fmt.Sprintf("%t", v)) }

// SetFloat annotates the span with a quantized float (%.6f), so span
// attributes survive cross-platform floating-point noise in golden
// comparisons.
func (s *Span) SetFloat(key string, v float64) { s.SetAttr(key, fmt.Sprintf("%.6f", v)) }

// End finishes the span (idempotent). Ending a root span commits the
// trace to the tracer's ring buffer.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.end = s.tracer.clock.Now()
	d := s.end.Sub(s.start)
	isRoot := s.trace.root == s
	s.mu.Unlock()

	s.tracer.mu.Lock()
	hook := s.tracer.hook
	if isRoot {
		s.tracer.ring = append(s.tracer.ring, s.trace)
		if len(s.tracer.ring) > s.tracer.cap {
			over := len(s.tracer.ring) - s.tracer.cap
			s.tracer.ring = append(s.tracer.ring[:0:0], s.tracer.ring[over:]...)
			s.tracer.dropped += int64(over)
		}
	}
	s.tracer.mu.Unlock()
	if hook != nil {
		hook(s.name, d)
	}
}

// Duration returns end−start for an ended span, 0 otherwise.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		return 0
	}
	return s.end.Sub(s.start)
}

// --- JSON dump ----------------------------------------------------------

// SpanDump is the JSON form of one span: timestamps as microsecond
// offsets from the trace root, attributes as a map (encoding/json sorts
// map keys, keeping dumps deterministic).
type SpanDump struct {
	Name     string            `json:"name"`
	StartUS  int64             `json:"startUs"`
	DurUS    int64             `json:"durUs"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Children []SpanDump        `json:"children,omitempty"`
}

// TraceDump is the JSON form of one completed trace.
type TraceDump struct {
	ID    int64    `json:"id"`
	DurUS int64    `json:"durUs"`
	Root  SpanDump `json:"root"`
}

// Dump returns the last n completed traces, oldest first (n <= 0 means
// all retained traces).
func (t *Tracer) Dump(n int) []TraceDump {
	t.mu.Lock()
	ring := append([]*trace{}, t.ring...)
	t.mu.Unlock()
	if n > 0 && len(ring) > n {
		ring = ring[len(ring)-n:]
	}
	out := make([]TraceDump, len(ring))
	for i, tr := range ring {
		root := tr.root.dump(tr.root.start)
		out[i] = TraceDump{ID: tr.id, DurUS: root.DurUS, Root: root}
	}
	return out
}

func (s *Span) dump(epoch time.Time) SpanDump {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := SpanDump{
		Name:    s.name,
		StartUS: s.start.Sub(epoch).Microseconds(),
	}
	if s.ended {
		d.DurUS = s.end.Sub(s.start).Microseconds()
	}
	if len(s.attrs) > 0 {
		d.Attrs = make(map[string]string, len(s.attrs))
		for _, a := range s.attrs {
			d.Attrs[a.Key] = a.Value
		}
	}
	for _, c := range s.children {
		d.Children = append(d.Children, c.dump(epoch))
	}
	return d
}
