// Package obs is the repo's unified observability layer: a stdlib-only
// instrument registry (counters, gauges, histograms, with optional
// labels) rendered in the Prometheus text exposition format, a
// request-scoped tracer with an injectable clock (trace.go), and
// log/slog helpers with request-ID propagation (log.go).
//
// The registry is deliberately small: every instrument is registered up
// front under a validated metric name, rendering is deterministic
// (families sorted by name, series sorted by label value), and the
// exposition it emits passes the package's own Lint (lint.go), which CI
// runs against the live daemon.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the upper bounds (seconds) shared by the
// server- and client-side latency histograms, spanning sub-microsecond
// warm matvecs to pathological multi-second solves.
var DefaultLatencyBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// --- Instruments --------------------------------------------------------

// Counter is a monotonically increasing integer metric. The zero value
// is ready to use; registry-created counters render on WritePrometheus.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n must be non-negative to keep the
// counter monotone; this is not enforced, matching sync/atomic idiom).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a settable float metric.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative-bucket latency/size distribution with the
// same semantics as a Prometheus histogram. Create with NewHistogram or
// through a Registry.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; the +Inf bucket is last
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds an unregistered histogram over the given strictly
// increasing upper bounds (the +Inf bucket is implicit). It panics on
// invalid bounds; nil selects DefaultLatencyBuckets. Standalone
// histograms back client-side latency reports (cmd/tomoload -report)
// with the same bucketing and quantile code the server exports.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds not strictly increasing: %v", bounds))
		}
	}
	h := &Histogram{bounds: bounds}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for ; i < len(h.bounds); i++ {
		if v <= h.bounds[i] {
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		upd := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, upd) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the bucket the rank falls in — the standard
// histogram_quantile estimate. Observations in the +Inf bucket clamp to
// the highest finite bound. Returns 0 when nothing was observed.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum, lower := 0.0, 0.0
	for i, ub := range h.bounds {
		c := float64(h.counts[i].Load())
		if c > 0 && cum+c >= rank {
			frac := (rank - cum) / c
			return lower + frac*(ub-lower)
		}
		cum += c
		lower = ub
	}
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

// --- Vectors (one label dimension) --------------------------------------

// CounterVec is a family of counters split by one label.
type CounterVec struct {
	fam *family
}

// With returns the counter for the given label value, creating it on
// first use. Values are rendered escaped; cardinality is the caller's
// responsibility.
func (v *CounterVec) With(value string) *Counter {
	return v.fam.series(value, func() any { return &Counter{} }).(*Counter)
}

// GaugeVec is a family of gauges split by one label.
type GaugeVec struct {
	fam *family
}

// With returns the gauge for the given label value, creating it on
// first use.
func (v *GaugeVec) With(value string) *Gauge {
	return v.fam.series(value, func() any { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a family of histograms split by one label.
type HistogramVec struct {
	fam    *family
	bounds []float64
}

// With returns the histogram for the given label value, creating it on
// first use.
func (v *HistogramVec) With(value string) *Histogram {
	return v.fam.series(value, func() any { return NewHistogram(v.bounds) }).(*Histogram)
}

// --- Registry -----------------------------------------------------------

// family is one HELP/TYPE block: a metric name plus its series (one for
// unlabeled instruments, one per label value for vectors).
type family struct {
	name, help, kind string
	label            string // "" for unlabeled families

	mu     sync.Mutex
	byVal  map[string]any
	values []string // insertion order; render sorts
}

func (f *family) series(value string, mk func() any) any {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byVal[value]; ok {
		return s
	}
	s := mk()
	f.byVal[value] = s
	f.values = append(f.values, value)
	return s
}

// Registry owns a set of instruments and renders them in the Prometheus
// text exposition format. Registration panics on invalid or duplicate
// names (programming errors); all other operations are safe for
// concurrent use.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	collect  []func()
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) newFamily(name, help, kind, label string) *family {
	if !validMetricName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	if label != "" && !validLabelName(label) {
		panic(fmt.Sprintf("obs: invalid label name %q on %q", label, name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[name]; dup {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{name: name, help: help, kind: kind, label: label, byVal: make(map[string]any)}
	r.families[name] = f
	return f
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.newFamily(name, help, "counter", "")
	return f.series("", func() any { return &Counter{} }).(*Counter)
}

// CounterVec registers a counter family split by one label.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	return &CounterVec{fam: r.newFamily(name, help, "counter", label)}
}

// CounterFunc registers a counter whose value is read from fn at render
// time (for externally accumulated totals such as GC pause seconds).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, "counter", "")
	f.series("", func() any { return valueFunc(fn) })
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.newFamily(name, help, "gauge", "")
	return f.series("", func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers a gauge family split by one label. Series appear
// on first With; refresh snapshot-style sources from an OnCollect hook
// so every scrape sees current values.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	return &GaugeVec{fam: r.newFamily(name, help, "gauge", label)}
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.newFamily(name, help, "gauge", "")
	f.series("", func() any { return valueFunc(fn) })
}

// Histogram registers and returns an unlabeled histogram over bounds
// (nil selects DefaultLatencyBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	f := r.newFamily(name, help, "histogram", "")
	return f.series("", func() any { return NewHistogram(bounds) }).(*Histogram)
}

// HistogramVec registers a histogram family split by one label.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{fam: r.newFamily(name, help, "histogram", label), bounds: bounds}
}

// valueFunc wraps a read-at-render callback as a series.
type valueFunc func() float64

// OnCollect registers a hook run at the start of every WritePrometheus
// — the place to refresh snapshot-style sources (runtime.MemStats)
// exactly once per scrape instead of once per gauge.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collect = append(r.collect, fn)
}

// WritePrometheus renders every registered instrument in the text
// exposition format, families sorted by name and series by label value,
// so two scrapes of the same state are byte-identical.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	collect := append([]func(){}, r.collect...)
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, fn := range collect {
		fn()
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.write(w)
	}
}

func (f *family) write(w io.Writer) {
	f.mu.Lock()
	values := append([]string{}, f.values...)
	series := make([]any, len(values))
	for i, v := range values {
		series[i] = f.byVal[v]
	}
	f.mu.Unlock()
	if len(values) == 0 {
		return
	}
	sort.Sort(&byValue{values, series})
	fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for i, v := range values {
		labels := ""
		if f.label != "" {
			labels = fmt.Sprintf("{%s=%q}", f.label, escapeLabel(v))
		}
		switch s := series[i].(type) {
		case *Counter:
			fmt.Fprintf(w, "%s%s %d\n", f.name, labels, s.Load())
		case *Gauge:
			fmt.Fprintf(w, "%s%s %g\n", f.name, labels, s.Value())
		case valueFunc:
			fmt.Fprintf(w, "%s%s %g\n", f.name, labels, s())
		case *Histogram:
			s.write(w, f.name, f.label, v)
		}
	}
}

// write renders one histogram series. The +Inf bucket and the _count
// line use the same snapshot of the buckets, so cumulative counts are
// monotone and le="+Inf" equals _count even under concurrent Observe.
func (h *Histogram) write(w io.Writer, name, label, value string) {
	pair := func(le string) string {
		if label == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s=%q,le=%q}", label, escapeLabel(value), le)
	}
	suffix := ""
	if label != "" {
		suffix = fmt.Sprintf("{%s=%q}", label, escapeLabel(value))
	}
	var cum int64
	for i, ub := range h.bounds {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, pair(fmt.Sprintf("%g", ub)), cum)
	}
	cum += h.counts[len(h.bounds)].Load()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, pair("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %g\n", name, suffix, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

type byValue struct {
	values []string
	series []any
}

func (b *byValue) Len() int           { return len(b.values) }
func (b *byValue) Less(i, j int) bool { return b.values[i] < b.values[j] }
func (b *byValue) Swap(i, j int) {
	b.values[i], b.values[j] = b.values[j], b.values[i]
	b.series[i], b.series[j] = b.series[j], b.series[i]
}

func escapeHelp(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}

// escapeLabel escapes backslashes and newlines in a label value; %q at
// the call site adds the surrounding quotes and escapes the quotes
// themselves.
func escapeLabel(s string) string {
	return s // %q handles ", \, and control characters
}
