package cli

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestBuildSystemFig1(t *testing.T) {
	env, err := BuildSystem("", "fig1", 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	if env.Fig1 == nil {
		t.Error("Fig1 handles missing")
	}
	if env.Sys.NumPaths() != 23 {
		t.Errorf("paths = %d, want 23", env.Sys.NumPaths())
	}
	if !env.Sys.Identifiable() {
		t.Error("not identifiable")
	}
	if len(env.Monitors) != 3 {
		t.Errorf("monitors = %d", len(env.Monitors))
	}
}

func TestBuildSystemAbilene(t *testing.T) {
	env, err := BuildSystem("", "abilene", 1, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	if env.Fig1 != nil {
		t.Error("Fig1 handles set for Abilene")
	}
	if !env.Sys.Identifiable() {
		t.Error("Abilene not identifiable")
	}
	if env.G.NumNodes() != 11 {
		t.Errorf("nodes = %d", env.G.NumNodes())
	}
}

func TestBuildSystemWireless(t *testing.T) {
	env, err := BuildSystem("", "wireless", 1, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	if !env.Sys.Identifiable() {
		t.Error("wireless not identifiable")
	}
}

func TestBuildSystemFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "k4.txt")
	if err := os.WriteFile(path, []byte("a b\na c\na d\nb c\nb d\nc d\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	env, err := BuildSystem(path, "ignored", 1, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatalf("BuildSystem: %v", err)
	}
	if env.G.NumNodes() != 4 || !env.Sys.Identifiable() {
		t.Errorf("K4 system: %d nodes identifiable=%v", env.G.NumNodes(), env.Sys.Identifiable())
	}
}

func TestBuildSystemErrors(t *testing.T) {
	if _, err := BuildSystem("", "nope", 1, rand.New(rand.NewSource(1))); !errors.Is(err, ErrUnknownKind) {
		t.Errorf("unknown kind: err = %v", err)
	}
	if _, err := BuildSystem("/nonexistent.txt", "", 1, rand.New(rand.NewSource(1))); err == nil {
		t.Error("missing file accepted")
	}
}
