// Package cli holds the topology-loading and system-assembly plumbing
// shared by the command-line tools: resolve a topology by built-in name
// or edge-list file, place monitors, select identifiable measurement
// paths, and hand back a ready tomography system.
package cli

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/graph"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// ErrUnknownKind is returned for unrecognized topology names.
var ErrUnknownKind = errors.New("cli: unknown topology kind")

// Env is an assembled command-line environment.
type Env struct {
	// G is the topology.
	G *graph.Graph
	// Monitors are the selected monitor nodes.
	Monitors []graph.NodeID
	// Sys is the identifiable tomography system.
	Sys *tomo.System
	// Fig1 carries the paper-example handles when kind == "fig1",
	// nil otherwise.
	Fig1 *topo.Fig1Topology
}

// LoadTopology resolves a topology: topoFile (edge list) wins over the
// built-in kind (fig1, abilene, isp, wireless). For fig1 the paper's
// fixed monitors are returned; other topologies leave monitor placement
// to BuildSystem.
func LoadTopology(topoFile, kind string, seed int64) (*graph.Graph, []graph.NodeID, *topo.Fig1Topology, error) {
	if topoFile != "" {
		g, err := topo.FromEdgeListFile(topoFile)
		return g, nil, nil, err
	}
	switch kind {
	case "fig1":
		f := topo.Fig1()
		return f.G, f.Monitors, f, nil
	case "abilene":
		return topo.Abilene(), nil, nil, nil
	case "isp":
		g, err := topo.ISP(seed)
		return g, nil, nil, err
	case "wireless":
		g, _, err := topo.Wireless(seed)
		return g, nil, nil, err
	default:
		return nil, nil, nil, fmt.Errorf("%w: %q (want fig1, abilene, isp, wireless)", ErrUnknownKind, kind)
	}
}

// BuildSystem assembles an identifiable tomography system on the
// resolved topology: fixed monitors (fig1) use exhaustive 23-path
// selection as in the paper; everything else goes through random
// monitor placement. Returns an error when full identifiability cannot
// be reached.
func BuildSystem(topoFile, kind string, seed int64, rng *rand.Rand) (*Env, error) {
	g, monitors, fig1, err := LoadTopology(topoFile, kind, seed)
	if err != nil {
		return nil, err
	}
	var paths []graph.Path
	var rank int
	if monitors != nil {
		paths, rank, err = tomo.SelectPaths(g, monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	} else {
		monitors, paths, rank, err = tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
			Initial: 8,
			Select:  tomo.SelectOptions{PerPair: 6},
		})
	}
	if err != nil {
		return nil, err
	}
	if rank != g.NumLinks() {
		return nil, fmt.Errorf("cli: tomography not identifiable (rank %d of %d links)", rank, g.NumLinks())
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		return nil, err
	}
	return &Env{G: g, Monitors: monitors, Sys: sys, Fig1: fig1}, nil
}
