package forensics

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/detect"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// fig1System builds the paper's Fig. 1 tomography system, the standard
// small fixture across the repo.
func fig1System(t testing.TB) *tomo.System {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != 10 {
		t.Fatalf("SelectPaths: rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestInspectObserverFeedsObservatory wires the detector observer hook
// to an observatory and checks a single inspected round lands with its
// request ID, verdict, and residual attribution.
func TestInspectObserverFeedsObservatory(t *testing.T) {
	sys := fig1System(t)
	det, err := detect.New(sys, 100)
	if err != nil {
		t.Fatal(err)
	}
	o := newObservatory(Config{}, "fig1", sys.Digest(), sys.CSR(), det.Alpha())
	det.SetObserver(o.IngestReport)

	x := make(la.Vector, sys.NumLinks())
	for i := range x {
		x[i] = 10
	}
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one path hard so the round is detected.
	y[0] += 500
	ctx := obs.WithRequestID(context.Background(), "req-00000001#0")
	rep, err := det.InspectCtx(ctx, y)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatalf("perturbed round not detected: norm=%g", rep.ResidualNorm)
	}
	s := o.Snapshot()
	if s.Rounds != 1 || s.Alarms != 1 {
		t.Fatalf("observatory saw rounds=%d alarms=%d", s.Rounds, s.Alarms)
	}
	if len(s.Exemplars) != 1 || s.Exemplars[0].ID != "req-00000001#0" || !s.Exemplars[0].Detected {
		t.Fatalf("exemplar = %+v", s.Exemplars)
	}
	if s.Residual.Max != rep.ResidualNorm {
		t.Fatalf("sketch max %g != report norm %g", s.Residual.Max, rep.ResidualNorm)
	}
	if len(s.TopLinks) == 0 {
		t.Fatal("no link attribution from an attributed round")
	}

	// WithAlpha derivation keeps feeding the same observatory.
	loose, err := det.WithAlpha(1e9)
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := loose.InspectCtx(obs.WithRequestID(context.Background(), "req-00000002#0"), y)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Detected {
		t.Fatal("alpha=1e9 detected")
	}
	if s := o.Snapshot(); s.Rounds != 2 || s.Alarms != 1 {
		t.Fatalf("after WithAlpha inspect: rounds=%d alarms=%d, want 2/1", s.Rounds, s.Alarms)
	}
}

// TestInspectExemplarsWorkerInvariant is the exemplar-hook determinism
// property: N rounds inspected through detect.InspectCtx with the
// observatory observer installed produce the same top-K exemplar set
// and the same commutative snapshot fields whatever the worker count or
// interleaving. Run with -race.
func TestInspectExemplarsWorkerInvariant(t *testing.T) {
	sys := fig1System(t)
	x := make(la.Vector, sys.NumLinks())
	for i := range x {
		x[i] = 10
	}
	clean, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 60
	ys := make([]la.Vector, rounds)
	rng := rand.New(rand.NewSource(17))
	for i := range ys {
		y := append(la.Vector(nil), clean...)
		// Perturb a random path by a random magnitude; some rounds trip
		// the detector, some do not.
		y[rng.Intn(len(y))] += rng.Float64() * 400
		ys[i] = y
	}

	run := func(workers int) string {
		det, err := detect.New(sys, 100)
		if err != nil {
			t.Fatal(err)
		}
		o := newObservatory(Config{ExemplarK: 5}, "fig1", sys.Digest(), sys.CSR(), det.Alpha())
		det.SetObserver(o.IngestReport)
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= rounds {
						return
					}
					ctx := obs.WithRequestID(context.Background(), fmt.Sprintf("req-%04d#0", i))
					if _, err := det.InspectCtx(ctx, ys[i]); err != nil {
						t.Error(err)
						return
					}
				}
			}()
		}
		wg.Wait()
		s := o.Snapshot()
		var b []byte
		b = fmt.Appendf(b, "rounds=%d alarms=%d\n", s.Rounds, s.Alarms)
		r := s.Residual
		b = fmt.Appendf(b, "count=%d min=%.9f max=%.9f mean=%.9f p50=%.9f p99=%.9f\n",
			r.Count, r.Min, r.Max, r.Mean, r.P50, r.P99)
		for _, l := range s.TopLinks {
			b = fmt.Appendf(b, "link %d %.9f %.9f\n", l.Link, l.Score, l.Share)
		}
		for _, e := range s.Exemplars {
			b = fmt.Appendf(b, "ex %s %.9f %t\n", e.ID, e.ResidualNorm, e.Detected)
		}
		return string(b)
	}

	want := run(1)
	for _, workers := range []int{2, 4, 8} {
		if got := run(workers); got != want {
			t.Errorf("workers=%d diverged:\n got: %s\nwant: %s", workers, got, want)
		}
	}
}
