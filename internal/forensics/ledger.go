package forensics

import (
	"repro/internal/la"
	"repro/internal/sparse"
)

// ledger is the per-link suspicion accumulator. Each round's per-path
// residual vector res is projected back through the routing matrix as
// Rᵀ·|res|: link l's share is Σ_{paths p ∋ l} |res_p| — every path
// whose inconsistency touches the link votes for it, weighted by how
// inconsistent the path was. (R is 0/1 path-link incidence, so the
// projection is exactly that sum; a weighted R scales votes by link
// usage, which is still the right attribution.)
//
// The projection is deferred: Rᵀ is linear, so the cumulative per-link
// sum Σ_n Rᵀ|res_n| equals Rᵀ(Σ_n |res_n|), and the per-link EWMA
// recursion e_n = e_{n-1} + w(Rᵀa_n − e_{n-1}) equals Rᵀ applied to the
// same recursion over the per-path vectors. The ledger therefore
// accumulates per-path (O(paths) per round — the streaming hot path has
// a < 5% overhead budget and a per-round O(nnz) multiply was the single
// biggest term in it) and runs the matrix-free CSR projection only when
// a snapshot is taken, O(nnz) per scrape.
//
// Two views accumulate: a cumulative sum (commutative — worker-order
// invariant, the basis of snapshot ranking) and a per-path EWMA (the
// rolling view, arrival-order dependent like any EWMA).
type ledger struct {
	links  int
	weight float64
	rounds int64
	// pathSum and pathEWMA accumulate per path: Σ|res| and the EWMA of
	// |res|, both projected through Rᵀ lazily at snapshot time. Their
	// length is pinned by the first attributed round (r.Rows()).
	pathSum  la.Vector
	pathEWMA la.Vector
	// r is the routing matrix of the current regime, captured on first
	// attribution so top() can project without the caller re-supplying it.
	r *sparse.CSR
	// sum, ewma, and abs are scratch reused across projections/rounds.
	sum  la.Vector
	ewma la.Vector
	abs  la.Vector
}

func newLedger(links int, weight float64) *ledger {
	return &ledger{
		links:  links,
		weight: weight,
		sum:    make(la.Vector, links),
		ewma:   make(la.Vector, links),
	}
}

// project folds one round's residual vector into the ledger. Returns
// false when attribution was impossible (no matrix, or a residual whose
// shape does not match it — e.g. a session round after a path mutation
// diverged from the registered matrix); the caller counts those rounds
// as unattributed.
func (l *ledger) project(r *sparse.CSR, res la.Vector) bool {
	if r == nil || r.Cols() != l.links || len(res) != r.Rows() {
		return false
	}
	if l.pathSum == nil {
		l.pathSum = make(la.Vector, len(res))
		l.pathEWMA = make(la.Vector, len(res))
		l.r = r
	} else if len(res) != len(l.pathSum) {
		return false
	}
	l.rounds++
	first := l.rounds == 1
	for i, v := range res {
		if v < 0 {
			v = -v
		}
		l.pathSum[i] += v
		if first {
			l.pathEWMA[i] = v
		} else {
			l.pathEWMA[i] += l.weight * (v - l.pathEWMA[i])
		}
	}
	return true
}

// materialize runs the deferred Rᵀ projections into the per-link
// scratch vectors. Snapshot-time only.
func (l *ledger) materialize() bool {
	if l.rounds == 0 || l.r == nil {
		return false
	}
	if l.r.MulVecTInto(l.sum, l.pathSum) != nil {
		return false
	}
	return l.r.MulVecTInto(l.ewma, l.pathEWMA) == nil
}

// LinkScore is one suspected link's attribution in a snapshot.
type LinkScore struct {
	// Link is the dense link ID in the topology's current regime.
	Link int `json:"link"`
	// Score is the mean per-round attribution Σ|res| projected onto the
	// link, divided by attributed rounds.
	Score float64 `json:"score"`
	// Share is the link's fraction of total attribution mass.
	Share float64 `json:"share"`
	// EWMA is the rolling per-round attribution.
	EWMA float64 `json:"ewma"`
}

// top returns the k most-suspected links, ranked by cumulative
// attribution (descending) with link-ID ties ascending — a strict total
// order, so the ranking is a pure function of the ingested multiset.
// Links with zero attribution are omitted. Projection is O(nnz) and
// selection O(links·k), so a scrape over a 100k-link topology stays
// cheap.
func (l *ledger) top(k int) []LinkScore {
	if k <= 0 || !l.materialize() {
		return nil
	}
	var total float64
	for _, v := range l.sum {
		total += v
	}
	if total <= 0 {
		return nil
	}
	// Bounded insertion: idx holds the current top links sorted by
	// (sum desc, link asc).
	idx := make([]int, 0, k)
	better := func(a, b int) bool {
		if l.sum[a] != l.sum[b] {
			return l.sum[a] > l.sum[b]
		}
		return a < b
	}
	for link, v := range l.sum {
		if v <= 0 {
			continue
		}
		if len(idx) == k && !better(link, idx[len(idx)-1]) {
			continue
		}
		pos := len(idx)
		for pos > 0 && better(link, idx[pos-1]) {
			pos--
		}
		if len(idx) < k {
			idx = append(idx, 0)
		}
		copy(idx[pos+1:], idx[pos:])
		idx[pos] = link
	}
	out := make([]LinkScore, len(idx))
	rounds := float64(l.rounds)
	for i, link := range idx {
		out[i] = LinkScore{
			Link:  link,
			Score: l.sum[link] / rounds,
			Share: l.sum[link] / total,
			EWMA:  l.ewma[link],
		}
	}
	return out
}
