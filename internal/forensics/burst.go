package forensics

import "repro/internal/detect"

// Burst is one contiguous stretch of accumulated excess residual: the
// CUSUM statistic S_n left zero at Start and returned to zero after
// End. A burst is Alarmed once S_n crossed the ceiling — the sequential
// detector's alarm condition — so a long α-evasive attack (each round
// just under α) still surfaces as one alarmed burst even though no
// single round tripped the per-round detector.
type Burst struct {
	// Start and End are 1-based round sequence numbers (inclusive) in
	// this observatory epoch's arrival order.
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	// Peak is the largest CUSUM statistic reached inside the burst.
	Peak float64 `json:"peak"`
	// Alarmed records whether the statistic exceeded the ceiling.
	Alarmed bool `json:"alarmed"`
	// Open marks the burst still accumulating at snapshot time.
	Open bool `json:"open,omitempty"`
}

// burstTracker segments the residual-norm sequence into bursts using
// detect.Cusum (S_n = max(0, S_{n−1} + norm − drift), alarm when
// S_n > ceiling). Closed bursts are retained up to keep, oldest
// evicted first. Not safe for concurrent use; the observatory mutex
// covers it.
type burstTracker struct {
	cusum  *detect.Cusum
	round  int64
	active *Burst
	closed []Burst
	keep   int
	// alarmed counts bursts that crossed the ceiling (closed or open).
	alarmed int64
}

func newBurstTracker(drift, ceiling float64, keep int) *burstTracker {
	// NewCusum rejects non-positive parameters; fall back to a tracker
	// that never accumulates rather than propagate a construction error
	// into every ingest call (alpha is validated upstream, so this is
	// belt and braces).
	c, err := detect.NewCusum(drift, ceiling)
	if err != nil {
		c, _ = detect.NewCusum(1, 1)
	}
	return &burstTracker{cusum: c, keep: keep}
}

func (b *burstTracker) observe(norm float64) {
	b.round++
	stat, alarm := b.cusum.Observe(norm)
	if stat > 0 {
		if b.active == nil {
			b.active = &Burst{Start: b.round, Peak: stat}
		}
		b.active.End = b.round
		if stat > b.active.Peak {
			b.active.Peak = stat
		}
		if alarm && !b.active.Alarmed {
			b.active.Alarmed = true
			b.alarmed++
		}
		return
	}
	if b.active != nil {
		b.closed = append(b.closed, *b.active)
		if len(b.closed) > b.keep {
			over := len(b.closed) - b.keep
			b.closed = append(b.closed[:0:0], b.closed[over:]...)
		}
		b.active = nil
	}
}

// snapshot returns closed bursts oldest-first plus the open one (if
// any) last.
func (b *burstTracker) snapshot() []Burst {
	out := make([]Burst, 0, len(b.closed)+1)
	out = append(out, b.closed...)
	if b.active != nil {
		open := *b.active
		open.Open = true
		out = append(out, open)
	}
	return out
}
