package forensics

import (
	"sort"
	"sync"

	"repro/internal/sparse"
)

// Table is the daemon's observatory directory, keyed by topology name.
// Bind is the single entry point: registration binds at register time,
// and the streaming round path re-binds per batch (a map lookup plus a
// digest compare when nothing changed), so churn transitions — evict +
// re-register under the same name with a different matrix, or a session
// path mutation changing the session digest — reset attribution and
// bump the epoch without any extra plumbing. Safe for concurrent use.
type Table struct {
	cfg Config

	mu sync.Mutex
	m  map[string]*Observatory
}

// NewTable builds an empty observatory table.
func NewTable(cfg Config) *Table {
	return &Table{cfg: cfg, m: make(map[string]*Observatory)}
}

// Bind returns name's observatory, creating it on first use and
// re-arming it (epoch bump + full attribution reset) when the
// routing-matrix digest changed since the last bind.
func (t *Table) Bind(name, digest string, r *sparse.CSR, alpha float64) *Observatory {
	t.mu.Lock()
	o, ok := t.m[name]
	if !ok {
		o = newObservatory(t.cfg, name, digest, r, alpha)
		t.m[name] = o
	}
	t.mu.Unlock()
	if ok {
		o.rebind(digest, r, alpha)
	}
	return o
}

// Unbind drops name's observatory, reporting whether one was bound.
// Eviction calls this so a long-lived daemon cannot accumulate
// observatory state for topologies that no longer exist; a
// re-registration under the same name starts a fresh observatory at
// epoch zero rather than inheriting the evicted one's attribution.
func (t *Table) Unbind(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.m[name]
	delete(t.m, name)
	return ok
}

// Get returns name's observatory without creating or re-binding it.
func (t *Table) Get(name string) (*Observatory, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	o, ok := t.m[name]
	return o, ok
}

// Snapshot renders name's observatory, reporting ok=false when the
// topology has never been bound.
func (t *Table) Snapshot(name string) (Snapshot, bool) {
	o, ok := t.Get(name)
	if !ok {
		return Snapshot{}, false
	}
	return o.Snapshot(), true
}

// Snapshots renders every observatory, sorted by topology name — the
// deterministic iteration the /metrics collect hook walks.
func (t *Table) Snapshots() []Snapshot {
	t.mu.Lock()
	names := make([]string, 0, len(t.m))
	obs := make([]*Observatory, 0, len(t.m))
	for n := range t.m {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		obs = append(obs, t.m[n])
	}
	t.mu.Unlock()
	out := make([]Snapshot, len(obs))
	for i, o := range obs {
		out[i] = o.Snapshot()
	}
	return out
}

// Len counts bound observatories.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.m)
}
