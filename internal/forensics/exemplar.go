package forensics

import "strconv"

// Exemplar is one retained worst-residual round: enough to find the
// request in logs (ID echoes X-Request-Id plus a round discriminator)
// and the span tree in /debug/traces (TraceID).
type Exemplar struct {
	ID           string  `json:"id"`
	TraceID      int64   `json:"traceId,omitempty"`
	ResidualNorm float64 `json:"residualNorm"`
	Detected     bool    `json:"detected"`
}

// exEntry is the stored form of an exemplar candidate. The correlation
// ID stays as (req, seq) components and is only rendered to a string at
// snapshot time: the streaming hot path offers one candidate per round,
// and materializing "req#seq" there would put a per-round allocation on
// a path with a < 5% overhead budget.
type exEntry struct {
	req      string
	seq      int
	traceID  int64
	norm     float64
	detected bool
}

// id renders the correlation ID: "req#seq", or just req when the
// caller passed no round discriminator (seq < 0).
func (e *exEntry) id() string {
	if e.seq < 0 {
		return e.req
	}
	return e.req + "#" + strconv.Itoa(e.seq)
}

// exemplarStore keeps the top-K rounds by residual norm under a strict
// total order — norm descending, then (req, seq) ascending on ties — so
// the retained set is a pure function of the offered multiset:
// concurrent ingestion in any interleaving converges to the same
// exemplars (the property the worker-invariance tests pin). K is small,
// so a sorted slice with bounded insertion beats a heap on both
// simplicity and determinism. Not safe for concurrent use; the
// observatory mutex covers it.
type exemplarStore struct {
	k     int
	worst []exEntry // sorted by rank, best (worst residual) first
}

func newExemplarStore(k int) *exemplarStore {
	return &exemplarStore{k: k, worst: make([]exEntry, 0, k)}
}

// rankBefore is the strict total order: a outranks b when a's residual
// is larger, with smaller (req, seq) winning ties.
func rankBefore(a, b *exEntry) bool {
	if a.norm != b.norm {
		return a.norm > b.norm
	}
	if a.req != b.req {
		return a.req < b.req
	}
	return a.seq < b.seq
}

func (s *exemplarStore) offer(e exEntry) {
	if s.k <= 0 {
		return
	}
	if len(s.worst) == s.k && !rankBefore(&e, &s.worst[len(s.worst)-1]) {
		return
	}
	pos := len(s.worst)
	for pos > 0 && rankBefore(&e, &s.worst[pos-1]) {
		pos--
	}
	if len(s.worst) < s.k {
		s.worst = append(s.worst, exEntry{})
	}
	copy(s.worst[pos+1:], s.worst[pos:])
	s.worst[pos] = e
}

// top renders the retained exemplars, worst residual first.
func (s *exemplarStore) top() []Exemplar {
	out := make([]Exemplar, len(s.worst))
	for i := range s.worst {
		e := &s.worst[i]
		out[i] = Exemplar{ID: e.id(), TraceID: e.traceID, ResidualNorm: e.norm, Detected: e.detected}
	}
	return out
}
