package forensics

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/la"
	"repro/internal/sparse"
)

// testCSR builds a small 0/1 path-link incidence matrix:
//
//	paths × links = 4 × 3
//	p0: l0 l1
//	p1: l1 l2
//	p2: l0 l2
//	p3: l2
func testCSR(t testing.TB) *sparse.CSR {
	t.Helper()
	ts := []sparse.Triplet{
		{Row: 0, Col: 0, Val: 1}, {Row: 0, Col: 1, Val: 1},
		{Row: 1, Col: 1, Val: 1}, {Row: 1, Col: 2, Val: 1},
		{Row: 2, Col: 0, Val: 1}, {Row: 2, Col: 2, Val: 1},
		{Row: 3, Col: 2, Val: 1},
	}
	m, err := sparse.FromTriplets(4, 3, ts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLedgerProjectionMatchesDenseOracle(t *testing.T) {
	m := testCSR(t)
	l := newLedger(m.Cols(), 0.2)
	rng := rand.New(rand.NewSource(7))
	d := m.Dense()
	oracle := make(la.Vector, m.Cols())
	const rounds = 50
	for r := 0; r < rounds; r++ {
		res := make(la.Vector, m.Rows())
		for i := range res {
			res[i] = rng.NormFloat64() * 10
		}
		// Dense oracle: sum_j |res_p| over paths p containing link j.
		for j := 0; j < m.Cols(); j++ {
			for i := 0; i < m.Rows(); i++ {
				oracle[j] += d.At(i, j) * math.Abs(res[i])
			}
		}
		if !l.project(m, res) {
			t.Fatalf("round %d: project returned false", r)
		}
	}
	// The Rᵀ projection is deferred to snapshot time; force it before
	// reading the per-link sums.
	if !l.materialize() {
		t.Fatal("materialize failed")
	}
	for j := range oracle {
		if math.Abs(l.sum[j]-oracle[j]) > 1e-9*math.Abs(oracle[j]) {
			t.Errorf("link %d: sum = %g, oracle %g", j, l.sum[j], oracle[j])
		}
	}
	top := l.top(3)
	if len(top) != 3 {
		t.Fatalf("top(3) returned %d links", len(top))
	}
	var share float64
	for i, s := range top {
		if i > 0 && s.Score > top[i-1].Score {
			t.Errorf("top not sorted: %v", top)
		}
		if s.Score*float64(rounds) != l.sum[s.Link] {
			t.Errorf("link %d: score %g inconsistent with sum %g over %d rounds",
				s.Link, s.Score, l.sum[s.Link], rounds)
		}
		share += s.Share
	}
	if math.Abs(share-1) > 1e-9 {
		t.Errorf("shares over all links sum to %g, want 1", share)
	}
}

func TestLedgerRejectsShapeMismatch(t *testing.T) {
	m := testCSR(t)
	l := newLedger(m.Cols(), 0.2)
	if l.project(nil, make(la.Vector, 4)) {
		t.Error("project succeeded with nil matrix")
	}
	if l.project(m, make(la.Vector, 3)) {
		t.Error("project succeeded with wrong residual length")
	}
	bad := newLedger(5, 0.2)
	if bad.project(m, make(la.Vector, 4)) {
		t.Error("project succeeded with mismatched link count")
	}
	if l.rounds != 0 {
		t.Errorf("failed projections counted: rounds = %d", l.rounds)
	}
}

func TestLedgerTopRanking(t *testing.T) {
	// Identity routing matrix: per-path accumulation IS the per-link
	// attribution, so the ranking inputs are exactly the vectors below.
	tr := make([]sparse.Triplet, 4)
	for i := range tr {
		tr[i] = sparse.Triplet{Row: i, Col: i, Val: 1}
	}
	eye, err := sparse.FromTriplets(4, 4, tr)
	if err != nil {
		t.Fatal(err)
	}
	l := newLedger(4, 0.5)
	l.rounds = 2
	l.r = eye
	l.pathSum = la.Vector{5, 0, 5, 9}
	l.pathEWMA = la.Vector{2, 0, 2, 4}
	top := l.top(2)
	if len(top) != 2 || top[0].Link != 3 || top[1].Link != 0 {
		t.Fatalf("top(2) = %+v, want links 3 then 0 (tie at sum=5 broken by ID)", top)
	}
	all := l.top(10)
	if len(all) != 3 {
		t.Errorf("top(10) = %+v, want 3 entries (zero-attribution link omitted)", all)
	}
}

func TestBurstSegmentation(t *testing.T) {
	// drift=10, ceiling=25: S accumulates norm-10 per round.
	b := newBurstTracker(10, 25, 4)
	// Rounds 1-2 quiet, 3-5 hot (30 each: S=20,40,60 → alarm at round 4),
	// 6-8 quiet enough to drain (S=60→drop 10/round on zero norm: 50,40,30...)
	norms := []float64{5, 5, 30, 30, 30, 0, 0, 0, 0, 0, 0, 5}
	for _, n := range norms {
		b.observe(n)
	}
	snap := b.snapshot()
	if len(snap) != 1 {
		t.Fatalf("snapshot = %+v, want exactly one closed burst", snap)
	}
	burst := snap[0]
	if burst.Start != 3 || burst.End != 10 {
		t.Errorf("burst span [%d,%d], want [3,10] (round 11 drains S to 0 and closes)", burst.Start, burst.End)
	}
	if !burst.Alarmed {
		t.Error("burst not alarmed despite S=60 > ceiling 25")
	}
	if burst.Peak != 60 {
		t.Errorf("peak = %g, want 60", burst.Peak)
	}
	if burst.Open {
		t.Error("closed burst marked open")
	}
}

func TestBurstOpenAndEviction(t *testing.T) {
	b := newBurstTracker(10, 1000, 2)
	// Three separate closed bursts, keep=2 → oldest evicted.
	for i := 0; i < 3; i++ {
		b.observe(20) // open: S=10
		b.observe(0)  // close: S=0
	}
	b.observe(20) // open a fourth, leave it open
	snap := b.snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot = %+v, want 2 closed + 1 open", snap)
	}
	if snap[0].Start != 3 || snap[1].Start != 5 {
		t.Errorf("closed bursts start at %d,%d, want 3,5 (oldest evicted)", snap[0].Start, snap[1].Start)
	}
	last := snap[2]
	if !last.Open || last.Start != 7 || last.End != 7 {
		t.Errorf("open burst = %+v, want open [7,7]", last)
	}
	if last.Alarmed {
		t.Error("open burst alarmed below ceiling")
	}
}

func TestExemplarStoreOrderAndBound(t *testing.T) {
	s := newExemplarStore(3)
	for i, norm := range []float64{5, 1, 9, 3, 9, 7} {
		s.offer(exEntry{req: fmt.Sprintf("r%d", i), seq: -1, norm: norm})
	}
	top := s.top()
	if len(top) != 3 {
		t.Fatalf("top() = %+v, want 3", top)
	}
	// Two norms of 9 (r2, r4): tie broken by ID ascending; then 7 (r5).
	want := []string{"r2", "r4", "r5"}
	for i, id := range want {
		if top[i].ID != id {
			t.Fatalf("top() order = %+v, want IDs %v", top, want)
		}
	}
	// Mutating the returned slice must not affect the store.
	top[0].ID = "mutated"
	if s.top()[0].ID != "r2" {
		t.Error("top() aliases internal storage")
	}
}

// TestExemplarStoreOrderInvariance is the core determinism property: the
// retained set is a pure function of the offered multiset, whatever the
// offer order.
func TestExemplarStoreOrderInvariance(t *testing.T) {
	offers := make([]exEntry, 40)
	rng := rand.New(rand.NewSource(3))
	for i := range offers {
		offers[i] = exEntry{req: fmt.Sprintf("id-%02d", i), seq: -1, norm: float64(rng.Intn(10))}
	}
	ref := newExemplarStore(5)
	for _, e := range offers {
		ref.offer(e)
	}
	want := ref.top()
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(len(offers))
		s := newExemplarStore(5)
		for _, i := range perm {
			s.offer(offers[i])
		}
		got := s.top()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: top() = %+v, want %+v", trial, got, want)
			}
		}
	}
}

func TestObservatoryIngestAndSnapshot(t *testing.T) {
	m := testCSR(t)
	o := newObservatory(Config{ExemplarK: 2}, "fig1", "d0", m, 100)
	for i := 0; i < 10; i++ {
		norm := float64(10 * (i + 1))
		res := make(la.Vector, m.Rows())
		res[i%m.Rows()] = norm
		o.Ingest(Round{
			Req:      fmt.Sprintf("req-%d", i),
			Seq:      0,
			Detected: norm > 100,
			Norm:     norm,
			Residual: res,
		})
	}
	s := o.Snapshot()
	if s.Rounds != 10 || s.Alarms != 0 {
		t.Errorf("rounds=%d alarms=%d, want 10/0", s.Rounds, s.Alarms)
	}
	if s.Residual.Count != 10 || s.Residual.Min != 10 || s.Residual.Max != 100 {
		t.Errorf("residual stats = %+v", s.Residual)
	}
	if s.Residual.Mean != 55 {
		t.Errorf("mean = %g, want 55", s.Residual.Mean)
	}
	if len(s.Exemplars) != 2 || s.Exemplars[0].ID != "req-9#0" || s.Exemplars[1].ID != "req-8#0" {
		t.Errorf("exemplars = %+v, want req-9#0 then req-8#0", s.Exemplars)
	}
	if len(s.TopLinks) == 0 {
		t.Error("no suspected links despite attributed rounds")
	}
	if s.Unattributed != 0 {
		t.Errorf("unattributed = %d, want 0", s.Unattributed)
	}
	// A nil-residual round counts as unattributed but still feeds the sketch.
	o.Ingest(Round{Req: "req-10", Seq: 0, Norm: 200, Detected: true})
	s = o.Snapshot()
	if s.Unattributed != 1 || s.Alarms != 1 || s.Residual.Max != 200 {
		t.Errorf("after nil-residual round: %+v", s)
	}
}

func TestRebindResetsStateAndBumpsEpoch(t *testing.T) {
	m := testCSR(t)
	tab := NewTable(Config{})
	o := tab.Bind("fig1", "d0", m, 100)
	o.Ingest(Round{Req: "a", Seq: -1, Norm: 50, Residual: make(la.Vector, m.Rows())})
	if o.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", o.Epoch())
	}

	// Same digest: no-op, state survives.
	if o2 := tab.Bind("fig1", "d0", m, 100); o2 != o {
		t.Fatal("Bind returned a different observatory for the same name")
	}
	if s := o.Snapshot(); s.Rounds != 1 || s.Epoch != 0 {
		t.Errorf("same-digest rebind disturbed state: %+v", s)
	}

	// New digest: epoch bump + full reset.
	tab.Bind("fig1", "d1", m, 120)
	s := o.Snapshot()
	if s.Epoch != 1 || s.Rounds != 0 || s.Digest != "d1" || s.Alpha != 120 {
		t.Errorf("rebind: %+v, want epoch=1 rounds=0 digest=d1 alpha=120", s)
	}
	if s.Residual.Count != 0 || len(s.TopLinks) != 0 || len(s.Exemplars) != 0 || len(s.Bursts) != 0 {
		t.Errorf("rebind left attribution state: %+v", s)
	}

	if _, ok := tab.Snapshot("nope"); ok {
		t.Error("Snapshot found an unbound topology")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

func TestTableSnapshotsSorted(t *testing.T) {
	tab := NewTable(Config{})
	for _, n := range []string{"zeta", "alpha", "mid"} {
		tab.Bind(n, "d", nil, 100)
	}
	snaps := tab.Snapshots()
	if len(snaps) != 3 || snaps[0].Name != "alpha" || snaps[1].Name != "mid" || snaps[2].Name != "zeta" {
		t.Errorf("Snapshots order: %v %v %v", snaps[0].Name, snaps[1].Name, snaps[2].Name)
	}
}

// TestConcurrentIngestWorkerInvariance pins the determinism contract:
// all commutative snapshot fields — counts, sketch quantiles, ledger
// sums, the retained exemplar set — are invariant to how rounds are
// interleaved across workers. Run with -race.
func TestConcurrentIngestWorkerInvariance(t *testing.T) {
	m := testCSR(t)
	rounds := make([]Round, 200)
	rng := rand.New(rand.NewSource(11))
	for i := range rounds {
		res := make(la.Vector, m.Rows())
		for j := range res {
			res[j] = rng.NormFloat64() * 20
		}
		var norm float64
		for _, v := range res {
			norm += math.Abs(v)
		}
		rounds[i] = Round{
			Req:      fmt.Sprintf("req-%04d", i),
			Seq:      0,
			Detected: norm > 100,
			Norm:     norm,
			Residual: res,
		}
	}

	commutative := func(s Snapshot) string {
		// Strip order-dependent fields (EWMA, bursts, per-link EWMA).
		var b []byte
		b = fmt.Appendf(b, "rounds=%d alarms=%d unattributed=%d\n", s.Rounds, s.Alarms, s.Unattributed)
		r := s.Residual
		b = fmt.Appendf(b, "count=%d min=%.6f max=%.6f mean=%.6f p50=%.6f p95=%.6f p99=%.6f\n",
			r.Count, r.Min, r.Max, r.Mean, r.P50, r.P95, r.P99)
		for _, l := range s.TopLinks {
			b = fmt.Appendf(b, "link %d score=%.6f share=%.6f\n", l.Link, l.Score, l.Share)
		}
		for _, e := range s.Exemplars {
			b = fmt.Appendf(b, "ex %s %.6f %t\n", e.ID, e.ResidualNorm, e.Detected)
		}
		return string(b)
	}

	var want string
	for _, workers := range []int{1, 2, 4, 8} {
		o := newObservatory(Config{}, "fig1", "d0", m, 100)
		var next int
		var mu sync.Mutex
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					mu.Lock()
					i := next
					next++
					mu.Unlock()
					if i >= len(rounds) {
						return
					}
					o.Ingest(rounds[i])
				}
			}()
		}
		wg.Wait()
		got := commutative(o.Snapshot())
		if want == "" {
			want = got
		} else if got != want {
			t.Errorf("workers=%d: commutative snapshot diverged\n got: %s\nwant: %s", workers, got, want)
		}
	}
}

func TestSnapshotDigestExcludesTraceIDs(t *testing.T) {
	m := testCSR(t)
	mk := func(traceBase int64) Snapshot {
		o := newObservatory(Config{}, "fig1", "d0", m, 100)
		for i := 0; i < 5; i++ {
			res := make(la.Vector, m.Rows())
			res[0] = float64(i)
			o.Ingest(Round{
				Req:      fmt.Sprintf("r%d", i),
				Seq:      -1,
				TraceID:  traceBase + int64(i),
				Norm:     float64(i),
				Residual: res,
			})
		}
		return o.Snapshot()
	}
	a, b := mk(100), mk(9000)
	if a.DigestHash() != b.DigestHash() {
		t.Errorf("digest depends on trace IDs:\n%s\nvs\n%s", a.DigestString(), b.DigestString())
	}
	if a.DigestString() == "" {
		t.Error("empty digest string")
	}
}

func BenchmarkForensicsIngest(b *testing.B) {
	m := testCSR(b)
	o := newObservatory(Config{}, "bench", "d0", m, 100)
	res := la.Vector{3, 1, 4, 1}
	rd := Round{Req: "bench", Seq: 0, Norm: 9, Residual: res}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		o.Ingest(rd)
	}
}
