// Package forensics is the daemon's detection-observability subsystem:
// the live answer to "what is the detector seeing, and which links
// would an operator suspect?". For every registered topology it keeps a
// forensic observatory that folds each inspected round into
//
//   - a streaming quantile sketch and EWMA of the Eq. 23 residual norm
//     ‖R·x̂ − y'‖₁ (obs.QuantileSketch — fixed memory, no stored
//     rounds, worker-order invariant),
//   - a per-link suspicion ledger: the round's per-path residual vector
//     projected back through the routing matrix as Rᵀ·|res|
//     (CSR-aware, matrix-free, so attribution works at ISP scale where
//     the dense R is suppressed),
//   - an alarm-burst tracker built on detect.Cusum (the sequential
//     detector's accumulator), segmenting the round sequence into
//     bursts of accumulated excess residual, and
//   - a bounded top-K exemplar store of the worst-residual rounds with
//     their request/trace correlation IDs, linking a /metrics alarm to
//     a replayable round in /debug/traces.
//
// Observatories are epoch-stamped: when a topology name is re-bound to
// a different routing-matrix digest (an eviction + re-registration, a
// churn-script routing epoch, a session path mutation), the attribution
// state resets and the epoch increments — per-link scores are only
// meaningful against the matrix that produced them, exactly like
// netsim.World.Swap invalidates its path→link memo.
//
// Determinism contract: all sketch and counter state is commutative
// over the ingested round multiset, so snapshots are invariant to how
// rounds were interleaved across workers. EWMA, burst segmentation, and
// the round-sequence numbers are arrival-order dependent; they are
// deterministic whenever each topology's rounds arrive in a fixed order
// (one session per topology, or a single-threaded client), which is how
// the e2e golden pins them.
package forensics

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/detect"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Defaults for Config zero values.
const (
	DefaultExemplarK  = 8
	DefaultTopLinks   = 8
	DefaultEWMAWeight = 0.2
	DefaultBurstKeep  = 16
)

// Config parameterizes a Table and its observatories.
type Config struct {
	// ExemplarK bounds the worst-residual exemplar store; 0 means
	// DefaultExemplarK.
	ExemplarK int
	// TopLinks bounds the suspected-link list in snapshots; 0 means
	// DefaultTopLinks.
	TopLinks int
	// EWMAWeight is the rolling-window weight for the residual EWMA and
	// the per-link ledger; 0 means DefaultEWMAWeight.
	EWMAWeight float64
	// BurstKeep bounds retained closed bursts; 0 means DefaultBurstKeep.
	BurstKeep int
	// BurstDrift and BurstCeiling parameterize the detect.Cusum behind
	// burst tracking; 0 means the topology's detection threshold α for
	// both (drift α keeps clean rounds at S=0; ceiling α requires one
	// round of accumulated excess before a burst counts as alarmed).
	BurstDrift   float64
	BurstCeiling float64
}

func (c Config) exemplarK() int {
	if c.ExemplarK <= 0 {
		return DefaultExemplarK
	}
	return c.ExemplarK
}

func (c Config) topLinks() int {
	if c.TopLinks <= 0 {
		return DefaultTopLinks
	}
	return c.TopLinks
}

func (c Config) ewmaWeight() float64 {
	if c.EWMAWeight <= 0 || c.EWMAWeight > 1 {
		return DefaultEWMAWeight
	}
	return c.EWMAWeight
}

func (c Config) burstKeep() int {
	if c.BurstKeep <= 0 {
		return DefaultBurstKeep
	}
	return c.BurstKeep
}

// Round is one inspected measurement round's forensic observation.
type Round struct {
	// Req and Seq correlate the round with its request: Req is the
	// X-Request-Id and Seq a round discriminator within it, rendered as
	// "req-00000007#2" if the round is retained as an exemplar (Seq < 0
	// renders Req alone, for callers whose request ID already carries the
	// discriminator). Kept as components so the streaming hot path never
	// builds a string for a round that won't be retained.
	Req string
	Seq int
	// TraceID is the /debug/traces trace the round ran under (0 = none).
	// Trace IDs are minted in request-arrival order, so they are
	// excluded from snapshot digests.
	TraceID int64
	// Detected is the round's Eq. 23 verdict.
	Detected bool
	// Norm is ‖R·x̂ − y'‖₁.
	Norm float64
	// Residual is the per-path residual vector R·x̂ − y' (may be nil
	// when only the norm is known; the round then counts as
	// unattributed in the ledger).
	Residual la.Vector
}

// Observatory is one topology's forensic state. Safe for concurrent
// use; every mutation holds the observatory mutex, so per-round
// ingestion from many streams serializes here (the critical section is
// O(nnz) for the ledger projection and O(K) for the exemplar store).
type Observatory struct {
	cfg Config

	mu           sync.Mutex
	name         string
	digest       string
	epoch        int
	alpha        float64
	r            *sparse.CSR
	rounds       int64
	alarms       int64
	unattributed int64
	sketch       *obs.QuantileSketch
	ewma         *obs.EWMA
	ledger       *ledger
	bursts       *burstTracker
	exemplars    *exemplarStore
}

func newObservatory(cfg Config, name, digest string, r *sparse.CSR, alpha float64) *Observatory {
	o := &Observatory{cfg: cfg, name: name}
	o.reset(digest, r, alpha)
	return o
}

// reset re-arms every accumulator for a new routing regime. Caller
// holds o.mu (or owns o exclusively).
func (o *Observatory) reset(digest string, r *sparse.CSR, alpha float64) {
	o.digest = digest
	o.alpha = alpha
	o.r = r
	o.rounds = 0
	o.alarms = 0
	o.unattributed = 0
	o.sketch = obs.NewQuantileSketch()
	o.ewma = obs.NewEWMA(o.cfg.ewmaWeight())
	links := 0
	if r != nil {
		links = r.Cols()
	}
	o.ledger = newLedger(links, o.cfg.ewmaWeight())
	drift, ceiling := o.cfg.BurstDrift, o.cfg.BurstCeiling
	if drift <= 0 {
		drift = alpha
	}
	if ceiling <= 0 {
		ceiling = alpha
	}
	o.bursts = newBurstTracker(drift, ceiling, o.cfg.burstKeep())
	o.exemplars = newExemplarStore(o.cfg.exemplarK())
}

// rebind points the observatory at a new routing regime: same digest is
// a no-op, a different digest resets all attribution state and bumps
// the epoch.
func (o *Observatory) rebind(digest string, r *sparse.CSR, alpha float64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if digest == o.digest {
		return
	}
	o.epoch++
	o.reset(digest, r, alpha)
}

// Epoch counts routing-regime changes observed so far (0 = initial).
func (o *Observatory) Epoch() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.epoch
}

// Ingest folds one round into the observatory.
func (o *Observatory) Ingest(rd Round) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.rounds++
	if rd.Detected {
		o.alarms++
	}
	o.sketch.Observe(rd.Norm)
	o.ewma.Observe(rd.Norm)
	o.bursts.observe(rd.Norm)
	if rd.Residual == nil || !o.ledger.project(o.r, rd.Residual) {
		o.unattributed++
	}
	o.exemplars.offer(exEntry{
		req:      rd.Req,
		seq:      rd.Seq,
		traceID:  rd.TraceID,
		norm:     rd.Norm,
		detected: rd.Detected,
	})
}

// IngestReport adapts a detect.Report to Ingest — the shape of the
// detector observer hook (detect.Detector.SetObserver). The context
// supplies the request/trace correlation IDs; the request ID is assumed
// to already carry its round discriminator (serve's inspect handler
// stamps "reqID#i" per round), so Seq stays -1.
func (o *Observatory) IngestReport(ctx context.Context, rep *detect.Report) {
	o.Ingest(Round{
		Req:      obs.RequestID(ctx),
		Seq:      -1,
		TraceID:  obs.TraceID(ctx),
		Detected: rep.Detected,
		Norm:     rep.ResidualNorm,
		Residual: rep.Residual,
	})
}

// ResidualStats summarizes the residual-norm distribution.
type ResidualStats struct {
	Count int64   `json:"count"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	EWMA  float64 `json:"ewma"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is one observatory's point-in-time forensic view — the body
// of GET /v1/topologies/{name}/forensics.
type Snapshot struct {
	Name         string        `json:"name"`
	Digest       string        `json:"digest"`
	Epoch        int           `json:"epoch"`
	Alpha        float64       `json:"alpha"`
	Rounds       int64         `json:"rounds"`
	Alarms       int64         `json:"alarms"`
	Unattributed int64         `json:"unattributed,omitempty"`
	Residual     ResidualStats `json:"residual"`
	TopLinks     []LinkScore   `json:"topLinks,omitempty"`
	Bursts       []Burst       `json:"bursts,omitempty"`
	Exemplars    []Exemplar    `json:"exemplars,omitempty"`
}

// Snapshot renders the observatory's current state.
func (o *Observatory) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Snapshot{
		Name:         o.name,
		Digest:       o.digest,
		Epoch:        o.epoch,
		Alpha:        o.alpha,
		Rounds:       o.rounds,
		Alarms:       o.alarms,
		Unattributed: o.unattributed,
		Residual: ResidualStats{
			Count: o.sketch.Count(),
			Min:   o.sketch.Min(),
			Max:   o.sketch.Max(),
			Mean:  o.sketch.Mean(),
			EWMA:  o.ewma.Value(),
			P50:   o.sketch.Quantile(0.50),
			P95:   o.sketch.Quantile(0.95),
			P99:   o.sketch.Quantile(0.99),
		},
		TopLinks:  o.ledger.top(o.cfg.topLinks()),
		Bursts:    o.bursts.snapshot(),
		Exemplars: o.exemplars.top(),
	}
}

// DigestString is the snapshot's deterministic text form: every
// order-invariant (and, under per-topology sequential ingestion,
// order-dependent) field quantized to 1e-3, with trace IDs excluded —
// they are minted in global request-arrival order and would break
// worker-count invariance. The e2e golden hashes this.
func (s *Snapshot) DigestString() string {
	var b []byte
	b = fmt.Appendf(b, "forensics %s digest=%s epoch=%d alpha=%.3f rounds=%d alarms=%d unattributed=%d\n",
		s.Name, s.Digest, s.Epoch, s.Alpha, s.Rounds, s.Alarms, s.Unattributed)
	r := s.Residual
	b = fmt.Appendf(b, "residual count=%d min=%.3f max=%.3f mean=%.3f ewma=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
		r.Count, r.Min, r.Max, r.Mean, r.EWMA, r.P50, r.P95, r.P99)
	for _, l := range s.TopLinks {
		b = fmt.Appendf(b, "link %d score=%.3f share=%.3f ewma=%.3f\n", l.Link, l.Score, l.Share, l.EWMA)
	}
	for _, bu := range s.Bursts {
		b = fmt.Appendf(b, "burst start=%d end=%d peak=%.3f alarmed=%t open=%t\n",
			bu.Start, bu.End, bu.Peak, bu.Alarmed, bu.Open)
	}
	for _, e := range s.Exemplars {
		b = fmt.Appendf(b, "exemplar %s norm=%.3f detected=%t\n", e.ID, e.ResidualNorm, e.Detected)
	}
	return string(b)
}

// DigestHash is the sha256 of DigestString, hex-encoded.
func (s *Snapshot) DigestHash() string {
	sum := sha256.Sum256([]byte(s.DigestString()))
	return hex.EncodeToString(sum[:])
}
