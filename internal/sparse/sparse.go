// Package sparse implements the compressed-sparse-row (CSR) substrate
// that lets the tomography stack scale past the dense ceiling: routing
// matrices are 0/1 with a handful of nonzeros per path, so at ISP scale
// (10⁵ links) the dense P×L matrix, the L×L Gram matrix, and the dense
// estimation operator T = (RᵀR)⁻¹Rᵀ are all unaffordable, while the CSR
// form costs O(nnz) and the normal equations can be applied — never
// formed — by two sparse matvecs per iteration of CGLS/LSQR.
//
// Determinism contract: every kernel in this package accumulates in a
// fixed order (row-major over the stored nonzeros, input order for
// duplicate-triplet assembly), uses no maps in numeric paths, and runs
// single-threaded, so results are bit-identical across runs, platforms,
// and GOMAXPROCS. The iterative solvers inherit that: same matrix, same
// right-hand side, same options ⇒ same iterate sequence.
package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/la"
)

// ErrBadTriplet is returned by FromTriplets for out-of-bounds or
// non-finite entries. Malformed input is an error, never a panic: the
// constructor is fuzzed on that contract.
var ErrBadTriplet = errors.New("sparse: bad triplet")

// Triplet is one (row, col, value) coordinate entry, the assembly
// currency of FromTriplets.
type Triplet struct {
	Row, Col int
	Val      float64
}

// CSR is an immutable compressed-sparse-row matrix of float64. Within
// each row the stored column indices are strictly increasing, so every
// traversal — matvecs, digests, Dense — visits nonzeros in a canonical
// row-major order. Construct with FromTriplets or FromDense; the zero
// value is an empty 0×0 matrix.
type CSR struct {
	rows, cols int
	rowPtr     []int // len rows+1; row i occupies [rowPtr[i], rowPtr[i+1])
	colIdx     []int // len nnz, strictly increasing within each row
	val        []float64
}

// FromTriplets assembles an r×c CSR matrix from coordinate entries.
// Triplets may arrive in any order; duplicates of the same (row, col)
// are summed in input order (standard finite-element assembly
// semantics) and entries whose final value is exactly zero are dropped,
// so the result is a canonical minimal representation. Out-of-bounds
// coordinates, negative dimensions, and NaN/Inf values are rejected
// with ErrBadTriplet.
func FromTriplets(r, c int, ts []Triplet) (*CSR, error) {
	if r < 0 || c < 0 {
		return nil, fmt.Errorf("sparse: FromTriplets %d×%d: negative dimension: %w", r, c, ErrBadTriplet)
	}
	for i, t := range ts {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			return nil, fmt.Errorf("sparse: triplet %d at (%d,%d) outside %d×%d: %w",
				i, t.Row, t.Col, r, c, ErrBadTriplet)
		}
		if math.IsNaN(t.Val) || math.IsInf(t.Val, 0) {
			return nil, fmt.Errorf("sparse: triplet %d at (%d,%d) has non-finite value %g: %w",
				i, t.Row, t.Col, t.Val, ErrBadTriplet)
		}
	}
	// Stable sort by (row, col) keeps duplicate groups in input order,
	// so their summation order — and thus the rounded result — is
	// deterministic for a given input sequence.
	sorted := make([]Triplet, len(ts))
	copy(sorted, ts)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Row != sorted[j].Row {
			return sorted[i].Row < sorted[j].Row
		}
		return sorted[i].Col < sorted[j].Col
	})
	m := &CSR{rows: r, cols: c, rowPtr: make([]int, r+1)}
	for i := 0; i < len(sorted); {
		j := i + 1
		v := sorted[i].Val
		for j < len(sorted) && sorted[j].Row == sorted[i].Row && sorted[j].Col == sorted[i].Col {
			v += sorted[j].Val
			j++
		}
		if v != 0 {
			m.colIdx = append(m.colIdx, sorted[i].Col)
			m.val = append(m.val, v)
			m.rowPtr[sorted[i].Row+1]++
		}
		i = j
	}
	for i := 0; i < r; i++ {
		m.rowPtr[i+1] += m.rowPtr[i]
	}
	return m, nil
}

// FromDense converts a dense matrix to CSR, keeping every nonzero.
func FromDense(d *la.Matrix) *CSR {
	r, c := d.Rows(), d.Cols()
	m := &CSR{rows: r, cols: c, rowPtr: make([]int, r+1)}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if v := d.At(i, j); v != 0 {
				m.colIdx = append(m.colIdx, j)
				m.val = append(m.val, v)
			}
		}
		m.rowPtr[i+1] = len(m.colIdx)
	}
	return m
}

// Dense materializes the matrix as dense storage — for tests, digests
// of small systems, and the dense-oracle comparisons only. Callers on
// the scaling path must never invoke it.
func (m *CSR) Dense() *la.Matrix {
	d := la.NewMatrix(m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			d.Set(i, m.colIdx[k], m.val[k])
		}
	}
	return d
}

// Rows returns the number of rows.
func (m *CSR) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *CSR) Cols() int { return m.cols }

// NNZ returns the number of stored nonzeros.
func (m *CSR) NNZ() int { return len(m.colIdx) }

// At returns the element at (i, j), using binary search within the row.
func (m *CSR) At(i, j int) float64 {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
	lo, hi := m.rowPtr[i], m.rowPtr[i+1]
	k := lo + sort.SearchInts(m.colIdx[lo:hi], j)
	if k < hi && m.colIdx[k] == j {
		return m.val[k]
	}
	return 0
}

// Row calls f for each stored nonzero (col, val) of row i, in
// increasing column order.
func (m *CSR) Row(i int, f func(j int, v float64)) {
	for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
		f(m.colIdx[k], m.val[k])
	}
}

// MulVec returns A·x. Accumulation is row-major over stored nonzeros.
func (m *CSR) MulVec(x la.Vector) (la.Vector, error) {
	if len(x) != m.cols {
		return nil, fmt.Errorf("sparse: MulVec %d×%d by vector of length %d: %w",
			m.rows, m.cols, len(x), la.ErrShape)
	}
	out := make(la.Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * x[m.colIdx[k]]
		}
		out[i] = s
	}
	return out, nil
}

// MulVecT returns Aᵀ·y without forming the transpose: the stored
// nonzeros are scattered into the output in row-major order, which is a
// fixed summation order per output element.
func (m *CSR) MulVecT(y la.Vector) (la.Vector, error) {
	out := make(la.Vector, m.cols)
	if err := m.MulVecTInto(out, y); err != nil {
		return nil, err
	}
	return out, nil
}

// MulVecTInto computes Aᵀ·y into dst (length cols, zeroed here), so
// per-round callers — the forensics suspicion ledger projects every
// streamed round's residual through Rᵀ — can reuse one output buffer
// instead of allocating a links-length vector per round. Same fixed
// summation order as MulVecT.
func (m *CSR) MulVecTInto(dst, y la.Vector) error {
	if len(y) != m.rows {
		return fmt.Errorf("sparse: MulVecT %d×%d by vector of length %d: %w",
			m.rows, m.cols, len(y), la.ErrShape)
	}
	if len(dst) != m.cols {
		return fmt.Errorf("sparse: MulVecTInto dst length %d, want %d: %w",
			len(dst), m.cols, la.ErrShape)
	}
	for i := range dst {
		dst[i] = 0
	}
	for i := 0; i < m.rows; i++ {
		yi := y[i]
		if yi == 0 {
			continue
		}
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			dst[m.colIdx[k]] += m.val[k] * yi
		}
	}
	return nil
}

// RowNorms returns the Euclidean norm of each row.
func (m *CSR) RowNorms() la.Vector {
	out := make(la.Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		var s float64
		for k := m.rowPtr[i]; k < m.rowPtr[i+1]; k++ {
			s += m.val[k] * m.val[k]
		}
		out[i] = math.Sqrt(s)
	}
	return out
}

// ColNorms returns the Euclidean norm of each column. A zero entry
// means the column has no nonzeros — in tomography terms, a link no
// measurement path crosses, which makes the system unidentifiable
// before any solver runs.
func (m *CSR) ColNorms() la.Vector {
	out := make(la.Vector, m.cols)
	for k, j := range m.colIdx {
		out[j] += m.val[k] * m.val[k]
	}
	for j := range out {
		out[j] = math.Sqrt(out[j])
	}
	return out
}

// Gram returns the opaque normal-equations operator AᵀA. The product is
// never formed: Apply costs two sparse matvecs, so the L×L Gram matrix
// — the dense path's memory ceiling — never exists.
func (m *CSR) Gram() *Gram { return &Gram{a: m} }

// Gram applies AᵀA matrix-free. Safe for concurrent use (no state
// beyond the immutable matrix).
type Gram struct {
	a *CSR
}

// Dim returns the operator's (square) dimension, A's column count.
func (g *Gram) Dim() int { return g.a.cols }

// Apply returns AᵀA·x via Aᵀ(A·x).
func (g *Gram) Apply(x la.Vector) (la.Vector, error) {
	ax, err := g.a.MulVec(x)
	if err != nil {
		return nil, err
	}
	return g.a.MulVecT(ax)
}
