package sparse

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// rankRelTol is the relative gap σmin/σmax below which CondEst declares
// the matrix numerically rank-deficient. It matches the scale at which
// dense Cholesky on the Gram matrix starts failing ErrNotSPD, so the
// dense and sparse paths classify the same systems as unidentifiable.
const rankRelTol = 1e-8

// CondEst estimates the extreme singular values of a matrix-free: σmax
// by power iteration on the opaque Gram operator AᵀA, σmin by inverse
// power iteration whose inner solves are plain CG on the same operator.
// Nothing dense is ever formed. maxIter bounds the matvec budget of
// each phase; 0 selects a default that resolves the estimates to a few
// percent, which is all rank classification needs.
//
// The starting vector is a fixed splitmix64 stream, so the estimate is
// deterministic yet generically non-orthogonal to any particular
// eigenvector — a structured start (all-ones) would be blind to null
// vectors like e_i − e_j from duplicated columns.
//
// On a numerically rank-deficient matrix the inner CG breaks down or
// the inverse iterates blow up; both are reported as σmin = 0 rather
// than an error, leaving the rank verdict to the caller (compare
// against σmax, e.g. with RankDeficient).
func CondEst(a *CSR, maxIter int) (sigMax, sigMin float64, err error) {
	n := a.cols
	if n == 0 || a.rows == 0 {
		return 0, 0, fmt.Errorf("sparse: CondEst on %d×%d matrix", a.rows, a.cols)
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	g := a.Gram()

	// σmax² = λmax(AᵀA) by power iteration.
	v := seedVector(n)
	normalize(v)
	var lamMax float64
	for k := 0; k < maxIter; k++ {
		gv, aerr := g.Apply(v)
		if aerr != nil {
			return 0, 0, aerr
		}
		lam := dot(v, gv)
		nrm := gv.Norm2()
		if nrm == 0 {
			return 0, 0, nil // zero matrix
		}
		scale(gv, 1/nrm)
		v = gv
		if k > 0 && math.Abs(lam-lamMax) <= 1e-4*math.Abs(lam) {
			lamMax = lam
			break
		}
		lamMax = lam
	}
	if lamMax <= 0 {
		return 0, 0, nil
	}
	sigMax = math.Sqrt(lamMax)

	// σmin² = λmin(AᵀA) by inverse power iteration: q ← normalize(z)
	// where AᵀA·z = q, each solve by CG. A breakdown (search direction
	// annihilated by A) or an exploding iterate certifies a null
	// direction, i.e. σmin ≈ 0.
	q := seedVector(n)
	normalize(q)
	lamMin := lamMax
	for outer := 0; outer < 3; outer++ {
		z, ok, cerr := cgGram(g, q, lamMax, maxIter)
		if cerr != nil {
			return 0, 0, cerr
		}
		if !ok {
			return sigMax, 0, nil
		}
		znorm := z.Norm2()
		if znorm == 0 || !isFinite(znorm) {
			return sigMax, 0, nil
		}
		scale(z, 1/znorm)
		gz, aerr := g.Apply(z)
		if aerr != nil {
			return 0, 0, aerr
		}
		lamMin = dot(z, gz)
		if lamMin <= rankRelTol*rankRelTol*lamMax {
			return sigMax, 0, nil
		}
		q = z
	}
	if lamMin < 0 {
		lamMin = 0
	}
	return sigMax, math.Sqrt(lamMin), nil
}

// RankDeficient reports whether the estimated spectrum certifies
// numerical rank deficiency: σmax = 0 (zero matrix) or
// σmin ≤ rankRelTol·σmax.
func RankDeficient(sigMax, sigMin float64) bool {
	return sigMax == 0 || sigMin <= rankRelTol*sigMax
}

// cgGram solves AᵀA·z = q by plain conjugate gradients on the opaque
// Gram operator. ok=false reports a breakdown: a search direction p
// with ‖Ap‖² vanishing relative to λmax·‖p‖², which certifies a null
// direction of A. lamMax scales the breakdown test.
func cgGram(g *Gram, q la.Vector, lamMax float64, maxIter int) (z la.Vector, ok bool, err error) {
	n := g.Dim()
	z = make(la.Vector, n)
	r := q.Clone()
	p := q.Clone()
	rs := dot(r, r)
	rs0 := rs
	if rs0 == 0 {
		return z, true, nil
	}
	for k := 0; k < maxIter; k++ {
		gp, aerr := g.Apply(p)
		if aerr != nil {
			return nil, false, aerr
		}
		pgp := dot(p, gp)
		pp := dot(p, p)
		if pgp <= 1e-14*lamMax*pp {
			return nil, false, nil // null direction: σmin ≈ 0
		}
		alpha := rs / pgp
		for i := range z {
			z[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * gp[i]
		}
		rsNew := dot(r, r)
		if rsNew <= 1e-20*rs0 {
			return z, true, nil
		}
		beta := rsNew / rs
		rs = rsNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
	}
	return z, true, nil
}

// seedVector returns a deterministic pseudo-random vector in [-1, 1)ⁿ
// from a fixed splitmix64 stream.
func seedVector(n int) la.Vector {
	v := make(la.Vector, n)
	state := uint64(0x9e3779b97f4a7c15)
	for i := range v {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		v[i] = 2*float64(z>>11)/(1<<53) - 1
	}
	return v
}

func normalize(v la.Vector) {
	if n := v.Norm2(); n > 0 {
		scale(v, 1/n)
	}
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
