package sparse

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// benchMatrix builds a routing-matrix-shaped CSR: an identity block
// (one-hop probes) stacked over sparse multi-hop rows, matching the
// [I; S] structure tomo feeds the solvers.
func benchMatrix(links, multihop, hops int, seed int64) (*CSR, la.Vector) {
	rng := rand.New(rand.NewSource(seed))
	ts := make([]Triplet, 0, links+multihop*hops)
	for j := 0; j < links; j++ {
		ts = append(ts, Triplet{Row: j, Col: j, Val: 1})
	}
	for i := 0; i < multihop; i++ {
		for h := 0; h < hops; h++ {
			ts = append(ts, Triplet{Row: links + i, Col: rng.Intn(links), Val: 1})
		}
	}
	a, err := FromTriplets(links+multihop, links, ts)
	if err != nil {
		panic(err)
	}
	b := make(la.Vector, links+multihop)
	for i := range b {
		b[i] = rng.Float64()
	}
	return a, b
}

func BenchmarkSparseMulVec(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		a, _ := benchMatrix(links, links/5, 8, 1)
		x := make(la.Vector, links)
		for i := range x {
			x[i] = float64(i%7) - 3
		}
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := a.MulVec(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSparseGramApply(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		a, _ := benchMatrix(links, links/5, 8, 2)
		g := a.Gram()
		x := make(la.Vector, links)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.Apply(x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSparseCGLS(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		a, rhs := benchMatrix(links, links/5, 8, 3)
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := CGLS(a, rhs, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

func BenchmarkSparseLSQR(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		a, rhs := benchMatrix(links, links/5, 8, 4)
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := LSQR(a, rhs, Options{})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatal("did not converge")
				}
			}
		})
	}
}

func BenchmarkSparseCondEst(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		a, _ := benchMatrix(links, links/5, 8, 5)
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := CondEst(a, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSparseFromTriplets(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		rng := rand.New(rand.NewSource(6))
		rows := links + links/5
		ts := make([]Triplet, 0, links+links*8/5)
		for j := 0; j < links; j++ {
			ts = append(ts, Triplet{Row: j, Col: j, Val: 1})
		}
		for i := links; i < rows; i++ {
			for h := 0; h < 8; h++ {
				ts = append(ts, Triplet{Row: i, Col: rng.Intn(links), Val: 1})
			}
		}
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := FromTriplets(rows, links, ts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
