package sparse

import (
	"fmt"
	"math"

	"repro/internal/la"
)

// LSQR solves min‖b − A·x‖₂ by Golub-Kahan bidiagonalization
// (Paige & Saunders 1982), matrix-free like CGLS but with two extras
// the tomography stack wants: running estimates of ‖A‖F and cond(A)
// maintained from the bidiagonalization itself, and an
// ErrIllConditioned abort when the condition estimate crosses
// Options.CondLimit — the matrix-free analogue of dense Cholesky
// refusing a rank-deficient Gram matrix.
//
// Deterministic: fixed summation order, no randomness, no parallelism.
func LSQR(a *CSR, b la.Vector, opts Options) (*Result, error) {
	if len(b) != a.rows {
		return nil, fmt.Errorf("sparse: LSQR rhs has length %d, want %d: %w", len(b), a.rows, la.ErrShape)
	}
	tol, maxIter, condLim := opts.tol(), opts.maxIter(a.cols), opts.condLimit()
	x := make(la.Vector, a.cols)
	res := &Result{X: x}

	// β₁u₁ = b
	u := b.Clone()
	beta := u.Norm2()
	if beta == 0 {
		res.Converged = true
		return res, nil
	}
	scale(u, 1/beta)
	// α₁v₁ = Aᵀu₁
	v, err := a.MulVecT(u)
	if err != nil {
		return nil, err
	}
	alfa := v.Norm2()
	if alfa == 0 {
		// b ⊥ range(A): x = 0 is optimal.
		res.ResidualNorm = beta
		res.Converged = true
		return res, nil
	}
	scale(v, 1/alfa)
	w := v.Clone()
	arnorm0 := alfa * beta // ‖Aᵀb‖
	phibar, rhobar := beta, alfa
	var anorm, ddnorm float64

	for itn := 1; itn <= maxIter; itn++ {
		// Continue the bidiagonalization: βu = Av − αu, αv = Aᵀu − βv.
		av, err := a.MulVec(v)
		if err != nil {
			return nil, err
		}
		for i := range u {
			u[i] = av[i] - alfa*u[i]
		}
		beta = u.Norm2()
		if beta > 0 {
			scale(u, 1/beta)
		}
		anorm = math.Sqrt(anorm*anorm + alfa*alfa + beta*beta)
		atu, err := a.MulVecT(u)
		if err != nil {
			return nil, err
		}
		for i := range v {
			v[i] = atu[i] - beta*v[i]
		}
		alfa = v.Norm2()
		if alfa > 0 {
			scale(v, 1/alfa)
		}

		// Plane rotation to eliminate the subdiagonal of the lower
		// bidiagonal matrix.
		rho := math.Hypot(rhobar, beta)
		cs := rhobar / rho
		sn := beta / rho
		theta := sn * alfa
		rhobar = -cs * alfa
		phi := cs * phibar
		phibar = sn * phibar

		t1 := phi / rho
		t2 := -theta / rho
		var dknorm float64
		for i := range w {
			dk := w[i] / rho
			dknorm += dk * dk
			x[i] += t1 * w[i]
			w[i] = v[i] + t2*w[i]
		}
		ddnorm += dknorm

		res.Iterations = itn
		res.ResidualNorm = phibar
		res.NormalResidual = alfa * math.Abs(sn*phi)
		res.ANorm = anorm
		res.ACond = anorm * math.Sqrt(ddnorm)
		if res.ACond > condLim {
			return res, fmt.Errorf("%w: LSQR condition estimate %.3g exceeds limit %.3g at iteration %d",
				ErrIllConditioned, res.ACond, condLim, itn)
		}
		if res.NormalResidual <= tol*arnorm0 {
			res.Converged = true
			return res, nil
		}
	}
	return res, fmt.Errorf("%w: LSQR stopped after %d iterations with ‖Aᵀr‖/‖Aᵀb‖ = %.3g (tol %.3g)",
		ErrNotConverged, res.Iterations, res.NormalResidual/arnorm0, tol)
}

func scale(v la.Vector, s float64) {
	for i := range v {
		v[i] *= s
	}
}
