package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

func mustFromTriplets(t *testing.T, r, c int, ts []Triplet) *CSR {
	t.Helper()
	m, err := FromTriplets(r, c, ts)
	if err != nil {
		t.Fatalf("FromTriplets: %v", err)
	}
	return m
}

func TestFromTripletsCanonicalizes(t *testing.T) {
	// Out of order, duplicated, and cancelling entries.
	m := mustFromTriplets(t, 3, 4, []Triplet{
		{Row: 2, Col: 3, Val: 5},
		{Row: 0, Col: 1, Val: 2},
		{Row: 0, Col: 1, Val: 3}, // dup: sums to 5
		{Row: 1, Col: 2, Val: 7},
		{Row: 1, Col: 2, Val: -7}, // dup: cancels to 0, dropped
		{Row: 0, Col: 0, Val: 1},
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3", m.NNZ())
	}
	if got := m.At(0, 1); got != 5 {
		t.Errorf("At(0,1) = %g, want 5 (summed duplicates)", got)
	}
	if got := m.At(1, 2); got != 0 {
		t.Errorf("At(1,2) = %g, want 0 (cancelled duplicates dropped)", got)
	}
	if got := m.At(2, 3); got != 5 {
		t.Errorf("At(2,3) = %g, want 5", got)
	}
	// Column order within rows must be strictly increasing.
	for i := 0; i < m.Rows(); i++ {
		prev := -1
		m.Row(i, func(j int, _ float64) {
			if j <= prev {
				t.Errorf("row %d columns not strictly increasing: %d after %d", i, j, prev)
			}
			prev = j
		})
	}
}

func TestFromTripletsRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		r, c int
		ts   []Triplet
	}{
		{"negative rows", -1, 2, nil},
		{"negative cols", 2, -1, nil},
		{"row out of range", 2, 2, []Triplet{{Row: 2, Col: 0, Val: 1}}},
		{"negative row", 2, 2, []Triplet{{Row: -1, Col: 0, Val: 1}}},
		{"col out of range", 2, 2, []Triplet{{Row: 0, Col: 2, Val: 1}}},
		{"negative col", 2, 2, []Triplet{{Row: 0, Col: -3, Val: 1}}},
		{"NaN", 2, 2, []Triplet{{Row: 0, Col: 0, Val: math.NaN()}}},
		{"Inf", 2, 2, []Triplet{{Row: 0, Col: 0, Val: math.Inf(1)}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromTriplets(tc.r, tc.c, tc.ts); !errors.Is(err, ErrBadTriplet) {
				t.Fatalf("err = %v, want ErrBadTriplet", err)
			}
		})
	}
}

func TestDenseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		d := la.NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if rng.Float64() < 0.3 {
					d.Set(i, j, rng.NormFloat64())
				}
			}
		}
		m := FromDense(d)
		if !m.Dense().Equal(d, 0) {
			t.Fatalf("trial %d: FromDense/Dense round trip not exact", trial)
		}
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if m.At(i, j) != d.At(i, j) {
					t.Fatalf("trial %d: At(%d,%d) = %g, dense %g", trial, i, j, m.At(i, j), d.At(i, j))
				}
			}
		}
	}
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 50; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		d := la.NewMatrix(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if rng.Float64() < 0.4 {
					d.Set(i, j, rng.NormFloat64())
				}
			}
		}
		m := FromDense(d)
		x := make(la.Vector, c)
		y := make(la.Vector, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		sx, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		dx, err := d.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		if !sx.Equal(dx, 1e-12) {
			t.Fatalf("trial %d: MulVec disagrees with dense", trial)
		}
		sy, err := m.MulVecT(y)
		if err != nil {
			t.Fatal(err)
		}
		dy, err := d.T().MulVec(y)
		if err != nil {
			t.Fatal(err)
		}
		if !sy.Equal(dy, 1e-12) {
			t.Fatalf("trial %d: MulVecT disagrees with dense transpose", trial)
		}
	}
}

func TestMulVecShapeErrors(t *testing.T) {
	m := mustFromTriplets(t, 2, 3, []Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := m.MulVec(make(la.Vector, 2)); !errors.Is(err, la.ErrShape) {
		t.Errorf("MulVec wrong length: err = %v, want ErrShape", err)
	}
	if _, err := m.MulVecT(make(la.Vector, 3)); !errors.Is(err, la.ErrShape) {
		t.Errorf("MulVecT wrong length: err = %v, want ErrShape", err)
	}
}

func TestNorms(t *testing.T) {
	m := mustFromTriplets(t, 2, 3, []Triplet{
		{Row: 0, Col: 0, Val: 3},
		{Row: 0, Col: 2, Val: 4},
		{Row: 1, Col: 2, Val: 2},
	})
	rn := m.RowNorms()
	if rn[0] != 5 || rn[1] != 2 {
		t.Errorf("RowNorms = %v, want [5 2]", rn)
	}
	cn := m.ColNorms()
	if cn[0] != 3 || cn[1] != 0 || math.Abs(cn[2]-math.Sqrt(20)) > 1e-15 {
		t.Errorf("ColNorms = %v, want [3 0 √20]", cn)
	}
}

func TestGramMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	d := la.NewMatrix(6, 4)
	for i := 0; i < 6; i++ {
		for j := 0; j < 4; j++ {
			if rng.Float64() < 0.5 {
				d.Set(i, j, rng.NormFloat64())
			}
		}
	}
	m := FromDense(d)
	g := m.Gram()
	if g.Dim() != 4 {
		t.Fatalf("Gram dim = %d, want 4", g.Dim())
	}
	gram, err := d.T().Mul(d)
	if err != nil {
		t.Fatal(err)
	}
	x := la.Vector{1, -2, 0.5, 3}
	got, err := g.Apply(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gram.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-12) {
		t.Fatalf("Gram.Apply = %v, explicit AᵀA·x = %v", got, want)
	}
}

func TestMulVecDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	d := la.NewMatrix(20, 15)
	for i := 0; i < 20; i++ {
		for j := 0; j < 15; j++ {
			if rng.Float64() < 0.3 {
				d.Set(i, j, rng.NormFloat64())
			}
		}
	}
	m := FromDense(d)
	x := make(la.Vector, 15)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	first, err := m.MulVec(x)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 10; k++ {
		again, err := m.MulVec(x)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if again[i] != first[i] {
				t.Fatalf("run %d: MulVec not bit-identical at %d", k, i)
			}
		}
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := mustFromTriplets(t, 0, 0, nil)
	if m.Rows() != 0 || m.Cols() != 0 || m.NNZ() != 0 {
		t.Fatalf("empty matrix misreports shape: %d×%d nnz %d", m.Rows(), m.Cols(), m.NNZ())
	}
	out, err := m.MulVec(la.Vector{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty MulVec: %v %v", out, err)
	}
}
