package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

// randomTall builds a random full-rank-with-overwhelming-probability
// tall sparse-ish matrix and a dense mirror.
func randomTall(rng *rand.Rand, rows, cols int) (*CSR, *la.Matrix) {
	d := la.NewMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < 0.5 {
				d.Set(i, j, rng.NormFloat64())
			}
		}
	}
	// Guarantee full column rank: add identity rows scaled by 1 over
	// the first cols rows (rows ≥ cols in all callers).
	for j := 0; j < cols; j++ {
		d.Set(j, j, d.At(j, j)+1)
	}
	return FromDense(d), d
}

func solveDense(t *testing.T, d *la.Matrix, b la.Vector) la.Vector {
	t.Helper()
	fac, err := la.FactorNormal(d)
	if err != nil {
		t.Fatalf("dense oracle factor: %v", err)
	}
	x, err := fac.Solve(b)
	if err != nil {
		t.Fatalf("dense oracle solve: %v", err)
	}
	return x
}

func TestCGLSAgreesWithDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		rows := 5 + rng.Intn(20)
		cols := 2 + rng.Intn(rows-2)
		a, d := randomTall(rng, rows, cols)
		b := make(la.Vector, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := solveDense(t, d, b)
		res, err := CGLS(a, b, Options{})
		if err != nil {
			t.Fatalf("trial %d (%d×%d): CGLS: %v", trial, rows, cols, err)
		}
		if !res.Converged {
			t.Fatalf("trial %d: converged not set", trial)
		}
		if !res.X.Equal(want, 1e-7) {
			t.Fatalf("trial %d (%d×%d): CGLS %v vs dense %v", trial, rows, cols, res.X, want)
		}
	}
}

func TestLSQRAgreesWithDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		rows := 5 + rng.Intn(20)
		cols := 2 + rng.Intn(rows-2)
		a, d := randomTall(rng, rows, cols)
		b := make(la.Vector, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		want := solveDense(t, d, b)
		res, err := LSQR(a, b, Options{})
		if err != nil {
			t.Fatalf("trial %d (%d×%d): LSQR: %v", trial, rows, cols, err)
		}
		if !res.X.Equal(want, 1e-7) {
			t.Fatalf("trial %d (%d×%d): LSQR %v vs dense %v", trial, rows, cols, res.X, want)
		}
		if res.ACond <= 0 || res.ANorm <= 0 {
			t.Fatalf("trial %d: missing conditioning estimates: anorm %g acond %g", trial, res.ANorm, res.ACond)
		}
	}
}

func TestSolversAgreeOnConsistentSystem(t *testing.T) {
	// For b = A·x* with full-rank A the unique least-squares solution
	// is x*; both solvers must recover it to tolerance.
	rng := rand.New(rand.NewSource(23))
	a, _ := randomTall(rng, 40, 15)
	xstar := make(la.Vector, 15)
	for i := range xstar {
		xstar[i] = rng.Float64()
	}
	b, err := a.MulVec(xstar)
	if err != nil {
		t.Fatal(err)
	}
	for name, solve := range map[string]func(*CSR, la.Vector, Options) (*Result, error){
		"CGLS": CGLS, "LSQR": LSQR,
	} {
		res, err := solve(a, b, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.X.Equal(xstar, 1e-7) {
			t.Fatalf("%s did not recover the consistent solution", name)
		}
		if res.ResidualNorm > 1e-7 {
			t.Fatalf("%s residual %g on a consistent system", name, res.ResidualNorm)
		}
	}
}

func TestSolversReportNonConvergence(t *testing.T) {
	// An ill-conditioned dense-ish system with a starvation budget: the
	// solver must say so, not return silently garbage.
	rng := rand.New(rand.NewSource(24))
	d := la.NewMatrix(30, 20)
	for i := 0; i < 30; i++ {
		for j := 0; j < 20; j++ {
			d.Set(i, j, rng.NormFloat64()*math.Pow(10, -float64(j)/3))
		}
	}
	a := FromDense(d)
	b := make(la.Vector, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	for name, solve := range map[string]func(*CSR, la.Vector, Options) (*Result, error){
		"CGLS": CGLS, "LSQR": LSQR,
	} {
		res, err := solve(a, b, Options{Tol: 1e-14, MaxIter: 2, CondLimit: 1e30})
		if !errors.Is(err, ErrNotConverged) {
			t.Fatalf("%s: err = %v, want ErrNotConverged", name, err)
		}
		if res == nil || res.Iterations != 2 {
			t.Fatalf("%s: partial result missing or wrong iteration count: %+v", name, res)
		}
		if res.Converged {
			t.Fatalf("%s: Converged true alongside ErrNotConverged", name)
		}
	}
}

func TestLSQRCondLimitAborts(t *testing.T) {
	// Severely graded columns (condition ≫ the limit): LSQR's running
	// acond estimate must trip CondLimit with ErrIllConditioned while
	// iterating, instead of grinding toward a meaningless solution.
	// (True rank deficiency is screened by CondEst before a solver is
	// ever built — Krylov iterates stay in range(Aᵀ), so a converged
	// LSQR on a singular system is still a valid least-squares point.)
	rng := rand.New(rand.NewSource(25))
	d := la.NewMatrix(30, 20)
	for i := 0; i < 30; i++ {
		for j := 0; j < 20; j++ {
			d.Set(i, j, rng.NormFloat64()*math.Pow(10, -float64(j)))
		}
	}
	a := FromDense(d)
	b := make(la.Vector, 30)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, err := LSQR(a, b, Options{Tol: 1e-15, CondLimit: 1e4})
	if !errors.Is(err, ErrIllConditioned) {
		t.Fatalf("err = %v, want ErrIllConditioned", err)
	}
}

func TestCGLSZeroRHS(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	a, _ := randomTall(rng, 10, 4)
	res, err := CGLS(a, make(la.Vector, 10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero RHS should converge instantly: %+v", res)
	}
	for _, v := range res.X {
		if v != 0 {
			t.Fatalf("zero RHS produced nonzero solution %v", res.X)
		}
	}
}

func TestSolversRejectWrongRHSLength(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	a, _ := randomTall(rng, 10, 4)
	if _, err := CGLS(a, make(la.Vector, 9), Options{}); !errors.Is(err, la.ErrShape) {
		t.Errorf("CGLS: err = %v, want ErrShape", err)
	}
	if _, err := LSQR(a, make(la.Vector, 9), Options{}); !errors.Is(err, la.ErrShape) {
		t.Errorf("LSQR: err = %v, want ErrShape", err)
	}
}

func TestSolversDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	a, _ := randomTall(rng, 25, 10)
	b := make(la.Vector, 25)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	first, err := CGLS(a, b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5; k++ {
		again, err := CGLS(a, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if again.Iterations != first.Iterations {
			t.Fatalf("iteration count varies across identical runs: %d vs %d", again.Iterations, first.Iterations)
		}
		for i := range first.X {
			if again.X[i] != first.X[i] {
				t.Fatalf("run %d: iterate not bit-identical at %d", k, i)
			}
		}
	}
}

func TestCondEstMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 10; trial++ {
		rows := 8 + rng.Intn(12)
		cols := 3 + rng.Intn(5)
		a, d := randomTall(rng, rows, cols)
		svd, err := la.FactorSVD(d)
		if err != nil {
			t.Fatal(err)
		}
		wantCond := svd.Condition()
		sigMax, sigMin, err := CondEst(a, 0)
		if err != nil {
			t.Fatal(err)
		}
		if sigMin <= 0 {
			t.Fatalf("trial %d: full-rank matrix estimated singular (σmin %g)", trial, sigMin)
		}
		gotCond := sigMax / sigMin
		if gotCond < wantCond*0.5 || gotCond > wantCond*2 {
			t.Fatalf("trial %d: CondEst %.3g vs SVD condition %.3g", trial, gotCond, wantCond)
		}
		if RankDeficient(sigMax, sigMin) {
			t.Fatalf("trial %d: full-rank matrix classified rank-deficient", trial)
		}
	}
}

func TestCondEstFlagsDegenerateMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	t.Run("duplicate column", func(t *testing.T) {
		d := la.NewMatrix(10, 4)
		for i := 0; i < 10; i++ {
			v := rng.NormFloat64()
			d.Set(i, 0, v)
			d.Set(i, 3, v)
			d.Set(i, 1, rng.NormFloat64())
			d.Set(i, 2, rng.NormFloat64())
		}
		sigMax, sigMin, err := CondEst(FromDense(d), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !RankDeficient(sigMax, sigMin) {
			t.Fatalf("duplicate column not flagged: σmax %g σmin %g", sigMax, sigMin)
		}
	})
	t.Run("zero column", func(t *testing.T) {
		d := la.NewMatrix(6, 3)
		for i := 0; i < 6; i++ {
			d.Set(i, 0, rng.NormFloat64())
			d.Set(i, 2, rng.NormFloat64())
		}
		sigMax, sigMin, err := CondEst(FromDense(d), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !RankDeficient(sigMax, sigMin) {
			t.Fatalf("zero column not flagged: σmax %g σmin %g", sigMax, sigMin)
		}
	})
	t.Run("column sum dependency", func(t *testing.T) {
		// col2 = col0 + col1: a dependency no single-column screen sees.
		d := la.NewMatrix(12, 3)
		for i := 0; i < 12; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			d.Set(i, 0, a)
			d.Set(i, 1, b)
			d.Set(i, 2, a+b)
		}
		sigMax, sigMin, err := CondEst(FromDense(d), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !RankDeficient(sigMax, sigMin) {
			t.Fatalf("summed-column dependency not flagged: σmax %g σmin %g", sigMax, sigMin)
		}
	})
	t.Run("zero matrix", func(t *testing.T) {
		sigMax, sigMin, err := CondEst(FromDense(la.NewMatrix(4, 3)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !RankDeficient(sigMax, sigMin) {
			t.Fatalf("zero matrix not flagged: σmax %g σmin %g", sigMax, sigMin)
		}
	})
}

// Warm-started CGLS must reach the same minimizer as a cold start —
// under the same ‖Aᵀb‖-relative tolerance — and must converge in far
// fewer iterations when X0 is already near the solution.
func TestCGLSWarmStart(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		rows := 10 + rng.Intn(20)
		cols := 4 + rng.Intn(rows-4)
		a, d := randomTall(rng, rows, cols)
		b := make(la.Vector, rows)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		cold, err := CGLS(a, b, Options{})
		if err != nil {
			t.Fatalf("trial %d: cold CGLS: %v", trial, err)
		}
		want := solveDense(t, d, b)

		// Warm from the exact solution: zero iterations, converged.
		warm, err := CGLS(a, b, Options{X0: cold.X})
		if err != nil {
			t.Fatalf("trial %d: warm CGLS: %v", trial, err)
		}
		if !warm.Converged {
			t.Fatalf("trial %d: warm start from the solution did not converge", trial)
		}
		if warm.Iterations != 0 {
			t.Errorf("trial %d: warm start from the solution took %d iterations", trial, warm.Iterations)
		}
		tol := 1e-6 * (1 + want.Norm2())
		if !warm.X.Equal(want, tol) {
			t.Errorf("trial %d: warm solution diverged from oracle", trial)
		}

		// Warm from a perturbed solution: same minimizer, never more
		// iterations than cold (on small well-conditioned systems CG
		// termination is spectrum-driven, so the saving can be zero —
		// the exact-solution case above is the hard guarantee).
		x0 := cold.X.Clone()
		for i := range x0 {
			x0[i] += 1e-6 * rng.NormFloat64()
		}
		near, err := CGLS(a, b, Options{X0: x0})
		if err != nil {
			t.Fatalf("trial %d: near-warm CGLS: %v", trial, err)
		}
		if !near.X.Equal(want, tol) {
			t.Errorf("trial %d: near-warm solution diverged from oracle", trial)
		}
		if near.Iterations > cold.Iterations {
			t.Errorf("trial %d: warm start took %d iterations, cold took %d", trial, near.Iterations, cold.Iterations)
		}
	}

	// A wrong-length warm start is a shape error, not a crash.
	a, _ := randomTall(rand.New(rand.NewSource(1)), 8, 4)
	if _, err := CGLS(a, make(la.Vector, 8), Options{X0: make(la.Vector, 3)}); !errors.Is(err, la.ErrShape) {
		t.Fatalf("short X0: err = %v, want ErrShape", err)
	}
}
