package sparse

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/la"
)

// Solver failure modes. Both errors are returned alongside the partial
// Result so callers can inspect how far the iteration got.
var (
	// ErrNotConverged means the iteration budget ran out before the
	// normal-equations residual reached tolerance.
	ErrNotConverged = errors.New("sparse: iterative solver did not converge")
	// ErrIllConditioned means the solver detected (near-)rank-deficiency:
	// a CGLS search direction fell into A's null space, or LSQR's running
	// condition estimate crossed Options.CondLimit.
	ErrIllConditioned = errors.New("sparse: system ill-conditioned or rank-deficient")
)

// Default solver budgets. DefaultTol is the relative reduction required
// of ‖Aᵀ(b−Ax)‖; tighter than estimation noise ever warrants, so the
// iterative estimate is interchangeable with the dense one at test
// tolerances.
const (
	DefaultTol       = 1e-10
	DefaultCondLimit = 1e8
)

// Options configures CGLS and LSQR.
type Options struct {
	// Tol is the relative convergence tolerance on the normal-equations
	// residual: stop when ‖Aᵀr‖ ≤ Tol·‖Aᵀb‖. 0 selects DefaultTol.
	Tol float64
	// MaxIter is the iteration budget. 0 selects 2·cols + 100.
	MaxIter int
	// CondLimit (LSQR only) aborts with ErrIllConditioned when the
	// running estimate of cond(A) exceeds it. 0 selects
	// DefaultCondLimit.
	CondLimit float64
	// X0 (CGLS only) warm-starts the iteration from a prior solution
	// instead of zero — the streaming-rounds amortization: consecutive
	// measurement rounds differ by one perturbation, so the previous
	// round's x̂ is already near the new minimizer and the iteration
	// count collapses. The stopping rule still tests against ‖Aᵀb‖ (one
	// extra transpose matvec when warm), so a warm solve converges to
	// exactly the same tolerance as a cold one. X0 is not mutated; a
	// length mismatch is an ErrShape error.
	X0 la.Vector
}

func (o Options) tol() float64 {
	if o.Tol <= 0 {
		return DefaultTol
	}
	return o.Tol
}

func (o Options) maxIter(cols int) int {
	if o.MaxIter <= 0 {
		return 2*cols + 100
	}
	return o.MaxIter
}

func (o Options) condLimit() float64 {
	if o.CondLimit <= 0 {
		return DefaultCondLimit
	}
	return o.CondLimit
}

// Result reports an iterative least-squares solve.
type Result struct {
	// X is the solution iterate (the least-squares estimate on
	// convergence; the best iterate so far otherwise).
	X la.Vector
	// Iterations is the number of iterations actually run.
	Iterations int
	// ResidualNorm is ‖b − A·X‖₂.
	ResidualNorm float64
	// NormalResidual is ‖Aᵀ(b − A·X)‖₂, the optimality measure the
	// stopping rule tests (zero exactly at the least-squares solution).
	NormalResidual float64
	// ANorm and ACond are LSQR's running estimates of ‖A‖F and cond(A)
	// (zero for CGLS, which does not estimate them).
	ANorm, ACond float64
	// Converged records whether the stopping tolerance was met.
	Converged bool
}

// CGLS solves min‖b − A·x‖₂ by conjugate gradients on the normal
// equations, applied matrix-free (two sparse matvecs per iteration,
// AᵀA never formed). Starting from x = 0 the iterates stay in range(Aᵀ),
// so on rank-deficient systems CGLS heads toward the minimum-norm
// solution — rank deficiency is therefore detected separately (CondEst)
// or via the breakdown guard, not assumed from convergence.
//
// The iteration is deterministic: fixed summation order, no randomness,
// no parallelism.
func CGLS(a *CSR, b la.Vector, opts Options) (*Result, error) {
	if len(b) != a.rows {
		return nil, fmt.Errorf("sparse: CGLS rhs has length %d, want %d: %w", len(b), a.rows, la.ErrShape)
	}
	tol, maxIter := opts.tol(), opts.maxIter(a.cols)
	x := make(la.Vector, a.cols)
	r := b.Clone() // residual b − Ax; x starts at 0
	if opts.X0 != nil {
		if len(opts.X0) != a.cols {
			return nil, fmt.Errorf("sparse: CGLS warm start has length %d, want %d: %w", len(opts.X0), a.cols, la.ErrShape)
		}
		copy(x, opts.X0)
		ax, err := a.MulVec(x)
		if err != nil {
			return nil, err
		}
		for i := range r {
			r[i] -= ax[i]
		}
	}
	s, err := a.MulVecT(r)
	if err != nil {
		return nil, err
	}
	gamma := dot(s, s)
	// The relative-convergence reference is always ‖Aᵀb‖ — the cold
	// start's initial normal residual — never the warm start's, which
	// would make the stopping rule arbitrarily stricter as X0 improves.
	snorm0 := math.Sqrt(gamma)
	if opts.X0 != nil {
		sb, err := a.MulVecT(b)
		if err != nil {
			return nil, err
		}
		snorm0 = math.Sqrt(dot(sb, sb))
	}
	res := &Result{X: x, ResidualNorm: r.Norm2(), NormalResidual: math.Sqrt(gamma)}
	if math.Sqrt(gamma) <= tol*snorm0 {
		// Already at tolerance: for a cold start this is the b ⊥ range(A)
		// case (x = 0 optimal); for a warm start, X0 already solves the
		// round.
		res.Converged = true
		return res, nil
	}
	p := s.Clone()
	for k := 1; k <= maxIter; k++ {
		q, err := a.MulVec(p)
		if err != nil {
			return nil, err
		}
		qq := dot(q, q)
		if qq <= math.SmallestNonzeroFloat64 {
			// A·p ≈ 0 with p ≠ 0: p sits in A's null space.
			res.Iterations = k - 1
			return res, fmt.Errorf("%w: CGLS search direction in null space at iteration %d", ErrIllConditioned, k)
		}
		alpha := gamma / qq
		for i := range x {
			x[i] += alpha * p[i]
		}
		for i := range r {
			r[i] -= alpha * q[i]
		}
		s, err = a.MulVecT(r)
		if err != nil {
			return nil, err
		}
		gammaNew := dot(s, s)
		res.Iterations = k
		res.NormalResidual = math.Sqrt(gammaNew)
		if res.NormalResidual <= tol*snorm0 {
			res.ResidualNorm = r.Norm2()
			res.Converged = true
			return res, nil
		}
		beta := gammaNew / gamma
		gamma = gammaNew
		for i := range p {
			p[i] = s[i] + beta*p[i]
		}
	}
	res.ResidualNorm = r.Norm2()
	return res, fmt.Errorf("%w: CGLS stopped after %d iterations with ‖Aᵀr‖/‖Aᵀb‖ = %.3g (tol %.3g)",
		ErrNotConverged, res.Iterations, res.NormalResidual/snorm0, tol)
}

// dot is the fixed-order inner product used by every solver loop.
func dot(a, b la.Vector) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
