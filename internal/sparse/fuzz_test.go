package sparse

import (
	"math"
	"testing"

	"repro/internal/la"
)

// decodeFuzzTriplets turns a byte stream into matrix dimensions and a
// triplet list that deliberately covers the hostile cases: negative and
// out-of-range indices, duplicated coordinates in arbitrary order,
// exact cancellations, and non-finite values.
func decodeFuzzTriplets(data []byte) (rows, cols int, ts []Triplet) {
	if len(data) < 2 {
		return 0, 0, nil
	}
	// Dimensions in [-2, 13] so negative shapes are reachable.
	rows = int(data[0]%16) - 2
	cols = int(data[1]%16) - 2
	data = data[2:]
	for len(data) >= 3 {
		v := float64(int8(data[2])) / 4
		switch data[2] {
		case 0x7d:
			v = math.NaN()
		case 0x7e:
			v = math.Inf(1)
		case 0x7f:
			v = math.Inf(-1)
		}
		ts = append(ts, Triplet{
			Row: int(int8(data[0])) % 16,
			Col: int(int8(data[1])) % 16,
			Val: v,
		})
		data = data[3:]
	}
	return rows, cols, ts
}

// FuzzCSRFromTriplets drives CSR assembly with arbitrary triplet
// streams. FromTriplets must never panic; it must reject exactly the
// inputs with out-of-range indices or non-finite values; and when it
// accepts, the result must agree entry-for-entry with a naive dense
// accumulation and satisfy the canonical CSR invariants.
func FuzzCSRFromTriplets(f *testing.F) {
	f.Add([]byte{4, 4, 0, 0, 4, 0, 0, 8, 1, 2, 0xfc})
	f.Add([]byte{3, 3, 2, 2, 4, 0, 1, 4, 0, 1, 0xfc}) // dup that cancels
	f.Add([]byte{2, 2, 0xff, 0, 4})                   // negative row
	f.Add([]byte{2, 2, 0, 0, 0x7d})                   // NaN value
	f.Add([]byte{0, 0})                               // negative dims
	f.Add([]byte{5, 5, 9, 0, 4})                      // row out of range
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			return
		}
		rows, cols, ts := decodeFuzzTriplets(data)
		m, err := FromTriplets(rows, cols, ts)

		// Decide validity independently of the implementation.
		valid := rows >= 0 && cols >= 0
		for _, tr := range ts {
			if tr.Row < 0 || tr.Row >= rows || tr.Col < 0 || tr.Col >= cols ||
				math.IsNaN(tr.Val) || math.IsInf(tr.Val, 0) {
				valid = false
			}
		}
		if !valid {
			if err == nil {
				t.Fatalf("invalid input accepted: %d×%d %v", rows, cols, ts)
			}
			return
		}
		if err != nil {
			t.Fatalf("valid input rejected: %d×%d %v: %v", rows, cols, ts, err)
		}

		// Naive dense accumulation is the ground truth. Duplicates sum
		// in input order, which matches the documented contract.
		want := la.NewMatrix(rows, cols)
		for _, tr := range ts {
			want.Set(tr.Row, tr.Col, want.At(tr.Row, tr.Col)+tr.Val)
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if got := m.At(i, j); got != want.At(i, j) {
					t.Fatalf("At(%d,%d) = %g, dense accumulation %g", i, j, got, want.At(i, j))
				}
			}
		}

		// Canonical form: strictly increasing columns per row, no
		// stored zeros, NNZ consistent with iteration.
		seen := 0
		for i := 0; i < rows; i++ {
			prev := -1
			m.Row(i, func(j int, v float64) {
				seen++
				if j <= prev {
					t.Errorf("row %d: column %d not after %d", i, j, prev)
				}
				if v == 0 {
					t.Errorf("row %d col %d: explicit zero stored", i, j)
				}
				prev = j
			})
		}
		if seen != m.NNZ() {
			t.Fatalf("Row iteration saw %d entries, NNZ() = %d", seen, m.NNZ())
		}

		// Round trip through the dense mirror must be exact.
		if !m.Dense().Equal(want, 0) {
			t.Fatal("Dense() disagrees with accumulation")
		}
	})
}
