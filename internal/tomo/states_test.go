package tomo

import "testing"

func TestClassify(t *testing.T) {
	th := DefaultThresholds()
	tests := []struct {
		x    float64
		want State
	}{
		{0, Normal},
		{99.9, Normal},
		{100, Uncertain}, // b_l ≤ x ≤ b_u is uncertain (Definition 1)
		{500, Uncertain},
		{800, Uncertain},
		{800.1, Abnormal},
		{5000, Abnormal},
	}
	for _, tt := range tests {
		if got := th.Classify(tt.x); got != tt.want {
			t.Errorf("Classify(%g) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestClassifyTwoState(t *testing.T) {
	// Remark 1: b = b_l = b_u collapses to two useful states (only the
	// single point b remains uncertain).
	th := Thresholds{Lower: 100, Upper: 100}
	if got := th.Classify(99); got != Normal {
		t.Errorf("Classify(99) = %v", got)
	}
	if got := th.Classify(101); got != Abnormal {
		t.Errorf("Classify(101) = %v", got)
	}
	if got := th.Classify(100); got != Uncertain {
		t.Errorf("Classify(100) = %v", got)
	}
}

func TestThresholdsValidate(t *testing.T) {
	if err := DefaultThresholds().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
	if err := (Thresholds{Lower: -1, Upper: 5}).Validate(); err == nil {
		t.Error("negative lower accepted")
	}
	if err := (Thresholds{Lower: 5, Upper: 1}).Validate(); err == nil {
		t.Error("inverted thresholds accepted")
	}
}

func TestClassifyAll(t *testing.T) {
	th := DefaultThresholds()
	got := th.ClassifyAll([]float64{10, 400, 900})
	want := []State{Normal, Uncertain, Abnormal}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ClassifyAll[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestStateString(t *testing.T) {
	if Normal.String() != "normal" || Uncertain.String() != "uncertain" || Abnormal.String() != "abnormal" {
		t.Error("state strings wrong")
	}
	if State(0).String() == "" {
		t.Error("zero state string empty")
	}
}
