package tomo

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// SelectOptions steer measurement-path selection.
type SelectOptions struct {
	// Exhaustive enumerates all simple paths per monitor pair (small
	// graphs only). When false, PerPair Yen k-shortest paths per pair
	// form the candidate pool.
	Exhaustive bool
	// PerPair is the candidate count per monitor pair in non-exhaustive
	// mode. Zero means a default of 10.
	PerPair int
	// MaxHops bounds candidate path length in exhaustive mode (0: none).
	MaxHops int
	// TargetPaths is the desired total number of selected paths. If it
	// exceeds what identifiability needs, extra candidates are added for
	// redundancy (which is what makes scapegoating detectable at all —
	// Theorem 3 needs a non-square R). 0 selects ~25% more than the
	// minimum, at least one extra.
	TargetPaths int
	// RNG shuffles candidate order for the paper's "random selection
	// algorithm". Nil keeps the deterministic order (shortest first).
	RNG *rand.Rand
}

func (o SelectOptions) perPair() int {
	if o.PerPair <= 0 {
		return 10
	}
	return o.PerPair
}

// CandidatePaths gathers the candidate path pool between all monitor
// pairs, deterministically ordered (length, then node sequence).
func CandidatePaths(g *graph.Graph, monitors []graph.NodeID, opts SelectOptions) ([]graph.Path, error) {
	if len(monitors) < 2 {
		return nil, fmt.Errorf("tomo: need ≥ 2 monitors, got %d", len(monitors))
	}
	seen := make(map[graph.NodeID]bool, len(monitors))
	for _, m := range monitors {
		if seen[m] {
			return nil, fmt.Errorf("tomo: duplicate monitor %d", m)
		}
		seen[m] = true
	}
	var all []graph.Path
	for i := 0; i < len(monitors); i++ {
		for j := i + 1; j < len(monitors); j++ {
			var (
				paths []graph.Path
				err   error
			)
			if opts.Exhaustive {
				paths, err = graph.SimplePaths(g, monitors[i], monitors[j], opts.MaxHops, 0)
			} else {
				paths, err = graph.KShortestPaths(g, monitors[i], monitors[j], opts.perPair())
			}
			if err != nil {
				if errors.Is(err, graph.ErrNoPath) {
					continue // disconnected pair contributes nothing
				}
				return nil, fmt.Errorf("tomo: candidates %d–%d: %w", monitors[i], monitors[j], err)
			}
			all = append(all, paths...)
		}
	}
	if len(all) == 0 {
		return nil, fmt.Errorf("tomo: no candidate paths between monitors: %w", graph.ErrNoPath)
	}
	sort.SliceStable(all, func(a, b int) bool { return pathLess(all[a], all[b]) })
	return all, nil
}

func pathLess(a, b graph.Path) bool {
	if a.Len() != b.Len() {
		return a.Len() < b.Len()
	}
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			return a.Nodes[i] < b.Nodes[i]
		}
	}
	return false
}

// SelectPaths picks measurement paths from the candidate pool: first a
// greedy pass adds any path that increases the routing-matrix rank
// (stand-in for the minimum monitor placement rule's path selection,
// DESIGN.md §5), then extra paths fill up to TargetPaths for redundancy.
// The achieved rank is returned alongside; callers decide whether a
// rank-deficient selection is fatal.
func SelectPaths(g *graph.Graph, monitors []graph.NodeID, opts SelectOptions) ([]graph.Path, int, error) {
	cands, err := CandidatePaths(g, monitors, opts)
	if err != nil {
		return nil, 0, err
	}
	if opts.RNG != nil {
		opts.RNG.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	nLinks := g.NumLinks()
	tracker := newRankTracker(nLinks)
	var selected []graph.Path
	var rest []graph.Path
	for _, p := range cands {
		if tracker.tryAdd(pathRow(p, nLinks)) {
			selected = append(selected, p)
		} else {
			rest = append(rest, p)
		}
	}
	rank := tracker.rank
	target := opts.TargetPaths
	if target <= 0 {
		target = len(selected) + max(1, len(selected)/4)
	}
	for _, p := range rest {
		if len(selected) >= target {
			break
		}
		selected = append(selected, p)
	}
	return selected, rank, nil
}

// pathRow renders a path as a routing-matrix row.
func pathRow(p graph.Path, nLinks int) []float64 {
	row := make([]float64, nLinks)
	for _, l := range p.Links {
		row[int(l)] = 1
	}
	return row
}

// rankTracker maintains a row-echelon basis for incremental rank
// queries: tryAdd reduces the row against the basis and keeps it only if
// a nonzero pivot remains.
type rankTracker struct {
	cols  int
	basis map[int][]float64 // pivot column → reduced row
	rank  int
}

func newRankTracker(cols int) *rankTracker {
	return &rankTracker{cols: cols, basis: make(map[int][]float64)}
}

const rankEps = 1e-9

func (rt *rankTracker) tryAdd(row []float64) bool {
	r := make([]float64, len(row))
	copy(r, row)
	for col := 0; col < rt.cols; col++ {
		if math.Abs(r[col]) <= rankEps {
			r[col] = 0
			continue
		}
		b, ok := rt.basis[col]
		if !ok {
			// Normalize and store.
			inv := 1 / r[col]
			for k := col; k < rt.cols; k++ {
				r[k] *= inv
			}
			rt.basis[col] = r
			rt.rank++
			return true
		}
		f := r[col]
		for k := col; k < rt.cols; k++ {
			r[k] -= f * b[k]
		}
	}
	return false
}

// PlaceOptions steer monitor placement.
type PlaceOptions struct {
	// Initial is the starting number of monitors (minimum 2; default 3).
	Initial int
	// MaxMonitors caps the search (default: all nodes).
	MaxMonitors int
	// Select carries path-selection options used at each step.
	Select SelectOptions
}

func (o PlaceOptions) initial() int {
	if o.Initial < 2 {
		return 3
	}
	return o.Initial
}

// PlaceMonitors randomly grows a monitor set until the candidate paths
// make every link identifiable (full column rank), following the
// paper's "random selection algorithm based on the minimum monitor
// placement rule in [16]". Degree-1 nodes are forced to be monitors
// first: a link ending in a degree-1 non-monitor can never appear on a
// monitor-to-monitor simple path, so identifiability is impossible
// without them. Returns the monitors, the selected paths, and the
// achieved rank (== NumLinks on success).
//
// Candidates are generated incrementally — only pairs involving the
// newly added monitor are explored on each growth step — so placement on
// hundred-node topologies stays fast. Paths rejected by the rank test
// stay in a redundancy pool; rejection is permanent because the basis
// only ever grows.
func PlaceMonitors(g *graph.Graph, rng *rand.Rand, opts PlaceOptions) ([]graph.NodeID, []graph.Path, int, error) {
	if rng == nil {
		return nil, nil, 0, fmt.Errorf("tomo: PlaceMonitors needs an RNG")
	}
	n := g.NumNodes()
	if n < 2 {
		return nil, nil, 0, fmt.Errorf("tomo: cannot place monitors on %d nodes", n)
	}
	maxMon := opts.MaxMonitors
	if maxMon <= 0 || maxMon > n {
		maxMon = n
	}
	nLinks := g.NumLinks()
	tracker := newRankTracker(nLinks)
	var (
		monitors []graph.NodeID
		inSet    = make(map[graph.NodeID]bool)
		selected []graph.Path
		pool     []graph.Path // candidates that did not raise the rank
	)
	// addMonitor explores paths between v and each existing monitor.
	addMonitor := func(v graph.NodeID) error {
		for _, u := range monitors {
			var (
				paths []graph.Path
				err   error
			)
			if opts.Select.Exhaustive {
				paths, err = graph.SimplePaths(g, u, v, opts.Select.MaxHops, 0)
			} else {
				paths, err = graph.KShortestPaths(g, u, v, opts.Select.perPair())
			}
			if err != nil {
				if errors.Is(err, graph.ErrNoPath) {
					continue
				}
				return err
			}
			if opts.Select.RNG != nil {
				opts.Select.RNG.Shuffle(len(paths), func(i, j int) { paths[i], paths[j] = paths[j], paths[i] })
			}
			for _, p := range paths {
				if tracker.tryAdd(pathRow(p, nLinks)) {
					selected = append(selected, p)
				} else {
					pool = append(pool, p)
				}
			}
		}
		inSet[v] = true
		monitors = append(monitors, v)
		return nil
	}
	opts.Select.RNG = rng

	// Degree-1 nodes must be monitors (see doc comment).
	for _, v := range g.Nodes() {
		if g.Degree(v) == 1 && len(monitors) < maxMon {
			if err := addMonitor(v); err != nil {
				return nil, nil, 0, err
			}
		}
	}
	perm := rng.Perm(n)
	pi := 0
	nextRandom := func() (graph.NodeID, bool) {
		for pi < n {
			v := graph.NodeID(perm[pi])
			pi++
			if !inSet[v] {
				return v, true
			}
		}
		return 0, false
	}
	for len(monitors) < opts.initial() {
		v, ok := nextRandom()
		if !ok {
			break
		}
		if err := addMonitor(v); err != nil {
			return nil, nil, 0, err
		}
	}
	for tracker.rank < nLinks && len(monitors) < maxMon {
		v, ok := nextRandom()
		if !ok {
			break
		}
		if err := addMonitor(v); err != nil {
			return nil, nil, 0, err
		}
	}

	// Fill redundancy paths from the pool up to the target.
	target := opts.Select.TargetPaths
	if target <= 0 {
		target = len(selected) + max(1, len(selected)/4)
	}
	if rng != nil {
		rng.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	for _, p := range pool {
		if len(selected) >= target {
			break
		}
		selected = append(selected, p)
	}
	return monitors, selected, tracker.rank, nil
}

// NodePresenceRatios returns, for every node, the fraction of
// measurement paths the node appears on. Section VI proposes minimizing
// the maximum of these as a security-aware placement objective: a
// compromised node that sits on few paths can manipulate few
// measurements.
func NodePresenceRatios(g *graph.Graph, paths []graph.Path) []float64 {
	counts := make([]float64, g.NumNodes())
	for _, p := range paths {
		for _, v := range p.Nodes {
			counts[v]++
		}
	}
	if len(paths) > 0 {
		inv := 1 / float64(len(paths))
		for i := range counts {
			counts[i] *= inv
		}
	}
	return counts
}

// InteriorPresenceRatios is NodePresenceRatios restricted to interior
// (non-endpoint) appearances. Endpoints are monitors that unavoidably
// sit on every one of their own paths, so the endpoint-dominated maximum
// is insensitive to the thing Section VI cares about: how many *other*
// nodes' measurements a compromised node can touch.
func InteriorPresenceRatios(g *graph.Graph, paths []graph.Path) []float64 {
	counts := make([]float64, g.NumNodes())
	for _, p := range paths {
		if len(p.Nodes) < 3 {
			continue
		}
		for _, v := range p.Nodes[1 : len(p.Nodes)-1] {
			counts[v]++
		}
	}
	if len(paths) > 0 {
		inv := 1 / float64(len(paths))
		for i := range counts {
			counts[i] *= inv
		}
	}
	return counts
}

// SelectPathsSecure performs rank-greedy selection like SelectPaths, but
// fills the redundancy quota with candidates that minimize the maximum
// node-presence ratio instead of taking them in pool order. This is the
// Section VI extension: identifiability first, then presence-ratio
// minimization.
func SelectPathsSecure(g *graph.Graph, monitors []graph.NodeID, opts SelectOptions) ([]graph.Path, int, error) {
	cands, err := CandidatePaths(g, monitors, opts)
	if err != nil {
		return nil, 0, err
	}
	if opts.RNG != nil {
		opts.RNG.Shuffle(len(cands), func(i, j int) { cands[i], cands[j] = cands[j], cands[i] })
	}
	nLinks := g.NumLinks()
	tracker := newRankTracker(nLinks)
	var selected, rest []graph.Path
	for _, p := range cands {
		if tracker.tryAdd(pathRow(p, nLinks)) {
			selected = append(selected, p)
		} else {
			rest = append(rest, p)
		}
	}
	rank := tracker.rank
	target := opts.TargetPaths
	if target <= 0 {
		target = len(selected) + max(1, len(selected)/4)
	}
	// Only interior appearances count: endpoint (monitor) presence is
	// unavoidable and would drown the objective.
	counts := make([]int, g.NumNodes())
	bump := func(p graph.Path, delta int) {
		if len(p.Nodes) < 3 {
			return
		}
		for _, v := range p.Nodes[1 : len(p.Nodes)-1] {
			counts[v] += delta
		}
	}
	for _, p := range selected {
		bump(p, 1)
	}
	maxCount := func() int {
		m := 0
		for _, c := range counts {
			if c > m {
				m = c
			}
		}
		return m
	}
	for len(selected) < target && len(rest) > 0 {
		bestIdx, bestScore := -1, math.MaxInt
		for i, p := range rest {
			bump(p, 1)
			if s := maxCount(); s < bestScore {
				bestScore, bestIdx = s, i
			}
			bump(p, -1)
		}
		p := rest[bestIdx]
		bump(p, 1)
		selected = append(selected, p)
		rest = append(rest[:bestIdx], rest[bestIdx+1:]...)
	}
	return selected, rank, nil
}
