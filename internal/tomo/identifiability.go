package tomo

import (
	"math"

	"repro/internal/la"
)

// IdentifiableLinks reports, per link, whether its metric is uniquely
// determined by the selected measurement paths: link l is identifiable
// iff the unit vector e_l lies in the row space of R. Operationally we
// test whether appending e_l to R's rows raises the rank — if it does,
// e_l carries new information, so x_l is NOT pinned down by the paths.
//
// On a full-column-rank system every entry is true; on deficient systems
// this pinpoints which links the operator can actually diagnose — and
// therefore which links can even serve as credible scapegoats.
func IdentifiableLinks(s *System) []bool {
	r := s.R()
	nLinks := s.NumLinks()
	baseRank := la.Rank(r)
	out := make([]bool, nLinks)
	if baseRank == nLinks {
		for i := range out {
			out[i] = true
		}
		return out
	}
	rows := make([][]float64, r.Rows())
	for i := range rows {
		rows[i] = r.Row(i)
	}
	for l := 0; l < nLinks; l++ {
		aug := la.NewMatrix(r.Rows()+1, nLinks)
		for i, row := range rows {
			if err := aug.SetRow(i, row); err != nil {
				panic("tomo: IdentifiableLinks: " + err.Error())
			}
		}
		unit := make(la.Vector, nLinks)
		unit[l] = 1
		if err := aug.SetRow(r.Rows(), unit); err != nil {
			panic("tomo: IdentifiableLinks: " + err.Error())
		}
		out[l] = la.Rank(aug) == baseRank
	}
	return out
}

// EstimateDeficient computes a minimum-norm-style estimate on systems
// that are not fully identifiable, by solving the normal equations with
// a small Tikhonov ridge: x̂ = (RᵀR + λI)⁻¹Rᵀy. Identifiable links get
// estimates close to Estimate's; unidentifiable ones get a smoothed
// compromise instead of an error. λ ≤ 0 selects a scale-aware default.
func EstimateDeficient(s *System, y la.Vector, lambda float64) (la.Vector, error) {
	r := s.R()
	rt := r.T()
	gram, err := rt.Mul(r)
	if err != nil {
		return nil, err
	}
	if lambda <= 0 {
		lambda = math.Max(1e-8, gram.MaxAbs()*1e-8)
	}
	n := gram.Rows()
	for i := 0; i < n; i++ {
		gram.Set(i, i, gram.At(i, i)+lambda)
	}
	chol, err := la.FactorCholesky(gram)
	if err != nil {
		return nil, err
	}
	rhs, err := rt.MulVec(y)
	if err != nil {
		return nil, err
	}
	return chol.Solve(rhs)
}
