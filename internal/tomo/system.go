package tomo

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// ErrNotIdentifiable is returned when the routing matrix lacks full
// column rank, i.e. the selected paths cannot distinguish all links.
var ErrNotIdentifiable = errors.New("tomo: link metrics not identifiable")

// ErrDenseSuppressed is returned (or carried in panics from the
// legacy dense accessors) when an operation requires the dense routing
// matrix or dense operator on a system built for sparse scale.
var ErrDenseSuppressed = errors.New("tomo: dense representation suppressed at sparse scale")

// DenseBudget caps the dense mirror of the routing matrix at
// paths×links entries. At or below the budget NewSystem keeps the dense
// R alongside the CSR form and estimation runs the bit-exact Cholesky/
// operator route; above it only the CSR form exists and estimation is
// matrix-free CGLS. The default (4Mi entries, 32 MiB) is far above
// every paper-scale scenario, so all existing experiments keep their
// bit-exact dense semantics, while ISP-scale systems never materialize
// a P×L or L×L dense array.
var DenseBudget int64 = 4 << 20

// System binds a topology to a set of measurement paths and exposes the
// paper's linear measurement model y = Rx (Eq. 1) and its least-squares
// inverse (Eq. 2).
//
// The routing matrix is held in CSR form always; a dense mirror exists
// only within DenseBudget. The solver — dense normal-equation Cholesky
// or matrix-free CGLS — is selected and built at most once per System
// and shared by every subsequent Estimate call; a System is safe for
// concurrent use once constructed.
type System struct {
	g     *graph.Graph
	paths []graph.Path
	sr    *sparse.CSR
	r     *la.Matrix // dense mirror; nil above DenseBudget

	sparseOpts sparse.Options
	onSolve    func(SolveStats)

	solverOnce sync.Once
	solver     Solver
	solverErr  error
}

// NewSystem validates the measurement paths against g (simple,
// well-formed, monitor endpoints are the caller's concern) and builds
// the routing matrix: CSR always, plus the dense mirror when
// paths×links fits DenseBudget.
func NewSystem(g *graph.Graph, paths []graph.Path) (*System, error) {
	return newSystem(g, paths, false)
}

// NewSparseSystem is NewSystem with the dense mirror unconditionally
// suppressed: the routing matrix exists only in CSR form and estimation
// always takes the matrix-free CGLS route, regardless of size. Tests
// use it to run the iterative path against the dense oracle at small
// scale; services can use it to force the O(nnz) footprint.
func NewSparseSystem(g *graph.Graph, paths []graph.Path) (*System, error) {
	return newSystem(g, paths, true)
}

func newSystem(g *graph.Graph, paths []graph.Path, forceSparse bool) (*System, error) {
	if g == nil {
		return nil, fmt.Errorf("tomo: nil graph")
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("tomo: no measurement paths")
	}
	nnz := 0
	for i, p := range paths {
		if err := p.Validate(g); err != nil {
			return nil, fmt.Errorf("tomo: path %d: %w", i, err)
		}
		nnz += p.Len()
	}
	ts := make([]sparse.Triplet, 0, nnz)
	for i, p := range paths {
		for _, l := range p.Links {
			ts = append(ts, sparse.Triplet{Row: i, Col: int(l), Val: 1})
		}
	}
	sr, err := sparse.FromTriplets(len(paths), g.NumLinks(), ts)
	if err != nil {
		return nil, fmt.Errorf("tomo: routing matrix: %w", err)
	}
	copied := make([]graph.Path, len(paths))
	for i, p := range paths {
		copied[i] = p.Clone()
	}
	s := &System{g: g, paths: copied, sr: sr}
	if !forceSparse && int64(len(paths))*int64(g.NumLinks()) <= DenseBudget {
		s.r = sr.Dense()
	}
	return s, nil
}

// RoutingMatrix builds the 0/1 matrix R with R[i][j] = 1 iff link j lies
// on path i (Eq. 1), densely. Scale-conscious callers use the CSR form
// on System instead.
func RoutingMatrix(g *graph.Graph, paths []graph.Path) *la.Matrix {
	r := la.NewMatrix(len(paths), g.NumLinks())
	for i, p := range paths {
		for _, l := range p.Links {
			r.Set(i, int(l), 1)
		}
	}
	return r
}

// Graph returns the underlying topology.
func (s *System) Graph() *graph.Graph { return s.g }

// Paths returns the measurement paths (shared slice; callers must not
// mutate).
func (s *System) Paths() []graph.Path { return s.paths }

// NumPaths returns |P|.
func (s *System) NumPaths() int { return len(s.paths) }

// NumLinks returns |L|.
func (s *System) NumLinks() int { return s.g.NumLinks() }

// R returns the dense routing matrix (shared; callers must not
// mutate). It panics with ErrDenseSuppressed on a sparse-scale system:
// materializing P×L dense storage there is exactly the OOM this
// subsystem exists to prevent, and every legitimate R() consumer (the
// attack LPs, identifiability analysis, weighted estimation) operates
// at dense scale.
func (s *System) R() *la.Matrix {
	if s.r == nil {
		panic(fmt.Sprintf("%v: %d paths × %d links exceeds DenseBudget %d; use CSR()",
			ErrDenseSuppressed, len(s.paths), s.g.NumLinks(), DenseBudget))
	}
	return s.r
}

// CSR returns the routing matrix in compressed-sparse-row form
// (shared; callers must not mutate). Present on every system.
func (s *System) CSR() *sparse.CSR { return s.sr }

// Dense reports whether the dense mirror (and therefore the bit-exact
// Cholesky/operator route) is available.
func (s *System) Dense() bool { return s.r != nil }

// Rank returns the numerical rank of R. Dense-scale systems only (it
// runs a dense factorization); see R.
func (s *System) Rank() int { return la.Rank(s.R()) }

// Identifiable reports whether R has full column rank, the paper's
// prerequisite for Eq. 2. On sparse-scale systems the check is the
// matrix-free screen used at solver construction (column coverage plus
// a CondEst rank estimate) rather than a dense rank computation.
func (s *System) Identifiable() bool {
	if s.r != nil {
		return s.Rank() == s.g.NumLinks()
	}
	_, err := s.Solver()
	return err == nil
}

// SetSparseOptions overrides the iterative solver's tolerance and
// iteration budget. It must be called before the first Factor, Solver,
// or Estimate call; after the solver is built it has no effect.
func (s *System) SetSparseOptions(opts sparse.Options) { s.sparseOpts = opts }

// SetSolveObserver installs a callback invoked with the statistics of
// every iterative solve (dense solves report nothing — they have no
// iteration count). Services install their metrics feed here at
// registration time. Not synchronized: set it before the system is
// shared across goroutines.
func (s *System) SetSolveObserver(f func(SolveStats)) { s.onSolve = f }

// Solver returns the least-squares engine for this system, selecting
// and building it at most once: the normal-equation Cholesky
// factorization when the dense mirror exists, matrix-free CGLS
// otherwise. Fails with ErrNotIdentifiable when R lacks full column
// rank (for the sparse route: fails the matrix-free rank screen).
func (s *System) Solver() (Solver, error) {
	return s.SolverCtx(context.Background())
}

// SolverCtx is Solver under trace propagation: the factorization spans
// ("la.factor_normal" or "tomo.sparse_factor") appear only on the call
// that actually builds the engine.
func (s *System) SolverCtx(ctx context.Context) (Solver, error) {
	s.solverOnce.Do(func() {
		if s.r != nil {
			fac, err := la.FactorNormalCtx(ctx, s.r)
			if err != nil {
				if errors.Is(err, la.ErrNotSPD) {
					err = fmt.Errorf("%w: %v", ErrNotIdentifiable, err)
				}
				s.solverErr = err
				return
			}
			s.solver = denseSolver{fac: fac}
			return
		}
		sv, err := newSparseSolver(ctx, s.sr, s.sparseOpts)
		if err != nil {
			s.solverErr = err
			return
		}
		s.solver = sv
	})
	return s.solver, s.solverErr
}

// Factor returns the dense normal-equation factorization of R,
// computing it at most once and reusing it for every later call. Fails
// with ErrNotIdentifiable when R lacks full column rank and with
// ErrDenseSuppressed on sparse-scale systems, whose engine has no dense
// factor — callers that only need a solve should use Solver or
// Estimate, which work on both routes.
func (s *System) Factor() (*la.NormalFactor, error) {
	return s.FactorCtx(context.Background())
}

// FactorCtx is Factor under a trace span: the "la.factor_normal" span
// appears in the trace only on the call that actually factors — warm
// calls add nothing.
func (s *System) FactorCtx(ctx context.Context) (*la.NormalFactor, error) {
	sv, err := s.SolverCtx(ctx)
	if err != nil {
		return nil, err
	}
	ds, ok := sv.(denseSolver)
	if !ok {
		return nil, fmt.Errorf("%w: no dense factor on the %s route", ErrDenseSuppressed, sv.Method())
	}
	return ds.fac, nil
}

// AdoptFactor installs a precomputed normal-equation factorization —
// typically one cached under this system's Digest by a long-lived
// service — so that Factor and Estimate skip factorization entirely. It
// rejects a factor whose dimensions do not match R. If this system has
// already built (or adopted) its solver, the call is a no-op.
func (s *System) AdoptFactor(fac *la.NormalFactor) error {
	if fac == nil {
		return fmt.Errorf("tomo: AdoptFactor: nil factor")
	}
	return s.AdoptSolver(denseSolver{fac: fac})
}

// AdoptSolver installs a prebuilt solver (dense or iterative) from a
// digest-keyed cache, so this system skips factorization/screening
// entirely. It rejects a solver whose dimensions do not match R. If
// this system has already built (or adopted) its solver, the call is a
// no-op.
func (s *System) AdoptSolver(sv Solver) error {
	if sv == nil {
		return fmt.Errorf("tomo: AdoptSolver: nil solver")
	}
	if sv.Rows() != s.sr.Rows() || sv.Cols() != s.sr.Cols() {
		return fmt.Errorf("tomo: AdoptSolver: solver is %d×%d, routing matrix is %d×%d",
			sv.Rows(), sv.Cols(), s.sr.Rows(), s.sr.Cols())
	}
	s.solverOnce.Do(func() { s.solver = sv })
	return nil
}

// Operator returns T = (RᵀR)⁻¹Rᵀ, materialized once per factorization
// and shared afterwards (systems that adopted a cached factor share the
// operator too). Fails with ErrNotIdentifiable when R lacks full column
// rank, and with ErrDenseSuppressed on sparse-scale systems — the dense
// L×P operator is precisely what the sparse route exists to avoid.
func (s *System) Operator() (*la.Matrix, error) {
	return s.OperatorCtx(context.Background())
}

// OperatorCtx is Operator under a trace span (factorization and
// materialization spans fire only on the calls that do the work).
func (s *System) OperatorCtx(ctx context.Context) (*la.Matrix, error) {
	fac, err := s.FactorCtx(ctx)
	if err != nil {
		return nil, err
	}
	return fac.OperatorCtx(ctx)
}

// mulR applies R·x through the dense mirror when it exists (bit-exact
// with the historical path for finite inputs) and the CSR form
// otherwise.
func (s *System) mulR(x la.Vector) (la.Vector, error) {
	if s.r != nil {
		return s.r.MulVec(x)
	}
	return s.sr.MulVec(x)
}

// Measure applies the forward model: y = Rx for true link metrics x.
func (s *System) Measure(x la.Vector) (la.Vector, error) {
	y, err := s.mulR(x)
	if err != nil {
		return nil, fmt.Errorf("tomo: Measure: %w", err)
	}
	return y, nil
}

// Estimate inverts measurements into link metrics: x̂ = (RᵀR)⁻¹Rᵀy
// (Eq. 2). On the dense route the operator is materialized from the
// cached factorization on first use, so steady-state estimates are a
// single matvec; applying T (rather than back-substituting through the
// factor) keeps estimates bit-identical to the attack-LP construction,
// which reads T's entries — the two differ by rounding, and
// classification thresholds can sit exactly on an LP bound. On the
// sparse route each estimate is a matrix-free CGLS solve under the
// system's tolerance/iteration budget, with explicit non-convergence
// errors.
func (s *System) Estimate(y la.Vector) (la.Vector, error) {
	return s.EstimateCtx(context.Background(), y)
}

// EstimateCtx is Estimate under a "tomo.solve" trace span annotated with
// the system shape; cold-start factorization/materialization (or the
// CGLS iteration span) appear as children when they actually run.
func (s *System) EstimateCtx(ctx context.Context, y la.Vector) (la.Vector, error) {
	ctx, span := obs.StartSpan(ctx, "tomo.solve")
	defer span.End()
	span.SetInt("paths", s.NumPaths())
	span.SetInt("links", s.NumLinks())
	sv, err := s.SolverCtx(ctx)
	if err != nil {
		return nil, err
	}
	xhat, stats, err := sv.SolveCtx(ctx, y)
	if stats != nil && s.onSolve != nil {
		s.onSolve(*stats)
	}
	if err != nil {
		return nil, err
	}
	return xhat, nil
}

// Residual returns R·x̂ − y, the inconsistency vector the paper's
// detection method tests (Eq. 23).
func (s *System) Residual(xhat, y la.Vector) (la.Vector, error) {
	rx, err := s.mulR(xhat)
	if err != nil {
		return nil, fmt.Errorf("tomo: Residual: %w", err)
	}
	res, err := rx.Sub(y)
	if err != nil {
		return nil, fmt.Errorf("tomo: Residual: %w", err)
	}
	return res, nil
}

// PathsWithLink returns the indices of measurement paths containing
// link l.
func (s *System) PathsWithLink(l graph.LinkID) []int {
	var out []int
	for i, p := range s.paths {
		if p.HasLink(l) {
			out = append(out, i)
		}
	}
	return out
}

// PathsWithAnyNode returns the indices of measurement paths touching any
// node in set — the paths an attacker set can manipulate (Constraint 1).
func (s *System) PathsWithAnyNode(set map[graph.NodeID]bool) []int {
	var out []int
	for i, p := range s.paths {
		if p.HasAnyNode(set) {
			out = append(out, i)
		}
	}
	return out
}
