package tomo

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/obs"
)

// ErrNotIdentifiable is returned when the routing matrix lacks full
// column rank, i.e. the selected paths cannot distinguish all links.
var ErrNotIdentifiable = errors.New("tomo: link metrics not identifiable")

// System binds a topology to a set of measurement paths and exposes the
// paper's linear measurement model y = Rx (Eq. 1) and its least-squares
// inverse (Eq. 2).
//
// The normal-equation factorization and the dense operator are computed
// at most once per System and shared by every subsequent Estimate and
// Operator call; a System is safe for concurrent use once constructed.
type System struct {
	g     *graph.Graph
	paths []graph.Path
	r     *la.Matrix

	facOnce sync.Once
	fac     *la.NormalFactor
	facErr  error
}

// NewSystem validates the measurement paths against g (simple,
// well-formed, monitor endpoints are the caller's concern) and builds
// the routing matrix.
func NewSystem(g *graph.Graph, paths []graph.Path) (*System, error) {
	if g == nil {
		return nil, fmt.Errorf("tomo: nil graph")
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("tomo: no measurement paths")
	}
	for i, p := range paths {
		if err := p.Validate(g); err != nil {
			return nil, fmt.Errorf("tomo: path %d: %w", i, err)
		}
	}
	r := RoutingMatrix(g, paths)
	copied := make([]graph.Path, len(paths))
	for i, p := range paths {
		copied[i] = p.Clone()
	}
	return &System{g: g, paths: copied, r: r}, nil
}

// RoutingMatrix builds the 0/1 matrix R with R[i][j] = 1 iff link j lies
// on path i (Eq. 1).
func RoutingMatrix(g *graph.Graph, paths []graph.Path) *la.Matrix {
	r := la.NewMatrix(len(paths), g.NumLinks())
	for i, p := range paths {
		for _, l := range p.Links {
			r.Set(i, int(l), 1)
		}
	}
	return r
}

// Graph returns the underlying topology.
func (s *System) Graph() *graph.Graph { return s.g }

// Paths returns the measurement paths (shared slice; callers must not
// mutate).
func (s *System) Paths() []graph.Path { return s.paths }

// NumPaths returns |P|.
func (s *System) NumPaths() int { return len(s.paths) }

// NumLinks returns |L|.
func (s *System) NumLinks() int { return s.g.NumLinks() }

// R returns the routing matrix (shared; callers must not mutate).
func (s *System) R() *la.Matrix { return s.r }

// Rank returns the numerical rank of R.
func (s *System) Rank() int { return la.Rank(s.r) }

// Identifiable reports whether R has full column rank, the paper's
// prerequisite for Eq. 2.
func (s *System) Identifiable() bool { return s.Rank() == s.g.NumLinks() }

// Factor returns the normal-equation factorization of R, computing it at
// most once (sync.Once) and reusing it for every later call. Fails with
// ErrNotIdentifiable when R lacks full column rank. The returned factor
// is immutable and safe to share across goroutines and Systems.
func (s *System) Factor() (*la.NormalFactor, error) {
	return s.FactorCtx(context.Background())
}

// FactorCtx is Factor under a trace span: the "la.factor_normal" span
// appears in the trace only on the call that actually factors — warm
// calls add nothing.
func (s *System) FactorCtx(ctx context.Context) (*la.NormalFactor, error) {
	s.facOnce.Do(func() {
		fac, err := la.FactorNormalCtx(ctx, s.r)
		if err != nil {
			if errors.Is(err, la.ErrNotSPD) {
				err = fmt.Errorf("%w: %v", ErrNotIdentifiable, err)
			}
			s.facErr = err
			return
		}
		s.fac = fac
	})
	return s.fac, s.facErr
}

// AdoptFactor installs a precomputed normal-equation factorization —
// typically one cached under this system's Digest by a long-lived
// service — so that Factor and Estimate skip factorization entirely. It
// rejects a factor whose dimensions do not match R. If this system has
// already factored (or adopted), the call is a no-op.
func (s *System) AdoptFactor(fac *la.NormalFactor) error {
	if fac == nil {
		return fmt.Errorf("tomo: AdoptFactor: nil factor")
	}
	if fac.Rows() != s.r.Rows() || fac.Cols() != s.r.Cols() {
		return fmt.Errorf("tomo: AdoptFactor: factor is %d×%d, routing matrix is %d×%d",
			fac.Rows(), fac.Cols(), s.r.Rows(), s.r.Cols())
	}
	s.facOnce.Do(func() { s.fac = fac })
	return nil
}

// Operator returns T = (RᵀR)⁻¹Rᵀ, materialized once per factorization
// and shared afterwards (systems that adopted a cached factor share the
// operator too). Fails with ErrNotIdentifiable when R lacks full column
// rank.
func (s *System) Operator() (*la.Matrix, error) {
	return s.OperatorCtx(context.Background())
}

// OperatorCtx is Operator under a trace span (factorization and
// materialization spans fire only on the calls that do the work).
func (s *System) OperatorCtx(ctx context.Context) (*la.Matrix, error) {
	fac, err := s.FactorCtx(ctx)
	if err != nil {
		return nil, err
	}
	return fac.OperatorCtx(ctx)
}

// Measure applies the forward model: y = Rx for true link metrics x.
func (s *System) Measure(x la.Vector) (la.Vector, error) {
	y, err := s.r.MulVec(x)
	if err != nil {
		return nil, fmt.Errorf("tomo: Measure: %w", err)
	}
	return y, nil
}

// Estimate inverts measurements into link metrics: x̂ = (RᵀR)⁻¹Rᵀy
// (Eq. 2). The operator is materialized from the cached factorization on
// first use, so steady-state estimates are a single matvec. Applying T
// (rather than back-substituting through the factor) keeps estimates
// bit-identical to the attack-LP construction, which reads T's entries;
// the two differ by rounding, and classification thresholds can sit
// exactly on an LP bound.
func (s *System) Estimate(y la.Vector) (la.Vector, error) {
	return s.EstimateCtx(context.Background(), y)
}

// EstimateCtx is Estimate under a "tomo.solve" trace span annotated with
// the system shape; cold-start factorization/materialization appear as
// children when they actually run.
func (s *System) EstimateCtx(ctx context.Context, y la.Vector) (la.Vector, error) {
	ctx, span := obs.StartSpan(ctx, "tomo.solve")
	defer span.End()
	span.SetInt("paths", s.NumPaths())
	span.SetInt("links", s.NumLinks())
	t, err := s.OperatorCtx(ctx)
	if err != nil {
		return nil, err
	}
	xhat, err := t.MulVec(y)
	if err != nil {
		return nil, fmt.Errorf("tomo: Estimate: %w", err)
	}
	return xhat, nil
}

// Residual returns R·x̂ − y, the inconsistency vector the paper's
// detection method tests (Eq. 23).
func (s *System) Residual(xhat, y la.Vector) (la.Vector, error) {
	rx, err := s.r.MulVec(xhat)
	if err != nil {
		return nil, fmt.Errorf("tomo: Residual: %w", err)
	}
	res, err := rx.Sub(y)
	if err != nil {
		return nil, fmt.Errorf("tomo: Residual: %w", err)
	}
	return res, nil
}

// PathsWithLink returns the indices of measurement paths containing
// link l.
func (s *System) PathsWithLink(l graph.LinkID) []int {
	var out []int
	for i, p := range s.paths {
		if p.HasLink(l) {
			out = append(out, i)
		}
	}
	return out
}

// PathsWithAnyNode returns the indices of measurement paths touching any
// node in set — the paths an attacker set can manipulate (Constraint 1).
func (s *System) PathsWithAnyNode(set map[graph.NodeID]bool) []int {
	var out []int
	for i, p := range s.paths {
		if p.HasAnyNode(set) {
			out = append(out, i)
		}
	}
	return out
}
