package tomo

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/topo"
)

func TestCandidatePathsFig1(t *testing.T) {
	f := topo.Fig1()
	cands, err := CandidatePaths(f.G, f.Monitors, SelectOptions{Exhaustive: true})
	if err != nil {
		t.Fatalf("CandidatePaths: %v", err)
	}
	if len(cands) < 23 {
		t.Errorf("candidates = %d, want ≥ 23", len(cands))
	}
	for i, p := range cands {
		if err := p.Validate(f.G); err != nil {
			t.Errorf("candidate %d invalid: %v", i, err)
		}
		// Sorted by length.
		if i > 0 && p.Len() < cands[i-1].Len() {
			t.Errorf("candidates unsorted at %d", i)
		}
	}
}

func TestCandidatePathsErrors(t *testing.T) {
	f := topo.Fig1()
	if _, err := CandidatePaths(f.G, []graph.NodeID{f.M1}, SelectOptions{}); err == nil {
		t.Error("single monitor accepted")
	}
	if _, err := CandidatePaths(f.G, []graph.NodeID{f.M1, f.M1}, SelectOptions{}); err == nil {
		t.Error("duplicate monitor accepted")
	}
	g := graph.New()
	a, b := g.AddNode("a"), g.AddNode("b")
	if _, err := CandidatePaths(g, []graph.NodeID{a, b}, SelectOptions{}); err == nil {
		t.Error("disconnected monitors accepted")
	}
}

func TestSelectPathsReachesFullRank(t *testing.T) {
	f := topo.Fig1()
	paths, rank, err := SelectPaths(f.G, f.Monitors, SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		t.Fatalf("SelectPaths: %v", err)
	}
	if rank != 10 {
		t.Errorf("rank = %d, want 10", rank)
	}
	if len(paths) != 23 {
		t.Errorf("selected = %d, want 23", len(paths))
	}
	r := RoutingMatrix(f.G, paths)
	s, err := NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Identifiable() {
		t.Errorf("selection not identifiable (R is %d×%d)", r.Rows(), r.Cols())
	}
}

func TestSelectPathsRandomizedStillFullRank(t *testing.T) {
	f := topo.Fig1()
	for seed := int64(0); seed < 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		_, rank, err := SelectPaths(f.G, f.Monitors, SelectOptions{Exhaustive: true, TargetPaths: 23, RNG: rng})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if rank != 10 {
			t.Errorf("seed %d: rank = %d, want 10", seed, rank)
		}
	}
}

func TestSelectPathsDefaultTarget(t *testing.T) {
	f := topo.Fig1()
	paths, rank, err := SelectPaths(f.G, f.Monitors, SelectOptions{Exhaustive: true})
	if err != nil {
		t.Fatalf("SelectPaths: %v", err)
	}
	// Default adds ≥ 1 redundancy path beyond the rank-greedy set.
	if len(paths) <= rank {
		t.Errorf("selected %d paths with rank %d; want redundancy", len(paths), rank)
	}
}

func TestRankTracker(t *testing.T) {
	rt := newRankTracker(3)
	if !rt.tryAdd([]float64{1, 0, 0}) {
		t.Error("first row rejected")
	}
	if !rt.tryAdd([]float64{1, 1, 0}) {
		t.Error("independent row rejected")
	}
	if rt.tryAdd([]float64{2, 1, 0}) {
		t.Error("dependent row accepted")
	}
	if !rt.tryAdd([]float64{0, 0, 5}) {
		t.Error("third independent row rejected")
	}
	if rt.rank != 3 {
		t.Errorf("rank = %d, want 3", rt.rank)
	}
	if rt.tryAdd([]float64{1, 2, 3}) {
		t.Error("row accepted beyond full rank")
	}
}

func TestPlaceMonitorsFig1(t *testing.T) {
	f := topo.Fig1()
	rng := rand.New(rand.NewSource(1))
	monitors, paths, rank, err := PlaceMonitors(f.G, rng, PlaceOptions{
		Select: SelectOptions{Exhaustive: true},
	})
	if err != nil {
		t.Fatalf("PlaceMonitors: %v", err)
	}
	if rank != f.G.NumLinks() {
		t.Errorf("rank = %d, want %d", rank, f.G.NumLinks())
	}
	// M2 has degree 1, so it must be a monitor.
	found := false
	for _, m := range monitors {
		if m == f.M2 {
			found = true
		}
	}
	if !found {
		t.Error("degree-1 node M2 not selected as monitor")
	}
	if len(paths) == 0 {
		t.Error("no paths selected")
	}
}

func TestPlaceMonitorsISP(t *testing.T) {
	g, err := topo.ISP(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	_, paths, rank, err := PlaceMonitors(g, rng, PlaceOptions{
		Initial: 10,
		Select:  SelectOptions{PerPair: 8},
	})
	if err != nil {
		t.Fatalf("PlaceMonitors: %v", err)
	}
	if rank != g.NumLinks() {
		t.Errorf("rank = %d, want %d (full identifiability)", rank, g.NumLinks())
	}
	s, err := NewSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Identifiable() {
		t.Error("ISP system not identifiable")
	}
	if s.NumPaths() <= s.NumLinks() {
		t.Errorf("R square or under-determined (%d×%d); detection needs redundancy", s.NumPaths(), s.NumLinks())
	}
}

func TestPlaceMonitorsErrors(t *testing.T) {
	f := topo.Fig1()
	if _, _, _, err := PlaceMonitors(f.G, nil, PlaceOptions{}); err == nil {
		t.Error("nil RNG accepted")
	}
	g := graph.New()
	g.AddNode("only")
	if _, _, _, err := PlaceMonitors(g, rand.New(rand.NewSource(1)), PlaceOptions{}); err == nil {
		t.Error("1-node graph accepted")
	}
}

func TestNodePresenceRatios(t *testing.T) {
	f := topo.Fig1()
	paths, _, err := SelectPaths(f.G, f.Monitors, SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		t.Fatal(err)
	}
	ratios := NodePresenceRatios(f.G, paths)
	if len(ratios) != f.G.NumNodes() {
		t.Fatalf("ratios = %d, want %d", len(ratios), f.G.NumNodes())
	}
	for v, r := range ratios {
		if r < 0 || r > 1 {
			t.Errorf("node %d ratio %g outside [0,1]", v, r)
		}
	}
	// Monitors appear on their own paths; M1 must be present on some.
	if ratios[f.M1] == 0 {
		t.Error("M1 presence 0")
	}
	if got := NodePresenceRatios(f.G, nil); len(got) != f.G.NumNodes() {
		t.Error("empty path set mishandled")
	}
}

func TestSelectPathsSecureLowersPresence(t *testing.T) {
	f := topo.Fig1()
	opts := SelectOptions{Exhaustive: true, TargetPaths: 23}
	plain, rankP, err := SelectPaths(f.G, f.Monitors, opts)
	if err != nil {
		t.Fatal(err)
	}
	secure, rankS, err := SelectPathsSecure(f.G, f.Monitors, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rankS != rankP {
		t.Errorf("secure rank = %d, plain rank = %d", rankS, rankP)
	}
	if len(secure) != len(plain) {
		t.Errorf("secure selected %d, plain %d", len(secure), len(plain))
	}
	maxOf := func(paths []graph.Path) float64 {
		var m float64
		// Exclude monitors: they sit on every own path by construction.
		isMon := map[graph.NodeID]bool{f.M1: true, f.M2: true, f.M3: true}
		for v, r := range NodePresenceRatios(f.G, paths) {
			if !isMon[graph.NodeID(v)] && r > m {
				m = r
			}
		}
		return m
	}
	if maxOf(secure) > maxOf(plain)+1e-9 {
		t.Errorf("secure max presence %.3f worse than plain %.3f", maxOf(secure), maxOf(plain))
	}
}
