package tomo

import (
	"strings"
	"testing"

	"repro/internal/topo"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	f, s := fig1System(t)
	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadSystem(f.G, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("LoadSystem: %v", err)
	}
	if loaded.NumPaths() != s.NumPaths() {
		t.Fatalf("paths = %d, want %d", loaded.NumPaths(), s.NumPaths())
	}
	for i, p := range loaded.Paths() {
		if !p.Equal(s.Paths()[i]) {
			t.Errorf("path %d differs after round trip", i)
		}
	}
	if !loaded.R().Equal(s.R(), 0) {
		t.Error("routing matrix differs after round trip")
	}
	if !loaded.Identifiable() {
		t.Error("round-tripped system lost identifiability")
	}
}

func TestLoadSystemRejects(t *testing.T) {
	f := topo.Fig1()
	cases := []struct {
		name string
		doc  string
	}{
		{"garbage", "not json"},
		{"bad version", `{"version": 99, "paths": [["M1","A"]]}`},
		{"no paths", `{"version": 1, "paths": []}`},
		{"short path", `{"version": 1, "paths": [["M1"]]}`},
		{"unknown node", `{"version": 1, "paths": [["M1","ZZZ"]]}`},
		{"no link", `{"version": 1, "paths": [["M1","D"]]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := LoadSystem(f.G, strings.NewReader(tc.doc)); err == nil {
				t.Errorf("accepted %q", tc.doc)
			}
		})
	}
}

func TestLoadSystemAgainstWrongTopology(t *testing.T) {
	// A config saved on Fig1 must not load against Abilene (names differ).
	_, s := fig1System(t)
	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSystem(topo.Abilene(), strings.NewReader(buf.String())); err == nil {
		t.Error("Fig1 config loaded against Abilene")
	}
}

func TestDigestStableAndDiscriminating(t *testing.T) {
	f, s := fig1System(t)
	d1 := s.Digest()
	if d1 == "" || d1 != s.Digest() {
		t.Fatalf("digest not stable: %q vs %q", d1, s.Digest())
	}
	// Same topology and paths, rebuilt from scratch: same R, same digest.
	s2, err := NewSystem(f.G, s.Paths())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if s2.Digest() != d1 {
		t.Errorf("identical systems digest differently")
	}
	// Dropping a path changes R and must change the digest.
	s3, err := NewSystem(f.G, s.Paths()[:len(s.Paths())-1])
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if s3.Digest() == d1 {
		t.Errorf("different routing matrices share a digest")
	}
}

func TestDigestSurvivesSaveLoad(t *testing.T) {
	f, s := fig1System(t)
	var buf strings.Builder
	if err := s.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := LoadSystem(f.G, strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("LoadSystem: %v", err)
	}
	if loaded.Digest() != s.Digest() {
		t.Errorf("digest changed across save/load round trip")
	}
}
