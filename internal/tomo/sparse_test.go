package tomo

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/sparse"
	"repro/internal/topo"
)

// fig1SparsePair builds the Fig. 1 measurement system twice: once on the
// default (dense) route and once with the dense mirror suppressed, so
// the iterative path can be held against the bit-exact oracle.
func fig1SparsePair(t *testing.T) (*System, *System) {
	t.Helper()
	f := topo.Fig1()
	paths, _, err := SelectPaths(f.G, f.Monitors, SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		t.Fatalf("SelectPaths: %v", err)
	}
	dense, err := NewSystem(f.G, paths)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	sp, err := NewSparseSystem(f.G, paths)
	if err != nil {
		t.Fatalf("NewSparseSystem: %v", err)
	}
	return dense, sp
}

func TestSparseSystemSuppressesDense(t *testing.T) {
	dense, sp := fig1SparsePair(t)
	if !dense.Dense() {
		t.Fatal("paper-scale system lost its dense mirror")
	}
	if sp.Dense() {
		t.Fatal("NewSparseSystem kept a dense mirror")
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("R() on a sparse system did not panic")
		}
		if !strings.Contains(r.(string), ErrDenseSuppressed.Error()) {
			t.Fatalf("panic %q does not mention ErrDenseSuppressed", r)
		}
	}()
	sp.R()
}

func TestSparseFactorSuppressed(t *testing.T) {
	_, sp := fig1SparsePair(t)
	if _, err := sp.Factor(); !errors.Is(err, ErrDenseSuppressed) {
		t.Fatalf("Factor err = %v, want ErrDenseSuppressed", err)
	}
	if _, err := sp.Operator(); !errors.Is(err, ErrDenseSuppressed) {
		t.Fatalf("Operator err = %v, want ErrDenseSuppressed", err)
	}
}

func TestSparseEstimateAgreesWithDenseOracle(t *testing.T) {
	dense, sp := fig1SparsePair(t)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		x := make(la.Vector, dense.NumLinks())
		for i := range x {
			x[i] = rng.Float64() * 10
		}
		y, err := dense.Measure(x)
		if err != nil {
			t.Fatal(err)
		}
		want, err := dense.Estimate(y)
		if err != nil {
			t.Fatal(err)
		}
		got, err := sp.Estimate(y)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want, 1e-7) {
			t.Fatalf("trial %d: sparse %v vs dense %v", trial, got, want)
		}
	}
}

func TestSparseEstimateOnBackbone(t *testing.T) {
	g, err := topo.Backbone(9, 600)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := topo.BackbonePaths(g, 60, 9)
	if err != nil {
		t.Fatal(err)
	}
	dense, err := NewSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := NewSparseSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	if !sp.Identifiable() {
		t.Fatal("backbone mesh not identifiable on the sparse route")
	}
	rng := rand.New(rand.NewSource(42))
	x := make(la.Vector, g.NumLinks())
	for i := range x {
		x[i] = 1 + rng.Float64()
	}
	y, err := sp.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	want, err := dense.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sp.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want, 1e-6) {
		t.Fatal("sparse estimate disagrees with dense oracle on backbone mesh")
	}
	if !got.Equal(x, 1e-6) {
		t.Fatal("noise-free backbone estimate did not recover the true metrics")
	}
}

func TestSparseDigestMatchesDense(t *testing.T) {
	// The digest keys solver caches and WAL records; it must not depend
	// on which representation the system holds.
	dense, sp := fig1SparsePair(t)
	if dense.Digest() != sp.Digest() {
		t.Fatalf("digest differs by representation: dense %s sparse %s", dense.Digest(), sp.Digest())
	}
}

func TestSparseRankDeficiencyParity(t *testing.T) {
	// Two identical paths covering both links: full coverage, rank 1.
	// The dense route (Cholesky ErrNotSPD) and the sparse route (CondEst
	// screen) must both classify it ErrNotIdentifiable.
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	l0, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := g.AddLink(b, c)
	if err != nil {
		t.Fatal(err)
	}
	p := graph.Path{Nodes: []graph.NodeID{a, b, c}, Links: []graph.LinkID{l0, l1}}
	paths := []graph.Path{p, p.Clone()}

	dense, err := NewSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dense.Solver(); !errors.Is(err, ErrNotIdentifiable) {
		t.Fatalf("dense route: err = %v, want ErrNotIdentifiable", err)
	}
	sp, err := NewSparseSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sp.Solver(); !errors.Is(err, ErrNotIdentifiable) {
		t.Fatalf("sparse route: err = %v, want ErrNotIdentifiable", err)
	}
	if sp.Identifiable() {
		t.Fatal("rank-deficient sparse system claims identifiability")
	}
}

func TestSparseUncoveredLinkRejected(t *testing.T) {
	// A link on no path fails the coverage screen with a message naming
	// the link, rather than burning a CondEst on a hopeless system.
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	c := g.AddNode("c")
	l0, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.AddLink(b, c); err != nil {
		t.Fatal(err)
	}
	p := graph.Path{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{l0}}
	sp, err := NewSparseSystem(g, []graph.Path{p, p.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	_, serr := sp.Solver()
	if !errors.Is(serr, ErrNotIdentifiable) {
		t.Fatalf("err = %v, want ErrNotIdentifiable", serr)
	}
	if !strings.Contains(serr.Error(), "on no measurement path") {
		t.Fatalf("error %q does not name the coverage failure", serr)
	}
}

func TestSparseNonConvergenceSurfaces(t *testing.T) {
	_, sp := fig1SparsePair(t)
	sp.SetSparseOptions(sparse.Options{Tol: 1e-15, MaxIter: 1, CondLimit: 1e30})
	y := make(la.Vector, sp.NumPaths())
	for i := range y {
		y[i] = float64(i + 1)
	}
	_, err := sp.Estimate(y)
	if !errors.Is(err, sparse.ErrNotConverged) {
		t.Fatalf("err = %v, want ErrNotConverged", err)
	}
}

func TestSparseSolveObserver(t *testing.T) {
	_, sp := fig1SparsePair(t)
	var seen []SolveStats
	sp.SetSolveObserver(func(st SolveStats) { seen = append(seen, st) })
	y := make(la.Vector, sp.NumPaths())
	for i := range y {
		y[i] = float64(i%5) + 1
	}
	for k := 0; k < 3; k++ {
		if _, err := sp.Estimate(y); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("observer saw %d solves, want 3", len(seen))
	}
	for _, st := range seen {
		if st.Method != "cgls" || !st.Converged || st.Iterations <= 0 {
			t.Fatalf("implausible stats: %+v", st)
		}
	}
}

func TestSparseAdoptSolverShared(t *testing.T) {
	dense, sp := fig1SparsePair(t)
	sv, err := sp.Solver()
	if err != nil {
		t.Fatal(err)
	}
	// A second system with the same routing matrix adopts the solver and
	// produces identical estimates without re-screening.
	f := topo.Fig1()
	other, err := NewSparseSystem(f.G, sp.Paths())
	if err != nil {
		t.Fatal(err)
	}
	if err := other.AdoptSolver(sv); err != nil {
		t.Fatalf("AdoptSolver: %v", err)
	}
	y := make(la.Vector, sp.NumPaths())
	for i := range y {
		y[i] = float64(i + 1)
	}
	x1, err := sp.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := other.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatal("adopted solver produced different estimate")
		}
	}
	// Dimension mismatch is rejected.
	if err := dense.AdoptSolver(sv); err != nil {
		t.Fatal("matching dims rejected") // same R: should be a no-op accept
	}
	g := graph.New()
	a := g.AddNode("a")
	b := g.AddNode("b")
	l0, lerr := g.AddLink(a, b)
	if lerr != nil {
		t.Fatal(lerr)
	}
	tiny, err := NewSystem(g, []graph.Path{{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{l0}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.AdoptSolver(sv); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestWeightedEstimateSuppressedOnSparse(t *testing.T) {
	_, sp := fig1SparsePair(t)
	w := make(la.Vector, sp.NumPaths())
	for i := range w {
		w[i] = 1
	}
	y := make(la.Vector, sp.NumPaths())
	if _, err := sp.EstimateWeighted(y, w); !errors.Is(err, ErrDenseSuppressed) {
		t.Fatalf("err = %v, want ErrDenseSuppressed", err)
	}
}
