package tomo

import (
	"fmt"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/topo"
)

// benchBackbone memoizes the generated topologies: at 100k links the
// preferential-attachment build plus shortest-path mesh dominates the
// measured region otherwise.
var benchBackbones = map[int]struct {
	g     *graph.Graph
	paths []graph.Path
}{}

func backboneSystemInputs(b *testing.B, links int) (*graph.Graph, []graph.Path) {
	b.Helper()
	if got, ok := benchBackbones[links]; ok {
		return got.g, got.paths
	}
	g, err := topo.Backbone(int64(links), links)
	if err != nil {
		b.Fatal(err)
	}
	paths, err := topo.BackbonePaths(g, links/10, int64(links))
	if err != nil {
		b.Fatal(err)
	}
	benchBackbones[links] = struct {
		g     *graph.Graph
		paths []graph.Path
	}{g, paths}
	return g, paths
}

// BenchmarkSparseFactor measures sparse "factorization" — CSR assembly
// plus the matrix-free identifiability screen (coverage + CondEst) —
// across ISP scales. The 100k case is the acceptance scale: it must
// complete without ever materializing a dense P×L or L×L array.
func BenchmarkSparseFactor(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		g, paths := backboneSystemInputs(b, links)
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s, err := NewSparseSystem(g, paths)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Solver(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSparseEstimate measures the steady-state estimate: one
// matrix-free CGLS solve on a warm system (solver already screened).
func BenchmarkSparseEstimate(b *testing.B) {
	for _, links := range []int{1000, 10000, 100000} {
		g, paths := backboneSystemInputs(b, links)
		s, err := NewSparseSystem(g, paths)
		if err != nil {
			b.Fatal(err)
		}
		x := make(la.Vector, g.NumLinks())
		for i := range x {
			x[i] = 1 + float64(i%9)/10
		}
		y, err := s.Measure(x)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Solver(); err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("links=%d", links), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Estimate(y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDenseFactor pins the dense baseline at the largest scale it
// can reach, so BENCH_sparse.json captures the crossover the DenseBudget
// threshold encodes.
func BenchmarkDenseFactor(b *testing.B) {
	g, paths := backboneSystemInputs(b, 1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := NewSystem(g, paths)
		if err != nil {
			b.Fatal(err)
		}
		if !s.Dense() {
			b.Fatal("1k-link system should be within DenseBudget")
		}
		if _, err := s.Factor(); err != nil {
			b.Fatal(err)
		}
	}
}
