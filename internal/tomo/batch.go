package tomo

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// EstimateBatch inverts a batch of measurement rounds against one warm
// solver, amortizing the per-call setup that a loop over Estimate pays
// every round. On the dense route the operator T is materialized once
// and every round is a single matvec — bit-identical to per-round
// Estimate. On the sparse route each round's CGLS solve warm-starts
// from the previous round's x̂ (consecutive rounds differ by a
// perturbation, so the iteration count collapses); every solve still
// converges under the same ‖Rᵀy‖-relative tolerance as a cold solve.
func (s *System) EstimateBatch(ys []la.Vector) ([]la.Vector, error) {
	return s.EstimateBatchCtx(context.Background(), ys)
}

// EstimateBatchCtx is EstimateBatch under a "tomo.solve_batch" trace
// span. The context is checked between rounds, so a canceled batch
// fails fast with the index it reached.
func (s *System) EstimateBatchCtx(ctx context.Context, ys []la.Vector) ([]la.Vector, error) {
	ctx, span := obs.StartSpan(ctx, "tomo.solve_batch")
	defer span.End()
	span.SetInt("rounds", len(ys))
	span.SetInt("paths", s.NumPaths())
	span.SetInt("links", s.NumLinks())
	if len(ys) == 0 {
		return nil, fmt.Errorf("tomo: EstimateBatch with no rounds")
	}
	sv, err := s.SolverCtx(ctx)
	if err != nil {
		return nil, err
	}
	out := make([]la.Vector, len(ys))
	switch e := sv.(type) {
	case denseSolver:
		t, err := e.fac.OperatorCtx(ctx)
		if err != nil {
			return nil, err
		}
		for i, y := range ys {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("tomo: EstimateBatch canceled after %d/%d rounds: %w", i, len(ys), err)
			}
			xhat, err := t.MulVec(y)
			if err != nil {
				return nil, fmt.Errorf("tomo: EstimateBatch round %d: %w", i, err)
			}
			out[i] = xhat
		}
	case *sparseSolver:
		opts := e.opts
		for i, y := range ys {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("tomo: EstimateBatch canceled after %d/%d rounds: %w", i, len(ys), err)
			}
			res, err := sparse.CGLS(e.a, y, opts)
			if res != nil && s.onSolve != nil {
				s.onSolve(SolveStats{
					Method:         "cgls",
					Iterations:     res.Iterations,
					ResidualNorm:   res.ResidualNorm,
					NormalResidual: res.NormalResidual,
					Converged:      res.Converged,
				})
			}
			if err != nil {
				return nil, fmt.Errorf("tomo: EstimateBatch round %d: %w", i, err)
			}
			out[i] = res.X
			opts.X0 = res.X
		}
	default:
		// Adopted custom engine: no batch-specific amortization known,
		// loop the generic solve.
		for i, y := range ys {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("tomo: EstimateBatch canceled after %d/%d rounds: %w", i, len(ys), err)
			}
			xhat, stats, err := sv.SolveCtx(ctx, y)
			if stats != nil && s.onSolve != nil {
				s.onSolve(*stats)
			}
			if err != nil {
				return nil, fmt.Errorf("tomo: EstimateBatch round %d: %w", i, err)
			}
			out[i] = xhat
		}
	}
	return out, nil
}

// PathUpdateInfo reports how a path-mutated System obtained its solver.
type PathUpdateInfo struct {
	// Method names the route taken:
	//   "rank1-update"    dense factor updated in O(links²)
	//   "rank1-downdate"  dense factor downdated in O(links²)
	//   "refactor"        conditioning drift (or downdate indefiniteness)
	//                     forced the cold dense oracle
	//   "sparse-append"   CSR rebuilt, identifiability screen skipped —
	//                     appending a row cannot lose column rank
	//   "coverage-screen" CSR rebuilt, O(nnz) column-coverage screen
	//                     only; deeper rank loss surfaces at solve time
	//                     through the CGLS breakdown guard
	//   "cold"            no warm solver to update; built from scratch
	Method string
	// Refactored reports whether the dense oracle ran (Method "refactor").
	Refactored bool
}

// AddPath returns a new System over the same graph with p appended to
// the measurement paths. The receiver is unchanged (Systems stay
// immutable). When the receiver's solver is warm, the new System's
// solver is derived incrementally instead of rebuilt: the dense route
// performs a rank-1 Cholesky update of the normal-equation factor
// (falling back to a cold refactorization if the updated factor drifts
// past the conditioning bound), and the sparse route skips the CondEst
// identifiability screen outright — appending a measurement row can
// only grow the Gram matrix, so a full-column-rank system stays full
// column rank.
func (s *System) AddPath(p graph.Path) (*System, PathUpdateInfo, error) {
	return s.AddPathCtx(context.Background(), p)
}

// AddPathCtx is AddPath under a "tomo.add_path" trace span.
func (s *System) AddPathCtx(ctx context.Context, p graph.Path) (*System, PathUpdateInfo, error) {
	ctx, span := obs.StartSpan(ctx, "tomo.add_path")
	defer span.End()
	paths := make([]graph.Path, 0, len(s.paths)+1)
	paths = append(paths, s.paths...)
	paths = append(paths, p)
	ns, err := s.derive(paths)
	if err != nil {
		return nil, PathUpdateInfo{}, err
	}
	info := PathUpdateInfo{Method: "cold"}
	switch e := s.warmSolver().(type) {
	case denseSolver:
		if ns.r != nil {
			row := pathRow(p, s.NumLinks())
			nf, refactored, err := e.fac.AddRow(row)
			if err != nil {
				return nil, PathUpdateInfo{}, mapUpdateErr(err)
			}
			if err := ns.AdoptFactor(nf); err != nil {
				return nil, PathUpdateInfo{}, err
			}
			info = PathUpdateInfo{Method: "rank1-update", Refactored: refactored}
			if refactored {
				info.Method = "refactor"
			}
		}
	case *sparseSolver:
		if err := ns.AdoptSolver(&sparseSolver{a: ns.sr, opts: e.opts}); err != nil {
			return nil, PathUpdateInfo{}, err
		}
		info = PathUpdateInfo{Method: "sparse-append"}
	}
	span.SetAttr("method", info.Method)
	return ns, info, nil
}

// RemovePath returns a new System with measurement path i removed; the
// receiver is unchanged. The dense route performs a rank-1 Cholesky
// downdate (with the cold dense oracle as fallback when the downdate
// reports indefiniteness or the factor drifts past the conditioning
// bound); unlike row addition, row removal CAN lose column rank, and in
// that case RemovePath fails with an explicit ErrNotIdentifiable — it
// never returns a system with a garbage factor. The sparse route
// rebuilds the CSR and re-screens only column coverage (O(nnz));
// subtler rank collapse is caught at solve time by the CGLS breakdown
// guard (sparse.ErrIllConditioned).
func (s *System) RemovePath(i int) (*System, PathUpdateInfo, error) {
	return s.RemovePathCtx(context.Background(), i)
}

// RemovePathCtx is RemovePath under a "tomo.remove_path" trace span.
func (s *System) RemovePathCtx(ctx context.Context, i int) (*System, PathUpdateInfo, error) {
	ctx, span := obs.StartSpan(ctx, "tomo.remove_path")
	defer span.End()
	if i < 0 || i >= len(s.paths) {
		return nil, PathUpdateInfo{}, fmt.Errorf("tomo: RemovePath index %d out of %d paths: %w", i, len(s.paths), la.ErrShape)
	}
	if len(s.paths) == 1 {
		return nil, PathUpdateInfo{}, fmt.Errorf("%w: removing the last measurement path", ErrNotIdentifiable)
	}
	paths := make([]graph.Path, 0, len(s.paths)-1)
	paths = append(paths, s.paths[:i]...)
	paths = append(paths, s.paths[i+1:]...)
	ns, err := s.derive(paths)
	if err != nil {
		return nil, PathUpdateInfo{}, err
	}
	info := PathUpdateInfo{Method: "cold"}
	switch e := s.warmSolver().(type) {
	case denseSolver:
		if ns.r != nil {
			nf, refactored, err := e.fac.RemoveRow(i)
			if err != nil {
				return nil, PathUpdateInfo{Refactored: refactored}, mapUpdateErr(err)
			}
			if err := ns.AdoptFactor(nf); err != nil {
				return nil, PathUpdateInfo{}, err
			}
			info = PathUpdateInfo{Method: "rank1-downdate", Refactored: refactored}
			if refactored {
				info.Method = "refactor"
			}
		}
	case *sparseSolver:
		for j, n := range ns.sr.ColNorms() {
			if n == 0 {
				return nil, PathUpdateInfo{}, fmt.Errorf("%w: removing path %d leaves link %d on no measurement path",
					ErrNotIdentifiable, i, j)
			}
		}
		if err := ns.AdoptSolver(&sparseSolver{a: ns.sr, opts: e.opts}); err != nil {
			return nil, PathUpdateInfo{}, err
		}
		info = PathUpdateInfo{Method: "coverage-screen"}
	}
	span.SetAttr("method", info.Method)
	return ns, info, nil
}

// derive builds the sibling System for a mutated path set, preserving
// the receiver's representation choice (a forced-sparse system stays
// sparse), solver options, and solve observer.
func (s *System) derive(paths []graph.Path) (*System, error) {
	ns, err := newSystem(s.g, paths, s.r == nil)
	if err != nil {
		return nil, err
	}
	ns.sparseOpts = s.sparseOpts
	ns.onSolve = s.onSolve
	return ns, nil
}

// warmSolver returns the receiver's solver — building it if the caller
// mutates before the first solve, since the update derives from it —
// or nil when the receiver itself is unidentifiable, in which case the
// mutated system simply builds its own solver cold (adding a path can
// repair identifiability).
func (s *System) warmSolver() Solver {
	sv, err := s.Solver()
	if err != nil {
		return nil
	}
	return sv
}

// mapUpdateErr converts la-layer rank-deficiency verdicts into the
// package's identifiability error, matching what a cold build reports.
func mapUpdateErr(err error) error {
	if errors.Is(err, la.ErrNotSPD) {
		return fmt.Errorf("%w: %v", ErrNotIdentifiable, err)
	}
	return err
}
