package tomo

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/la"
)

// ErrBadWeights is returned for malformed weight vectors.
var ErrBadWeights = errors.New("tomo: bad weights")

// EstimateWeighted solves the weighted least-squares tomography problem
//
//	x̂ = argmin Σ_i w_i (R_i·x − y_i)²  =  (RᵀWR)⁻¹RᵀW·y
//
// for per-path weights w ⪰ 0. Measurement noise is heteroscedastic in
// practice — per-hop jitter adds up, so long paths are noisier and
// deserve less weight (w_i ∝ 1/Var(y_i) ≈ 1/hops); loss-domain
// measurements of heavily dropped paths are noisier still. Uniform
// weights reduce to Estimate. Zero-weight paths are allowed as long as
// the weighted system keeps full column rank.
func (s *System) EstimateWeighted(y la.Vector, w la.Vector) (la.Vector, error) {
	if len(y) != s.NumPaths() {
		return nil, fmt.Errorf("tomo: EstimateWeighted with %d measurements, want %d: %w",
			len(y), s.NumPaths(), la.ErrShape)
	}
	if len(w) != s.NumPaths() {
		return nil, fmt.Errorf("tomo: %d weights for %d paths: %w", len(w), s.NumPaths(), ErrBadWeights)
	}
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) || math.IsInf(wi, 0) {
			return nil, fmt.Errorf("tomo: weight[%d] = %g: %w", i, wi, ErrBadWeights)
		}
	}
	if s.r == nil {
		return nil, fmt.Errorf("%w: weighted estimation runs the dense route only", ErrDenseSuppressed)
	}
	// Scale rows by √w and reuse the ordinary solver on (√W·R, √W·y).
	nP, nL := s.NumPaths(), s.NumLinks()
	scaled := la.NewMatrix(nP, nL)
	ys := make(la.Vector, nP)
	for i := 0; i < nP; i++ {
		sq := math.Sqrt(w[i])
		for j := 0; j < nL; j++ {
			scaled.Set(i, j, sq*s.r.At(i, j))
		}
		ys[i] = sq * y[i]
	}
	t, err := la.NormalEquationOperator(scaled)
	if err != nil {
		if errors.Is(err, la.ErrNotSPD) {
			return nil, fmt.Errorf("%w: weighted system rank-deficient", ErrNotIdentifiable)
		}
		return nil, err
	}
	xhat, err := t.MulVec(ys)
	if err != nil {
		return nil, err
	}
	return xhat, nil
}

// HopCountWeights returns the canonical heteroscedastic weighting
// w_i = 1/hops_i: per-hop jitter is independent, so a path's
// measurement variance grows linearly in its length.
func (s *System) HopCountWeights() la.Vector {
	w := make(la.Vector, s.NumPaths())
	for i, p := range s.paths {
		w[i] = 1 / float64(p.Len())
	}
	return w
}
