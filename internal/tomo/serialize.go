package tomo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/graph"
)

// Digest returns a stable hex digest of the routing matrix: SHA-256 over
// its dimensions and the set of link indices on each path, in path
// order. Two systems share a digest exactly when they share R — and
// therefore share the normal-equation factorization — which makes the
// digest the cache-invalidation key for long-lived solver caches (a
// changed topology or path set changes R and thus the key).
func (s *System) Digest() string {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	put(uint64(s.sr.Rows()))
	put(uint64(s.sr.Cols()))
	for i := 0; i < s.sr.Rows(); i++ {
		// CSR stores each row's nonzero columns in increasing order, so
		// this emits byte-identical output to the historical dense scan
		// — digests (and therefore solver-cache keys and WAL records)
		// are unchanged.
		s.sr.Row(i, func(j int, _ float64) { put(uint64(j)) })
		put(^uint64(0)) // row sentinel
	}
	return hex.EncodeToString(h.Sum(nil))
}

// systemDoc is the JSON schema for a saved measurement configuration:
// paths as node-name sequences, so the file survives node-ID reordering
// as long as names are stable.
type systemDoc struct {
	Version int        `json:"version"`
	Paths   [][]string `json:"paths"`
}

const systemDocVersion = 1

// Save writes the system's measurement paths as JSON. Together with the
// topology edge list (graph.WriteEdgeList) this captures a complete
// monitoring configuration: operators can version it, diff it, and
// reload it for reproducible measurement campaigns.
func (s *System) Save(w io.Writer) error {
	doc := systemDoc{Version: systemDocVersion}
	for _, p := range s.paths {
		names := make([]string, len(p.Nodes))
		for i, v := range p.Nodes {
			n, err := s.g.NodeName(v)
			if err != nil {
				return fmt.Errorf("tomo: Save: %w", err)
			}
			names[i] = n
		}
		doc.Paths = append(doc.Paths, names)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("tomo: Save: %w", err)
	}
	return nil
}

// LoadSystem reads a saved measurement configuration against a topology:
// node names are resolved, links between consecutive nodes looked up,
// and the resulting system validated exactly like NewSystem.
func LoadSystem(g *graph.Graph, r io.Reader) (*System, error) {
	var doc systemDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("tomo: LoadSystem: %w", err)
	}
	if doc.Version != systemDocVersion {
		return nil, fmt.Errorf("tomo: LoadSystem: unsupported version %d", doc.Version)
	}
	if len(doc.Paths) == 0 {
		return nil, fmt.Errorf("tomo: LoadSystem: no paths")
	}
	paths := make([]graph.Path, 0, len(doc.Paths))
	for pi, names := range doc.Paths {
		if len(names) < 2 {
			return nil, fmt.Errorf("tomo: LoadSystem: path %d has %d nodes", pi, len(names))
		}
		p := graph.Path{}
		for i, name := range names {
			v, ok := g.NodeByName(name)
			if !ok {
				return nil, fmt.Errorf("tomo: LoadSystem: path %d: unknown node %q", pi, name)
			}
			p.Nodes = append(p.Nodes, v)
			if i > 0 {
				l, ok := g.LinkBetween(p.Nodes[i-1], v)
				if !ok {
					return nil, fmt.Errorf("tomo: LoadSystem: path %d: no link %q–%q", pi, names[i-1], name)
				}
				p.Links = append(p.Links, l)
			}
		}
		paths = append(paths, p)
	}
	return NewSystem(g, paths)
}
