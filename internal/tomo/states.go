// Package tomo implements the network tomography engine of the paper's
// Section II: routing-matrix construction from measurement paths, the
// least-squares link-metric estimator x̂ = (RᵀR)⁻¹Rᵀy (Eq. 2),
// identifiability checks, and identifiability-driven monitor placement
// and measurement-path selection.
package tomo

import (
	"fmt"
)

// State is the diagnostic state of a link (Definition 1).
type State int

// Link states. Start at 1 so the zero value is invalid.
const (
	Normal State = iota + 1
	Uncertain
	Abnormal
)

// String names the state.
func (s State) String() string {
	switch s {
	case Normal:
		return "normal"
	case Uncertain:
		return "uncertain"
	case Abnormal:
		return "abnormal"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Thresholds hold the classification bounds of Definition 1: a link is
// normal below Lower (b_l), abnormal above Upper (b_u), uncertain
// between. Setting Lower == Upper gives the two-state variant of
// Remark 1.
type Thresholds struct {
	Lower float64 // b_l
	Upper float64 // b_u
}

// DefaultThresholds are the paper's experimental setup (Section V-A):
// normal below 100 ms, abnormal above 800 ms.
func DefaultThresholds() Thresholds {
	return Thresholds{Lower: 100, Upper: 800}
}

// Validate checks Lower ≤ Upper and non-negative bounds.
func (t Thresholds) Validate() error {
	if t.Lower < 0 || t.Upper < t.Lower {
		return fmt.Errorf("tomo: thresholds (b_l=%g, b_u=%g) need 0 ≤ b_l ≤ b_u", t.Lower, t.Upper)
	}
	return nil
}

// Classify maps a link metric to its state per Definition 1.
func (t Thresholds) Classify(x float64) State {
	switch {
	case x < t.Lower:
		return Normal
	case x > t.Upper:
		return Abnormal
	default:
		return Uncertain
	}
}

// ClassifyAll maps a metric vector to states.
func (t Thresholds) ClassifyAll(x []float64) []State {
	out := make([]State, len(x))
	for i, v := range x {
		out[i] = t.Classify(v)
	}
	return out
}
