package tomo

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/la"
)

func TestEstimateWeightedUniformMatchesPlain(t *testing.T) {
	_, s := fig1System(t)
	rng := rand.New(rand.NewSource(5))
	x := make(la.Vector, s.NumLinks())
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	y, err := s.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	// Noise so weighting matters; uniform weights must still equal the
	// ordinary estimator on the same data.
	for i := range y {
		y[i] += rng.NormFloat64()
	}
	plain, err := s.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	w := la.Ones(s.NumPaths())
	weighted, err := s.EstimateWeighted(y, w)
	if err != nil {
		t.Fatal(err)
	}
	if !weighted.Equal(plain, 1e-8) {
		t.Error("uniform weights diverge from plain estimate")
	}
	// Scaling all weights by a constant changes nothing.
	weighted2, err := s.EstimateWeighted(y, w.Scale(7))
	if err != nil {
		t.Fatal(err)
	}
	if !weighted2.Equal(plain, 1e-8) {
		t.Error("scaled uniform weights diverge")
	}
}

func TestEstimateWeightedExactOnCleanData(t *testing.T) {
	// Clean measurements: any positive weighting recovers x exactly.
	_, s := fig1System(t)
	rng := rand.New(rand.NewSource(6))
	x := make(la.Vector, s.NumLinks())
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	y, err := s.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.EstimateWeighted(y, s.HopCountWeights())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(x, 1e-7) {
		t.Errorf("weighted estimate on clean data = %v, want %v", got, x)
	}
}

func TestEstimateWeightedReducesLongPathNoise(t *testing.T) {
	// Heteroscedastic noise ∝ hop count: hop-count weights should beat
	// uniform weights in mean squared error across repetitions.
	_, s := fig1System(t)
	rng := rand.New(rand.NewSource(7))
	x := make(la.Vector, s.NumLinks())
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	yClean, err := s.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	w := s.HopCountWeights()
	var msePlain, mseWeighted float64
	const reps = 200
	for k := 0; k < reps; k++ {
		y := yClean.Clone()
		for i, p := range s.Paths() {
			y[i] += rng.NormFloat64() * 2 * math.Sqrt(float64(p.Len()))
		}
		plain, err := s.Estimate(y)
		if err != nil {
			t.Fatal(err)
		}
		weighted, err := s.EstimateWeighted(y, w)
		if err != nil {
			t.Fatal(err)
		}
		for l := range x {
			dp := plain[l] - x[l]
			dw := weighted[l] - x[l]
			msePlain += dp * dp
			mseWeighted += dw * dw
		}
	}
	if mseWeighted >= msePlain {
		t.Errorf("weighted MSE %.1f not below plain %.1f under hop-scaled noise", mseWeighted, msePlain)
	}
}

func TestEstimateWeightedValidation(t *testing.T) {
	_, s := fig1System(t)
	y := make(la.Vector, s.NumPaths())
	if _, err := s.EstimateWeighted(la.Vector{1}, la.Ones(s.NumPaths())); !errors.Is(err, la.ErrShape) {
		t.Errorf("short y: err = %v", err)
	}
	if _, err := s.EstimateWeighted(y, la.Vector{1}); !errors.Is(err, ErrBadWeights) {
		t.Errorf("short w: err = %v", err)
	}
	bad := la.Ones(s.NumPaths())
	bad[0] = -1
	if _, err := s.EstimateWeighted(y, bad); !errors.Is(err, ErrBadWeights) {
		t.Errorf("negative weight: err = %v", err)
	}
	bad[0] = math.NaN()
	if _, err := s.EstimateWeighted(y, bad); !errors.Is(err, ErrBadWeights) {
		t.Errorf("NaN weight: err = %v", err)
	}
	// Zeroing out too many paths destroys identifiability.
	zeros := make(la.Vector, s.NumPaths())
	zeros[0] = 1
	if _, err := s.EstimateWeighted(y, zeros); !errors.Is(err, ErrNotIdentifiable) {
		t.Errorf("rank-deficient weighting: err = %v", err)
	}
}

func TestHopCountWeights(t *testing.T) {
	_, s := fig1System(t)
	w := s.HopCountWeights()
	for i, p := range s.Paths() {
		if math.Abs(w[i]-1/float64(p.Len())) > 1e-12 {
			t.Errorf("w[%d] = %g for %d hops", i, w[i], p.Len())
		}
	}
}
