package tomo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/topo"
)

func TestIdentifiableLinksFullRank(t *testing.T) {
	_, s := fig1System(t)
	ids := IdentifiableLinks(s)
	if len(ids) != 10 {
		t.Fatalf("len = %d", len(ids))
	}
	for l, ok := range ids {
		if !ok {
			t.Errorf("link %d not identifiable on a full-rank system", l)
		}
	}
}

func TestIdentifiableLinksDeficient(t *testing.T) {
	// Single path M3–D–M2 (links 9, 10): only their SUM is measured, so
	// neither is individually identifiable; all other links are not even
	// observed.
	f := topo.Fig1()
	p := graph.Path{
		Nodes: []graph.NodeID{f.M3, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[9], f.PaperLink[10]},
	}
	s, err := NewSystem(f.G, []graph.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	ids := IdentifiableLinks(s)
	for l, ok := range ids {
		if ok {
			t.Errorf("link %d identifiable from a single 2-hop path", l)
		}
	}
}

func TestIdentifiableLinksPartial(t *testing.T) {
	// Two paths: M3–D–M2 (links 9,10) and M3–D (direct link 9)…
	// M3–D is not monitor-to-monitor unless D is a monitor; instead use
	// a 1-hop path between monitors M3 and M2? No direct link exists.
	// Build a custom 3-node line a–b–c with monitors a, b, c:
	// paths a–b (link 0) and a–b–c (links 0,1) make both identifiable;
	// dropping the short path leaves only the sum.
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	l0, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	l1, err := g.AddLink(b, c)
	if err != nil {
		t.Fatal(err)
	}
	short := graph.Path{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{l0}}
	long := graph.Path{Nodes: []graph.NodeID{a, b, c}, Links: []graph.LinkID{l0, l1}}

	s, err := NewSystem(g, []graph.Path{short, long})
	if err != nil {
		t.Fatal(err)
	}
	ids := IdentifiableLinks(s)
	if !ids[l0] || !ids[l1] {
		t.Errorf("both links should be identifiable with both paths: %v", ids)
	}
	sumOnly, err := NewSystem(g, []graph.Path{long})
	if err != nil {
		t.Fatal(err)
	}
	ids = IdentifiableLinks(sumOnly)
	if ids[l0] || ids[l1] {
		t.Errorf("links identifiable from their sum alone: %v", ids)
	}
}

func TestEstimateDeficientMatchesEstimateOnFullRank(t *testing.T) {
	_, s := fig1System(t)
	rng := rand.New(rand.NewSource(4))
	x := make(la.Vector, s.NumLinks())
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	y, err := s.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := s.Estimate(y)
	if err != nil {
		t.Fatal(err)
	}
	ridged, err := EstimateDeficient(s, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range exact {
		if math.Abs(exact[i]-ridged[i]) > 1e-3 {
			t.Errorf("link %d: exact %g vs ridged %g", i, exact[i], ridged[i])
		}
	}
}

func TestEstimateDeficientOnDeficientSystem(t *testing.T) {
	// The plain estimator refuses; the ridged one returns a smoothed
	// estimate whose path-sums still reproduce the measurement.
	f := topo.Fig1()
	p := graph.Path{
		Nodes: []graph.NodeID{f.M3, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[9], f.PaperLink[10]},
	}
	s, err := NewSystem(f.G, []graph.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Estimate(la.Vector{30}); err == nil {
		t.Fatal("plain Estimate accepted a deficient system")
	}
	xhat, err := EstimateDeficient(s, la.Vector{30}, 0)
	if err != nil {
		t.Fatalf("EstimateDeficient: %v", err)
	}
	sum := xhat[f.PaperLink[9]] + xhat[f.PaperLink[10]]
	if math.Abs(sum-30) > 0.1 {
		t.Errorf("ridged path sum = %g, want ≈ 30", sum)
	}
}
