package tomo

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/topo"
)

// fig1System builds the Fig. 1 topology with 23 identifiable paths.
func fig1System(t *testing.T) (*topo.Fig1Topology, *System) {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := SelectPaths(f.G, f.Monitors, SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		t.Fatalf("SelectPaths: %v", err)
	}
	if rank != f.G.NumLinks() {
		t.Fatalf("rank = %d, want %d", rank, f.G.NumLinks())
	}
	s, err := NewSystem(f.G, paths)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return f, s
}

func TestRoutingMatrixEntries(t *testing.T) {
	f := topo.Fig1()
	p := graph.Path{
		Nodes: []graph.NodeID{f.M3, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[9], f.PaperLink[10]},
	}
	r := RoutingMatrix(f.G, []graph.Path{p})
	if r.Rows() != 1 || r.Cols() != 10 {
		t.Fatalf("R shape = %d×%d", r.Rows(), r.Cols())
	}
	var ones int
	for j := 0; j < 10; j++ {
		if r.At(0, j) == 1 {
			ones++
		}
	}
	if ones != 2 {
		t.Errorf("row has %d ones, want 2", ones)
	}
	if r.At(0, int(f.PaperLink[9])) != 1 || r.At(0, int(f.PaperLink[10])) != 1 {
		t.Error("wrong link columns set")
	}
}

func TestNewSystemValidates(t *testing.T) {
	f := topo.Fig1()
	if _, err := NewSystem(nil, nil); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := NewSystem(f.G, nil); err == nil {
		t.Error("empty path set accepted")
	}
	bad := graph.Path{Nodes: []graph.NodeID{f.M1}, Links: []graph.LinkID{0}}
	if _, err := NewSystem(f.G, []graph.Path{bad}); err == nil {
		t.Error("invalid path accepted")
	}
}

func TestFig1Identifiable23Paths(t *testing.T) {
	_, s := fig1System(t)
	if s.NumPaths() != 23 {
		t.Errorf("paths = %d, want 23 (as in the paper)", s.NumPaths())
	}
	if !s.Identifiable() {
		t.Error("Fig1 system not identifiable")
	}
	if s.Rank() != 10 {
		t.Errorf("rank = %d, want 10", s.Rank())
	}
}

func TestMeasureEstimateRoundTrip(t *testing.T) {
	_, s := fig1System(t)
	x := make(la.Vector, s.NumLinks())
	rng := rand.New(rand.NewSource(3))
	for i := range x {
		x[i] = 1 + rng.Float64()*19 // the paper's routine 1–20 ms
	}
	y, err := s.Measure(x)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	xhat, err := s.Estimate(y)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if !xhat.Equal(x, 1e-8) {
		t.Errorf("x̂ = %v, want %v", xhat, x)
	}
	// Clean measurements leave a zero residual.
	res, err := s.Residual(xhat, y)
	if err != nil {
		t.Fatalf("Residual: %v", err)
	}
	if res.Norm1() > 1e-8 {
		t.Errorf("clean residual ‖·‖₁ = %g, want ≈ 0", res.Norm1())
	}
}

func TestEstimateRecoversArbitraryMetricsProperty(t *testing.T) {
	// Property: on the identifiable Fig. 1 system, Estimate∘Measure is
	// the identity for any non-negative link metric vector.
	_, s := fig1System(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make(la.Vector, s.NumLinks())
		for i := range x {
			x[i] = rng.Float64() * 1000
		}
		y, err := s.Measure(x)
		if err != nil {
			return false
		}
		xhat, err := s.Estimate(y)
		if err != nil {
			return false
		}
		return xhat.Equal(x, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNotIdentifiableError(t *testing.T) {
	// A single path cannot identify 10 links.
	f := topo.Fig1()
	p := graph.Path{
		Nodes: []graph.NodeID{f.M3, f.D, f.M2},
		Links: []graph.LinkID{f.PaperLink[9], f.PaperLink[10]},
	}
	s, err := NewSystem(f.G, []graph.Path{p})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if s.Identifiable() {
		t.Error("single-path system identifiable")
	}
	if _, err := s.Estimate(la.Vector{1}); !errors.Is(err, ErrNotIdentifiable) {
		t.Errorf("Estimate err = %v, want ErrNotIdentifiable", err)
	}
}

func TestPathsWithLinkAndNode(t *testing.T) {
	f, s := fig1System(t)
	// Every path to M2 uses link 10 (M2 has degree 1).
	with10 := s.PathsWithLink(f.PaperLink[10])
	for _, i := range with10 {
		p := s.Paths()[i]
		if !p.HasNode(f.M2) {
			t.Errorf("path %d has link 10 but not M2", i)
		}
	}
	// Paths touching attackers B, C.
	mal := map[graph.NodeID]bool{f.B: true, f.C: true}
	withMal := s.PathsWithAnyNode(mal)
	if len(withMal) == 0 {
		t.Fatal("no paths touch the attackers")
	}
	// Complement check: paths not in the list contain neither B nor C.
	inList := make(map[int]bool)
	for _, i := range withMal {
		inList[i] = true
	}
	for i, p := range s.Paths() {
		if !inList[i] && p.HasAnyNode(mal) {
			t.Errorf("path %d touches attackers but missing from list", i)
		}
	}
}

func TestMeasureShapeError(t *testing.T) {
	_, s := fig1System(t)
	if _, err := s.Measure(la.Vector{1, 2}); err == nil {
		t.Error("short metric vector accepted")
	}
	if _, err := s.Estimate(la.Vector{1, 2}); err == nil {
		t.Error("short measurement vector accepted")
	}
}

func TestOperatorCached(t *testing.T) {
	_, s := fig1System(t)
	t1, err := s.Operator()
	if err != nil {
		t.Fatalf("Operator: %v", err)
	}
	t2, err := s.Operator()
	if err != nil {
		t.Fatalf("Operator: %v", err)
	}
	if t1 != t2 {
		t.Error("Operator not cached")
	}
}

func TestFactorMemoized(t *testing.T) {
	_, s := fig1System(t)
	f1, err := s.Factor()
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	f2, err := s.Factor()
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if f1 != f2 {
		t.Errorf("Factor recomputed instead of reusing the cached factorization")
	}
	op1, err := s.Operator()
	if err != nil {
		t.Fatalf("Operator: %v", err)
	}
	op2, _ := s.Operator()
	if op1 != op2 {
		t.Errorf("Operator recomputed instead of reusing the cached matrix")
	}
}

func TestAdoptFactor(t *testing.T) {
	f, s := fig1System(t)
	fac, err := s.Factor()
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	// A second system over the same R adopts the cached factor.
	s2, err := NewSystem(f.G, s.Paths())
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := s2.AdoptFactor(fac); err != nil {
		t.Fatalf("AdoptFactor: %v", err)
	}
	got, err := s2.Factor()
	if err != nil {
		t.Fatalf("Factor: %v", err)
	}
	if got != fac {
		t.Errorf("adopted factor not reused")
	}
	// Estimates through the adopted factor invert the forward model.
	x := make(la.Vector, s2.NumLinks())
	for i := range x {
		x[i] = float64(i + 1)
	}
	y, err := s2.Measure(x)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	xhat, err := s2.Estimate(y)
	if err != nil {
		t.Fatalf("Estimate: %v", err)
	}
	if !xhat.Equal(x, 1e-8) {
		t.Errorf("estimate via adopted factor = %v, want %v", xhat, x)
	}
	// Dimension mismatches are rejected.
	s3, err := NewSystem(f.G, s.Paths()[:len(s.Paths())-1])
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	if err := s3.AdoptFactor(fac); err == nil {
		t.Errorf("AdoptFactor accepted mismatched dimensions")
	}
	if err := s3.AdoptFactor(nil); err == nil {
		t.Errorf("AdoptFactor accepted nil factor")
	}
}

func TestEstimateConcurrent(t *testing.T) {
	// First factorization races with concurrent estimates; under -race
	// this guards the sync.Once paths in Factor/Operator.
	_, s := fig1System(t)
	x := make(la.Vector, s.NumLinks())
	for i := range x {
		x[i] = 10 * float64(i+1)
	}
	y, err := s.Measure(x)
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for k := 0; k < 16; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			xhat, err := s.Estimate(y)
			if err != nil {
				errs <- err
				return
			}
			if !xhat.Equal(x, 1e-8) {
				errs <- errors.New("concurrent estimate mismatch")
			}
			if _, err := s.Operator(); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
