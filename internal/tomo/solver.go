package tomo

import (
	"context"
	"fmt"

	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/sparse"
)

// Solver is the least-squares engine behind Estimate, abstracted so the
// dense Cholesky route (bit-exact, materialized operator, small
// systems) and the matrix-free iterative route (CGLS, ISP scale) are
// interchangeable behind one registration/cache/estimate pipeline. A
// Solver is immutable and safe for concurrent use; long-lived services
// cache them keyed by routing-matrix digest and share one Solver across
// every System with the same R.
type Solver interface {
	// Rows and Cols are the dimensions of the factored routing matrix
	// (paths × links), used by adoption checks.
	Rows() int
	Cols() int
	// Method names the engine ("cholesky" or "cgls") for metrics and
	// trace annotation.
	Method() string
	// SolveCtx returns the least-squares estimate for measurements y.
	// Iterative engines also return per-solve statistics; the dense
	// engine returns nil stats.
	SolveCtx(ctx context.Context, y la.Vector) (la.Vector, *SolveStats, error)
}

// SolveStats describes one iterative solve, fed to the observer a
// service installs with SetSolveObserver (and from there into the
// tomographyd_solver_* histograms).
type SolveStats struct {
	Method         string
	Iterations     int
	ResidualNorm   float64 // ‖y − R·x̂‖₂
	NormalResidual float64 // ‖Rᵀ(y − R·x̂)‖₂
	Converged      bool
}

// denseSolver wraps the normal-equation Cholesky factorization and
// applies the memoized dense operator T = (RᵀR)⁻¹Rᵀ, exactly as the
// pre-sparse Estimate did — the dense route stays bit-exact with the
// attack-LP construction, which reads T's entries.
type denseSolver struct {
	fac *la.NormalFactor
}

func (d denseSolver) Rows() int      { return d.fac.Rows() }
func (d denseSolver) Cols() int      { return d.fac.Cols() }
func (d denseSolver) Method() string { return "cholesky" }

func (d denseSolver) SolveCtx(ctx context.Context, y la.Vector) (la.Vector, *SolveStats, error) {
	t, err := d.fac.OperatorCtx(ctx)
	if err != nil {
		return nil, nil, err
	}
	xhat, err := t.MulVec(y)
	if err != nil {
		return nil, nil, fmt.Errorf("tomo: Estimate: %w", err)
	}
	return xhat, nil, nil
}

// sparseSolver runs matrix-free CGLS against the CSR routing matrix.
// Construction (newSparseSolver) is the sparse analogue of
// factorization: it validates identifiability up front so registration
// rejects a hopeless system instead of every later estimate timing out.
type sparseSolver struct {
	a    *sparse.CSR
	opts sparse.Options
}

func (s *sparseSolver) Rows() int      { return s.a.Rows() }
func (s *sparseSolver) Cols() int      { return s.a.Cols() }
func (s *sparseSolver) Method() string { return "cgls" }

func (s *sparseSolver) SolveCtx(ctx context.Context, y la.Vector) (la.Vector, *SolveStats, error) {
	_, span := obs.StartSpan(ctx, "tomo.cgls")
	defer span.End()
	res, err := sparse.CGLS(s.a, y, s.opts)
	if res == nil {
		return nil, nil, err
	}
	span.SetInt("iterations", res.Iterations)
	span.SetBool("converged", res.Converged)
	stats := &SolveStats{
		Method:         "cgls",
		Iterations:     res.Iterations,
		ResidualNorm:   res.ResidualNorm,
		NormalResidual: res.NormalResidual,
		Converged:      res.Converged,
	}
	if err != nil {
		return nil, stats, fmt.Errorf("tomo: iterative estimate: %w", err)
	}
	return res.X, stats, nil
}

// newSparseSolver builds the iterative solver for routing matrix a,
// running the matrix-free identifiability screen: shape (at least as
// many paths as links), column coverage (every link on some path), and
// a CondEst rank check. Each failure maps to ErrNotIdentifiable, the
// same verdict the dense route reaches through Cholesky's ErrNotSPD.
func newSparseSolver(ctx context.Context, a *sparse.CSR, opts sparse.Options) (*sparseSolver, error) {
	_, span := obs.StartSpan(ctx, "tomo.sparse_factor")
	defer span.End()
	span.SetInt("rows", a.Rows())
	span.SetInt("cols", a.Cols())
	span.SetInt("nnz", a.NNZ())
	if a.Rows() < a.Cols() {
		return nil, fmt.Errorf("%w: %d paths cannot identify %d links", ErrNotIdentifiable, a.Rows(), a.Cols())
	}
	for j, n := range a.ColNorms() {
		if n == 0 {
			return nil, fmt.Errorf("%w: link %d is on no measurement path", ErrNotIdentifiable, j)
		}
	}
	sigMax, sigMin, err := sparse.CondEst(a, 0)
	if err != nil {
		return nil, fmt.Errorf("tomo: sparse factor: %w", err)
	}
	span.SetFloat("sigma_max", sigMax)
	span.SetFloat("sigma_min", sigMin)
	if sparse.RankDeficient(sigMax, sigMin) {
		return nil, fmt.Errorf("%w: routing matrix numerically rank-deficient (σmax %.3g, σmin %.3g)",
			ErrNotIdentifiable, sigMax, sigMin)
	}
	return &sparseSolver{a: a, opts: opts}, nil
}
