package tomo

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/topo"
)

func randomRounds(rng *rand.Rand, n, paths int) []la.Vector {
	ys := make([]la.Vector, n)
	for i := range ys {
		y := make(la.Vector, paths)
		for j := range y {
			y[j] = 10 * rng.Float64()
		}
		ys[i] = y
	}
	return ys
}

// The dense batched route applies the same memoized operator as
// per-round Estimate, so the results must be bit-identical — the
// batch API cannot perturb the determinism contract.
func TestEstimateBatchDenseBitExact(t *testing.T) {
	_, sys := fig1System(t)
	rng := rand.New(rand.NewSource(5))
	ys := randomRounds(rng, 50, sys.NumPaths())
	batch, err := sys.EstimateBatch(ys)
	if err != nil {
		t.Fatalf("EstimateBatch: %v", err)
	}
	for i, y := range ys {
		want, err := sys.Estimate(y)
		if err != nil {
			t.Fatalf("Estimate round %d: %v", i, err)
		}
		if !batch[i].Equal(want, 0) {
			t.Fatalf("round %d: batched estimate not bit-identical to one-shot", i)
		}
	}
}

// The sparse batched route warm-starts each round's CGLS from the
// previous x̂; every round must still land on the dense oracle's
// minimizer at solver tolerance.
func TestEstimateBatchSparseWarmAgrees(t *testing.T) {
	f, dense := fig1System(t)
	sp, err := NewSparseSystem(f.G, dense.Paths())
	if err != nil {
		t.Fatalf("NewSparseSystem: %v", err)
	}
	rng := rand.New(rand.NewSource(9))
	ys := randomRounds(rng, 40, sp.NumPaths())
	var stats []SolveStats
	sp.SetSolveObserver(func(st SolveStats) { stats = append(stats, st) })
	batch, err := sp.EstimateBatch(ys)
	if err != nil {
		t.Fatalf("EstimateBatch: %v", err)
	}
	for i, y := range ys {
		want, err := dense.Estimate(y)
		if err != nil {
			t.Fatalf("dense Estimate round %d: %v", i, err)
		}
		if !batch[i].Equal(want, 1e-6*(1+want.Norm2())) {
			t.Fatalf("round %d: warm sparse estimate disagrees with dense oracle", i)
		}
	}
	if len(stats) != len(ys) {
		t.Fatalf("solve observer saw %d solves, want %d", len(stats), len(ys))
	}
	for i, st := range stats {
		if !st.Converged {
			t.Fatalf("round %d: warm solve did not converge", i)
		}
	}
}

func TestEstimateBatchErrors(t *testing.T) {
	_, sys := fig1System(t)
	if _, err := sys.EstimateBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	ys := []la.Vector{make(la.Vector, sys.NumPaths()), make(la.Vector, 3)}
	if _, err := sys.EstimateBatch(ys); err == nil {
		t.Fatal("mis-shaped round accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.EstimateBatchCtx(ctx, ys[:1]); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled batch: err = %v, want context.Canceled", err)
	}
}

// freshEstimates builds a brand-new System over the same paths and
// returns its estimates — the cold oracle a mutated system must match.
func freshEstimates(t *testing.T, g *graph.Graph, paths []graph.Path, sparse bool, ys []la.Vector) (*System, []la.Vector) {
	t.Helper()
	var (
		sys *System
		err error
	)
	if sparse {
		sys, err = NewSparseSystem(g, paths)
	} else {
		sys, err = NewSystem(g, paths)
	}
	if err != nil {
		t.Fatalf("fresh system: %v", err)
	}
	out, err := sys.EstimateBatch(ys)
	if err != nil {
		t.Fatalf("fresh EstimateBatch: %v", err)
	}
	return sys, out
}

func TestAddRemovePathDenseMatchesFreshSystem(t *testing.T) {
	f, sys := fig1System(t)
	if _, err := sys.Solver(); err != nil {
		t.Fatalf("warm solver: %v", err)
	}
	dup := sys.Paths()[3].Clone()

	added, info, err := sys.AddPath(dup)
	if err != nil {
		t.Fatalf("AddPath: %v", err)
	}
	if info.Method != "rank1-update" || info.Refactored {
		t.Fatalf("AddPath method = %+v, want rank1-update without refactor", info)
	}
	if added.NumPaths() != sys.NumPaths()+1 || sys.NumPaths() != 23 {
		t.Fatalf("path counts: base %d, added %d", sys.NumPaths(), added.NumPaths())
	}
	rng := rand.New(rand.NewSource(11))
	ys := randomRounds(rng, 10, added.NumPaths())
	fresh, want, tol := (*System)(nil), ([]la.Vector)(nil), 1e-9
	fresh, want = freshEstimates(t, f.G, added.Paths(), false, ys)
	if added.Digest() != fresh.Digest() {
		t.Fatal("AddPath digest differs from freshly built system")
	}
	got, err := added.EstimateBatch(ys)
	if err != nil {
		t.Fatalf("EstimateBatch on added: %v", err)
	}
	for i := range ys {
		if !got[i].Equal(want[i], tol*(1+want[i].Norm2())) {
			t.Fatalf("round %d: updated-system estimate diverges from fresh system", i)
		}
	}

	// Remove the duplicate again: rank-1 downdate back to 23 paths.
	removed, info, err := added.RemovePath(added.NumPaths() - 1)
	if err != nil {
		t.Fatalf("RemovePath: %v", err)
	}
	if info.Method != "rank1-downdate" {
		t.Fatalf("RemovePath method = %q, want rank1-downdate", info.Method)
	}
	if removed.Digest() != sys.Digest() {
		t.Fatal("add+remove round trip changed the routing-matrix digest")
	}
	ys = randomRounds(rng, 10, removed.NumPaths())
	for i, y := range ys {
		want, err := sys.Estimate(y)
		if err != nil {
			t.Fatalf("base Estimate: %v", err)
		}
		got, err := removed.Estimate(y)
		if err != nil {
			t.Fatalf("round-trip Estimate: %v", err)
		}
		if !got.Equal(want, tol*(1+want.Norm2())) {
			t.Fatalf("round %d: round-trip estimate diverges from base system", i)
		}
	}
}

func TestAddRemovePathSparseRoutes(t *testing.T) {
	f, dense := fig1System(t)
	sp, err := NewSparseSystem(f.G, dense.Paths())
	if err != nil {
		t.Fatalf("NewSparseSystem: %v", err)
	}
	if _, err := sp.Solver(); err != nil {
		t.Fatalf("warm solver: %v", err)
	}
	dup := sp.Paths()[0].Clone()
	added, info, err := sp.AddPath(dup)
	if err != nil {
		t.Fatalf("AddPath: %v", err)
	}
	if info.Method != "sparse-append" {
		t.Fatalf("sparse AddPath method = %q, want sparse-append", info.Method)
	}
	if added.Dense() {
		t.Fatal("sparse system lost forced-sparse representation through AddPath")
	}
	rng := rand.New(rand.NewSource(13))
	ys := randomRounds(rng, 5, added.NumPaths())
	_, want := freshEstimates(t, f.G, added.Paths(), false, ys)
	got, err := added.EstimateBatch(ys)
	if err != nil {
		t.Fatalf("EstimateBatch: %v", err)
	}
	for i := range ys {
		if !got[i].Equal(want[i], 1e-6*(1+want[i].Norm2())) {
			t.Fatalf("round %d: sparse-append estimate diverges from dense oracle", i)
		}
	}

	removed, info, err := added.RemovePath(added.NumPaths() - 1)
	if err != nil {
		t.Fatalf("RemovePath: %v", err)
	}
	if info.Method != "coverage-screen" {
		t.Fatalf("sparse RemovePath method = %q, want coverage-screen", info.Method)
	}
	if removed.Digest() != sp.Digest() {
		t.Fatal("sparse add+remove round trip changed the digest")
	}
}

// Removing the only path covering a link must fail explicitly on both
// routes — never return a system with a garbage factor.
func TestRemovePathToUnidentifiableErrors(t *testing.T) {
	g := graph.New()
	a, b, c := g.AddNode("a"), g.AddNode("b"), g.AddNode("c")
	ab, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := g.AddLink(b, c)
	if err != nil {
		t.Fatal(err)
	}
	paths := []graph.Path{
		{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{ab}},
		{Nodes: []graph.NodeID{a, b, c}, Links: []graph.LinkID{ab, bc}},
	}
	for _, sparse := range []bool{false, true} {
		var sys *System
		if sparse {
			sys, err = NewSparseSystem(g, paths)
		} else {
			sys, err = NewSystem(g, paths)
		}
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Solver(); err != nil {
			t.Fatalf("sparse=%v: base system not identifiable: %v", sparse, err)
		}
		// Removing the 2-link path leaves link bc uncovered.
		if got, _, err := sys.RemovePath(1); !errors.Is(err, ErrNotIdentifiable) || got != nil {
			t.Fatalf("sparse=%v: RemovePath(1): sys %v, err %v; want nil + ErrNotIdentifiable", sparse, got, err)
		}
		// Index guards.
		if _, _, err := sys.RemovePath(2); !errors.Is(err, la.ErrShape) {
			t.Fatalf("sparse=%v: out-of-range RemovePath err = %v", sparse, err)
		}
	}
}

// Acceptance bar: at 10k links (sparse route) a path mutation through
// AddPath/RemovePath must be ≥ 5x faster than a cold rebuild, because
// the incremental route skips the CondEst identifiability screen —
// mathematically safe for row addition, which cannot lose column rank.
func TestPathUpdateSpeedupAt10kLinks(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-link speedup bar skipped in -short")
	}
	const links = 10_000
	g, err := topo.Backbone(7, links)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := topo.BackbonePaths(g, 400, 7)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSparseSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Solver(); err != nil {
		t.Fatal(err)
	}
	dup := paths[len(paths)-1].Clone()

	cold, warm := time.Duration(1<<62), time.Duration(1<<62)
	for rep := 0; rep < 3; rep++ {
		t0 := time.Now()
		cs, err := NewSparseSystem(g, append(append([]graph.Path(nil), paths...), dup))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cs.Solver(); err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < cold {
			cold = d
		}

		t0 = time.Now()
		ns, info, err := sys.AddPath(dup)
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(t0); d < warm {
			warm = d
		}
		if info.Method != "sparse-append" {
			t.Fatalf("method = %q, want sparse-append", info.Method)
		}
		if _, err := ns.Solver(); err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("10k-link path add: cold rebuild %v, rank-1 route %v (%.1fx)", cold, warm, float64(cold)/float64(warm))
	if warm*5 > cold {
		t.Fatalf("path update %v not ≥5x faster than cold rebuild %v", warm, cold)
	}
}

// BenchmarkEstimateBatch measures the amortized batched estimate
// against a loop of one-shot estimates, on both solver routes.
func BenchmarkEstimateBatch(b *testing.B) {
	f := topo.Fig1()
	paths, _, err := SelectPaths(f.G, f.Monitors, SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	mk := func(sparse bool) *System {
		var sys *System
		var err error
		if sparse {
			sys, err = NewSparseSystem(f.G, paths)
		} else {
			sys, err = NewSystem(f.G, paths)
		}
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sys.Solver(); err != nil {
			b.Fatal(err)
		}
		return sys
	}
	// Streaming rounds drift: consecutive measurements differ by a small
	// perturbation (congestion evolving), which is exactly what the warm
	// CGLS start amortizes.
	const rounds = 1000
	ys := make([]la.Vector, rounds)
	base := randomRounds(rng, 1, len(paths))[0]
	for i := range ys {
		y := base.Clone()
		for j := range y {
			y[j] += 0.01 * rng.NormFloat64()
		}
		ys[i] = y
		base = y
	}

	b.Run("dense-batch-1k", func(b *testing.B) {
		sys := mk(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.EstimateBatch(ys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dense-loop-1k", func(b *testing.B) {
		sys := mk(false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, y := range ys {
				if _, err := sys.Estimate(y); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("sparse-warm-batch-1k", func(b *testing.B) {
		sys := mk(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.EstimateBatch(ys); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse-cold-loop-1k", func(b *testing.B) {
		sys := mk(true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, y := range ys {
				if _, err := sys.Estimate(y); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
