package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/serve"
)

// DefaultPollInterval is the follower pull cadence when none is set.
const DefaultPollInterval = 500 * time.Millisecond

// maxBatchBytes bounds one replication response body. Snapshot resyncs
// ship every live topology doc, so the cap is sized like the store's
// own record cap rather than a request-sized one.
const maxBatchBytes = 256 << 20

// Tailer pulls a primary's WAL into a follower: each Step fetches the
// records after the follower's last applied sequence, journals them to
// the follower's store (durability first, exactly like the primary's
// journal-then-apply order), then folds them into the follower's
// registry. The follower's WAL ends up byte-identical to the primary's
// because shipped records keep the primary's sequence numbers and the
// frame encoding is deterministic.
//
// The tailer is the follower store's only writer until failover: the
// follower's registry has no attached store, and Promote attaches it
// only after the tailer stops being relevant (a promoted node's Step
// becomes a no-op).
type Tailer struct {
	// Server is the follower being fed.
	Server *serve.Server
	// Source returns the current primary's base URL — a closure over the
	// group so failover re-points the tailer without coordination.
	Source func() string
	// HTTP issues the pulls (nil = http.DefaultClient).
	HTTP *http.Client
	// Interval is the Run poll cadence (0 = DefaultPollInterval).
	Interval time.Duration
	// Logger receives pull failures (nil = silent).
	Logger *slog.Logger
}

// Step performs one pull-and-apply cycle and returns how many records
// (or resync docs) were applied. A Step on a node that is no longer a
// follower is a no-op, so a promoted node's still-running tailer
// cannot write behind its registry's back.
func (t *Tailer) Step(ctx context.Context) (int, error) {
	if t.Server.Role() != serve.RoleFollower {
		return 0, nil
	}
	st := t.Server.ReplicationStore()
	from := st.LastSeq()
	url := strings.TrimRight(t.Source(), "/") + "/v1/replication/wal?from=" + strconv.FormatUint(from, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	httpc := t.HTTP
	if httpc == nil {
		httpc = http.DefaultClient
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("cluster: wal pull: %w", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxBatchBytes))
	if err != nil {
		return 0, fmt.Errorf("cluster: wal pull body: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("cluster: wal pull: status %d: %s", resp.StatusCode, raw)
	}
	var batch serve.ReplicationBatch
	if err := json.Unmarshal(raw, &batch); err != nil {
		return 0, fmt.Errorf("cluster: wal pull decode: %w", err)
	}

	applied := 0
	if batch.Resync {
		// Compaction folded the tail this follower needed — or the
		// follower is AHEAD of the primary (a stale ex-primary rejoining
		// after a failover it missed): either way, install the primary's
		// full state instead of records. Journal first, then replace the
		// registry through the digest-verified restore path.
		if last := st.LastSeq(); batch.ResyncSeq < last {
			discarded, err := st.ForceInstallSnapshot(batch.Docs, batch.ResyncSeq)
			if err != nil {
				return 0, fmt.Errorf("cluster: divergence resync: %w", err)
			}
			if t.Logger != nil {
				t.Logger.Warn("follower was ahead of its primary; diverged tail discarded",
					"local_seq", last, "primary_seq", batch.ResyncSeq, "discarded", discarded)
			}
		} else if err := st.InstallSnapshot(batch.Docs, batch.ResyncSeq); err != nil {
			return 0, fmt.Errorf("cluster: resync snapshot: %w", err)
		}
		if err := t.Server.Registry().ResetReplicated(ctx, batch.Docs); err != nil {
			return 0, fmt.Errorf("cluster: resync registry: %w", err)
		}
		applied = len(batch.Docs)
	} else {
		for _, wr := range batch.Records {
			rec, err := wr.StoreRecord()
			if err != nil {
				return applied, err
			}
			if err := st.ApplyRecord(rec); err != nil {
				return applied, fmt.Errorf("cluster: journal seq %d: %w", rec.Seq, err)
			}
			if err := t.Server.Registry().ApplyReplicated(ctx, rec); err != nil {
				return applied, fmt.Errorf("cluster: apply seq %d: %w", rec.Seq, err)
			}
			applied++
		}
	}
	lag := uint64(0)
	if last := st.LastSeq(); batch.LastSeq > last {
		lag = batch.LastSeq - last
	}
	t.Server.SetReplicationLag(lag)
	return applied, nil
}

// Run polls until ctx is cancelled or the node stops being a follower
// (promotion ends the tail; the new primary owns its own journal).
// Pull errors are logged and retried on the next tick — a dead primary
// must not kill the tailer, because failover will re-point Source at
// the promoted node.
func (t *Tailer) Run(ctx context.Context) {
	iv := t.Interval
	if iv <= 0 {
		iv = DefaultPollInterval
	}
	tick := time.NewTicker(iv)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if t.Server.Role() != serve.RoleFollower {
			return
		}
		if _, err := t.Step(ctx); err != nil && t.Logger != nil {
			t.Logger.Warn("replication pull failed", "source", t.Source(), "err", err)
		}
	}
}
