package cluster_test

import (
	"fmt"
	"net/http"
	"testing"
)

// benchFleetEstimate drives estimate traffic through the router over a
// fleet of the given shape — the single-shard run is the baseline the
// three-shard run is compared against in BENCH_cluster.json.
func benchFleetEstimate(b *testing.B, groups, replicas int) {
	f := newTestFleet(b, groups, replicas)
	const topos = 3
	for k := 0; k < topos; k++ {
		mustRegister(b, f, fmt.Sprintf("chain-%d", k+3), k+3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := i % topos
		status, _ := estimateXHat(b, f.ts.URL, fmt.Sprintf("chain-%d", k+3), k+3)
		if status != http.StatusOK {
			b.Fatalf("estimate: %d", status)
		}
	}
}

func BenchmarkClusterSingleShardEstimate(b *testing.B) { benchFleetEstimate(b, 1, 1) }

func BenchmarkClusterThreeShardEstimate(b *testing.B) { benchFleetEstimate(b, 3, 2) }

// BenchmarkClusterFailoverToWarm measures the failover path end to end:
// primary dead → follower promoted → first successful read through the
// router. The follower is warm (its journal and registry already hold
// the topology), so this is promotion plus routing, not recovery.
func BenchmarkClusterFailoverToWarm(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		f := newTestFleet(b, 1, 2)
		mustRegister(b, f, "chain-3", 3)
		f.shards[0][0].ts.CloseClientConnections()
		f.shards[0][0].ts.Close()
		b.StartTimer()

		if err := f.rt.Failover(0); err != nil {
			b.Fatal(err)
		}
		if status, _ := estimateXHat(b, f.ts.URL, "chain-3", 3); status != http.StatusOK {
			b.Fatalf("estimate after failover: %d", status)
		}

		b.StopTimer()
		// Release sockets eagerly: b.Cleanup only runs when the whole
		// benchmark ends, and b.N fleets of open listeners add up.
		f.ts.Close()
		for _, row := range f.shards {
			for _, sh := range row {
				sh.ts.Close()
				sh.st.Close()
			}
		}
		b.StartTimer()
	}
}
