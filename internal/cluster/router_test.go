package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/store"
)

// testShard is one in-process tomographyd with a durable store.
type testShard struct {
	srv *serve.Server
	ts  *httptest.Server
	st  *store.Store
	// tailer is nil on the boot primary.
	tailer *cluster.Tailer
}

// testFleet wires groups×replicas shards behind a router whose
// AfterWrite hook steps every follower tailer synchronously — the same
// deterministic-replication shape the e2e fleet harness uses.
type testFleet struct {
	rt     *cluster.Router
	ts     *httptest.Server
	shards [][]*testShard

	mu       sync.Mutex
	syncErrs []error
}

func newTestFleet(t testing.TB, groups, replicas int) *testFleet {
	t.Helper()
	f := &testFleet{}
	urls := make([][]string, groups)
	for g := 0; g < groups; g++ {
		var row []*testShard
		for i := 0; i < replicas; i++ {
			st, err := store.Open(context.Background(), t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			srv := serve.New(serve.Config{RequestTimeout: -1})
			if i == 0 {
				srv.Registry().AttachStore(st)
				srv.EnableReplication(st, serve.RolePrimary)
			} else {
				srv.EnableReplication(st, serve.RoleFollower)
			}
			sh := &testShard{srv: srv, st: st, ts: httptest.NewServer(srv.Handler())}
			t.Cleanup(sh.ts.Close)
			t.Cleanup(func() { sh.st.Close() })
			row = append(row, sh)
			urls[g] = append(urls[g], sh.ts.URL)
		}
		f.shards = append(f.shards, row)
	}
	rt, err := cluster.New(cluster.Config{Groups: urls})
	if err != nil {
		t.Fatal(err)
	}
	f.rt = rt
	for g, row := range f.shards {
		grp := rt.Groups()[g]
		for _, sh := range row[1:] {
			sh.tailer = &cluster.Tailer{
				Server: sh.srv,
				Source: func() string { return grp.Primary().URL },
			}
		}
	}
	rt.AfterWrite = func(g int) {
		for _, sh := range f.shards[g][1:] {
			for {
				n, err := sh.tailer.Step(context.Background())
				if err != nil {
					f.mu.Lock()
					f.syncErrs = append(f.syncErrs, err)
					f.mu.Unlock()
					return
				}
				if n == 0 {
					break
				}
			}
		}
	}
	f.ts = httptest.NewServer(rt)
	t.Cleanup(f.ts.Close)
	t.Cleanup(func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		for _, err := range f.syncErrs {
			t.Errorf("replication sync: %v", err)
		}
	})
	return f
}

// chainReq builds a k-link chain topology (nodes n0..nk) with prefix
// paths, which is identifiable (rank k) and has a digest that depends
// on k — so different k values place on different ring keys.
func chainReq(name string, k int) serve.TopologyRequest {
	req := serve.TopologyRequest{Name: name}
	for i := 0; i < k; i++ {
		req.Edges = append(req.Edges, []string{node(i), node(i + 1)})
	}
	for i := 0; i < k; i++ {
		walk := []string{node(0)}
		for j := 0; j <= i; j++ {
			walk = append(walk, node(j+1))
		}
		req.Paths = append(req.Paths, walk)
	}
	return req
}

func node(i int) string { return fmt.Sprintf("n%d", i) }

// chainY is the measurement vector for true delays x_i = i+1 on a
// k-link chain with prefix paths: y_j = sum of the first j+1 delays.
func chainY(k int) []float64 {
	y := make([]float64, k)
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += float64(i + 1)
		y[i] = sum
	}
	return y
}

func postJSON(t testing.TB, base, path string, body any) (int, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func doReq(t testing.TB, method, url string, body []byte) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func mustRegister(t testing.TB, f *testFleet, name string, k int) {
	t.Helper()
	status, raw := postJSON(t, f.ts.URL, "/v1/topologies", chainReq(name, k))
	if status != http.StatusCreated {
		t.Fatalf("register %s: %d %s", name, status, raw)
	}
}

func estimateXHat(t testing.TB, base, name string, k int) (int, []float64) {
	t.Helper()
	status, raw := postJSON(t, base, "/v1/estimate", serve.RoundsRequest{Topology: name, Y: chainY(k)})
	if status != http.StatusOK {
		return status, nil
	}
	var er serve.EstimateResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("estimate %s: %v (%s)", name, err, raw)
	}
	if len(er.Results) != 1 {
		t.Fatalf("estimate %s: %d results", name, len(er.Results))
	}
	return status, er.Results[0].XHat
}

func TestRouterShardsAndReplicates(t *testing.T) {
	f := newTestFleet(t, 3, 2)
	groupsUsed := make(map[int]bool)
	for k := 1; k <= 6; k++ {
		name := fmt.Sprintf("chain-%d", k)
		mustRegister(t, f, name, k)
		gidx, ok := f.rt.Lookup(name)
		if !ok {
			t.Fatalf("no placement learned for %s", name)
		}
		groupsUsed[gidx] = true

		// Placement is the consistent hash of the routing-matrix digest.
		req := chainReq(name, k)
		digest, err := serve.WireDigest(req.Edges, req.Paths)
		if err != nil {
			t.Fatal(err)
		}
		if want := f.rt.Ring().Place(digest); want != gidx {
			t.Fatalf("%s placed on group %d, ring says %d", name, gidx, want)
		}

		// Two reads through the router land on different replicas
		// (round-robin) yet return identical solves.
		_, x1 := estimateXHat(t, f.ts.URL, name, k)
		_, x2 := estimateXHat(t, f.ts.URL, name, k)
		for i := range x1 {
			if x1[i] != x2[i] {
				t.Fatalf("%s: replica solves differ at %d: %g vs %g", name, i, x1[i], x2[i])
			}
			if want := float64(i + 1); absDiff(x1[i], want) > 1e-9 {
				t.Fatalf("%s: xhat[%d] = %g, want %g", name, i, x1[i], want)
			}
		}

		// The follower already serves the replicated topology directly,
		// and reports follower role with zero lag.
		follower := f.shards[gidx][1]
		if status, _ := estimateXHat(t, follower.ts.URL, name, k); status != http.StatusOK {
			t.Fatalf("%s: follower direct estimate: %d", name, status)
		}
		var hz serve.HealthResponse
		_, raw := doReq(t, http.MethodGet, follower.ts.URL+"/healthz", nil)
		if err := json.Unmarshal(raw, &hz); err != nil {
			t.Fatal(err)
		}
		if hz.Role != "follower" || hz.ReplicationLag == nil || *hz.ReplicationLag != 0 {
			t.Fatalf("%s: follower healthz %s", name, raw)
		}
	}
	if len(groupsUsed) < 2 {
		t.Fatalf("6 distinct digests all hashed to one group: %v", groupsUsed)
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestRouterEvictFollowsPlacement(t *testing.T) {
	f := newTestFleet(t, 2, 2)
	mustRegister(t, f, "chain-3", 3)
	gidx, _ := f.rt.Lookup("chain-3")

	status, raw := doReq(t, http.MethodDelete, f.ts.URL+"/v1/topologies/chain-3", nil)
	if status != http.StatusOK {
		t.Fatalf("evict: %d %s", status, raw)
	}
	if _, ok := f.rt.Lookup("chain-3"); ok {
		t.Fatal("placement survived eviction")
	}
	if status, _ := estimateXHat(t, f.ts.URL, "chain-3", 3); status != http.StatusNotFound {
		t.Fatalf("estimate after evict: %d", status)
	}
	// The eviction replicated: the group's follower 404s too.
	if status, _ := estimateXHat(t, f.shards[gidx][1].ts.URL, "chain-3", 3); status != http.StatusNotFound {
		t.Fatalf("follower estimate after evict: %d", status)
	}
}

// Unknown names and malformed bodies must route deterministically (the
// load generator's fault ops assert exact statuses run after run).
func TestRouterFaultRoutingDeterministic(t *testing.T) {
	f := newTestFleet(t, 3, 1)
	for i := 0; i < 3; i++ {
		if status, _ := estimateXHat(t, f.ts.URL, "ghost", 2); status != http.StatusNotFound {
			t.Fatalf("ghost estimate run %d: %d", i, status)
		}
		resp, err := http.Post(f.ts.URL+"/v1/estimate", "application/json",
			strings.NewReader(`{"topology": "chain`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("malformed estimate run %d: %d", i, resp.StatusCode)
		}
	}
}

func TestRouterWriteFailoverPromotesWarmFollower(t *testing.T) {
	f := newTestFleet(t, 1, 3)
	mustRegister(t, f, "chain-2", 2)
	mustRegister(t, f, "chain-3", 3)

	// Crash the primary without ceremony.
	f.shards[0][0].ts.CloseClientConnections()
	f.shards[0][0].ts.Close()

	// The next write fails over transparently: the router marks the dead
	// primary down, promotes the first live follower (warm — its journal
	// is byte-identical), and re-sends.
	mustRegister(t, f, "chain-4", 4)

	if got := f.rt.Metrics().Failovers.Load(); got != 1 {
		t.Fatalf("failovers = %d, want 1", got)
	}
	g := f.rt.Groups()[0]
	if g.PrimaryIndex() != 1 {
		t.Fatalf("primary index after failover: %d", g.PrimaryIndex())
	}
	promoted := f.shards[0][1]
	if promoted.srv.Role() != serve.RolePrimary {
		t.Fatalf("promoted shard role: %v", promoted.srv.Role())
	}
	// Zero acknowledged-write loss: every write acked before and after
	// the crash is served, and the promoted journal holds all three.
	for k := 2; k <= 4; k++ {
		if status, _ := estimateXHat(t, f.ts.URL, fmt.Sprintf("chain-%d", k), k); status != http.StatusOK {
			t.Fatalf("chain-%d lost across failover: %d", k, status)
		}
	}
	if got := promoted.st.LastSeq(); got != 3 {
		t.Fatalf("promoted WAL seq = %d, want 3", got)
	}
	// The surviving follower re-pointed its tail at the new primary and
	// replicated the post-failover write.
	if status, _ := estimateXHat(t, f.shards[0][2].ts.URL, "chain-4", 4); status != http.StatusOK {
		t.Fatal("surviving follower missed the post-failover write")
	}
	if got := f.shards[0][2].st.LastSeq(); got != 3 {
		t.Fatalf("surviving follower WAL seq = %d, want 3", got)
	}
}

func TestRouterSessionsSticky(t *testing.T) {
	f := newTestFleet(t, 2, 2)
	mustRegister(t, f, "chain-2", 2)

	status, raw := postJSON(t, f.ts.URL, "/v1/sessions", serve.SessionRequest{Topology: "chain-2"})
	if status != http.StatusCreated {
		t.Fatalf("session create: %d %s", status, raw)
	}
	var sess serve.SessionResponse
	if err := json.Unmarshal(raw, &sess); err != nil {
		t.Fatal(err)
	}

	// Rounds stream through the pinned node.
	line, err := json.Marshal(serve.StreamRound{Y: chainY(2)})
	if err != nil {
		t.Fatal(err)
	}
	status, raw = doReq(t, http.MethodPost, f.ts.URL+"/v1/sessions/"+sess.Session+"/rounds", append(line, '\n'))
	if status != http.StatusOK {
		t.Fatalf("rounds: %d %s", status, raw)
	}
	var verdict serve.StreamVerdict
	if err := json.Unmarshal([]byte(strings.SplitN(string(raw), "\n", 2)[0]), &verdict); err != nil {
		t.Fatalf("verdict line: %v (%s)", err, raw)
	}

	status, raw = doReq(t, http.MethodGet, f.ts.URL+"/v1/sessions/"+sess.Session, nil)
	if status != http.StatusOK {
		t.Fatalf("session get: %d %s", status, raw)
	}
	var ss serve.SessionStatusResponse
	if err := json.Unmarshal(raw, &ss); err != nil {
		t.Fatal(err)
	}
	if ss.Rounds != 1 {
		t.Fatalf("session rounds = %d, want 1", ss.Rounds)
	}

	if status, raw = doReq(t, http.MethodDelete, f.ts.URL+"/v1/sessions/"+sess.Session, nil); status != http.StatusOK {
		t.Fatalf("session delete: %d %s", status, raw)
	}
	// The pin is gone: the router itself 404s without touching a shard.
	if status, _ = doReq(t, http.MethodGet, f.ts.URL+"/v1/sessions/"+sess.Session, nil); status != http.StatusNotFound {
		t.Fatalf("deleted session get: %d", status)
	}
	if status, _ = doReq(t, http.MethodGet, f.ts.URL+"/v1/sessions/no-such-session", nil); status != http.StatusNotFound {
		t.Fatalf("ghost session get: %d", status)
	}
}

func TestRouterFanReadsAndClusterEndpoints(t *testing.T) {
	f := newTestFleet(t, 2, 2)
	mustRegister(t, f, "chain-2", 2)

	// /healthz and /metrics proxy real shard bodies.
	status, raw := doReq(t, http.MethodGet, f.ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz: %d %s", status, raw)
	}
	var hz serve.HealthResponse
	if err := json.Unmarshal(raw, &hz); err != nil || hz.Status != "ok" {
		t.Fatalf("healthz body: %v %s", err, raw)
	}
	status, raw = doReq(t, http.MethodGet, f.ts.URL+"/metrics", nil)
	if status != http.StatusOK || !strings.Contains(string(raw), "tomographyd_requests_total") {
		t.Fatalf("metrics: %d %.120s", status, raw)
	}

	// The router's own fleet view.
	status, raw = doReq(t, http.MethodGet, f.ts.URL+"/cluster/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("cluster healthz: %d", status)
	}
	var ch cluster.ClusterHealth
	if err := json.Unmarshal(raw, &ch); err != nil {
		t.Fatal(err)
	}
	if len(ch.Groups) != 2 || len(ch.Groups[0].Nodes) != 2 || ch.Placements != 1 {
		t.Fatalf("cluster healthz body: %s", raw)
	}
	if !ch.Groups[0].Nodes[0].Primary || ch.Groups[0].Nodes[1].Primary {
		t.Fatalf("primary flags wrong: %s", raw)
	}
	status, raw = doReq(t, http.MethodGet, f.ts.URL+"/cluster/metrics", nil)
	if status != http.StatusOK || !strings.Contains(string(raw), "tomographyd_cluster_requests_total") {
		t.Fatalf("cluster metrics: %d %.120s", status, raw)
	}
	if !strings.Contains(string(raw), "tomographyd_cluster_groups 2") {
		t.Fatalf("cluster groups gauge missing: %s", raw)
	}
}

// A read with the primary dead retries onto a follower without the
// client noticing — the replica's response is byte-identical.
func TestRouterReadRetriesAcrossReplicas(t *testing.T) {
	f := newTestFleet(t, 1, 2)
	mustRegister(t, f, "chain-3", 3)
	_, want := estimateXHat(t, f.ts.URL, "chain-3", 3)

	f.shards[0][0].ts.CloseClientConnections()
	f.shards[0][0].ts.Close()

	// Repeated reads all succeed from the follower.
	for i := 0; i < 4; i++ {
		status, got := estimateXHat(t, f.ts.URL, "chain-3", 3)
		if status != http.StatusOK {
			t.Fatalf("read %d after primary death: %d", i, status)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("read %d: xhat differs at %d", i, j)
			}
		}
	}
	if f.rt.Metrics().ReadRetries.Load() == 0 {
		t.Fatal("no read retries counted")
	}
}

// A client hanging up must not be blamed on the fleet: no node marked
// down, no failover, no promotion — a single impatient client must
// never erode the routing table or depose a healthy primary.
func TestRouterClientCancelLeavesFleetUp(t *testing.T) {
	f := newTestFleet(t, 1, 2)
	mustRegister(t, f, "chain-2", 2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	estBody, err := json.Marshal(serve.RoundsRequest{Topology: "chain-2", Y: chainY(2)})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/estimate", bytes.NewReader(estBody)).WithContext(ctx)
	f.rt.ServeHTTP(httptest.NewRecorder(), req)

	regBody, err := json.Marshal(chainReq("chain-4", 4))
	if err != nil {
		t.Fatal(err)
	}
	req = httptest.NewRequest(http.MethodPost, "/v1/topologies", bytes.NewReader(regBody)).WithContext(ctx)
	f.rt.ServeHTTP(httptest.NewRecorder(), req)

	g := f.rt.Groups()[0]
	for _, n := range g.Nodes() {
		if n.Down() {
			t.Fatalf("%s marked down by a client cancel", n.Name)
		}
	}
	if got := f.rt.Metrics().Failovers.Load(); got != 0 {
		t.Fatalf("client cancel triggered %d failovers", got)
	}
	if g.PrimaryIndex() != 0 {
		t.Fatal("client cancel moved the primary")
	}
	// The fleet still serves reads and takes the abandoned write fresh.
	if status, _ := estimateXHat(t, f.ts.URL, "chain-2", 2); status != http.StatusOK {
		t.Fatalf("read after client cancel: %d", status)
	}
	mustRegister(t, f, "chain-4", 4)
}

// Down is a decaying hint: the prober returns a reachable node to
// routing and leaves a genuinely dead one alone.
func TestRouterProberRecoversNodes(t *testing.T) {
	f := newTestFleet(t, 1, 2)
	follower := f.rt.Groups()[0].Nodes()[1]

	follower.MarkDown()
	if got := f.rt.ProbeDown(context.Background()); got != 1 {
		t.Fatalf("ProbeDown recovered %d nodes, want 1", got)
	}
	if follower.Down() {
		t.Fatal("reachable node still down after probe")
	}
	if got := f.rt.Metrics().Recoveries.Load(); got != 1 {
		t.Fatalf("recoveries counter = %d, want 1", got)
	}

	f.shards[0][1].ts.CloseClientConnections()
	f.shards[0][1].ts.Close()
	follower.MarkDown()
	if got := f.rt.ProbeDown(context.Background()); got != 0 {
		t.Fatalf("ProbeDown revived a dead node (%d recovered)", got)
	}
	if !follower.Down() {
		t.Fatal("dead node probed back into routing")
	}
}

// A restarted router (empty placement map) must re-learn where existing
// topologies live from the fleet, not fall back to hashing names.
func TestRouterRestartRebuildsPlacements(t *testing.T) {
	f := newTestFleet(t, 3, 1)
	for k := 1; k <= 6; k++ {
		mustRegister(t, f, fmt.Sprintf("chain-%d", k), k)
	}

	urls := make([][]string, len(f.shards))
	for g, row := range f.shards {
		for _, sh := range row {
			urls[g] = append(urls[g], sh.ts.URL)
		}
	}
	rt2, err := cluster.New(cluster.Config{Groups: urls})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt2.SyncPlacements(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2)
	defer ts2.Close()

	for k := 1; k <= 6; k++ {
		name := fmt.Sprintf("chain-%d", k)
		want, ok := f.rt.Lookup(name)
		if !ok {
			t.Fatalf("original router lost placement for %s", name)
		}
		got, ok := rt2.Lookup(name)
		if !ok || got != want {
			t.Fatalf("restarted router placed %s on %d (known %v), original on %d", name, got, ok, want)
		}
		if status, _ := estimateXHat(t, ts2.URL, name, k); status != http.StatusOK {
			t.Fatalf("estimate %s through restarted router: %d", name, status)
		}
	}
	// Mutations through the restarted router land on the owning shard.
	if status, raw := doReq(t, http.MethodDelete, ts2.URL+"/v1/topologies/chain-1", nil); status != http.StatusOK {
		t.Fatalf("evict through restarted router: %d %s", status, raw)
	}
	if status, _ := estimateXHat(t, ts2.URL, "chain-1", 1); status != http.StatusNotFound {
		t.Fatal("evict through restarted router did not reach the owning shard")
	}
}

// Re-registering a live name with a different shape must reach the
// owning group (whose primary answers 409), not hash the new digest
// onto another group where a 201 would fork fleet-wide name uniqueness.
func TestRouterReRegisterRoutesToOwner(t *testing.T) {
	f := newTestFleet(t, 3, 1)
	mustRegister(t, f, "dup", 3)
	owner, ok := f.rt.Lookup("dup")
	if !ok {
		t.Fatal("no placement learned for dup")
	}

	// Find a shape whose digest hashes to a different group.
	alt := 0
	for k := 1; k <= 20 && alt == 0; k++ {
		req := chainReq("dup", k)
		digest, err := serve.WireDigest(req.Edges, req.Paths)
		if err != nil {
			t.Fatal(err)
		}
		if k != 3 && f.rt.Ring().Place(digest) != owner {
			alt = k
		}
	}
	if alt == 0 {
		t.Fatal("no alternate shape hashed off the owning group")
	}

	status, raw := postJSON(t, f.ts.URL, "/v1/topologies", chainReq("dup", alt))
	if status != http.StatusConflict {
		t.Fatalf("re-register with new shape: %d %s, want 409", status, raw)
	}
	if g, _ := f.rt.Lookup("dup"); g != owner {
		t.Fatalf("re-register moved the placement to group %d", g)
	}
	// No stray copy on the group the new digest hashes to.
	req := chainReq("dup", alt)
	digest, err := serve.WireDigest(req.Edges, req.Paths)
	if err != nil {
		t.Fatal(err)
	}
	stray := f.rt.Ring().Place(digest)
	if status, _ := estimateXHat(t, f.shards[stray][0].ts.URL, "dup", alt); status != http.StatusNotFound {
		t.Fatalf("stranded copy serving on group %d: %d", stray, status)
	}
	// The original registration still serves through the router.
	if status, _ := estimateXHat(t, f.ts.URL, "dup", 3); status != http.StatusOK {
		t.Fatalf("original registration lost: %d", status)
	}
}

// Failover must promote the follower with the highest applied WAL
// sequence, not the first one in ring order — promoting a laggard would
// silently drop acknowledged writes a better candidate still holds.
func TestRouterFailoverPromotesMostCaughtUpFollower(t *testing.T) {
	f := newTestFleet(t, 1, 3)
	mustRegister(t, f, "chain-2", 2) // both followers replicate seq 1

	// Let only follower 2 replicate the next write: follower 1 lags.
	full := f.rt.AfterWrite
	f.rt.AfterWrite = func(g int) {
		sh := f.shards[g][2]
		for {
			n, err := sh.tailer.Step(context.Background())
			if err != nil {
				t.Errorf("step %s: %v", sh.ts.URL, err)
				return
			}
			if n == 0 {
				return
			}
		}
	}
	mustRegister(t, f, "chain-3", 3)
	f.rt.AfterWrite = full
	if got := f.shards[0][1].st.LastSeq(); got != 1 {
		t.Fatalf("laggard follower at seq %d, want 1", got)
	}
	if got := f.shards[0][2].st.LastSeq(); got != 2 {
		t.Fatalf("caught-up follower at seq %d, want 2", got)
	}

	f.shards[0][0].ts.CloseClientConnections()
	f.shards[0][0].ts.Close()
	if err := f.rt.Failover(0); err != nil {
		t.Fatal(err)
	}
	g := f.rt.Groups()[0]
	if g.PrimaryIndex() != 2 {
		t.Fatalf("failover promoted index %d, want the most-caught-up follower 2", g.PrimaryIndex())
	}
	// Zero acknowledged-write loss on the promoted node: both
	// registrations survive in its journal and registry.
	for k := 2; k <= 3; k++ {
		if status, _ := estimateXHat(t, f.shards[0][2].ts.URL, fmt.Sprintf("chain-%d", k), k); status != http.StatusOK {
			t.Fatalf("chain-%d lost across failover: %d", k, status)
		}
	}
	// The laggard re-points at the promoted primary and catches up;
	// from then on every replica serves every acked write.
	for {
		n, err := f.shards[0][1].tailer.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			break
		}
	}
	if got := f.shards[0][1].st.LastSeq(); got != 2 {
		t.Fatalf("laggard follower at seq %d after catch-up, want 2", got)
	}
	for k := 2; k <= 3; k++ {
		if status, _ := estimateXHat(t, f.ts.URL, fmt.Sprintf("chain-%d", k), k); status != http.StatusOK {
			t.Fatalf("chain-%d unreadable through the router after catch-up: %d", k, status)
		}
	}
}
