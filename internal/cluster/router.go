package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// maxProxyBody bounds a buffered request body on the retryable routes.
// Sticky session routes stream instead (NDJSON round feeds can be
// arbitrarily long) and are never retried.
const maxProxyBody = 64 << 20

// Config parameterizes a Router.
type Config struct {
	// Groups lists the fleet: one slice of node base URLs per
	// replication group, primary first.
	Groups [][]string
	// Vnodes is the per-group virtual-node count (0 = DefaultVnodes).
	Vnodes int
	// Client issues the proxied requests (nil = http.DefaultClient). A
	// chaos-wrapped client here simulates shard partitions: transport
	// errors mark the node down and engage read retry / write failover.
	Client *http.Client
	// Logger receives routing events (nil = silent).
	Logger *slog.Logger
	// Registry receives the tomographyd_cluster_* instruments (nil
	// allocates a private one, served on /cluster/metrics).
	Registry *obs.Registry
}

// Router is the fleet's front door: an http.Handler speaking the same
// API as a single tomographyd, dispatching each request to the right
// shard.
//
//   - Registrations hash their routing-matrix digest onto the ring and
//     forward to the owning group's primary; the ack is the shard's own
//     ack, which the daemon only sends after journaling (durability
//     before acknowledgement is inherited, not re-implemented).
//   - Evictions follow the placement learned at registration.
//   - Estimates, inspections, and forensics reads round-robin across
//     the owning group's replicas, retrying on transport failure or
//     shard-internal errors (5xx); any caught-up replica serves the
//     byte-identical response, so retry is invisible to the client.
//   - Sessions are sticky: created on a round-robin replica, then
//     pinned to that node (round state is node-local).
//   - /healthz and /metrics fan out round-robin across every node in
//     the fleet; the router's own fleet view lives on /cluster/healthz
//     and /cluster/metrics so per-shard bodies stay exactly what a
//     standalone daemon would serve.
//
// If a write finds the primary unreachable, the router fails over:
// marks it down, promotes the most-caught-up live follower (max applied
// WAL sequence over /healthz; the promoted journal is byte-identical to
// the dead primary's up to that sequence), and re-sends. Reads never
// promote — they just try the next replica. Down is a decaying hint,
// not a verdict: client-caused failures (cancel, timeout) never mark a
// node down, and ProbeDown/RunProber return nodes to routing once they
// answer /healthz again. SyncPlacements rebuilds the name → group map
// from the fleet at startup, so a router restart keeps routing
// pre-existing topologies to their shards.
type Router struct {
	ring    *Ring
	groups  []*Group
	flat    []*Node // every node, group-major, for fleet-wide fan reads
	flatGrp []int   // flat[i]'s group index
	httpc   *http.Client
	log     *slog.Logger
	metrics *Metrics
	mux     *http.ServeMux

	// fallback is the deterministic group for requests whose placement
	// key cannot be derived (malformed bodies, unknown names): hash of
	// the empty key. Any shard answers such requests identically (400 or
	// 404), the choice just has to be stable.
	fallback  int
	fanCursor counter

	mu       sync.RWMutex
	place    map[string]int   // topology name → owning group
	sessions map[string]*Node // session id → pinned node

	// AfterWrite, when set, runs after every acknowledged registry
	// mutation with the owning group's index. The deterministic fleet
	// soak uses it to step the group's tailers synchronously so every
	// replica is caught up before the next request can read; production
	// fleets leave it nil and rely on polling tailers plus read retry.
	AfterWrite func(group int)
}

// counter is a tiny atomic round-robin cursor.
type counter struct{ v atomic.Uint32 }

func (c *counter) next(mod int) int { return int((c.v.Add(1) - 1) % uint32(mod)) }

// New builds a router over the given fleet.
func New(cfg Config) (*Router, error) {
	if len(cfg.Groups) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one group")
	}
	ring, err := NewRing(len(cfg.Groups), cfg.Vnodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		ring:     ring,
		httpc:    cfg.Client,
		log:      cfg.Logger,
		metrics:  NewMetrics(cfg.Registry),
		place:    make(map[string]int),
		sessions: make(map[string]*Node),
	}
	if rt.httpc == nil {
		rt.httpc = http.DefaultClient
	}
	if rt.log == nil {
		rt.log = slog.New(slog.DiscardHandler)
	}
	for i, urls := range cfg.Groups {
		g, err := NewGroup(i, urls)
		if err != nil {
			return nil, err
		}
		rt.groups = append(rt.groups, g)
		for _, n := range g.Nodes() {
			rt.flat = append(rt.flat, n)
			rt.flatGrp = append(rt.flatGrp, i)
		}
	}
	rt.fallback = ring.Place("")

	reg := rt.metrics.Registry()
	reg.GaugeFunc("tomographyd_cluster_groups",
		"Replication groups on the placement ring.",
		func() float64 { return float64(len(rt.groups)) })
	reg.GaugeFunc("tomographyd_cluster_nodes_down",
		"Fleet nodes currently routed around.",
		func() float64 {
			var down int
			for _, n := range rt.flat {
				if n.Down() {
					down++
				}
			}
			return float64(down)
		})
	reg.GaugeFunc("tomographyd_cluster_topologies_placed",
		"Topologies with a learned group placement.",
		func() float64 {
			rt.mu.RLock()
			defer rt.mu.RUnlock()
			return float64(len(rt.place))
		})
	reg.GaugeFunc("tomographyd_cluster_sessions_tracked",
		"Sessions pinned to a fleet node.",
		func() float64 {
			rt.mu.RLock()
			defer rt.mu.RUnlock()
			return float64(len(rt.sessions))
		})

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/topologies", rt.handleRegister)
	mux.HandleFunc("DELETE /v1/topologies/{name}", rt.handleEvict)
	mux.HandleFunc("GET /v1/topologies/{name}/forensics", rt.handleNamedRead)
	mux.HandleFunc("POST /v1/estimate", rt.handleBodyRead)
	mux.HandleFunc("POST /v1/inspect", rt.handleBodyRead)
	mux.HandleFunc("POST /v1/sessions", rt.handleSessionCreate)
	mux.HandleFunc("GET /v1/sessions/{id}", rt.handleSessionSticky)
	mux.HandleFunc("DELETE /v1/sessions/{id}", rt.handleSessionSticky)
	mux.HandleFunc("POST /v1/sessions/{id}/rounds", rt.handleSessionSticky)
	mux.HandleFunc("POST /v1/sessions/{id}/paths", rt.handleSessionSticky)
	mux.HandleFunc("GET /healthz", rt.handleFanRead)
	mux.HandleFunc("GET /metrics", rt.handleFanRead)
	mux.HandleFunc("GET /cluster/healthz", rt.handleClusterHealth)
	mux.HandleFunc("GET /cluster/metrics", rt.handleClusterMetrics)
	rt.mux = mux
	return rt, nil
}

// ServeHTTP dispatches to the routing handlers.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Groups exposes the fleet's replication groups.
func (rt *Router) Groups() []*Group { return rt.groups }

// Ring exposes the placement ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Metrics exposes the router instruments.
func (rt *Router) Metrics() *Metrics { return rt.metrics }

// Lookup returns the learned group placement for a topology name.
func (rt *Router) Lookup(name string) (int, bool) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	g, ok := rt.place[name]
	return g, ok
}

// locate resolves a topology name to its group: the placement learned
// at registration when known, otherwise a deterministic hash of the
// name (whose shard will answer 404 — exactly what a ghost name
// deserves, and stable so transcripts don't depend on routing luck).
func (rt *Router) locate(name string) int {
	if g, ok := rt.Lookup(name); ok {
		return g
	}
	return rt.ring.Place(name)
}

// --- Proxy plumbing -----------------------------------------------------

// proxy re-issues r against node. body non-nil means the original body
// was buffered for retry; nil streams r.Body through (sticky routes).
func (rt *Router) proxy(r *http.Request, node *Node, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else if r.Body != nil {
		rd = r.Body
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, node.URL+r.URL.RequestURI(), rd)
	if err != nil {
		return nil, err
	}
	req.Header = r.Header.Clone()
	return rt.httpc.Do(req)
}

// clientCaused reports whether a proxy error traces back to the client
// side of r: the inbound request's context was cancelled or timed out,
// so the upstream node is not to blame for the failure. Marking nodes
// down on such errors would let a single impatient client erode the
// routing table one cancel at a time — and, on the write path, trigger
// a spurious failover while the real primary is alive — so callers
// abort the request instead of blaming the node and retrying.
func clientCaused(r *http.Request, err error) bool {
	if r.Context().Err() != nil {
		return true
	}
	return errors.Is(err, context.Canceled)
}

// nodeHealth fetches and decodes a node's /healthz body — the router's
// window into a shard's role, applied WAL sequence, and topology list.
func (rt *Router) nodeHealth(ctx context.Context, n *Node) (serve.HealthResponse, error) {
	var hz serve.HealthResponse
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, n.URL+"/healthz", nil)
	if err != nil {
		return hz, err
	}
	resp, err := rt.httpc.Do(req)
	if err != nil {
		return hz, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return hz, fmt.Errorf("cluster: %s healthz: status %d", n.Name, resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hz); err != nil {
		return hz, fmt.Errorf("cluster: %s healthz: %w", n.Name, err)
	}
	return hz, nil
}

// copyResponse relays a proxied response, flushing between chunks so
// streaming bodies (NDJSON verdicts) flow through instead of buffering.
func copyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

func (rt *Router) jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// readBody buffers a retryable request body.
func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxProxyBody))
	if err != nil {
		rt.jsonError(w, http.StatusBadRequest, "cluster: read request body: "+err.Error())
		return nil, false
	}
	return body, true
}

// readThrough serves a read from any replica of group gidx: replicas in
// round-robin order, skipping down nodes, retrying on transport failure
// (mark down, next replica) and on shard-internal 5xx. Any caught-up
// replica returns the byte-identical response, so the retry is
// invisible in the transcript.
func (rt *Router) readThrough(w http.ResponseWriter, r *http.Request, gidx int, body []byte) {
	g := rt.groups[gidx]
	rt.metrics.Requests.With(strconv.Itoa(gidx)).Add(1)
	tried := 0
	for _, n := range g.readOrder() {
		if n.Down() {
			continue
		}
		if tried > 0 {
			rt.metrics.ReadRetries.Add(1)
		}
		tried++
		resp, err := rt.proxy(r, n, body)
		if err != nil {
			if clientCaused(r, err) {
				rt.jsonError(w, http.StatusBadGateway, "cluster: request abandoned by client: "+err.Error())
				return
			}
			rt.log.Warn("read replica failed", "node", n.Name, "err", err)
			n.MarkDown()
			continue
		}
		if resp.StatusCode >= 500 {
			resp.Body.Close()
			continue
		}
		copyResponse(w, resp)
		return
	}
	rt.jsonError(w, http.StatusBadGateway, fmt.Sprintf("cluster: no replica of group %d reachable", gidx))
}

// writeThrough forwards a registry mutation to group gidx's primary,
// failing over to a warm follower when the primary is unreachable. ack
// runs on the final status before it is relayed, so placement maps stay
// consistent with what the client saw acknowledged.
func (rt *Router) writeThrough(w http.ResponseWriter, r *http.Request, gidx int, body []byte, ack func(status int)) {
	g := rt.groups[gidx]
	rt.metrics.Requests.With(strconv.Itoa(gidx)).Add(1)
	rt.metrics.Writes.Add(1)
	for attempt := 0; attempt <= g.Replicas(); attempt++ {
		p := g.Primary()
		if p.Down() {
			if !rt.failover(g) {
				break
			}
			continue
		}
		resp, err := rt.proxy(r, p, body)
		if err != nil {
			if clientCaused(r, err) {
				// The client hung up, not the primary: failing over here
				// would promote a follower while the real primary is alive.
				rt.jsonError(w, http.StatusBadGateway, "cluster: write abandoned by client: "+err.Error())
				return
			}
			rt.log.Warn("primary write failed", "node", p.Name, "err", err)
			p.MarkDown()
			if !rt.failover(g) {
				break
			}
			continue
		}
		if resp.StatusCode == http.StatusMisdirectedRequest {
			// The node the router believed primary says it is a follower —
			// someone else already promoted past it. Re-point and retry.
			resp.Body.Close()
			if !rt.adoptPrimary(g) {
				break
			}
			continue
		}
		if ack != nil {
			ack(resp.StatusCode)
		}
		// AfterWrite runs before the ack is relayed: a deterministic soak
		// steps the group's tailers here, so by the time the client sees
		// the acknowledgement every replica can already serve the write.
		if rt.AfterWrite != nil {
			rt.AfterWrite(gidx)
		}
		copyResponse(w, resp)
		return
	}
	rt.jsonError(w, http.StatusBadGateway, fmt.Sprintf("cluster: no primary reachable in group %d", gidx))
}

// Failover promotes the next live follower of group gidx after marking
// the current primary down — the operator-facing form of the failover
// the write path performs on its own.
func (rt *Router) Failover(gidx int) error {
	if gidx < 0 || gidx >= len(rt.groups) {
		return fmt.Errorf("cluster: no group %d", gidx)
	}
	g := rt.groups[gidx]
	g.Primary().MarkDown()
	if !rt.failover(g) {
		return fmt.Errorf("cluster: group %d has no live follower to promote", gidx)
	}
	return nil
}

// failover promotes the most-caught-up live follower: every candidate
// is asked for its applied WAL sequence over /healthz and the maximum
// wins, ties breaking in ring order after the dead primary so the
// choice stays deterministic. Replication is asynchronous in a
// production fleet, so candidates can trail the dead primary by
// different amounts — promoting anything less than the max would
// silently drop acknowledged writes a better candidate still holds.
// The promoted journal is byte-identical to the dead primary's up to
// its applied sequence (shipped frames, same encoder, same sequences),
// and its registry was rebuilt digest-verified from those frames — so
// promotion is just an HTTP promote plus a pointer flip. A candidate
// that already reports itself primary was promoted out-of-band and is
// adopted as-is.
func (rt *Router) failover(g *Group) bool {
	dead := g.PrimaryIndex()
	n := len(g.Nodes())
	type candidate struct {
		idx int
		seq uint64
	}
	var cands []candidate
	for off := 1; off < n; off++ {
		idx := (dead + off) % n
		node := g.Nodes()[idx]
		if node.Down() {
			continue
		}
		hz, err := rt.nodeHealth(context.Background(), node)
		if err != nil {
			rt.log.Warn("failover candidate unreachable", "node", node.Name, "err", err)
			node.MarkDown()
			continue
		}
		if hz.Role == serve.RolePrimary.String() {
			g.SetPrimary(idx)
			return true
		}
		cands = append(cands, candidate{idx: idx, seq: hz.AppliedSeq})
	}
	// Stable: equal sequences keep ring order after the dead primary.
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].seq > cands[j].seq })
	for _, c := range cands {
		node := g.Nodes()[c.idx]
		pr, err := rt.promote(node)
		if err != nil || pr.Role != "primary" {
			rt.log.Warn("promote failed", "node", node.Name, "err", err)
			node.MarkDown()
			continue
		}
		g.SetPrimary(c.idx)
		rt.metrics.Failovers.Add(1)
		rt.log.Info("failed over", "group", g.Index, "primary", node.Name, "applied_seq", pr.AppliedSeq)
		return true
	}
	return false
}

// adoptPrimary scans the group for the node that already reports itself
// primary (after an out-of-band promotion) and adopts it.
func (rt *Router) adoptPrimary(g *Group) bool {
	for idx, n := range g.Nodes() {
		if n.Down() {
			continue
		}
		hz, err := rt.nodeHealth(context.Background(), n)
		if err != nil {
			n.MarkDown()
			continue
		}
		if hz.Role == serve.RolePrimary.String() {
			g.SetPrimary(idx)
			return true
		}
	}
	return false
}

// promote asks node to become primary.
func (rt *Router) promote(n *Node) (serve.PromoteResponse, error) {
	var pr serve.PromoteResponse
	resp, err := rt.httpc.Post(n.URL+"/v1/replication/promote", "application/json", nil)
	if err != nil {
		return pr, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return pr, fmt.Errorf("cluster: promote %s: status %d: %s", n.Name, resp.StatusCode, raw)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&pr); err != nil {
		return pr, err
	}
	return pr, nil
}

// SyncPlacements rebuilds the name → group placement map from the fleet
// itself: each group's first reachable replica lists its registered
// topologies in /healthz, and every listed name is placed on that
// group. Run it at router startup — placement is otherwise learned only
// from acknowledged registrations, so a restarted (or second) router
// would route named reads for pre-existing topologies by the name-hash
// fallback, which agrees with the digest-based registration placement
// only by luck. Names already learned locally are kept; a name listed
// by two groups keeps the lowest-index one and logs the conflict.
func (rt *Router) SyncPlacements(ctx context.Context) error {
	type placement struct {
		name string
		g    int
	}
	var all []placement
	for gidx, g := range rt.groups {
		var lastErr error
		synced := false
		for _, n := range g.Nodes() {
			if n.Down() {
				continue
			}
			hz, err := rt.nodeHealth(ctx, n)
			if err != nil {
				lastErr = err
				continue
			}
			for _, name := range hz.Topologies {
				all = append(all, placement{name: name, g: gidx})
			}
			synced = true
			break
		}
		if !synced {
			return fmt.Errorf("cluster: sync placements: no replica of group %d reachable: %v", gidx, lastErr)
		}
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	for _, p := range all {
		if prev, ok := rt.place[p.name]; ok && prev != p.g {
			rt.log.Warn("placement conflict during sync", "topology", p.name, "kept", prev, "also_on", p.g)
			continue
		}
		rt.place[p.name] = p.g
	}
	return nil
}

// DefaultProbeInterval is the RunProber cadence when none is given.
const DefaultProbeInterval = 2 * time.Second

// ProbeDown probes every down node's /healthz once and returns how many
// answered — each marked back up and re-entered into routing. Down is a
// hint, not a verdict: transport failures mark nodes down so traffic
// routes around them, and the prober decays the hint once the node
// answers again, so a transient failure (partition healed, process
// restarted) never removes a node from the fleet permanently.
func (rt *Router) ProbeDown(ctx context.Context) int {
	recovered := 0
	for _, n := range rt.flat {
		if !n.Down() {
			continue
		}
		if _, err := rt.nodeHealth(ctx, n); err != nil {
			continue
		}
		n.MarkUp()
		recovered++
		rt.metrics.Recoveries.Add(1)
		rt.log.Info("node recovered", "node", n.Name)
	}
	return recovered
}

// RunProber probes down nodes every interval (0 = DefaultProbeInterval)
// until ctx ends — the background loop tomorouter runs so the routing
// table heals itself.
func (rt *Router) RunProber(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultProbeInterval
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		rt.ProbeDown(ctx)
	}
}

// --- Handlers -----------------------------------------------------------

func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	gidx := rt.fallback
	name := ""
	var tr serve.TopologyRequest
	if err := json.Unmarshal(body, &tr); err == nil && tr.Name != "" {
		name = tr.Name
		if owner, ok := rt.Lookup(name); ok {
			// The name is already placed: route to its owner, whose
			// primary is the authority on re-registration (409). Hashing
			// the new payload's digest instead could land the same name on
			// a second group — a 201 there would fork fleet-wide name
			// uniqueness and strand the original copy on its shard.
			gidx = owner
		} else if digest, derr := serve.WireDigest(tr.Edges, tr.Paths); derr == nil {
			gidx = rt.ring.Place(digest)
		}
		// Invalid shapes keep the fallback group, whose primary rejects
		// them with the same 400 any shard would.
	}
	rt.writeThrough(w, r, gidx, body, func(status int) {
		if status == http.StatusCreated && name != "" {
			rt.mu.Lock()
			rt.place[name] = gidx
			rt.mu.Unlock()
		}
	})
}

func (rt *Router) handleEvict(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	gidx := rt.locate(name)
	rt.writeThrough(w, r, gidx, []byte{}, func(status int) {
		if status == http.StatusOK {
			rt.mu.Lock()
			delete(rt.place, name)
			rt.mu.Unlock()
		}
	})
}

func (rt *Router) handleNamedRead(w http.ResponseWriter, r *http.Request) {
	rt.readThrough(w, r, rt.locate(r.PathValue("name")), []byte{})
}

func (rt *Router) handleBodyRead(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	gidx := rt.fallback
	var probe struct {
		Topology string `json:"topology"`
	}
	if err := json.Unmarshal(body, &probe); err == nil && probe.Topology != "" {
		gidx = rt.locate(probe.Topology)
	}
	rt.readThrough(w, r, gidx, body)
}

func (rt *Router) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	gidx := rt.fallback
	var sr serve.SessionRequest
	if err := json.Unmarshal(body, &sr); err == nil && sr.Topology != "" {
		gidx = rt.locate(sr.Topology)
	}
	g := rt.groups[gidx]
	rt.metrics.Requests.With(strconv.Itoa(gidx)).Add(1)
	for _, n := range g.readOrder() {
		if n.Down() {
			continue
		}
		resp, err := rt.proxy(r, n, body)
		if err != nil {
			if clientCaused(r, err) {
				rt.jsonError(w, http.StatusBadGateway, "cluster: request abandoned by client: "+err.Error())
				return
			}
			n.MarkDown()
			continue
		}
		if resp.StatusCode >= 500 {
			resp.Body.Close()
			continue
		}
		// Pin the session to the node that created it before relaying the
		// ack, so a follow-up round cannot race past the pin.
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
		resp.Body.Close()
		if rerr != nil {
			rt.jsonError(w, http.StatusBadGateway, "cluster: session create body: "+rerr.Error())
			return
		}
		if resp.StatusCode == http.StatusCreated {
			var sess serve.SessionResponse
			if err := json.Unmarshal(raw, &sess); err == nil && sess.Session != "" {
				rt.mu.Lock()
				rt.sessions[sess.Session] = n
				rt.mu.Unlock()
			}
		}
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		w.Write(raw)
		return
	}
	rt.jsonError(w, http.StatusBadGateway, fmt.Sprintf("cluster: no replica of group %d reachable", gidx))
}

func (rt *Router) handleSessionSticky(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.RLock()
	n := rt.sessions[id]
	rt.mu.RUnlock()
	if n == nil {
		rt.jsonError(w, http.StatusNotFound, fmt.Sprintf("cluster: unknown session %q", id))
		return
	}
	// Sticky routes stream the body through and never retry: round state
	// lives on the pinned node, so there is nowhere else to go.
	resp, err := rt.proxy(r, n, nil)
	if err != nil {
		// A client hanging up mid-stream keeps the pin and the node: the
		// session is still live on the shard for the next request.
		if !clientCaused(r, err) {
			n.MarkDown()
			rt.mu.Lock()
			delete(rt.sessions, id)
			rt.mu.Unlock()
		}
		rt.jsonError(w, http.StatusBadGateway, fmt.Sprintf("cluster: session node %s unreachable: %v", n.Name, err))
		return
	}
	if r.Method == http.MethodDelete && resp.StatusCode == http.StatusOK {
		rt.mu.Lock()
		delete(rt.sessions, id)
		rt.mu.Unlock()
	}
	copyResponse(w, resp)
}

// handleFanRead serves /healthz and /metrics from the next node in a
// fleet-wide round-robin, so liveness probes and scrapes exercise every
// shard while each body stays exactly a standalone daemon's body.
func (rt *Router) handleFanRead(w http.ResponseWriter, r *http.Request) {
	start := rt.fanCursor.next(len(rt.flat))
	for i := 0; i < len(rt.flat); i++ {
		idx := (start + i) % len(rt.flat)
		n := rt.flat[idx]
		if n.Down() {
			continue
		}
		if i > 0 {
			rt.metrics.ReadRetries.Add(1)
		}
		resp, err := rt.proxy(r, n, []byte{})
		if err != nil {
			if clientCaused(r, err) {
				rt.jsonError(w, http.StatusBadGateway, "cluster: request abandoned by client: "+err.Error())
				return
			}
			n.MarkDown()
			continue
		}
		if resp.StatusCode >= 500 {
			resp.Body.Close()
			continue
		}
		rt.metrics.Requests.With(strconv.Itoa(rt.flatGrp[idx])).Add(1)
		copyResponse(w, resp)
		return
	}
	rt.jsonError(w, http.StatusBadGateway, "cluster: no fleet node reachable")
}

// NodeHealth is one node's row in /cluster/healthz.
type NodeHealth struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Primary bool   `json:"primary"`
	Down    bool   `json:"down,omitempty"`
}

// GroupHealth is one replication group's row in /cluster/healthz.
type GroupHealth struct {
	Group int          `json:"group"`
	Nodes []NodeHealth `json:"nodes"`
}

// ClusterHealth is the body of GET /cluster/healthz — the router's own
// fleet view, distinct from the per-shard /healthz bodies it proxies.
type ClusterHealth struct {
	Status     string        `json:"status"`
	Groups     []GroupHealth `json:"groups"`
	Placements int           `json:"placements"`
	Sessions   int           `json:"sessions"`
}

func (rt *Router) handleClusterHealth(w http.ResponseWriter, _ *http.Request) {
	out := ClusterHealth{Status: "ok"}
	for _, g := range rt.groups {
		gh := GroupHealth{Group: g.Index}
		pidx := g.PrimaryIndex()
		for i, n := range g.Nodes() {
			gh.Nodes = append(gh.Nodes, NodeHealth{
				Name: n.Name, URL: n.URL, Primary: i == pidx, Down: n.Down(),
			})
		}
		out.Groups = append(out.Groups, gh)
	}
	rt.mu.RLock()
	out.Placements = len(rt.place)
	out.Sessions = len(rt.sessions)
	rt.mu.RUnlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

func (rt *Router) handleClusterMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	rt.metrics.Registry().WritePrometheus(w)
}
