package cluster

import (
	"fmt"
	"testing"
)

func TestRingPlacementDeterministic(t *testing.T) {
	r1, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Vnodes() != DefaultVnodes || r1.Groups() != 3 {
		t.Fatalf("ring shape: %d groups, %d vnodes", r1.Groups(), r1.Vnodes())
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("sha256:%04d", i)
		g1, g2 := r1.Place(key), r2.Place(key)
		if g1 != g2 {
			t.Fatalf("placement of %q differs across identical rings: %d vs %d", key, g1, g2)
		}
		if g1 < 0 || g1 >= 3 {
			t.Fatalf("placement of %q out of range: %d", key, g1)
		}
	}
}

func TestRingSpreadsKeys(t *testing.T) {
	r, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Place(fmt.Sprintf("sha256:key-%d", i))]++
	}
	for g, c := range counts {
		// Uniform would be 1000 per group; 64 vnodes keeps every group
		// within a loose factor-of-two band.
		if c < keys/8 || c > keys/2 {
			t.Errorf("group %d got %d of %d keys — ring badly unbalanced: %v", g, c, keys, counts)
		}
	}
}

// Growing the fleet by one group must move only a minority of the
// keyspace — the property that makes digest placement survive scale-out
// without a full reshuffle.
func TestRingStabilityUnderGrowth(t *testing.T) {
	r3, err := NewRing(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r4, err := NewRing(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	const keys = 4000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("sha256:key-%d", i)
		if r3.Place(key) != r4.Place(key) {
			moved++
		}
	}
	// Ideal is 1/4 of keys; anything under half proves stability (a
	// modulo hash would move ~3/4).
	if moved > keys/2 {
		t.Errorf("growth 3→4 groups moved %d of %d keys", moved, keys)
	}
	if moved == 0 {
		t.Error("growth moved no keys — the new group is unreachable")
	}
}

func TestRingRejectsEmptyFleet(t *testing.T) {
	if _, err := NewRing(0, 0); err == nil {
		t.Fatal("ring with zero groups accepted")
	}
}

func TestGroupFailoverOrder(t *testing.T) {
	g, err := NewGroup(0, []string{"http://a", "http://b", "http://c"})
	if err != nil {
		t.Fatal(err)
	}
	if g.Primary().URL != "http://a" || g.PrimaryIndex() != 0 {
		t.Fatalf("boot primary: %s", g.Primary().URL)
	}
	idx, ok := g.nextUp(0)
	if !ok || idx != 1 {
		t.Fatalf("nextUp(0) = %d, %v", idx, ok)
	}
	g.Nodes()[1].MarkDown()
	idx, ok = g.nextUp(0)
	if !ok || idx != 2 {
		t.Fatalf("nextUp with n1 down = %d, %v", idx, ok)
	}
	g.Nodes()[2].MarkDown()
	if _, ok := g.nextUp(0); ok {
		t.Fatal("nextUp found a candidate with every follower down")
	}
	g.Nodes()[2].MarkUp()
	g.SetPrimary(2)
	if g.Primary().URL != "http://c" {
		t.Fatalf("primary after flip: %s", g.Primary().URL)
	}

	if _, err := NewGroup(1, nil); err == nil {
		t.Fatal("empty group accepted")
	}
}

func TestGroupReadOrderVisitsEveryReplica(t *testing.T) {
	g, err := NewGroup(0, []string{"http://a", "http://b", "http://c"})
	if err != nil {
		t.Fatal(err)
	}
	seenStart := make(map[string]bool)
	for i := 0; i < 9; i++ {
		order := g.readOrder()
		if len(order) != 3 {
			t.Fatalf("readOrder length %d", len(order))
		}
		seenStart[order[0].URL] = true
		seen := map[string]bool{}
		for _, n := range order {
			seen[n.URL] = true
		}
		if len(seen) != 3 {
			t.Fatalf("readOrder skipped a replica: %v", order)
		}
	}
	if len(seenStart) != 3 {
		t.Fatalf("round-robin never rotated: starts %v", seenStart)
	}
}
