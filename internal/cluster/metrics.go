package cluster

import "repro/internal/obs"

// Metrics is the router's instrument family, served on the router's own
// /cluster/metrics endpoint (the per-shard tomographyd_* families stay
// on each shard, where the load generator's exact reconciliation
// expects them).
type Metrics struct {
	reg *obs.Registry

	// Requests counts requests routed per replication group.
	Requests *obs.CounterVec
	// ReadRetries counts reads that needed more than one replica.
	ReadRetries *obs.Counter
	// Writes counts registry mutations forwarded to a group primary.
	Writes *obs.Counter
	// Failovers counts primary promotions the router performed.
	Failovers *obs.Counter
	// Recoveries counts down nodes the health prober returned to
	// routing.
	Recoveries *obs.Counter
}

// NewMetrics registers the router counters on reg (nil allocates a
// fresh registry). Router-state gauges (nodes down, sessions tracked,
// placements) are registered by New, which owns that state.
func NewMetrics(reg *obs.Registry) *Metrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Metrics{
		reg: reg,
		Requests: reg.CounterVec("tomographyd_cluster_requests_total",
			"Requests routed, by replication group.", "group"),
		ReadRetries: reg.Counter("tomographyd_cluster_read_retries_total",
			"Reads retried on another replica after a failure."),
		Writes: reg.Counter("tomographyd_cluster_writes_forwarded_total",
			"Registry mutations forwarded to a group primary."),
		Failovers: reg.Counter("tomographyd_cluster_failovers_total",
			"Primary promotions performed by the router."),
		Recoveries: reg.Counter("tomographyd_cluster_node_recoveries_total",
			"Down nodes probed healthy and returned to routing."),
	}
}

// Registry exposes the underlying registry (for /cluster/metrics and
// for tests scraping the router directly).
func (m *Metrics) Registry() *obs.Registry { return m.reg }
