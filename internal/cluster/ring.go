package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVnodes is the virtual-node count per group on the placement
// ring. 64 points per group keeps the per-group key share within a few
// percent of uniform for small fleets while the ring stays tiny (a few
// hundred entries even at ten groups).
const DefaultVnodes = 64

// Ring is a consistent-hash placement ring mapping topology digests to
// replication groups. Each group contributes Vnodes points hashed from
// (group, vnode); a key is placed on the first point clockwise from its
// own hash. Placement is a pure function of (groups, vnodes, key):
// every router instance — and every rerun of a deterministic soak —
// computes the same assignment, and growing the fleet by one group
// moves only ~1/(G+1) of the keyspace.
type Ring struct {
	points []ringPoint
	groups int
	vnodes int
}

type ringPoint struct {
	hash  uint64
	group int
}

// NewRing builds the ring for `groups` replication groups with `vnodes`
// points each (0 selects DefaultVnodes).
func NewRing(groups, vnodes int) (*Ring, error) {
	if groups <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one group, got %d", groups)
	}
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		points: make([]ringPoint, 0, groups*vnodes),
		groups: groups,
		vnodes: vnodes,
	}
	for g := 0; g < groups; g++ {
		for v := 0; v < vnodes; v++ {
			h := hashKey("vnode/" + strconv.Itoa(g) + "/" + strconv.Itoa(v))
			r.points = append(r.points, ringPoint{hash: h, group: g})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between vnode points is vanishingly rare but
		// must still order deterministically.
		return r.points[i].group < r.points[j].group
	})
	return r, nil
}

// Groups returns the number of groups on the ring.
func (r *Ring) Groups() int { return r.groups }

// Vnodes returns the per-group virtual-node count.
func (r *Ring) Vnodes() int { return r.vnodes }

// Place maps a key (a routing-matrix digest, or any stable string) to
// its owning group.
func (r *Ring) Place(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].group
}

// hashKey maps a string onto the ring's 64-bit keyspace via SHA-256 —
// the same family the registry's digests use, so placement inherits
// their collision resistance rather than a weaker mixing function.
func hashKey(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}
