// Package cluster shards tomographyd horizontally: topologies are
// placed by consistent hash of their routing-matrix digest onto a
// replication group (one primary plus R followers), the primary's
// checksummed WAL is shipped to followers over the daemon's replication
// endpoint, and a thin HTTP router spreads estimate/inspect/session
// traffic across replicas while forwarding registry mutations to the
// owning group's primary.
//
// The design leans on two invariants the lower layers already provide:
//
//   - WAL frames are deterministic. store.EncodeRecord is a pure
//     function of the record, and shipped records carry the primary's
//     sequence numbers, so a caught-up follower's journal is
//     byte-identical to its primary's — failover promotes a warm
//     replica whose registry digests verify, it never replays divergent
//     state.
//   - Registry state is digest-verified. A replicated register rebuilds
//     the routing matrix from the shipped doc and must reproduce the
//     digest the primary journaled, so a follower can serve estimates
//     the moment it applies a record, with no extra handshake.
//
// Placement, routing, and failover are all deterministic given the
// fleet state, which is what lets the e2e fleet soak assert a
// byte-identical transcript digest across worker and shard counts.
package cluster

import (
	"fmt"
	"sync/atomic"
)

// Node is one tomographyd process in the fleet, addressed by base URL.
// Down is a routing hint, not ground truth: the router marks a node
// down on transport failure and skips it until something marks it up
// again (an operator, a health prober, or a test healing a partition).
type Node struct {
	// Name identifies the node in logs and cluster health ("g0/n1").
	Name string
	// URL is the node's base URL ("http://127.0.0.1:8723").
	URL string

	down atomic.Bool
}

// Down reports whether the node is currently routed around.
func (n *Node) Down() bool { return n.down.Load() }

// MarkDown removes the node from routing until MarkUp.
func (n *Node) MarkDown() { n.down.Store(true) }

// MarkUp returns the node to routing.
func (n *Node) MarkUp() { n.down.Store(false) }

// Group is one replication group: a primary that owns the mutation
// order for every topology placed on the group, and followers tailing
// its WAL. The primary index is atomic so failover flips it without
// blocking in-flight reads; the read cursor round-robins read traffic
// across all replicas.
type Group struct {
	// Index is the group's position on the ring.
	Index int

	nodes   []*Node
	primary atomic.Int32
	cursor  atomic.Uint32
}

// NewGroup builds a group from node base URLs; the first URL starts as
// primary, matching the order a fleet is booted in.
func NewGroup(index int, urls []string) (*Group, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("cluster: group %d has no nodes", index)
	}
	g := &Group{Index: index, nodes: make([]*Node, len(urls))}
	for i, u := range urls {
		if u == "" {
			return nil, fmt.Errorf("cluster: group %d node %d has an empty URL", index, i)
		}
		g.nodes[i] = &Node{Name: fmt.Sprintf("g%d/n%d", index, i), URL: u}
	}
	return g, nil
}

// Nodes returns the group's replicas in boot order.
func (g *Group) Nodes() []*Node { return g.nodes }

// Replicas is the number of nodes in the group.
func (g *Group) Replicas() int { return len(g.nodes) }

// Primary returns the current primary node.
func (g *Group) Primary() *Node { return g.nodes[g.primary.Load()] }

// PrimaryIndex returns the current primary's index.
func (g *Group) PrimaryIndex() int { return int(g.primary.Load()) }

// SetPrimary flips the primary to node i (failover).
func (g *Group) SetPrimary(i int) {
	if i < 0 || i >= len(g.nodes) {
		panic(fmt.Sprintf("cluster: group %d has no node %d", g.Index, i))
	}
	g.primary.Store(int32(i))
}

// readOrder returns the replicas starting at the round-robin cursor, so
// consecutive reads land on different nodes while a retry loop still
// visits every replica exactly once.
func (g *Group) readOrder() []*Node {
	start := int(g.cursor.Add(1)-1) % len(g.nodes)
	out := make([]*Node, 0, len(g.nodes))
	for i := 0; i < len(g.nodes); i++ {
		out = append(out, g.nodes[(start+i)%len(g.nodes)])
	}
	return out
}

// nextUp returns the index of the first up node after `after` in ring
// order, excluding `after` itself — the failover candidate order.
func (g *Group) nextUp(after int) (int, bool) {
	for i := 1; i < len(g.nodes); i++ {
		idx := (after + i) % len(g.nodes)
		if !g.nodes[idx].Down() {
			return idx, true
		}
	}
	return 0, false
}
