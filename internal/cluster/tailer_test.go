package cluster_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/store"
)

// newReplShard boots one shard with a durable store in the given
// replication role, mirroring the fleet boot sequence.
func newReplShard(t *testing.T, role serve.Role) *testShard {
	t.Helper()
	st, err := store.Open(context.Background(), t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Config{RequestTimeout: -1})
	if role == serve.RolePrimary {
		srv.Registry().AttachStore(st)
	}
	srv.EnableReplication(st, role)
	sh := &testShard{srv: srv, st: st, ts: httptest.NewServer(srv.Handler())}
	t.Cleanup(sh.ts.Close)
	t.Cleanup(func() { sh.st.Close() })
	return sh
}

// stepUntilQuiescent drives the tailer until a pull applies nothing.
func stepUntilQuiescent(t *testing.T, tail *cluster.Tailer) {
	t.Helper()
	for {
		n, err := tail.Step(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			return
		}
	}
}

func shardTopologies(t *testing.T, sh *testShard) []string {
	t.Helper()
	_, raw := doReq(t, http.MethodGet, sh.ts.URL+"/healthz", nil)
	var hz serve.HealthResponse
	if err := json.Unmarshal(raw, &hz); err != nil {
		t.Fatal(err)
	}
	return hz.Topologies
}

// A stale ex-primary rejoining as a follower after a failover it missed
// is AHEAD of its new primary: the tail pull must force a full-state
// resync that discards the diverged tail, instead of reporting lag 0
// while the journals silently fork. (Simulated by tailing primary A to
// seq 3, then re-pointing the follower at primary B, which is at seq 1
// with a different history.)
func TestTailerDivergenceForcesResync(t *testing.T) {
	oldPrimary := newReplShard(t, serve.RolePrimary)
	newPrimary := newReplShard(t, serve.RolePrimary)
	follower := newReplShard(t, serve.RoleFollower)

	for k := 1; k <= 3; k++ {
		if status, raw := postJSON(t, oldPrimary.ts.URL, "/v1/topologies", chainReq(node(k)+"-old", k)); status != http.StatusCreated {
			t.Fatalf("register on old primary: %d %s", status, raw)
		}
	}
	if status, raw := postJSON(t, newPrimary.ts.URL, "/v1/topologies", chainReq("survivor", 4)); status != http.StatusCreated {
		t.Fatalf("register on new primary: %d %s", status, raw)
	}

	source := oldPrimary.ts.URL
	tail := &cluster.Tailer{Server: follower.srv, Source: func() string { return source }}
	stepUntilQuiescent(t, tail)
	if got := follower.st.LastSeq(); got != 3 {
		t.Fatalf("follower at seq %d after tailing old primary, want 3", got)
	}

	// The old primary dies and the follower is re-pointed at the new
	// one, whose history it has never seen and whose sequence it is
	// ahead of.
	source = newPrimary.ts.URL
	applied, err := tail.Step(context.Background())
	if err != nil {
		t.Fatalf("divergence pull: %v", err)
	}
	if applied != 1 {
		t.Fatalf("divergence resync applied %d docs, want 1", applied)
	}
	if got, want := follower.st.LastSeq(), newPrimary.st.LastSeq(); got != want {
		t.Fatalf("follower seq %d != new primary %d", got, want)
	}
	if got := follower.srv.ReplicationLag(); got != 0 {
		t.Fatalf("lag %d after resync, want 0", got)
	}
	got := shardTopologies(t, follower)
	if len(got) != 1 || got[0] != "survivor" {
		t.Fatalf("follower topologies %v, want [survivor]", got)
	}

	// Incremental tailing resumes against the new history.
	if status, raw := postJSON(t, newPrimary.ts.URL, "/v1/topologies", chainReq("post", 5)); status != http.StatusCreated {
		t.Fatalf("post-resync register: %d %s", status, raw)
	}
	stepUntilQuiescent(t, tail)
	if got := follower.st.LastSeq(); got != 2 {
		t.Fatalf("follower at seq %d after post-resync tail, want 2", got)
	}
	if status, _ := estimateXHat(t, follower.ts.URL, "post", 5); status != http.StatusOK {
		t.Fatalf("follower estimate for post-resync topology: %d", status)
	}
}
