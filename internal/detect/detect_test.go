package detect

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// fig1Attack builds the Fig. 1 scenario and runs a chosen-victim attack
// against the given paper-numbered victim link.
func fig1Attack(t *testing.T, seed int64, victimNum int, stealthy bool) (*core.Scenario, *core.Result, *topo.Fig1Topology) {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != 10 {
		t.Fatalf("SelectPaths: rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	x := make(la.Vector, 10)
	for i := range x {
		x[i] = 1 + rng.Float64()*19
	}
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
		Stealthy:   stealthy,
	}
	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[victimNum]})
	if err != nil {
		t.Fatalf("ChosenVictim: %v", err)
	}
	if !res.Feasible {
		t.Fatalf("attack on link %d infeasible", victimNum)
	}
	return sc, res, f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil system: err = %v", err)
	}
	_, res, _ := fig1Attack(t, 1, 10, false)
	_ = res
	f := topo.Fig1()
	paths, _, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(sys, -1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative alpha: err = %v", err)
	}
	d, err := New(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.Alpha() != DefaultAlpha {
		t.Errorf("Alpha = %g, want default %g", d.Alpha(), DefaultAlpha)
	}
}

func TestCleanMeasurementsNotDetected(t *testing.T) {
	// No attack, no noise: residual is numerically zero — no false alarm.
	sc, _, _ := fig1Attack(t, 2, 10, false)
	d, err := New(sc.Sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	y, err := sc.CleanMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Inspect(y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected {
		t.Errorf("false alarm on clean measurements (residual %g)", rep.ResidualNorm)
	}
	if rep.ResidualNorm > 1e-6 {
		t.Errorf("clean residual = %g, want ≈ 0", rep.ResidualNorm)
	}
}

func TestImperfectCutDetected(t *testing.T) {
	// Theorem 3: victim link 10 is NOT perfectly cut, so the attack must
	// be detectable.
	sc, res, f := fig1Attack(t, 3, 10, false)
	pc, err := core.PerfectCut(sc.Sys, sc.Attackers, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		t.Fatal(err)
	}
	if pc {
		t.Fatal("precondition: link 10 must be imperfectly cut")
	}
	d, err := New(sc.Sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Inspect(res.YObserved)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Errorf("imperfect-cut attack undetected (residual %g ≤ α %g), contradicts Theorem 3",
			rep.ResidualNorm, d.Alpha())
	}
}

func TestPerfectCutUndetected(t *testing.T) {
	// Theorem 3: victim link 1 IS perfectly cut — the residual must stay
	// (numerically) zero and the attack invisible.
	sc, res, f := fig1Attack(t, 4, 1, true)
	pc, err := core.PerfectCut(sc.Sys, sc.Attackers, []graph.LinkID{f.PaperLink[1]})
	if err != nil {
		t.Fatal(err)
	}
	if !pc {
		t.Fatal("precondition: link 1 must be perfectly cut")
	}
	d, err := New(sc.Sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Inspect(res.YObserved)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected {
		t.Errorf("perfect-cut attack detected (residual %g), contradicts Theorem 3", rep.ResidualNorm)
	}
	if rep.ResidualNorm > 1e-6 {
		t.Errorf("perfect-cut residual = %g, want ≈ 0", rep.ResidualNorm)
	}
}

func TestPerfectCutUndetectedAcrossSeeds(t *testing.T) {
	for seed := int64(10); seed < 20; seed++ {
		sc, res, _ := fig1Attack(t, seed, 1, true)
		d, _ := New(sc.Sys, 0)
		rep, err := d.Inspect(res.YObserved)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			t.Errorf("seed %d: perfect-cut attack detected", seed)
		}
	}
}

func TestImperfectCutDetectedAcrossSeeds(t *testing.T) {
	for seed := int64(10); seed < 20; seed++ {
		sc, res, _ := fig1Attack(t, seed, 10, false)
		d, _ := New(sc.Sys, 0)
		rep, err := d.Inspect(res.YObserved)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Detected {
			t.Errorf("seed %d: imperfect-cut attack undetected (residual %g)", seed, rep.ResidualNorm)
		}
	}
}

func TestSquareRUndetectable(t *testing.T) {
	// Theorem 3's other branch: a square invertible R satisfies
	// R·x̂ = y' identically, so nothing is ever detected.
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 10})
	if err != nil || rank != 10 {
		t.Fatalf("rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(f.G, paths[:10])
	if err != nil {
		t.Fatal(err)
	}
	if sys.NumPaths() != sys.NumLinks() {
		t.Fatalf("system not square: %d×%d", sys.NumPaths(), sys.NumLinks())
	}
	d, err := New(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Any observation vector — even a wild one — passes the check.
	rng := rand.New(rand.NewSource(5))
	y := make(la.Vector, sys.NumPaths())
	for i := range y {
		y[i] = rng.Float64() * 5000
	}
	rep, err := d.Inspect(y)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected {
		t.Errorf("square-R detection fired (residual %g)", rep.ResidualNorm)
	}
	if !rep.SquareR {
		t.Error("SquareR flag not set")
	}
}

func TestInspectShapeError(t *testing.T) {
	sc, _, _ := fig1Attack(t, 1, 10, false)
	d, _ := New(sc.Sys, 0)
	if _, err := d.Inspect(la.Vector{1, 2}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short y: err = %v", err)
	}
}

func TestCalibrate(t *testing.T) {
	sc, _, _ := fig1Attack(t, 6, 10, false)
	rng := rand.New(rand.NewSource(7))
	clean, err := sc.CleanMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	// Clean runs with ±2 ms measurement noise.
	var runs []la.Vector
	for k := 0; k < 50; k++ {
		y := clean.Clone()
		for i := range y {
			y[i] += rng.NormFloat64() * 2
		}
		runs = append(runs, y)
	}
	alpha, err := Calibrate(sc.Sys, runs, 1.0, 1.2)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if alpha <= 0 {
		t.Fatalf("alpha = %g", alpha)
	}
	// Zero false alarms on the calibration set by construction.
	d, err := New(sc.Sys, alpha)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range runs {
		rep, err := d.Inspect(y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			t.Errorf("false alarm on calibration run %d", i)
		}
	}
}

func TestCalibrateErrors(t *testing.T) {
	sc, _, _ := fig1Attack(t, 1, 10, false)
	if _, err := Calibrate(nil, nil, 1, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil system: err = %v", err)
	}
	if _, err := Calibrate(sc.Sys, nil, 1, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("no samples: err = %v", err)
	}
	y, _ := sc.CleanMeasurements()
	if _, err := Calibrate(sc.Sys, []la.Vector{y}, 0, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("bad quantile: err = %v", err)
	}
	if _, err := Calibrate(sc.Sys, []la.Vector{{1}}, 1, 1); err == nil {
		t.Error("short sample accepted")
	}
}

func TestCalibrateEdgeCases(t *testing.T) {
	sc, _, _ := fig1Attack(t, 11, 10, false)
	clean, err := sc.CleanMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	t.Run("nil system", func(t *testing.T) {
		if _, err := Calibrate(nil, []la.Vector{clean}, 1, 1); !errors.Is(err, ErrBadInput) {
			t.Errorf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("empty clean runs", func(t *testing.T) {
		if _, err := Calibrate(sc.Sys, nil, 1, 1); !errors.Is(err, ErrBadInput) {
			t.Errorf("err = %v, want ErrBadInput", err)
		}
	})
	t.Run("bad quantile", func(t *testing.T) {
		for _, q := range []float64{0, -0.5, 1.5} {
			if _, err := Calibrate(sc.Sys, []la.Vector{clean}, q, 1); !errors.Is(err, ErrBadInput) {
				t.Errorf("q=%g: err = %v, want ErrBadInput", q, err)
			}
		}
	})
	t.Run("single run", func(t *testing.T) {
		rng := rand.New(rand.NewSource(3))
		y := clean.Clone()
		for i := range y {
			y[i] += rng.NormFloat64() * 2
		}
		// Any quantile of a single sample is that sample's residual norm.
		aLow, err := Calibrate(sc.Sys, []la.Vector{y}, 0.01, 1)
		if err != nil {
			t.Fatalf("Calibrate: %v", err)
		}
		aHigh, err := Calibrate(sc.Sys, []la.Vector{y}, 1, 1)
		if err != nil {
			t.Fatalf("Calibrate: %v", err)
		}
		if aLow != aHigh {
			t.Errorf("single-sample quantiles differ: %g vs %g", aLow, aHigh)
		}
		if aHigh <= 0 {
			t.Errorf("noisy single run gave alpha = %g, want > 0", aHigh)
		}
	})
	t.Run("zero headroom defaults to 1", func(t *testing.T) {
		rng := rand.New(rand.NewSource(4))
		var runs []la.Vector
		for k := 0; k < 5; k++ {
			y := clean.Clone()
			for i := range y {
				y[i] += rng.NormFloat64() * 2
			}
			runs = append(runs, y)
		}
		a0, err := Calibrate(sc.Sys, runs, 1, 0)
		if err != nil {
			t.Fatalf("Calibrate: %v", err)
		}
		a1, err := Calibrate(sc.Sys, runs, 1, 1)
		if err != nil {
			t.Fatalf("Calibrate: %v", err)
		}
		if a0 != a1 {
			t.Errorf("zero headroom alpha %g != unit headroom alpha %g", a0, a1)
		}
	})
	t.Run("noiseless runs give zero alpha", func(t *testing.T) {
		a, err := Calibrate(sc.Sys, []la.Vector{clean, clean.Clone()}, 1, 2)
		if err != nil {
			t.Fatalf("Calibrate: %v", err)
		}
		if a > 1e-6 {
			t.Errorf("alpha = %g on exact measurements, want ~0", a)
		}
	})
}

func TestInspectConcurrent(t *testing.T) {
	// One long-lived detector shared across goroutines, mixing clean and
	// attacked rounds; exercises the lazy factorization under -race.
	sc, res, _ := fig1Attack(t, 12, 10, false)
	clean, err := sc.CleanMeasurements()
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(sc.Sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Warm(); err != nil {
		t.Fatalf("Warm: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for k := 0; k < 16; k++ {
		attacked := k%2 == 1
		y := clean
		if attacked {
			y = res.YObserved
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				rep, err := d.Inspect(y)
				if err != nil {
					errs <- err
					return
				}
				if rep.Detected != attacked {
					errs <- fmt.Errorf("attacked=%v but Detected=%v", attacked, rep.Detected)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
