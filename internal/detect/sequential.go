package detect

import (
	"fmt"

	"repro/internal/la"
)

// Sequential accumulates consistency evidence across measurement rounds
// (a CUSUM-style test). It exists to counter the α-evasive attacker
// (core.Scenario.EvadeAlpha): a manipulation tuned to keep each round's
// residual just under the single-round threshold still injects the SAME
// bias every round, so the per-round residual mean stays near its
// attack-free level plus a constant offset. Accumulating
// (residual − drift) grows linearly under a persistent attack while
// zero-mean measurement noise cancels, so the cumulative statistic
// crosses any ceiling eventually.
//
//	S_0 = 0
//	S_n = max(0, S_{n−1} + ‖R·x̂_n − y'_n‖₁ − Drift)
//	alarm when S_n > Ceiling
//
// Drift should sit a little above the clean-round residual mean (e.g.
// the Calibrate output at a mid quantile); Ceiling trades detection
// delay against false alarms, as usual for CUSUM.
type Sequential struct {
	det   *Detector
	cusum *Cusum
}

// Cusum is the pure CUSUM accumulator Sequential is built on, split out
// so consumers that already have residual norms in hand (the forensics
// alarm-burst tracker feeds norms computed inline by the streaming
// round path) reuse the same recurrence without re-running Inspect:
//
//	S_0 = 0
//	S_n = max(0, S_{n−1} + x_n − Drift)
//	alarm when S_n > Ceiling
//
// Not safe for concurrent use; Sequential and the forensics observatory
// both serialize access.
type Cusum struct {
	drift   float64
	ceiling float64
	s       float64
	rounds  int
}

// NewCusum builds a CUSUM accumulator. Drift and Ceiling must be
// positive.
func NewCusum(drift, ceiling float64) (*Cusum, error) {
	if drift <= 0 || ceiling <= 0 {
		return nil, fmt.Errorf("detect: drift %g and ceiling %g must be positive: %w", drift, ceiling, ErrBadInput)
	}
	return &Cusum{drift: drift, ceiling: ceiling}, nil
}

// Observe folds one observation into the statistic and reports the
// updated value and whether it exceeds the ceiling.
func (c *Cusum) Observe(x float64) (stat float64, alarm bool) {
	c.rounds++
	c.s += x - c.drift
	if c.s < 0 {
		c.s = 0
	}
	return c.s, c.s > c.ceiling
}

// Statistic returns the current CUSUM value S_n.
func (c *Cusum) Statistic() float64 { return c.s }

// Rounds counts observations fed so far.
func (c *Cusum) Rounds() int { return c.rounds }

// Ceiling returns the alarm threshold.
func (c *Cusum) Ceiling() float64 { return c.ceiling }

// Drift returns the per-observation drift.
func (c *Cusum) Drift() float64 { return c.drift }

// Reset clears the accumulated statistic.
func (c *Cusum) Reset() {
	c.s = 0
	c.rounds = 0
}

// NewSequential wraps a detector with CUSUM accumulation. Drift must be
// positive; Ceiling must be positive.
func NewSequential(det *Detector, drift, ceiling float64) (*Sequential, error) {
	if det == nil {
		return nil, fmt.Errorf("detect: nil detector: %w", ErrBadInput)
	}
	c, err := NewCusum(drift, ceiling)
	if err != nil {
		return nil, err
	}
	return &Sequential{det: det, cusum: c}, nil
}

// SequentialReport is the outcome of one accumulated round.
type SequentialReport struct {
	// Round counts observations fed so far.
	Round int
	// Statistic is the current CUSUM value S_n.
	Statistic float64
	// RoundResidual is this round's ‖R·x̂ − y'‖₁.
	RoundResidual float64
	// Alarm is true once the statistic crosses the ceiling.
	Alarm bool
}

// Observe feeds one measurement round and updates the statistic.
func (s *Sequential) Observe(yObserved la.Vector) (*SequentialReport, error) {
	rep, err := s.det.Inspect(yObserved)
	if err != nil {
		return nil, err
	}
	stat, alarm := s.cusum.Observe(rep.ResidualNorm)
	return &SequentialReport{
		Round:         s.cusum.Rounds(),
		Statistic:     stat,
		RoundResidual: rep.ResidualNorm,
		Alarm:         alarm,
	}, nil
}

// Reset clears the accumulated statistic (e.g. after an investigated
// alarm).
func (s *Sequential) Reset() { s.cusum.Reset() }

// Statistic returns the current CUSUM value.
func (s *Sequential) Statistic() float64 { return s.cusum.Statistic() }
