package detect

import (
	"fmt"

	"repro/internal/la"
)

// Sequential accumulates consistency evidence across measurement rounds
// (a CUSUM-style test). It exists to counter the α-evasive attacker
// (core.Scenario.EvadeAlpha): a manipulation tuned to keep each round's
// residual just under the single-round threshold still injects the SAME
// bias every round, so the per-round residual mean stays near its
// attack-free level plus a constant offset. Accumulating
// (residual − drift) grows linearly under a persistent attack while
// zero-mean measurement noise cancels, so the cumulative statistic
// crosses any ceiling eventually.
//
//	S_0 = 0
//	S_n = max(0, S_{n−1} + ‖R·x̂_n − y'_n‖₁ − Drift)
//	alarm when S_n > Ceiling
//
// Drift should sit a little above the clean-round residual mean (e.g.
// the Calibrate output at a mid quantile); Ceiling trades detection
// delay against false alarms, as usual for CUSUM.
type Sequential struct {
	det     *Detector
	drift   float64
	ceiling float64
	s       float64
	rounds  int
}

// NewSequential wraps a detector with CUSUM accumulation. Drift must be
// positive; Ceiling must be positive.
func NewSequential(det *Detector, drift, ceiling float64) (*Sequential, error) {
	if det == nil {
		return nil, fmt.Errorf("detect: nil detector: %w", ErrBadInput)
	}
	if drift <= 0 || ceiling <= 0 {
		return nil, fmt.Errorf("detect: drift %g and ceiling %g must be positive: %w", drift, ceiling, ErrBadInput)
	}
	return &Sequential{det: det, drift: drift, ceiling: ceiling}, nil
}

// SequentialReport is the outcome of one accumulated round.
type SequentialReport struct {
	// Round counts observations fed so far.
	Round int
	// Statistic is the current CUSUM value S_n.
	Statistic float64
	// RoundResidual is this round's ‖R·x̂ − y'‖₁.
	RoundResidual float64
	// Alarm is true once the statistic crosses the ceiling.
	Alarm bool
}

// Observe feeds one measurement round and updates the statistic.
func (s *Sequential) Observe(yObserved la.Vector) (*SequentialReport, error) {
	rep, err := s.det.Inspect(yObserved)
	if err != nil {
		return nil, err
	}
	s.rounds++
	s.s += rep.ResidualNorm - s.drift
	if s.s < 0 {
		s.s = 0
	}
	return &SequentialReport{
		Round:         s.rounds,
		Statistic:     s.s,
		RoundResidual: rep.ResidualNorm,
		Alarm:         s.s > s.ceiling,
	}, nil
}

// Reset clears the accumulated statistic (e.g. after an investigated
// alarm).
func (s *Sequential) Reset() {
	s.s = 0
	s.rounds = 0
}

// Statistic returns the current CUSUM value.
func (s *Sequential) Statistic() float64 { return s.s }
