package detect

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// ispSingleAttackerAttack builds the synthetic ISP environment and runs
// a feasible single-attacker max-damage attack, retrying attackers until
// one succeeds.
func ispSingleAttackerAttack(t *testing.T, seed int64) (*tomo.System, graph.NodeID, *core.Result) {
	t.Helper()
	g, err := topo.ISP(1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	_, paths, rank, err := tomo.PlaceMonitors(g, rng, tomo.PlaceOptions{
		Initial: 8,
		Select:  tomo.SelectOptions{PerPair: 6},
	})
	if err != nil || rank != g.NumLinks() {
		t.Fatalf("placement rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(g, paths)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 60; k++ {
		attacker := graph.NodeID(rng.Intn(g.NumNodes()))
		sc := &core.Scenario{
			Sys:        sys,
			Thresholds: tomo.DefaultThresholds(),
			Attackers:  []graph.NodeID{attacker},
			TrueX:      netsim.RoutineDelays(g, rng),
		}
		res, err := core.MaxDamage(sc, core.MaxDamageOptions{MaxVictims: 1, FirstFeasible: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Feasible {
			return sys, attacker, res
		}
	}
	t.Fatal("no feasible single-attacker draw in 60 tries")
	return nil, 0, nil
}

func TestLocalizeFindsSingleAttacker(t *testing.T) {
	sys, attacker, res := ispSingleAttackerAttack(t, 9)
	d, err := New(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Inspect(res.YObserved)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatal("attack not even detected")
	}
	suspects, err := d.Localize(res.YObserved, LocalizeOptions{})
	if err != nil {
		t.Fatalf("Localize: %v", err)
	}
	if len(suspects) == 0 {
		t.Fatal("no suspects scored")
	}
	if suspects[0].Node != attacker {
		name, _ := sys.Graph().NodeName(suspects[0].Node)
		want, _ := sys.Graph().NodeName(attacker)
		t.Fatalf("top suspect %s, want %s (score %.3f)", name, want, suspects[0].Score)
	}
	// The true attacker's score should be near zero (the ridge fit
	// leaves ~1e-5 of regularization residue) and clearly separated
	// from the innocent runner-up.
	if suspects[0].Score > 0.01 {
		t.Errorf("attacker score %.6f, want ≈ 0", suspects[0].Score)
	}
	if len(suspects) > 1 && suspects[1].Score < 5*suspects[0].Score {
		t.Errorf("runner-up score %.4f too close to attacker's %.6f — ranking ambiguous",
			suspects[1].Score, suspects[0].Score)
	}
}

func TestLocalizeAcrossSeeds(t *testing.T) {
	hits := 0
	const trials = 3
	for seed := int64(20); seed < 20+trials; seed++ {
		sys, attacker, res := ispSingleAttackerAttack(t, seed)
		d, _ := New(sys, 0)
		suspects, err := d.Localize(res.YObserved, LocalizeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if len(suspects) > 0 && suspects[0].Node == attacker {
			hits++
		}
	}
	if hits < trials-1 {
		t.Errorf("localization hit %d/%d single attackers", hits, trials)
	}
}

func TestLocalizeShapeError(t *testing.T) {
	f := topo.Fig1()
	paths, _, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Localize(la.Vector{1}, LocalizeOptions{}); !errors.Is(err, ErrBadInput) {
		t.Errorf("short y: err = %v", err)
	}
}

func TestLocalizeSuspectsSorted(t *testing.T) {
	sys, _, res := ispSingleAttackerAttack(t, 31)
	d, _ := New(sys, 0)
	suspects, err := d.Localize(res.YObserved, LocalizeOptions{MinExcess: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(suspects); i++ {
		if suspects[i].Score < suspects[i-1].Score {
			t.Fatalf("suspects unsorted at %d", i)
		}
	}
	for _, s := range suspects {
		if s.ExcessPaths < 5 {
			t.Errorf("suspect %d kept with excess %d < MinExcess", s.Node, s.ExcessPaths)
		}
	}
}
