package detect_test

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// ExampleDetector_Inspect runs the paper's consistency check against
// both a clean measurement round and a scapegoating attack on an
// imperfectly cut victim.
func ExampleDetector_Inspect() {
	f := topo.Fig1()
	paths, _, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		log.Fatal(err)
	}
	x := make(la.Vector, f.G.NumLinks())
	for i := range x {
		x[i] = 10
	}
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
	}
	det, err := detect.New(sys, detect.DefaultAlpha) // α = 200 ms
	if err != nil {
		log.Fatal(err)
	}

	clean, err := sc.CleanMeasurements()
	if err != nil {
		log.Fatal(err)
	}
	rep, err := det.Inspect(clean)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("clean round detected:", rep.Detected)

	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		log.Fatal(err)
	}
	rep, err = det.Inspect(res.YObserved)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("attacked round detected:", rep.Detected)
	// Output:
	// clean round detected: false
	// attacked round detected: true
}
