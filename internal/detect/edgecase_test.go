package detect

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

func fig1System(t *testing.T) (*topo.Fig1Topology, *tomo.System) {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != f.G.NumLinks() {
		t.Fatalf("rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	return f, sys
}

// TestZeroResidualNeverDetects feeds the detector perfectly consistent
// measurements y = R·x: the residual is numerically zero and no finite
// positive threshold can fire.
func TestZeroResidualNeverDetects(t *testing.T) {
	_, sys := fig1System(t)
	x := netsim.RoutineDelays(sys.Graph(), rand.New(rand.NewSource(5)))
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	for _, alpha := range []float64{1e-6, 1, DefaultAlpha} {
		d, err := New(sys, alpha)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := d.Inspect(y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			t.Errorf("α=%g: consistent measurements detected (residual %g)", alpha, rep.ResidualNorm)
		}
		if rep.ResidualNorm > 1e-6 {
			t.Errorf("α=%g: residual %g for y = R·x", alpha, rep.ResidualNorm)
		}
	}
}

// TestAllPathsInfectedStillDetected manipulates every measurement path
// at once — the worst case short of a consistent construction. A uniform
// shift of all 23 Fig. 1 paths does not lie in the column space of R, so
// the residual survives and the detector fires: controlling every path
// is NOT the same as a perfect cut.
func TestAllPathsInfectedStillDetected(t *testing.T) {
	_, sys := fig1System(t)
	x := netsim.RoutineDelays(sys.Graph(), rand.New(rand.NewSource(6)))
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	yAtt := y.Clone()
	for i := range yAtt {
		yAtt[i] += 1000 // every path infected by the same 1000 ms
	}
	d, err := New(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Inspect(yAtt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResidualNorm <= d.Alpha() {
		t.Fatalf("uniform all-path manipulation left residual %g ≤ α=%g", rep.ResidualNorm, d.Alpha())
	}
	if !rep.Detected {
		t.Error("all-path manipulation not detected")
	}
	if rep.Detected != (rep.ResidualNorm > d.Alpha()) {
		t.Error("Detected inconsistent with the strict-inequality contract")
	}
}

// TestSinglePathTopologyIsVacuous pins Theorem 3's degenerate case on
// the smallest possible system: two monitors, one link, one path. R is
// the 1×1 identity — square and invertible — so x̂ reproduces any y
// exactly, the residual is identically zero, and the detector can never
// fire no matter how large the manipulation. SquareR must flag this.
func TestSinglePathTopologyIsVacuous(t *testing.T) {
	g := graph.New()
	a := g.AddNode("M1")
	b := g.AddNode("M2")
	l, err := g.AddLink(a, b)
	if err != nil {
		t.Fatal(err)
	}
	p := graph.Path{Nodes: []graph.NodeID{a, b}, Links: []graph.LinkID{l}}
	sys, err := tomo.NewSystem(g, []graph.Path{p})
	if err != nil {
		t.Fatal(err)
	}
	d, err := New(sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []la.Vector{{3}, {3000}, {3e6}} {
		rep, err := d.Inspect(y)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.SquareR {
			t.Fatal("square 1×1 system not flagged SquareR")
		}
		if rep.Detected || rep.ResidualNorm > 1e-9 {
			t.Errorf("y=%v: detected=%v residual=%g on an invertible system", y, rep.Detected, rep.ResidualNorm)
		}
		if rep.XHat[0] != y[0] {
			t.Errorf("y=%v: x̂=%g, want exact reproduction", y, rep.XHat[0])
		}
	}
}

// TestAlphaBoundaryIsStrict pins the boundary semantics of Remark 4's
// test: the alarm condition is the strict ‖R·x̂ − y'‖₁ > α, so a
// residual exactly equal to the threshold is classified clean, and the
// next float below the residual flips it to detected.
func TestAlphaBoundaryIsStrict(t *testing.T) {
	_, sys := fig1System(t)
	x := netsim.RoutineDelays(sys.Graph(), rand.New(rand.NewSource(7)))
	y, err := sys.Measure(x)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb one path to get a strictly positive residual norm.
	yAtt := y.Clone()
	yAtt[0] += 500
	probe, err := New(sys, DefaultAlpha)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := probe.Inspect(yAtt)
	if err != nil {
		t.Fatal(err)
	}
	norm := rep.ResidualNorm
	if norm <= 0 {
		t.Fatalf("fixture produced a zero residual")
	}

	// α exactly at the residual: not detected (strict inequality).
	atBoundary, err := New(sys, norm)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = atBoundary.Inspect(yAtt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected {
		t.Errorf("residual %g detected at α == residual; boundary must classify clean", norm)
	}

	// α one ulp below the residual: detected.
	below, err := New(sys, math.Nextafter(norm, 0))
	if err != nil {
		t.Fatal(err)
	}
	rep, err = below.Inspect(yAtt)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Errorf("residual %g not detected at α one ulp below it", norm)
	}
}
