package detect

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
)

// evasiveFig1Attack builds a Fig. 1 scenario and an α-evasive attack on
// link 10 that stays under the given single-round budget.
func evasiveFig1Attack(t *testing.T, seed int64, alpha float64) (*core.Scenario, *core.Result) {
	t.Helper()
	sc, _, f := fig1Attack(t, seed, 10, false)
	_ = f
	scEv := &core.Scenario{
		Sys:        sc.Sys,
		Thresholds: sc.Thresholds,
		Attackers:  sc.Attackers,
		TrueX:      sc.TrueX,
		// The optimum saturates the budget, so a rational evader leaves
		// 5% headroom to stay strictly under the operator's threshold.
		EvadeAlpha: 0.95 * alpha,
	}
	fTopo := topoOf(t, scEv)
	res, err := core.ChosenVictim(scEv, []graph.LinkID{fTopo})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skipf("evasive attack at α=%g infeasible on this draw", alpha)
	}
	return scEv, res
}

// topoOf digs out paper link 10 of the Fig. 1 graph inside sc.
func topoOf(t *testing.T, sc *core.Scenario) graph.LinkID {
	t.Helper()
	g := sc.Sys.Graph()
	d, ok := g.NodeByName("D")
	if !ok {
		t.Fatal("not a Fig1 graph")
	}
	m2, _ := g.NodeByName("M2")
	l, ok := g.LinkBetween(d, m2)
	if !ok {
		t.Fatal("link 10 missing")
	}
	return l
}

func TestSequentialCatchesEvasiveAttack(t *testing.T) {
	// The attacker stays under the per-round α = 3000, so the one-shot
	// detector at that α never fires; CUSUM accumulates the persistent
	// bias and alarms within a handful of rounds.
	const alpha = 3000
	sc, res := evasiveFig1Attack(t, 41, alpha)
	det, err := New(sc.Sys, alpha)
	if err != nil {
		t.Fatal(err)
	}
	one, err := det.Inspect(res.YObserved)
	if err != nil {
		t.Fatal(err)
	}
	if one.Detected {
		t.Fatalf("single-round detector fired at residual %.1f; evasion failed", one.ResidualNorm)
	}
	// Drift a bit above the clean level (clean residual ≈ 0 without
	// noise; use 10% of α), ceiling = 2α.
	seq, err := NewSequential(det, 0.1*alpha, 2*alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	attackers := attackerSet(sc)
	alarmed := 0
	for round := 0; round < 10; round++ {
		y, err := netsim.RunDelay(netsim.Config{
			Graph:      sc.Sys.Graph(),
			Paths:      sc.Sys.Paths(),
			LinkDelays: sc.TrueX,
			Jitter:     1, ProbesPerPath: 3, RNG: rng,
			Plan: &netsim.AttackPlan{Attackers: attackers, ExtraDelay: res.M},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := seq.Observe(y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Alarm {
			alarmed = rep.Round
			break
		}
	}
	if alarmed == 0 {
		t.Fatalf("CUSUM never alarmed in 10 rounds (statistic %.1f)", seq.Statistic())
	}
	t.Logf("CUSUM alarmed at round %d", alarmed)
}

func TestSequentialNoFalseAlarmOnCleanRounds(t *testing.T) {
	sc, _, _ := fig1Attack(t, 42, 10, false)
	det, err := New(sc.Sys, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Drift above the noisy clean residual level.
	rng := rand.New(rand.NewSource(6))
	cleanResidual := func() float64 {
		y, err := netsim.RunDelay(netsim.Config{
			Graph: sc.Sys.Graph(), Paths: sc.Sys.Paths(), LinkDelays: sc.TrueX,
			Jitter: 1, ProbesPerPath: 3, RNG: rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := det.Inspect(y)
		if err != nil {
			t.Fatal(err)
		}
		return rep.ResidualNorm
	}
	var maxClean float64
	for k := 0; k < 20; k++ {
		if r := cleanResidual(); r > maxClean {
			maxClean = r
		}
	}
	seq, err := NewSequential(det, maxClean*1.2, 200)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 50; round++ {
		y, err := netsim.RunDelay(netsim.Config{
			Graph: sc.Sys.Graph(), Paths: sc.Sys.Paths(), LinkDelays: sc.TrueX,
			Jitter: 1, ProbesPerPath: 3, RNG: rng,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := seq.Observe(y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Alarm {
			t.Fatalf("false alarm at clean round %d (statistic %.1f)", rep.Round, rep.Statistic)
		}
	}
}

func TestSequentialResetAndValidation(t *testing.T) {
	sc, _, _ := fig1Attack(t, 1, 10, false)
	det, _ := New(sc.Sys, 0)
	if _, err := NewSequential(nil, 1, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("nil detector: err = %v", err)
	}
	if _, err := NewSequential(det, 0, 1); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero drift: err = %v", err)
	}
	if _, err := NewSequential(det, 1, 0); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero ceiling: err = %v", err)
	}
	seq, err := NewSequential(det, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	y, _ := sc.CleanMeasurements()
	if _, err := seq.Observe(la.Vector{1}); err == nil {
		t.Error("short y accepted")
	}
	if _, err := seq.Observe(y); err != nil {
		t.Fatal(err)
	}
	seq.Reset()
	if seq.Statistic() != 0 {
		t.Error("Reset did not clear statistic")
	}
}

func attackerSet(sc *core.Scenario) map[graph.NodeID]bool {
	set := make(map[graph.NodeID]bool, len(sc.Attackers))
	for _, v := range sc.Attackers {
		set[v] = true
	}
	return set
}

func TestCusumAccumulator(t *testing.T) {
	if _, err := NewCusum(0, 5); !errors.Is(err, ErrBadInput) {
		t.Errorf("zero drift: err = %v", err)
	}
	if _, err := NewCusum(5, -1); !errors.Is(err, ErrBadInput) {
		t.Errorf("negative ceiling: err = %v", err)
	}
	c, err := NewCusum(10, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Below drift: clamped at zero.
	if stat, alarm := c.Observe(5); stat != 0 || alarm {
		t.Errorf("Observe(5) = %g,%t, want 0,false", stat, alarm)
	}
	// Accumulate 20 excess per round: 20, 40 (alarm at 40 > 25).
	if stat, alarm := c.Observe(30); stat != 20 || alarm {
		t.Errorf("Observe(30) = %g,%t, want 20,false", stat, alarm)
	}
	if stat, alarm := c.Observe(30); stat != 40 || !alarm {
		t.Errorf("Observe(30) = %g,%t, want 40,true", stat, alarm)
	}
	if c.Rounds() != 3 || c.Statistic() != 40 || c.Drift() != 10 || c.Ceiling() != 25 {
		t.Errorf("accessors: rounds=%d stat=%g drift=%g ceiling=%g", c.Rounds(), c.Statistic(), c.Drift(), c.Ceiling())
	}
	c.Reset()
	if c.Rounds() != 0 || c.Statistic() != 0 {
		t.Error("Reset left state")
	}
}
