// Package detect implements the paper's scapegoating detection
// (Section IV-B): after running tomography, verify the estimate against
// the observed measurements under the linear model. A nonzero
// inconsistency R·x̂ ≠ y' reveals manipulation (Eq. 23); with
// measurement noise the test becomes ‖R·x̂ − y'‖₁ > α for an
// empirically calibrated threshold α (Remark 4).
//
// Theorem 3 fixes this detector's power: scapegoating under a perfect
// cut (or a square R) is undetectable; any imperfect cut is detectable.
package detect

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/la"
	"repro/internal/obs"
	"repro/internal/tomo"
)

// DefaultAlpha is the paper's experimental threshold: α = 200 ms
// (Section V-D).
const DefaultAlpha = 200.0

// ErrBadInput is returned for malformed detector inputs.
var ErrBadInput = errors.New("detect: bad input")

// Detector runs the consistency check of Eq. 23 on a tomography system.
// A Detector is immutable after New (and SetObserver, which must happen
// before the detector is shared) and safe for concurrent Inspect calls:
// long-lived services should build one Detector per registered system
// and share it across request handlers.
type Detector struct {
	sys     *tomo.System
	alpha   float64
	observe func(ctx context.Context, rep *Report)
}

// New creates a detector with threshold alpha; alpha = 0 selects
// DefaultAlpha. Negative alpha is rejected.
func New(sys *tomo.System, alpha float64) (*Detector, error) {
	if sys == nil {
		return nil, fmt.Errorf("detect: nil system: %w", ErrBadInput)
	}
	if alpha < 0 {
		return nil, fmt.Errorf("detect: negative threshold %g: %w", alpha, ErrBadInput)
	}
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	return &Detector{sys: sys, alpha: alpha}, nil
}

// Alpha returns the detection threshold in use.
func (d *Detector) Alpha() float64 { return d.alpha }

// SetObserver installs a hook called with every successful Inspect's
// report and context — the forensics exemplar feed. Install before the
// detector is shared (like tomo.SetSolveObserver); the hook must be
// fast and concurrency-safe, and must not retain rep's vectors beyond
// the call. The context carries the request/round correlation ID
// (obs.RequestID) and active trace (obs.TraceID).
func (d *Detector) SetObserver(fn func(ctx context.Context, rep *Report)) {
	d.observe = fn
}

// WithAlpha derives a detector sharing d's system and observer hook but
// using a different threshold — how a per-request alpha override keeps
// feeding the same forensic observatory.
func (d *Detector) WithAlpha(alpha float64) (*Detector, error) {
	nd, err := New(d.sys, alpha)
	if err != nil {
		return nil, err
	}
	nd.observe = d.observe
	return nd, nil
}

// Warm forces the underlying system's solver construction (dense
// factorization or sparse identifiability screen) so the first Inspect
// on a fresh system does not pay that cost inside a latency-sensitive
// path. It surfaces tomo.ErrNotIdentifiable eagerly, which lets a
// service reject an unusable configuration at registration time instead
// of on first inspection.
func (d *Detector) Warm() error {
	_, err := d.sys.Solver()
	return err
}

// Report is the outcome of inspecting one measurement vector.
type Report struct {
	// Detected is true when the residual strictly exceeds the threshold:
	// ‖R·x̂ − y'‖₁ > α. A residual exactly equal to α is classified
	// clean — the boundary belongs to the attacker, matching Remark 4's
	// framing where an evasive attacker may spend residual budget up to
	// and including α without tripping the alarm.
	Detected bool
	// ResidualNorm is ‖R·x̂ − y'‖₁.
	ResidualNorm float64
	// Residual is the per-path inconsistency vector R·x̂ − y'.
	Residual la.Vector
	// XHat is the tomography estimate the check was run against.
	XHat la.Vector
	// SquareR flags the degenerate case of Theorem 3: with a square
	// (invertible) routing matrix the residual is identically zero and
	// the check is vacuous.
	SquareR bool
}

// Inspect estimates link metrics from the observed measurements and
// tests the model consistency (Eq. 23 with Remark 4's threshold).
func (d *Detector) Inspect(yObserved la.Vector) (*Report, error) {
	return d.InspectCtx(context.Background(), yObserved)
}

// InspectCtx is Inspect under a "detect.inspect" trace span annotated
// with the verdict and the (quantized) residual norm; the tomography
// solve appears as a child span.
func (d *Detector) InspectCtx(ctx context.Context, yObserved la.Vector) (*Report, error) {
	ctx, span := obs.StartSpan(ctx, "detect.inspect")
	defer span.End()
	if len(yObserved) != d.sys.NumPaths() {
		return nil, fmt.Errorf("detect: measurement vector has %d entries, want %d: %w",
			len(yObserved), d.sys.NumPaths(), ErrBadInput)
	}
	xhat, err := d.sys.EstimateCtx(ctx, yObserved)
	if err != nil {
		return nil, fmt.Errorf("detect: %w", err)
	}
	res, err := d.sys.Residual(xhat, yObserved)
	if err != nil {
		return nil, fmt.Errorf("detect: %w", err)
	}
	norm := res.Norm1()
	span.SetBool("detected", norm > d.alpha)
	span.SetFloat("residual_norm", norm)
	rep := &Report{
		Detected:     norm > d.alpha,
		ResidualNorm: norm,
		Residual:     res,
		XHat:         xhat,
		SquareR:      d.sys.NumPaths() == d.sys.NumLinks(),
	}
	if d.observe != nil {
		d.observe(ctx, rep)
	}
	return rep, nil
}

// Calibrate picks a detection threshold from clean (attack-free)
// measurement samples: the q-quantile of their residual norms, scaled by
// headroom. With q = 1 and headroom > 1 the resulting detector has zero
// false alarms on the calibration set by construction — matching the
// paper's "no false alarm" observation. Typical use feeds measurement
// vectors produced by the netsim simulator under noise.
func Calibrate(sys *tomo.System, cleanRuns []la.Vector, q, headroom float64) (float64, error) {
	if sys == nil {
		return 0, fmt.Errorf("detect: nil system: %w", ErrBadInput)
	}
	if len(cleanRuns) == 0 {
		return 0, fmt.Errorf("detect: no calibration samples: %w", ErrBadInput)
	}
	if q <= 0 || q > 1 {
		return 0, fmt.Errorf("detect: quantile %g not in (0,1]: %w", q, ErrBadInput)
	}
	if headroom <= 0 {
		headroom = 1
	}
	norms := make([]float64, 0, len(cleanRuns))
	for i, y := range cleanRuns {
		xhat, err := sys.Estimate(y)
		if err != nil {
			return 0, fmt.Errorf("detect: calibration sample %d: %w", i, err)
		}
		res, err := sys.Residual(xhat, y)
		if err != nil {
			return 0, fmt.Errorf("detect: calibration sample %d: %w", i, err)
		}
		norms = append(norms, res.Norm1())
	}
	sort.Float64s(norms)
	idx := int(q*float64(len(norms))) - 1
	if idx < 0 {
		idx = 0
	}
	return norms[idx] * headroom, nil
}
