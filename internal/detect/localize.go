package detect

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/tomo"
)

// Suspect is one node's leave-node-out consistency score. Lower scores
// are more suspicious: if the node is the manipulator, every path that
// avoids it is untouched (Constraint 1), so the sub-system fit on those
// paths alone is perfectly consistent and the score collapses to ≈ 0.
type Suspect struct {
	Node graph.NodeID
	// Score is the L1 residual of the node-avoiding sub-system fit,
	// normalized by its excess path count (paths − rank). Lower is more
	// suspicious.
	Score float64
	// ExcessPaths is how many redundant paths backed the score; small
	// excess means weak evidence.
	ExcessPaths int
}

// LocalizeOptions tune attacker localization.
type LocalizeOptions struct {
	// MinExcess is the minimum redundancy (paths − rank of the
	// node-avoiding sub-system) required for a node to be scored;
	// below it the consistency check has too few spare equations to
	// mean anything. Zero means 3.
	MinExcess int
	// Ridge is the Tikhonov parameter for rank-deficient sub-system
	// fits; ≤ 0 selects a scale-aware default.
	Ridge float64
}

func (o LocalizeOptions) minExcess() int {
	if o.MinExcess <= 0 {
		return 3
	}
	return o.MinExcess
}

// Localize ranks candidate manipulator nodes from one manipulated
// measurement vector using leave-node-out consistency: for each node v,
// refit tomography on only the paths avoiding v and measure how
// consistent they are among themselves. A single attacker (or a
// colluding set whose paths one node covers) drives its own score to
// ≈ 0 while innocent nodes keep inheriting the manipulation.
//
// Call it after Inspect has fired; on clean measurements every score is
// ≈ 0 and the ranking is meaningless. Nodes whose exclusion leaves less
// than MinExcess redundant paths are omitted (insufficient evidence) —
// on very small systems that may be every node, in which case the
// result is empty rather than misleading.
func (d *Detector) Localize(yObserved la.Vector, opts LocalizeOptions) ([]Suspect, error) {
	if len(yObserved) != d.sys.NumPaths() {
		return nil, fmt.Errorf("detect: measurement vector has %d entries, want %d: %w",
			len(yObserved), d.sys.NumPaths(), ErrBadInput)
	}
	g := d.sys.Graph()
	var out []Suspect
	for vi := 0; vi < g.NumNodes(); vi++ {
		v := graph.NodeID(vi)
		var paths []graph.Path
		var ys la.Vector
		for i, p := range d.sys.Paths() {
			if !p.HasNode(v) {
				paths = append(paths, p)
				ys = append(ys, yObserved[i])
			}
		}
		if len(paths) == 0 {
			continue
		}
		sub, err := tomo.NewSystem(g, paths)
		if err != nil {
			return nil, fmt.Errorf("detect: localize node %d: %w", v, err)
		}
		excess := len(paths) - sub.Rank()
		if excess < opts.minExcess() {
			continue
		}
		xhat, err := tomo.EstimateDeficient(sub, ys, opts.Ridge)
		if err != nil {
			return nil, fmt.Errorf("detect: localize node %d: %w", v, err)
		}
		res, err := sub.Residual(xhat, ys)
		if err != nil {
			return nil, fmt.Errorf("detect: localize node %d: %w", v, err)
		}
		out = append(out, Suspect{
			Node:        v,
			Score:       res.Norm1() / float64(excess),
			ExcessPaths: excess,
		})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Score != out[b].Score {
			return out[a].Score < out[b].Score
		}
		return out[a].Node < out[b].Node
	})
	return out, nil
}
