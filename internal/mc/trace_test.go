package mc

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestRunCtxTraceStructure pins the trial-pool trace shape: one mc.run
// span under the caller's root, with one mc.trial child per trial in
// index order regardless of worker count (the dispatch goroutine, not
// the racing workers, creates the spans).
func TestRunCtxTraceStructure(t *testing.T) {
	tracer := obs.NewTracer(obs.NewFakeClock(time.Unix(0, 0), time.Microsecond), 4)
	ctx, root := tracer.StartRoot(context.Background(), "test.root")

	const n = 8
	results, err := RunCtx(ctx, n, Options{Workers: 4}, func(ctx context.Context, trial int) (int, error) {
		if _, span := obs.StartSpan(ctx, "work"); span == nil {
			return 0, fmt.Errorf("trial %d: context carries no active span", trial)
		}
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i*i {
			t.Fatalf("results[%d] = %d", i, r)
		}
	}
	root.End()

	dumps := tracer.Dump(1)
	if len(dumps) != 1 {
		t.Fatalf("got %d traces, want 1", len(dumps))
	}
	children := dumps[0].Root.Children
	if len(children) != 1 || children[0].Name != "mc.run" {
		t.Fatalf("root children = %+v, want one mc.run", children)
	}
	run := children[0]
	if run.Attrs["trials"] != "8" || run.Attrs["workers"] != "4" {
		t.Errorf("mc.run attrs = %v", run.Attrs)
	}
	if len(run.Children) != n {
		t.Fatalf("mc.run has %d children, want %d", len(run.Children), n)
	}
	for i, c := range run.Children {
		if c.Name != "mc.trial" || c.Attrs["trial"] != fmt.Sprint(i) {
			t.Errorf("child %d = %s %v, want mc.trial trial=%d", i, c.Name, c.Attrs, i)
		}
	}
}

// TestRunCtxNoSpanIsNoop: without an active span in ctx, RunCtx must
// still run every trial and record nothing.
func TestRunCtxNoSpanIsNoop(t *testing.T) {
	results, err := RunCtx(context.Background(), 3, Options{Workers: 2}, func(ctx context.Context, trial int) (int, error) {
		if _, span := obs.StartSpan(ctx, "work"); span != nil {
			return 0, fmt.Errorf("trial %d: unexpected active span", trial)
		}
		return trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
}
