// Package mc is the shared Monte Carlo trial engine behind every
// experiment runner: it fans independent trials out over a bounded
// worker pool while keeping results bit-identical to a sequential run.
//
// The determinism contract has two halves:
//
//  1. Seed splitting. A trial never reads a shared PRNG stream; it
//     derives its own child PRNG from (base seed, trial index) via
//     Split, so a trial's outcome is a pure function of (seed, trial)
//     no matter which worker executes it or in which order.
//  2. Ordered aggregation. Run returns results indexed by trial, and
//     callers fold them in trial order, so aggregation never depends
//     on completion order.
//
// Together these make the worker count a pure throughput knob: for a
// fixed seed, Run with 1 worker and Run with N workers return deeply
// equal results (asserted per runner in internal/experiment's
// determinism tests).
package mc

import (
	"context"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/obs"
)

// Split derives the child seed for one trial from a base seed. It is a
// SplitMix64-style finalizer over the (seed, trial) pair: child streams
// for neighbouring trials and neighbouring base seeds are uncorrelated,
// which plain seed+trial arithmetic does not give with math/rand's
// lagged Fibonacci source.
func Split(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*(uint64(trial)+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// RNG returns the child PRNG for one trial of a base seed.
func RNG(seed int64, trial int) *rand.Rand {
	return rand.New(rand.NewSource(Split(seed, trial)))
}

// Progress receives (done, total) after each completed trial. Calls are
// serialized by the engine, but arrive in completion order, not trial
// order — progress displays only.
type Progress func(done, total int)

// Options configures one Run.
type Options struct {
	// Workers bounds trial concurrency; 0 or negative selects
	// GOMAXPROCS. The worker count never changes Run's results.
	Workers int
	// Progress, when non-nil, is invoked after each completed trial.
	Progress Progress
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes fn(0..n-1) over a bounded worker pool and returns the
// per-trial results in trial order. fn must be safe for concurrent
// calls and derive any randomness it needs from the trial index (RNG).
//
// Error semantics match a sequential loop that stops at the first
// failure: when any trial fails, Run returns nil results and the error
// of the lowest failing trial index. Trials are dispatched in index
// order, so every trial below a failing one has already been dispatched
// and is allowed to finish; trials above it may be skipped.
func Run[T any](n int, opts Options, fn func(trial int) (T, error)) ([]T, error) {
	return RunCtx(context.Background(), n, opts, func(_ context.Context, trial int) (T, error) {
		return fn(trial)
	})
}

// RunCtx is Run with trace propagation: when ctx carries an active obs
// span, the whole pool run is wrapped in an "mc.run" span (trial and
// worker counts as attributes) with one "mc.trial" child per trial. The
// per-trial spans are created by the dispatch goroutine in trial-index
// order — so the child order in a dumped trace is deterministic no
// matter how many workers raced — and each trial's fn receives a context
// carrying its own span. With no active span the overhead is a few
// pointer checks.
func RunCtx[T any](ctx context.Context, n int, opts Options, fn func(ctx context.Context, trial int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	out := make([]T, n)
	errs := make([]error, n)
	workers := opts.workers()
	if workers > n {
		workers = n
	}

	_, runSpan := obs.StartSpan(ctx, "mc.run")
	defer runSpan.End()
	runSpan.SetInt("trials", n)
	runSpan.SetInt("workers", workers)

	type job struct {
		t    int
		span *obs.Span
	}
	trials := make(chan job)
	stop := make(chan struct{})
	var stopOnce sync.Once
	var wg sync.WaitGroup
	var progressMu sync.Mutex
	done := 0
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range trials {
				out[j.t], errs[j.t] = fn(j.span.Context(ctx), j.t)
				j.span.End()
				if errs[j.t] != nil {
					stopOnce.Do(func() { close(stop) })
				}
				if opts.Progress != nil {
					progressMu.Lock()
					done++
					opts.Progress(done, n)
					progressMu.Unlock()
				}
			}
		}()
	}
feed:
	for t := 0; t < n; t++ {
		span := runSpan.NewChild("mc.trial")
		span.SetInt("trial", t)
		select {
		case trials <- job{t: t, span: span}:
		case <-stop:
			span.End()
			break feed
		}
	}
	close(trials)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
