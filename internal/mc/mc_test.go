package mc

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestSplitDistinctAcrossTrialsAndSeeds(t *testing.T) {
	seen := make(map[int64]string)
	for seed := int64(0); seed < 8; seed++ {
		for trial := 0; trial < 256; trial++ {
			s := Split(seed, trial)
			key := fmt.Sprintf("seed %d trial %d", seed, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("Split collision: %s and %s both give %d", prev, key, s)
			}
			seen[s] = key
		}
	}
}

func TestSplitIsPureFunction(t *testing.T) {
	if Split(42, 7) != Split(42, 7) {
		t.Error("Split not deterministic")
	}
	if Split(42, 7) == Split(42, 8) || Split(42, 7) == Split(43, 7) {
		t.Error("Split ignores one of its inputs")
	}
}

func TestRNGStreamsIndependent(t *testing.T) {
	// Trial i's draws must not depend on whether trial i-1 drew anything:
	// the whole point of splitting over sharing.
	a := RNG(1, 5).Float64()
	r := RNG(1, 4)
	for i := 0; i < 100; i++ {
		r.Float64()
	}
	b := RNG(1, 5).Float64()
	if a != b {
		t.Error("trial stream perturbed by sibling draws")
	}
}

// runSum is a trial function whose per-trial output depends on the trial
// PRNG; any ordering or sharing bug changes the results.
func runSum(trial int) (float64, error) {
	rng := RNG(99, trial)
	s := 0.0
	for i := 0; i < 50; i++ {
		s += rng.Float64()
	}
	return s + float64(trial), nil
}

func TestRunWorkerCountInvariance(t *testing.T) {
	want, err := Run(64, Options{Workers: 1}, runSum)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64, 100} {
		got, err := Run(64, Options{Workers: workers}, runSum)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d: results differ from sequential", workers)
		}
	}
}

func TestRunDefaultWorkers(t *testing.T) {
	if w := (Options{}).workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("default workers = %d, want GOMAXPROCS = %d", w, runtime.GOMAXPROCS(0))
	}
	if w := (Options{Workers: -3}).workers(); w != runtime.GOMAXPROCS(0) {
		t.Errorf("negative workers = %d, want GOMAXPROCS", w)
	}
	got, err := Run(10, Options{}, runSum)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Errorf("len = %d", len(got))
	}
}

func TestRunZeroTrials(t *testing.T) {
	got, err := Run(0, Options{}, runSum)
	if err != nil || got != nil {
		t.Errorf("Run(0) = %v, %v; want nil, nil", got, err)
	}
}

func TestRunLowestErrorWins(t *testing.T) {
	errAt := func(bad ...int) func(int) (int, error) {
		set := make(map[int]bool)
		for _, b := range bad {
			set[b] = true
		}
		return func(trial int) (int, error) {
			if set[trial] {
				return 0, fmt.Errorf("trial %d failed", trial)
			}
			return trial, nil
		}
	}
	for _, workers := range []int{1, 4, 16} {
		got, err := Run(32, Options{Workers: workers}, errAt(19, 7, 28))
		if got != nil {
			t.Errorf("workers=%d: partial results returned with error", workers)
		}
		if err == nil || err.Error() != "trial 7 failed" {
			t.Errorf("workers=%d: err = %v, want lowest failing trial 7", workers, err)
		}
	}
}

func TestRunErrorStopsDispatch(t *testing.T) {
	// After an early failure, far-later trials must not all run: the
	// feeder stops. With 2 workers and an error at trial 0, the count of
	// executed trials stays far below n.
	var ran int64
	_, err := Run(10_000, Options{Workers: 2}, func(trial int) (int, error) {
		atomic.AddInt64(&ran, 1)
		if trial == 0 {
			return 0, errors.New("boom")
		}
		return trial, nil
	})
	if err == nil {
		t.Fatal("no error surfaced")
	}
	if n := atomic.LoadInt64(&ran); n > 100 {
		t.Errorf("%d trials ran after early failure", n)
	}
}

func TestRunProgress(t *testing.T) {
	var calls, lastDone, lastTotal int
	_, err := Run(25, Options{Workers: 5, Progress: func(done, total int) {
		calls++
		lastDone, lastTotal = done, total
	}}, runSum)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 25 {
		t.Errorf("progress calls = %d, want 25", calls)
	}
	if lastDone != 25 || lastTotal != 25 {
		t.Errorf("final progress = (%d, %d), want (25, 25)", lastDone, lastTotal)
	}
}

// TestRunConcurrentStress exercises the pool under the race detector:
// many trials, heavy worker oversubscription, shared read-only state.
func TestRunConcurrentStress(t *testing.T) {
	shared := make([]float64, 512)
	for i := range shared {
		shared[i] = float64(i) * 0.5
	}
	got, err := Run(512, Options{Workers: 32}, func(trial int) (float64, error) {
		rng := RNG(7, trial)
		return shared[trial] + rng.Float64(), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v < shared[i] || v > shared[i]+1 {
			t.Fatalf("trial %d result %g out of range", i, v)
		}
	}
}
