// Churn-aware campaign compilation: multi-epoch monitoring where the
// routing regime changes between epochs (link failures, ECMP-style path
// flaps, monitor churn) and the attacker re-solves its LP against each
// epoch's routing matrix, active only inside scripted windows. This is
// the compilation layer the time-scripted churn engine (internal/e2e)
// and the defender-stale-matrix experiment ride on.
package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
)

// ErrInfeasible reports that an epoch's attack LP had no solution on
// the given routing regime and traffic draw — the caller decides
// whether to re-draw traffic, skip the window, or fail the script.
var ErrInfeasible = errors.New("campaign: attack infeasible on this epoch")

// EpochAttack describes the attacker's intent for one routing epoch.
// The concrete manipulation vector is NOT part of the intent: it is
// re-solved against each epoch's routing matrix by CompileAttack,
// because a manipulation computed for epoch N's paths is meaningless —
// and rejected by netsim — on epoch N+1's.
type EpochAttack struct {
	// Attackers is V_m in the epoch's graph.
	Attackers []graph.NodeID
	// Victims is L_s, the links to scapegoat.
	Victims []graph.LinkID
	// Stealthy selects Theorem 1's consistent construction (zero
	// residual, undetectable under a perfect cut) instead of the plain
	// damage-maximizing chosen-victim LP.
	Stealthy bool
}

// CompileAttack re-solves the chosen-victim (or stealthy) LP against
// one epoch's routing regime and returns the simulator plan plus the
// achieved damage ‖m‖₁. LP solutions carry ~1e-13 residue on paths the
// attackers do not sit on; netsim enforces Constraint 1 operationally,
// so those entries are clamped to exactly zero. Returns ErrInfeasible
// when the strategy has no solution on this regime and traffic draw.
func CompileAttack(sys *tomo.System, trueX la.Vector, atk *EpochAttack) (*netsim.AttackPlan, float64, error) {
	if sys == nil || atk == nil {
		return nil, 0, fmt.Errorf("campaign: nil system or attack: %w", ErrBadConfig)
	}
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  atk.Attackers,
		TrueX:      trueX,
		Stealthy:   atk.Stealthy,
	}
	res, err := core.ChosenVictim(sc, atk.Victims)
	if err != nil {
		return nil, 0, fmt.Errorf("campaign: epoch attack: %w", err)
	}
	if !res.Feasible {
		return nil, 0, ErrInfeasible
	}
	attackers := make(map[graph.NodeID]bool, len(atk.Attackers))
	for _, v := range atk.Attackers {
		attackers[v] = true
	}
	clamped := make(la.Vector, len(res.M))
	for i, v := range res.M {
		if v < 1e-9 || !sys.Paths()[i].HasAnyNode(attackers) {
			continue
		}
		clamped[i] = v
	}
	return &netsim.AttackPlan{Attackers: attackers, ExtraDelay: clamped}, res.Damage, nil
}

// FlapPath picks an ECMP-style reroute for one measurement path: an
// index r into the system's path set and an alternate simple route
// between the same endpoints, not already in the set, such that
// substituting it for path r keeps the system identifiable. Candidate
// order is driven by rng, so distinct flap events draw distinct
// reroutes deterministically; the search itself is exhaustive enough
// that failure means the regime genuinely has no identifiable reroute.
func FlapPath(sys *tomo.System, rng *rand.Rand) (int, graph.Path, error) {
	if sys == nil {
		return 0, graph.Path{}, fmt.Errorf("campaign: nil system: %w", ErrBadConfig)
	}
	g := sys.Graph()
	paths := sys.Paths()
	order := rng.Perm(len(paths))
	for _, r := range order {
		p := paths[r]
		alts, err := graph.SimplePaths(g, p.Src(), p.Dst(), 0, 64)
		if err != nil {
			continue
		}
		for _, ai := range rng.Perm(len(alts)) {
			alt := alts[ai]
			if pathInSet(alt, paths) {
				continue
			}
			trial := make([]graph.Path, 0, len(paths))
			trial = append(trial, paths[:r]...)
			trial = append(trial, paths[r+1:]...)
			trial = append(trial, alt)
			cand, err := tomo.NewSystem(g, trial)
			if err != nil || !cand.Identifiable() {
				continue
			}
			return r, alt, nil
		}
	}
	return 0, graph.Path{}, fmt.Errorf("campaign: no identifiable reroute exists for any path")
}

func pathInSet(p graph.Path, set []graph.Path) bool {
	for _, q := range set {
		if p.Equal(q) {
			return true
		}
	}
	return false
}

// Epoch is one routing regime of a multi-epoch campaign: its own
// tomography system (the post-churn routing matrix), true link metrics,
// round budget, and optional attack plan already compiled against this
// regime (CompileAttack).
type Epoch struct {
	// Name tags the epoch in records and renders.
	Name string
	// Sys is this epoch's tomography system.
	Sys *tomo.System
	// TrueX is the true per-link metric vector in this epoch's link
	// numbering.
	TrueX la.Vector
	// Rounds is the measurement rounds spent in this regime (≥ 1).
	Rounds int
	// Plan is the epoch's attack (nil = clean regime).
	Plan *netsim.AttackPlan
	// Alpha is the detection threshold (0 = detect.DefaultAlpha).
	Alpha float64
	// Jitter and ProbesPerPath parameterize traffic synthesis.
	Jitter        float64
	ProbesPerPath int
}

// EpochRound is one round of a multi-epoch campaign transcript.
type EpochRound struct {
	// Epoch and Round locate the record (Round is epoch-local).
	Epoch, Round int
	// Attacked marks rounds simulated under the epoch's plan.
	Attacked bool
	// Residual is ‖R·x̂ − y'‖₁ under the epoch's own (fresh) detector.
	Residual float64
	// Alarm is the Eq. 23 verdict at the epoch's α.
	Alarm bool
}

// EpochsResult is a multi-epoch campaign transcript.
type EpochsResult struct {
	Rounds []EpochRound
	// Alarms counts per-epoch alarms, index-aligned with the input.
	Alarms []int
}

// RunEpochs executes a multi-epoch campaign over a netsim.World: epoch
// 0 pins the initial regime, every subsequent epoch is a mid-run Swap,
// and each epoch's rounds are inspected by a detector built on that
// epoch's own routing matrix — the promptly-re-learning defender. Round
// traffic is a pure function of (seed, global round index), so results
// are bit-identical across runs.
func RunEpochs(epochs []Epoch, seed int64) (*EpochsResult, error) {
	if len(epochs) == 0 {
		return nil, fmt.Errorf("campaign: no epochs: %w", ErrBadConfig)
	}
	var world *netsim.World
	out := &EpochsResult{Alarms: make([]int, len(epochs))}
	gi := 0
	for ei := range epochs {
		ep := &epochs[ei]
		if ep.Sys == nil || ep.Rounds < 1 {
			return nil, fmt.Errorf("campaign: epoch %d malformed: %w", ei, ErrBadConfig)
		}
		regime := netsim.Config{
			Graph:         ep.Sys.Graph(),
			Paths:         ep.Sys.Paths(),
			LinkDelays:    ep.TrueX,
			Jitter:        ep.Jitter,
			ProbesPerPath: ep.ProbesPerPath,
		}
		var err error
		if world == nil {
			world, err = netsim.NewWorld(regime)
		} else {
			err = world.Swap(regime)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: epoch %d (%s): %w", ei, ep.Name, err)
		}
		det, err := detect.New(ep.Sys, ep.Alpha)
		if err != nil {
			return nil, fmt.Errorf("campaign: epoch %d (%s): %w", ei, ep.Name, err)
		}
		for r := 0; r < ep.Rounds; r++ {
			y, err := world.Round(mc.RNG(seed, gi), ep.Plan)
			if err != nil {
				return nil, fmt.Errorf("campaign: epoch %d round %d: %w", ei, r, err)
			}
			rep, err := det.Inspect(y)
			if err != nil {
				return nil, fmt.Errorf("campaign: epoch %d round %d: %w", ei, r, err)
			}
			rec := EpochRound{
				Epoch:    ei,
				Round:    r,
				Attacked: ep.Plan != nil,
				Residual: rep.ResidualNorm,
				Alarm:    rep.Detected,
			}
			if rec.Alarm {
				out.Alarms[ei]++
			}
			out.Rounds = append(out.Rounds, rec)
			gi++
		}
	}
	return out, nil
}

// String renders the per-epoch alarm summary.
func (r *EpochsResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-9s %6s %12s %7s\n", "epoch", "attacked", "rounds", "residual", "alarms")
	ei := -1
	var rounds, attacked int
	var resSum float64
	flush := func() {
		if ei < 0 {
			return
		}
		att := "false"
		if attacked > 0 {
			att = "true"
		}
		fmt.Fprintf(&b, "%-6d %-9s %6d %9.1f ms %7d\n",
			ei, att, rounds, resSum/float64(rounds), r.Alarms[ei])
	}
	for _, rec := range r.Rounds {
		if rec.Epoch != ei {
			flush()
			ei, rounds, attacked, resSum = rec.Epoch, 0, 0, 0
		}
		rounds++
		if rec.Attacked {
			attacked++
		}
		resSum += rec.Residual
	}
	flush()
	return b.String()
}
