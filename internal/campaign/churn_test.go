package campaign

import (
	"errors"
	"testing"

	"repro/internal/graph"
	"repro/internal/mc"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// fig1Sys builds the canonical Fig. 1 system (23 exhaustive paths,
// rank 10) plus a routine-traffic draw.
func fig1Sys(t *testing.T, seed int64) (*topo.Fig1Topology, *tomo.System, []float64) {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil {
		t.Fatal(err)
	}
	if rank != f.G.NumLinks() {
		t.Fatalf("rank %d, want %d", rank, f.G.NumLinks())
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	return f, sys, netsim.RoutineDelays(f.G, mc.RNG(seed, 0))
}

func TestCompileAttackPerEpoch(t *testing.T) {
	f, sys, x := fig1Sys(t, 1)

	// Plain chosen-victim on link 10 (imperfect cut): feasible, positive
	// damage, manipulation confined to attacker paths.
	plan, damage, err := CompileAttack(sys, x, &EpochAttack{
		Attackers: f.Attackers,
		Victims:   []graph.LinkID{f.PaperLink[10]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if damage <= 0 {
		t.Errorf("chosen-victim damage %g, want > 0", damage)
	}
	attackers := map[graph.NodeID]bool{f.B: true, f.C: true}
	for i, m := range plan.ExtraDelay {
		if m > 0 && !sys.Paths()[i].HasAnyNode(attackers) {
			t.Errorf("path %d manipulated without an attacker on it", i)
		}
	}

	// Stealthy on link 1 (perfect cut by {B, C}): also feasible.
	_, sdamage, err := CompileAttack(sys, x, &EpochAttack{
		Attackers: f.Attackers,
		Victims:   []graph.LinkID{f.PaperLink[1]},
		Stealthy:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sdamage <= 0 {
		t.Errorf("stealthy damage %g, want > 0", sdamage)
	}

	// Stealthy on link 10 (imperfect cut): Theorem 3's converse says the
	// consistent construction cannot exist — must be ErrInfeasible.
	if _, _, err := CompileAttack(sys, x, &EpochAttack{
		Attackers: f.Attackers,
		Victims:   []graph.LinkID{f.PaperLink[10]},
		Stealthy:  true,
	}); !errors.Is(err, ErrInfeasible) {
		t.Errorf("stealthy imperfect-cut attack: err %v, want ErrInfeasible", err)
	}
}

func TestFlapPathKeepsIdentifiability(t *testing.T) {
	_, sys, _ := fig1Sys(t, 1)
	r, alt, err := FlapPath(sys, mc.RNG(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	old := sys.Paths()[r]
	if alt.Src() != old.Src() || alt.Dst() != old.Dst() {
		t.Fatalf("reroute endpoints %v→%v differ from path %d's %v→%v",
			alt.Src(), alt.Dst(), r, old.Src(), old.Dst())
	}
	if pathInSet(alt, sys.Paths()) {
		t.Fatal("reroute duplicates an existing path")
	}
	flapped := make([]graph.Path, 0, sys.NumPaths())
	flapped = append(flapped, sys.Paths()[:r]...)
	flapped = append(flapped, sys.Paths()[r+1:]...)
	flapped = append(flapped, alt)
	s2, err := tomo.NewSystem(sys.Graph(), flapped)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.Identifiable() {
		t.Fatal("flapped system lost identifiability")
	}

	// Determinism: same rng seed, same reroute.
	r2, alt2, err := FlapPath(sys, mc.RNG(7, 0))
	if err != nil {
		t.Fatal(err)
	}
	if r2 != r || !alt2.Equal(alt) {
		t.Errorf("flap not deterministic: (%d, %v) vs (%d, %v)", r, alt, r2, alt2)
	}
}

// TestRunEpochsAttackWindow runs a three-epoch campaign — clean, then
// an attacker window with the plain chosen-victim attack re-solved on
// that epoch's routing, then clean again — and checks the detector
// story: zero alarms outside the window, every round alarmed inside it
// (the imperfect cut leaves a residual far above α on every round).
func TestRunEpochsAttackWindow(t *testing.T) {
	f, sys, x := fig1Sys(t, 1)

	// The window epoch routes over a flapped path set: the attacker
	// solves against the flapped matrix, not the base one.
	r, alt, err := FlapPath(sys, mc.RNG(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	flapped := make([]graph.Path, 0, sys.NumPaths())
	flapped = append(flapped, sys.Paths()[:r]...)
	flapped = append(flapped, sys.Paths()[r+1:]...)
	flapped = append(flapped, alt)
	fsys, err := tomo.NewSystem(sys.Graph(), flapped)
	if err != nil {
		t.Fatal(err)
	}
	plan, _, err := CompileAttack(fsys, x, &EpochAttack{
		Attackers: f.Attackers,
		Victims:   []graph.LinkID{f.PaperLink[10]},
	})
	if err != nil {
		t.Fatal(err)
	}

	res, err := RunEpochs([]Epoch{
		{Name: "pre", Sys: sys, TrueX: x, Rounds: 4, Jitter: 1, ProbesPerPath: 3},
		{Name: "window", Sys: fsys, TrueX: x, Rounds: 4, Plan: plan, Jitter: 1, ProbesPerPath: 3},
		{Name: "post", Sys: sys, TrueX: x, Rounds: 4, Jitter: 1, ProbesPerPath: 3},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Alarms; got[0] != 0 || got[1] != 4 || got[2] != 0 {
		t.Fatalf("per-epoch alarms %v, want [0 4 0]\n%s", got, res)
	}
	if len(res.Rounds) != 12 {
		t.Fatalf("%d round records, want 12", len(res.Rounds))
	}

	// Determinism: a rerun is bit-identical.
	res2, err := RunEpochs([]Epoch{
		{Name: "pre", Sys: sys, TrueX: x, Rounds: 4, Jitter: 1, ProbesPerPath: 3},
		{Name: "window", Sys: fsys, TrueX: x, Rounds: 4, Plan: plan, Jitter: 1, ProbesPerPath: 3},
		{Name: "post", Sys: sys, TrueX: x, Rounds: 4, Jitter: 1, ProbesPerPath: 3},
	}, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rounds {
		if res.Rounds[i] != res2.Rounds[i] {
			t.Fatalf("round %d drifted between identical runs: %+v vs %+v",
				i, res.Rounds[i], res2.Rounds[i])
		}
	}
}

// TestRunEpochsStealthyWindowInvisible pins Theorem 3 under churn: a
// stealthy window on the perfectly cut link 1 does real damage but
// never alarms, even though the routing regime around it churns.
func TestRunEpochsStealthyWindowInvisible(t *testing.T) {
	f, sys, x := fig1Sys(t, 1)
	plan, damage, err := CompileAttack(sys, x, &EpochAttack{
		Attackers: f.Attackers,
		Victims:   []graph.LinkID{f.PaperLink[1]},
		Stealthy:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if damage <= 0 {
		t.Fatal("stealthy window solved with zero damage")
	}
	res, err := RunEpochs([]Epoch{
		{Name: "pre", Sys: sys, TrueX: x, Rounds: 3, Jitter: 1, ProbesPerPath: 3},
		{Name: "stealthy", Sys: sys, TrueX: x, Rounds: 6, Plan: plan, Jitter: 1, ProbesPerPath: 3},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Alarms[1] != 0 {
		t.Fatalf("stealthy window alarmed %d times\n%s", res.Alarms[1], res)
	}
}
