// Package campaign orchestrates multi-round tomography monitoring: each
// round the monitors probe every measurement path through the
// packet-level simulator, estimate link metrics, classify them, and
// feed the consistency residual to the one-shot and sequential
// detectors. It models the operational reality the paper's one-shot
// analysis abstracts away — operators measure continuously and attacks
// start at some point in time — and lets tests pin down detection
// latency after an attack's onset.
package campaign

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/detect"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/tomo"
)

// ErrBadConfig is returned for malformed campaign configuration.
var ErrBadConfig = errors.New("campaign: bad config")

// Config parameterizes a monitoring campaign.
type Config struct {
	// Sys is the tomography system.
	Sys *tomo.System
	// TrueX is the true link-metric vector, constant over the campaign.
	TrueX la.Vector
	// Rounds is how many measurement rounds to run (must be ≥ 1).
	Rounds int
	// Jitter is per-hop measurement noise (ms); needs RNG when > 0.
	Jitter float64
	// ProbesPerPath per round (0 = 1).
	ProbesPerPath int
	// RNG drives noise. Required when Jitter > 0.
	RNG *rand.Rand
	// Plan is the attack; nil means a clean campaign.
	Plan *netsim.AttackPlan
	// AttackFrom is the first round (0-based) in which the plan is
	// active; rounds before it are clean. Ignored when Plan is nil.
	AttackFrom int
	// Alpha is the one-shot detection threshold (0 = detect.DefaultAlpha).
	Alpha float64
	// Drift and Ceiling parameterize the sequential (CUSUM) detector;
	// both 0 disables it.
	Drift, Ceiling float64
	// Thresholds classify the per-round estimates (zero value =
	// tomo.DefaultThresholds).
	Thresholds tomo.Thresholds
	// Model optionally replaces TrueX with a time-varying delay model;
	// round r is simulated at virtual time r·RoundSpacing. TrueX is
	// still required for validation and as the t=0 reference.
	Model netsim.DelayModel
	// RoundSpacing is the virtual time between rounds when Model is
	// set (0 = 1000 ms).
	RoundSpacing float64
}

func (c Config) roundSpacing() float64 {
	if c.RoundSpacing <= 0 {
		return 1000
	}
	return c.RoundSpacing
}

// RoundRecord is the outcome of one monitoring round.
type RoundRecord struct {
	// Round is the 0-based round index.
	Round int
	// Attacked marks rounds where the plan was active.
	Attacked bool
	// XHat is the round's link-metric estimate.
	XHat la.Vector
	// States classifies XHat.
	States []tomo.State
	// Residual is the round's ‖R·x̂ − y'‖₁.
	Residual float64
	// OneShotAlarm is the Eq. 23 test at Alpha.
	OneShotAlarm bool
	// CusumStatistic and CusumAlarm report the sequential detector
	// (zero / false when disabled).
	CusumStatistic float64
	CusumAlarm     bool
}

// Result is a full campaign transcript.
type Result struct {
	Records []RoundRecord
	// FirstOneShotAlarm is the earliest round with a one-shot alarm
	// (−1 if none).
	FirstOneShotAlarm int
	// FirstCusumAlarm is the earliest round with a CUSUM alarm (−1 if
	// none or disabled).
	FirstCusumAlarm int
}

// Run executes the campaign.
func Run(cfg Config) (*Result, error) {
	if cfg.Sys == nil {
		return nil, fmt.Errorf("campaign: nil system: %w", ErrBadConfig)
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("campaign: %d rounds: %w", cfg.Rounds, ErrBadConfig)
	}
	if len(cfg.TrueX) != cfg.Sys.NumLinks() {
		return nil, fmt.Errorf("campaign: TrueX has %d entries for %d links: %w",
			len(cfg.TrueX), cfg.Sys.NumLinks(), ErrBadConfig)
	}
	th := cfg.Thresholds
	if th == (tomo.Thresholds{}) {
		th = tomo.DefaultThresholds()
	}
	det, err := detect.New(cfg.Sys, cfg.Alpha)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	var seq *detect.Sequential
	if cfg.Drift > 0 || cfg.Ceiling > 0 {
		seq, err = detect.NewSequential(det, cfg.Drift, cfg.Ceiling)
		if err != nil {
			return nil, fmt.Errorf("campaign: %w", err)
		}
	}

	out := &Result{FirstOneShotAlarm: -1, FirstCusumAlarm: -1}
	for round := 0; round < cfg.Rounds; round++ {
		var plan *netsim.AttackPlan
		attacked := cfg.Plan != nil && round >= cfg.AttackFrom
		if attacked {
			plan = cfg.Plan
		}
		simCfg := netsim.Config{
			Graph:         cfg.Sys.Graph(),
			Paths:         cfg.Sys.Paths(),
			LinkDelays:    cfg.TrueX,
			Jitter:        cfg.Jitter,
			ProbesPerPath: cfg.ProbesPerPath,
			RNG:           cfg.RNG,
			Plan:          plan,
		}
		var y la.Vector
		if cfg.Model != nil {
			y, err = netsim.RunDelayModel(simCfg, netsim.ShiftedModel{
				Model:  cfg.Model,
				Offset: float64(round) * cfg.roundSpacing(),
			})
		} else {
			y, err = netsim.RunDelay(simCfg)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: round %d: %w", round, err)
		}
		rep, err := det.Inspect(y)
		if err != nil {
			return nil, fmt.Errorf("campaign: round %d: %w", round, err)
		}
		rec := RoundRecord{
			Round:        round,
			Attacked:     attacked,
			XHat:         rep.XHat,
			States:       th.ClassifyAll(rep.XHat),
			Residual:     rep.ResidualNorm,
			OneShotAlarm: rep.Detected,
		}
		if rec.OneShotAlarm && out.FirstOneShotAlarm < 0 {
			out.FirstOneShotAlarm = round
		}
		if seq != nil {
			srep, err := seq.Observe(y)
			if err != nil {
				return nil, fmt.Errorf("campaign: round %d: %w", round, err)
			}
			rec.CusumStatistic = srep.Statistic
			rec.CusumAlarm = srep.Alarm
			if rec.CusumAlarm && out.FirstCusumAlarm < 0 {
				out.FirstCusumAlarm = round
			}
		}
		out.Records = append(out.Records, rec)
	}
	return out, nil
}

// String renders the campaign transcript as the round-by-round table
// the monitoring example prints.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-9s %12s %10s %12s %7s\n",
		"round", "attacked", "residual", "one-shot", "CUSUM stat", "CUSUM")
	for _, rec := range r.Records {
		fmt.Fprintf(&b, "%-6d %-9v %9.1f ms %10v %9.1f ms %7v\n",
			rec.Round, rec.Attacked, rec.Residual, rec.OneShotAlarm,
			rec.CusumStatistic, rec.CusumAlarm)
	}
	if r.FirstOneShotAlarm >= 0 {
		fmt.Fprintf(&b, "first one-shot alarm: round %d\n", r.FirstOneShotAlarm)
	}
	if r.FirstCusumAlarm >= 0 {
		fmt.Fprintf(&b, "first CUSUM alarm: round %d\n", r.FirstCusumAlarm)
	}
	return b.String()
}
