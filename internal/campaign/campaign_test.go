package campaign

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/la"
	"repro/internal/netsim"
	"repro/internal/tomo"
	"repro/internal/topo"
)

// fig1Campaign assembles the Fig. 1 system, a chosen-victim plan on
// link 10 (imperfect cut, detectable), and the true metrics.
func fig1Campaign(t *testing.T, seed int64, evadeAlpha float64) (*tomo.System, la.Vector, *netsim.AttackPlan) {
	t.Helper()
	f := topo.Fig1()
	paths, rank, err := tomo.SelectPaths(f.G, f.Monitors, tomo.SelectOptions{Exhaustive: true, TargetPaths: 23})
	if err != nil || rank != 10 {
		t.Fatalf("rank=%d err=%v", rank, err)
	}
	sys, err := tomo.NewSystem(f.G, paths)
	if err != nil {
		t.Fatal(err)
	}
	x := netsim.RoutineDelays(f.G, rand.New(rand.NewSource(seed)))
	sc := &core.Scenario{
		Sys:        sys,
		Thresholds: tomo.DefaultThresholds(),
		Attackers:  f.Attackers,
		TrueX:      x,
		EvadeAlpha: evadeAlpha,
	}
	res, err := core.ChosenVictim(sc, []graph.LinkID{f.PaperLink[10]})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Skip("attack infeasible on this draw")
	}
	plan := &netsim.AttackPlan{
		Attackers:  map[graph.NodeID]bool{f.B: true, f.C: true},
		ExtraDelay: res.M,
	}
	return sys, x, plan
}

func TestCampaignCleanNeverAlarms(t *testing.T) {
	sys, x, _ := fig1Campaign(t, 1, 0)
	res, err := Run(Config{
		Sys: sys, TrueX: x, Rounds: 20,
		Jitter: 1, ProbesPerPath: 3, RNG: rand.New(rand.NewSource(2)),
		Drift: 150, Ceiling: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 20 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.FirstOneShotAlarm >= 0 {
		t.Errorf("clean campaign one-shot alarm at round %d", res.FirstOneShotAlarm)
	}
	if res.FirstCusumAlarm >= 0 {
		t.Errorf("clean campaign CUSUM alarm at round %d", res.FirstCusumAlarm)
	}
	for _, rec := range res.Records {
		if rec.Attacked {
			t.Fatal("clean campaign marked a round attacked")
		}
	}
}

func TestCampaignDetectsOnsetImmediately(t *testing.T) {
	// A plain (non-evasive) attack on an imperfect cut fires the
	// one-shot detector in exactly the onset round.
	sys, x, plan := fig1Campaign(t, 3, 0)
	const onset = 7
	res, err := Run(Config{
		Sys: sys, TrueX: x, Rounds: 15,
		Jitter: 1, ProbesPerPath: 3, RNG: rand.New(rand.NewSource(4)),
		Plan: plan, AttackFrom: onset,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstOneShotAlarm != onset {
		t.Errorf("one-shot alarm at round %d, want %d", res.FirstOneShotAlarm, onset)
	}
	for _, rec := range res.Records {
		if rec.Attacked != (rec.Round >= onset) {
			t.Errorf("round %d attacked=%v", rec.Round, rec.Attacked)
		}
		if rec.Round < onset && rec.OneShotAlarm {
			t.Errorf("pre-onset alarm at round %d", rec.Round)
		}
	}
}

func TestCampaignCusumCatchesEvasiveOnset(t *testing.T) {
	// An α-evasive attack stays under the one-shot threshold forever,
	// but CUSUM alarms a few rounds after onset.
	const alpha = 3000.0
	sys, x, plan := fig1Campaign(t, 5, 0.95*alpha)
	const onset = 5
	res, err := Run(Config{
		Sys: sys, TrueX: x, Rounds: 25,
		Jitter: 1, ProbesPerPath: 3, RNG: rand.New(rand.NewSource(6)),
		Plan: plan, AttackFrom: onset,
		Alpha: alpha,
		Drift: 0.2 * alpha, Ceiling: 2 * alpha,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstOneShotAlarm >= 0 {
		t.Errorf("one-shot detector fired at round %d against an evasive attack", res.FirstOneShotAlarm)
	}
	if res.FirstCusumAlarm < onset {
		t.Fatalf("CUSUM alarm at %d before onset %d (or never)", res.FirstCusumAlarm, onset)
	}
	if res.FirstCusumAlarm > onset+5 {
		t.Errorf("CUSUM took %d rounds to catch the evasive attack", res.FirstCusumAlarm-onset)
	}
}

func TestCampaignEstimatesTrackTruthWhenClean(t *testing.T) {
	sys, x, _ := fig1Campaign(t, 8, 0)
	res, err := Run(Config{Sys: sys, TrueX: x, Rounds: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Records {
		if !rec.XHat.Equal(x, 1e-8) {
			t.Errorf("round %d estimate diverges without noise", rec.Round)
		}
		for l, s := range rec.States {
			if s != tomo.Normal {
				t.Errorf("round %d link %d state %v for routine delays", rec.Round, l, s)
			}
		}
	}
}

func TestCampaignValidation(t *testing.T) {
	sys, x, _ := fig1Campaign(t, 1, 0)
	if _, err := Run(Config{Sys: nil, TrueX: x, Rounds: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil sys: err = %v", err)
	}
	if _, err := Run(Config{Sys: sys, TrueX: x, Rounds: 0}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("zero rounds: err = %v", err)
	}
	if _, err := Run(Config{Sys: sys, TrueX: la.Vector{1}, Rounds: 1}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("short TrueX: err = %v", err)
	}
	// Bad sequential parameters surface detect's validation.
	if _, err := Run(Config{Sys: sys, TrueX: x, Rounds: 1, Drift: -1, Ceiling: 5}); err == nil {
		t.Error("negative drift accepted")
	}
}

func TestCampaignDiurnalTruthNoFalseAlarms(t *testing.T) {
	// Time-varying routine traffic is NOT an attack: per-round
	// measurements remain (almost) consistent with the linear model, so
	// the consistency detector stays quiet even as the truth swings ±30%
	// over the campaign — the detector reacts to manipulation, not load.
	sys, x, _ := fig1Campaign(t, 9, 0)
	model := netsim.DiurnalDelays{Base: x, Amplitude: 0.3, Period: 20000}
	res, err := Run(Config{
		Sys: sys, TrueX: x, Rounds: 25,
		Model: model, RoundSpacing: 1000,
		Drift: 150, Ceiling: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FirstOneShotAlarm >= 0 {
		t.Errorf("diurnal truth triggered one-shot alarm at round %d", res.FirstOneShotAlarm)
	}
	if res.FirstCusumAlarm >= 0 {
		t.Errorf("diurnal truth triggered CUSUM alarm at round %d", res.FirstCusumAlarm)
	}
	// Estimates must track the moving truth: round r's estimate should
	// be near the model's value at that round, not the t=0 base.
	moved := false
	for _, rec := range res.Records {
		for l := range x {
			want := model.DelayAt(graph.LinkID(l), float64(rec.Round)*1000)
			if math.Abs(rec.XHat[l]-want) > 0.25*want+1 {
				t.Errorf("round %d link %d estimate %.1f far from moving truth %.1f",
					rec.Round, l, rec.XHat[l], want)
			}
			if math.Abs(rec.XHat[l]-x[l]) > 0.05*x[l] {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("estimates never moved off the t=0 base; model not applied")
	}
}

func TestCampaignString(t *testing.T) {
	sys, x, plan := fig1Campaign(t, 3, 0)
	res, err := Run(Config{
		Sys: sys, TrueX: x, Rounds: 4,
		Jitter: 1, ProbesPerPath: 2, RNG: rand.New(rand.NewSource(1)),
		Plan: plan, AttackFrom: 2,
		Drift: 150, Ceiling: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := res.String()
	if !strings.Contains(s, "round") || !strings.Contains(s, "CUSUM") {
		t.Errorf("String = %q", s)
	}
	if !strings.Contains(s, "first one-shot alarm") {
		t.Error("alarm summary missing")
	}
}
