package store

import (
	"time"

	"repro/internal/obs"
)

// Metrics is the store's instrument set on an obs registry: WAL
// append/fsync latency histograms, recovery replay latency, record and
// truncation counters, snapshot/compaction counters, and a data-dir
// size gauge read at collect time. All methods are nil-receiver safe so
// an uninstrumented store pays a single nil check per event.
type Metrics struct {
	AppendLatency *obs.Histogram // store_wal_append_seconds
	FsyncLatency  *obs.Histogram // store_wal_fsync_seconds
	ReplayLatency *obs.Histogram // store_recovery_replay_seconds

	Records        *obs.Counter // store_wal_records_total
	Truncations    *obs.Counter // store_wal_truncations_total
	TruncatedBytes *obs.Counter // store_wal_truncated_bytes_total
	Snapshots      *obs.Counter // store_snapshots_total
	Compactions    *obs.Counter // store_compactions_total

	ShippedRecords *obs.Counter // store_replication_shipped_records_total
	AppliedRecords *obs.Counter // store_replication_applied_records_total
	Resyncs        *obs.Counter // store_replication_resyncs_total
}

// NewMetrics registers the store's instruments on reg. dirSize, when
// non-nil, backs the store_data_dir_bytes gauge (read once per scrape);
// pass a closure over DirSize(dataDir). Registering twice on the same
// registry panics, like any duplicate obs registration.
func NewMetrics(reg *obs.Registry, dirSize func() float64) *Metrics {
	m := &Metrics{
		AppendLatency:  reg.Histogram("store_wal_append_seconds", "WAL record append (write syscall) latency.", obs.DefaultLatencyBuckets),
		FsyncLatency:   reg.Histogram("store_wal_fsync_seconds", "WAL fsync latency.", obs.DefaultLatencyBuckets),
		ReplayLatency:  reg.Histogram("store_recovery_replay_seconds", "Recovery time: snapshot load plus WAL replay.", obs.DefaultLatencyBuckets),
		Records:        reg.Counter("store_wal_records_total", "Records appended to the WAL."),
		Truncations:    reg.Counter("store_wal_truncations_total", "Torn or corrupt WAL tails dropped during recovery."),
		TruncatedBytes: reg.Counter("store_wal_truncated_bytes_total", "Bytes dropped truncating torn or corrupt WAL tails."),
		Snapshots:      reg.Counter("store_snapshots_total", "Snapshot files written."),
		Compactions:    reg.Counter("store_compactions_total", "WAL-into-snapshot compactions completed."),
		ShippedRecords: reg.Counter("store_replication_shipped_records_total", "WAL records served to tailing followers."),
		AppliedRecords: reg.Counter("store_replication_applied_records_total", "Shipped WAL records applied by this follower."),
		Resyncs:        reg.Counter("store_replication_resyncs_total", "Full-state snapshot resyncs (tail compacted away)."),
	}
	if dirSize != nil {
		reg.GaugeFunc("store_data_dir_bytes", "Total bytes on disk under the store data directory.", dirSize)
	}
	return m
}

func (m *Metrics) observeAppend(d time.Duration) {
	if m != nil {
		m.AppendLatency.ObserveDuration(d)
	}
}

func (m *Metrics) observeFsync(d time.Duration) {
	if m != nil {
		m.FsyncLatency.ObserveDuration(d)
	}
}

func (m *Metrics) observeReplay(d time.Duration) {
	if m != nil {
		m.ReplayLatency.ObserveDuration(d)
	}
}

func (m *Metrics) countRecord() {
	if m != nil {
		m.Records.Inc()
	}
}

func (m *Metrics) countTruncation(bytes int64) {
	if m != nil {
		m.Truncations.Inc()
		m.TruncatedBytes.Add(bytes)
	}
}

func (m *Metrics) countSnapshot() {
	if m != nil {
		m.Snapshots.Inc()
	}
}

func (m *Metrics) countCompaction() {
	if m != nil {
		m.Compactions.Inc()
	}
}

func (m *Metrics) countShipped(n int) {
	if m != nil && n > 0 {
		m.ShippedRecords.Add(int64(n))
	}
}

func (m *Metrics) countApplied(n int) {
	if m != nil && n > 0 {
		m.AppliedRecords.Add(int64(n))
	}
}

func (m *Metrics) countResync() {
	if m != nil {
		m.Resyncs.Inc()
	}
}
