package store

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Backend is the registry-facing journal interface: durably record a
// mutation before the caller applies and acknowledges it. *Store is the
// production implementation; tests substitute fakes to exercise the
// failure path.
type Backend interface {
	AppendRegister(doc TopologyDoc) error
	AppendEvict(name string) error
}

// FsyncPolicy selects when WAL appends reach stable storage.
type FsyncPolicy int

const (
	// FsyncAlways fsyncs after every append: a mutation acknowledged to
	// the client survives a machine crash. The durable default.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval lets appends ride the OS page cache and fsyncs on a
	// background cadence, bounding loss to one interval.
	FsyncInterval
	// FsyncNever leaves syncing to the OS (and to Sync/Close). Process
	// crashes lose nothing — the data is in the page cache — but a
	// machine crash can lose the unsynced tail.
	FsyncNever
)

// String renders the policy in its flag spelling.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseFsyncPolicy parses the -fsync flag value.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("store: unknown fsync policy %q (want always, interval, or never)", s)
}

// Defaults for Options zero values.
const (
	DefaultFsyncInterval    = 100 * time.Millisecond
	DefaultCompactThreshold = int64(4 << 20)
)

// On-disk file names. The WAL is a single append-only file; snapshots
// are immutable and named by the last sequence number they fold;
// MANIFEST names the current snapshot and is only ever replaced by
// atomic rename.
const (
	walName      = "wal.log"
	manifestName = "MANIFEST"
	snapPrefix   = "snapshot-"
	snapSuffix   = ".snap"
)

// Options parameterizes Open.
type Options struct {
	// Fsync is the WAL durability policy (zero value: FsyncAlways).
	Fsync FsyncPolicy
	// FsyncInterval is the background sync cadence under FsyncInterval;
	// 0 means DefaultFsyncInterval.
	FsyncInterval time.Duration
	// CompactThreshold is the WAL byte size that triggers folding the
	// log into a fresh snapshot; 0 means DefaultCompactThreshold,
	// negative disables compaction.
	CompactThreshold int64
	// Metrics receives append/fsync/replay latencies and counters; nil
	// disables instrumentation.
	Metrics *Metrics
	// Logger receives recovery and compaction events; nil discards.
	Logger *slog.Logger
}

// RecoveredState is what Open reconstructed from disk: the live
// topologies in registration order, plus replay accounting.
type RecoveredState struct {
	// Topologies is the materialized registry state, oldest
	// registration first.
	Topologies []TopologyDoc
	// SnapshotSeq is the last sequence folded into the loaded snapshot
	// (0 when recovery started from an empty state).
	SnapshotSeq uint64
	// LastSeq is the highest sequence applied (snapshot or WAL).
	LastSeq uint64
	// ReplayedRecords counts WAL records applied on top of the snapshot.
	ReplayedRecords int
	// SkippedRecords counts WAL records already folded into the
	// snapshot (seq ≤ SnapshotSeq), seen when a crash landed between
	// compaction's manifest rename and its WAL truncate.
	SkippedRecords int
	// TornTail reports whether the WAL ended in a torn or corrupt
	// record; TruncatedBytes is how much tail was dropped.
	TornTail       bool
	TruncatedBytes int64
}

// Store is a crash-safe registry journal: Append* durably logs
// mutations, Open replays them. Safe for concurrent use; appends are
// serialized internally (callers — the serve registry — additionally
// serialize them under the registry lock, which fixes the WAL order to
// match the registry order).
type Store struct {
	dir  string
	opts Options
	log  *slog.Logger
	m    *Metrics

	mu        sync.Mutex
	wal       *os.File
	walSize   int64
	nextSeq   uint64
	snapSeq   uint64 // last seq folded into the current snapshot
	encBuf    []byte // frame scratch, reused under mu by append
	state     map[string]TopologyDoc
	order     []string // live names, oldest registration first
	recovered RecoveredState
	dirty     bool
	closed    bool

	syncStop chan struct{}
	syncDone chan struct{}
}

// snapshotDoc is the JSON schema of a snapshot file: the full registry
// state as of sequence Seq.
type snapshotDoc struct {
	Version    int           `json:"version"`
	Seq        uint64        `json:"seq"`
	Topologies []TopologyDoc `json:"topologies"`
}

// manifestDoc is the JSON schema of MANIFEST: which snapshot is
// current, what it folds, and its checksum. MANIFEST is replaced only
// by atomic rename, so readers see the old or the new document, never a
// torn one.
type manifestDoc struct {
	Version  int    `json:"version"`
	Snapshot string `json:"snapshot"`
	Seq      uint64 `json:"seq"`
	CRC32C   uint32 `json:"crc32c"`
}

const snapshotVersion = 1

// Open opens (creating if needed) the data directory, recovers the
// registry state — latest valid snapshot plus the replayable WAL tail,
// truncating at the first torn or corrupt record — and leaves the WAL
// positioned for appends. The recovered state is available from
// Recovered. Recovery runs under a "store.recover" trace span when ctx
// carries one.
func Open(ctx context.Context, dir string, opts Options) (*Store, error) {
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = DefaultFsyncInterval
	}
	if opts.CompactThreshold == 0 {
		opts.CompactThreshold = DefaultCompactThreshold
	}
	log := opts.Logger
	if log == nil {
		log = obs.DiscardLogger()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	st := &Store{
		dir:   dir,
		opts:  opts,
		log:   log,
		m:     opts.Metrics,
		state: make(map[string]TopologyDoc),
	}
	if err := st.recover(ctx); err != nil {
		if st.wal != nil {
			st.wal.Close()
		}
		return nil, err
	}
	if opts.Fsync == FsyncInterval {
		st.syncStop = make(chan struct{})
		st.syncDone = make(chan struct{})
		go st.syncLoop()
	}
	return st, nil
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Recovered returns what Open reconstructed from disk. The returned
// state is a snapshot taken at open time; later appends do not modify
// it.
func (s *Store) Recovered() RecoveredState { return s.recovered }

// recover loads the manifest-named snapshot (verifying its checksum),
// replays the WAL tail, truncates the file at the first torn or corrupt
// record, and opens the WAL for appending.
func (s *Store) recover(ctx context.Context) error {
	ctx, span := obs.StartSpan(ctx, "store.recover")
	defer span.End()
	t0 := time.Now()

	snapSeq, err := s.loadSnapshot(ctx)
	if err != nil {
		return err
	}
	s.recovered.SnapshotSeq = snapSeq
	s.snapSeq = snapSeq
	lastSeq, err := s.replayWAL(ctx, snapSeq)
	if err != nil {
		return err
	}
	s.nextSeq = lastSeq + 1
	s.recovered.LastSeq = lastSeq
	s.recovered.Topologies = s.snapshotStateLocked()
	s.m.observeReplay(time.Since(t0))
	span.SetInt("topologies", len(s.order))
	span.SetInt("replayed", s.recovered.ReplayedRecords)
	span.SetBool("torn_tail", s.recovered.TornTail)
	s.log.Info("store recovered",
		"dir", s.dir,
		"topologies", len(s.order),
		"snapshot_seq", snapSeq,
		"last_seq", lastSeq,
		"replayed", s.recovered.ReplayedRecords,
		"skipped", s.recovered.SkippedRecords,
		"torn_tail", s.recovered.TornTail,
		"truncated_bytes", s.recovered.TruncatedBytes,
	)
	return nil
}

// loadSnapshot reads MANIFEST and the snapshot it names into the state
// mirror, returning the snapshot's folded sequence. A missing MANIFEST
// means a fresh (or never-compacted) store and is not an error; a
// manifest that names an unreadable or checksum-failing snapshot is a
// hard error — unlike a torn WAL tail, a damaged snapshot cannot be
// truncated around without silently losing acknowledged state.
func (s *Store) loadSnapshot(ctx context.Context) (uint64, error) {
	_, span := obs.StartSpan(ctx, "store.snapshot_load")
	defer span.End()
	raw, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if errors.Is(err, fs.ErrNotExist) {
		span.SetBool("present", false)
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("store: read manifest: %w", err)
	}
	var man manifestDoc
	if err := strictUnmarshal(raw, &man); err != nil {
		return 0, fmt.Errorf("store: parse manifest: %w", err)
	}
	if man.Version != snapshotVersion {
		return 0, fmt.Errorf("store: manifest version %d, want %d", man.Version, snapshotVersion)
	}
	if man.Snapshot != filepath.Base(man.Snapshot) {
		return 0, fmt.Errorf("store: manifest names snapshot outside the data dir: %q", man.Snapshot)
	}
	snapRaw, err := os.ReadFile(filepath.Join(s.dir, man.Snapshot))
	if err != nil {
		return 0, fmt.Errorf("store: read snapshot %s: %w", man.Snapshot, err)
	}
	if got := crc32.Checksum(snapRaw, crcTable); got != man.CRC32C {
		return 0, fmt.Errorf("store: snapshot %s CRC32C %08x, manifest says %08x", man.Snapshot, got, man.CRC32C)
	}
	var snap snapshotDoc
	if err := strictUnmarshal(snapRaw, &snap); err != nil {
		return 0, fmt.Errorf("store: parse snapshot %s: %w", man.Snapshot, err)
	}
	if snap.Version != snapshotVersion {
		return 0, fmt.Errorf("store: snapshot version %d, want %d", snap.Version, snapshotVersion)
	}
	if snap.Seq != man.Seq {
		return 0, fmt.Errorf("store: snapshot seq %d, manifest says %d", snap.Seq, man.Seq)
	}
	for _, doc := range snap.Topologies {
		if doc.Name == "" {
			return 0, fmt.Errorf("store: snapshot %s holds an unnamed topology", man.Snapshot)
		}
		s.applyRegister(doc)
	}
	span.SetBool("present", true)
	span.SetInt("topologies", len(snap.Topologies))
	return snap.Seq, nil
}

// replayWAL applies the WAL tail on top of the snapshot state and
// leaves s.wal open, truncated to its valid prefix, positioned at the
// end. Records with seq ≤ snapSeq were already folded and are skipped;
// a non-increasing sequence, torn frame, or failed checksum truncates
// the log there.
func (s *Store) replayWAL(ctx context.Context, snapSeq uint64) (uint64, error) {
	_, span := obs.StartSpan(ctx, "store.wal_replay")
	defer span.End()
	path := filepath.Join(s.dir, walName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: open wal: %w", err)
	}
	s.wal = f
	raw, err := os.ReadFile(path)
	if err != nil {
		return 0, fmt.Errorf("store: read wal: %w", err)
	}
	lastSeq := snapSeq
	off := 0
	var tailErr error
	for off < len(raw) {
		rec, n, err := DecodeRecord(raw[off:])
		if err != nil {
			tailErr = err
			break
		}
		if rec.Seq <= snapSeq {
			s.recovered.SkippedRecords++
			off += n
			continue
		}
		if rec.Seq <= lastSeq {
			tailErr = fmt.Errorf("%w: sequence went backwards (%d after %d)", ErrCorrupt, rec.Seq, lastSeq)
			break
		}
		switch rec.Op {
		case OpRegister:
			s.applyRegister(rec.Doc)
		case OpEvict:
			s.applyEvict(rec.Name)
		}
		lastSeq = rec.Seq
		s.recovered.ReplayedRecords++
		off += n
	}
	if tailErr != nil {
		dropped := int64(len(raw) - off)
		s.recovered.TornTail = true
		s.recovered.TruncatedBytes = dropped
		s.m.countTruncation(dropped)
		s.log.Warn("store truncating wal tail",
			"offset", off, "dropped_bytes", dropped, "cause", tailErr)
		if err := f.Truncate(int64(off)); err != nil {
			return 0, fmt.Errorf("store: truncate wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			return 0, fmt.Errorf("store: sync truncated wal: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), 0); err != nil {
		return 0, fmt.Errorf("store: seek wal: %w", err)
	}
	s.walSize = int64(off)
	span.SetInt("replayed", s.recovered.ReplayedRecords)
	span.SetInt("bytes", off)
	return lastSeq, nil
}

// applyRegister folds a register into the state mirror. Re-registering
// a live name replaces it in place (the registry rejects duplicates, so
// this only happens replaying a register after an unlogged evict — it
// keeps the fold total rather than order-sensitive).
func (s *Store) applyRegister(doc TopologyDoc) {
	if _, live := s.state[doc.Name]; !live {
		s.order = append(s.order, doc.Name)
	}
	s.state[doc.Name] = doc
}

// applyEvict folds an evict into the state mirror.
func (s *Store) applyEvict(name string) {
	if _, live := s.state[name]; !live {
		return
	}
	delete(s.state, name)
	for i, n := range s.order {
		if n == name {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
}

// snapshotStateLocked copies the live state in registration order.
func (s *Store) snapshotStateLocked() []TopologyDoc {
	out := make([]TopologyDoc, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, s.state[name])
	}
	return out
}

// AppendRegister durably logs a registration. It returns only after the
// record is written (and, under FsyncAlways, fsynced), so a caller that
// acknowledges the mutation afterwards can honour that acknowledgement
// across a crash.
func (s *Store) AppendRegister(doc TopologyDoc) error {
	if doc.Name == "" {
		return fmt.Errorf("store: register without a name")
	}
	return s.append(Record{Op: OpRegister, Doc: doc}, func() { s.applyRegister(doc) })
}

// AppendEvict durably logs an eviction.
func (s *Store) AppendEvict(name string) error {
	if name == "" {
		return fmt.Errorf("store: evict without a name")
	}
	return s.append(Record{Op: OpEvict, Name: name}, func() { s.applyEvict(name) })
}

// append frames rec with the next sequence, writes it, applies the
// mirror update, syncs per policy, and compacts if the log crossed the
// threshold.
func (s *Store) append(rec Record, apply func()) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	rec.Seq = s.nextSeq
	frame := EncodeRecord(s.encBuf[:0], rec)
	s.encBuf = frame
	if len(frame)-headerBytes > MaxRecordBytes {
		return fmt.Errorf("store: record payload %d bytes exceeds cap %d", len(frame)-headerBytes, MaxRecordBytes)
	}
	t0 := time.Now()
	if _, err := s.wal.Write(frame); err != nil {
		// A partial write leaves a torn tail; recovery will truncate it.
		// The in-memory mirror and sequence are NOT advanced, so the
		// store stays consistent with what the caller observed (an
		// error ⇒ the mutation did not happen).
		return fmt.Errorf("store: wal append: %w", err)
	}
	s.m.observeAppend(time.Since(t0))
	s.m.countRecord()
	s.nextSeq++
	s.walSize += int64(len(frame))
	s.dirty = true
	apply()
	if s.opts.Fsync == FsyncAlways {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.opts.CompactThreshold > 0 && s.walSize >= s.opts.CompactThreshold {
		if err := s.compactLocked(); err != nil {
			// The WAL is intact and the mutation is durable; a failed
			// compaction only means the log stays long. Log and carry on.
			s.log.Error("store compaction failed", "err", err)
		}
	}
	return nil
}

// Sync flushes and fsyncs the WAL — the SIGTERM path, and the
// FsyncNever/Interval durability backstop.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.syncLocked()
}

func (s *Store) syncLocked() error {
	if !s.dirty {
		return nil
	}
	t0 := time.Now()
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: wal fsync: %w", err)
	}
	s.m.observeFsync(time.Since(t0))
	s.dirty = false
	return nil
}

// syncLoop is the FsyncInterval background syncer.
func (s *Store) syncLoop() {
	defer close(s.syncDone)
	t := time.NewTicker(s.opts.FsyncInterval)
	defer t.Stop()
	for {
		select {
		case <-s.syncStop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed {
				if err := s.syncLocked(); err != nil {
					s.log.Error("store interval fsync failed", "err", err)
				}
			}
			s.mu.Unlock()
		}
	}
}

// Compact folds the WAL into a fresh snapshot now, regardless of size.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	return s.compactLocked()
}

// compactLocked writes the full live state as a new snapshot, points
// MANIFEST at it, and resets the WAL. Crash-safety argument, step by
// step: the snapshot lands under a fresh name by atomic rename, so a
// crash before the MANIFEST rename leaves the old manifest naming the
// old (intact) snapshot; the MANIFEST rename is the commit point; a
// crash before the WAL truncate leaves folded records in the log, which
// replay skips by sequence number (seq ≤ snapshot seq). Old snapshots
// are removed only after the commit point, best-effort.
func (s *Store) compactLocked() error {
	// Everything below the fold must be durable before the snapshot
	// claims to cover it.
	if err := s.syncLocked(); err != nil {
		return err
	}
	seq := s.nextSeq - 1
	raw := appendSnapshotDoc(nil, seq, s.snapshotStateLocked())
	oldSize := s.walSize
	if err := s.commitSnapshotLocked(raw, seq); err != nil {
		return err
	}
	s.m.countCompaction()
	s.log.Info("store compacted", "seq", seq,
		"topologies", len(s.order), "folded_wal_bytes", oldSize)
	return nil
}

// commitSnapshotLocked publishes raw (an encoded snapshotDoc at seq) as
// the current snapshot — snapshot file, MANIFEST rename (the commit
// point), WAL reset — the shared tail of compaction and replication
// resync. On return the WAL is empty and snapSeq is seq.
func (s *Store) commitSnapshotLocked(raw []byte, seq uint64) error {
	snapName := fmt.Sprintf("%s%016d%s", snapPrefix, seq, snapSuffix)
	if err := s.writeFileAtomic(snapName, raw); err != nil {
		return err
	}
	s.m.countSnapshot()
	man := manifestDoc{Version: snapshotVersion, Snapshot: snapName, Seq: seq, CRC32C: crc32.Checksum(raw, crcTable)}
	manRaw, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("store: marshal manifest: %w", err)
	}
	if err := s.writeFileAtomic(manifestName, manRaw); err != nil {
		return err
	}
	// Commit point passed: the WAL's records are all ≤ seq, fold them.
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	if _, err := s.wal.Seek(0, 0); err != nil {
		return fmt.Errorf("store: rewind wal: %w", err)
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("store: sync rewound wal: %w", err)
	}
	s.walSize = 0
	s.dirty = false
	s.snapSeq = seq
	s.removeStaleSnapshotsLocked(snapName)
	return nil
}

// removeStaleSnapshotsLocked best-effort deletes snapshots other than
// current.
func (s *Store) removeStaleSnapshotsLocked(current string) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if name == current || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		_ = os.Remove(filepath.Join(s.dir, name))
	}
}

// writeFileAtomic writes name via a temp file in the same directory:
// write, fsync file, rename into place, fsync directory — the standard
// rename-into-place publication, so readers never observe a torn file.
func (s *Store) writeFileAtomic(name string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, name+".tmp-*")
	if err != nil {
		return fmt.Errorf("store: temp for %s: %w", name, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: write %s: %w", name, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: sync %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", name, err)
	}
	if err := os.Rename(tmpName, filepath.Join(s.dir, name)); err != nil {
		return fmt.Errorf("store: publish %s: %w", name, err)
	}
	return s.syncDir()
}

// syncDir fsyncs the data directory so renames are durable.
func (s *Store) syncDir() error {
	d, err := os.Open(s.dir)
	if err != nil {
		return fmt.Errorf("store: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}

// Close stops the background syncer (if any), fsyncs the WAL, and
// closes it. The store rejects appends afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	syncErr := s.syncLocked()
	closeErr := s.wal.Close()
	s.mu.Unlock()
	if s.syncStop != nil {
		close(s.syncStop)
		<-s.syncDone
	}
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("store: close wal: %w", closeErr)
	}
	return nil
}

// WALSize returns the current WAL byte size (for tests and gauges).
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walSize
}

// DirSize sums the file sizes under dir — the store_data_dir_bytes
// gauge source. Unreadable entries count zero.
func DirSize(dir string) int64 {
	var total int64
	_ = filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, err := d.Info(); err == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// sortDocs orders docs by name — a helper for tests comparing
// recovered state to a registry, whose Names() are sorted.
func sortDocs(docs []TopologyDoc) {
	sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
}
