// Package store is tomographyd's crash-safe persistence subsystem: an
// append-only write-ahead log of registry mutations (register/evict)
// with length-prefixed, CRC32C-framed, versioned records; point-in-time
// snapshots of the full registry written with atomic rename-into-place
// and described by a MANIFEST; log compaction that folds the WAL into a
// fresh snapshot once it crosses a size threshold; and a recovery path
// that loads the latest snapshot, replays the WAL tail, and truncates
// at the first torn or corrupt record instead of failing.
//
// Everything is stdlib-only. The on-disk format is documented in
// DESIGN.md §10.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
)

// Op is a WAL record's mutation kind.
type Op uint8

// WAL mutation kinds. The zero value is deliberately invalid so a
// zeroed record can never decode as valid.
const (
	OpRegister Op = 1
	OpEvict    Op = 2
)

// String names the op for logs and errors.
func (op Op) String() string {
	switch op {
	case OpRegister:
		return "register"
	case OpEvict:
		return "evict"
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// recordVersion is the payload format version. Decoders reject other
// versions as corrupt rather than guessing.
const recordVersion = 1

// Frame layout: an 8-byte header followed by the payload.
//
//	[0:4]  uint32 LE  payload length N
//	[4:8]  uint32 LE  CRC32C over the payload
//	[8:8+N]           payload = version(1) | op(1) | seq(8, LE) | JSON body
//
// The CRC covers the whole payload — version, op, seq, and body — so a
// flipped bit anywhere in the record (including the metadata) fails the
// checksum, and a corrupted length field either exceeds MaxRecordBytes
// or frames a span whose CRC cannot match.
const (
	headerBytes  = 8
	payloadMeta  = 10 // version + op + seq
	minFrameSize = headerBytes + payloadMeta
)

// MaxRecordBytes caps a single WAL record. A length prefix above this
// is treated as corruption, so arbitrary garbage can never make the
// decoder attempt a multi-gigabyte allocation.
const MaxRecordBytes = 16 << 20

// Decode errors. ErrTorn means the buffer ends mid-record (the classic
// crash-during-append tail) and more bytes could complete it; ErrCorrupt
// means the frame is complete but provably damaged (bad CRC, bad
// version, undecodable body). Recovery truncates the log at either.
var (
	ErrTorn    = errors.New("store: torn record")
	ErrCorrupt = errors.New("store: corrupt record")
)

// crcTable is the Castagnoli polynomial table (CRC32C), the same
// checksum used by ext4 metadata, iSCSI, and most LSM WAL formats.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// TopologyDoc is the persisted form of one registered measurement
// configuration — exactly the information needed to rebuild the
// routing matrix (and therefore the solver factorization) on recovery.
// Digest is the tomo.System routing-matrix digest recorded at
// registration time; recovery verifies the rebuilt system reproduces it
// byte-for-byte before serving traffic.
type TopologyDoc struct {
	Name   string     `json:"name"`
	Edges  [][]string `json:"edges"`
	Paths  [][]string `json:"paths"`
	Alpha  float64    `json:"alpha"`
	Digest string     `json:"digest"`
}

// Record is one WAL entry: a registry mutation with its log sequence
// number. Seq is assigned by the store, strictly increasing across the
// log's lifetime (snapshots record the last folded seq, so replay can
// skip records already captured by a snapshot).
type Record struct {
	Op  Op
	Seq uint64
	// Doc is the registered configuration (OpRegister only).
	Doc TopologyDoc
	// Name is the evicted topology name (OpEvict only).
	Name string
}

// evictBody is the JSON body of an OpEvict record.
type evictBody struct {
	Name string `json:"name"`
}

// EncodeRecord appends the framed record to buf and returns the
// extended slice. The JSON body is emitted by a hand-rolled,
// reflection-free encoder (the append path holds the registry lock, so
// every microsecond here is registration latency; reflection-based
// json.Marshal was the hot spot of the journaled register path) whose
// output the strict decoder reads back unchanged. Encoding never fails
// for well-formed records; it panics on an unknown op or a non-finite
// alpha (programming errors, not input corruption).
func EncodeRecord(buf []byte, rec Record) []byte {
	start := len(buf)
	var hdr [headerBytes]byte
	buf = append(buf, hdr[:]...) // length+CRC, patched once the payload exists
	var meta [payloadMeta]byte
	meta[0] = recordVersion
	meta[1] = byte(rec.Op)
	binary.LittleEndian.PutUint64(meta[2:10], rec.Seq)
	buf = append(buf, meta[:]...)
	switch rec.Op {
	case OpRegister:
		buf = appendRegisterBody(buf, rec.Doc)
	case OpEvict:
		buf = append(buf, `{"name":`...)
		buf = appendJSONString(buf, rec.Name)
		buf = append(buf, '}')
	default:
		panic(fmt.Sprintf("store: EncodeRecord: unknown op %d", rec.Op))
	}
	payload := buf[start+headerBytes:]
	binary.LittleEndian.PutUint32(buf[start:start+4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:start+8], crc32.Checksum(payload, crcTable))
	return buf
}

// appendRegisterBody emits a TopologyDoc exactly as encoding/json
// would modulo float formatting (shortest round-trip form, still a
// valid JSON number), so existing journals and new ones decode through
// the same strict path.
func appendRegisterBody(b []byte, doc TopologyDoc) []byte {
	if math.IsNaN(doc.Alpha) || math.IsInf(doc.Alpha, 0) {
		panic(fmt.Sprintf("store: EncodeRecord: non-finite alpha %g", doc.Alpha))
	}
	b = append(b, `{"name":`...)
	b = appendJSONString(b, doc.Name)
	b = append(b, `,"edges":`...)
	b = appendStringMatrix(b, doc.Edges)
	b = append(b, `,"paths":`...)
	b = appendStringMatrix(b, doc.Paths)
	b = append(b, `,"alpha":`...)
	b = strconv.AppendFloat(b, doc.Alpha, 'g', -1, 64)
	b = append(b, `,"digest":`...)
	b = appendJSONString(b, doc.Digest)
	return append(b, '}')
}

// appendStringMatrix emits a [][]string; nil (outer or inner) emits
// null, matching encoding/json, so decode→encode→decode is exact.
func appendStringMatrix(b []byte, m [][]string) []byte {
	if m == nil {
		return append(b, "null"...)
	}
	b = append(b, '[')
	for i, row := range m {
		if i > 0 {
			b = append(b, ',')
		}
		if row == nil {
			b = append(b, "null"...)
			continue
		}
		b = append(b, '[')
		for j, s := range row {
			if j > 0 {
				b = append(b, ',')
			}
			b = appendJSONString(b, s)
		}
		b = append(b, ']')
	}
	return append(b, ']')
}

// appendSnapshotDoc emits a snapshotDoc through the same hand-rolled
// codec as WAL record bodies (compaction holds the store lock while it
// serializes the full live state, so snapshot encoding is append
// latency for whichever registration crossed the threshold).
func appendSnapshotDoc(b []byte, seq uint64, docs []TopologyDoc) []byte {
	b = append(b, `{"version":`...)
	b = strconv.AppendInt(b, snapshotVersion, 10)
	b = append(b, `,"seq":`...)
	b = strconv.AppendUint(b, seq, 10)
	b = append(b, `,"topologies":`...)
	if docs == nil {
		b = append(b, "null"...)
	} else {
		b = append(b, '[')
		for i, d := range docs {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendRegisterBody(b, d)
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendJSONString appends s as an RFC 8259 string literal. Multi-byte
// UTF-8 passes through verbatim (valid JSON; the decoder reads it back
// unchanged); only what JSON requires escaping for — quote, backslash,
// and C0 controls — is escaped.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' {
			continue // clean run; copied in bulk at the next escape or the end
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		}
		start = i + 1
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// DecodeRecord decodes the first record framed in b, returning the
// record and the number of bytes consumed. It never panics on arbitrary
// input. A short buffer yields ErrTorn; a complete frame that fails the
// CRC, carries an unknown version or op, or holds an undecodable body
// yields ErrCorrupt. A record that decodes without error is guaranteed
// to have had a matching CRC32C over its entire payload.
func DecodeRecord(b []byte) (Record, int, error) {
	if len(b) < headerBytes {
		return Record{}, 0, fmt.Errorf("%w: %d header bytes of %d", ErrTorn, len(b), headerBytes)
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n < payloadMeta || n > MaxRecordBytes {
		return Record{}, 0, fmt.Errorf("%w: implausible payload length %d", ErrCorrupt, n)
	}
	if uint32(len(b)-headerBytes) < n {
		return Record{}, 0, fmt.Errorf("%w: %d payload bytes of %d", ErrTorn, len(b)-headerBytes, n)
	}
	payload := b[headerBytes : headerBytes+int(n)]
	if got, want := crc32.Checksum(payload, crcTable), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return Record{}, 0, fmt.Errorf("%w: CRC32C %08x, frame says %08x", ErrCorrupt, got, want)
	}
	if v := payload[0]; v != recordVersion {
		return Record{}, 0, fmt.Errorf("%w: record version %d, want %d", ErrCorrupt, v, recordVersion)
	}
	rec := Record{
		Op:  Op(payload[1]),
		Seq: binary.LittleEndian.Uint64(payload[2:10]),
	}
	body := payload[payloadMeta:]
	switch rec.Op {
	case OpRegister:
		if err := strictUnmarshal(body, &rec.Doc); err != nil {
			return Record{}, 0, fmt.Errorf("%w: register body: %v", ErrCorrupt, err)
		}
		if rec.Doc.Name == "" {
			return Record{}, 0, fmt.Errorf("%w: register record without a name", ErrCorrupt)
		}
	case OpEvict:
		var eb evictBody
		if err := strictUnmarshal(body, &eb); err != nil {
			return Record{}, 0, fmt.Errorf("%w: evict body: %v", ErrCorrupt, err)
		}
		if eb.Name == "" {
			return Record{}, 0, fmt.Errorf("%w: evict record without a name", ErrCorrupt)
		}
		rec.Name = eb.Name
	default:
		return Record{}, 0, fmt.Errorf("%w: unknown op %d", ErrCorrupt, payload[1])
	}
	return rec, headerBytes + int(n), nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// garbage, so a record body is exactly one well-formed document.
func strictUnmarshal(b []byte, into any) error {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("trailing data after body")
	}
	return nil
}
