package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// This file is the store's replication surface: a primary serves its
// journal to tailing followers with Since, and a follower mirrors the
// primary's log with ApplyRecord (record-at-a-time, preserving the
// primary's sequence numbers) or InstallSnapshot (full-state resync when
// the primary compacted the records the follower still needs).
//
// The record frames a follower writes are byte-identical to the
// primary's — EncodeRecord is deterministic and the sequence numbers are
// shipped, not re-assigned — so a promoted follower's journal replays to
// exactly the state the primary acknowledged, and the registry's
// digest verification holds on the promoted shard just as it does on a
// restart of the original.

// Since is one replication pull's worth of journal. Exactly one of the
// two shapes is populated:
//
//   - Records: the WAL records with seq > the requested fromSeq, in
//     sequence order — the common incremental case.
//   - Resync (Docs/ResyncSeq): the full live state as of ResyncSeq,
//     returned when compaction already folded some record the follower
//     still needs; the follower must replace its state wholesale.
//
// LastSeq is the primary's current last applied sequence in both cases,
// so the follower can report its replication lag without a second call.
type SinceResult struct {
	// Resync reports that the requested tail was compacted away and
	// Docs/ResyncSeq carry a full-state snapshot instead of records.
	Resync bool
	// Docs is the full live state at ResyncSeq (Resync only), oldest
	// registration first.
	Docs []TopologyDoc
	// ResyncSeq is the sequence the snapshot state is current to.
	ResyncSeq uint64
	// Records are the journal records with seq > fromSeq (non-resync).
	Records []Record
	// LastSeq is the store's last applied sequence.
	LastSeq uint64
}

// LastSeq returns the last sequence number applied to the store (0 for
// a fresh store) — the follower's "applied WAL seq" readiness datum and
// the fromSeq of its next replication pull.
func (s *Store) LastSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq - 1
}

// SnapshotSeq returns the last sequence folded into the current
// snapshot (0 when the store has never compacted). Records with seq ≤
// SnapshotSeq are no longer individually available from the WAL.
func (s *Store) SnapshotSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapSeq
}

// Since returns the journal tail after fromSeq. When every needed
// record is still in the WAL the result carries the records; when
// compaction has already folded part of that range into a snapshot the
// result is a full-state resync instead (Resync true). A follower
// applies records with ApplyRecord and resyncs with InstallSnapshot —
// either way it ends at a state identical to the primary's, with no
// record skipped or applied twice.
func (s *Store) Since(fromSeq uint64) (SinceResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return SinceResult{}, fmt.Errorf("store: closed")
	}
	last := s.nextSeq - 1
	if fromSeq > last {
		// The follower is AHEAD of this store: it applied sequences we
		// never journaled. That happens when a stale ex-primary rejoins
		// as a follower after a failover promoted a peer that had not
		// replicated its final writes. Reporting "caught up" here would
		// let the two journals diverge silently under a shared sequence
		// numbering; ship a full-state resync instead, so the follower
		// converges on this store's history (discarding its unshipped
		// tail — see ForceInstallSnapshot).
		return SinceResult{
			Resync:    true,
			Docs:      s.snapshotStateLocked(),
			ResyncSeq: last,
			LastSeq:   last,
		}, nil
	}
	if fromSeq < s.snapSeq {
		// The records in (fromSeq, snapSeq] are gone — compaction folded
		// them. Ship the whole live state at its current sequence; the
		// follower replaces rather than appends.
		return SinceResult{
			Resync:    true,
			Docs:      s.snapshotStateLocked(),
			ResyncSeq: last,
			LastSeq:   last,
		}, nil
	}
	if fromSeq == last {
		return SinceResult{LastSeq: last}, nil
	}
	// Read the WAL's valid prefix ([0, walSize)) under the lock: appends
	// are serialized with us, so the prefix is always whole frames.
	raw, err := os.ReadFile(filepath.Join(s.dir, walName))
	if err != nil {
		return SinceResult{}, fmt.Errorf("store: read wal for tail: %w", err)
	}
	if int64(len(raw)) > s.walSize {
		raw = raw[:s.walSize]
	}
	var recs []Record
	off := 0
	for off < len(raw) {
		rec, n, err := DecodeRecord(raw[off:])
		if err != nil {
			return SinceResult{}, fmt.Errorf("store: tail decode at %d: %w", off, err)
		}
		off += n
		if rec.Seq <= fromSeq {
			// Leftovers below the fold (compaction crash window) or the
			// follower's already-applied prefix.
			continue
		}
		recs = append(recs, rec)
	}
	s.m.countShipped(len(recs))
	return SinceResult{Records: recs, LastSeq: last}, nil
}

// ApplyRecord appends a record shipped from a primary, preserving its
// sequence number, and folds it into the state mirror — the follower
// side of WAL shipping. The shipped stream is contiguous (Since returns
// exactly the records after the follower's cursor), so the record must
// carry the next sequence: a stale or duplicate sequence is rejected so
// a mis-ordered pull can never corrupt the mirror, and a gap is
// rejected so a lossy or truncated batch fails loudly (the tailer
// re-pulls or resyncs) instead of silently skipping records. Durability
// follows the store's fsync policy, and the follower compacts its own
// journal on the same threshold as a primary.
func (s *Store) ApplyRecord(rec Record) error {
	switch rec.Op {
	case OpRegister:
		if rec.Doc.Name == "" {
			return fmt.Errorf("store: apply register without a name")
		}
	case OpEvict:
		if rec.Name == "" {
			return fmt.Errorf("store: apply evict without a name")
		}
	default:
		return fmt.Errorf("store: apply unknown op %d", rec.Op)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("store: closed")
	}
	if rec.Seq != s.nextSeq {
		return fmt.Errorf("store: apply seq %d out of order (want %d)", rec.Seq, s.nextSeq)
	}
	frame := EncodeRecord(s.encBuf[:0], rec)
	s.encBuf = frame
	if _, err := s.wal.Write(frame); err != nil {
		return fmt.Errorf("store: wal apply append: %w", err)
	}
	s.m.countRecord()
	s.m.countApplied(1)
	s.nextSeq = rec.Seq + 1
	s.walSize += int64(len(frame))
	s.dirty = true
	switch rec.Op {
	case OpRegister:
		s.applyRegister(rec.Doc)
	case OpEvict:
		s.applyEvict(rec.Name)
	}
	if s.opts.Fsync == FsyncAlways {
		if err := s.syncLocked(); err != nil {
			return err
		}
	}
	if s.opts.CompactThreshold > 0 && s.walSize >= s.opts.CompactThreshold {
		if err := s.compactLocked(); err != nil {
			s.log.Error("store compaction failed", "err", err)
		}
	}
	return nil
}

// InstallSnapshot replaces the store's entire state with docs at seq —
// the follower side of a Since resync. The snapshot is committed with
// the same atomic snapshot+MANIFEST machinery compaction uses, then the
// WAL is reset, so a crash mid-install recovers to either the old state
// or the new one, never a blend. The sequence must not move backwards.
func (s *Store) InstallSnapshot(docs []TopologyDoc, seq uint64) error {
	_, err := s.installSnapshot(docs, seq, false)
	return err
}

// ForceInstallSnapshot is InstallSnapshot without the regression guard:
// the divergence-resync path for a follower that ended up AHEAD of its
// primary — a stale ex-primary rejoining after a failover it missed.
// The follower's unshipped tail is discarded (those records exist
// nowhere else in the fleet), so the number of discarded sequences is
// returned for the caller to surface loudly.
func (s *Store) ForceInstallSnapshot(docs []TopologyDoc, seq uint64) (uint64, error) {
	return s.installSnapshot(docs, seq, true)
}

func (s *Store) installSnapshot(docs []TopologyDoc, seq uint64, force bool) (uint64, error) {
	for _, doc := range docs {
		if doc.Name == "" {
			return 0, fmt.Errorf("store: install snapshot with an unnamed topology")
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, fmt.Errorf("store: closed")
	}
	var discarded uint64
	if last := s.nextSeq - 1; seq < last {
		if !force {
			return 0, fmt.Errorf("store: install snapshot at seq %d behind applied seq %d", seq, last)
		}
		discarded = last - seq
		s.log.Warn("store discarding diverged tail for forced resync",
			"applied_seq", last, "resync_seq", seq, "discarded", discarded)
	}
	raw := appendSnapshotDoc(nil, seq, docs)
	if err := s.commitSnapshotLocked(raw, seq); err != nil {
		return 0, err
	}
	s.state = make(map[string]TopologyDoc, len(docs))
	s.order = s.order[:0]
	for _, doc := range docs {
		s.applyRegister(doc)
	}
	s.nextSeq = seq + 1
	s.m.countResync()
	s.log.Info("store resynced from snapshot", "seq", seq, "topologies", len(docs))
	return discarded, nil
}
