package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

func regRecord(seq uint64, name string) Record {
	return Record{
		Op:  OpRegister,
		Seq: seq,
		Doc: TopologyDoc{
			Name:   name,
			Edges:  [][]string{{"a", "b"}, {"b", "c"}},
			Paths:  [][]string{{"a", "b", "c"}},
			Alpha:  200,
			Digest: "abc123",
		},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		regRecord(1, "fig1"),
		{Op: OpEvict, Seq: 2, Name: "fig1"},
		regRecord(3, "isp"),
	}
	var buf []byte
	for _, r := range recs {
		buf = EncodeRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Op != want.Op || got.Seq != want.Seq || got.Name != want.Name {
			t.Fatalf("record %d: got %+v, want %+v", i, got, want)
		}
		if want.Op == OpRegister {
			if got.Doc.Name != want.Doc.Name || got.Doc.Digest != want.Doc.Digest ||
				len(got.Doc.Edges) != len(want.Doc.Edges) || len(got.Doc.Paths) != len(want.Doc.Paths) ||
				got.Doc.Alpha != want.Doc.Alpha {
				t.Fatalf("record %d doc: got %+v, want %+v", i, got.Doc, want.Doc)
			}
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordTornPrefixes(t *testing.T) {
	frame := EncodeRecord(nil, regRecord(7, "x"))
	// Every strict prefix must report a torn record, never corrupt: the
	// missing bytes could still arrive (or, in a file, were lost in a
	// crash mid-append).
	for n := 0; n < len(frame); n++ {
		_, _, err := DecodeRecord(frame[:n])
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix %d/%d: err = %v, want ErrTorn", n, len(frame), err)
		}
	}
}

func TestDecodeRecordFlippedBitsFailCRC(t *testing.T) {
	frame := EncodeRecord(nil, regRecord(9, "flip"))
	// Flipping any single payload byte (including version/op/seq) must
	// fail the checksum.
	for i := headerBytes; i < len(frame); i++ {
		mut := bytes.Clone(frame)
		mut[i] ^= 0x40
		if _, _, err := DecodeRecord(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip byte %d: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Flipping the stored CRC itself must also fail.
	mut := bytes.Clone(frame)
	mut[5] ^= 0x01
	if _, _, err := DecodeRecord(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flip crc: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRecordImplausibleLength(t *testing.T) {
	var b [headerBytes]byte
	binary.LittleEndian.PutUint32(b[0:4], MaxRecordBytes+1)
	if _, _, err := DecodeRecord(b[:]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversized length: err = %v, want ErrCorrupt", err)
	}
	binary.LittleEndian.PutUint32(b[0:4], payloadMeta-1)
	if _, _, err := DecodeRecord(b[:]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("undersized length: err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRecordBadVersionOpAndBody(t *testing.T) {
	good := EncodeRecord(nil, regRecord(1, "v"))

	// reframe recomputes the length and CRC after payload surgery, so
	// the decode failure is attributable to the content, not the frame.
	reframe := func(mutate func(payload []byte) []byte) []byte {
		payload := bytes.Clone(good[headerBytes:])
		payload = mutate(payload)
		out := make([]byte, headerBytes)
		binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(out[4:8], crc32.Checksum(payload, crcTable))
		return append(out, payload...)
	}

	cases := map[string][]byte{
		"future version": reframe(func(p []byte) []byte { p[0] = recordVersion + 1; return p }),
		"unknown op":     reframe(func(p []byte) []byte { p[1] = 99; return p }),
		"garbage body":   reframe(func(p []byte) []byte { return append(p[:payloadMeta], []byte("{not json")...) }),
		"empty name": reframe(func(p []byte) []byte {
			return append(p[:payloadMeta], []byte(`{"name":"","edges":null,"paths":null,"alpha":0,"digest":""}`)...)
		}),
		"unknown field": reframe(func(p []byte) []byte {
			return append(p[:payloadMeta], []byte(`{"name":"x","bogus":1}`)...)
		}),
		"trailing data": reframe(func(p []byte) []byte { return append(p, []byte(`{}`)...) }),
	}
	for name, frame := range cases {
		if _, _, err := DecodeRecord(frame); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: err = %v, want ErrCorrupt", name, err)
		}
	}
}
