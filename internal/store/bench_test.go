package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// BenchmarkAppendRegister measures the WAL fast path per fsync policy.
// The -fsync=never number is the one the acceptance bar cares about:
// registration latency with the store attached must stay within 2x of
// the in-memory baseline (see BenchmarkRegisterPersistence in
// internal/serve), so the append itself has to be a marshal plus one
// buffered write.
func BenchmarkAppendRegister(b *testing.B) {
	for _, policy := range []FsyncPolicy{FsyncNever, FsyncAlways} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			st, err := Open(context.Background(), b.TempDir(), Options{Fsync: policy, CompactThreshold: -1})
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			d := doc("bench")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Name = fmt.Sprintf("bench-%d", i)
				if err := st.AppendRegister(d); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecover10kRecords measures recovery replay of a 10k-record
// WAL — the acceptance bar is < 1s in the benchmark environment, and
// one iteration reports the actual wall time as ns/op.
func BenchmarkRecover10kRecords(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(context.Background(), dir, Options{Fsync: FsyncNever, CompactThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	// Exactly 10k mutations churning over 100 names: register/evict
	// pairs, like a long measurement campaign's topology churn.
	for i := 0; i < 10_000; i++ {
		name := fmt.Sprintf("topo-%03d", (i/2)%100)
		if i%2 == 0 {
			if err := st.AppendRegister(doc(name)); err != nil {
				b.Fatal(err)
			}
		} else if err := st.AppendEvict(name); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		b.Fatal(err)
	}
	if sz, _ := os.Stat(filepath.Join(dir, walName)); sz != nil {
		b.SetBytes(sz.Size())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Open(context.Background(), dir, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if st.Recovered().TornTail {
			b.Fatal("bench log torn")
		}
		b.StopTimer()
		st.Close()
		b.StartTimer()
	}
}

// BenchmarkCompact measures one snapshot fold at a realistic registry
// size (32 live topologies) — the pause a registration pays when its
// append crosses -compact-threshold.
func BenchmarkCompact(b *testing.B) {
	st, err := Open(context.Background(), b.TempDir(), Options{Fsync: FsyncNever, CompactThreshold: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 32; i++ {
		if err := st.AppendRegister(doc(fmt.Sprintf("live-%02d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Compact(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEncodeDecodeRecord isolates the codec itself.
func BenchmarkEncodeDecodeRecord(b *testing.B) {
	rec := Record{Op: OpRegister, Seq: 42, Doc: doc("codec")}
	frame := EncodeRecord(nil, rec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecodeRecord(frame); err != nil {
			b.Fatal(err)
		}
	}
}
