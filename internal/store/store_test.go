package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func doc(name string) TopologyDoc {
	return TopologyDoc{
		Name:   name,
		Edges:  [][]string{{"a", "b"}, {"b", "c"}, {"c", "a"}},
		Paths:  [][]string{{"a", "b", "c"}, {"b", "c", "a"}},
		Alpha:  200,
		Digest: "digest-" + name,
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	st, err := Open(context.Background(), dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func names(docs []TopologyDoc) []string {
	out := make([]string, len(docs))
	for i, d := range docs {
		out[i] = d.Name
	}
	return out
}

func TestOpenEmptyDir(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	defer st.Close()
	rec := st.Recovered()
	if len(rec.Topologies) != 0 || rec.LastSeq != 0 || rec.TornTail {
		t.Fatalf("fresh store recovered %+v", rec)
	}
}

func TestAppendReopenRecover(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{Fsync: FsyncAlways})
	for _, n := range []string{"one", "two", "three"} {
		if err := st.AppendRegister(doc(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.AppendEvict("two"); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	rec := st2.Recovered()
	got := names(rec.Topologies)
	if len(got) != 2 || got[0] != "one" || got[1] != "three" {
		t.Fatalf("recovered %v, want [one three]", got)
	}
	if rec.ReplayedRecords != 4 || rec.LastSeq != 4 || rec.TornTail {
		t.Fatalf("recovered accounting %+v", rec)
	}
	for _, d := range rec.Topologies {
		if d.Digest != "digest-"+d.Name || len(d.Edges) != 3 || len(d.Paths) != 2 || d.Alpha != 200 {
			t.Fatalf("doc %q lost content: %+v", d.Name, d)
		}
	}
}

func TestEvictThenRestartDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	if err := st.AppendRegister(doc("ghost")); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendEvict("ghost"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Several restart generations: the evicted name must stay gone even
	// across repeated recover/append cycles and a compaction.
	for gen := 0; gen < 3; gen++ {
		st, err := Open(context.Background(), dir, Options{})
		if err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
		if got := names(st.Recovered().Topologies); len(got) != gen {
			t.Fatalf("gen %d: recovered %v", gen, got)
		}
		if _, live := st.state["ghost"]; live {
			t.Fatalf("gen %d: ghost resurrected", gen)
		}
		if err := st.AppendRegister(doc(fmt.Sprintf("live-%d", gen))); err != nil {
			t.Fatal(err)
		}
		if gen == 1 {
			if err := st.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		st.Close()
	}
}

func TestTornFinalRecordTruncated(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	if err := st.AppendRegister(doc("keep")); err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Simulate a crash mid-append: a valid frame prefix cut short.
	walPath := filepath.Join(dir, walName)
	torn := EncodeRecord(nil, Record{Op: OpRegister, Seq: 2, Doc: doc("lost")})
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn[:len(torn)-5]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	before, _ := os.Stat(walPath)

	reg := obs.NewRegistry()
	m := NewMetrics(reg, nil)
	st2 := mustOpen(t, dir, Options{Metrics: m})
	rec := st2.Recovered()
	if got := names(rec.Topologies); len(got) != 1 || got[0] != "keep" {
		t.Fatalf("recovered %v, want [keep]", got)
	}
	if !rec.TornTail {
		t.Fatal("torn tail not reported")
	}
	wantDropped := int64(len(torn) - 5)
	if rec.TruncatedBytes != wantDropped {
		t.Fatalf("truncated %d bytes, want %d", rec.TruncatedBytes, wantDropped)
	}
	if m.Truncations.Load() != 1 || m.TruncatedBytes.Load() != wantDropped {
		t.Fatalf("metrics truncations=%d bytes=%d", m.Truncations.Load(), m.TruncatedBytes.Load())
	}
	// The file itself was truncated to the valid prefix...
	after, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() != before.Size()-wantDropped {
		t.Fatalf("wal size %d, want %d", after.Size(), before.Size()-wantDropped)
	}
	// ...and appending after recovery yields a clean, replayable log.
	if err := st2.AppendRegister(doc("after")); err != nil {
		t.Fatal(err)
	}
	st2.Close()
	st3 := mustOpen(t, dir, Options{})
	defer st3.Close()
	if got := names(st3.Recovered().Topologies); len(got) != 2 || got[1] != "after" {
		t.Fatalf("post-truncation recovery %v, want [keep after]", got)
	}
	if st3.Recovered().TornTail {
		t.Fatal("clean log reported torn")
	}
}

func TestCorruptMiddleRecordDropsTail(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	frames := make([]int, 0, 3)
	for _, n := range []string{"a", "b", "c"} {
		before := st.WALSize()
		if err := st.AppendRegister(doc(n)); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, int(st.WALSize()-before))
	}
	st.Close()

	// Flip one byte inside the second record's payload.
	walPath := filepath.Join(dir, walName)
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[frames[0]+headerBytes+3] ^= 0xFF
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	rec := st2.Recovered()
	// Everything from the corrupt record on is dropped: replay cannot
	// trust frame boundaries past a failed checksum.
	if got := names(rec.Topologies); len(got) != 1 || got[0] != "a" {
		t.Fatalf("recovered %v, want [a]", got)
	}
	if !rec.TornTail || rec.TruncatedBytes != int64(frames[1]+frames[2]) {
		t.Fatalf("accounting %+v, want %d truncated bytes", rec, frames[1]+frames[2])
	}
}

func TestCompactionFoldsWALIntoSnapshot(t *testing.T) {
	dir := t.TempDir()
	// A tiny threshold forces frequent compaction.
	st := mustOpen(t, dir, Options{CompactThreshold: 512})
	for i := 0; i < 50; i++ {
		if err := st.AppendRegister(doc(fmt.Sprintf("t%02d", i))); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := st.AppendEvict(fmt.Sprintf("t%02d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st.WALSize() >= 1024 {
		t.Fatalf("wal never compacted: %d bytes", st.WALSize())
	}
	// Exactly one snapshot file survives, and MANIFEST names it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	snaps := 0
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), snapPrefix) {
			snaps++
		}
	}
	if snaps != 1 {
		t.Fatalf("%d snapshot files on disk, want 1", snaps)
	}
	wantLive := st.snapshotStateLocked()
	st.Close()

	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	rec := st2.Recovered()
	if rec.SnapshotSeq == 0 {
		t.Fatal("recovery did not load a snapshot")
	}
	got := names(rec.Topologies)
	want := names(wantLive)
	if len(got) != len(want) {
		t.Fatalf("recovered %d topologies, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: %v vs %v", i, got, want)
		}
	}
}

func TestRecoverySkipsRecordsAlreadyFolded(t *testing.T) {
	// Simulate a crash between compaction's MANIFEST rename and its WAL
	// truncate: the WAL still holds records the snapshot already folded.
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{CompactThreshold: -1})
	for _, n := range []string{"a", "b"} {
		if err := st.AppendRegister(doc(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendRegister(doc("c")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Rebuild the pre-truncation WAL: folded records 1..2 plus live 3.
	var wal []byte
	wal = EncodeRecord(wal, Record{Op: OpRegister, Seq: 1, Doc: doc("a")})
	wal = EncodeRecord(wal, Record{Op: OpRegister, Seq: 2, Doc: doc("b")})
	wal = EncodeRecord(wal, Record{Op: OpRegister, Seq: 3, Doc: doc("c")})
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	rec := st2.Recovered()
	if got := names(rec.Topologies); len(got) != 3 {
		t.Fatalf("recovered %v, want [a b c]", got)
	}
	if rec.SkippedRecords != 2 || rec.ReplayedRecords != 1 {
		t.Fatalf("skipped=%d replayed=%d, want 2/1", rec.SkippedRecords, rec.ReplayedRecords)
	}
	// A replayed duplicate register must not duplicate the entry.
	seen := map[string]int{}
	for _, d := range rec.Topologies {
		seen[d.Name]++
	}
	for n, c := range seen {
		if c != 1 {
			t.Fatalf("topology %q appears %d times", n, c)
		}
	}
}

func TestCorruptSnapshotIsAHardError(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	if err := st.AppendRegister(doc("x")); err != nil {
		t.Fatal(err)
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	// Damage the snapshot the manifest points at. Unlike a torn WAL
	// tail, this must refuse to open: acknowledged state is missing and
	// no truncation rule can recover it.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), snapPrefix) {
			p := filepath.Join(dir, e.Name())
			raw, _ := os.ReadFile(p)
			raw[len(raw)/2] ^= 0xFF
			if err := os.WriteFile(p, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	if _, err := Open(context.Background(), dir, Options{}); err == nil {
		t.Fatal("open accepted a checksum-failing snapshot")
	}
}

func TestSequenceRegressionTruncates(t *testing.T) {
	dir := t.TempDir()
	var wal []byte
	wal = EncodeRecord(wal, Record{Op: OpRegister, Seq: 1, Doc: doc("a")})
	wal = EncodeRecord(wal, Record{Op: OpRegister, Seq: 1, Doc: doc("b")}) // repeats seq
	if err := os.WriteFile(filepath.Join(dir, walName), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	st := mustOpen(t, dir, Options{})
	defer st.Close()
	rec := st.Recovered()
	if got := names(rec.Topologies); len(got) != 1 || got[0] != "a" {
		t.Fatalf("recovered %v, want [a]", got)
	}
	if !rec.TornTail {
		t.Fatal("sequence regression not treated as corruption")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, policy := range []FsyncPolicy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(policy.String(), func(t *testing.T) {
			dir := t.TempDir()
			st := mustOpen(t, dir, Options{Fsync: policy, FsyncInterval: time.Millisecond})
			for i := 0; i < 20; i++ {
				if err := st.AppendRegister(doc(fmt.Sprintf("p%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if policy == FsyncInterval {
				time.Sleep(20 * time.Millisecond) // let the syncer run at least once
			}
			if err := st.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			st2 := mustOpen(t, dir, Options{})
			defer st2.Close()
			if got := len(st2.Recovered().Topologies); got != 20 {
				t.Fatalf("recovered %d topologies, want 20", got)
			}
		})
	}
}

func TestParseFsyncPolicy(t *testing.T) {
	for in, want := range map[string]FsyncPolicy{
		"always": FsyncAlways, "Interval": FsyncInterval, " never ": FsyncNever,
	} {
		got, err := ParseFsyncPolicy(in)
		if err != nil || got != want {
			t.Errorf("ParseFsyncPolicy(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFsyncPolicy("sometimes"); err == nil {
		t.Error("accepted unknown policy")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	st.Close()
	if err := st.AppendRegister(doc("late")); err == nil {
		t.Fatal("append accepted after close")
	}
	if err := st.Sync(); err == nil {
		t.Fatal("sync accepted after close")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestConcurrentAppendsStayReplayable(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{Fsync: FsyncNever, CompactThreshold: 8 << 10})
	const workers, per = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				name := fmt.Sprintf("w%d-i%d", w, i)
				if err := st.AppendRegister(doc(name)); err != nil {
					t.Error(err)
					return
				}
				if i%2 == 0 {
					if err := st.AppendEvict(name); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	wantLive := workers * per / 2
	st.Close()
	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	rec := st2.Recovered()
	if rec.TornTail {
		t.Fatal("concurrent appends left a torn log")
	}
	if got := len(rec.Topologies); got != wantLive {
		t.Fatalf("recovered %d topologies, want %d", got, wantLive)
	}
}

func TestDirSize(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	if err := st.AppendRegister(doc("size")); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if got := DirSize(dir); got <= 0 {
		t.Fatalf("DirSize = %d, want > 0", got)
	}
	if DirSize(filepath.Join(dir, "no-such-subdir")) != 0 {
		t.Fatal("DirSize of missing dir != 0")
	}
}

func TestMetricsCounts(t *testing.T) {
	reg := obs.NewRegistry()
	dir := t.TempDir()
	m := NewMetrics(reg, func() float64 { return float64(DirSize(dir)) })
	st := mustOpen(t, dir, Options{Fsync: FsyncAlways, CompactThreshold: -1, Metrics: m})
	for i := 0; i < 5; i++ {
		if err := st.AppendRegister(doc(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	if got := m.Records.Load(); got != 5 {
		t.Errorf("records = %d, want 5", got)
	}
	if m.Snapshots.Load() != 1 || m.Compactions.Load() != 1 {
		t.Errorf("snapshots/compactions = %d/%d, want 1/1", m.Snapshots.Load(), m.Compactions.Load())
	}
	if got := m.AppendLatency.Count(); got != 5 {
		t.Errorf("append latency observations = %d, want 5", got)
	}
	if m.FsyncLatency.Count() == 0 {
		t.Error("no fsync latency observations under FsyncAlways")
	}
	var b strings.Builder
	reg.WritePrometheus(&b)
	text := b.String()
	for _, want := range []string{
		"store_wal_records_total 5",
		"store_snapshots_total 1",
		"store_compactions_total 1",
		"store_data_dir_bytes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	for _, err := range obs.Lint(text) {
		t.Errorf("lint: %v", err)
	}
}
