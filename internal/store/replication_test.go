package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// liveState returns the store's current state mirror (test helper; the
// production read path is Since/Recovered).
func liveState(s *Store) []TopologyDoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotStateLocked()
}

// applySince folds one replication pull into the follower, returning
// the record sequences applied (empty for a resync or an empty pull).
func applySince(t *testing.T, follower *Store, res SinceResult) []uint64 {
	t.Helper()
	if res.Resync {
		if err := follower.InstallSnapshot(res.Docs, res.ResyncSeq); err != nil {
			t.Fatalf("install snapshot at %d: %v", res.ResyncSeq, err)
		}
		return nil
	}
	seqs := make([]uint64, 0, len(res.Records))
	for _, rec := range res.Records {
		if err := follower.ApplyRecord(rec); err != nil {
			t.Fatalf("apply seq %d: %v", rec.Seq, err)
		}
		seqs = append(seqs, rec.Seq)
	}
	return seqs
}

func TestReplicationTailShipsRecords(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), Options{})
	defer primary.Close()
	follower := mustOpen(t, t.TempDir(), Options{})
	defer follower.Close()

	for _, n := range []string{"one", "two", "three"} {
		if err := primary.AppendRegister(doc(n)); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.AppendEvict("two"); err != nil {
		t.Fatal(err)
	}

	res, err := primary.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resync {
		t.Fatalf("unexpected resync on an uncompacted log")
	}
	if len(res.Records) != 4 || res.LastSeq != 4 {
		t.Fatalf("Since(0) = %d records, last %d; want 4, 4", len(res.Records), res.LastSeq)
	}
	applySince(t, follower, res)

	if got, want := liveState(follower), liveState(primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower state %v != primary %v", names(got), names(want))
	}
	if follower.LastSeq() != primary.LastSeq() {
		t.Fatalf("follower seq %d != primary %d", follower.LastSeq(), primary.LastSeq())
	}

	// Caught up: the next pull is empty, not an error and not a resync.
	res, err = primary.Since(follower.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resync || len(res.Records) != 0 || res.LastSeq != 4 {
		t.Fatalf("caught-up pull = %+v", res)
	}
}

// The follower's own journal must recover to the shipped state: a
// promoted follower restarts exactly like the primary it replaced.
func TestFollowerJournalRecovers(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), Options{})
	defer primary.Close()
	fdir := t.TempDir()
	follower := mustOpen(t, fdir, Options{})

	for i := 0; i < 5; i++ {
		if err := primary.AppendRegister(doc(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := primary.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	applySince(t, follower, res)
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}

	reopened := mustOpen(t, fdir, Options{})
	defer reopened.Close()
	rec := reopened.Recovered()
	if rec.LastSeq != 5 || rec.ReplayedRecords != 5 || rec.TornTail {
		t.Fatalf("follower recovery %+v", rec)
	}
	if got, want := liveState(reopened), liveState(primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered follower diverged: %v != %v", names(got), names(want))
	}
}

func TestApplyRecordRejectsOutOfOrderSeq(t *testing.T) {
	follower := mustOpen(t, t.TempDir(), Options{})
	defer follower.Close()

	rec := Record{Op: OpRegister, Seq: 1, Doc: doc("x")}
	if err := follower.ApplyRecord(rec); err != nil {
		t.Fatal(err)
	}
	// Same seq again: a duplicate pull must not double-apply.
	if err := follower.ApplyRecord(rec); err == nil {
		t.Fatal("duplicate seq accepted")
	}
	// A gap means the shipped stream lost records: refuse, don't skip.
	if err := follower.ApplyRecord(Record{Op: OpRegister, Seq: 3, Doc: doc("y")}); err == nil {
		t.Fatal("gapped seq accepted")
	}
	if err := follower.ApplyRecord(Record{Op: OpRegister, Seq: 2, Doc: doc("y")}); err != nil {
		t.Fatal(err)
	}
	if err := follower.ApplyRecord(Record{Op: OpEvict, Seq: 1, Name: "x"}); err == nil {
		t.Fatal("backwards seq accepted")
	}
	if got := follower.LastSeq(); got != 2 {
		t.Fatalf("seq %d after rejected applies, want 2", got)
	}
	if got := names(liveState(follower)); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Fatalf("state %v, want [x y]", got)
	}
}

func TestInstallSnapshotRejectsRegression(t *testing.T) {
	follower := mustOpen(t, t.TempDir(), Options{})
	defer follower.Close()
	if err := follower.InstallSnapshot([]TopologyDoc{doc("ahead")}, 10); err != nil {
		t.Fatal(err)
	}
	if err := follower.InstallSnapshot([]TopologyDoc{doc("old")}, 5); err == nil {
		t.Fatal("snapshot behind the applied seq accepted")
	}
}

// The divergence contract: a follower that got AHEAD of its primary (a
// stale ex-primary rejoining after a failover it missed) must be pulled
// back onto the primary's history — Since answers its cursor with a
// full-state resync rather than "caught up", and the forced install
// reports exactly how many diverged sequences were discarded.
func TestInstallSnapshotForcedDiscardsDivergedTail(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), Options{})
	defer primary.Close()
	follower := mustOpen(t, t.TempDir(), Options{})
	defer follower.Close()

	for _, n := range []string{"p0", "p1"} {
		if err := primary.AppendRegister(doc(n)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 5; i++ {
		rec := Record{Op: OpRegister, Seq: uint64(i), Doc: doc(fmt.Sprintf("f%d", i))}
		if err := follower.ApplyRecord(rec); err != nil {
			t.Fatal(err)
		}
	}

	res, err := primary.Since(follower.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resync || res.ResyncSeq != 2 || res.LastSeq != 2 {
		t.Fatalf("ahead cursor answered %+v, want a resync at seq 2", res)
	}
	// The guarded install refuses the regression; only the explicit
	// force path may discard the diverged tail.
	if err := follower.InstallSnapshot(res.Docs, res.ResyncSeq); err == nil {
		t.Fatal("guarded install accepted a sequence regression")
	}
	discarded, err := follower.ForceInstallSnapshot(res.Docs, res.ResyncSeq)
	if err != nil {
		t.Fatal(err)
	}
	if discarded != 3 {
		t.Fatalf("discarded %d sequences, want 3", discarded)
	}
	if got, want := liveState(follower), liveState(primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-divergence state %v != primary %v", names(got), names(want))
	}
	if follower.LastSeq() != primary.LastSeq() {
		t.Fatalf("post-divergence seq %d != primary %d", follower.LastSeq(), primary.LastSeq())
	}

	// The cursor is valid again: incremental tailing resumes.
	if err := primary.AppendRegister(doc("post")); err != nil {
		t.Fatal(err)
	}
	res, err = primary.Since(follower.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resync || len(res.Records) != 1 {
		t.Fatalf("post-divergence pull = %+v, want 1 record", res)
	}
	applySince(t, follower, res)
	if got, want := liveState(follower), liveState(primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("final state %v != primary %v", names(got), names(want))
	}
}

// The satellite contract: a follower tailing across the primary's
// snapshot+truncate window must resync from the snapshot with no gap
// and no duplicate application. Deterministic version first — pull,
// compact under the reader's feet, pull again from the stale cursor.
func TestCompactionRacesTailReaderDeterministic(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), Options{})
	defer primary.Close()
	follower := mustOpen(t, t.TempDir(), Options{})
	defer follower.Close()

	for i := 0; i < 4; i++ {
		if err := primary.AppendRegister(doc(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := primary.Since(0)
	if err != nil {
		t.Fatal(err)
	}
	applySince(t, follower, res) // follower at seq 4

	// The primary moves on and compacts: seqs 5..8 exist only inside the
	// snapshot now, and the follower's cursor (4) predates the fold.
	if err := primary.AppendEvict("a1"); err != nil {
		t.Fatal(err)
	}
	for i := 4; i < 7; i++ {
		if err := primary.AppendRegister(doc(fmt.Sprintf("a%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := primary.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := primary.SnapshotSeq(); got != 8 {
		t.Fatalf("snapshot seq %d, want 8", got)
	}

	res, err = primary.Since(follower.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resync {
		t.Fatalf("pull across the fold did not resync: %+v", res)
	}
	applySince(t, follower, res)

	if got, want := liveState(follower), liveState(primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-resync state %v != primary %v", names(got), names(want))
	}
	if follower.LastSeq() != primary.LastSeq() {
		t.Fatalf("post-resync seq %d != primary %d", follower.LastSeq(), primary.LastSeq())
	}

	// Post-resync the cursor is valid again: incremental tailing resumes
	// with records, not another resync.
	if err := primary.AppendRegister(doc("post")); err != nil {
		t.Fatal(err)
	}
	res, err = primary.Since(follower.LastSeq())
	if err != nil {
		t.Fatal(err)
	}
	if res.Resync || len(res.Records) != 1 {
		t.Fatalf("post-resync pull = %+v", res)
	}
	applySince(t, follower, res)
	if got, want := liveState(follower), liveState(primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("final state %v != primary %v", names(got), names(want))
	}
}

// Live version of the race: a writer appends and compacts concurrently
// with a tail reader pulling and applying. Every record sequence must
// be applied at most once (resyncs replace wholesale, never re-apply),
// and the follower must converge on the primary's exact state.
func TestCompactionRacesLiveTailReader(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), Options{})
	defer primary.Close()
	follower := mustOpen(t, t.TempDir(), Options{})
	defer follower.Close()

	const writes = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < writes; i++ {
			if err := primary.AppendRegister(doc(fmt.Sprintf("w%03d", i))); err != nil {
				t.Error(err)
				return
			}
			if rng.Intn(17) == 0 {
				if err := primary.Compact(); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	applied := make(map[uint64]int)
	resyncs := 0
	for follower.LastSeq() < writes {
		res, err := primary.Since(follower.LastSeq())
		if err != nil {
			t.Fatal(err)
		}
		if res.Resync {
			resyncs++
			if err := follower.InstallSnapshot(res.Docs, res.ResyncSeq); err != nil {
				t.Fatal(err)
			}
			continue
		}
		for _, rec := range res.Records {
			applied[rec.Seq]++
			if err := follower.ApplyRecord(rec); err != nil {
				t.Fatalf("apply seq %d: %v", rec.Seq, err)
			}
		}
	}
	wg.Wait()

	for seq, n := range applied {
		if n > 1 {
			t.Fatalf("seq %d applied %d times", seq, n)
		}
	}
	if got, want := liveState(follower), liveState(primary); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower converged to %d topologies, primary has %d", len(got), len(want))
	}
	if follower.LastSeq() != primary.LastSeq() {
		t.Fatalf("follower seq %d != primary %d", follower.LastSeq(), primary.LastSeq())
	}
	t.Logf("live tail: %d records applied incrementally, %d resyncs", len(applied), resyncs)
}

// Since under a crashed compaction window: records at or below the
// snapshot fold still sitting in the WAL (manifest renamed, truncate
// pending) must not be shipped twice.
func TestSinceSkipsFoldedLeftovers(t *testing.T) {
	primary := mustOpen(t, t.TempDir(), Options{})
	defer primary.Close()
	for i := 0; i < 3; i++ {
		if err := primary.AppendRegister(doc(fmt.Sprintf("t%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate the crash window: snapSeq advanced but the WAL not yet
	// truncated. A cursor at snapSeq must receive nothing, not replays.
	primary.mu.Lock()
	primary.snapSeq = 3
	primary.mu.Unlock()

	res, err := primary.Since(3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resync || len(res.Records) != 0 {
		t.Fatalf("folded leftovers shipped: %+v", res)
	}
}
