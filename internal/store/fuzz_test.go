package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"
)

// FuzzDecodeRecord drives the WAL record decoder with arbitrary bytes.
// Invariants: the decoder never panics; a successful decode consumed a
// plausible frame whose CRC32C verifiably covered the whole payload (so
// corrupting the stored checksum must make the same bytes fail); and a
// decoded record survives an encode → decode round trip unchanged.
func FuzzDecodeRecord(f *testing.F) {
	// Valid frames of both ops, so the fuzzer starts inside the format.
	f.Add(EncodeRecord(nil, Record{Op: OpRegister, Seq: 1, Doc: TopologyDoc{
		Name:   "fig1",
		Edges:  [][]string{{"a", "b"}, {"b", "c"}},
		Paths:  [][]string{{"a", "b", "c"}},
		Alpha:  200,
		Digest: "d1",
	}}))
	f.Add(EncodeRecord(nil, Record{Op: OpEvict, Seq: 2, Name: "fig1"}))
	// Hostile shapes: empty, truncated header, garbage, huge length.
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0})
	f.Add([]byte("not a wal record at all, just text"))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0, 1, 1})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, input []byte) {
		if len(input) > 1<<20 {
			return
		}
		rec, n, err := DecodeRecord(input)
		if err != nil {
			if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("unexpected error class: %v", err)
			}
			return
		}
		// A successful decode consumed a well-framed span.
		if n < minFrameSize || n > len(input) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(input))
		}
		// The CRC genuinely gated acceptance: flipping the stored
		// checksum must turn this exact frame corrupt.
		mut := bytes.Clone(input[:n])
		stored := binary.LittleEndian.Uint32(mut[4:8])
		binary.LittleEndian.PutUint32(mut[4:8], stored^0xDEADBEEF)
		if _, _, err := DecodeRecord(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bad CRC accepted: %v", err)
		}
		// And the payload really hashes to the stored value.
		if got := crc32.Checksum(input[headerBytes:n], crcTable); got != stored {
			t.Fatalf("decoder accepted CRC %08x but payload hashes to %08x", stored, got)
		}
		// Round trip: re-encoding the decoded record yields a frame that
		// decodes back to the same record.
		re := EncodeRecord(nil, rec)
		rec2, _, err := DecodeRecord(re)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		if rec2.Op != rec.Op || rec2.Seq != rec.Seq || rec2.Name != rec.Name ||
			rec2.Doc.Name != rec.Doc.Name || rec2.Doc.Digest != rec.Doc.Digest ||
			rec2.Doc.Alpha != rec.Doc.Alpha ||
			len(rec2.Doc.Edges) != len(rec.Doc.Edges) || len(rec2.Doc.Paths) != len(rec.Doc.Paths) {
			t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
		}
	})
}
