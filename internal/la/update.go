package la

import (
	"errors"
	"fmt"
	"math"
)

// ErrDowndate is returned when a rank-1 downdate would leave the matrix
// indefinite — removing v·vᵀ from A destroys positive definiteness, so
// no Cholesky factor of A − v·vᵀ exists. In tomography terms: removing
// the measurement path made the link metrics unidentifiable.
var ErrDowndate = errors.New("la: rank-1 downdate leaves matrix indefinite")

// updateDriftTol is the conditioning bound for incrementally maintained
// factors: when min|diag(L)| / max|diag(L)| falls to this ratio the
// factor certifies cond(R) ≥ 1e8 (the diagonal ratio of a triangular
// factor bounds 1/cond from below), which matches the sparse route's
// DefaultCondLimit. AddRow/RemoveRow then fall back to a cold dense
// refactorization — the oracle — instead of trusting accumulated
// rotation error.
const updateDriftTol = 1e-8

// Update returns the Cholesky factor of A + v·vᵀ given the factor of A,
// in O(n²) instead of the O(n³) of refactorization. The receiver is not
// modified. The update is the classical LINPACK dchud sweep: one Givens
// rotation per column annihilates v against the diagonal while
// preserving [L v]·[L v]ᵀ = L·Lᵀ + v·vᵀ. A rank-1 update of an SPD
// matrix is always SPD, so Update fails only on a shape mismatch.
func (c *Cholesky) Update(v Vector) (*Cholesky, error) {
	n := c.l.rows
	if len(v) != n {
		return nil, fmt.Errorf("la: Cholesky.Update with vector length %d, want %d: %w", len(v), n, ErrShape)
	}
	l := c.l.Clone()
	w := v.Clone()
	for k := 0; k < n; k++ {
		lkk := l.data[k*n+k]
		r := math.Hypot(lkk, w[k])
		cs, sn := lkk/r, w[k]/r
		l.data[k*n+k] = r
		for i := k + 1; i < n; i++ {
			t := l.data[i*n+k]
			l.data[i*n+k] = cs*t + sn*w[i]
			w[i] = cs*w[i] - sn*t
		}
	}
	return &Cholesky{l: l}, nil
}

// Downdate returns the Cholesky factor of A − v·vᵀ given the factor of
// A, in O(n²). The receiver is not modified. It follows LINPACK dchdd:
// solve L·p = v, require ‖p‖ < 1 (the exact condition for A − v·vᵀ to
// stay positive definite, since vᵀA⁻¹v = ‖p‖²), build the hyperbolic
// rotation angles backward, and sweep them through L. When the
// downdated matrix would be indefinite — or so close to singular that a
// pivot lands under the Cholesky tolerance — Downdate returns an
// explicit ErrDowndate (also matching ErrNotSPD) rather than a garbage
// factor.
func (c *Cholesky) Downdate(v Vector) (*Cholesky, error) {
	n := c.l.rows
	if len(v) != n {
		return nil, fmt.Errorf("la: Cholesky.Downdate with vector length %d, want %d: %w", len(v), n, ErrShape)
	}
	// Forward substitution p = L⁻¹·v.
	p := v.Clone()
	for i := 0; i < n; i++ {
		s := p[i]
		for j := 0; j < i; j++ {
			s -= c.l.data[i*n+j] * p[j]
		}
		p[i] = s / c.l.data[i*n+i]
	}
	pp := 0.0
	for _, x := range p {
		pp += x * x
	}
	if 1-pp <= spdTol {
		return nil, fmt.Errorf("la: downdate with ‖L⁻¹v‖² = %g ≥ 1: %w: %w", pp, ErrDowndate, ErrNotSPD)
	}
	alpha := math.Sqrt(1 - pp)
	cs := make([]float64, n)
	sn := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		r := math.Hypot(alpha, p[i])
		cs[i] = alpha / r
		sn[i] = p[i] / r
		alpha = r
	}
	l := c.l.Clone()
	for j := 0; j < n; j++ {
		xx := 0.0
		for i := j; i >= 0; i-- {
			t := cs[i]*xx + sn[i]*l.data[j*n+i]
			l.data[j*n+i] = cs[i]*l.data[j*n+i] - sn[i]*xx
			xx = t
		}
	}
	// The rotations can flip a column's sign; L·Lᵀ is invariant under
	// column sign flips, so normalize to a positive diagonal and treat a
	// pivot at/under the SPD tolerance as numerical rank collapse.
	for k := 0; k < n; k++ {
		d := l.data[k*n+k]
		if d < 0 {
			for i := k; i < n; i++ {
				l.data[i*n+k] = -l.data[i*n+k]
			}
			d = -d
		}
		if d <= spdTol {
			return nil, fmt.Errorf("la: downdated pivot %g at %d: %w: %w", d, k, ErrDowndate, ErrNotSPD)
		}
	}
	return &Cholesky{l: l}, nil
}

// AddRow returns the normal-equation factorization of R with row
// appended, reusing the receiver's factor through a rank-1 Cholesky
// update: Gram(R') = RᵀR + row·rowᵀ. Cost is O(links² + links·paths)
// against the O(links²·paths + links³) of FactorNormal. The receiver is
// not modified. refactored reports whether the incremental factor
// drifted past the conditioning bound and a cold dense refactorization
// (the oracle) was run instead.
func (f *NormalFactor) AddRow(row Vector) (nf *NormalFactor, refactored bool, err error) {
	links := f.rt.rows
	if len(row) != links {
		return nil, false, fmt.Errorf("la: AddRow with row length %d, want %d: %w", len(row), links, ErrShape)
	}
	chol, err := f.chol.Update(row)
	if err != nil {
		return nil, false, err
	}
	rt := appendColumn(f.rt, row)
	if factorDrifted(chol) {
		chol, err = refactorGram(rt)
		if err != nil {
			return nil, true, err
		}
		return &NormalFactor{rt: rt, chol: chol}, true, nil
	}
	return &NormalFactor{rt: rt, chol: chol}, false, nil
}

// RemoveRow returns the normal-equation factorization of R with row i
// removed, reusing the receiver's factor through a rank-1 Cholesky
// downdate: Gram(R') = RᵀR − rowᵢ·rowᵢᵀ. The receiver is not modified.
// When the downdate reports indefiniteness or the downdated factor
// drifts past the conditioning bound, RemoveRow falls back to a cold
// dense refactorization (refactored = true); if even the oracle finds
// the reduced matrix rank-deficient, it returns an explicit error
// matching ErrNotSPD — never a garbage factor.
func (f *NormalFactor) RemoveRow(i int) (nf *NormalFactor, refactored bool, err error) {
	paths := f.rt.cols
	if i < 0 || i >= paths {
		return nil, false, fmt.Errorf("la: RemoveRow index %d out of %d rows: %w", i, paths, ErrShape)
	}
	row := f.rt.Col(i)
	rt := removeColumn(f.rt, i)
	chol, err := f.chol.Downdate(row)
	if err != nil && !errors.Is(err, ErrDowndate) {
		return nil, false, err
	}
	if err != nil || factorDrifted(chol) {
		chol, err = refactorGram(rt)
		if err != nil {
			return nil, true, fmt.Errorf("la: matrix not full column rank after row removal: %w", err)
		}
		return &NormalFactor{rt: rt, chol: chol}, true, nil
	}
	return &NormalFactor{rt: rt, chol: chol}, false, nil
}

// factorDrifted reports whether an incrementally maintained factor
// certifies ill-conditioning: min/max diagonal ratio at or under
// updateDriftTol, or any pivot at the Cholesky SPD tolerance.
func factorDrifted(c *Cholesky) bool {
	n := c.l.rows
	lo, hi := math.Inf(1), 0.0
	for k := 0; k < n; k++ {
		d := math.Abs(c.l.data[k*n+k])
		lo = math.Min(lo, d)
		hi = math.Max(hi, d)
	}
	return lo <= spdTol || lo <= updateDriftTol*hi
}

// refactorGram is the dense oracle: a cold Cholesky factorization of
// rt·rtᵀ (= RᵀR, since rt holds Rᵀ).
func refactorGram(rt *Matrix) (*Cholesky, error) {
	gram, err := rt.Mul(rt.T())
	if err != nil {
		return nil, err
	}
	chol, err := FactorCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("la: matrix not full column rank: %w", err)
	}
	return chol, nil
}

// appendColumn returns a copy of m with col appended as its last column.
func appendColumn(m *Matrix, col Vector) *Matrix {
	out := NewMatrix(m.rows, m.cols+1)
	for i := 0; i < m.rows; i++ {
		copy(out.data[i*out.cols:i*out.cols+m.cols], m.data[i*m.cols:(i+1)*m.cols])
		out.data[i*out.cols+m.cols] = col[i]
	}
	return out
}

// removeColumn returns a copy of m with column j removed.
func removeColumn(m *Matrix, j int) *Matrix {
	out := NewMatrix(m.rows, m.cols-1)
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		dst := out.data[i*out.cols : (i+1)*out.cols]
		copy(dst[:j], src[:j])
		copy(dst[j:], src[j+1:])
	}
	return out
}
