package la

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// NormalFactor is a reusable factorization of the normal equations for a
// tall full-column-rank matrix R: it holds Rᵀ together with the Cholesky
// factor of the Gram matrix RᵀR, so that repeated least-squares solves
// x̂ = (RᵀR)⁻¹Rᵀ·y cost one matvec plus two triangular substitutions —
// no refactorization. The dense operator T is memoized on first request,
// so every consumer sharing a factor also shares one T. A NormalFactor
// is safe for concurrent use; callers must not mutate what it returns.
type NormalFactor struct {
	rt   *Matrix
	chol *Cholesky

	opOnce sync.Once
	op     *Matrix
	opErr  error
}

// FactorNormal factors the normal equations of r once. It fails with
// ErrNotSPD when r lacks full column rank (in tomography terms: the link
// metrics are not identifiable).
func FactorNormal(r *Matrix) (*NormalFactor, error) {
	return FactorNormalCtx(context.Background(), r)
}

// FactorNormalCtx is FactorNormal under a trace span ("la.factor_normal"
// with the matrix shape), so services can see factorization cost inside
// a registration trace. With no active span in ctx it costs two pointer
// checks.
func FactorNormalCtx(ctx context.Context, r *Matrix) (*NormalFactor, error) {
	_, span := obs.StartSpan(ctx, "la.factor_normal")
	defer span.End()
	span.SetInt("rows", r.Rows())
	span.SetInt("cols", r.Cols())
	rt := r.T()
	gram, err := rt.Mul(r)
	if err != nil {
		return nil, err
	}
	chol, err := FactorCholesky(gram)
	if err != nil {
		return nil, fmt.Errorf("la: matrix not full column rank: %w", err)
	}
	return &NormalFactor{rt: rt, chol: chol}, nil
}

// Rows returns the row count of the factored matrix (measurement paths).
func (f *NormalFactor) Rows() int { return f.rt.cols }

// Cols returns the column count of the factored matrix (links).
func (f *NormalFactor) Cols() int { return f.rt.rows }

// Solve returns the least-squares solution x̂ = (RᵀR)⁻¹Rᵀ·y using only
// back-substitution against the cached factor.
func (f *NormalFactor) Solve(y Vector) (Vector, error) {
	rty, err := f.rt.MulVec(y)
	if err != nil {
		return nil, err
	}
	return f.chol.Solve(rty)
}

// Operator returns the dense estimation operator T = (RᵀR)⁻¹Rᵀ,
// materializing it from the factor (one triangular solve per column) on
// first call and returning the same matrix afterwards. The returned
// matrix is shared; callers must not mutate it.
func (f *NormalFactor) Operator() (*Matrix, error) {
	return f.OperatorCtx(context.Background())
}

// OperatorCtx is Operator under a trace span. The span
// ("la.operator_materialize") is created only on the call that actually
// materializes T — cache-warm calls add nothing to the trace.
func (f *NormalFactor) OperatorCtx(ctx context.Context) (*Matrix, error) {
	f.opOnce.Do(func() {
		_, span := obs.StartSpan(ctx, "la.operator_materialize")
		defer span.End()
		n, p := f.Cols(), f.Rows()
		span.SetInt("rows", n)
		span.SetInt("cols", p)
		t := NewMatrix(n, p)
		for j := 0; j < p; j++ {
			col, err := f.chol.Solve(f.rt.Col(j))
			if err != nil {
				f.opErr = err
				return
			}
			for i := 0; i < n; i++ {
				t.data[i*t.cols+j] = col[i]
			}
		}
		f.op = t
	})
	return f.op, f.opErr
}
