package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSVDDiagonal(t *testing.T) {
	a, _ := NewMatrixFrom(3, 3, []float64{
		3, 0, 0,
		0, 7, 0,
		0, 0, 2,
	})
	s, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	want := Vector{7, 3, 2}
	if !s.Sigma.Equal(want, 1e-10) {
		t.Errorf("Σ = %v, want %v", s.Sigma, want)
	}
	if math.Abs(s.Condition()-3.5) > 1e-9 {
		t.Errorf("κ = %g, want 3.5", s.Condition())
	}
	if s.Rank(0) != 3 {
		t.Errorf("rank = %d", s.Rank(0))
	}
}

func TestSVDWideRejected(t *testing.T) {
	if _, err := FactorSVD(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v", err)
	}
}

func TestSVDReconstructionProperty(t *testing.T) {
	// Property: U·Σ·Vᵀ == A, UᵀU == I, VᵀV == I, Σ sorted descending.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(5)
		a := randomMatrix(rng, m, n)
		s, err := FactorSVD(a)
		if err != nil {
			return false
		}
		for i := 1; i < len(s.Sigma); i++ {
			if s.Sigma[i] > s.Sigma[i-1]+1e-12 {
				return false
			}
		}
		// Rebuild A.
		sig := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			sig.Set(i, i, s.Sigma[i])
		}
		us, _ := s.U.Mul(sig)
		rec, _ := us.Mul(s.V.T())
		if !rec.Equal(a, 1e-8) {
			return false
		}
		utu, _ := s.U.T().Mul(s.U)
		vtv, _ := s.V.T().Mul(s.V)
		return utu.Equal(Identity(n), 1e-8) && vtv.Equal(Identity(n), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSVDRankDetectsDeficiency(t *testing.T) {
	// Rank-1 matrix: one nonzero singular value.
	a, _ := NewMatrixFrom(3, 2, []float64{1, 2, 2, 4, 3, 6})
	s, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank(0) != 1 {
		t.Errorf("rank = %d, want 1", s.Rank(0))
	}
	if !math.IsInf(s.Condition(), 1) {
		t.Errorf("κ = %g, want +Inf", s.Condition())
	}
}

func TestSVDMatchesRankAndCondition(t *testing.T) {
	// Property: SVD rank agrees with Gaussian-elimination Rank, and the
	// SVD condition number agrees with the power-iteration estimate on
	// full-rank draws.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + rng.Intn(4)
		a := randomMatrix(rng, m, n)
		s, err := FactorSVD(a)
		if err != nil {
			return false
		}
		if s.Rank(0) != Rank(a) {
			return false
		}
		if s.Rank(0) < n {
			return true
		}
		est, err := ConditionEst(a, 400)
		if err != nil {
			return true // power iteration rejected a near-singular draw
		}
		exact := s.Condition()
		return math.Abs(est-exact) < 0.05*exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPseudoInverseApplyFullRank(t *testing.T) {
	// Full-rank: pseudo-inverse solution equals least squares.
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 6, 3)
	b := randomVector(rng, 6)
	s, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	x1, err := s.PseudoInverseApply(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	x2, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x1.Equal(x2, 1e-7) {
		t.Errorf("A⁺b = %v, least squares = %v", x1, x2)
	}
	if _, err := s.PseudoInverseApply(Vector{1}, 0); !errors.Is(err, ErrShape) {
		t.Errorf("short rhs: err = %v", err)
	}
}

func TestPseudoInverseApplyDeficient(t *testing.T) {
	// Rank-deficient: A⁺b is the minimum-norm solution; A·x reproduces
	// the projection of b onto range(A). For the rank-1 matrix below and
	// consistent b, A·x == b exactly.
	a, _ := NewMatrixFrom(3, 2, []float64{1, 2, 2, 4, 3, 6})
	x := Vector{1, 1} // b = A·x = (3, 6, 9)
	b, _ := a.MulVec(x)
	s, err := FactorSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.PseudoInverseApply(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	ax, _ := a.MulVec(got)
	if !ax.Equal(b, 1e-8) {
		t.Errorf("A·(A⁺b) = %v, want %v", ax, b)
	}
	// Minimum norm: ‖A⁺b‖ ≤ ‖x‖ for any preimage x.
	if got.Norm2() > x.Norm2()+1e-9 {
		t.Errorf("‖A⁺b‖ = %g exceeds a known preimage %g", got.Norm2(), x.Norm2())
	}
}
