package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestVectorConstructors(t *testing.T) {
	if got := Zeros(3); !got.Equal(Vector{0, 0, 0}, 0) {
		t.Errorf("Zeros(3) = %v", got)
	}
	if got := Ones(2); !got.Equal(Vector{1, 1}, 0) {
		t.Errorf("Ones(2) = %v", got)
	}
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	sum, err := v.Add(w)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if !sum.Equal(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", sum)
	}
	diff, err := sum.Sub(w)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !diff.Equal(v, 0) {
		t.Errorf("Sub round-trip = %v", diff)
	}
	if _, err := v.Add(Vector{1}); !errors.Is(err, ErrShape) {
		t.Errorf("Add mismatched: err = %v, want ErrShape", err)
	}
	if _, err := v.Sub(Vector{1}); !errors.Is(err, ErrShape) {
		t.Errorf("Sub mismatched: err = %v, want ErrShape", err)
	}
}

func TestVectorDot(t *testing.T) {
	got, err := Vector{1, 2, 3}.Dot(Vector{4, 5, 6})
	if err != nil {
		t.Fatalf("Dot: %v", err)
	}
	if got != 32 {
		t.Errorf("Dot = %g, want 32", got)
	}
	if _, err := (Vector{1}).Dot(Vector{1, 2}); !errors.Is(err, ErrShape) {
		t.Errorf("Dot mismatched: err = %v, want ErrShape", err)
	}
}

func TestVectorNorms(t *testing.T) {
	v := Vector{3, -4}
	if got := v.Norm1(); got != 7 {
		t.Errorf("Norm1 = %g, want 7", got)
	}
	if got := v.Norm2(); math.Abs(got-5) > 1e-12 {
		t.Errorf("Norm2 = %g, want 5", got)
	}
	if got := v.NormInf(); got != 4 {
		t.Errorf("NormInf = %g, want 4", got)
	}
}

func TestVectorStats(t *testing.T) {
	v := Vector{2, 8, 5}
	if got := v.Sum(); got != 15 {
		t.Errorf("Sum = %g", got)
	}
	if got := v.Mean(); got != 5 {
		t.Errorf("Mean = %g", got)
	}
	if got := v.Min(); got != 2 {
		t.Errorf("Min = %g", got)
	}
	if got := v.Max(); got != 8 {
		t.Errorf("Max = %g", got)
	}
	if got := (Vector{}).Mean(); got != 0 {
		t.Errorf("Mean of empty = %g, want 0", got)
	}
}

func TestVectorMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty did not panic")
		}
	}()
	Vector{}.Min()
}

func TestGEQ(t *testing.T) {
	tests := []struct {
		name string
		v, w Vector
		tol  float64
		want bool
	}{
		{"strictly greater", Vector{2, 3}, Vector{1, 2}, 0, true},
		{"equal", Vector{1, 2}, Vector{1, 2}, 0, true},
		{"one below", Vector{1, 1}, Vector{1, 2}, 0, false},
		{"below within tol", Vector{1, 1.999}, Vector{1, 2}, 0.01, true},
		{"length mismatch", Vector{1}, Vector{1, 2}, 0, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.v.GEQ(tt.w, tt.tol); got != tt.want {
				t.Errorf("GEQ = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone shares storage")
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	// Property: ‖v+w‖ ≤ ‖v‖+‖w‖ in all three norms.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		v, w := randomVector(rng, n), randomVector(rng, n)
		sum, _ := v.Add(w)
		const eps = 1e-9
		return sum.Norm1() <= v.Norm1()+w.Norm1()+eps &&
			sum.Norm2() <= v.Norm2()+w.Norm2()+eps &&
			sum.NormInf() <= v.NormInf()+w.NormInf()+eps
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	// Property: |⟨v,w⟩| ≤ ‖v‖₂·‖w‖₂.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(16)
		v, w := randomVector(rng, n), randomVector(rng, n)
		d, _ := v.Dot(w)
		return math.Abs(d) <= v.Norm2()*w.Norm2()+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomVector(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
