package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomSystem draws an m×n matrix with U[-1,1] entries plus a small
// diagonal boost so it is comfortably full column rank, and a random
// right-hand side.
func randomSystem(rng *rand.Rand, m, n int) (*Matrix, Vector) {
	a := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			v := 2*rng.Float64() - 1
			if i == j {
				v += 2
			}
			a.Set(i, j, v)
		}
	}
	b := make(Vector, m)
	for i := range b {
		b[i] = 10 * (2*rng.Float64() - 1)
	}
	return a, b
}

// Property: on random full-rank overdetermined systems, the three
// least-squares routes — QR, normal equations through Cholesky, and the
// SVD pseudoinverse — must agree on the same minimizer, and its residual
// must be orthogonal to the column space (Aᵀ(b − Ax̂) = 0).
func TestLeastSquaresSolverAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][2]int{{4, 3}, {6, 4}, {8, 8}, {12, 5}, {20, 10}, {15, 15}}
	for trial := 0; trial < 40; trial++ {
		m, n := shapes[trial%len(shapes)][0], shapes[trial%len(shapes)][1]
		a, b := randomSystem(rng, m, n)

		qr, err := FactorQR(a)
		if err != nil {
			t.Fatalf("trial %d: FactorQR: %v", trial, err)
		}
		if !qr.FullRank(0) {
			t.Fatalf("trial %d: %d×%d system unexpectedly rank-deficient", trial, m, n)
		}
		xQR, err := qr.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: QR solve: %v", trial, err)
		}

		nf, err := FactorNormal(a)
		if err != nil {
			t.Fatalf("trial %d: FactorNormal: %v", trial, err)
		}
		xNE, err := nf.Solve(b)
		if err != nil {
			t.Fatalf("trial %d: normal-equation solve: %v", trial, err)
		}

		svd, err := FactorSVD(a)
		if err != nil {
			t.Fatalf("trial %d: FactorSVD: %v", trial, err)
		}
		xSVD, err := svd.PseudoInverseApply(b, 0)
		if err != nil {
			t.Fatalf("trial %d: pseudoinverse apply: %v", trial, err)
		}

		// The boosted diagonal keeps the condition number modest, so a
		// fixed tolerance covers the cross-route float drift.
		tol := 1e-8 * (1 + xQR.Norm2())
		if !xQR.Equal(xNE, tol) {
			t.Errorf("trial %d (%d×%d): QR and normal-equation solutions differ: %v vs %v", trial, m, n, xQR, xNE)
		}
		if !xQR.Equal(xSVD, tol) {
			t.Errorf("trial %d (%d×%d): QR and SVD solutions differ: %v vs %v", trial, m, n, xQR, xSVD)
		}

		ax, err := a.MulVec(xQR)
		if err != nil {
			t.Fatalf("trial %d: A·x: %v", trial, err)
		}
		r, err := b.Sub(ax)
		if err != nil {
			t.Fatalf("trial %d: residual: %v", trial, err)
		}
		atr, err := a.T().MulVec(r)
		if err != nil {
			t.Fatalf("trial %d: Aᵀr: %v", trial, err)
		}
		if atr.NormInf() > 1e-7*(1+b.Norm2()) {
			t.Errorf("trial %d (%d×%d): residual not orthogonal to range(A): ‖Aᵀr‖∞ = %g", trial, m, n, atr.NormInf())
		}
	}
}

// Property: duplicating a column drops the rank by exactly one, and
// every factorization notices — QR loses full rank, SVD and the
// Householder rank count agree on n−1, and the normal equations stop
// being SPD.
func TestRankDeficientDetection(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		m := 5 + rng.Intn(8)
		n := 3 + rng.Intn(m-2)
		a, _ := randomSystem(rng, m, n)
		src := rng.Intn(n)
		dst := (src + 1 + rng.Intn(n-1)) % n
		for i := 0; i < m; i++ {
			a.Set(i, dst, a.At(i, src))
		}

		if got := Rank(a); got != n-1 {
			t.Errorf("trial %d (%d×%d, col %d=col %d): Rank = %d, want %d", trial, m, n, dst, src, got, n-1)
		}
		qr, err := FactorQR(a)
		if err != nil {
			t.Fatalf("trial %d: FactorQR: %v", trial, err)
		}
		if qr.FullRank(0) {
			t.Errorf("trial %d (%d×%d): QR reports full rank with duplicated column", trial, m, n)
		}
		svd, err := FactorSVD(a)
		if err != nil {
			t.Fatalf("trial %d: FactorSVD: %v", trial, err)
		}
		if got := svd.Rank(0); got != n-1 {
			t.Errorf("trial %d (%d×%d): SVD rank = %d, want %d", trial, m, n, got, n-1)
		}
		if _, err := FactorNormal(a); !errors.Is(err, ErrNotSPD) {
			t.Errorf("trial %d (%d×%d): FactorNormal err = %v, want ErrNotSPD", trial, m, n, err)
		}
	}
}

// Property: the power-iteration condition estimate tracks the exact
// SVD condition number on random well-conditioned systems.
func TestConditionEstMatchesSVD(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		m := 4 + rng.Intn(10)
		n := 3 + rng.Intn(m-2)
		a, _ := randomSystem(rng, m, n)
		est, err := ConditionEst(a, 200)
		if err != nil {
			t.Fatalf("trial %d: ConditionEst: %v", trial, err)
		}
		svd, err := FactorSVD(a)
		if err != nil {
			t.Fatalf("trial %d: FactorSVD: %v", trial, err)
		}
		exact := svd.Condition()
		if math.IsInf(exact, 0) {
			t.Fatalf("trial %d: random system singular", trial)
		}
		if est < 1 {
			t.Errorf("trial %d: condition estimate %g below 1", trial, est)
		}
		// Power iteration underestimates σ_max and overestimates σ_min,
		// so the estimate can sit slightly below exact; it must never be
		// far off on these well-conditioned draws.
		if est < 0.9*exact || est > 1.1*exact {
			t.Errorf("trial %d (%d×%d): ConditionEst %g vs SVD %g", trial, m, n, est, exact)
		}
	}
}
