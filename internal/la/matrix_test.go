package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixFrom(t *testing.T) {
	m, err := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatalf("NewMatrixFrom: %v", err)
	}
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %d×%d, want 2×3", m.Rows(), m.Cols())
	}
	if got := m.At(1, 2); got != 6 {
		t.Errorf("At(1,2) = %g, want 6", got)
	}
}

func TestNewMatrixFromShapeError(t *testing.T) {
	if _, err := NewMatrixFrom(2, 2, []float64{1, 2, 3}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestMatrixSetAt(t *testing.T) {
	m := NewMatrix(3, 3)
	m.Set(2, 1, 7.5)
	if got := m.At(2, 1); got != 7.5 {
		t.Errorf("At(2,1) = %g, want 7.5", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("At(0,0) = %g, want 0", got)
	}
}

func TestMatrixBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At out of range did not panic")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestIdentityMul(t *testing.T) {
	a, _ := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	got, err := a.Mul(Identity(2))
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !got.Equal(a, 0) {
		t.Errorf("A·I = %v, want %v", got, a)
	}
}

func TestMulShapes(t *testing.T) {
	a, _ := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b, _ := NewMatrixFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	want, _ := NewMatrixFrom(2, 2, []float64{58, 64, 139, 154})
	if !got.Equal(want, 1e-12) {
		t.Errorf("Mul = %v, want %v", got, want)
	}
	if _, err := b.Mul(b); !errors.Is(err, ErrShape) {
		t.Errorf("Mul of nonconforming shapes: err = %v, want ErrShape", err)
	}
}

func TestMulVec(t *testing.T) {
	a, _ := NewMatrixFrom(2, 3, []float64{1, 0, 2, 0, 3, 0})
	got, err := a.MulVec(Vector{1, 2, 3})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if !got.Equal(Vector{7, 6}, 1e-12) {
		t.Errorf("MulVec = %v, want [7 6]", got)
	}
}

func TestTranspose(t *testing.T) {
	a, _ := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("T shape = %d×%d, want 3×2", at.Rows(), at.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	// Property: (Aᵀ)ᵀ == A for random matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(rng, r, c)
		return a.T().T().Equal(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	// Property: (AB)C == A(BC) within floating tolerance.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b, c := randomMatrix(rng, n, n), randomMatrix(rng, n, n), randomMatrix(rng, n, n)
		ab, _ := a.Mul(b)
		abc1, _ := ab.Mul(c)
		bc, _ := b.Mul(c)
		abc2, _ := a.Mul(bc)
		return abc1.Equal(abc2, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubScale(t *testing.T) {
	a, _ := NewMatrixFrom(2, 2, []float64{1, 2, 3, 4})
	b, _ := NewMatrixFrom(2, 2, []float64{4, 3, 2, 1})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	want, _ := NewMatrixFrom(2, 2, []float64{5, 5, 5, 5})
	if !sum.Equal(want, 0) {
		t.Errorf("Add = %v", sum)
	}
	diff, err := sum.Sub(b)
	if err != nil {
		t.Fatalf("Sub: %v", err)
	}
	if !diff.Equal(a, 0) {
		t.Errorf("Sub round-trip = %v, want %v", diff, a)
	}
	if got := a.Scale(2).At(1, 1); got != 8 {
		t.Errorf("Scale(2).At(1,1) = %g, want 8", got)
	}
}

func TestRowColSetRow(t *testing.T) {
	a, _ := NewMatrixFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if got := a.Row(1); !got.Equal(Vector{4, 5, 6}, 0) {
		t.Errorf("Row(1) = %v", got)
	}
	if got := a.Col(2); !got.Equal(Vector{3, 6}, 0) {
		t.Errorf("Col(2) = %v", got)
	}
	if err := a.SetRow(0, Vector{9, 9, 9}); err != nil {
		t.Fatalf("SetRow: %v", err)
	}
	if got := a.Row(0); !got.Equal(Vector{9, 9, 9}, 0) {
		t.Errorf("after SetRow Row(0) = %v", got)
	}
	if err := a.SetRow(0, Vector{1}); !errors.Is(err, ErrShape) {
		t.Errorf("SetRow short: err = %v, want ErrShape", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	a, _ := NewMatrixFrom(1, 2, []float64{1, 2})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestMaxAbs(t *testing.T) {
	a, _ := NewMatrixFrom(2, 2, []float64{1, -7, 3, 4})
	if got := a.MaxAbs(); got != 7 {
		t.Errorf("MaxAbs = %g, want 7", got)
	}
	if got := NewMatrix(0, 0).MaxAbs(); got != 0 {
		t.Errorf("MaxAbs of empty = %g, want 0", got)
	}
}

func TestStringContainsShape(t *testing.T) {
	s := NewMatrix(2, 2).String()
	if len(s) == 0 {
		t.Fatal("String is empty")
	}
}

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestEqualTolerance(t *testing.T) {
	a, _ := NewMatrixFrom(1, 1, []float64{1.0})
	b, _ := NewMatrixFrom(1, 1, []float64{1.0 + 1e-9})
	if !a.Equal(b, 1e-8) {
		t.Error("Equal within tol = false")
	}
	if a.Equal(b, 1e-12) {
		t.Error("Equal outside tol = true")
	}
	c := NewMatrix(2, 1)
	if a.Equal(c, math.Inf(1)) {
		t.Error("Equal across shapes = true")
	}
}
