package la

import (
	"fmt"
	"math"
)

// SpectralNormEst estimates ‖A‖₂ (the largest singular value) by power
// iteration on AᵀA. Deterministic: the start vector is all-ones with a
// small index ramp to avoid starting orthogonal to the top singular
// vector. iters ≤ 0 selects 100.
func SpectralNormEst(a *Matrix, iters int) (float64, error) {
	if a.rows == 0 || a.cols == 0 {
		return 0, nil
	}
	if iters <= 0 {
		iters = 100
	}
	v := make(Vector, a.cols)
	for i := range v {
		v[i] = 1 + float64(i)/float64(len(v)+1)
	}
	norm := v.Norm2()
	for i := range v {
		v[i] /= norm
	}
	at := a.T()
	var sigma float64
	for k := 0; k < iters; k++ {
		av, err := a.MulVec(v)
		if err != nil {
			return 0, err
		}
		atav, err := at.MulVec(av)
		if err != nil {
			return 0, err
		}
		n := atav.Norm2()
		if n == 0 {
			return 0, nil // A maps v to 0; A is (numerically) zero on it
		}
		for i := range v {
			v[i] = atav[i] / n
		}
		sigma = math.Sqrt(n)
	}
	return sigma, nil
}

// ConditionEst estimates the 2-norm condition number κ(A) = σ_max/σ_min
// of a full-column-rank matrix via power iteration on AᵀA and on
// (AᵀA)⁻¹ (through its Cholesky factorization). Tomography uses it to
// report how much measurement noise the estimator x̂ = (RᵀR)⁻¹Rᵀy can
// amplify. Fails with ErrNotSPD on rank-deficient input.
func ConditionEst(a *Matrix, iters int) (float64, error) {
	if a.rows < a.cols {
		return 0, fmt.Errorf("la: ConditionEst of %d×%d matrix needs rows ≥ cols: %w", a.rows, a.cols, ErrShape)
	}
	sigmaMax, err := SpectralNormEst(a, iters)
	if err != nil {
		return 0, err
	}
	if sigmaMax == 0 {
		return math.Inf(1), nil
	}
	gram, err := a.T().Mul(a)
	if err != nil {
		return 0, err
	}
	chol, err := FactorCholesky(gram)
	if err != nil {
		return 0, err
	}
	if iters <= 0 {
		iters = 100
	}
	// Power iteration on (AᵀA)⁻¹: dominant eigenvalue is 1/σ_min².
	v := make(Vector, a.cols)
	for i := range v {
		v[i] = 1 + float64(i)/float64(len(v)+1)
	}
	n := v.Norm2()
	for i := range v {
		v[i] /= n
	}
	var lamInv float64
	for k := 0; k < iters; k++ {
		w, err := chol.Solve(v)
		if err != nil {
			return 0, err
		}
		n := w.Norm2()
		if n == 0 {
			return math.Inf(1), nil
		}
		for i := range v {
			v[i] = w[i] / n
		}
		lamInv = n
	}
	sigmaMin := 1 / math.Sqrt(lamInv)
	return sigmaMax / sigmaMin, nil
}
