package la

import (
	"fmt"
	"math"
)

// Cholesky is the lower-triangular Cholesky factor L of a symmetric
// positive definite matrix: A = L·Lᵀ.
type Cholesky struct {
	l *Matrix
}

// FactorCholesky computes the Cholesky factorization of a symmetric
// positive definite matrix. Only the lower triangle of a is read; the
// caller is responsible for symmetry. It returns ErrNotSPD when a
// diagonal pivot is not strictly positive, which in this project signals
// a rank-deficient routing Gram matrix RᵀR (unidentifiable tomography).
func FactorCholesky(a *Matrix) (*Cholesky, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("la: FactorCholesky of %d×%d matrix: %w", a.rows, a.cols, ErrShape)
	}
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			s := a.data[i*n+j]
			li := l.data[i*n : i*n+j]
			lj := l.data[j*n : j*n+j]
			for k := range li {
				s -= li[k] * lj[k]
			}
			if i == j {
				if s <= spdTol {
					return nil, fmt.Errorf("la: non-positive pivot %g at %d: %w", s, i, ErrNotSPD)
				}
				l.data[i*n+i] = math.Sqrt(s)
			} else {
				l.data[i*n+j] = s / l.data[j*n+j]
			}
		}
	}
	return &Cholesky{l: l}, nil
}

// spdTol is the minimum acceptable Cholesky pivot. Gram matrices of 0/1
// routing matrices have integer entries, so anything this small means
// rank deficiency rather than scaling.
const spdTol = 1e-10

// Solve solves A·x = b where A = L·Lᵀ is the factored matrix.
func (c *Cholesky) Solve(b Vector) (Vector, error) {
	n := c.l.rows
	if len(b) != n {
		return nil, fmt.Errorf("la: Cholesky.Solve with rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	// Forward substitution L·y = b.
	y := b.Clone()
	for i := 0; i < n; i++ {
		row := c.l.data[i*n : i*n+i]
		s := y[i]
		for j, v := range row {
			s -= v * y[j]
		}
		y[i] = s / c.l.data[i*n+i]
	}
	// Back substitution Lᵀ·x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= c.l.data[j*n+i] * y[j]
		}
		y[i] = s / c.l.data[i*n+i]
	}
	return y, nil
}

// L returns a copy of the lower-triangular factor.
func (c *Cholesky) L() *Matrix { return c.l.Clone() }
