package la

import (
	"fmt"
	"math"
)

// SVD is a thin singular value decomposition A = U·Σ·Vᵀ of an m×n
// matrix with m ≥ n: U is m×n with orthonormal columns, Σ holds the
// singular values in descending order, V is n×n orthogonal.
type SVD struct {
	U     *Matrix
	Sigma Vector
	V     *Matrix
	m, n  int
}

// FactorSVD computes the thin SVD by one-sided Jacobi rotations:
// repeatedly orthogonalize pairs of columns of a working copy of A while
// accumulating the rotations into V; at convergence the working columns
// are U·Σ. Robust and simple — exactly right for the modest dense
// matrices of this project. Requires m ≥ n.
func FactorSVD(a *Matrix) (*SVD, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("la: FactorSVD of %d×%d matrix needs rows ≥ cols: %w", m, n, ErrShape)
	}
	w := a.Clone()
	v := Identity(n)
	const (
		maxSweeps = 60
		eps       = 1e-12
	)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				// Compute the 2×2 Gram entries for columns p, q.
				var app, aqq, apq float64
				for i := 0; i < m; i++ {
					cp := w.data[i*n+p]
					cq := w.data[i*n+q]
					app += cp * cp
					aqq += cq * cq
					apq += cp * cq
				}
				if math.Abs(apq) <= eps*math.Sqrt(app*aqq)+1e-300 {
					continue
				}
				off += math.Abs(apq)
				// Jacobi rotation zeroing the (p,q) Gram entry.
				tau := (aqq - app) / (2 * apq)
				var t float64
				if tau >= 0 {
					t = 1 / (tau + math.Sqrt(1+tau*tau))
				} else {
					t = -1 / (-tau + math.Sqrt(1+tau*tau))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					cp := w.data[i*n+p]
					cq := w.data[i*n+q]
					w.data[i*n+p] = c*cp - s*cq
					w.data[i*n+q] = s*cp + c*cq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}
	// Column norms are the singular values; normalize to get U.
	sigma := make(Vector, n)
	u := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		var norm float64
		for i := 0; i < m; i++ {
			norm += w.data[i*n+j] * w.data[i*n+j]
		}
		norm = math.Sqrt(norm)
		sigma[j] = norm
		if norm > 0 {
			for i := 0; i < m; i++ {
				u.data[i*n+j] = w.data[i*n+j] / norm
			}
		}
	}
	// Sort descending, permuting U and V consistently.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 1; i < n; i++ { // insertion sort by sigma desc
		for j := i; j > 0 && sigma[order[j]] > sigma[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	us := NewMatrix(m, n)
	vs := NewMatrix(n, n)
	ss := make(Vector, n)
	for k, idx := range order {
		ss[k] = sigma[idx]
		for i := 0; i < m; i++ {
			us.data[i*n+k] = u.data[i*n+idx]
		}
		for i := 0; i < n; i++ {
			vs.data[i*n+k] = v.data[i*n+idx]
		}
	}
	return &SVD{U: us, Sigma: ss, V: vs, m: m, n: n}, nil
}

// Rank returns the numerical rank judged against tol (≤ 0 selects the
// usual max(m,n)·σ₁·ε heuristic).
func (s *SVD) Rank(tol float64) int {
	if len(s.Sigma) == 0 {
		return 0
	}
	if tol <= 0 {
		tol = float64(s.m) * s.Sigma[0] * 1e-13
	}
	r := 0
	for _, v := range s.Sigma {
		if v > tol {
			r++
		}
	}
	return r
}

// Condition returns σ₁/σₙ (+Inf when rank-deficient).
func (s *SVD) Condition() float64 {
	if len(s.Sigma) == 0 {
		return 1
	}
	min := s.Sigma[len(s.Sigma)-1]
	if min == 0 {
		return math.Inf(1)
	}
	return s.Sigma[0] / min
}

// PseudoInverseApply computes x = A⁺·b, the minimum-norm least-squares
// solution, truncating singular values below tol (≤ 0 for the default).
// Unlike the ridge of tomo.EstimateDeficient this is the exact
// Moore–Penrose solution, usable on rank-deficient routing matrices.
func (s *SVD) PseudoInverseApply(b Vector, tol float64) (Vector, error) {
	if len(b) != s.m {
		return nil, fmt.Errorf("la: PseudoInverseApply with rhs length %d, want %d: %w", len(b), s.m, ErrShape)
	}
	if tol <= 0 && len(s.Sigma) > 0 {
		tol = float64(s.m) * s.Sigma[0] * 1e-13
	}
	// x = V · Σ⁺ · Uᵀ · b.
	ub, err := s.U.T().MulVec(b)
	if err != nil {
		return nil, err
	}
	for i := range ub {
		if s.Sigma[i] > tol {
			ub[i] /= s.Sigma[i]
		} else {
			ub[i] = 0
		}
	}
	return s.V.MulVec(ub)
}
