package la

import (
	"errors"
	"math/rand"
	"testing"
)

// routingStyleMatrix draws an (n+extra)×n 0/1 routing matrix shaped like
// the probe meshes this project factors: an identity block (one
// dedicated probe per link) plus extra random multi-link paths. The
// identity block keeps it full column rank by construction.
func routingStyleMatrix(rng *rand.Rand, n, extra int) *Matrix {
	r := NewMatrix(n+extra, n)
	for j := 0; j < n; j++ {
		r.Set(j, j, 1)
	}
	for i := 0; i < extra; i++ {
		ones := 0
		for j := 0; j < n; j++ {
			if rng.Float64() < 0.4 {
				r.Set(n+i, j, 1)
				ones++
			}
		}
		if ones == 0 {
			r.Set(n+i, rng.Intn(n), 1)
		}
	}
	return r
}

// randomRouteRow draws a non-empty 0/1 path-incidence row over n links.
func randomRouteRow(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	ones := 0
	for j := range v {
		if rng.Float64() < 0.4 {
			v[j] = 1
			ones++
		}
	}
	if ones == 0 {
		v[rng.Intn(n)] = 1
	}
	return v
}

// appendRow returns r with row appended (dense, for the cold oracle).
func appendRow(r *Matrix, row Vector) *Matrix {
	out := NewMatrix(r.Rows()+1, r.Cols())
	for i := 0; i < r.Rows(); i++ {
		out.SetRow(i, r.Row(i))
	}
	out.SetRow(r.Rows(), row)
	return out
}

// dropRow returns r with row i removed (dense, for the cold oracle).
func dropRow(r *Matrix, i int) *Matrix {
	out := NewMatrix(r.Rows()-1, r.Cols())
	for k, o := 0, 0; k < r.Rows(); k++ {
		if k == i {
			continue
		}
		out.SetRow(o, r.Row(k))
		o++
	}
	return out
}

// factorsAgree compares two normal factors: identical Cholesky L (the
// SPD factor with positive diagonal is unique, so entrywise agreement is
// the strongest check) and identical least-squares solutions on a
// shared right-hand side.
func factorsAgree(t *testing.T, tag string, got, want *NormalFactor, rng *rand.Rand, tol float64) {
	t.Helper()
	gl, wl := got.chol.L(), want.chol.L()
	scale := 1 + wl.MaxAbs()
	if !gl.Equal(wl, tol*scale) {
		d, _ := gl.Sub(wl)
		t.Fatalf("%s: updated factor disagrees with cold refactorization (max |ΔL| = %g, tol %g)", tag, d.MaxAbs(), tol*scale)
	}
	y := make(Vector, got.Rows())
	for i := range y {
		y[i] = 10 * (2*rng.Float64() - 1)
	}
	xg, err := got.Solve(y)
	if err != nil {
		t.Fatalf("%s: updated-factor solve: %v", tag, err)
	}
	xw, err := want.Solve(y)
	if err != nil {
		t.Fatalf("%s: cold-factor solve: %v", tag, err)
	}
	if !xg.Equal(xw, tol*(1+xw.Norm2())) {
		t.Fatalf("%s: solutions diverge: %v vs %v", tag, xg, xw)
	}
}

// Property (satellite 1): across 200 seeded topologies, a rank-1
// update/downdate of the normal-equation factor agrees with a cold
// refactorization to 1e-10 — on the factor entries themselves and on
// least-squares solutions — and a round trip (add then remove the same
// row) returns to the original factor.
func TestRank1UpdateMatchesColdRefactorization(t *testing.T) {
	const tol = 1e-10
	for seed := int64(0); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		extra := 1 + rng.Intn(8)
		r := routingStyleMatrix(rng, n, extra)
		nf, err := FactorNormal(r)
		if err != nil {
			t.Fatalf("seed %d: FactorNormal: %v", seed, err)
		}

		// Update: append a random path row.
		row := randomRouteRow(rng, n)
		up, refactored, err := nf.AddRow(row)
		if err != nil {
			t.Fatalf("seed %d: AddRow: %v", seed, err)
		}
		if refactored {
			t.Fatalf("seed %d: AddRow fell back to refactorization on a well-conditioned system", seed)
		}
		rUp := appendRow(r, row)
		cold, err := FactorNormal(rUp)
		if err != nil {
			t.Fatalf("seed %d: cold FactorNormal after add: %v", seed, err)
		}
		if up.Rows() != r.Rows()+1 || up.Cols() != n {
			t.Fatalf("seed %d: AddRow shape %d×%d, want %d×%d", seed, up.Rows(), up.Cols(), r.Rows()+1, n)
		}
		factorsAgree(t, "update", up, cold, rng, tol)

		// Downdate: remove one of the extra (non-identity) rows, which
		// provably preserves full column rank.
		i := n + rng.Intn(extra)
		down, _, err := nf.RemoveRow(i)
		if err != nil {
			t.Fatalf("seed %d: RemoveRow(%d): %v", seed, i, err)
		}
		coldDown, err := FactorNormal(dropRow(r, i))
		if err != nil {
			t.Fatalf("seed %d: cold FactorNormal after remove: %v", seed, err)
		}
		factorsAgree(t, "downdate", down, coldDown, rng, tol)

		// Round trip: adding a row and removing it again must return to
		// the original factor.
		back, _, err := up.RemoveRow(up.Rows() - 1)
		if err != nil {
			t.Fatalf("seed %d: round-trip RemoveRow: %v", seed, err)
		}
		factorsAgree(t, "round-trip", back, nf, rng, tol)
	}
}

// The downdate-to-rank-deficient edge: removing a measurement row that
// carried the only coverage of a link must surface an explicit error —
// matching ErrNotSPD like every other identifiability failure — and
// never hand back a factor.
func TestDowndateToRankDeficientErrors(t *testing.T) {
	// R = I₃: every row is the sole measurement of its link.
	nf, err := FactorNormal(Identity(3))
	if err != nil {
		t.Fatalf("FactorNormal(I): %v", err)
	}
	for i := 0; i < 3; i++ {
		got, refactored, err := nf.RemoveRow(i)
		if got != nil {
			t.Fatalf("RemoveRow(%d) on I₃ returned a factor for a rank-deficient system", i)
		}
		if !errors.Is(err, ErrNotSPD) {
			t.Fatalf("RemoveRow(%d) on I₃: err = %v, want ErrNotSPD", i, err)
		}
		if !refactored {
			t.Fatalf("RemoveRow(%d) on I₃ rejected without consulting the dense oracle", i)
		}
	}

	// Direct Cholesky layer: downdating A = I by e₀ leaves a singular
	// matrix; Downdate must refuse with ErrDowndate.
	chol, err := FactorCholesky(Identity(2))
	if err != nil {
		t.Fatalf("FactorCholesky(I): %v", err)
	}
	if _, err := chol.Downdate(Vector{1, 0}); !errors.Is(err, ErrDowndate) {
		t.Fatalf("Downdate(e0) on I: err = %v, want ErrDowndate", err)
	}
	// Overdrawing (‖L⁻¹v‖ > 1) is indefinite, not merely singular.
	if _, err := chol.Downdate(Vector{2, 0}); !errors.Is(err, ErrDowndate) {
		t.Fatalf("Downdate(2·e0) on I: err = %v, want ErrDowndate", err)
	}

	// A removal that leaves a 1e-18 Gram pivot: the downdate reports
	// indefiniteness, the oracle confirms rank deficiency, and the
	// caller gets an explicit error either way.
	r := NewMatrix(3, 2)
	r.Set(0, 0, 1)
	r.Set(1, 1, 1)
	r.Set(2, 1, 1e-9)
	nf, err = FactorNormal(r)
	if err != nil {
		t.Fatalf("FactorNormal: %v", err)
	}
	if got, _, err := nf.RemoveRow(1); got != nil || !errors.Is(err, ErrNotSPD) {
		t.Fatalf("RemoveRow leaving ε² pivot: factor %v, err %v; want nil factor and ErrNotSPD", got, err)
	}
}

// Shape guards on the update entry points.
func TestUpdateShapeErrors(t *testing.T) {
	nf, err := FactorNormal(Identity(3))
	if err != nil {
		t.Fatalf("FactorNormal: %v", err)
	}
	if _, _, err := nf.AddRow(Vector{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("AddRow with short row: err = %v, want ErrShape", err)
	}
	if _, _, err := nf.RemoveRow(-1); !errors.Is(err, ErrShape) {
		t.Fatalf("RemoveRow(-1): err = %v, want ErrShape", err)
	}
	if _, _, err := nf.RemoveRow(3); !errors.Is(err, ErrShape) {
		t.Fatalf("RemoveRow past end: err = %v, want ErrShape", err)
	}
	chol, err := FactorCholesky(Identity(2))
	if err != nil {
		t.Fatalf("FactorCholesky: %v", err)
	}
	if _, err := chol.Update(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("Update with short vector: err = %v, want ErrShape", err)
	}
	if _, err := chol.Downdate(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("Downdate with short vector: err = %v, want ErrShape", err)
	}
}

// BenchmarkQRUpdate pits the rank-1 factor update against the cold
// refactorization it replaces, at a dense-route scale (1k links). The
// update is O(links² + links·paths); the cold path pays the full Gram
// product plus an O(links³) Cholesky.
func BenchmarkQRUpdate(b *testing.B) {
	rng := rand.New(rand.NewSource(42))
	const links, extra = 1000, 100
	r := routingStyleMatrix(rng, links, extra)
	nf, err := FactorNormal(r)
	if err != nil {
		b.Fatalf("FactorNormal: %v", err)
	}
	row := randomRouteRow(rng, links)
	rUp := appendRow(r, row)

	b.Run("update-1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := nf.AddRow(row); err != nil {
				b.Fatalf("AddRow: %v", err)
			}
		}
	})
	b.Run("downdate-1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := nf.RemoveRow(links + extra - 1); err != nil {
				b.Fatalf("RemoveRow: %v", err)
			}
		}
	})
	b.Run("cold-1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := FactorNormal(rUp); err != nil {
				b.Fatalf("FactorNormal: %v", err)
			}
		}
	})
}
