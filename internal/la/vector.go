package la

import (
	"fmt"
	"math"
)

// Vector is a dense column vector of float64. It is an ordinary slice so
// callers can index, range, and append with native syntax; the methods
// below never mutate their receiver unless documented.
type Vector []float64

// Zeros returns a zero vector of length n.
func Zeros(n int) Vector { return make(Vector, n) }

// Ones returns a vector of length n with every entry 1.
func Ones(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = 1
	}
	return v
}

// Clone returns a copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w.
func (v Vector) Add(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("la: Add vectors of length %d and %d: %w", len(v), len(w), ErrShape)
	}
	out := v.Clone()
	for i, x := range w {
		out[i] += x
	}
	return out, nil
}

// Sub returns v − w.
func (v Vector) Sub(w Vector) (Vector, error) {
	if len(v) != len(w) {
		return nil, fmt.Errorf("la: Sub vectors of length %d and %d: %w", len(v), len(w), ErrShape)
	}
	out := v.Clone()
	for i, x := range w {
		out[i] -= x
	}
	return out, nil
}

// Scale returns s·v as a new vector.
func (v Vector) Scale(s float64) Vector {
	out := v.Clone()
	for i := range out {
		out[i] *= s
	}
	return out
}

// Dot returns the inner product ⟨v, w⟩.
func (v Vector) Dot(w Vector) (float64, error) {
	if len(v) != len(w) {
		return 0, fmt.Errorf("la: Dot vectors of length %d and %d: %w", len(v), len(w), ErrShape)
	}
	var s float64
	for i, x := range v {
		s += x * w[i]
	}
	return s, nil
}

// Norm1 returns the L1 norm Σ|vᵢ|. This is the paper's damage metric
// ‖m‖₁ (Definition 2) and the detection residual norm (Remark 4).
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Norm2 returns the Euclidean norm.
func (v Vector) Norm2() float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// NormInf returns the max-abs norm.
func (v Vector) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Sum returns Σvᵢ.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Mean returns the arithmetic mean, or 0 for an empty vector.
func (v Vector) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// Min returns the smallest entry. It panics on an empty vector.
func (v Vector) Min() float64 {
	if len(v) == 0 {
		panic("la: Min of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest entry. It panics on an empty vector.
func (v Vector) Max() float64 {
	if len(v) == 0 {
		panic("la: Max of empty vector")
	}
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// GEQ reports whether v ⪰ w − tol componentwise (the paper's ⪰ with a
// numerical slack).
func (v Vector) GEQ(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if x < w[i]-tol {
			return false
		}
	}
	return true
}

// Equal reports whether v and w have equal length and entries within tol.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i, x := range v {
		if math.Abs(x-w[i]) > tol {
			return false
		}
	}
	return true
}
