package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveLUKnownSystem(t *testing.T) {
	a, _ := NewMatrixFrom(3, 3, []float64{
		2, 1, 1,
		1, 3, 2,
		1, 0, 0,
	})
	b := Vector{4, 5, 6}
	x, err := SolveLU(a, b)
	if err != nil {
		t.Fatalf("SolveLU: %v", err)
	}
	ax, _ := a.MulVec(x)
	if !ax.Equal(b, 1e-10) {
		t.Errorf("A·x = %v, want %v", ax, b)
	}
}

func TestSolveLUSingular(t *testing.T) {
	a, _ := NewMatrixFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := SolveLU(a, Vector{1, 1}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestFactorLUNonSquare(t *testing.T) {
	a := NewMatrix(2, 3)
	if _, err := FactorLU(a); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestLUDet(t *testing.T) {
	a, _ := NewMatrixFrom(2, 2, []float64{3, 1, 4, 2})
	f, err := FactorLU(a)
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	if got := f.Det(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Det = %g, want 2", got)
	}
}

func TestLUSolveRHSLength(t *testing.T) {
	f, err := FactorLU(Identity(2))
	if err != nil {
		t.Fatalf("FactorLU: %v", err)
	}
	if _, err := f.Solve(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestInverse(t *testing.T) {
	a, _ := NewMatrixFrom(3, 3, []float64{
		4, 7, 2,
		3, 6, 1,
		2, 5, 3,
	})
	inv, err := Inverse(a)
	if err != nil {
		t.Fatalf("Inverse: %v", err)
	}
	prod, _ := a.Mul(inv)
	if !prod.Equal(Identity(3), 1e-10) {
		t.Errorf("A·A⁻¹ = %v, want identity", prod)
	}
}

func TestLUSolveRoundTripProperty(t *testing.T) {
	// Property: for well-conditioned random A (diagonally dominated),
	// Solve(A·x) recovers x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		a := randomMatrix(rng, n, n)
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := randomVector(rng, n)
		b, _ := a.MulVec(x)
		got, err := SolveLU(a, b)
		if err != nil {
			return false
		}
		return got.Equal(x, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	// A = BᵀB + I is SPD for any B.
	rng := rand.New(rand.NewSource(7))
	b := randomMatrix(rng, 5, 4)
	gram, _ := b.T().Mul(b)
	spd, _ := gram.Add(Identity(4))
	chol, err := FactorCholesky(spd)
	if err != nil {
		t.Fatalf("FactorCholesky: %v", err)
	}
	x := Vector{1, -2, 3, -4}
	rhs, _ := spd.MulVec(x)
	got, err := chol.Solve(rhs)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if !got.Equal(x, 1e-8) {
		t.Errorf("Cholesky solve = %v, want %v", got, x)
	}
	// L·Lᵀ should reconstruct A.
	l := chol.L()
	llt, _ := l.Mul(l.T())
	if !llt.Equal(spd, 1e-8) {
		t.Errorf("L·Lᵀ does not reconstruct A")
	}
}

func TestCholeskyNotSPD(t *testing.T) {
	a, _ := NewMatrixFrom(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, −1
	if _, err := FactorCholesky(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
	if _, err := FactorCholesky(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("non-square: err = %v, want ErrShape", err)
	}
}

func TestCholeskySolveRHSLength(t *testing.T) {
	chol, err := FactorCholesky(Identity(3))
	if err != nil {
		t.Fatalf("FactorCholesky: %v", err)
	}
	if _, err := chol.Solve(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Square, full-rank system: least squares equals exact solve.
	a, _ := NewMatrixFrom(2, 2, []float64{1, 1, 1, -1})
	x, err := LeastSquares(a, Vector{3, 1})
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if !x.Equal(Vector{2, 1}, 1e-10) {
		t.Errorf("x = %v, want [2 1]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// Fit y = c to {1, 2, 3}: least-squares constant is the mean, 2.
	a, _ := NewMatrixFrom(3, 1, []float64{1, 1, 1})
	x, err := LeastSquares(a, Vector{1, 2, 3})
	if err != nil {
		t.Fatalf("LeastSquares: %v", err)
	}
	if math.Abs(x[0]-2) > 1e-12 {
		t.Errorf("x = %v, want [2]", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// Property: residual r = b − A·x is orthogonal to the column space,
	// i.e. Aᵀ·r ≈ 0. The defining property of least squares.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		m := n + 1 + rng.Intn(5)
		a := randomMatrix(rng, m, n)
		b := randomVector(rng, m)
		x, err := LeastSquares(a, b)
		if err != nil {
			return true // rank-deficient random draw; skip
		}
		ax, _ := a.MulVec(x)
		r, _ := b.Sub(ax)
		atr, _ := a.T().MulVec(r)
		return atr.NormInf() < 1e-8*(1+b.Norm2())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a, _ := NewMatrixFrom(3, 2, []float64{1, 2, 2, 4, 3, 6})
	if _, err := LeastSquares(a, Vector{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestFactorQRWideRejected(t *testing.T) {
	if _, err := FactorQR(NewMatrix(2, 3)); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestQRSolveRHSLength(t *testing.T) {
	f, err := FactorQR(Identity(3))
	if err != nil {
		t.Fatalf("FactorQR: %v", err)
	}
	if _, err := f.Solve(Vector{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("err = %v, want ErrShape", err)
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		name string
		r, c int
		data []float64
		want int
	}{
		{"identity", 3, 3, []float64{1, 0, 0, 0, 1, 0, 0, 0, 1}, 3},
		{"zero", 2, 2, []float64{0, 0, 0, 0}, 0},
		{"rank1", 2, 2, []float64{1, 2, 2, 4}, 1},
		{"wide full", 2, 3, []float64{1, 0, 0, 0, 1, 0}, 2},
		{"tall rank2", 3, 2, []float64{1, 0, 0, 1, 1, 1}, 2},
		{"dependent rows", 3, 3, []float64{1, 2, 3, 4, 5, 6, 5, 7, 9}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, err := NewMatrixFrom(tt.r, tt.c, tt.data)
			if err != nil {
				t.Fatal(err)
			}
			if got := Rank(m); got != tt.want {
				t.Errorf("Rank = %d, want %d", got, tt.want)
			}
		})
	}
	if got := Rank(NewMatrix(0, 5)); got != 0 {
		t.Errorf("Rank of empty = %d, want 0", got)
	}
}

func TestRankBoundsProperty(t *testing.T) {
	// Property: 0 ≤ rank(A) ≤ min(rows, cols), and rank(A) == rank(Aᵀ).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(rng, r, c)
		k := Rank(a)
		if k < 0 || k > r || k > c {
			return false
		}
		return Rank(a.T()) == k
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalEquationOperator(t *testing.T) {
	// T·R must be the identity on link space: tomography of clean
	// measurements recovers the exact link metrics.
	r, _ := NewMatrixFrom(4, 3, []float64{
		1, 1, 0,
		0, 1, 1,
		1, 0, 1,
		1, 1, 1,
	})
	tOp, err := NormalEquationOperator(r)
	if err != nil {
		t.Fatalf("NormalEquationOperator: %v", err)
	}
	tr, _ := tOp.Mul(r)
	if !tr.Equal(Identity(3), 1e-9) {
		t.Errorf("T·R = %v, want identity", tr)
	}
	x := Vector{5, 10, 15}
	y, _ := r.MulVec(x)
	xhat, _ := tOp.MulVec(y)
	if !xhat.Equal(x, 1e-9) {
		t.Errorf("x̂ = %v, want %v", xhat, x)
	}
}

func TestNormalEquationOperatorRankDeficient(t *testing.T) {
	// Two identical columns: links indistinguishable, RᵀR singular.
	r, _ := NewMatrixFrom(3, 2, []float64{1, 1, 0, 0, 1, 1})
	if _, err := NormalEquationOperator(r); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestNormalFactorSolveMatchesOperator(t *testing.T) {
	// Property: the factored back-substitution solve and the dense
	// operator matvec produce the same estimate.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + 2 + rng.Intn(4)
		a := randomMatrix(rng, m, n)
		y := randomVector(rng, m)
		nf, err := FactorNormal(a)
		if err != nil {
			return true // rank-deficient random draw; skip
		}
		x1, err := nf.Solve(y)
		if err != nil {
			return false
		}
		tOp, err := nf.Operator()
		if err != nil {
			return false
		}
		x2, _ := tOp.MulVec(y)
		return x1.Equal(x2, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalFactorDims(t *testing.T) {
	a, _ := NewMatrixFrom(4, 3, []float64{
		1, 1, 0,
		0, 1, 1,
		1, 0, 1,
		1, 1, 1,
	})
	nf, err := FactorNormal(a)
	if err != nil {
		t.Fatalf("FactorNormal: %v", err)
	}
	if nf.Rows() != 4 || nf.Cols() != 3 {
		t.Errorf("dims = %d×%d, want 4×3", nf.Rows(), nf.Cols())
	}
	if _, err := nf.Solve(Vector{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatalf("short rhs: err = %v, want ErrShape", err)
	}
}

func TestNormalFactorRankDeficient(t *testing.T) {
	a, _ := NewMatrixFrom(3, 2, []float64{1, 1, 0, 0, 1, 1})
	if _, err := FactorNormal(a); !errors.Is(err, ErrNotSPD) {
		t.Fatalf("err = %v, want ErrNotSPD", err)
	}
}

func TestQRMatchesNormalEquations(t *testing.T) {
	// Property: QR least squares and the normal-equation operator agree.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		m := n + 2 + rng.Intn(4)
		a := randomMatrix(rng, m, n)
		b := randomVector(rng, m)
		x1, err1 := LeastSquares(a, b)
		tOp, err2 := NormalEquationOperator(a)
		if err1 != nil || err2 != nil {
			return err1 != nil && err2 != nil // both reject rank deficiency
		}
		x2, _ := tOp.MulVec(b)
		return x1.Equal(x2, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
