package la

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSpectralNormDiagonal(t *testing.T) {
	a, _ := NewMatrixFrom(3, 3, []float64{
		3, 0, 0,
		0, 7, 0,
		0, 0, 2,
	})
	got, err := SpectralNormEst(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-7) > 1e-6 {
		t.Errorf("‖A‖₂ = %g, want 7", got)
	}
}

func TestSpectralNormEmptyAndZero(t *testing.T) {
	got, err := SpectralNormEst(NewMatrix(0, 0), 0)
	if err != nil || got != 0 {
		t.Errorf("empty: %g, %v", got, err)
	}
	got, err = SpectralNormEst(NewMatrix(3, 3), 0)
	if err != nil || got != 0 {
		t.Errorf("zero: %g, %v", got, err)
	}
}

func TestConditionDiagonal(t *testing.T) {
	a, _ := NewMatrixFrom(3, 3, []float64{
		10, 0, 0,
		0, 5, 0,
		0, 0, 2,
	})
	got, err := ConditionEst(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5) > 1e-6 {
		t.Errorf("κ = %g, want 5", got)
	}
}

func TestConditionIdentity(t *testing.T) {
	got, err := ConditionEst(Identity(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("κ(I) = %g, want 1", got)
	}
}

func TestConditionRankDeficient(t *testing.T) {
	a, _ := NewMatrixFrom(3, 2, []float64{1, 2, 2, 4, 3, 6})
	if _, err := ConditionEst(a, 0); !errors.Is(err, ErrNotSPD) {
		t.Errorf("rank-deficient: err = %v", err)
	}
	if _, err := ConditionEst(NewMatrix(2, 3), 0); !errors.Is(err, ErrShape) {
		t.Errorf("wide: err = %v", err)
	}
}

func TestConditionBoundsProperty(t *testing.T) {
	// Property: κ ≥ 1, and ‖A·x‖ ≤ σ_max‖x‖ for random x.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		m := n + rng.Intn(4)
		a := randomMatrix(rng, m, n)
		kappa, err := ConditionEst(a, 200)
		if err != nil {
			return true // near-singular random draw
		}
		if kappa < 1-1e-6 {
			return false
		}
		sigma, err := SpectralNormEst(a, 200)
		if err != nil {
			return false
		}
		for k := 0; k < 5; k++ {
			x := randomVector(rng, n)
			ax, _ := a.MulVec(x)
			if ax.Norm2() > sigma*x.Norm2()*(1+1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
