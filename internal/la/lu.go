package la

import (
	"fmt"
	"math"
)

// LU is an LU factorization with partial pivoting: P·A = L·U, stored
// packed in lu (unit lower triangle below the diagonal, U on and above).
type LU struct {
	lu    *Matrix
	pivot []int // row permutation: row i of PA is row pivot[i] of A
	sign  int   // determinant sign of P
}

// FactorLU computes the LU factorization of square matrix a with partial
// pivoting. It returns ErrSingular when a pivot collapses to (near) zero.
func FactorLU(a *Matrix) (*LU, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("la: FactorLU of %d×%d matrix: %w", a.rows, a.cols, ErrShape)
	}
	lu := a.Clone()
	pivot := make([]int, n)
	for i := range pivot {
		pivot[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Find the pivot row.
		p := k
		max := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > max {
				max, p = a, i
			}
		}
		if max < singularTol {
			return nil, fmt.Errorf("la: zero pivot at column %d: %w", k, ErrSingular)
		}
		if p != k {
			swapRows(lu, p, k)
			pivot[p], pivot[k] = pivot[k], pivot[p]
			sign = -sign
		}
		pk := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			f := lu.data[i*n+k] / pk
			lu.data[i*n+k] = f
			if f == 0 {
				continue
			}
			row := lu.data[i*n : (i+1)*n]
			krow := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				row[j] -= f * krow[j]
			}
		}
	}
	return &LU{lu: lu, pivot: pivot, sign: sign}, nil
}

// singularTol is the absolute pivot threshold below which a matrix is
// treated as singular. Link metrics and routing matrices in this project
// are O(1)–O(1e4), so an absolute threshold is adequate.
const singularTol = 1e-12

func swapRows(m *Matrix, i, j int) {
	ri := m.data[i*m.cols : (i+1)*m.cols]
	rj := m.data[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Solve solves A·x = b for x using the factorization.
func (f *LU) Solve(b Vector) (Vector, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("la: LU.Solve with rhs length %d, want %d: %w", len(b), n, ErrShape)
	}
	// Apply permutation.
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.pivot[i]]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with U.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// SolveLU solves the square system A·x = b in one call.
func SolveLU(a *Matrix, b Vector) (Vector, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns A⁻¹ for a square matrix A, or ErrSingular.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	n := a.rows
	inv := NewMatrix(n, n)
	e := make(Vector, n)
	for j := 0; j < n; j++ {
		e[j] = 1
		col, err := f.Solve(e)
		if err != nil {
			return nil, err
		}
		e[j] = 0
		for i := 0; i < n; i++ {
			inv.data[i*n+j] = col[i]
		}
	}
	return inv, nil
}
