package la

import (
	"fmt"
	"math"
)

// QR is a Householder QR factorization A = Q·R of an m×n matrix with
// m ≥ n. Householder vectors are stored below the diagonal of qr, the
// upper triangle holds R, and rdiag holds R's diagonal.
type QR struct {
	qr    *Matrix
	rdiag Vector
}

// FactorQR computes the Householder QR factorization of a (m ≥ n
// required). Unlike LU, the factorization itself succeeds for
// rank-deficient input; rank deficiency surfaces in Solve.
func FactorQR(a *Matrix) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("la: FactorQR of %d×%d matrix needs rows ≥ cols: %w", m, n, ErrShape)
	}
	qr := a.Clone()
	rdiag := make(Vector, n)
	for k := 0; k < n; k++ {
		// Norm of column k below row k.
		var nrm float64
		for i := k; i < m; i++ {
			nrm = math.Hypot(nrm, qr.data[i*n+k])
		}
		if nrm == 0 {
			rdiag[k] = 0
			continue
		}
		if qr.data[k*n+k] < 0 {
			nrm = -nrm
		}
		for i := k; i < m; i++ {
			qr.data[i*n+k] /= nrm
		}
		qr.data[k*n+k]++
		// Apply the reflector to the remaining columns.
		for j := k + 1; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += qr.data[i*n+k] * qr.data[i*n+j]
			}
			s = -s / qr.data[k*n+k]
			for i := k; i < m; i++ {
				qr.data[i*n+j] += s * qr.data[i*n+k]
			}
		}
		rdiag[k] = -nrm
	}
	return &QR{qr: qr, rdiag: rdiag}, nil
}

// FullRank reports whether the factored matrix has full column rank,
// judged against tol (pass 0 for a scale-aware default).
func (q *QR) FullRank(tol float64) bool {
	if tol <= 0 {
		tol = q.defaultTol()
	}
	for _, d := range q.rdiag {
		if math.Abs(d) <= tol {
			return false
		}
	}
	return true
}

func (q *QR) defaultTol() float64 {
	// Scale tolerance by the largest |R| diagonal, the usual rank
	// heuristic for Householder QR.
	var max float64
	for _, d := range q.rdiag {
		if a := math.Abs(d); a > max {
			max = a
		}
	}
	if max == 0 {
		return 1e-10
	}
	return max * 1e-10 * float64(len(q.rdiag))
}

// Solve returns the least-squares solution x minimizing ‖A·x − b‖₂.
// It returns ErrSingular when A is column-rank-deficient.
func (q *QR) Solve(b Vector) (Vector, error) {
	m, n := q.qr.rows, q.qr.cols
	if len(b) != m {
		return nil, fmt.Errorf("la: QR.Solve with rhs length %d, want %d: %w", len(b), m, ErrShape)
	}
	if !q.FullRank(0) {
		return nil, fmt.Errorf("la: QR.Solve on rank-deficient matrix: %w", ErrSingular)
	}
	y := b.Clone()
	// Apply Qᵀ to b.
	for k := 0; k < n; k++ {
		if q.qr.data[k*n+k] == 0 {
			continue
		}
		var s float64
		for i := k; i < m; i++ {
			s += q.qr.data[i*n+k] * y[i]
		}
		s = -s / q.qr.data[k*n+k]
		for i := k; i < m; i++ {
			y[i] += s * q.qr.data[i*n+k]
		}
	}
	// Back substitution R·x = (Qᵀb)[:n].
	x := make(Vector, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= q.qr.data[i*n+j] * x[j]
		}
		x[i] = s / q.rdiag[i]
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ in one call via Householder QR.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	f, err := FactorQR(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Rank returns the numerical rank of a, computed by Gaussian elimination
// with partial pivoting and a scale-aware tolerance. It works for any
// shape, including the wide/tall 0/1 routing matrices used in tomography.
func Rank(a *Matrix) int {
	m, n := a.rows, a.cols
	if m == 0 || n == 0 {
		return 0
	}
	w := a.Clone()
	tol := w.MaxAbs() * 1e-10 * float64(max(m, n))
	if tol == 0 {
		return 0
	}
	rank := 0
	for col := 0; col < n && rank < m; col++ {
		// Pivot search in the current column at or below row `rank`.
		p, best := -1, tol
		for i := rank; i < m; i++ {
			if v := math.Abs(w.data[i*n+col]); v > best {
				best, p = v, i
			}
		}
		if p < 0 {
			continue
		}
		if p != rank {
			swapRows(w, p, rank)
		}
		pv := w.data[rank*n+col]
		for i := rank + 1; i < m; i++ {
			f := w.data[i*n+col] / pv
			if f == 0 {
				continue
			}
			row := w.data[i*n : (i+1)*n]
			prow := w.data[rank*n : (rank+1)*n]
			for j := col; j < n; j++ {
				row[j] -= f * prow[j]
			}
		}
		rank++
	}
	return rank
}

// NormalEquationOperator returns T = (RᵀR)⁻¹Rᵀ, the linear operator the
// paper's tomography estimator applies to a measurement vector (Eq. 2).
// It fails with ErrNotSPD when R lacks full column rank (link metrics not
// identifiable). Callers that solve repeatedly against the same R should
// hold a NormalFactor instead.
func NormalEquationOperator(r *Matrix) (*Matrix, error) {
	f, err := FactorNormal(r)
	if err != nil {
		return nil, err
	}
	return f.Operator()
}
