// Package la implements the dense linear algebra needed by network
// tomography: matrices, vectors, LU/Cholesky/QR factorizations,
// least-squares solves, and numerical rank.
//
// The Go standard library has no matrix support, so everything here is
// built from scratch. Matrices are dense, row-major, float64. Sizes in
// this project are modest (hundreds of paths × hundreds of links), so
// simple cache-friendly dense algorithms are the right tool; no attempt
// is made at blocking or SIMD.
package la

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrShape is returned when matrix or vector dimensions do not conform.
var ErrShape = errors.New("la: dimension mismatch")

// ErrSingular is returned when a factorization encounters a singular
// (or numerically singular) matrix.
var ErrSingular = errors.New("la: singular matrix")

// ErrNotSPD is returned by Cholesky when the matrix is not symmetric
// positive definite.
var ErrNotSPD = errors.New("la: matrix not symmetric positive definite")

// Matrix is a dense, row-major matrix of float64.
//
// The zero value is an empty 0×0 matrix. Use NewMatrix or NewMatrixFrom
// to create one with content.
type Matrix struct {
	rows, cols int
	data       []float64 // len == rows*cols, row-major
}

// NewMatrix returns an r×c zero matrix.
// It panics if r or c is negative, matching the behaviour of make.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("la: NewMatrix with negative dimension %d×%d", r, c))
	}
	return &Matrix{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewMatrixFrom builds an r×c matrix from row-major data. The slice is
// copied, so the caller keeps ownership of data.
func NewMatrixFrom(r, c int, data []float64) (*Matrix, error) {
	if len(data) != r*c {
		return nil, fmt.Errorf("la: NewMatrixFrom %d×%d needs %d values, got %d: %w",
			r, c, r*c, len(data), ErrShape)
	}
	m := NewMatrix(r, c)
	copy(m.data, data)
	return m, nil
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.boundsCheck(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.boundsCheck(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) boundsCheck(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("la: index (%d,%d) out of range for %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Row returns a copy of row i as a vector.
func (m *Matrix) Row(i int) Vector {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("la: row %d out of range for %d×%d matrix", i, m.rows, m.cols))
	}
	out := make(Vector, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j as a vector.
func (m *Matrix) Col(j int) Vector {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("la: col %d out of range for %d×%d matrix", j, m.rows, m.cols))
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i.
func (m *Matrix) SetRow(i int, v Vector) error {
	if len(v) != m.cols {
		return fmt.Errorf("la: SetRow needs %d values, got %d: %w", m.cols, len(v), ErrShape)
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
	return nil
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	out := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			out.data[j*out.cols+i] = m.data[i*m.cols+j]
		}
	}
	return out
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) (*Matrix, error) {
	if m.cols != b.rows {
		return nil, fmt.Errorf("la: Mul %d×%d by %d×%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := NewMatrix(m.rows, b.cols)
	// ikj loop order keeps the inner loop streaming over contiguous rows.
	for i := 0; i < m.rows; i++ {
		mRow := m.data[i*m.cols : (i+1)*m.cols]
		outRow := out.data[i*out.cols : (i+1)*out.cols]
		for k := 0; k < m.cols; k++ {
			a := mRow[k]
			if a == 0 {
				continue
			}
			bRow := b.data[k*b.cols : (k+1)*b.cols]
			for j := range outRow {
				outRow[j] += a * bRow[j]
			}
		}
	}
	return out, nil
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v Vector) (Vector, error) {
	if m.cols != len(v) {
		return nil, fmt.Errorf("la: MulVec %d×%d by vector of length %d: %w", m.rows, m.cols, len(v), ErrShape)
	}
	out := make(Vector, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, a := range row {
			s += a * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("la: Add %d×%d and %d×%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out, nil
}

// Sub returns m − b.
func (m *Matrix) Sub(b *Matrix) (*Matrix, error) {
	if m.rows != b.rows || m.cols != b.cols {
		return nil, fmt.Errorf("la: Sub %d×%d and %d×%d: %w", m.rows, m.cols, b.rows, b.cols, ErrShape)
	}
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out, nil
}

// Scale returns s·m as a new matrix.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

// Equal reports whether m and b have the same shape and every pair of
// elements differs by at most tol.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// MaxAbs returns the largest absolute value of any element, or 0 for an
// empty matrix.
func (m *Matrix) MaxAbs() float64 {
	var max float64
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d×%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%8.4g", m.data[i*m.cols+j])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
